(* Dynamic behaviours (§V-B/§V-C): true mid-computation resume from an
   AEX state dump, and co-operative re-allocation of an enclave's own
   memory while it is alive. *)
module Hw = Sanctorum_hw
module S = Sanctorum.Sm
module E = Sanctorum.Api_error
module Img = Sanctorum.Image
open Sanctorum_os

let check_bool = Alcotest.(check bool)

(* A counting loop that, when re-entered after an AEX (a0 = 1), reads
   the AEX dump back from the monitor, restores its loop registers and
   jumps to the interrupted pc — losing no progress. *)
let resumable_counter ~evbase ~target =
  let open Hw.Isa in
  let data = evbase + 4096 in
  let buf = data + 256 in
  [
    (* 0 *) Branch (Bne, a0, zero, 44) (* -> resume block at idx 11 *);
    (* 1 *) Op_imm (Add, t1, zero, 0);
    (* 2 *) Op_imm (Add, t2, zero, target);
    (* 3 loop *) Branch (Bge, t1, t2, 12) (* -> done at idx 6 *);
    (* 4 *) Op_imm (Add, t1, t1, 1);
    (* 5 *) Jal (zero, -8) (* -> loop *);
    (* 6 done *) Lui (t4, data lsr 12);
    (* 7 *) Op_imm (Add, t4, t4, data land 0xfff);
    (* 8 *) Store (Sd, t1, t4, 0);
    (* 9 *) Op_imm (Add, a7, zero, S.Ecall.exit_enclave);
    (* 10 *) Ecall;
    (* 11 resume *) Op_imm (Add, a0, zero, 0) (* tid 0 = self *);
    (* 12 *) Lui (a1, buf lsr 12);
    (* 13 *) Op_imm (Add, a1, a1, buf land 0xfff);
    (* 14 *) Op_imm (Add, a7, zero, S.Ecall.read_aex_state);
    (* 15 *) Ecall;
    (* 16 *) Lui (t0, buf lsr 12);
    (* 17 *) Op_imm (Add, t0, t0, buf land 0xfff);
    (* 18 *) Load (Ld, t1, t0, 8 * (6 - 1)) (* x6 = t1 *);
    (* 19 *) Load (Ld, t2, t0, 8 * (7 - 1)) (* x7 = t2 *);
    (* 20 *) Load (Ld, t3, t0, 8 * 31) (* interrupted pc *);
    (* 21 *) Jalr (zero, t3, 0);
  ]

let test_aex_resume_preserves_progress () =
  let tb = Testbed.create () in
  let target = 2000 in
  let image =
    Img.of_program ~evbase:0x10000 (resumable_counter ~evbase:0x10000 ~target)
  in
  let inst = Result.get_ok (Os.install_enclave tb.Testbed.os image) in
  let eid = inst.Os.eid and tid = List.hd inst.Os.tids in
  let preemptions = ref 0 in
  let rec drive rounds =
    if rounds > 300 then Alcotest.fail "did not finish in 300 rounds"
    else begin
      match
        Os.run_enclave tb.Testbed.os ~eid ~tid ~core:0 ~fuel:100000
          ~quantum:800 ()
      with
      | Ok Os.Exited -> ()
      | Ok Os.Preempted ->
          incr preemptions;
          drive (rounds + 1)
      | Ok _ | Error _ -> Alcotest.fail "unexpected outcome"
    end
  in
  drive 0;
  check_bool "actually preempted" true (!preemptions > 3);
  (* the final count is exact despite all the interruptions *)
  let paddrs = Sanctorum_attack.Malicious_os.enclave_paddrs tb.Testbed.os ~eid in
  let data = List.nth paddrs (List.length (Img.required_page_tables image) + 1) in
  Alcotest.(check int64)
    "exact count" (Int64.of_int target)
    (Hw.Phys_mem.read_u64 (Hw.Machine.mem tb.Testbed.machine) data)

let test_read_aex_requires_pending () =
  let tb = Testbed.create () in
  let image =
    Img.of_program ~evbase:0x10000
      Hw.Isa.[ Op_imm (Add, a7, zero, S.Ecall.exit_enclave); Ecall ]
  in
  let inst = Result.get_ok (Os.install_enclave tb.Testbed.os image) in
  let eid = inst.Os.eid and tid = List.hd inst.Os.tids in
  (match
     S.read_aex_state tb.Testbed.sm ~caller:(S.Enclave_caller eid) ~tid
   with
  | Error (E.Invalid_state _) -> ()
  | Ok _ -> Alcotest.fail "read_aex_state with no pending dump"
  | Error e -> Alcotest.failf "unexpected: %s" (E.to_string e));
  (* foreign enclaves are refused *)
  let other =
    Result.get_ok
      (Os.install_enclave tb.Testbed.os
         (Img.of_program ~evbase:0x40000
            Hw.Isa.[ Op_imm (Add, a7, zero, S.Ecall.exit_enclave); Ecall ]))
  in
  match
    S.read_aex_state tb.Testbed.sm ~caller:(S.Enclave_caller other.Os.eid) ~tid
  with
  | Error E.Unauthorized -> ()
  | Ok _ -> Alcotest.fail "foreign enclave read an AEX dump"
  | Error e -> Alcotest.failf "unexpected: %s" (E.to_string e)

(* §V-B: "an enclave may collaborate with the OS to implement dynamic
   behaviors like re-allocation of resources". The enclave blocks one
   of its own units via the ecall ABI; the OS cleans and reclaims it;
   the enclave's subsequent access to that memory faults; memory the
   enclave kept remains usable. *)
let test_enclave_blocks_own_memory () =
  let tb = Testbed.create () in
  let sm = tb.Testbed.sm in
  let os = tb.Testbed.os in
  (* Build an enclave by hand so it owns TWO units: one for its image,
     one spare that it will give back. *)
  let image =
    Img.of_program ~evbase:0x10000
      Hw.Isa.[ Op_imm (Add, a7, zero, S.Ecall.exit_enclave); Ecall ]
  in
  let inst = Result.get_ok (Os.install_enclave os image) in
  let eid = inst.Os.eid in
  let spare = List.hd (Os.alloc_units os ~count:1) in
  let kind = Sanctorum.Resource.Memory_resource in
  Result.get_ok (S.block_resource sm ~caller:S.Os kind ~rid:spare);
  Result.get_ok (S.clean_resource sm ~caller:S.Os kind ~rid:spare);
  Result.get_ok
    (S.grant_resource sm ~caller:S.Os kind ~rid:spare ~to_:(S.To_enclave eid));
  Result.get_ok (S.accept_resource sm ~caller:(S.Enclave_caller eid) kind ~rid:spare);
  (* the enclave now owns the spare unit in hardware *)
  let pf = tb.Testbed.platform in
  let spare_lo = spare * S.memory_unit_bytes sm in
  let domain = Result.get_ok (S.enclave_domain sm ~eid) in
  check_bool "hw owner is enclave" true
    (pf.Sanctorum_platform.Platform.owner_at ~paddr:spare_lo = domain);
  (* enclave blocks it (as its ecall would), OS cleans and takes it *)
  Result.get_ok (S.block_resource sm ~caller:(S.Enclave_caller eid) kind ~rid:spare);
  Result.get_ok (S.clean_resource sm ~caller:S.Os kind ~rid:spare);
  Result.get_ok (S.grant_resource sm ~caller:S.Os kind ~rid:spare ~to_:S.To_os);
  check_bool "hw owner back to OS" true
    (pf.Sanctorum_platform.Platform.owner_at ~paddr:spare_lo
    = Hw.Trap.domain_untrusted);
  (* the reclaimed memory is zeroed *)
  check_bool "reclaimed memory zeroed" true
    (Hw.Phys_mem.read_u64 (Hw.Machine.mem tb.Testbed.machine) spare_lo = 0L);
  (* and the enclave still runs fine on the memory it kept *)
  match
    Os.run_enclave os ~eid ~tid:(List.hd inst.Os.tids) ~core:0 ~fuel:1000 ()
  with
  | Ok Os.Exited -> ()
  | Ok _ | Error _ -> Alcotest.fail "enclave broken by giving back spare memory"

let suite =
  ( "dynamic",
    [
      Alcotest.test_case "AEX resume preserves progress" `Quick
        test_aex_resume_preserves_progress;
      Alcotest.test_case "read_aex_state validation" `Quick
        test_read_aex_requires_pending;
      Alcotest.test_case "enclave returns memory to the OS" `Quick
        test_enclave_blocks_own_memory;
    ] )
