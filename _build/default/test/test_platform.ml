(* Platform backends (paper §VII): Sanctum DRAM regions + LLC coloring,
   Keystone PMP. Experiment P1's correctness half. *)
module Hw = Sanctorum_hw
module Pf = Sanctorum_platform
open Sanctorum_os

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_sanctum_granularity () =
  let tb = Testbed.create ~backend:Testbed.Sanctum_backend () in
  let pf = tb.Testbed.platform in
  check_int "region size" (16 * 1024 * 1024 / 64) pf.Pf.Platform.alloc_unit;
  check_bool "llc partitioned" true pf.Pf.Platform.llc_partitioned;
  (* grants must be region-aligned *)
  (match pf.Pf.Platform.assign_range ~lo:4096 ~hi:8192 5 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "sub-region grant accepted");
  match
    pf.Pf.Platform.assign_range ~lo:pf.Pf.Platform.alloc_unit
      ~hi:(2 * pf.Pf.Platform.alloc_unit)
      5
  with
  | Ok () ->
      check_int "owner updated" 5
        (pf.Pf.Platform.owner_at ~paddr:(pf.Pf.Platform.alloc_unit + 100))
  | Error m -> Alcotest.fail m

let test_keystone_granularity () =
  let tb = Testbed.create ~backend:Testbed.Keystone_backend () in
  let pf = tb.Testbed.platform in
  check_int "page granularity" 4096 pf.Pf.Platform.alloc_unit;
  check_bool "llc shared" false pf.Pf.Platform.llc_partitioned;
  match pf.Pf.Platform.assign_range ~lo:(1024 * 1024) ~hi:(1024 * 1024 + 4096) 5 with
  | Ok () ->
      check_int "owner updated" 5 (pf.Pf.Platform.owner_at ~paddr:(1024 * 1024))
  | Error m -> Alcotest.fail m

let test_sm_memory_reserved () =
  List.iter
    (fun backend ->
      let tb = Testbed.create ~backend () in
      let pf = tb.Testbed.platform in
      check_int
        (Testbed.backend_name backend ^ " sm owns bottom")
        Hw.Trap.domain_sm
        (pf.Pf.Platform.owner_at ~paddr:0))
    [ Testbed.Sanctum_backend; Testbed.Keystone_backend ]

let test_sanctum_llc_coloring_disjoint () =
  let tb = Testbed.create ~backend:Testbed.Sanctum_backend () in
  let l2 = Hw.Machine.l2 tb.Testbed.machine in
  let region_bytes = tb.Testbed.platform.Pf.Platform.alloc_unit in
  (* Any two addresses in different regions map to different sets. *)
  let ok = ref true in
  for r1 = 0 to 7 do
    for r2 = 0 to 7 do
      if r1 <> r2 then
        for off = 0 to 3 do
          let a1 = (r1 * region_bytes) + (off * 64) in
          let a2 = (r2 * region_bytes) + (off * 64) in
          if Hw.Cache.set_of_paddr l2 a1 = Hw.Cache.set_of_paddr l2 a2 then
            ok := false
        done
    done
  done;
  check_bool "distinct regions, disjoint sets" true !ok

let test_keystone_llc_shared () =
  let tb = Testbed.create ~backend:Testbed.Keystone_backend () in
  let l2 = Hw.Machine.l2 tb.Testbed.machine in
  (* Two addresses 64 KiB apart (same index bits) share a set. *)
  let sets = (Hw.Cache.config l2).Hw.Cache.sets in
  let a1 = 1024 * 1024 in
  let a2 = a1 + (sets * 64) in
  check_int "same set across owners" (Hw.Cache.set_of_paddr l2 a1)
    (Hw.Cache.set_of_paddr l2 a2)

let test_enter_domain_flushes () =
  List.iter
    (fun backend ->
      let tb = Testbed.create ~backend () in
      let pf = tb.Testbed.platform in
      let c = Hw.Machine.core tb.Testbed.machine 0 in
      ignore (Hw.Cache.access c.Hw.Machine.l1 ~paddr:0x200000);
      Hw.Tlb.insert c.Hw.Machine.tlb ~vpn:5 ~ppn:9
        ~perms:{ Hw.Tlb.r = true; w = false; x = false; u = true };
      pf.Pf.Platform.enter_domain ~core:c 7;
      check_bool "l1 flushed" false
        (Hw.Cache.probe c.Hw.Machine.l1 ~paddr:0x200000);
      check_int "tlb flushed" 0 (Hw.Tlb.entry_count c.Hw.Machine.tlb);
      check_int "domain set" 7 c.Hw.Machine.domain;
      pf.Pf.Platform.enter_domain ~core:c Hw.Trap.domain_untrusted)
    [ Testbed.Sanctum_backend; Testbed.Keystone_backend ]

let test_clean_range_zeroes () =
  let tb = Testbed.create () in
  let pf = tb.Testbed.platform in
  let mem = Hw.Machine.mem tb.Testbed.machine in
  let unit = pf.Pf.Platform.alloc_unit in
  Hw.Phys_mem.write_string mem ~pos:(4 * unit) "secret-residue";
  pf.Pf.Platform.clean_range ~lo:(4 * unit) ~hi:(5 * unit);
  Alcotest.(check string)
    "zeroed"
    (String.make 14 '\000')
    (Hw.Phys_mem.read_string mem ~pos:(4 * unit) ~len:14)

let test_keystone_pmp_programming () =
  (* After entering an enclave domain on a core, that core's PMP permits
     the enclave range and still denies the monitor's memory. *)
  let tb = Testbed.create ~backend:Testbed.Keystone_backend () in
  let pf = tb.Testbed.platform in
  let base = 2 * 1024 * 1024 in
  (match pf.Pf.Platform.assign_range ~lo:base ~hi:(base + 8192) 9 with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let c = Hw.Machine.core tb.Testbed.machine 0 in
  pf.Pf.Platform.enter_domain ~core:c 9;
  check_bool "own range allowed" true
    (Hw.Pmp.check c.Hw.Machine.pmp ~privilege:Hw.Pmp.U ~access:Hw.Trap.Read
       ~paddr:base);
  check_bool "sm memory denied" false
    (Hw.Pmp.check c.Hw.Machine.pmp ~privilege:Hw.Pmp.U ~access:Hw.Trap.Read
       ~paddr:0x100);
  check_bool "os memory reachable" true
    (Hw.Pmp.check c.Hw.Machine.pmp ~privilege:Hw.Pmp.U ~access:Hw.Trap.Read
       ~paddr:(1024 * 1024));
  (* a second enclave's range is denied on this core *)
  let base2 = 4 * 1024 * 1024 in
  (match pf.Pf.Platform.assign_range ~lo:base2 ~hi:(base2 + 4096) 10 with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  check_bool "foreign enclave denied" false
    (Hw.Pmp.check c.Hw.Machine.pmp ~privilege:Hw.Pmp.U ~access:Hw.Trap.Read
       ~paddr:base2);
  (* back to the OS: both enclave ranges now denied *)
  pf.Pf.Platform.enter_domain ~core:c Hw.Trap.domain_untrusted;
  check_bool "enclave denied to OS" false
    (Hw.Pmp.check c.Hw.Machine.pmp ~privilege:Hw.Pmp.U ~access:Hw.Trap.Read
       ~paddr:base)

let test_dma_checks_both () =
  List.iter
    (fun backend ->
      let tb = Testbed.create ~backend () in
      let m = tb.Testbed.machine in
      (* DMA into OS memory is fine; into monitor memory is not. *)
      (match Hw.Machine.dma_write m ~paddr:(1024 * 1024) "x" with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "dma to OS memory denied");
      match Hw.Machine.dma_write m ~paddr:0x100 "x" with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "dma to monitor memory allowed")
    [ Testbed.Sanctum_backend; Testbed.Keystone_backend ]

let suite =
  ( "platform",
    [
      Alcotest.test_case "sanctum granularity" `Quick test_sanctum_granularity;
      Alcotest.test_case "keystone granularity" `Quick test_keystone_granularity;
      Alcotest.test_case "monitor memory reserved" `Quick test_sm_memory_reserved;
      Alcotest.test_case "sanctum LLC coloring disjoint" `Quick
        test_sanctum_llc_coloring_disjoint;
      Alcotest.test_case "keystone LLC shared" `Quick test_keystone_llc_shared;
      Alcotest.test_case "enter_domain flushes core state" `Quick
        test_enter_domain_flushes;
      Alcotest.test_case "clean_range zeroes memory" `Quick
        test_clean_range_zeroes;
      Alcotest.test_case "keystone PMP programming" `Quick
        test_keystone_pmp_programming;
      Alcotest.test_case "dma checks" `Quick test_dma_checks_both;
    ] )
