(* Robustness corners: PMP entry exhaustion fails closed on Keystone,
   and dedicated (enclave-owned) cores of the Sanctum model. *)
module Hw = Sanctorum_hw
module S = Sanctorum.Sm
module Img = Sanctorum.Image
module Atk = Sanctorum_attack
open Sanctorum_os

let check_bool = Alcotest.(check bool)

let exit_prog = Hw.Isa.[ Op_imm (Add, a7, zero, S.Ecall.exit_enclave); Ecall ]

(* Install enough enclaves that a Keystone domain switch cannot fit one
   deny entry per foreign enclave: every probe of foreign enclave
   memory must still be denied (fail closed, never fail open). *)
let test_keystone_pmp_exhaustion () =
  let tb = Testbed.create ~backend:Testbed.Keystone_backend () in
  let os = tb.Testbed.os in
  let installs =
    List.init 18 (fun i ->
        Result.get_ok
          (Os.install_enclave os
             (Img.of_program ~evbase:(0x10000 + (i * 0x10000)) exit_prog)))
  in
  (* the machine is now far beyond 16 PMP entries of enclave ranges *)
  let victims = List.filteri (fun i _ -> i < 6) installs in
  List.iter
    (fun (v : Os.installed) ->
      let paddr = List.hd (Atk.Malicious_os.enclave_paddrs os ~eid:v.Os.eid) in
      match Atk.Malicious_os.os_load os ~core:1 ~paddr with
      | Atk.Malicious_os.Denied -> ()
      | Atk.Malicious_os.Leaked _ ->
          Alcotest.fail "PMP exhaustion leaked enclave memory to the OS")
    victims;
  (* and each enclave still cannot reach its neighbours: run one that
     tries to read another's physical page *)
  let a = List.nth installs 0 and b = List.nth installs 17 in
  let b_page = List.hd (Atk.Malicious_os.enclave_paddrs os ~eid:b.Os.eid) in
  let prog =
    Hw.Isa.(li t0 b_page @ [ Load (Ld, a0, t0, 0) ] @ exit_prog)
  in
  let spy =
    Result.get_ok
      (Os.install_enclave os (Img.of_program ~evbase:0x200000 prog))
  in
  (match
     Os.run_enclave os ~eid:spy.Os.eid ~tid:(List.hd spy.Os.tids) ~core:0
       ~fuel:1000 ()
   with
  | Ok (Os.Faulted _) -> ()
  | Ok Os.Exited -> Alcotest.fail "spy enclave read a neighbour's memory"
  | Ok _ | Error _ -> Alcotest.fail "unexpected outcome");
  ignore a

(* §V-B: cores are first-class resources. A core granted to an enclave
   is usable by that enclave and refused to others. *)
let test_dedicated_core () =
  let tb = Testbed.create () in
  let os = tb.Testbed.os in
  let sm = tb.Testbed.sm in
  let i1 =
    Result.get_ok (Os.install_enclave os (Img.of_program ~evbase:0x10000 exit_prog))
  in
  let i2 =
    Result.get_ok (Os.install_enclave os (Img.of_program ~evbase:0x40000 exit_prog))
  in
  let e1 = i1.Os.eid and e2 = i2.Os.eid in
  let kind = Sanctorum.Resource.Core_resource in
  (* dedicate core 3 to e1 *)
  Result.get_ok (S.block_resource sm ~caller:S.Os kind ~rid:3);
  Result.get_ok (S.clean_resource sm ~caller:S.Os kind ~rid:3);
  Result.get_ok (S.grant_resource sm ~caller:S.Os kind ~rid:3 ~to_:(S.To_enclave e1));
  Result.get_ok (S.accept_resource sm ~caller:(S.Enclave_caller e1) kind ~rid:3);
  (* e1 runs on its core *)
  (match Os.run_enclave os ~eid:e1 ~tid:(List.hd i1.Os.tids) ~core:3 ~fuel:100 () with
  | Ok Os.Exited -> ()
  | Ok _ | Error _ -> Alcotest.fail "owner enclave refused its dedicated core");
  (* e2 is refused on e1's core *)
  (match S.enter_enclave sm ~caller:S.Os ~eid:e2 ~tid:(List.hd i2.Os.tids) ~core:3 with
  | Error Sanctorum.Api_error.Unauthorized -> ()
  | Ok () -> Alcotest.fail "foreign enclave scheduled on a dedicated core"
  | Error e -> Alcotest.failf "unexpected: %s" (Sanctorum.Api_error.to_string e));
  (* e2 still runs on a time-multiplexed core *)
  match Os.run_enclave os ~eid:e2 ~tid:(List.hd i2.Os.tids) ~core:0 ~fuel:100 () with
  | Ok Os.Exited -> ()
  | Ok _ | Error _ -> Alcotest.fail "e2 refused a shared core"

(* Image validation corners. *)
let test_image_validation () =
  let bad f = match f () with
    | exception Invalid_argument _ -> true
    | (_ : Img.t) -> false
  in
  check_bool "unaligned evbase" true
    (bad (fun () -> Img.make ~evbase:100 ~evsize:4096 []));
  check_bool "page outside evrange" true
    (bad (fun () ->
         Img.make ~evbase:0x10000 ~evsize:4096
           [ { Img.vaddr = 0x20000; r = true; w = false; x = false; contents = "" } ]));
  check_bool "oversized contents" true
    (bad (fun () ->
         Img.make ~evbase:0x10000 ~evsize:4096
           [ { Img.vaddr = 0x10000; r = true; w = false; x = false;
               contents = String.make 5000 'x' } ]));
  check_bool "shared overlapping evrange" true
    (bad (fun () ->
         Img.make ~evbase:0x10000 ~evsize:8192 ~shared:[ (0x11000, 4096) ] []));
  check_bool "program too large" true
    (bad (fun () ->
         Img.of_program ~evbase:0x10000
           (List.init 2000 (fun _ -> Hw.Isa.nop))))

let suite =
  ( "robustness",
    [
      Alcotest.test_case "keystone PMP exhaustion fails closed" `Quick
        test_keystone_pmp_exhaustion;
      Alcotest.test_case "dedicated cores" `Quick test_dedicated_core;
      Alcotest.test_case "image validation" `Quick test_image_validation;
    ] )
