(* Fig. 2 conformance: the generic resource state machine. *)
module R = Sanctorum.Resource
module E = Sanctorum.Api_error
module Hw = Sanctorum_hw

let untrusted = Hw.Trap.domain_untrusted
let enclave_a = 2
let enclave_b = 3
let check_bool = Alcotest.(check bool)

let is_error = function Error _ -> true | Ok _ -> false
let fresh () = R.create ~cores:4 ~memory_units:8

let test_initial_state () =
  let t = fresh () in
  Alcotest.(check int) "cores" 4 (R.count t R.Core_resource);
  Alcotest.(check int) "memory" 8 (R.count t R.Memory_resource);
  (match R.state t R.Memory_resource ~rid:0 with
  | Ok (R.Owned d) -> Alcotest.(check int) "owner" untrusted d
  | _ -> Alcotest.fail "bad initial state");
  check_bool "out of range" true (is_error (R.state t R.Core_resource ~rid:4));
  check_bool "negative" true (is_error (R.state t R.Core_resource ~rid:(-1)))

(* The happy cycle: owned → blocked → available → offered → owned. *)
let test_full_cycle () =
  let t = fresh () in
  let k = R.Memory_resource in
  (match R.block t k ~rid:0 ~by:untrusted with
  | Ok () -> ()
  | Error e -> Alcotest.failf "block: %s" (E.to_string e));
  (match R.clean t k ~rid:0 with
  | Ok d -> Alcotest.(check int) "previous owner" untrusted d
  | Error e -> Alcotest.failf "clean: %s" (E.to_string e));
  (match R.grant t k ~rid:0 ~to_:enclave_a ~auto_accept:false with
  | Ok () -> ()
  | Error e -> Alcotest.failf "grant: %s" (E.to_string e));
  (match R.state t k ~rid:0 with
  | Ok (R.Offered d) -> Alcotest.(check int) "offered to" enclave_a d
  | _ -> Alcotest.fail "expected offered");
  (match R.accept t k ~rid:0 ~by:enclave_a with
  | Ok () -> ()
  | Error e -> Alcotest.failf "accept: %s" (E.to_string e));
  match R.state t k ~rid:0 with
  | Ok (R.Owned d) -> Alcotest.(check int) "owned by" enclave_a d
  | _ -> Alcotest.fail "expected owned"

let test_illegal_transitions () =
  let t = fresh () in
  let k = R.Memory_resource in
  (* clean without block *)
  check_bool "clean owned" true (is_error (R.clean t k ~rid:0));
  (* grant without clean *)
  check_bool "grant owned" true
    (is_error (R.grant t k ~rid:0 ~to_:enclave_a ~auto_accept:false));
  (* accept without offer *)
  check_bool "accept owned" true (is_error (R.accept t k ~rid:0 ~by:enclave_a));
  (* block by non-owner *)
  check_bool "block foreign" true (is_error (R.block t k ~rid:0 ~by:enclave_a));
  (* double block *)
  (match R.block t k ~rid:0 ~by:untrusted with Ok () -> () | Error _ -> ());
  check_bool "block blocked" true (is_error (R.block t k ~rid:0 ~by:untrusted));
  (* block available *)
  (match R.clean t k ~rid:0 with Ok _ -> () | Error _ -> ());
  check_bool "block available" true (is_error (R.block t k ~rid:0 ~by:untrusted));
  (* accept by the wrong domain *)
  (match R.grant t k ~rid:0 ~to_:enclave_a ~auto_accept:false with
  | Ok () -> ()
  | Error _ -> ());
  (match R.accept t k ~rid:0 ~by:enclave_b with
  | Error E.Unauthorized -> ()
  | Ok () -> Alcotest.fail "wrong domain accepted"
  | Error e -> Alcotest.failf "unexpected: %s" (E.to_string e));
  (* double clean *)
  check_bool "clean offered" true (is_error (R.clean t k ~rid:0))

let test_sm_can_block_on_behalf () =
  (* Enclave deletion: the monitor blocks the dead enclave's resources,
     while the OS cannot touch them itself. *)
  let t = fresh () in
  ignore (R.block t R.Memory_resource ~rid:0 ~by:untrusted);
  ignore (R.clean t R.Memory_resource ~rid:0);
  ignore (R.grant t R.Memory_resource ~rid:0 ~to_:enclave_a ~auto_accept:true);
  (match R.block t R.Memory_resource ~rid:0 ~by:untrusted with
  | Error E.Unauthorized -> ()
  | Ok () -> Alcotest.fail "OS blocked an enclave-owned resource"
  | Error e -> Alcotest.failf "unexpected: %s" (E.to_string e));
  match R.block t R.Memory_resource ~rid:0 ~by:Hw.Trap.domain_sm with
  | Ok () -> ()
  | Error e -> Alcotest.failf "SM block failed: %s" (E.to_string e)

let test_units_owned_by () =
  let t = fresh () in
  Alcotest.(check (list int))
    "all untrusted"
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    (R.units_owned_by t R.Memory_resource untrusted);
  ignore (R.block t R.Memory_resource ~rid:3 ~by:untrusted);
  Alcotest.(check (list int))
    "blocked excluded"
    [ 0; 1; 2; 4; 5; 6; 7 ]
    (R.units_owned_by t R.Memory_resource untrusted)

(* qcheck: random action sequences never reach a state outside the
   Fig. 2 machine, and every accepted transition is a Fig. 2 edge. *)
type action = Block of int | Clean of int | Grant of int * int | Accept of int * int

let action_gen =
  let open QCheck2.Gen in
  let rid = int_range 0 7 in
  let dom = int_range 1 4 in
  oneof
    [
      map (fun r -> Block r) rid;
      map (fun r -> Clean r) rid;
      map2 (fun r d -> Grant (r, d)) rid dom;
      map2 (fun r d -> Accept (r, d)) rid dom;
    ]

let qcheck_fig2 =
  QCheck2.Test.make ~name:"fig2: accepted transitions follow the edges"
    ~count:300
    QCheck2.Gen.(list_size (int_range 0 60) action_gen)
    (fun actions ->
      let t = fresh () in
      let k = R.Memory_resource in
      List.for_all
        (fun action ->
          let before = Result.get_ok (R.state t k ~rid:(match action with
            | Block r | Clean r | Grant (r, _) | Accept (r, _) -> r)) in
          let result =
            match action with
            | Block r -> (R.block t k ~rid:r ~by:untrusted :> unit E.result)
            | Clean r -> Result.map (fun _ -> ()) (R.clean t k ~rid:r)
            | Grant (r, d) -> R.grant t k ~rid:r ~to_:d ~auto_accept:false
            | Accept (r, d) -> R.accept t k ~rid:r ~by:d
          in
          let after = Result.get_ok (R.state t k ~rid:(match action with
            | Block r | Clean r | Grant (r, _) | Accept (r, _) -> r)) in
          match result with
          | Error _ -> after = before (* failed calls change nothing *)
          | Ok () -> begin
              (* the transition taken must be a legal edge *)
              match (action, before, after) with
              | Block _, R.Owned d, R.Blocked d' -> d = d' && d = untrusted
              | Clean _, R.Blocked _, R.Available -> true
              | Grant (_, d), R.Available, R.Offered d' -> d = d'
              | Grant (_, d), R.Available, R.Owned d' -> d = d' && d = untrusted
              | Accept (_, d), R.Offered d', R.Owned d'' -> d = d' && d = d''
              | _ -> false
            end)
        actions)

let suite =
  ( "resource-fig2",
    [
      Alcotest.test_case "initial state" `Quick test_initial_state;
      Alcotest.test_case "full life cycle" `Quick test_full_cycle;
      Alcotest.test_case "illegal transitions rejected" `Quick
        test_illegal_transitions;
      Alcotest.test_case "monitor blocks on enclave's behalf" `Quick
        test_sm_can_block_on_behalf;
      Alcotest.test_case "ownership listing" `Quick test_units_owned_by;
      QCheck_alcotest.to_alcotest qcheck_fig2;
    ] )
