(* Fig. 5 conformance: mailboxes and local attestation (§VI-B). *)
module Hw = Sanctorum_hw
module S = Sanctorum.Sm
module E = Sanctorum.Api_error
module Mb = Sanctorum.Mailbox
module Img = Sanctorum.Image
open Sanctorum_os

let check_bool = Alcotest.(check bool)
let is_error = function Error _ -> true | Ok _ -> false

(* -------------------- unit level (the state machine) ---------------- *)

let test_unit_fig5 () =
  let mb = Mb.create ~slots:2 in
  let e1 = Mb.From_enclave 0x11000 in
  (* deposit without accept *)
  check_bool "deposit unaccepted" true
    (is_error (Mb.deposit mb ~sender:e1 ~sender_measurement:"m" ~msg:"x"));
  (* accept then deposit then retrieve *)
  (match Mb.accept mb ~sender:e1 with Ok () -> () | Error _ -> Alcotest.fail "accept");
  (match Mb.deposit mb ~sender:e1 ~sender_measurement:"meas1" ~msg:"hello" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "deposit: %s" (E.to_string e));
  (* full mailbox rejects a second deposit *)
  check_bool "deposit full" true
    (is_error (Mb.deposit mb ~sender:e1 ~sender_measurement:"meas1" ~msg:"again"));
  (match Mb.retrieve mb ~sender:e1 with
  | Ok (msg, meas) ->
      check_bool "padded message" true
        (String.length msg = Mb.message_size
        && String.sub msg 0 5 = "hello");
      Alcotest.(check string) "measurement tag" "meas1" meas
  | Error e -> Alcotest.failf "retrieve: %s" (E.to_string e));
  (* slot returns to the unaccepted pool *)
  check_bool "retrieve again" true (is_error (Mb.retrieve mb ~sender:e1));
  check_bool "deposit after retrieve" true
    (is_error (Mb.deposit mb ~sender:e1 ~sender_measurement:"m" ~msg:"x"))

let test_unit_slots_exhaustion () =
  let mb = Mb.create ~slots:2 in
  (match Mb.accept mb ~sender:(Mb.From_enclave 1) with Ok () -> () | Error _ -> ());
  (match Mb.accept mb ~sender:(Mb.From_enclave 2) with Ok () -> () | Error _ -> ());
  (match Mb.accept mb ~sender:(Mb.From_enclave 3) with
  | Error (E.Out_of_resources _) -> ()
  | Ok () -> Alcotest.fail "third accept on two slots"
  | Error e -> Alcotest.failf "unexpected: %s" (E.to_string e));
  (* re-accepting an existing sender reuses (and resets) its slot *)
  (match Mb.deposit mb ~sender:(Mb.From_enclave 1) ~sender_measurement:"m" ~msg:"x" with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "deposit");
  (match Mb.accept mb ~sender:(Mb.From_enclave 1) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "re-accept");
  check_bool "re-accept drops pending mail" true
    (is_error (Mb.retrieve mb ~sender:(Mb.From_enclave 1)));
  (* message too large *)
  match
    Mb.deposit mb ~sender:(Mb.From_enclave 1) ~sender_measurement:"m"
      ~msg:(String.make (Mb.message_size + 1) 'x')
  with
  | Error (E.Illegal_argument _) -> ()
  | Ok () -> Alcotest.fail "oversized message accepted"
  | Error e -> Alcotest.failf "unexpected: %s" (E.to_string e)

(* -------------------- monitor level (authenticated tags) ------------ *)

let two_enclaves () =
  let tb = Testbed.create () in
  let mk evbase =
    Img.of_program ~evbase Hw.Isa.[ Op_imm (Add, a7, zero, 1); Ecall ]
  in
  let i1 = Result.get_ok (Os.install_enclave tb.Testbed.os (mk 0x10000)) in
  let i2 = Result.get_ok (Os.install_enclave tb.Testbed.os (mk 0x40000)) in
  (tb, i1, i2)

let test_sm_mail_measurement_tags () =
  let tb, i1, i2 = two_enclaves () in
  let sm = tb.Testbed.sm in
  let e1 = i1.Os.eid and e2 = i2.Os.eid in
  (* E2 readies a mailbox for E1; E1 sends; E2 reads the tag. *)
  Result.get_ok
    (S.accept_mail sm ~caller:(S.Enclave_caller e2) ~sender:(Mb.From_enclave e1));
  Result.get_ok
    (S.send_mail sm ~caller:(S.Enclave_caller e1) ~recipient:e2 ~msg:"probe");
  (match S.get_mail sm ~caller:(S.Enclave_caller e2) ~sender:(Mb.From_enclave e1) with
  | Ok (_, meas) ->
      let m1 = Result.get_ok (S.enclave_measurement sm ~eid:e1) in
      check_bool "tag is sender's true measurement" true (meas = m1)
  | Error e -> Alcotest.failf "get_mail: %s" (E.to_string e));
  (* the OS's tag is the all-zero untrusted measurement *)
  Result.get_ok (S.accept_mail sm ~caller:(S.Enclave_caller e2) ~sender:Mb.From_os);
  Result.get_ok (S.send_mail sm ~caller:S.Os ~recipient:e2 ~msg:"os mail");
  (match S.get_mail sm ~caller:(S.Enclave_caller e2) ~sender:Mb.From_os with
  | Ok (_, meas) ->
      check_bool "os tag" true (meas = String.make 32 '\000')
  | Error e -> Alcotest.failf "get os mail: %s" (E.to_string e))

let test_sm_mail_spoof_resistance () =
  let tb, i1, i2 = two_enclaves () in
  let sm = tb.Testbed.sm in
  let e1 = i1.Os.eid and e2 = i2.Os.eid in
  (* E2 expects E1. The OS (or any other sender) cannot fill that slot. *)
  Result.get_ok
    (S.accept_mail sm ~caller:(S.Enclave_caller e2) ~sender:(Mb.From_enclave e1));
  check_bool "OS cannot spoof" true
    (is_error (S.send_mail sm ~caller:S.Os ~recipient:e2 ~msg:"fake"));
  let i3 =
    Result.get_ok
      (Os.install_enclave tb.Testbed.os
         (Img.of_program ~evbase:0x80000
            Hw.Isa.[ Op_imm (Add, a7, zero, 1); Ecall ]))
  in
  check_bool "third enclave cannot spoof" true
    (is_error
       (S.send_mail sm ~caller:(S.Enclave_caller i3.Os.eid) ~recipient:e2
          ~msg:"fake"));
  (* and the true sender still can *)
  match S.send_mail sm ~caller:(S.Enclave_caller e1) ~recipient:e2 ~msg:"real" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "true sender rejected: %s" (E.to_string e)

let test_sm_mail_requires_initialized () =
  let tb, i1, _ = two_enclaves () in
  let sm = tb.Testbed.sm in
  (* a loading enclave can neither send nor receive *)
  let eid = Sanctorum_os.Os.alloc_metadata tb.Testbed.os `Enclave in
  Result.get_ok
    (S.create_enclave sm ~caller:S.Os ~eid ~evbase:0xa0000 ~evsize:4096 ());
  check_bool "loading cannot accept" true
    (is_error (S.accept_mail sm ~caller:(S.Enclave_caller eid) ~sender:Mb.From_os));
  check_bool "loading cannot be sent to" true
    (is_error (S.send_mail sm ~caller:S.Os ~recipient:eid ~msg:"x"));
  check_bool "loading cannot send" true
    (is_error
       (S.send_mail sm ~caller:(S.Enclave_caller eid) ~recipient:i1.Os.eid
          ~msg:"x"))

let test_local_attestation_fig6 () =
  let tb, i1, i2 = two_enclaves () in
  let sm = tb.Testbed.sm in
  let m1 = Result.get_ok (S.enclave_measurement sm ~eid:i1.Os.eid) in
  (* E2 attests E1 against the correct expected measurement *)
  (match
     Sanctorum.Attestation.local_attest sm ~verifier:i2.Os.eid
       ~prover:i1.Os.eid ~expected:m1
   with
  | Ok true -> ()
  | Ok false -> Alcotest.fail "local attestation rejected honest prover"
  | Error e -> Alcotest.failf "local attest: %s" (E.to_string e));
  (* and rejects a wrong expectation *)
  match
    Sanctorum.Attestation.local_attest sm ~verifier:i2.Os.eid ~prover:i1.Os.eid
      ~expected:(String.make 32 'x')
  with
  | Ok false -> ()
  | Ok true -> Alcotest.fail "local attestation accepted wrong measurement"
  | Error e -> Alcotest.failf "local attest: %s" (E.to_string e)

let suite =
  ( "mailbox-fig5",
    [
      Alcotest.test_case "state machine" `Quick test_unit_fig5;
      Alcotest.test_case "slot exhaustion and reset" `Quick
        test_unit_slots_exhaustion;
      Alcotest.test_case "measurement tags" `Quick test_sm_mail_measurement_tags;
      Alcotest.test_case "spoof resistance" `Quick test_sm_mail_spoof_resistance;
      Alcotest.test_case "initialized-only" `Quick
        test_sm_mail_requires_initialized;
      Alcotest.test_case "local attestation (fig 6)" `Quick
        test_local_attestation_fig6;
    ] )
