module C = Sanctorum_crypto
module Hex = Sanctorum_util.Hex

let check = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let hex s = Hex.encode s

(* FIPS 202 vectors (cross-checked against Python hashlib). *)
let test_sha3_vectors () =
  check "sha3-256 empty"
    "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a"
    (hex (C.Sha3.sha3_256 ""));
  check "sha3-256 abc"
    "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532"
    (hex (C.Sha3.sha3_256 "abc"));
  check "sha3-512 abc"
    "b751850b1a57168a5693cd924b6b096e08f621827444f70d884f5d0240d2712e10e116e9192af3c91a7ec57647e3934057340b4cf408d5a56592f8274eec53f0"
    (hex (C.Sha3.sha3_512 "abc"));
  check "shake128 abc"
    "5881092dd818bf5cf8a3ddb793fbcba7"
    (hex (C.Sha3.shake128 ~len:16 "abc"));
  let m1024 = String.concat "" (List.init 4 (fun _ -> String.init 256 Char.chr)) in
  check "sha3-256 1KiB"
    "b6c70631c6ff932b9f380d9cde8750eb9bea393817a9aea410c2119eb7b9b870"
    (hex (C.Sha3.sha3_256 m1024));
  check "sha3-512 1KiB"
    "b052fd4a09f988bbe4112d9a3eca8ccc517e56da866c1609504c37871146da80731bb681674a2000a41bcb78230b3d9069eb42820293ce23cba294550a1d4d3b"
    (hex (C.Sha3.sha3_512 m1024));
  check "shake256 1KiB"
    "60aff3fd4c0f158ba0ed6890336a907451281739d48cc8315211b3666061974229707d69e66dfc1961e752f68c312cdc17f006c5cebbb186c9fbc8e33e86fe0b"
    (hex (C.Sha3.shake256 ~len:64 m1024))

(* Rate-boundary messages exercise the padding logic. *)
let test_sha3_boundaries () =
  check "135 bytes" "8094bb53c44cfb1e67b7c30447f9a1c33696d2463ecc1d9c92538913392843c9"
    (hex (C.Sha3.sha3_256 (String.make 135 'a')));
  check "136 bytes" "3fc5559f14db8e453a0a3091edbd2bc25e11528d81c66fa570a4efdcc2695ee1"
    (hex (C.Sha3.sha3_256 (String.make 136 'a')));
  check "137 bytes" "f8d6846cedd2ccfadf15c5879ef95af724d799eed7391fb1c91f95344e738614"
    (hex (C.Sha3.sha3_256 (String.make 137 'a')))

let test_sha3_streaming () =
  let t = C.Sha3.init_sha3_256 () in
  C.Sha3.absorb t "ab";
  C.Sha3.absorb t "";
  C.Sha3.absorb t "c";
  check "streaming = one-shot" (hex (C.Sha3.sha3_256 "abc"))
    (hex (C.Sha3.finalize t ~len:32));
  Alcotest.check_raises "double finalize"
    (Invalid_argument "Sha3.finalize: context already finalized") (fun () ->
      ignore (C.Sha3.finalize t ~len:32))

let test_hmac () =
  let tag = C.Hmac.mac ~key:"key" "message" in
  Alcotest.(check int) "tag size" 32 (String.length tag);
  check_bool "verify ok" true (C.Hmac.verify ~key:"key" ~msg:"message" ~tag);
  check_bool "verify bad msg" false
    (C.Hmac.verify ~key:"key" ~msg:"messagf" ~tag);
  check_bool "verify bad key" false
    (C.Hmac.verify ~key:"kez" ~msg:"message" ~tag);
  (* long keys are hashed down *)
  let long_key = String.make 500 'k' in
  let tag2 = C.Hmac.mac ~key:long_key "m" in
  check_bool "long key verifies" true
    (C.Hmac.verify ~key:long_key ~msg:"m" ~tag:tag2);
  check_bool "distinct keys distinct tags" true (tag <> tag2)

let test_hkdf () =
  let a = C.Hkdf.derive ~salt:"s" ~ikm:"secret" ~info:"ctx" ~len:64 in
  let b = C.Hkdf.derive ~salt:"s" ~ikm:"secret" ~info:"ctx" ~len:64 in
  let c = C.Hkdf.derive ~salt:"s" ~ikm:"secret" ~info:"other" ~len:64 in
  Alcotest.(check int) "length" 64 (String.length a);
  check "deterministic" (hex a) (hex b);
  check_bool "info separates" true (a <> c);
  (* expand prefix property: a 32-byte request is a prefix of a 64-byte
     request with the same inputs *)
  let short = C.Hkdf.derive ~salt:"s" ~ikm:"secret" ~info:"ctx" ~len:32 in
  check "prefix" (hex short) (hex (String.sub a 0 32))

let test_drbg () =
  let r1 = C.Drbg.create ~seed:"seed" in
  let r2 = C.Drbg.create ~seed:"seed" in
  check "deterministic" (hex (C.Drbg.random_bytes r1 48))
    (hex (C.Drbg.random_bytes r2 48));
  check_bool "stream advances" true
    (C.Drbg.random_bytes r1 16 <> C.Drbg.random_bytes r1 16);
  let r3 = C.Drbg.create ~seed:"other" in
  check_bool "seed separates" true
    (C.Drbg.random_bytes r3 16 <> C.Drbg.random_bytes r2 16);
  let bound = 10 in
  for _ = 1 to 100 do
    let v = C.Drbg.random_int r1 bound in
    if v < 0 || v >= bound then Alcotest.fail "random_int out of range"
  done;
  let m = C.Bignum.of_int 1000 in
  for _ = 1 to 50 do
    let s = C.Drbg.random_scalar r1 ~m in
    if C.Bignum.is_zero s || C.Bignum.compare s m >= 0 then
      Alcotest.fail "random_scalar out of range"
  done

let bn = C.Bignum.of_decimal

let test_bignum_basic () =
  let a = bn "123456789012345678901234567890" in
  let b = bn "987654321098765432109876543210" in
  check "add" "1111111110111111111011111111100"
    (C.Bignum.to_hex (C.Bignum.add a b) |> fun h ->
     (* compare via decimal reconstruction instead *)
     ignore h;
     let sum = C.Bignum.add a b in
     if C.Bignum.equal sum (bn "1111111110111111111011111111100") then
       "1111111110111111111011111111100"
     else "mismatch");
  check_bool "sub" true
    (C.Bignum.equal (C.Bignum.sub b a) (bn "864197532086419753208641975320"));
  check_bool "mul" true
    (C.Bignum.equal (C.Bignum.mul a b)
       (bn "121932631137021795226185032733622923332237463801111263526900"));
  let q, r = C.Bignum.divmod b a in
  check_bool "div" true (C.Bignum.equal q (C.Bignum.of_int 8));
  check_bool "rem" true (C.Bignum.equal r (bn "9000000000900000000090"));
  Alcotest.check_raises "negative sub"
    (Invalid_argument "Bignum.sub: negative result") (fun () ->
      ignore (C.Bignum.sub a b));
  (match C.Bignum.divmod a C.Bignum.zero with
  | exception Division_by_zero -> ()
  | _ -> Alcotest.fail "division by zero not raised");
  check_bool "to_int small" true
    (C.Bignum.to_int_opt (C.Bignum.of_int 123456) = Some 123456);
  check_bool "to_int large" true (C.Bignum.to_int_opt a = None)

let test_bignum_modular () =
  let p = C.Field.p in
  check_bool "p is prime" true (C.Bignum.is_probable_prime p);
  check_bool "L is prime" true (C.Bignum.is_probable_prime C.Curve.order);
  check_bool "30 is composite" false
    (C.Bignum.is_probable_prime (C.Bignum.of_int 30));
  check_bool "2^61-1 prime" true
    (C.Bignum.is_probable_prime
       (C.Bignum.sub (C.Bignum.shift_left C.Bignum.one 61) C.Bignum.one));
  check_bool "2^67-1 composite" false
    (C.Bignum.is_probable_prime
       (C.Bignum.sub (C.Bignum.shift_left C.Bignum.one 67) C.Bignum.one));
  (* Fermat: a^(p-1) = 1 mod p *)
  let a = bn "31415926535897932384626433832795" in
  check_bool "fermat" true
    (C.Bignum.equal
       (C.Bignum.mod_exp a (C.Bignum.sub p C.Bignum.one) ~m:p)
       C.Bignum.one);
  let inv = C.Bignum.mod_inv a ~m:p in
  check_bool "mod_inv" true
    (C.Bignum.equal (C.Bignum.mod_mul a inv ~m:p) C.Bignum.one)

let test_bignum_bytes () =
  let a = bn "1234567890123456789" in
  let be = C.Bignum.to_bytes_be ~len:16 a in
  check_bool "be roundtrip" true (C.Bignum.equal (C.Bignum.of_bytes_be be) a);
  let le = C.Bignum.to_bytes_le ~len:16 a in
  check_bool "le roundtrip" true (C.Bignum.equal (C.Bignum.of_bytes_le le) a);
  check_bool "hex roundtrip" true
    (C.Bignum.equal (C.Bignum.of_hex (C.Bignum.to_hex a)) a)

let gen_bignum =
  QCheck2.Gen.(
    map
      (fun l -> C.Bignum.of_bytes_be (String.concat "" (List.map (String.make 1) l)))
      (list_size (int_range 0 40) char))

let qcheck_bignum_add_sub =
  QCheck2.Test.make ~name:"bignum (a+b)-b = a" ~count:300
    QCheck2.Gen.(pair gen_bignum gen_bignum)
    (fun (a, b) ->
      C.Bignum.equal (C.Bignum.sub (C.Bignum.add a b) b) a)

let qcheck_bignum_divmod =
  QCheck2.Test.make ~name:"bignum divmod reconstruction" ~count:300
    QCheck2.Gen.(pair gen_bignum gen_bignum)
    (fun (a, b) ->
      if C.Bignum.is_zero b then true
      else begin
        let q, r = C.Bignum.divmod a b in
        C.Bignum.compare r b < 0
        && C.Bignum.equal (C.Bignum.add (C.Bignum.mul q b) r) a
      end)

let qcheck_bignum_mul_comm =
  QCheck2.Test.make ~name:"bignum mul commutes" ~count:200
    QCheck2.Gen.(pair gen_bignum gen_bignum)
    (fun (a, b) -> C.Bignum.equal (C.Bignum.mul a b) (C.Bignum.mul b a))

let qcheck_bignum_shift =
  QCheck2.Test.make ~name:"bignum shift left/right inverse" ~count:200
    QCheck2.Gen.(pair gen_bignum (int_range 0 100))
    (fun (a, n) ->
      C.Bignum.equal (C.Bignum.shift_right (C.Bignum.shift_left a n) n) a)

let test_field () =
  let x = C.Field.of_int 12345 in
  let y = C.Field.of_int 67890 in
  check_bool "add comm" true
    (C.Field.equal (C.Field.add x y) (C.Field.add y x));
  check_bool "inv" true
    (C.Field.equal (C.Field.mul x (C.Field.inv x)) C.Field.one);
  check_bool "neg" true
    (C.Field.equal (C.Field.add x (C.Field.neg x)) C.Field.zero);
  (* sqrt of a square is a square root *)
  let sq = C.Field.square x in
  (match C.Field.sqrt sq with
  | None -> Alcotest.fail "square has no root"
  | Some r -> check_bool "sqrt" true (C.Field.equal (C.Field.square r) sq));
  (* -1 is a QR mod p (p = 1 mod 4), 2 is not a QR mod 2^255-19 *)
  (match C.Field.sqrt (C.Field.neg C.Field.one) with
  | None -> Alcotest.fail "-1 should be a QR"
  | Some r ->
      check_bool "sqrt(-1)^2 = -1" true
        (C.Field.equal (C.Field.square r) (C.Field.neg C.Field.one)));
  check_bool "2 is not a QR" true (C.Field.sqrt (C.Field.of_int 2) = None);
  (* byte roundtrip *)
  let b = C.Field.to_bytes_le x in
  Alcotest.(check int) "32 bytes" 32 (String.length b);
  check_bool "bytes roundtrip" true (C.Field.equal (C.Field.of_bytes_le b) x)

let test_curve () =
  let module Cv = C.Curve in
  check_bool "base on curve" true (Cv.is_on_curve Cv.base);
  check_bool "identity on curve" true (Cv.is_on_curve Cv.identity);
  (* Base point matches the published Ed25519 constants. *)
  let x, y = Cv.to_affine Cv.base in
  check "Bx"
    "216936d3cd6e53fec0a4e231fdd6dc5c692cc7609525a7b2c9562d608f25d51a"
    (C.Bignum.to_hex (C.Field.to_bignum x));
  check "By"
    "6666666666666666666666666666666666666666666666666666666666666658"
    (C.Bignum.to_hex (C.Field.to_bignum y));
  (* group laws *)
  let p2 = Cv.double Cv.base in
  check_bool "2B = B+B" true (Cv.equal p2 (Cv.add Cv.base Cv.base));
  check_bool "B + id = B" true (Cv.equal (Cv.add Cv.base Cv.identity) Cv.base);
  check_bool "B - B = id" true
    (Cv.equal (Cv.add Cv.base (Cv.negate Cv.base)) Cv.identity);
  check_bool "L*B = id" true
    (Cv.equal (Cv.scalar_mul Cv.order Cv.base) Cv.identity);
  let three = C.Bignum.of_int 3 and two = C.Bignum.of_int 2 in
  check_bool "3B = 2B + B" true
    (Cv.equal (Cv.scalar_mul three Cv.base) (Cv.add (Cv.scalar_mul two Cv.base) Cv.base));
  (* encode / decode *)
  let e = Cv.encode p2 in
  Alcotest.(check int) "encoded size" Cv.encoded_size (String.length e);
  (match Cv.decode e with
  | Ok q -> check_bool "decode roundtrip" true (Cv.equal q p2)
  | Error m -> Alcotest.fail m);
  (match Cv.decode (String.make Cv.encoded_size '\x01') with
  | Ok _ -> Alcotest.fail "junk decoded as a point"
  | Error _ -> ());
  (match Cv.decode "short" with
  | Ok _ -> Alcotest.fail "short string decoded"
  | Error _ -> ())

let qcheck_curve_scalar_homomorphism =
  let gen = QCheck2.Gen.(pair (int_range 1 5000) (int_range 1 5000)) in
  QCheck2.Test.make ~name:"(a+b)B = aB + bB" ~count:20 gen (fun (a, b) ->
      let module Cv = C.Curve in
      let open C.Bignum in
      Cv.equal
        (Cv.scalar_mul (of_int (a + b)) Cv.base)
        (Cv.add (Cv.scalar_mul (of_int a) Cv.base) (Cv.scalar_mul (of_int b) Cv.base)))

let test_schnorr () =
  let sk = C.Schnorr.secret_key_of_seed "alpha" in
  let pk = C.Schnorr.public_key sk in
  let s = C.Schnorr.sign sk "hello world" in
  Alcotest.(check int) "sig size" C.Schnorr.signature_size (String.length s);
  check_bool "verify" true (C.Schnorr.verify pk ~msg:"hello world" ~signature:s);
  check_bool "wrong msg" false (C.Schnorr.verify pk ~msg:"hello worle" ~signature:s);
  check_bool "empty msg verify" true
    (C.Schnorr.verify pk ~msg:"" ~signature:(C.Schnorr.sign sk ""));
  (* tamper every component *)
  let flip i =
    String.mapi (fun j c -> if j = i then Char.chr (Char.code c lxor 1) else c) s
  in
  check_bool "tampered R" false
    (C.Schnorr.verify pk ~msg:"hello world" ~signature:(flip 0));
  check_bool "tampered s" false
    (C.Schnorr.verify pk ~msg:"hello world"
       ~signature:(flip (C.Schnorr.signature_size - 1)));
  check_bool "truncated" false
    (C.Schnorr.verify pk ~msg:"hello world" ~signature:(String.sub s 0 64));
  (* wrong key *)
  let pk2 = C.Schnorr.public_key (C.Schnorr.secret_key_of_seed "beta") in
  check_bool "wrong key" false
    (C.Schnorr.verify pk2 ~msg:"hello world" ~signature:s);
  (* determinism of key derivation *)
  let sk' = C.Schnorr.secret_key_of_seed "alpha" in
  check "deterministic keys"
    (hex (C.Schnorr.public_key_to_bytes pk))
    (hex (C.Schnorr.public_key_to_bytes (C.Schnorr.public_key sk')));
  (* public key bytes roundtrip *)
  match C.Schnorr.public_key_of_bytes (C.Schnorr.public_key_to_bytes pk) with
  | Ok pk3 ->
      check_bool "pk roundtrip verifies" true
        (C.Schnorr.verify pk3 ~msg:"hello world" ~signature:s)
  | Error m -> Alcotest.fail m

let test_dh () =
  let rng = C.Drbg.create ~seed:"dh" in
  let sa, pa = C.Dh.generate rng in
  let sb, pb = C.Dh.generate rng in
  check "shared key agreement" (hex (C.Dh.shared_key sa pb))
    (hex (C.Dh.shared_key sb pa));
  let sc, _pc = C.Dh.generate rng in
  check_bool "third party differs" true
    (C.Dh.shared_key sc pb <> C.Dh.shared_key sa pb);
  match C.Dh.public_of_bytes (C.Dh.public_to_bytes pa) with
  | Ok pa' -> check "pub roundtrip" (hex (C.Dh.shared_key sb pa)) (hex (C.Dh.shared_key sb pa'))
  | Error m -> Alcotest.fail m

let test_cert () =
  let root = C.Schnorr.secret_key_of_seed "root" in
  let mid = C.Schnorr.secret_key_of_seed "mid" in
  let leaf = C.Schnorr.secret_key_of_seed "leaf" in
  let c1 =
    C.Cert.issue ~issuer:"root" ~issuer_key:root ~subject:"mid"
      ~subject_key:(C.Schnorr.public_key mid) ()
  in
  let c2 =
    C.Cert.issue ~issuer:"mid" ~issuer_key:mid ~subject:"leaf"
      ~subject_key:(C.Schnorr.public_key leaf)
      ~bound_measurement:(C.Sha3.sha3_256 "binary") ()
  in
  check_bool "sig ok" true
    (C.Cert.verify_signature c1 ~issuer_key:(C.Schnorr.public_key root));
  check_bool "sig wrong issuer" false
    (C.Cert.verify_signature c1 ~issuer_key:(C.Schnorr.public_key mid));
  (match C.Cert.verify_chain ~root:(C.Schnorr.public_key root) [ c1; c2 ] with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  (match C.Cert.verify_chain ~root:(C.Schnorr.public_key mid) [ c1; c2 ] with
  | Ok _ -> Alcotest.fail "chain verified under wrong root"
  | Error _ -> ());
  (match C.Cert.verify_chain ~root:(C.Schnorr.public_key root) [ c2; c1 ] with
  | Ok _ -> Alcotest.fail "reordered chain verified"
  | Error _ -> ());
  (match C.Cert.verify_chain ~root:(C.Schnorr.public_key root) [] with
  | Ok _ -> Alcotest.fail "empty chain verified"
  | Error _ -> ());
  (* serialization roundtrip *)
  (match C.Cert.deserialize (C.Cert.serialize c2) with
  | Ok c2' ->
      check_bool "roundtrip verifies" true
        (C.Cert.verify_signature c2' ~issuer_key:(C.Schnorr.public_key mid));
      check_bool "measurement kept" true
        (c2'.C.Cert.bound_measurement = c2.C.Cert.bound_measurement)
  | Error m -> Alcotest.fail m);
  (* tampered serialization *)
  let blob = C.Cert.serialize c2 in
  let tampered =
    String.mapi
      (fun i c -> if i = String.length blob - 1 then Char.chr (Char.code c lxor 1) else c)
      blob
  in
  match C.Cert.deserialize tampered with
  | Ok c2t ->
      check_bool "tampered does not verify" false
        (C.Cert.verify_signature c2t ~issuer_key:(C.Schnorr.public_key mid))
  | Error _ -> ()

let suite =
  ( "crypto",
    [
      Alcotest.test_case "sha3 FIPS vectors" `Quick test_sha3_vectors;
      Alcotest.test_case "sha3 rate boundaries" `Quick test_sha3_boundaries;
      Alcotest.test_case "sha3 streaming" `Quick test_sha3_streaming;
      Alcotest.test_case "hmac" `Quick test_hmac;
      Alcotest.test_case "hkdf" `Quick test_hkdf;
      Alcotest.test_case "drbg" `Quick test_drbg;
      Alcotest.test_case "bignum basics" `Quick test_bignum_basic;
      Alcotest.test_case "bignum modular" `Quick test_bignum_modular;
      Alcotest.test_case "bignum bytes" `Quick test_bignum_bytes;
      QCheck_alcotest.to_alcotest qcheck_bignum_add_sub;
      QCheck_alcotest.to_alcotest qcheck_bignum_divmod;
      QCheck_alcotest.to_alcotest qcheck_bignum_mul_comm;
      QCheck_alcotest.to_alcotest qcheck_bignum_shift;
      Alcotest.test_case "field GF(2^255-19)" `Quick test_field;
      Alcotest.test_case "curve group law" `Quick test_curve;
      QCheck_alcotest.to_alcotest qcheck_curve_scalar_homomorphism;
      Alcotest.test_case "schnorr signatures" `Quick test_schnorr;
      Alcotest.test_case "diffie-hellman" `Quick test_dh;
      Alcotest.test_case "certificates" `Quick test_cert;
    ] )
