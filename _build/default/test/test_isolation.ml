(* Isolation under the privileged adversary (§IV) and experiment S1:
   direct probes, DMA, cross-enclave, the cache side channel, and the
   controlled channel — on both platform backends. *)
module Hw = Sanctorum_hw
module Img = Sanctorum.Image
module Atk = Sanctorum_attack
open Sanctorum_os

let check_bool = Alcotest.(check bool)

let backends = [ Testbed.Sanctum_backend; Testbed.Keystone_backend ]

let with_victim backend f =
  let tb = Testbed.create ~backend () in
  let image =
    (* a victim with a recognizable constant in its data page *)
    Img.of_program ~evbase:0x10000
      Hw.Isa.(
        li t0 0x11000 @ li t1 0x5ec @ [ Store (Sd, t1, t0, 0) ]
        @ [ Op_imm (Add, a7, zero, 1); Ecall ])
  in
  let inst = Result.get_ok (Os.install_enclave tb.Testbed.os image) in
  let eid = inst.Os.eid and tid = List.hd inst.Os.tids in
  (match Os.run_enclave tb.Testbed.os ~eid ~tid ~core:0 ~fuel:1000 () with
  | Ok Os.Exited -> ()
  | Ok _ | Error _ -> Alcotest.fail "victim did not run");
  f tb eid

let test_os_cannot_load () =
  List.iter
    (fun backend ->
      with_victim backend (fun tb eid ->
          let paddrs = Atk.Malicious_os.enclave_paddrs tb.Testbed.os ~eid in
          check_bool "victim has memory" true (paddrs <> []);
          List.iteri
            (fun i paddr ->
              if i < 6 then
                match Atk.Malicious_os.os_load tb.Testbed.os ~core:1 ~paddr with
                | Atk.Malicious_os.Denied -> ()
                | Atk.Malicious_os.Leaked v ->
                    Alcotest.failf "%s: OS read 0x%Lx from enclave page %d"
                      (Testbed.backend_name backend) v i)
            paddrs))
    backends

let test_os_cannot_store () =
  List.iter
    (fun backend ->
      with_victim backend (fun tb eid ->
          let paddr = List.hd (Atk.Malicious_os.enclave_paddrs tb.Testbed.os ~eid) in
          match
            Atk.Malicious_os.os_store tb.Testbed.os ~core:1 ~paddr ~value:0xbadL
          with
          | `Denied -> ()
          | `Stored ->
              Alcotest.failf "%s: OS stored into enclave memory"
                (Testbed.backend_name backend)))
    backends

let test_os_cannot_execute () =
  List.iter
    (fun backend ->
      with_victim backend (fun tb eid ->
          let paddrs = Atk.Malicious_os.enclave_paddrs tb.Testbed.os ~eid in
          (* the code page is right after the page tables *)
          let code = List.nth paddrs 3 in
          match Atk.Malicious_os.os_execute tb.Testbed.os ~core:1 ~paddr:code with
          | `Denied -> ()
          | `Executed ->
              Alcotest.failf "%s: OS executed enclave code"
                (Testbed.backend_name backend)))
    backends

let test_os_cannot_touch_monitor () =
  List.iter
    (fun backend ->
      let tb = Testbed.create ~backend () in
      (match Atk.Malicious_os.os_load tb.Testbed.os ~core:1 ~paddr:0x1000 with
      | Atk.Malicious_os.Denied -> ()
      | Atk.Malicious_os.Leaked _ -> Alcotest.fail "OS read monitor memory");
      match
        Atk.Malicious_os.os_store tb.Testbed.os ~core:1 ~paddr:0x1000 ~value:1L
      with
      | `Denied -> ()
      | `Stored -> Alcotest.fail "OS wrote monitor memory")
    backends

let test_dma_cannot_touch_enclave () =
  List.iter
    (fun backend ->
      with_victim backend (fun tb eid ->
          let paddr = List.hd (Atk.Malicious_os.enclave_paddrs tb.Testbed.os ~eid) in
          (match Atk.Malicious_os.dma_read tb.Testbed.os ~paddr ~len:64 with
          | `Denied -> ()
          | `Leaked _ -> Alcotest.fail "DMA read enclave memory");
          (match Atk.Malicious_os.dma_write tb.Testbed.os ~paddr ~data:"evil" with
          | `Denied -> ()
          | `Stored -> Alcotest.fail "DMA wrote enclave memory");
          (* DMA to OS memory still works *)
          let os_buf = Os.alloc_staging tb.Testbed.os ~bytes:4096 in
          match
            Atk.Malicious_os.dma_write tb.Testbed.os ~paddr:os_buf ~data:"benign"
          with
          | `Stored -> ()
          | `Denied -> Alcotest.fail "benign DMA denied"))
    backends

let test_cross_enclave_isolation () =
  (* Enclave B's load from A's physical page faults — B only reaches it
     through bare physics if its page tables pointed there, which the
     monitor prevents; here we emulate a compromised B whose code
     guesses A's address through its own (unmapped) address space. *)
  List.iter
    (fun backend ->
      with_victim backend (fun tb a_eid ->
          let a_page =
            List.hd (Atk.Malicious_os.enclave_paddrs tb.Testbed.os ~eid:a_eid)
          in
          (* B tries to load A's physical address as a virtual address:
             faults (unmapped in B's private tables). *)
          let prog =
            Hw.Isa.(li t0 a_page @ [ Load (Ld, a0, t0, 0) ]
                    @ [ Op_imm (Add, a7, zero, 1); Ecall ])
          in
          let b =
            Result.get_ok
              (Os.install_enclave tb.Testbed.os
                 (Img.of_program ~evbase:0x40000 prog))
          in
          match
            Os.run_enclave tb.Testbed.os ~eid:b.Os.eid ~tid:(List.hd b.Os.tids)
              ~core:0 ~fuel:1000 ()
          with
          | Ok (Os.Faulted _) -> ()
          | Ok Os.Exited -> Alcotest.fail "B read A's memory"
          | Ok _ | Error _ -> Alcotest.fail "unexpected outcome"))
    backends

let test_enclave_can_read_shared () =
  (* The deliberate channel still works: an enclave reads the OS-shared
     window the OS wrote. *)
  let tb = Testbed.create () in
  let evbase = 0x10000 in
  let shared_vaddr = 0x80000 in
  let prog =
    Hw.Isa.(
      li t0 shared_vaddr
      @ [ Load (Ld, t1, t0, 0) ]
      @ li t2 (evbase + 4096)
      @ [ Store (Sd, t1, t2, 0); Op_imm (Add, a7, zero, 1); Ecall ])
  in
  let image =
    Img.of_program ~evbase ~shared:[ (shared_vaddr, 4096) ] prog
  in
  let inst = Result.get_ok (Os.install_enclave tb.Testbed.os image) in
  let _, shared_paddr, _ = List.hd inst.Os.shared_paddrs in
  Os.os_write tb.Testbed.os ~paddr:shared_paddr
    (Sanctorum_util.Bytesx.of_int64_le 0xfeedL);
  (match
     Os.run_enclave tb.Testbed.os ~eid:inst.Os.eid ~tid:(List.hd inst.Os.tids)
       ~core:0 ~fuel:1000 ()
   with
  | Ok Os.Exited -> ()
  | Ok _ | Error _ -> Alcotest.fail "shared reader did not exit");
  (* confirm the enclave saw the value: read its data page with monitor
     authority *)
  let paddrs = Atk.Malicious_os.enclave_paddrs tb.Testbed.os ~eid:inst.Os.eid in
  let tables = List.length (Img.required_page_tables image) in
  let data = List.nth paddrs (tables + 1) in
  Alcotest.(check int64)
    "value crossed the shared window" 0xfeedL
    (Hw.Phys_mem.read_u64 (Hw.Machine.mem tb.Testbed.machine) data)

(* ------------------- side channels (experiment S1) ------------------ *)

let test_prime_probe_keystone_leaks () =
  let tb =
    Testbed.create ~backend:Testbed.Keystone_backend
      ~l2:Atk.Cache_probe.recommended_l2 ()
  in
  let o = Result.get_ok (Atk.Cache_probe.run tb ~secret:5 ()) in
  check_bool "keystone leaks the secret" true o.Atk.Cache_probe.leaked;
  Alcotest.(check int) "guess equals secret" 5 o.Atk.Cache_probe.guess

let test_prime_probe_sanctum_flat () =
  let tb =
    Testbed.create ~backend:Testbed.Sanctum_backend
      ~l2:Atk.Cache_probe.recommended_l2 ()
  in
  let o = Result.get_ok (Atk.Cache_probe.run tb ~secret:5 ()) in
  check_bool "sanctum partitioning defeats the probe" false
    o.Atk.Cache_probe.leaked

let test_controlled_channel_baseline_leaks () =
  let tb = Testbed.create () in
  let secret = [ 3; 1; 4; 1; 5 ] in
  let o = Atk.Controlled_channel.baseline tb ~secret ~core:0 in
  check_bool "baseline recovers the page sequence" true
    o.Atk.Controlled_channel.recovered

let test_controlled_channel_enclave_hidden () =
  List.iter
    (fun backend ->
      let tb = Testbed.create ~backend () in
      let secret = [ 3; 1; 4; 1; 5 ] in
      match Atk.Controlled_channel.enclave tb ~secret ~core:0 with
      | Error m -> Alcotest.fail m
      | Ok o ->
          check_bool "enclave hides the sequence" true
            (o.Atk.Controlled_channel.observed_pages = []))
    backends

let suite =
  ( "isolation",
    [
      Alcotest.test_case "OS load denied" `Quick test_os_cannot_load;
      Alcotest.test_case "OS store denied" `Quick test_os_cannot_store;
      Alcotest.test_case "OS execute denied" `Quick test_os_cannot_execute;
      Alcotest.test_case "monitor memory protected" `Quick
        test_os_cannot_touch_monitor;
      Alcotest.test_case "DMA restricted" `Quick test_dma_cannot_touch_enclave;
      Alcotest.test_case "cross-enclave isolation" `Quick
        test_cross_enclave_isolation;
      Alcotest.test_case "shared window works" `Quick test_enclave_can_read_shared;
      Alcotest.test_case "prime+probe leaks on keystone" `Quick
        test_prime_probe_keystone_leaks;
      Alcotest.test_case "prime+probe flat on sanctum" `Quick
        test_prime_probe_sanctum_flat;
      Alcotest.test_case "controlled channel: baseline leaks" `Quick
        test_controlled_channel_baseline_leaks;
      Alcotest.test_case "controlled channel: enclave hidden" `Quick
        test_controlled_channel_enclave_hidden;
    ] )
