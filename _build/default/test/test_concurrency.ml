(* Transaction semantics (§V-A): a held fine-grained lock aborts the
   concurrent call with [Concurrent_call] and leaves state unchanged. *)
module Hw = Sanctorum_hw
module S = Sanctorum.Sm
module E = Sanctorum.Api_error
module Img = Sanctorum.Image
open Sanctorum_os

let check_bool = Alcotest.(check bool)

let setup () =
  let tb = Testbed.create () in
  let image =
    Img.of_program ~evbase:0x10000 Hw.Isa.[ Op_imm (Add, a7, zero, 1); Ecall ]
  in
  let inst = Result.get_ok (Os.install_enclave tb.Testbed.os image) in
  (tb, inst)

let test_enclave_lock_aborts () =
  let tb, inst = setup () in
  let sm = tb.Testbed.sm in
  let eid = inst.Os.eid in
  check_bool "lock taken" true (S.try_lock_enclave sm ~eid);
  check_bool "second lock fails" false (S.try_lock_enclave sm ~eid);
  (* API calls on the locked enclave abort *)
  (match S.delete_enclave sm ~caller:S.Os ~eid with
  | Error E.Concurrent_call -> ()
  | Ok () -> Alcotest.fail "delete proceeded under a held lock"
  | Error e -> Alcotest.failf "unexpected: %s" (E.to_string e));
  (match
     S.accept_mail sm ~caller:(S.Enclave_caller eid)
       ~sender:Sanctorum.Mailbox.From_os
   with
  | Error E.Concurrent_call -> ()
  | Ok () -> Alcotest.fail "accept_mail proceeded under a held lock"
  | Error e -> Alcotest.failf "unexpected: %s" (E.to_string e));
  (match S.enter_enclave sm ~caller:S.Os ~eid ~tid:(List.hd inst.Os.tids) ~core:0 with
  | Error E.Concurrent_call -> ()
  | Ok () -> Alcotest.fail "enter proceeded under a held lock"
  | Error e -> Alcotest.failf "unexpected: %s" (E.to_string e));
  (* state unchanged: still initialized, thread still assigned *)
  check_bool "still initialized" true
    (S.enclave_state sm ~eid = Ok `Initialized);
  (* releasing the lock lets the transaction through *)
  S.unlock_enclave sm ~eid;
  match S.delete_enclave sm ~caller:S.Os ~eid with
  | Ok () -> ()
  | Error e -> Alcotest.failf "delete after unlock: %s" (E.to_string e)

let test_lock_released_after_abort () =
  (* A failed transaction releases its locks: the next call works. *)
  let tb, inst = setup () in
  let sm = tb.Testbed.sm in
  let eid = inst.Os.eid in
  (* a call that fails validation (double init) must not leave the
     enclave locked *)
  (match S.init_enclave sm ~caller:S.Os ~eid with
  | Error (E.Invalid_state _) -> ()
  | Ok () -> Alcotest.fail "double init succeeded"
  | Error e -> Alcotest.failf "unexpected: %s" (E.to_string e));
  check_bool "lock free after failed call" true (S.try_lock_enclave sm ~eid);
  S.unlock_enclave sm ~eid

let test_unknown_enclave_lock () =
  let tb, _ = setup () in
  check_bool "unknown eid" false (S.try_lock_enclave tb.Testbed.sm ~eid:999999)

let suite =
  ( "concurrency",
    [
      Alcotest.test_case "held lock aborts transactions" `Quick
        test_enclave_lock_aborts;
      Alcotest.test_case "failed call releases lock" `Quick
        test_lock_released_after_abort;
      Alcotest.test_case "unknown enclave lock" `Quick test_unknown_enclave_lock;
    ] )
