test/test_thread.ml: Alcotest List Os Result Sanctorum Sanctorum_hw Sanctorum_os Testbed
