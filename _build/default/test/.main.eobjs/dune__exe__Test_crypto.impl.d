test/test_crypto.ml: Alcotest Char List QCheck2 QCheck_alcotest Sanctorum_crypto Sanctorum_util String
