test/test_dynamic.ml: Alcotest Int64 List Os Result Sanctorum Sanctorum_attack Sanctorum_hw Sanctorum_os Sanctorum_platform Testbed
