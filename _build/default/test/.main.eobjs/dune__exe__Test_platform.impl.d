test/test_platform.ml: Alcotest List Sanctorum_hw Sanctorum_os Sanctorum_platform String Testbed
