test/main.mli:
