test/test_attestation.ml: Alcotest Char Os Result Sanctorum Sanctorum_crypto Sanctorum_hw Sanctorum_os String Testbed
