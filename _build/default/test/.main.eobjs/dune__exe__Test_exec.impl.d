test/test_exec.ml: Alcotest List Os Result Sanctorum Sanctorum_attack Sanctorum_hw Sanctorum_os Sanctorum_util Testbed
