test/test_util.ml: Alcotest QCheck2 QCheck_alcotest Sanctorum_util
