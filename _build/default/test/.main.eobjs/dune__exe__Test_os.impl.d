test/test_os.ml: Alcotest List Os Result Sanctorum Sanctorum_hw Sanctorum_os Testbed
