test/test_concurrency.ml: Alcotest List Os Result Sanctorum Sanctorum_hw Sanctorum_os Testbed
