test/test_robustness.ml: Alcotest List Os Result Sanctorum Sanctorum_attack Sanctorum_hw Sanctorum_os String Testbed
