test/test_enclave.ml: Alcotest List Os Result Sanctorum Sanctorum_hw Sanctorum_os String Testbed
