test/test_mailbox.ml: Alcotest Os Result Sanctorum Sanctorum_hw Sanctorum_os String Testbed
