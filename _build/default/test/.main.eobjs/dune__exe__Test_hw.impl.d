test/test_hw.ml: Alcotest Int64 List QCheck2 QCheck_alcotest Sanctorum_hw String
