test/test_fuzz.ml: Hashtbl List Os QCheck2 QCheck_alcotest Sanctorum Sanctorum_hw Sanctorum_os Sanctorum_platform Testbed
