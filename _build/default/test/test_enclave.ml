(* Fig. 3 conformance: the enclave lifecycle, and the measurement
   properties of §VI-A. *)
module Hw = Sanctorum_hw
module S = Sanctorum.Sm
module E = Sanctorum.Api_error
module Img = Sanctorum.Image
open Sanctorum_os

let check_bool = Alcotest.(check bool)
let is_error = function Error _ -> true | Ok _ -> false

let simple_image ?(evbase = 0x10000) ?(data_pages = 1) () =
  Img.of_program ~evbase ~data_pages
    Hw.Isa.[ Op_imm (Add, a7, zero, 1); Ecall ]

let test_legal_lifecycle () =
  let tb = Testbed.create () in
  match Os.install_enclave tb.Testbed.os (simple_image ()) with
  | Error e -> Alcotest.failf "install: %s" (E.to_string e)
  | Ok inst ->
      check_bool "initialized" true
        (S.enclave_state tb.Testbed.sm ~eid:inst.Os.eid = Ok `Initialized);
      (match Os.reclaim_enclave tb.Testbed.os ~eid:inst.Os.eid with
      | Ok () -> ()
      | Error e -> Alcotest.failf "reclaim: %s" (E.to_string e));
      check_bool "gone" true
        (is_error (S.enclave_state tb.Testbed.sm ~eid:inst.Os.eid))

let test_create_validation () =
  let tb = Testbed.create () in
  let sm = tb.Testbed.sm in
  let eid = Os.alloc_metadata tb.Testbed.os `Enclave in
  (* misaligned evrange *)
  check_bool "unaligned evbase" true
    (is_error
       (S.create_enclave sm ~caller:S.Os ~eid ~evbase:0x10001 ~evsize:4096 ()));
  check_bool "empty evrange" true
    (is_error (S.create_enclave sm ~caller:S.Os ~eid ~evbase:0x10000 ~evsize:0 ()));
  check_bool "evrange beyond VA" true
    (is_error
       (S.create_enclave sm ~caller:S.Os ~eid ~evbase:(1 lsl 38)
          ~evsize:((1 lsl 38) + 4096) ()));
  (* metadata placement abuse *)
  check_bool "eid outside metadata area" true
    (is_error
       (S.create_enclave sm ~caller:S.Os ~eid:(2 * 1024 * 1024) ~evbase:0x10000
          ~evsize:4096 ()));
  (* valid create, then overlapping second enclave *)
  (match S.create_enclave sm ~caller:S.Os ~eid ~evbase:0x10000 ~evsize:4096 () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "create: %s" (E.to_string e));
  check_bool "same eid reused" true
    (is_error (S.create_enclave sm ~caller:S.Os ~eid ~evbase:0x10000 ~evsize:4096 ()));
  check_bool "overlapping metadata slot" true
    (is_error
       (S.create_enclave sm ~caller:S.Os ~eid:(eid + 8) ~evbase:0x20000
          ~evsize:4096 ()));
  (* enclave cannot create enclaves *)
  check_bool "enclave caller" true
    (is_error
       (S.create_enclave sm ~caller:(S.Enclave_caller eid) ~eid:(eid + 4096)
          ~evbase:0x20000 ~evsize:4096 ()))

let test_loading_rules () =
  let tb = Testbed.create () in
  let sm = tb.Testbed.sm in
  let os = tb.Testbed.os in
  let eid = Os.alloc_metadata os `Enclave in
  (match S.create_enclave sm ~caller:S.Os ~eid ~evbase:0x10000 ~evsize:8192 () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "create: %s" (E.to_string e));
  (* no memory yet: page table allocation fails *)
  check_bool "no pages" true
    (is_error (S.allocate_page_table sm ~caller:S.Os ~eid ~vaddr:0 ~level:2));
  (* grant one unit *)
  let rid = List.hd (Os.alloc_units os ~count:1) in
  let ok_or_fail what = function
    | Ok () -> ()
    | Error e -> Alcotest.failf "%s: %s" what (E.to_string e)
  in
  ok_or_fail "block" (S.block_resource sm ~caller:S.Os Sanctorum.Resource.Memory_resource ~rid);
  ok_or_fail "clean" (S.clean_resource sm ~caller:S.Os Sanctorum.Resource.Memory_resource ~rid);
  ok_or_fail "grant"
    (S.grant_resource sm ~caller:S.Os Sanctorum.Resource.Memory_resource ~rid
       ~to_:(S.To_enclave eid));
  (* init without page tables *)
  check_bool "init without root" true
    (is_error (S.init_enclave sm ~caller:S.Os ~eid));
  (* load_page before tables *)
  let src = Os.alloc_staging os ~bytes:4096 in
  check_bool "page before tables" true
    (is_error
       (S.load_page sm ~caller:S.Os ~eid ~vaddr:0x10000 ~src_paddr:src ~r:true
          ~w:false ~x:true));
  (* build tables root -> L1 -> L0 *)
  ok_or_fail "root" (S.allocate_page_table sm ~caller:S.Os ~eid ~vaddr:0 ~level:2);
  check_bool "double root" true
    (is_error (S.allocate_page_table sm ~caller:S.Os ~eid ~vaddr:0 ~level:2));
  ok_or_fail "l1" (S.allocate_page_table sm ~caller:S.Os ~eid ~vaddr:0x10000 ~level:1);
  ok_or_fail "l0" (S.allocate_page_table sm ~caller:S.Os ~eid ~vaddr:0x10000 ~level:0);
  (* load a page *)
  ok_or_fail "load"
    (S.load_page sm ~caller:S.Os ~eid ~vaddr:0x10000 ~src_paddr:src ~r:true
       ~w:false ~x:true);
  (* page tables after data: forbidden *)
  check_bool "tables after data" true
    (is_error (S.allocate_page_table sm ~caller:S.Os ~eid ~vaddr:0x30000 ~level:1));
  (* aliasing: same vaddr twice *)
  check_bool "vaddr alias" true
    (is_error
       (S.load_page sm ~caller:S.Os ~eid ~vaddr:0x10000 ~src_paddr:src ~r:true
          ~w:true ~x:false));
  (* outside evrange *)
  check_bool "outside evrange" true
    (is_error
       (S.load_page sm ~caller:S.Os ~eid ~vaddr:0x40000 ~src_paddr:src ~r:true
          ~w:true ~x:false));
  (* source must be untrusted memory: point it at the enclave's own unit *)
  let unit_base = rid * S.memory_unit_bytes sm in
  check_bool "enclave source rejected" true
    (is_error
       (S.load_page sm ~caller:S.Os ~eid ~vaddr:0x11000 ~src_paddr:unit_base
          ~r:true ~w:true ~x:false));
  (* seal *)
  ok_or_fail "init" (S.init_enclave sm ~caller:S.Os ~eid);
  check_bool "double init" true (is_error (S.init_enclave sm ~caller:S.Os ~eid));
  (* loading after init *)
  check_bool "load after init" true
    (is_error
       (S.load_page sm ~caller:S.Os ~eid ~vaddr:0x11000 ~src_paddr:src ~r:true
          ~w:true ~x:false));
  check_bool "measurement exists" true
    (match S.enclave_measurement sm ~eid with Ok m -> String.length m = 32 | Error _ -> false)

let test_delete_blocks_resources () =
  let tb = Testbed.create () in
  let sm = tb.Testbed.sm in
  match Os.install_enclave tb.Testbed.os (simple_image ()) with
  | Error e -> Alcotest.failf "install: %s" (E.to_string e)
  | Ok inst ->
      let domain = Result.get_ok (S.enclave_domain sm ~eid:inst.Os.eid) in
      (match S.delete_enclave sm ~caller:S.Os ~eid:inst.Os.eid with
      | Ok () -> ()
      | Error e -> Alcotest.failf "delete: %s" (E.to_string e));
      (* every unit previously owned is blocked, none owned *)
      let units = S.memory_units sm in
      let blocked = ref 0 in
      for rid = 0 to units - 1 do
        match S.resource_state sm Sanctorum.Resource.Memory_resource ~rid with
        | Ok (Sanctorum.Resource.Blocked d) when d = domain -> incr blocked
        | Ok (Sanctorum.Resource.Owned d) when d = domain ->
            Alcotest.fail "deleted enclave still owns memory"
        | Ok _ | Error _ -> ()
      done;
      check_bool "some units blocked" true (!blocked > 0)

let test_delete_running_rejected () =
  let tb = Testbed.create () in
  let image = Img.of_program ~evbase:0x10000 [ Hw.Isa.j 0 ] in
  match Os.install_enclave tb.Testbed.os image with
  | Error e -> Alcotest.failf "install: %s" (E.to_string e)
  | Ok inst ->
      let eid = inst.Os.eid and tid = List.hd inst.Os.tids in
      (* run forever; fuel out leaves the thread scheduled *)
      (match Os.run_enclave tb.Testbed.os ~eid ~tid ~core:0 ~fuel:100 () with
      | Ok Os.Fuel_exhausted -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected fuel exhaustion");
      check_bool "delete while running" true
        (is_error (S.delete_enclave tb.Testbed.sm ~caller:S.Os ~eid))

(* ------------------------------------------------------------------ *)
(* Measurement properties *)

let test_measurement_physical_independence () =
  (* The same image loaded at different physical addresses (second
     install lands in different units) measures identically, and
     matches the pure Image.measurement. *)
  let tb = Testbed.create () in
  let image = simple_image () in
  let i1 = Result.get_ok (Os.install_enclave tb.Testbed.os image) in
  let i2 = Result.get_ok (Os.install_enclave tb.Testbed.os image) in
  let m1 = Result.get_ok (S.enclave_measurement tb.Testbed.sm ~eid:i1.Os.eid) in
  let m2 = Result.get_ok (S.enclave_measurement tb.Testbed.sm ~eid:i2.Os.eid) in
  check_bool "equal across placements" true (m1 = m2);
  check_bool "matches pure computation" true (m1 = Img.measurement image)

let test_measurement_sensitivity () =
  let base = simple_image () in
  let m0 = Img.measurement base in
  (* content change *)
  let other_prog =
    Img.of_program ~evbase:0x10000 Hw.Isa.([ nop; Op_imm (Add, a7, zero, 1); Ecall ])
  in
  check_bool "contents change hash" true (Img.measurement other_prog <> m0);
  (* virtual base change *)
  let moved = simple_image ~evbase:0x20000 () in
  check_bool "evbase changes hash" true (Img.measurement moved <> m0);
  (* extra data page *)
  let bigger = simple_image ~data_pages:2 () in
  check_bool "layout changes hash" true (Img.measurement bigger <> m0);
  (* permissions change *)
  let flip_perms (img : Img.t) =
    match img.Img.pages with
    | p :: rest ->
        { img with Img.pages = { p with Img.w = not p.Img.w } :: rest }
    | [] -> img
  in
  check_bool "perms change hash" true (Img.measurement (flip_perms base) <> m0);
  (* thread entry change *)
  let thread_moved =
    { base with Img.threads = [ (0x10004L, 0x11ff0L) ] }
  in
  check_bool "entry changes hash" true (Img.measurement thread_moved <> m0);
  (* mailbox count change *)
  let mail = { base with Img.mailbox_slots = 8 } in
  check_bool "mailboxes change hash" true (Img.measurement mail <> m0)

let test_measurement_monotonic_load_enforced () =
  (* Grant two units, then try to make the monitor allocate downward by
     granting a lower unit after pages were consumed from a higher one:
     the ascending-order rule must reject it. *)
  let tb = Testbed.create () in
  let sm = tb.Testbed.sm in
  let os = tb.Testbed.os in
  let eid = Os.alloc_metadata os `Enclave in
  Result.get_ok (S.create_enclave sm ~caller:S.Os ~eid ~evbase:0x10000 ~evsize:4096 ());
  let units = Os.alloc_units os ~count:2 in
  let lo, hi = (List.nth units 0, List.nth units 1) in
  let prep rid =
    Result.get_ok (S.block_resource sm ~caller:S.Os Sanctorum.Resource.Memory_resource ~rid);
    Result.get_ok (S.clean_resource sm ~caller:S.Os Sanctorum.Resource.Memory_resource ~rid)
  in
  prep lo;
  prep hi;
  (* grant the higher unit first *)
  Result.get_ok
    (S.grant_resource sm ~caller:S.Os Sanctorum.Resource.Memory_resource ~rid:hi
       ~to_:(S.To_enclave eid));
  Result.get_ok (S.allocate_page_table sm ~caller:S.Os ~eid ~vaddr:0 ~level:2);
  (* now grant the lower one: its pages would violate ascending order *)
  Result.get_ok
    (S.grant_resource sm ~caller:S.Os Sanctorum.Resource.Memory_resource ~rid:lo
       ~to_:(S.To_enclave eid));
  match S.allocate_page_table sm ~caller:S.Os ~eid ~vaddr:0x10000 ~level:1 with
  | Error (E.Invalid_state _) -> ()
  | Ok () -> Alcotest.fail "descending physical load accepted"
  | Error e -> Alcotest.failf "unexpected error: %s" (E.to_string e)

let suite =
  ( "enclave-fig3",
    [
      Alcotest.test_case "legal lifecycle" `Quick test_legal_lifecycle;
      Alcotest.test_case "create validation" `Quick test_create_validation;
      Alcotest.test_case "loading rules" `Quick test_loading_rules;
      Alcotest.test_case "delete blocks resources" `Quick
        test_delete_blocks_resources;
      Alcotest.test_case "delete running thread rejected" `Quick
        test_delete_running_rejected;
      Alcotest.test_case "measurement: physical independence" `Quick
        test_measurement_physical_independence;
      Alcotest.test_case "measurement: sensitivity" `Quick
        test_measurement_sensitivity;
      Alcotest.test_case "measurement: ascending loads" `Quick
        test_measurement_monotonic_load_enforced;
    ] )
