module Util = Sanctorum_util

let check = Alcotest.(check string)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_hex_roundtrip () =
  check "encode" "00ff10" (Util.Hex.encode "\x00\xff\x10");
  check "decode" "\x00\xff\x10" (Util.Hex.decode "00ff10");
  check "decode upper" "\xab\xcd" (Util.Hex.decode "ABCD");
  Alcotest.check_raises "odd length" (Invalid_argument "Hex.decode: odd length")
    (fun () -> ignore (Util.Hex.decode "abc"));
  Alcotest.check_raises "bad char"
    (Invalid_argument "Hex.decode: non-hex character") (fun () ->
      ignore (Util.Hex.decode "zz"))

let test_bits () =
  check_bool "pow2 1" true (Util.Bits.is_power_of_two 1);
  check_bool "pow2 4096" true (Util.Bits.is_power_of_two 4096);
  check_bool "pow2 12" false (Util.Bits.is_power_of_two 12);
  check_bool "pow2 0" false (Util.Bits.is_power_of_two 0);
  check_int "log2" 12 (Util.Bits.log2 4096);
  check_int "align_up" 8192 (Util.Bits.align_up 4097 4096);
  check_int "align_up exact" 4096 (Util.Bits.align_up 4096 4096);
  check_int "align_down" 4096 (Util.Bits.align_down 8191 4096);
  check_int "extract" 0b101 (Util.Bits.extract 0b10100 ~lo:2 ~width:3);
  check_int "sign_extend neg" (-1) (Util.Bits.sign_extend 0xfff ~width:12);
  check_int "sign_extend pos" 2047 (Util.Bits.sign_extend 0x7ff ~width:12);
  Alcotest.(check int64)
    "rotl64" 0x8000000000000000L
    (Util.Bits.rotl64 1L 63);
  Alcotest.(check int64) "rotl64 id" 0x123456789abcdef0L
    (Util.Bits.rotl64 0x123456789abcdef0L 0)

let test_bytesx () =
  check "xor" "\x03\x01" (Util.Bytesx.xor "\x01\x02" "\x02\x03");
  check_bool "cte eq" true (Util.Bytesx.constant_time_equal "abc" "abc");
  check_bool "cte neq" false (Util.Bytesx.constant_time_equal "abc" "abd");
  check_bool "cte len" false (Util.Bytesx.constant_time_equal "abc" "abcd");
  Alcotest.(check int64)
    "u64 roundtrip" 0x1122334455667788L
    (Util.Bytesx.get_u64_le (Util.Bytesx.of_int64_le 0x1122334455667788L) 0)

let qcheck_hex_roundtrip =
  QCheck2.Test.make ~name:"hex roundtrip" ~count:200 QCheck2.Gen.string
    (fun s -> Util.Hex.decode (Util.Hex.encode s) = s)

let suite =
  ( "util",
    [
      Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
      Alcotest.test_case "bit helpers" `Quick test_bits;
      Alcotest.test_case "byte helpers" `Quick test_bytesx;
      QCheck_alcotest.to_alcotest qcheck_hex_roundtrip;
    ] )
