(* Secure boot (§IV-A / [7]) and remote attestation (Fig. 7). *)
module Hw = Sanctorum_hw
module C = Sanctorum_crypto
module S = Sanctorum.Sm
module A = Sanctorum.Attestation
module B = Sanctorum.Boot
module Img = Sanctorum.Image
open Sanctorum_os

let check_bool = Alcotest.(check bool)

let test_boot_determinism () =
  let root = B.manufacturer_root ~seed:"r" in
  let i1 = B.perform ~root ~device_secret:"d" ~sm_binary:"sm-v1" in
  let i2 = B.perform ~root ~device_secret:"d" ~sm_binary:"sm-v1" in
  check_bool "same identity" true
    (C.Schnorr.public_key_to_bytes (C.Schnorr.public_key i1.B.attestation_key)
    = C.Schnorr.public_key_to_bytes (C.Schnorr.public_key i2.B.attestation_key))

let test_boot_rekeys_on_patch () =
  (* Patching the monitor binary yields a different measurement AND a
     different attestation key — the heart of [7]. *)
  let root = B.manufacturer_root ~seed:"r" in
  let i1 = B.perform ~root ~device_secret:"d" ~sm_binary:"sm-v1" in
  let i2 = B.perform ~root ~device_secret:"d" ~sm_binary:"sm-v2" in
  check_bool "different measurement" true
    (i1.B.sm_measurement <> i2.B.sm_measurement);
  check_bool "different key" true
    (C.Schnorr.public_key_to_bytes (C.Schnorr.public_key i1.B.attestation_key)
    <> C.Schnorr.public_key_to_bytes (C.Schnorr.public_key i2.B.attestation_key));
  (* different device, same binary: also re-keys *)
  let i3 = B.perform ~root ~device_secret:"other" ~sm_binary:"sm-v1" in
  check_bool "device-bound key" true
    (C.Schnorr.public_key_to_bytes (C.Schnorr.public_key i1.B.attestation_key)
    <> C.Schnorr.public_key_to_bytes (C.Schnorr.public_key i3.B.attestation_key))

let test_boot_chain_verifies () =
  let root = B.manufacturer_root ~seed:"r" in
  let i = B.perform ~root ~device_secret:"d" ~sm_binary:"sm-v1" in
  match C.Cert.verify_chain ~root:i.B.root_public i.B.certificates with
  | Ok key ->
      check_bool "chain ends at sm key" true
        (C.Schnorr.public_key_to_bytes key
        = C.Schnorr.public_key_to_bytes (C.Schnorr.public_key i.B.attestation_key))
  | Error m -> Alcotest.fail m

let setup_with_signing () =
  let tb = Testbed.create () in
  let es = Result.get_ok (Testbed.install_signing_enclave tb) in
  let target =
    Img.of_program ~evbase:0x30000 Hw.Isa.[ Op_imm (Add, a7, zero, 1); Ecall ]
  in
  let t = Result.get_ok (Os.install_enclave tb.Testbed.os target) in
  (tb, es, t, target)

let test_signing_key_gate () =
  let tb, es, t, _ = setup_with_signing () in
  let sm = tb.Testbed.sm in
  (* only the signing enclave gets the key *)
  (match S.get_signing_key sm ~caller:(S.Enclave_caller es.Os.eid) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "signing enclave denied its key");
  (match S.get_signing_key sm ~caller:(S.Enclave_caller t.Os.eid) with
  | Error Sanctorum.Api_error.Unauthorized -> ()
  | Ok _ -> Alcotest.fail "ordinary enclave got the monitor key"
  | Error e -> Alcotest.failf "unexpected: %s" (Sanctorum.Api_error.to_string e));
  match S.get_signing_key sm ~caller:S.Os with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "OS got the monitor key"

let test_signing_measurement_constant () =
  let tb, es, _, _ = setup_with_signing () in
  let sm = tb.Testbed.sm in
  let m = Result.get_ok (S.enclave_measurement sm ~eid:es.Os.eid) in
  check_bool "install matches hard-coded constant" true
    (m = A.signing_expected_measurement);
  check_bool "field matches" true
    (S.get_field sm S.Field_signing_measurement = A.signing_expected_measurement)

let test_remote_attestation_success () =
  let tb, es, t, target = setup_with_signing () in
  let session =
    A.run_remote_attestation tb.Testbed.sm ~rng:tb.Testbed.rng ~eid:t.Os.eid
      ~es_eid:es.Os.eid ~expected_measurement:(Img.measurement target)
  in
  (match session.A.verdict with
  | Ok () -> ()
  | Error m -> Alcotest.failf "verdict: %s" m);
  check_bool "session keys agree" true
    (session.A.session_key_verifier = session.A.session_key_enclave)

let test_remote_attestation_wrong_measurement () =
  let tb, es, t, _ = setup_with_signing () in
  let session =
    A.run_remote_attestation tb.Testbed.sm ~rng:tb.Testbed.rng ~eid:t.Os.eid
      ~es_eid:es.Os.eid ~expected_measurement:(String.make 32 'z')
  in
  match session.A.verdict with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "verifier accepted a wrong measurement"

let test_remote_attestation_impostor_signer () =
  (* An enclave that is NOT the signing enclave cannot serve the
     protocol: get_key refuses, so the requester never gets a valid
     signature. *)
  let tb, _es, t, target = setup_with_signing () in
  let impostor =
    Result.get_ok
      (Os.install_enclave tb.Testbed.os
         (Img.of_program ~evbase:0x60000
            Hw.Isa.[ Op_imm (Add, a7, zero, 1); Ecall ]))
  in
  let session =
    A.run_remote_attestation tb.Testbed.sm ~rng:tb.Testbed.rng ~eid:t.Os.eid
      ~es_eid:impostor.Os.eid ~expected_measurement:(Img.measurement target)
  in
  match session.A.verdict with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "attestation via impostor signing enclave verified"

let test_evidence_tampering () =
  let tb, es, t, target = setup_with_signing () in
  let rng = tb.Testbed.rng in
  let nonce = C.Drbg.random_bytes rng 32 in
  let binding = C.Drbg.random_bytes rng 32 in
  let ev =
    Result.get_ok
      (A.request_attestation tb.Testbed.sm ~eid:t.Os.eid ~es_eid:es.Os.eid
         ~nonce ~channel_binding:binding)
  in
  let root = (S.identity tb.Testbed.sm).B.root_public in
  let verify ev =
    A.verify_evidence ~root ~expected_measurement:(Img.measurement target)
      ~nonce ~channel_binding:binding ev
  in
  (match verify ev with Ok () -> () | Error m -> Alcotest.failf "honest: %s" m);
  let flip s i =
    String.mapi (fun j c -> if j = i then Char.chr (Char.code c lxor 1) else c) s
  in
  check_bool "flipped signature" true
    (Result.is_error (verify { ev with A.signature = flip ev.A.signature 10 }));
  check_bool "flipped nonce in evidence" true
    (Result.is_error (verify { ev with A.nonce = flip ev.A.nonce 0 }));
  check_bool "flipped measurement" true
    (Result.is_error
       (verify { ev with A.enclave_measurement = flip ev.A.enclave_measurement 0 }));
  check_bool "flipped binding" true
    (Result.is_error
       (verify { ev with A.channel_binding = flip ev.A.channel_binding 0 }));
  check_bool "truncated certs" true
    (Result.is_error
       (verify
          {
            ev with
            A.certificates =
              String.sub ev.A.certificates 0
                (String.length ev.A.certificates - 1);
          }));
  (* replay under a different nonce fails *)
  let nonce2 = C.Drbg.random_bytes rng 32 in
  check_bool "replayed nonce" true
    (Result.is_error
       (A.verify_evidence ~root ~expected_measurement:(Img.measurement target)
          ~nonce:nonce2 ~channel_binding:binding ev))

let test_attestation_on_keystone () =
  let tb = Testbed.create ~backend:Testbed.Keystone_backend () in
  let es = Result.get_ok (Testbed.install_signing_enclave tb) in
  let target =
    Img.of_program ~evbase:0x30000 Hw.Isa.[ Op_imm (Add, a7, zero, 1); Ecall ]
  in
  let t = Result.get_ok (Os.install_enclave tb.Testbed.os target) in
  let session =
    A.run_remote_attestation tb.Testbed.sm ~rng:tb.Testbed.rng ~eid:t.Os.eid
      ~es_eid:es.Os.eid ~expected_measurement:(Img.measurement target)
  in
  match session.A.verdict with
  | Ok () -> ()
  | Error m -> Alcotest.failf "keystone attestation: %s" m

let suite =
  ( "attestation",
    [
      Alcotest.test_case "boot determinism" `Quick test_boot_determinism;
      Alcotest.test_case "boot re-keys on patch" `Quick test_boot_rekeys_on_patch;
      Alcotest.test_case "boot chain verifies" `Quick test_boot_chain_verifies;
      Alcotest.test_case "signing key gate" `Quick test_signing_key_gate;
      Alcotest.test_case "signing measurement constant" `Quick
        test_signing_measurement_constant;
      Alcotest.test_case "remote attestation (fig 7)" `Quick
        test_remote_attestation_success;
      Alcotest.test_case "wrong measurement rejected" `Quick
        test_remote_attestation_wrong_measurement;
      Alcotest.test_case "impostor signer rejected" `Quick
        test_remote_attestation_impostor_signer;
      Alcotest.test_case "evidence tampering" `Quick test_evidence_tampering;
      Alcotest.test_case "attestation on keystone" `Quick
        test_attestation_on_keystone;
    ] )
