(* Fig. 4 conformance: the thread lifecycle. *)
module Hw = Sanctorum_hw
module S = Sanctorum.Sm
module E = Sanctorum.Api_error
module Img = Sanctorum.Image
open Sanctorum_os

let check_bool = Alcotest.(check bool)
let is_error = function Error _ -> true | Ok _ -> false

let setup () =
  let tb = Testbed.create () in
  let image =
    Img.of_program ~evbase:0x10000 Hw.Isa.[ Op_imm (Add, a7, zero, 1); Ecall ]
  in
  let inst = Result.get_ok (Os.install_enclave tb.Testbed.os image) in
  (tb, inst.Os.eid, List.hd inst.Os.tids)

let test_load_thread_states () =
  let tb, eid, tid = setup () in
  (match S.thread_state tb.Testbed.sm ~tid with
  | Ok (`Assigned e) -> Alcotest.(check int) "assigned to" eid e
  | _ -> Alcotest.fail "expected assigned");
  check_bool "no aex yet" false
    (Result.get_ok (S.thread_has_aex_state tb.Testbed.sm ~tid))

let test_release_and_recycle () =
  let tb, eid, tid = setup () in
  let sm = tb.Testbed.sm in
  (* the enclave releases its thread *)
  (match S.release_thread sm ~caller:(S.Enclave_caller eid) ~tid with
  | Ok () -> ()
  | Error e -> Alcotest.failf "release: %s" (E.to_string e));
  check_bool "available" true (S.thread_state sm ~tid = Ok `Available);
  (* install a second enclave, recycle the thread into it *)
  let image2 =
    Img.of_program ~evbase:0x40000 Hw.Isa.[ Op_imm (Add, a7, zero, 1); Ecall ]
  in
  let inst2 = Result.get_ok (Os.install_enclave tb.Testbed.os image2) in
  let eid2 = inst2.Os.eid in
  (* assign (offer) by the OS, accept by the new owner *)
  (match S.assign_thread sm ~caller:S.Os ~eid:eid2 ~tid with
  | Ok () -> ()
  | Error e -> Alcotest.failf "assign: %s" (E.to_string e));
  (* a third enclave cannot steal the offer *)
  check_bool "foreign accept rejected" true
    (is_error (S.accept_thread sm ~caller:(S.Enclave_caller eid) ~tid ()));
  (match
     S.accept_thread sm ~caller:(S.Enclave_caller eid2) ~tid
       ~entry_pc:0x40000L ~entry_sp:0x41ff0L ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "accept: %s" (E.to_string e));
  (match S.thread_state sm ~tid with
  | Ok (`Assigned e) -> Alcotest.(check int) "new owner" eid2 e
  | _ -> Alcotest.fail "expected assigned to new enclave");
  (* the recycled thread actually runs in the new enclave *)
  match Os.run_enclave tb.Testbed.os ~eid:eid2 ~tid ~core:0 ~fuel:1000 () with
  | Ok Os.Exited -> ()
  | Ok _ | Error _ -> Alcotest.fail "recycled thread did not run"

let test_illegal_thread_transitions () =
  let tb, eid, tid = setup () in
  let sm = tb.Testbed.sm in
  (* delete while assigned *)
  check_bool "delete assigned" true
    (is_error (S.delete_thread sm ~caller:S.Os ~tid));
  (* unassign a live enclave's thread *)
  (match S.unassign_thread sm ~caller:S.Os ~tid with
  | Error E.Unauthorized -> ()
  | Ok () -> Alcotest.fail "OS ripped a live enclave's thread"
  | Error e -> Alcotest.failf "unexpected: %s" (E.to_string e));
  (* release by a non-owner *)
  let image2 =
    Img.of_program ~evbase:0x60000 Hw.Isa.[ Op_imm (Add, a7, zero, 1); Ecall ]
  in
  let inst2 = Result.get_ok (Os.install_enclave tb.Testbed.os image2) in
  check_bool "foreign release" true
    (is_error
       (S.release_thread sm ~caller:(S.Enclave_caller inst2.Os.eid) ~tid));
  (* assign a thread that is not available *)
  check_bool "assign assigned thread" true
    (is_error (S.assign_thread sm ~caller:S.Os ~eid:inst2.Os.eid ~tid));
  (* enter with a foreign tid *)
  check_bool "enter foreign thread" true
    (is_error
       (S.enter_enclave sm ~caller:S.Os ~eid:inst2.Os.eid ~tid ~core:0));
  ignore eid

let test_unassign_after_delete () =
  let tb, eid, tid = setup () in
  let sm = tb.Testbed.sm in
  (match S.delete_enclave sm ~caller:S.Os ~eid with
  | Ok () -> ()
  | Error e -> Alcotest.failf "delete: %s" (E.to_string e));
  (* deletion released the thread *)
  check_bool "available after delete" true (S.thread_state sm ~tid = Ok `Available);
  (* delete the metadata *)
  match S.delete_thread sm ~caller:S.Os ~tid with
  | Ok () -> check_bool "gone" true (is_error (S.thread_state sm ~tid))
  | Error e -> Alcotest.failf "delete_thread: %s" (E.to_string e)

let test_thread_slot_validation () =
  let tb = Testbed.create () in
  let sm = tb.Testbed.sm in
  let os = tb.Testbed.os in
  let eid = Os.alloc_metadata os `Enclave in
  Result.get_ok
    (S.create_enclave sm ~caller:S.Os ~eid ~evbase:0x10000 ~evsize:4096 ());
  (* a tid outside the metadata area *)
  check_bool "tid out of area" true
    (is_error
       (S.load_thread sm ~caller:S.Os ~eid ~tid:(8 * 1024 * 1024)
          ~entry_pc:0L ~entry_sp:0L));
  (* a tid colliding with the enclave's own slot *)
  check_bool "tid collides" true
    (is_error
       (S.load_thread sm ~caller:S.Os ~eid ~tid:eid ~entry_pc:0L ~entry_sp:0L))

let suite =
  ( "thread-fig4",
    [
      Alcotest.test_case "load_thread assigns" `Quick test_load_thread_states;
      Alcotest.test_case "release and recycle" `Quick test_release_and_recycle;
      Alcotest.test_case "illegal transitions" `Quick
        test_illegal_thread_transitions;
      Alcotest.test_case "unassign after enclave delete" `Quick
        test_unassign_after_delete;
      Alcotest.test_case "thread slot validation" `Quick
        test_thread_slot_validation;
    ] )
