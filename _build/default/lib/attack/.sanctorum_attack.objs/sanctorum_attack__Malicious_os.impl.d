lib/attack/malicious_os.ml: Int64 List Sanctorum Sanctorum_hw Sanctorum_os Sanctorum_platform String
