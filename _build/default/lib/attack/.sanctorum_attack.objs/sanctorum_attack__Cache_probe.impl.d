lib/attack/cache_probe.ml: Array Format Fun Int64 List Malicious_os Sanctorum Sanctorum_hw Sanctorum_os Sanctorum_util
