lib/attack/malicious_os.mli: Sanctorum_os
