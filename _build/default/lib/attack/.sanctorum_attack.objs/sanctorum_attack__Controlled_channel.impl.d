lib/attack/controlled_channel.ml: Hashtbl Int64 List Sanctorum Sanctorum_hw Sanctorum_os Sanctorum_util
