lib/attack/cache_probe.mli: Format Sanctorum_hw Sanctorum_os
