lib/attack/controlled_channel.mli: Sanctorum_os
