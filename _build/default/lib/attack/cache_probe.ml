module Hw = Sanctorum_hw
module Os = Sanctorum_os.Os
module Testbed = Sanctorum_os.Testbed

let recommended_l2 =
  { Hw.Cache.default_l2 with Hw.Cache.sets = 256; ways = 2 }

type outcome = {
  secret : int;
  timings : int array;
  guess : int;
  spread : int;
  leaked : bool;
}

let line = 64
let page = Hw.Phys_mem.page_size

(* Straight-line bare-mode program execution on [core]; the code lives
   at a pre-chosen staging address. *)
let run_flat os ~core ~code_paddr ~program ~fuel =
  let machine = Os.machine os in
  let c = Hw.Machine.core machine core in
  let code = Hw.Isa.encode_program program in
  Os.os_write os ~paddr:code_paddr code;
  Hw.Machine.reset_core_state c;
  c.Hw.Machine.satp_root <- None;
  c.Hw.Machine.pc <- Int64.of_int code_paddr;
  c.Hw.Machine.halted <- false;
  ignore (Hw.Machine.run machine ~core ~fuel)

let nop_pad instrs target =
  instrs @ List.init (max 0 (target - List.length instrs)) (fun _ -> Hw.Isa.nop)

(* A staging page whose cache lines stay clear of the candidate sets —
   the attacker must not evict its own primed lines with instruction
   fetches or result stores. *)
let alloc_page_avoiding os ~sets ~bad_lo ~bad_span =
  let in_bad set =
    let d = (set - bad_lo + sets) mod sets in
    d < bad_span
  in
  let rec go tries =
    let p = Os.alloc_staging os ~bytes:page in
    let first = p / line mod sets in
    (* a full page spans 64 consecutive sets *)
    let page_lines = page / line in
    let overlap = ref false in
    for i = 0 to page_lines - 1 do
      if in_bad ((first + i) mod sets) then overlap := true
    done;
    if (not !overlap) || tries > 16 then p else go (tries + 1)
  in
  go 0

let run (tb : Testbed.t) ~secret ?(candidates = 8) () =
  if secret < 0 || secret >= candidates then Error "secret out of range"
  else begin
    let os = tb.Testbed.os in
    let l2 = Hw.Machine.l2 tb.Testbed.machine in
    let cfg = Hw.Cache.config l2 in
    let sets = cfg.Hw.Cache.sets and ways = cfg.Hw.Cache.ways in
    let period = sets * line in
    (* The victim: one load whose line index is its secret. *)
    let evbase = 0x100000 in
    let open Hw.Isa in
    let victim_prog =
      li t0 (evbase + page + (secret * line))
      @ [ Load (Ld, t1, t0, 0); Op_imm (Add, a7, zero, 1); Ecall ]
    in
    let image = Sanctorum.Image.of_program ~evbase victim_prog in
    match Os.install_enclave os image with
    | Error e -> Error (Sanctorum.Api_error.to_string e)
    | Ok inst -> begin
        let eid = inst.Os.eid and tid = List.hd inst.Os.tids in
        (* The OS allocated the enclave's memory, so it knows exactly
           where the data page landed: pages are consumed in ascending
           order — tables, then code, then data. *)
        let paddrs = Malicious_os.enclave_paddrs os ~eid in
        let tables = List.length (Sanctorum.Image.required_page_tables image) in
        let data_paddr = List.nth paddrs (tables + 1) in
        let target_set s = (data_paddr / line + s) mod sets in
        (* Attacker buffer: [ways] congruent lines per candidate set. *)
        let raw = Os.alloc_staging os ~bytes:(((ways + 1) * period) + page) in
        let buf = Sanctorum_util.Bits.align_up raw period in
        let probe_addr s w = buf + (w * period) + (target_set s * line) in
        let bad_lo = target_set 0 and bad_span = candidates in
        let results = alloc_page_avoiding os ~sets ~bad_lo ~bad_span in
        let prime_code = alloc_page_avoiding os ~sets ~bad_lo ~bad_span in
        let probe_code = alloc_page_avoiding os ~sets ~bad_lo ~bad_span in
        (* Prime: touch every candidate line. *)
        let prime =
          List.concat_map
            (fun s ->
              List.concat_map
                (fun w -> li t0 (probe_addr s w) @ [ Load (Ld, t1, t0, 0) ])
                (List.init ways Fun.id))
            (List.init candidates Fun.id)
          @ [ Ecall ]
        in
        run_flat os ~core:0 ~code_paddr:prime_code ~program:prime ~fuel:4096;
        (* Victim round: entering the enclave flushes L1/TLB but the
           (possibly partitioned) LLC keeps the primed lines. *)
        (match Os.run_enclave os ~eid ~tid ~core:0 ~fuel:4096 () with
        | Ok _ | Error _ -> ());
        (* Each candidate's block is padded to whole 64-byte code lines
           so instruction-fetch misses cost every block equally. *)
        let block s =
          let body =
            [ Csr_read_cycle t2 ]
            @ List.concat_map
                (fun w -> li t0 (probe_addr s w) @ [ Load (Ld, t1, t0, 0) ])
                (List.init ways Fun.id)
            @ [ Csr_read_cycle t3; Op (Sub, t3, t3, t2) ]
            @ li t4 (results + (s * 8))
            @ [ Store (Sd, t3, t4, 0) ]
          in
          let instrs_per_line = line / 4 in
          let target =
            (List.length body + instrs_per_line - 1)
            / instrs_per_line * instrs_per_line
          in
          nop_pad body target
        in
        let probe =
          List.concat_map block (List.init candidates Fun.id) @ [ Ecall ]
        in
        run_flat os ~core:0 ~code_paddr:probe_code ~program:probe ~fuel:8192;
        let timings =
          Array.init candidates (fun s ->
              Int64.to_int
                (Sanctorum_util.Bytesx.get_u64_le
                   (Os.os_read os ~paddr:(results + (s * 8)) ~len:8)
                   0))
        in
        let guess = ref 0 and best = ref timings.(0) and worst = ref timings.(0) in
        Array.iteri
          (fun i v ->
            if v > !best then begin
              best := v;
              guess := i
            end;
            if v < !worst then worst := v)
          timings;
        let spread = !best - !worst in
        Ok
          {
            secret;
            timings;
            guess = !guess;
            spread;
            leaked = spread > 30 && !guess = secret;
          }
      end
  end

let pp_outcome ppf o =
  Format.fprintf ppf "secret=%d guess=%d spread=%d leaked=%b timings=[" o.secret
    o.guess o.spread o.leaked;
  Array.iter (fun v -> Format.fprintf ppf " %d" v) o.timings;
  Format.fprintf ppf " ]"
