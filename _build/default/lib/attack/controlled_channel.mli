(** The controlled-channel adversary (§II-c): a malicious OS abuses
    demand paging to observe a victim's page-access sequence.

    Against an ordinary user process the OS controls the page tables:
    it maps pages lazily and reads the secret straight out of the fault
    addresses. Against a Sanctorum enclave the page tables are private
    and inside protected memory, faults within evrange are delivered to
    the enclave itself, and the OS observes nothing. *)

type observation = {
  observed_pages : int list;
      (** page indices the OS saw faulting, in order *)
  recovered : bool;  (** the observation equals the victim's secret *)
}

val baseline :
  Sanctorum_os.Testbed.t -> secret:int list -> core:int -> observation
(** The victim is an ordinary user process; the OS demand-pages it. Each
    secret digit selects which data page the victim touches next. *)

val enclave :
  Sanctorum_os.Testbed.t -> secret:int list -> core:int ->
  (observation, string) result
(** The same victim access pattern inside an enclave. *)
