(** The LLC prime+probe adversary (experiment S1).

    An OS-level attacker primes the cache sets a victim enclave's
    secret-dependent load could map to, schedules the victim, then
    probes each candidate set with [rdcycle] timings. On the Sanctum
    backend, LLC partitioning by page coloring keeps the victim's
    evictions out of every set the attacker can reach, so the timing
    profile is flat; on the Keystone backend (unpartitioned LLC, per its
    threat model) the victim's secret is recovered.

    The experiment needs a small LLC so the prime buffer fits the OS
    heap: use {!recommended_l2} when creating the testbed. *)

val recommended_l2 : Sanctorum_hw.Cache.config
(** 256 sets, 2 ways — small enough that priming a full set group fits
    in OS staging memory. *)

type outcome = {
  secret : int;  (** the value baked into the victim *)
  timings : int array;  (** probe cycles per candidate secret *)
  guess : int;  (** argmax of [timings] *)
  spread : int;  (** max - min probe time *)
  leaked : bool;  (** [spread] significant and [guess = secret] *)
}

val run :
  Sanctorum_os.Testbed.t -> secret:int -> ?candidates:int -> unit ->
  (outcome, string) result
(** Run one full prime → victim → probe round on core 0. [secret] must
    be in [0, candidates) (default 8 candidates). *)

val pp_outcome : Format.formatter -> outcome -> unit
