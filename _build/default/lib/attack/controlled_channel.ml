module Hw = Sanctorum_hw
module Os = Sanctorum_os.Os
module Testbed = Sanctorum_os.Testbed

type observation = { observed_pages : int list; recovered : bool }

let page = Hw.Phys_mem.page_size
let code_vaddr = 0x400000
let data_vaddr = code_vaddr + page

let victim_loads ~base ~secret =
  let open Hw.Isa in
  List.concat_map
    (fun d -> li t0 (base + (d * page)) @ [ Load (Ld, t1, t0, 0) ])
    secret
  @ [ Op_imm (Add, a7, zero, 1); Ecall ]

let baseline (tb : Testbed.t) ~secret ~core =
  let os = tb.Testbed.os in
  let machine = Os.machine os in
  let mem = Hw.Machine.mem machine in
  let c = Hw.Machine.core machine core in
  (* OS-controlled page tables: only the code page is mapped; every
     data page will fault into the OS's handler. *)
  let alloc_page () =
    let p = Os.alloc_staging os ~bytes:page in
    Hw.Phys_mem.zero_range mem ~pos:p ~len:page;
    p / page
  in
  let root = alloc_page () in
  let code = Hw.Isa.encode_program (victim_loads ~base:data_vaddr ~secret) in
  let code_ppn = alloc_page () in
  Os.os_write os ~paddr:(Hw.Phys_mem.page_base code_ppn) code;
  Hw.Page_table.map mem ~root_ppn:root ~vaddr:code_vaddr ~ppn:code_ppn
    ~perms:Hw.Page_table.{ r = true; w = false; x = true; u = true }
    ~alloc_table:alloc_page;
  Hw.Machine.reset_core_state c;
  Hw.Tlb.flush c.Hw.Machine.tlb;
  c.Hw.Machine.satp_root <- Some root;
  c.Hw.Machine.pc <- Int64.of_int code_vaddr;
  c.Hw.Machine.halted <- false;
  Os.clear_delegated_events os;
  let observed = ref [] in
  let finished = ref false in
  let fuel = ref 100000 in
  let page_frames = Hashtbl.create 8 in
  while (not !finished) && !fuel > 0 do
    fuel := !fuel - Hw.Machine.run machine ~core ~fuel:!fuel;
    let events = Os.delegated_events os in
    Os.clear_delegated_events os;
    List.iter
      (fun ev ->
        match ev with
        | Hw.Trap.Exception (Hw.Trap.Page_fault (_, va)) ->
            (* The controlled channel: the OS reads the secret straight
               from the fault address, maps the page, single-steps the
               victim across the access, and unmaps again so every
               subsequent touch of any page faults too. *)
            let va = Int64.to_int va in
            observed := ((va - data_vaddr) / page) :: !observed;
            let vpage = Sanctorum_util.Bits.align_down va page in
            let ppn =
              match Hashtbl.find_opt page_frames vpage with
              | Some ppn -> ppn
              | None ->
                  let ppn = alloc_page () in
                  Hashtbl.replace page_frames vpage ppn;
                  ppn
            in
            Hw.Page_table.map mem ~root_ppn:root ~vaddr:vpage ~ppn
              ~perms:Hw.Page_table.{ r = true; w = true; x = false; u = true }
              ~alloc_table:alloc_page;
            c.Hw.Machine.halted <- false;
            Hw.Machine.step machine c;
            ignore (Hw.Page_table.unmap mem ~root_ppn:root ~vaddr:vpage);
            Hw.Tlb.flush c.Hw.Machine.tlb
        | Hw.Trap.Exception Hw.Trap.Ecall_user -> finished := true
        | Hw.Trap.Exception _ | Hw.Trap.Interrupt _ -> finished := true)
      events;
    if c.Hw.Machine.halted && not !finished then finished := true;
    fuel := !fuel - 1
  done;
  c.Hw.Machine.satp_root <- None;
  let observed_pages = List.rev !observed in
  { observed_pages; recovered = observed_pages = secret }

let enclave (tb : Testbed.t) ~secret ~core =
  let os = tb.Testbed.os in
  let evbase = 0x200000 in
  let pages_needed = 1 + List.fold_left max 0 secret + 1 in
  let image =
    Sanctorum.Image.of_program ~evbase ~data_pages:pages_needed
      (victim_loads ~base:(evbase + page) ~secret)
  in
  match Os.install_enclave os image with
  | Error e -> Error (Sanctorum.Api_error.to_string e)
  | Ok inst ->
      let eid = inst.Os.eid and tid = List.hd inst.Os.tids in
      Os.clear_delegated_events os;
      (match Os.run_enclave os ~eid ~tid ~core ~fuel:100000 () with
      | Ok _ | Error _ -> ());
      let observed_pages =
        List.filter_map
          (fun ev ->
            match ev with
            | Hw.Trap.Exception (Hw.Trap.Page_fault (_, va)) ->
                Some ((Int64.to_int va - (evbase + page)) / page)
            | Hw.Trap.Exception _ | Hw.Trap.Interrupt _ -> None)
          (Os.delegated_events os)
      in
      Ok { observed_pages; recovered = observed_pages = secret }
