lib/platform/keystone.ml: Array List Owner_map Platform Sanctorum_hw Sanctorum_util
