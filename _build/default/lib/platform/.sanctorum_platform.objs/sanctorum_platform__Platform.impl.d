lib/platform/platform.ml: Sanctorum_hw
