lib/platform/sanctum.ml: Array Owner_map Platform Sanctorum_hw Sanctorum_util
