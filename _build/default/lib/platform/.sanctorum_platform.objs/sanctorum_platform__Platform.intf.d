lib/platform/platform.mli: Sanctorum_hw
