lib/platform/sanctum.mli: Platform Sanctorum_hw
