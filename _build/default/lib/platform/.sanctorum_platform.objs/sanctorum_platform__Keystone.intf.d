lib/platform/keystone.mli: Platform Sanctorum_hw
