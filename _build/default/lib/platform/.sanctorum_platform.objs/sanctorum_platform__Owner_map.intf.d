lib/platform/owner_map.mli: Sanctorum_hw
