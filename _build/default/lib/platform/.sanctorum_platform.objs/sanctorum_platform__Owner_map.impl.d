lib/platform/owner_map.ml: Array List Sanctorum_hw
