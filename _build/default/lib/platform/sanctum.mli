(** The MIT Sanctum processor backend (§VII-A): physical memory is split
    into fixed-size isolated DRAM regions, the shared LLC is partitioned
    by page coloring so distinct regions map to disjoint cache sets, and
    a private page-walk invariant confines PTE fetches to memory owned
    by the walking domain. *)

val default_region_count : int
(** 64, as in the paper (§VII-A). *)

val create :
  ?region_count:int -> Sanctorum_hw.Machine.t -> Platform.t
(** Installs the isolation hooks on the machine and reserves the bottom
    {!Platform.sm_memory_bytes} of memory for the monitor. Raises
    [Invalid_argument] if memory size is not divisible into
    [region_count] page-aligned regions. *)

val region_of : region_bytes:int -> int -> int
(** [region_of ~region_bytes paddr] is the DRAM region index. *)
