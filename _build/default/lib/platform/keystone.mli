(** The Keystone backend (§VII-B): standard RISC-V hardware, isolation
    by physical memory protection (PMP). The monitor's memory is covered
    by a locked deny-all entry; each protection-domain switch reprograms
    the core's remaining entries: allow the incoming domain's ranges,
    deny every other enclave's ranges, and leave a lowest-priority
    allow-all so OS-shared memory stays reachable. The LLC is {e not}
    partitioned — Keystone's threat model excludes microarchitectural
    side channels, which experiment S1 makes observable. *)

val create : Sanctorum_hw.Machine.t -> Platform.t
