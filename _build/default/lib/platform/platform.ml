type t = {
  name : string;
  machine : Sanctorum_hw.Machine.t;
  alloc_unit : int;
  llc_partitioned : bool;
  assign_range :
    lo:int -> hi:int -> Sanctorum_hw.Trap.domain -> (unit, string) result;
  owner_at : paddr:int -> Sanctorum_hw.Trap.domain;
  clean_range : lo:int -> hi:int -> unit;
  enter_domain : core:Sanctorum_hw.Machine.core -> Sanctorum_hw.Trap.domain -> unit;
  ranges_of_domain : Sanctorum_hw.Trap.domain -> (int * int) list;
}

let sm_memory_bytes = 512 * 1024
