(** The isolation-primitive interface the security monitor programs
    against (paper §IV-B, §VII). The monitor never touches DRAM regions
    or PMP entries directly: it requests domain assignments, cleaning,
    and core switches through this interface, and the backend maps them
    to its hardware primitive. *)

type t = {
  name : string;
  machine : Sanctorum_hw.Machine.t;
  alloc_unit : int;
      (** granularity (bytes) at which memory changes owner: one DRAM
          region on Sanctum, one page on Keystone *)
  llc_partitioned : bool;
      (** whether the LLC is isolated across domains (§VII-A vs
          §VII-B: Keystone does not partition microarchitectural
          state) *)
  assign_range :
    lo:int -> hi:int -> Sanctorum_hw.Trap.domain -> (unit, string) result;
      (** give [lo, hi) to a domain; fails if misaligned for the
          backend's granularity or out of hardware resources *)
  owner_at : paddr:int -> Sanctorum_hw.Trap.domain;
  clean_range : lo:int -> hi:int -> unit;
      (** zero the memory and scrub cache state so no residue crosses a
          re-allocation (Fig. 2 [clean]) *)
  enter_domain : core:Sanctorum_hw.Machine.core -> Sanctorum_hw.Trap.domain -> unit;
      (** retarget a core to a protection domain: flushes
          time-multiplexed core state (L1, TLB) and reprograms the
          primitive as needed *)
  ranges_of_domain : Sanctorum_hw.Trap.domain -> (int * int) list;
}

val sm_memory_bytes : int
(** Bytes at the bottom of physical memory reserved for the monitor's
    own image and metadata, on every backend. *)
