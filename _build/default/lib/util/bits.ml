let rotl64 x n =
  if n = 0 then x
  else Int64.logor (Int64.shift_left x n) (Int64.shift_right_logical x (64 - n))

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2 n =
  if not (is_power_of_two n) then invalid_arg "Bits.log2: not a power of two";
  let rec go k v = if v = 1 then k else go (k + 1) (v lsr 1) in
  go 0 n

let align_up x a =
  assert (is_power_of_two a);
  (x + a - 1) land lnot (a - 1)

let align_down x a =
  assert (is_power_of_two a);
  x land lnot (a - 1)

let extract x ~lo ~width = (x lsr lo) land ((1 lsl width) - 1)

let sign_extend x ~width =
  let m = 1 lsl (width - 1) in
  let x = x land ((1 lsl width) - 1) in
  (x lxor m) - m
