(** Bit-level helpers shared by the crypto and hardware models. *)

val rotl64 : int64 -> int -> int64
(** [rotl64 x n] rotates [x] left by [n] bits, [0 <= n < 64]. *)

val is_power_of_two : int -> bool
(** [is_power_of_two n] holds for n = 1, 2, 4, ... *)

val log2 : int -> int
(** [log2 n] for a power of two [n] is the exponent. Raises
    [Invalid_argument] otherwise. *)

val align_up : int -> int -> int
(** [align_up x a] rounds [x] up to the next multiple of [a] (a power of
    two). *)

val align_down : int -> int -> int
(** [align_down x a] rounds [x] down to a multiple of [a]. *)

val extract : int -> lo:int -> width:int -> int
(** [extract x ~lo ~width] is bits [lo .. lo+width-1] of [x]. *)

val sign_extend : int -> width:int -> int
(** [sign_extend x ~width] interprets the low [width] bits of [x] as a
    two's-complement value. *)
