(** Hexadecimal encoding and decoding of byte strings. *)

val encode : string -> string
(** [encode s] is the lowercase hex rendering of [s], two characters per
    input byte. *)

val decode : string -> string
(** [decode h] inverts {!encode}. Raises [Invalid_argument] if [h] has odd
    length or contains a non-hex character. *)

val pp : Format.formatter -> string -> unit
(** [pp ppf s] prints [encode s]. *)

val pp_dump : Format.formatter -> string -> unit
(** [pp_dump ppf s] prints a 16-bytes-per-line hexdump with offsets, for
    debugging memory images. *)
