lib/util/bytesx.ml: Bytes Char String
