lib/util/bits.mli:
