let xor a b =
  if String.length a <> String.length b then
    invalid_arg "Bytesx.xor: length mismatch";
  String.init (String.length a) (fun i ->
      Char.chr (Char.code a.[i] lxor Char.code b.[i]))

let constant_time_equal a b =
  if String.length a <> String.length b then false
  else begin
    let acc = ref 0 in
    for i = 0 to String.length a - 1 do
      acc := !acc lor (Char.code a.[i] lxor Char.code b.[i])
    done;
    !acc = 0
  end

let get_u64_le s off = String.get_int64_le s off
let set_u64_le b off v = Bytes.set_int64_le b off v
let get_u32_le s off = String.get_int32_le s off
let set_u32_le b off v = Bytes.set_int32_le b off v

let of_int64_le v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  Bytes.unsafe_to_string b

let concat_list parts = String.concat "" parts
let repeat c n = String.make n c
