let hex_digit n = "0123456789abcdef".[n]

let encode s =
  let b = Bytes.create (2 * String.length s) in
  String.iteri
    (fun i c ->
      let v = Char.code c in
      Bytes.set b (2 * i) (hex_digit (v lsr 4));
      Bytes.set b ((2 * i) + 1) (hex_digit (v land 0xf)))
    s;
  Bytes.unsafe_to_string b

let nibble c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Hex.decode: non-hex character"

let decode h =
  let n = String.length h in
  if n mod 2 <> 0 then invalid_arg "Hex.decode: odd length";
  String.init (n / 2) (fun i ->
      Char.chr ((nibble h.[2 * i] lsl 4) lor nibble h.[(2 * i) + 1]))

let pp ppf s = Format.pp_print_string ppf (encode s)

let pp_dump ppf s =
  let n = String.length s in
  let rec line off =
    if off < n then begin
      let len = min 16 (n - off) in
      Format.fprintf ppf "%08x  " off;
      for i = 0 to len - 1 do
        Format.fprintf ppf "%02x " (Char.code s.[off + i])
      done;
      Format.pp_print_newline ppf ();
      line (off + 16)
    end
  in
  line 0
