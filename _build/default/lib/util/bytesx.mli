(** Byte-string utilities used across the monitor and crypto code. *)

val xor : string -> string -> string
(** [xor a b] is the bytewise exclusive-or; the strings must have equal
    length. *)

val constant_time_equal : string -> string -> bool
(** Length-and-content comparison that does not short-circuit on the first
    differing byte (models the constant-time comparison a real SM must
    use on secrets). *)

val get_u64_le : string -> int -> int64
(** [get_u64_le s off] reads 8 bytes little-endian. *)

val set_u64_le : Bytes.t -> int -> int64 -> unit

val get_u32_le : string -> int -> int32

val set_u32_le : Bytes.t -> int -> int32 -> unit

val of_int64_le : int64 -> string
(** 8-byte little-endian rendering. *)

val concat_list : string list -> string
(** [concat_list parts] concatenates with no separator. *)

val repeat : char -> int -> string
