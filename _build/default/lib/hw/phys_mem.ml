type t = Bytes.t

let page_size = 4096

let create ~size =
  if size <= 0 || size mod page_size <> 0 then
    invalid_arg "Phys_mem.create: size must be a positive multiple of 4096";
  Bytes.make size '\000'

let size = Bytes.length

let check t pos len label =
  if pos < 0 || pos + len > Bytes.length t then
    invalid_arg
      (Printf.sprintf "Phys_mem.%s: address 0x%x out of range" label pos)

let read_u8 t pos =
  check t pos 1 "read_u8";
  Char.code (Bytes.get t pos)

let write_u8 t pos v =
  check t pos 1 "write_u8";
  Bytes.set t pos (Char.chr (v land 0xff))

let read_u16 t pos =
  check t pos 2 "read_u16";
  Bytes.get_uint16_le t pos

let write_u16 t pos v =
  check t pos 2 "write_u16";
  Bytes.set_uint16_le t pos (v land 0xffff)

let read_u32 t pos =
  check t pos 4 "read_u32";
  Bytes.get_int32_le t pos

let write_u32 t pos v =
  check t pos 4 "write_u32";
  Bytes.set_int32_le t pos v

let read_u64 t pos =
  check t pos 8 "read_u64";
  Bytes.get_int64_le t pos

let write_u64 t pos v =
  check t pos 8 "write_u64";
  Bytes.set_int64_le t pos v

let read_string t ~pos ~len =
  check t pos len "read_string";
  Bytes.sub_string t pos len

let write_string t ~pos s =
  check t pos (String.length s) "write_string";
  Bytes.blit_string s 0 t pos (String.length s)

let zero_range t ~pos ~len =
  check t pos len "zero_range";
  Bytes.fill t pos len '\000'

let page_of paddr = paddr / page_size
let page_base ppn = ppn * page_size
