(** Byte-accurate physical memory. Isolation is {e not} enforced here —
    the machine layer consults the platform's isolation primitive (PMP or
    DRAM regions) before every access, exactly as hardware would. *)

type t

val page_size : int
(** 4096 bytes. *)

val create : size:int -> t
(** [create ~size] is zero-filled memory; [size] must be page-aligned. *)

val size : t -> int

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit
val read_u16 : t -> int -> int
val write_u16 : t -> int -> int -> unit
val read_u32 : t -> int -> int32
val write_u32 : t -> int -> int32 -> unit
val read_u64 : t -> int -> int64
val write_u64 : t -> int -> int64 -> unit

val read_string : t -> pos:int -> len:int -> string
val write_string : t -> pos:int -> string -> unit

val zero_range : t -> pos:int -> len:int -> unit
(** Models the monitor's cleaning of a reclaimed memory resource. *)

val page_of : int -> int
(** [page_of paddr] is the physical page number. *)

val page_base : int -> int
(** [page_base ppn] is the first address of page [ppn]. *)
