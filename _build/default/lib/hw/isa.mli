(** An RV64I-subset instruction set: variant representation, binary
    encoder (assembler) and decoder (interpreter front-end).

    Enclave binaries must live in measured memory pages, so programs
    are genuinely encoded to 32-bit RISC-V words, loaded into simulated
    physical memory, and decoded again at execution time. The subset is
    the integer base ISA plus [mul], [ecall]/[ebreak], and a read-only
    cycle CSR (needed by the cache-timing adversary). *)

type reg = int
(** Register index 0..31; x0 is hardwired to zero. *)

type branch_op = Beq | Bne | Blt | Bge | Bltu | Bgeu
type load_op = Lb | Lh | Lw | Ld | Lbu | Lhu | Lwu
type store_op = Sb | Sh | Sw | Sd
type alu_op = Add | Sub | Sll | Slt | Sltu | Xor | Srl | Sra | Or | And

type t =
  | Lui of reg * int  (** rd, imm (upper 20 bits, signed) *)
  | Auipc of reg * int
  | Jal of reg * int  (** rd, byte offset *)
  | Jalr of reg * reg * int  (** rd, rs1, imm *)
  | Branch of branch_op * reg * reg * int  (** rs1, rs2, byte offset *)
  | Load of load_op * reg * reg * int  (** rd, rs1, imm *)
  | Store of store_op * reg * reg * int  (** rs2, rs1, imm *)
  | Op_imm of alu_op * reg * reg * int  (** op, rd, rs1, imm *)
  | Op of alu_op * reg * reg * reg  (** op, rd, rs1, rs2 *)
  | Mul of reg * reg * reg
  | Csr_read_cycle of reg  (** rdcycle rd *)
  | Ecall
  | Ebreak
  | Fence

val encode : t -> int32
val decode : int32 -> t option
(** [None] for any word outside the implemented subset. *)

val encode_program : t list -> string
(** Little-endian 32-bit words, ready to be loaded into memory. *)

val size : int
(** Instruction size in bytes (4). *)

(** ABI register names. *)

val zero : reg
val ra : reg
val sp : reg
val gp : reg
val tp : reg
val t0 : reg
val t1 : reg
val t2 : reg
val s0 : reg
val s1 : reg
val a0 : reg
val a1 : reg
val a2 : reg
val a3 : reg
val a4 : reg
val a5 : reg
val a6 : reg
val a7 : reg
val t3 : reg
val t4 : reg
val t5 : reg
val t6 : reg

val pp : Format.formatter -> t -> unit

(** Convenience pseudo-instructions for writing test programs. *)

val nop : t
val li : reg -> int -> t list
(** Load a (small, <= 32-bit) immediate; expands to lui+addi or addi. *)

val mv : reg -> reg -> t
val j : int -> t
(** Unconditional jump by byte offset. *)

val ret : t
(** jalr x0, ra, 0 *)
