type reg = int
type branch_op = Beq | Bne | Blt | Bge | Bltu | Bgeu
type load_op = Lb | Lh | Lw | Ld | Lbu | Lhu | Lwu
type store_op = Sb | Sh | Sw | Sd
type alu_op = Add | Sub | Sll | Slt | Sltu | Xor | Srl | Sra | Or | And

type t =
  | Lui of reg * int
  | Auipc of reg * int
  | Jal of reg * int
  | Jalr of reg * reg * int
  | Branch of branch_op * reg * reg * int
  | Load of load_op * reg * reg * int
  | Store of store_op * reg * reg * int
  | Op_imm of alu_op * reg * reg * int
  | Op of alu_op * reg * reg * reg
  | Mul of reg * reg * reg
  | Csr_read_cycle of reg
  | Ecall
  | Ebreak
  | Fence

let size = 4

(* opcodes *)
let op_lui = 0b0110111
let op_auipc = 0b0010111
let op_jal = 0b1101111
let op_jalr = 0b1100111
let op_branch = 0b1100011
let op_load = 0b0000011
let op_store = 0b0100011
let op_imm = 0b0010011
let op_op = 0b0110011
let op_system = 0b1110011
let op_fence = 0b0001111
let csr_cycle = 0xc00

let branch_funct3 = function
  | Beq -> 0b000
  | Bne -> 0b001
  | Blt -> 0b100
  | Bge -> 0b101
  | Bltu -> 0b110
  | Bgeu -> 0b111

let load_funct3 = function
  | Lb -> 0b000
  | Lh -> 0b001
  | Lw -> 0b010
  | Ld -> 0b011
  | Lbu -> 0b100
  | Lhu -> 0b101
  | Lwu -> 0b110

let store_funct3 = function Sb -> 0b000 | Sh -> 0b001 | Sw -> 0b010 | Sd -> 0b011

let alu_funct3 = function
  | Add | Sub -> 0b000
  | Sll -> 0b001
  | Slt -> 0b010
  | Sltu -> 0b011
  | Xor -> 0b100
  | Srl | Sra -> 0b101
  | Or -> 0b110
  | And -> 0b111

let alu_funct7 = function Sub | Sra -> 0b0100000 | _ -> 0b0000000

let check_reg r name =
  if r < 0 || r > 31 then invalid_arg ("Isa.encode: bad register for " ^ name)

let check_imm12 imm name =
  if imm < -2048 || imm > 2047 then
    invalid_arg (Printf.sprintf "Isa.encode: %s immediate %d out of range" name imm)

let i_type ~opcode ~funct3 ~rd ~rs1 ~imm =
  (imm land 0xfff) lsl 20
  lor (rs1 lsl 15) lor (funct3 lsl 12) lor (rd lsl 7) lor opcode

let r_type ~opcode ~funct3 ~funct7 ~rd ~rs1 ~rs2 =
  (funct7 lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
  lor (rd lsl 7) lor opcode

let s_type ~opcode ~funct3 ~rs1 ~rs2 ~imm =
  let imm = imm land 0xfff in
  ((imm lsr 5) lsl 25)
  lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
  lor ((imm land 0x1f) lsl 7)
  lor opcode

let b_type ~opcode ~funct3 ~rs1 ~rs2 ~imm =
  let imm = imm land 0x1fff in
  ((imm lsr 12) lsl 31)
  lor (((imm lsr 5) land 0x3f) lsl 25)
  lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
  lor (((imm lsr 1) land 0xf) lsl 8)
  lor (((imm lsr 11) land 1) lsl 7)
  lor opcode

let u_type ~opcode ~rd ~imm = ((imm land 0xfffff) lsl 12) lor (rd lsl 7) lor opcode

let j_type ~opcode ~rd ~imm =
  let imm = imm land 0x1fffff in
  ((imm lsr 20) lsl 31)
  lor (((imm lsr 1) land 0x3ff) lsl 21)
  lor (((imm lsr 11) land 1) lsl 20)
  lor (((imm lsr 12) land 0xff) lsl 12)
  lor (rd lsl 7) lor opcode

let encode instr =
  let word =
    match instr with
    | Lui (rd, imm) ->
        check_reg rd "lui";
        u_type ~opcode:op_lui ~rd ~imm
    | Auipc (rd, imm) ->
        check_reg rd "auipc";
        u_type ~opcode:op_auipc ~rd ~imm
    | Jal (rd, imm) ->
        check_reg rd "jal";
        if imm < -(1 lsl 20) || imm >= 1 lsl 20 || imm land 1 <> 0 then
          invalid_arg "Isa.encode: jal offset out of range";
        j_type ~opcode:op_jal ~rd ~imm
    | Jalr (rd, rs1, imm) ->
        check_reg rd "jalr";
        check_reg rs1 "jalr";
        check_imm12 imm "jalr";
        i_type ~opcode:op_jalr ~funct3:0 ~rd ~rs1 ~imm
    | Branch (op, rs1, rs2, imm) ->
        check_reg rs1 "branch";
        check_reg rs2 "branch";
        if imm < -4096 || imm > 4094 || imm land 1 <> 0 then
          invalid_arg "Isa.encode: branch offset out of range";
        b_type ~opcode:op_branch ~funct3:(branch_funct3 op) ~rs1 ~rs2 ~imm
    | Load (op, rd, rs1, imm) ->
        check_reg rd "load";
        check_reg rs1 "load";
        check_imm12 imm "load";
        i_type ~opcode:op_load ~funct3:(load_funct3 op) ~rd ~rs1 ~imm
    | Store (op, rs2, rs1, imm) ->
        check_reg rs2 "store";
        check_reg rs1 "store";
        check_imm12 imm "store";
        s_type ~opcode:op_store ~funct3:(store_funct3 op) ~rs1 ~rs2 ~imm
    | Op_imm (op, rd, rs1, imm) ->
        check_reg rd "op-imm";
        check_reg rs1 "op-imm";
        (match op with
        | Sll | Srl | Sra ->
            if imm < 0 || imm > 63 then
              invalid_arg "Isa.encode: shift amount out of range";
            ()
        | Sub -> invalid_arg "Isa.encode: subi does not exist"
        | Add | Slt | Sltu | Xor | Or | And -> check_imm12 imm "op-imm");
        let imm =
          match op with
          | Srl -> imm
          | Sra -> imm lor (0b010000 lsl 6)
          | _ -> imm
        in
        i_type ~opcode:op_imm ~funct3:(alu_funct3 op) ~rd ~rs1 ~imm
    | Op (op, rd, rs1, rs2) ->
        check_reg rd "op";
        check_reg rs1 "op";
        check_reg rs2 "op";
        r_type ~opcode:op_op ~funct3:(alu_funct3 op) ~funct7:(alu_funct7 op)
          ~rd ~rs1 ~rs2
    | Mul (rd, rs1, rs2) ->
        check_reg rd "mul";
        r_type ~opcode:op_op ~funct3:0 ~funct7:1 ~rd ~rs1 ~rs2
    | Csr_read_cycle rd ->
        check_reg rd "rdcycle";
        i_type ~opcode:op_system ~funct3:0b010 ~rd ~rs1:0 ~imm:csr_cycle
    | Ecall -> i_type ~opcode:op_system ~funct3:0 ~rd:0 ~rs1:0 ~imm:0
    | Ebreak -> i_type ~opcode:op_system ~funct3:0 ~rd:0 ~rs1:0 ~imm:1
    | Fence -> i_type ~opcode:op_fence ~funct3:0 ~rd:0 ~rs1:0 ~imm:0
  in
  Int32.of_int word

let decode word =
  let w = Int32.to_int word land 0xffffffff in
  let opcode = w land 0x7f in
  let rd = (w lsr 7) land 0x1f in
  let funct3 = (w lsr 12) land 0x7 in
  let rs1 = (w lsr 15) land 0x1f in
  let rs2 = (w lsr 20) land 0x1f in
  let funct7 = (w lsr 25) land 0x7f in
  let imm_i = Sanctorum_util.Bits.sign_extend (w lsr 20) ~width:12 in
  let imm_s =
    Sanctorum_util.Bits.sign_extend (((w lsr 25) lsl 5) lor rd) ~width:12
  in
  let imm_b =
    Sanctorum_util.Bits.sign_extend
      (((w lsr 31) lsl 12)
      lor (((w lsr 7) land 1) lsl 11)
      lor (((w lsr 25) land 0x3f) lsl 5)
      lor (((w lsr 8) land 0xf) lsl 1))
      ~width:13
  in
  let imm_u = Sanctorum_util.Bits.sign_extend (w lsr 12) ~width:20 in
  let imm_j =
    Sanctorum_util.Bits.sign_extend
      (((w lsr 31) lsl 20)
      lor (((w lsr 12) land 0xff) lsl 12)
      lor (((w lsr 20) land 1) lsl 11)
      lor (((w lsr 21) land 0x3ff) lsl 1))
      ~width:21
  in
  if opcode = op_lui then Some (Lui (rd, imm_u))
  else if opcode = op_auipc then Some (Auipc (rd, imm_u))
  else if opcode = op_jal then Some (Jal (rd, imm_j))
  else if opcode = op_jalr && funct3 = 0 then Some (Jalr (rd, rs1, imm_i))
  else if opcode = op_branch then begin
    let op =
      match funct3 with
      | 0b000 -> Some Beq
      | 0b001 -> Some Bne
      | 0b100 -> Some Blt
      | 0b101 -> Some Bge
      | 0b110 -> Some Bltu
      | 0b111 -> Some Bgeu
      | _ -> None
    in
    Option.map (fun op -> Branch (op, rs1, rs2, imm_b)) op
  end
  else if opcode = op_load then begin
    let op =
      match funct3 with
      | 0b000 -> Some Lb
      | 0b001 -> Some Lh
      | 0b010 -> Some Lw
      | 0b011 -> Some Ld
      | 0b100 -> Some Lbu
      | 0b101 -> Some Lhu
      | 0b110 -> Some Lwu
      | _ -> None
    in
    Option.map (fun op -> Load (op, rd, rs1, imm_i)) op
  end
  else if opcode = op_store then begin
    let op =
      match funct3 with
      | 0b000 -> Some Sb
      | 0b001 -> Some Sh
      | 0b010 -> Some Sw
      | 0b011 -> Some Sd
      | _ -> None
    in
    Option.map (fun op -> Store (op, rs2, rs1, imm_s)) op
  end
  else if opcode = op_imm then begin
    match funct3 with
    | 0b000 -> Some (Op_imm (Add, rd, rs1, imm_i))
    | 0b010 -> Some (Op_imm (Slt, rd, rs1, imm_i))
    | 0b011 -> Some (Op_imm (Sltu, rd, rs1, imm_i))
    | 0b100 -> Some (Op_imm (Xor, rd, rs1, imm_i))
    | 0b110 -> Some (Op_imm (Or, rd, rs1, imm_i))
    | 0b111 -> Some (Op_imm (And, rd, rs1, imm_i))
    | 0b001 -> Some (Op_imm (Sll, rd, rs1, (w lsr 20) land 0x3f))
    | 0b101 ->
        let shamt = (w lsr 20) land 0x3f in
        if (w lsr 26) land 0x3f = 0b010000 then Some (Op_imm (Sra, rd, rs1, shamt))
        else if (w lsr 26) land 0x3f = 0 then Some (Op_imm (Srl, rd, rs1, shamt))
        else None
    | _ -> None
  end
  else if opcode = op_op then begin
    if funct7 = 1 && funct3 = 0 then Some (Mul (rd, rs1, rs2))
    else begin
      let op =
        match (funct3, funct7) with
        | 0b000, 0b0000000 -> Some Add
        | 0b000, 0b0100000 -> Some Sub
        | 0b001, 0b0000000 -> Some Sll
        | 0b010, 0b0000000 -> Some Slt
        | 0b011, 0b0000000 -> Some Sltu
        | 0b100, 0b0000000 -> Some Xor
        | 0b101, 0b0000000 -> Some Srl
        | 0b101, 0b0100000 -> Some Sra
        | 0b110, 0b0000000 -> Some Or
        | 0b111, 0b0000000 -> Some And
        | _ -> None
      in
      Option.map (fun op -> Op (op, rd, rs1, rs2)) op
    end
  end
  else if opcode = op_system then begin
    if funct3 = 0 && rs1 = 0 && rd = 0 then
      match (w lsr 20) land 0xfff with
      | 0 -> Some Ecall
      | 1 -> Some Ebreak
      | _ -> None
    else if funct3 = 0b010 && rs1 = 0 && (w lsr 20) land 0xfff = csr_cycle then
      Some (Csr_read_cycle rd)
    else None
  end
  else if opcode = op_fence then Some Fence
  else None

let encode_program instrs =
  let buf = Buffer.create (4 * List.length instrs) in
  List.iter
    (fun i ->
      let w = encode i in
      Buffer.add_char buf (Char.chr (Int32.to_int w land 0xff));
      Buffer.add_char buf (Char.chr (Int32.to_int (Int32.shift_right_logical w 8) land 0xff));
      Buffer.add_char buf (Char.chr (Int32.to_int (Int32.shift_right_logical w 16) land 0xff));
      Buffer.add_char buf (Char.chr (Int32.to_int (Int32.shift_right_logical w 24) land 0xff)))
    instrs;
  Buffer.contents buf

let zero = 0
let ra = 1
let sp = 2
let gp = 3
let tp = 4
let t0 = 5
let t1 = 6
let t2 = 7
let s0 = 8
let s1 = 9
let a0 = 10
let a1 = 11
let a2 = 12
let a3 = 13
let a4 = 14
let a5 = 15
let a6 = 16
let a7 = 17
let t3 = 28
let t4 = 29
let t5 = 30
let t6 = 31

let reg_name r =
  let names =
    [| "zero"; "ra"; "sp"; "gp"; "tp"; "t0"; "t1"; "t2"; "s0"; "s1"; "a0";
       "a1"; "a2"; "a3"; "a4"; "a5"; "a6"; "a7"; "s2"; "s3"; "s4"; "s5";
       "s6"; "s7"; "s8"; "s9"; "s10"; "s11"; "t3"; "t4"; "t5"; "t6" |]
  in
  if r >= 0 && r < 32 then names.(r) else Printf.sprintf "x%d" r

let alu_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Sll -> "sll"
  | Slt -> "slt"
  | Sltu -> "sltu"
  | Xor -> "xor"
  | Srl -> "srl"
  | Sra -> "sra"
  | Or -> "or"
  | And -> "and"

let pp ppf = function
  | Lui (rd, imm) -> Format.fprintf ppf "lui %s, %d" (reg_name rd) imm
  | Auipc (rd, imm) -> Format.fprintf ppf "auipc %s, %d" (reg_name rd) imm
  | Jal (rd, imm) -> Format.fprintf ppf "jal %s, %d" (reg_name rd) imm
  | Jalr (rd, rs1, imm) ->
      Format.fprintf ppf "jalr %s, %s, %d" (reg_name rd) (reg_name rs1) imm
  | Branch (op, rs1, rs2, imm) ->
      let name =
        match op with
        | Beq -> "beq"
        | Bne -> "bne"
        | Blt -> "blt"
        | Bge -> "bge"
        | Bltu -> "bltu"
        | Bgeu -> "bgeu"
      in
      Format.fprintf ppf "%s %s, %s, %d" name (reg_name rs1) (reg_name rs2) imm
  | Load (op, rd, rs1, imm) ->
      let name =
        match op with
        | Lb -> "lb"
        | Lh -> "lh"
        | Lw -> "lw"
        | Ld -> "ld"
        | Lbu -> "lbu"
        | Lhu -> "lhu"
        | Lwu -> "lwu"
      in
      Format.fprintf ppf "%s %s, %d(%s)" name (reg_name rd) imm (reg_name rs1)
  | Store (op, rs2, rs1, imm) ->
      let name =
        match op with Sb -> "sb" | Sh -> "sh" | Sw -> "sw" | Sd -> "sd"
      in
      Format.fprintf ppf "%s %s, %d(%s)" name (reg_name rs2) imm (reg_name rs1)
  | Op_imm (op, rd, rs1, imm) ->
      Format.fprintf ppf "%si %s, %s, %d" (alu_name op) (reg_name rd)
        (reg_name rs1) imm
  | Op (op, rd, rs1, rs2) ->
      Format.fprintf ppf "%s %s, %s, %s" (alu_name op) (reg_name rd)
        (reg_name rs1) (reg_name rs2)
  | Mul (rd, rs1, rs2) ->
      Format.fprintf ppf "mul %s, %s, %s" (reg_name rd) (reg_name rs1)
        (reg_name rs2)
  | Csr_read_cycle rd -> Format.fprintf ppf "rdcycle %s" (reg_name rd)
  | Ecall -> Format.pp_print_string ppf "ecall"
  | Ebreak -> Format.pp_print_string ppf "ebreak"
  | Fence -> Format.pp_print_string ppf "fence"

let nop = Op_imm (Add, 0, 0, 0)

let li rd imm =
  if imm >= -2048 && imm <= 2047 then [ Op_imm (Add, rd, zero, imm) ]
  else begin
    let hi = (imm + 0x800) asr 12 in
    let lo = imm - (hi lsl 12) in
    if lo = 0 then [ Lui (rd, hi) ] else [ Lui (rd, hi); Op_imm (Add, rd, rd, lo) ]
  end

let mv rd rs = Op_imm (Add, rd, rs, 0)
let j off = Jal (zero, off)
let ret = Jalr (zero, ra, 0)
