lib/hw/pmp.mli: Format Trap
