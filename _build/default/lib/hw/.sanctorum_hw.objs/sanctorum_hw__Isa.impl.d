lib/hw/isa.ml: Array Buffer Char Format Int32 List Option Printf Sanctorum_util
