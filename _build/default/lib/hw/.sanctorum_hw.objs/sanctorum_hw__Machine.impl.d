lib/hw/machine.ml: Array Cache Format Int64 Isa Page_table Phys_mem Pmp Sanctorum_util String Tlb Trap
