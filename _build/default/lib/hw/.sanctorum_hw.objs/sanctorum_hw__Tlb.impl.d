lib/hw/tlb.ml: Array
