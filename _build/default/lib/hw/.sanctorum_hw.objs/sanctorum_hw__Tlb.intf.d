lib/hw/tlb.mli:
