lib/hw/page_table.ml: Int64 Phys_mem
