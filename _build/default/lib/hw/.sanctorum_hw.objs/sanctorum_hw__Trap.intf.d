lib/hw/trap.mli: Format
