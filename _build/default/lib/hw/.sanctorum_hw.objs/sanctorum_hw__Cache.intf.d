lib/hw/cache.mli:
