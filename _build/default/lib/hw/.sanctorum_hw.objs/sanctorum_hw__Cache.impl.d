lib/hw/cache.ml: Array Sanctorum_util
