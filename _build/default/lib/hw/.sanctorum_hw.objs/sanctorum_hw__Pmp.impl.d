lib/hw/pmp.ml: Array Format List Stdlib Trap
