lib/hw/trap.ml: Format
