lib/hw/machine.mli: Cache Phys_mem Pmp Tlb Trap
