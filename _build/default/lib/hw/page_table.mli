(** Sv39-style three-level page tables, stored in simulated physical
    memory and walked by the machine's MMU.

    Enclaves own {e private} page tables inside their protected memory
    (§V-C); the Sanctum page-walk invariant is enforced by the
    [pte_fetch_ok] callback: every physical address the walker touches
    must be approved by the platform for the walking domain. *)

type perms = { r : bool; w : bool; x : bool; u : bool }

type fault = Invalid_mapping | Walk_access_denied of int
(** [Walk_access_denied paddr]: the walker was refused a PTE fetch at
    [paddr] — an isolation violation, reported as an access fault. *)

val levels : int
(** 3 *)

val entries_per_table : int
(** 512 *)

val vpn_bits : int
(** 39-bit virtual addresses. *)

val walk :
  Phys_mem.t ->
  root_ppn:int ->
  vaddr:int ->
  pte_fetch_ok:(int -> bool) ->
  (int * perms, fault) result
(** [walk mem ~root_ppn ~vaddr ~pte_fetch_ok] translates and returns
    [(ppn, perms)] of the leaf (superpage leaves are resolved to the
    4 KiB frame containing [vaddr]). *)

val walk_cost_levels :
  Phys_mem.t ->
  root_ppn:int ->
  vaddr:int ->
  pte_fetch_ok:(int -> bool) ->
  int
(** Number of PTE fetches the walk performs (for the timing model). *)

val map :
  Phys_mem.t ->
  root_ppn:int ->
  vaddr:int ->
  ppn:int ->
  perms:perms ->
  alloc_table:(unit -> int) ->
  unit
(** Install a 4 KiB mapping, allocating intermediate tables with
    [alloc_table] (which must return the PPN of a zeroed page). Raises
    [Invalid_argument] if the slot is already mapped. *)

val unmap : Phys_mem.t -> root_ppn:int -> vaddr:int -> bool
(** Clear a leaf mapping; [false] if it was not mapped. *)

val pte_size : int

val encode_pte : ppn:int -> perms:perms -> valid:bool -> int64
val decode_pte : int64 -> (int * perms * bool, unit) result
(** [(ppn, perms, is_leaf)], or [Error ()] when the valid bit is
    clear. *)
