lib/os/os.ml: Array Hashtbl Int64 List Option Result Sanctorum Sanctorum_hw Sanctorum_platform Sanctorum_util String
