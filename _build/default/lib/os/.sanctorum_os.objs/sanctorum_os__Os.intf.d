lib/os/os.mli: Sanctorum Sanctorum_hw
