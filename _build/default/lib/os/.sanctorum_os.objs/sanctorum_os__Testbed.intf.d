lib/os/testbed.mli: Os Sanctorum Sanctorum_crypto Sanctorum_hw Sanctorum_platform
