lib/os/testbed.ml: Option Os Sanctorum Sanctorum_crypto Sanctorum_hw Sanctorum_platform
