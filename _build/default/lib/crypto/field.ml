type t = Bignum.t

let p =
  (* 2^255 - 19 *)
  Bignum.sub (Bignum.shift_left Bignum.one 255) (Bignum.of_int 19)

let nineteen = Bignum.of_int 19

(* Fold 2^255 ≡ 19 until the value fits in 255 bits, then a final
   conditional subtract. Inputs are at most p^2 so two folds suffice. *)
let reduce x =
  let rec fold x =
    if Bignum.bit_length x <= 255 then x
    else begin
      let hi = Bignum.shift_right x 255 in
      let lo = Bignum.sub x (Bignum.shift_left hi 255) in
      fold (Bignum.add lo (Bignum.mul nineteen hi))
    end
  in
  let x = fold x in
  if Bignum.compare x p >= 0 then Bignum.sub x p else x

let zero = Bignum.zero
let one = Bignum.one
let of_bignum x = reduce x
let to_bignum x = x
let of_int n = reduce (Bignum.of_int n)
let of_bytes_le s = reduce (Bignum.of_bytes_le s)
let to_bytes_le x = Bignum.to_bytes_le ~len:32 x
let equal = Bignum.equal
let is_zero = Bignum.is_zero
let is_odd x = not (Bignum.is_even x)
let add a b = reduce (Bignum.add a b)
let sub a b = if Bignum.compare a b >= 0 then Bignum.sub a b else Bignum.sub (Bignum.add a p) b
let neg a = if Bignum.is_zero a then a else Bignum.sub p a
let mul a b = reduce (Bignum.mul a b)
let square a = mul a a

let pow b e =
  let acc = ref one in
  for i = Bignum.bit_length e - 1 downto 0 do
    acc := square !acc;
    if Bignum.test_bit e i then acc := mul !acc b
  done;
  !acc

let inv a =
  if is_zero a then invalid_arg "Field.inv: zero";
  pow a (Bignum.sub p Bignum.two)

(* p ≡ 5 (mod 8): candidate r = a^((p+3)/8). If r^2 = -a, multiply by
   sqrt(-1) = 2^((p-1)/4). *)
let sqrt_minus_one =
  lazy (pow Bignum.two (Bignum.shift_right (Bignum.sub p Bignum.one) 2))

let sqrt a =
  if is_zero a then Some zero
  else begin
    let e = Bignum.shift_right (Bignum.add p (Bignum.of_int 3)) 3 in
    let r = pow a e in
    if equal (square r) a then Some r
    else begin
      let r' = mul r (Lazy.force sqrt_minus_one) in
      if equal (square r') a then Some r' else None
    end
  end

let pp ppf x = Bignum.pp ppf x
