let block_size = 136

let mac ~key msg =
  let key = if String.length key > block_size then Sha3.sha3_256 key else key in
  let key = key ^ String.make (block_size - String.length key) '\000' in
  let ipad = Sanctorum_util.Bytesx.xor key (String.make block_size '\x36') in
  let opad = Sanctorum_util.Bytesx.xor key (String.make block_size '\x5c') in
  Sha3.sha3_256 (opad ^ Sha3.sha3_256 (ipad ^ msg))

let verify ~key ~msg ~tag =
  Sanctorum_util.Bytesx.constant_time_equal (mac ~key msg) tag
