(** HMAC over SHA3-256 (RFC 2104 construction with the SHA3-256 rate,
    136 bytes, as block size). *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 32-byte authentication tag. *)

val verify : key:string -> msg:string -> tag:string -> bool
(** Constant-time tag comparison. *)
