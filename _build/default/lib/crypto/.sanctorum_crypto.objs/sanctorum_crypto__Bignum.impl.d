lib/crypto/bignum.ml: Array Char Format Hashtbl Sanctorum_util Stdlib String
