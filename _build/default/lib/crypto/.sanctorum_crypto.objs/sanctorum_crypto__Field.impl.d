lib/crypto/field.ml: Bignum Lazy
