lib/crypto/sha3.ml: Array Bytes Char Int64 Printf Sanctorum_util String
