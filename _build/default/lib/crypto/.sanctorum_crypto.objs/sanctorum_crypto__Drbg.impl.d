lib/crypto/drbg.ml: Bignum Buffer Int64 Sanctorum_util Sha3
