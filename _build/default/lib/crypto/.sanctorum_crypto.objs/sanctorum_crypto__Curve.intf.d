lib/crypto/curve.mli: Bignum Field Format
