lib/crypto/hmac.ml: Sanctorum_util Sha3 String
