lib/crypto/cert.mli: Format Schnorr
