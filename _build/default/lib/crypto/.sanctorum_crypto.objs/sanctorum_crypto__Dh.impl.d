lib/crypto/dh.ml: Bignum Curve Drbg Sha3
