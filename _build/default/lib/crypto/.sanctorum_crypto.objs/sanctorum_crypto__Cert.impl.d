lib/crypto/cert.ml: Bytes Format Int32 Printf Result Sanctorum_util Schnorr String
