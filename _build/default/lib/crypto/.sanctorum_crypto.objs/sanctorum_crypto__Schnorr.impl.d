lib/crypto/schnorr.ml: Bignum Curve Format Sanctorum_util Sha3 String
