lib/crypto/dh.mli: Drbg
