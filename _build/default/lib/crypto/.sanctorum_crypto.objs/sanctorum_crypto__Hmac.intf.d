lib/crypto/hmac.mli:
