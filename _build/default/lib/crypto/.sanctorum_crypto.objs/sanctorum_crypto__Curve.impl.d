lib/crypto/curve.ml: Bignum Field Format String
