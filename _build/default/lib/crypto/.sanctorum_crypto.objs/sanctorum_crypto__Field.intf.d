lib/crypto/field.mli: Bignum Format
