lib/crypto/hkdf.mli:
