lib/crypto/hkdf.ml: Char Hmac String
