(* Extended twisted Edwards coordinates (X : Y : Z : T) with
   x = X/Z, y = Y/Z, T = XY/Z. The a = -1 formulas below are complete:
   they are correct for every pair of inputs, including doublings and
   the identity, so no special cases leak timing. *)

type point = { x : Field.t; y : Field.t; z : Field.t; t : Field.t }

let order =
  Bignum.add
    (Bignum.shift_left Bignum.one 252)
    (Bignum.of_decimal "27742317777372353535851937790883648493")

let cofactor = 8

let d =
  (* -121665/121666 mod p *)
  Field.mul
    (Field.neg (Field.of_int 121665))
    (Field.inv (Field.of_int 121666))

let two_d = Field.add d d
let identity = { x = Field.zero; y = Field.one; z = Field.one; t = Field.zero }

let is_on_curve_affine (x, y) =
  (* -x^2 + y^2 = 1 + d x^2 y^2 *)
  let x2 = Field.square x and y2 = Field.square y in
  Field.equal
    (Field.sub y2 x2)
    (Field.add Field.one (Field.mul d (Field.mul x2 y2)))

let to_affine p =
  let zi = Field.inv p.z in
  (Field.mul p.x zi, Field.mul p.y zi)

let of_affine (x, y) =
  if not (is_on_curve_affine (x, y)) then
    invalid_arg "Curve.of_affine: point not on curve";
  { x; y; z = Field.one; t = Field.mul x y }

let is_on_curve p = is_on_curve_affine (to_affine p)

let add p q =
  let a = Field.mul (Field.sub p.y p.x) (Field.sub q.y q.x) in
  let b = Field.mul (Field.add p.y p.x) (Field.add q.y q.x) in
  let c = Field.mul (Field.mul p.t two_d) q.t in
  let dd = Field.mul (Field.add p.z p.z) q.z in
  let e = Field.sub b a in
  let f = Field.sub dd c in
  let g = Field.add dd c in
  let h = Field.add b a in
  { x = Field.mul e f; y = Field.mul g h; t = Field.mul e h; z = Field.mul f g }

let double p =
  let a = Field.square p.x in
  let b = Field.square p.y in
  let c = Field.add (Field.square p.z) (Field.square p.z) in
  let h = Field.add a b in
  let e = Field.sub h (Field.square (Field.add p.x p.y)) in
  let g = Field.sub a b in
  let f = Field.add c g in
  { x = Field.mul e f; y = Field.mul g h; t = Field.mul e h; z = Field.mul f g }

let negate p = { p with x = Field.neg p.x; t = Field.neg p.t }

let scalar_mul k p =
  let acc = ref identity in
  for i = Bignum.bit_length k - 1 downto 0 do
    acc := double !acc;
    if Bignum.test_bit k i then acc := add !acc p
  done;
  !acc

let equal p q =
  (* x1/z1 = x2/z2 and y1/z1 = y2/z2, cross-multiplied. *)
  Field.equal (Field.mul p.x q.z) (Field.mul q.x p.z)
  && Field.equal (Field.mul p.y q.z) (Field.mul q.y p.z)

let base =
  let y = Field.mul (Field.of_int 4) (Field.inv (Field.of_int 5)) in
  let y2 = Field.square y in
  let x2 =
    Field.mul
      (Field.sub y2 Field.one)
      (Field.inv (Field.add (Field.mul d y2) Field.one))
  in
  match Field.sqrt x2 with
  | None -> assert false
  | Some x ->
      let x = if Field.is_odd x then Field.neg x else x in
      of_affine (x, y)

let encoded_size = 64

let encode p =
  let x, y = to_affine p in
  Field.to_bytes_le x ^ Field.to_bytes_le y

let decode s =
  if String.length s <> encoded_size then Error "Curve.decode: bad length"
  else begin
    let x = Field.of_bytes_le (String.sub s 0 32) in
    let y = Field.of_bytes_le (String.sub s 32 32) in
    if is_on_curve_affine (x, y) then Ok (of_affine (x, y))
    else Error "Curve.decode: point not on curve"
  end

let pp ppf p =
  let x, y = to_affine p in
  Format.fprintf ppf "(%a, %a)" Field.pp x Field.pp y
