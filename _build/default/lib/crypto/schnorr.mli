(** Schnorr signatures over the attestation curve ({!Curve}).

    This is the signature scheme behind the monitor's remote attestation
    (§VI-C): the signing enclave signs (nonce, enclave measurement) with
    the monitor's attestation key, and the manufacturer PKI signs the
    monitor's public key. Deterministic nonces (hash of secret and
    message) remove the catastrophic nonce-reuse failure mode. *)

type secret_key
type public_key

val secret_key_of_seed : string -> secret_key
(** Derive a key pair deterministically from seed bytes (the secure boot
    protocol derives the monitor's key this way). *)

val public_key : secret_key -> public_key

val public_key_to_bytes : public_key -> string
(** 64-byte curve-point encoding. *)

val public_key_of_bytes : string -> (public_key, string) result

val signature_size : int
(** 96 bytes: the commitment point R (64) and the response scalar s
    (32, big-endian). *)

val sign : secret_key -> string -> string
(** [sign sk msg] is a [signature_size]-byte signature. *)

val verify : public_key -> msg:string -> signature:string -> bool

val pp_public_key : Format.formatter -> public_key -> unit
