let hash_len = 32

let extract ~salt ~ikm = Hmac.mac ~key:salt ikm

let expand ~prk ~info ~len =
  if len > 255 * hash_len then invalid_arg "Hkdf.expand: output too long";
  let blocks = (len + hash_len - 1) / hash_len in
  let rec go i prev acc =
    if i > blocks then acc
    else begin
      let t = Hmac.mac ~key:prk (prev ^ info ^ String.make 1 (Char.chr i)) in
      go (i + 1) t (acc ^ t)
    end
  in
  String.sub (go 1 "" "") 0 len

let derive ~salt ~ikm ~info ~len = expand ~prk:(extract ~salt ~ikm) ~info ~len
