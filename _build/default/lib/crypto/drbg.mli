(** A deterministic random bit generator built from SHA3-256 (a
    hash-DRBG in the spirit of NIST SP 800-90A).

    In the paper the hardware platform provides a trusted entropy
    source (§IV-B4); in this reproduction the DRBG stands in for it so
    that every experiment is reproducible from a seed. *)

type t

val create : seed:string -> t
(** Instantiate from seed material of any length. *)

val reseed : t -> string -> unit
(** Mix additional entropy into the state. *)

val random_bytes : t -> int -> string
(** [random_bytes t n] produces [n] fresh pseudorandom bytes and
    ratchets the internal state forward (backtracking resistance). *)

val random_u64 : t -> int64

val random_int : t -> int -> int
(** [random_int t bound] is uniform in [0, bound). Raises
    [Invalid_argument] if [bound <= 0]. *)

val random_scalar : t -> m:Bignum.t -> Bignum.t
(** Uniform in [1, m), for key generation (rejection sampling). *)
