type secret_key = { scalar : Bignum.t; seed : string }
type public_key = Curve.point

let scalar_of_hash data = Bignum.rem (Bignum.of_bytes_be data) Curve.order

let nonzero_scalar_of_hash data =
  let s = scalar_of_hash data in
  if Bignum.is_zero s then Bignum.one else s

let secret_key_of_seed seed =
  let scalar =
    nonzero_scalar_of_hash (Sha3.sha3_512 ("sanctorum-schnorr-key" ^ seed))
  in
  { scalar; seed }

let public_key sk = Curve.scalar_mul sk.scalar Curve.base
let public_key_to_bytes = Curve.encode
let public_key_of_bytes = Curve.decode
let signature_size = Curve.encoded_size + 32

let challenge ~commitment ~pk ~msg =
  scalar_of_hash
    (Sha3.sha3_512
       ("sanctorum-schnorr-chal" ^ Curve.encode commitment ^ Curve.encode pk
      ^ msg))

let sign sk msg =
  let pk = public_key sk in
  let r =
    nonzero_scalar_of_hash
      (Sha3.sha3_512 ("sanctorum-schnorr-nonce" ^ sk.seed ^ msg))
  in
  let commitment = Curve.scalar_mul r Curve.base in
  let c = challenge ~commitment ~pk ~msg in
  let s =
    Bignum.mod_add r (Bignum.mod_mul c sk.scalar ~m:Curve.order) ~m:Curve.order
  in
  Curve.encode commitment ^ Bignum.to_bytes_be ~len:32 s

let verify pk ~msg ~signature =
  if String.length signature <> signature_size then false
  else begin
    match Curve.decode (String.sub signature 0 Curve.encoded_size) with
    | Error _ -> false
    | Ok commitment ->
        let s =
          Bignum.of_bytes_be (String.sub signature Curve.encoded_size 32)
        in
        if Bignum.compare s Curve.order >= 0 then false
        else begin
          let c = challenge ~commitment ~pk ~msg in
          (* s·B = R + c·A *)
          Curve.equal
            (Curve.scalar_mul s Curve.base)
            (Curve.add commitment (Curve.scalar_mul c pk))
        end
  end

let pp_public_key ppf pk =
  Format.fprintf ppf "%s"
    (Sanctorum_util.Hex.encode (String.sub (Curve.encode pk) 0 8))
