(** HKDF (RFC 5869) over HMAC-SHA3-256. The secure-boot protocol [7]
    derives the monitor's attestation key from the device root key and
    the monitor's own measurement with this KDF. *)

val extract : salt:string -> ikm:string -> string
(** [extract ~salt ~ikm] is the 32-byte pseudorandom key. *)

val expand : prk:string -> info:string -> len:int -> string
(** [expand ~prk ~info ~len] produces [len] bytes of output keying
    material; [len] must be at most 255 * 32. *)

val derive : salt:string -> ikm:string -> info:string -> len:int -> string
(** [extract] followed by [expand]. *)
