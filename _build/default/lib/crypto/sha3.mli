(** SHA-3 / SHAKE (FIPS 202) implemented from scratch on Keccak-f[1600].

    This is the measurement hash of the paper (§VI-A cites tiny_sha3). The
    streaming interface mirrors how the monitor extends an enclave's
    measurement operation by operation. *)

type t
(** A streaming hash context. Contexts are single-use: calling
    {!finalize} twice raises [Invalid_argument]. *)

val init_sha3_256 : unit -> t
val init_sha3_512 : unit -> t

val init_shake128 : unit -> t
val init_shake256 : unit -> t

val absorb : t -> string -> unit
(** [absorb t data] feeds [data] into the sponge. *)

val finalize : t -> len:int -> string
(** [finalize t ~len] pads, squeezes and returns [len] bytes of output.
    For SHA3-256/512 [len] must be 32/64 respectively; SHAKE accepts any
    positive [len]. *)

val sha3_256 : string -> string
(** One-shot SHA3-256, 32-byte digest. *)

val sha3_512 : string -> string
(** One-shot SHA3-512, 64-byte digest. *)

val shake128 : len:int -> string -> string
val shake256 : len:int -> string -> string

val digest_size_256 : int
val digest_size_512 : int
