(** Diffie–Hellman key agreement over the attestation curve, used by
    remote attestation (§VI-C, step 1) to establish the private channel
    whose key the attestation later authenticates. *)

type secret
type public

val generate : Drbg.t -> secret * public
(** Fresh ephemeral key pair. *)

val public_to_bytes : public -> string
val public_of_bytes : string -> (public, string) result

val shared_key : secret -> public -> string
(** [shared_key mine theirs] is a 32-byte symmetric key; both sides
    compute the same value. The raw curve point is hashed so the key is
    uniform. *)
