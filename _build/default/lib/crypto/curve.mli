(** The twisted Edwards curve -x^2 + y^2 = 1 + d x^2 y^2 over
    GF(2^255 - 19) with the Ed25519 parameters. This is the group used
    by the monitor's attestation signatures ({!Schnorr}) and key
    agreement ({!Dh}).

    The base point is recovered from y = 4/5 at module initialization
    (choosing the even-x root), so no large coordinate constant needs to
    be trusted. *)

type point
(** A point of the curve in extended homogeneous coordinates. *)

val order : Bignum.t
(** The prime order L = 2^252 + 27742317777372353535851937790883648493
    of the base-point subgroup. *)

val cofactor : int

val identity : point
val base : point

val add : point -> point -> point
val double : point -> point
val negate : point -> point
val scalar_mul : Bignum.t -> point -> point
val equal : point -> point -> bool
val is_on_curve : point -> bool

val to_affine : point -> Field.t * Field.t
val of_affine : Field.t * Field.t -> point
(** Raises [Invalid_argument] if the coordinates are not on the curve. *)

val encode : point -> string
(** 64-byte uncompressed encoding: x (32 LE) followed by y (32 LE). *)

val decode : string -> (point, string) result
(** Inverse of {!encode}, including an on-curve check. *)

val encoded_size : int

val pp : Format.formatter -> point -> unit
