type t = { mutable v : string; mutable counter : int64 }

let create ~seed =
  { v = Sha3.sha3_256 ("sanctorum-drbg-init" ^ seed); counter = 0L }

let reseed t entropy = t.v <- Sha3.sha3_256 ("sanctorum-drbg-reseed" ^ t.v ^ entropy)

let random_bytes t n =
  if n < 0 then invalid_arg "Drbg.random_bytes: negative length";
  let buf = Buffer.create n in
  while Buffer.length buf < n do
    Buffer.add_string buf
      (Sha3.sha3_256 (t.v ^ Sanctorum_util.Bytesx.of_int64_le t.counter));
    t.counter <- Int64.add t.counter 1L
  done;
  (* Ratchet so earlier outputs cannot be recomputed from a captured
     state. *)
  t.v <- Sha3.sha3_256 ("sanctorum-drbg-ratchet" ^ t.v);
  Buffer.sub buf 0 n

let random_u64 t = Sanctorum_util.Bytesx.get_u64_le (random_bytes t 8) 0

let random_int t bound =
  if bound <= 0 then invalid_arg "Drbg.random_int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let mask_bits =
    let rec go b = if 1 lsl b >= bound then b else go (b + 1) in
    go 1
  in
  let mask = (1 lsl mask_bits) - 1 in
  let rec draw () =
    let v = Int64.to_int (random_u64 t) land mask in
    if v < bound then v else draw ()
  in
  draw ()

let random_scalar t ~m =
  let len = (Bignum.bit_length m + 7) / 8 in
  let rec draw () =
    let x = Bignum.of_bytes_be (random_bytes t len) in
    if Bignum.is_zero x || Bignum.compare x m >= 0 then draw () else x
  in
  draw ()
