(** Enclave measurement (paper §VI-A): a SHA3-256 hash extended by every
    monitor operation that shapes the enclave's initial state, finalized
    at [init_enclave].

    Two enclaves loaded with identical configuration, virtual layout and
    contents measure equal — physical placement is deliberately {e not}
    covered. The monitor separately enforces the invariants that make
    the measurement descriptive (ascending physical loads, injective
    virtual-to-physical mapping, page tables before data). *)

type t

val start : unit -> t

val extend_create : t -> evbase:int -> evsize:int -> mailbox_count:int -> unit
val extend_page_table : t -> vaddr:int -> level:int -> unit

val extend_page :
  t -> vaddr:int -> r:bool -> w:bool -> x:bool -> contents:string -> unit

val extend_shared : t -> vaddr:int -> len:int -> unit
(** Shared-buffer windows are measured by geometry only — their contents
    belong to the untrusted OS. *)

val extend_thread : t -> entry_pc:int64 -> entry_sp:int64 -> unit

val finalize : t -> string
(** The 32-byte enclave measurement. The context cannot be extended
    afterwards. *)

val size : int
