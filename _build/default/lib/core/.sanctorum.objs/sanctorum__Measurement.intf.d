lib/core/measurement.mli:
