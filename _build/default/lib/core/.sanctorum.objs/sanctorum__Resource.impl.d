lib/core/resource.ml: Api_error Array Format Sanctorum_hw
