lib/core/mailbox.ml: Api_error Array Format String
