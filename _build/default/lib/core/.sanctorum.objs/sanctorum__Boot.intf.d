lib/core/boot.mli: Sanctorum_crypto
