lib/core/boot.ml: Sanctorum_crypto
