lib/core/api_error.mli: Format Stdlib
