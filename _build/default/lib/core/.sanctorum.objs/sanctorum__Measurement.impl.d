lib/core/measurement.ml: Int64 Sanctorum_crypto Sanctorum_util
