lib/core/resource.mli: Api_error Format Sanctorum_hw
