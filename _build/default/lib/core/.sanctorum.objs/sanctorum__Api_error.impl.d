lib/core/api_error.ml: Format Stdlib
