lib/core/mailbox.mli: Api_error Format
