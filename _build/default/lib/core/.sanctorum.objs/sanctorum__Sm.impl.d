lib/core/sm.ml: Api_error Array Boot Buffer Bytes Format Fun Hashtbl Int32 Int64 List Mailbox Measurement Resource Result Sanctorum_crypto Sanctorum_hw Sanctorum_platform Sanctorum_util String
