lib/core/image.ml: Format Int64 List Measurement Sanctorum_hw String
