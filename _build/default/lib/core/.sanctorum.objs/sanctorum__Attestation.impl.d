lib/core/attestation.ml: Api_error Boot Image Int32 List Mailbox Result Sanctorum_crypto Sanctorum_hw Sanctorum_util Sm String
