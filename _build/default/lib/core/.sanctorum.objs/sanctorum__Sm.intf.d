lib/core/sm.mli: Api_error Boot Mailbox Resource Sanctorum_crypto Sanctorum_hw Sanctorum_platform
