lib/core/attestation.mli: Api_error Image Sanctorum_crypto Sm
