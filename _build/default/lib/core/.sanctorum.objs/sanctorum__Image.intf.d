lib/core/image.mli: Format Sanctorum_hw
