(** A portable description of an enclave's initial state: virtual
    layout, page contents, shared windows, and threads.

    The measurement of an image is a pure function ({!measurement}) that
    replays exactly the monitor's measurement schedule (§VI-A), so a
    verifier — or the monitor itself, for the hard-coded signing-enclave
    measurement — can compute the expected value without loading
    anything. The OS loader ({!Sanctorum_os.Loader}) follows the same
    canonical order, so a faithfully loaded image measures equal. *)

type page = {
  vaddr : int;
  r : bool;
  w : bool;
  x : bool;
  contents : string;  (** at most one page; zero-padded when shorter *)
}

type t = {
  evbase : int;
  evsize : int;
  mailbox_slots : int;
  pages : page list;  (** in load order; vaddrs inside evrange *)
  shared : (int * int) list;  (** (vaddr, len) windows outside evrange *)
  threads : (int64 * int64) list;  (** (entry_pc, entry_sp) *)
}

val make :
  evbase:int ->
  evsize:int ->
  ?mailbox_slots:int ->
  ?shared:(int * int) list ->
  ?threads:(int64 * int64) list ->
  page list ->
  t
(** Raises [Invalid_argument] on unaligned or out-of-range layout. *)

val of_program :
  evbase:int ->
  ?data_pages:int ->
  ?mailbox_slots:int ->
  ?shared:(int * int) list ->
  Sanctorum_hw.Isa.t list ->
  t
(** Convenience: one executable page of code at [evbase] followed by
    [data_pages] zeroed read-write pages, and a single thread entering
    at [evbase] with the stack at the top of the last data page. *)

val required_page_tables : t -> (int * int) list
(** The page-table nodes needed to map every page and shared window:
    [(vaddr, level)] in canonical order (root first, then level 1 nodes
    by ascending address, then level 0). *)

val page_count : t -> int
(** Enclave-private physical pages consumed: tables plus data pages. *)

val measurement : t -> string
(** The measurement the monitor will compute for a faithful load. *)

val pp : Format.formatter -> t -> unit
