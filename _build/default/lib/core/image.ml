module Hw = Sanctorum_hw

type page = { vaddr : int; r : bool; w : bool; x : bool; contents : string }

type t = {
  evbase : int;
  evsize : int;
  mailbox_slots : int;
  pages : page list;
  shared : (int * int) list;
  threads : (int64 * int64) list;
}

let page_size = Hw.Phys_mem.page_size
let max_vaddr = 1 lsl Hw.Page_table.vpn_bits

let make ~evbase ~evsize ?(mailbox_slots = 4) ?(shared = []) ?(threads = [])
    pages =
  if evbase mod page_size <> 0 || evsize mod page_size <> 0 || evsize <= 0 then
    invalid_arg "Image.make: evrange must be page-aligned and non-empty";
  if evbase < 0 || evbase + evsize > max_vaddr then
    invalid_arg "Image.make: evrange outside the address space";
  List.iter
    (fun p ->
      if p.vaddr mod page_size <> 0 then invalid_arg "Image.make: unaligned page";
      if p.vaddr < evbase || p.vaddr + page_size > evbase + evsize then
        invalid_arg "Image.make: page outside evrange";
      if String.length p.contents > page_size then
        invalid_arg "Image.make: page contents too large")
    pages;
  List.iter
    (fun (vaddr, len) ->
      if vaddr mod page_size <> 0 || len <= 0 || len mod page_size <> 0 then
        invalid_arg "Image.make: unaligned shared window";
      if vaddr + len > evbase && evbase + evsize > vaddr then
        invalid_arg "Image.make: shared window overlaps evrange")
    shared;
  { evbase; evsize; mailbox_slots; pages; shared; threads }

let of_program ~evbase ?(data_pages = 1) ?(mailbox_slots = 4) ?(shared = [])
    program =
  let code = Hw.Isa.encode_program program in
  if String.length code > page_size then
    invalid_arg "Image.of_program: program exceeds one page";
  let evsize = (1 + data_pages) * page_size in
  let data =
    List.init data_pages (fun i ->
        {
          vaddr = evbase + ((i + 1) * page_size);
          r = true;
          w = true;
          x = false;
          contents = "";
        })
  in
  let pages =
    { vaddr = evbase; r = true; w = false; x = true; contents = code } :: data
  in
  let stack_top = Int64.of_int (evbase + evsize - 16) in
  make ~evbase ~evsize ~mailbox_slots ~shared
    ~threads:[ (Int64.of_int evbase, stack_top) ]
    pages

let mapped_vaddrs t =
  List.map (fun p -> p.vaddr) t.pages
  @ List.concat_map
      (fun (vaddr, len) -> List.init (len / page_size) (fun i -> vaddr + (i * page_size)))
      t.shared

let required_page_tables t =
  let vaddrs = mapped_vaddrs t in
  let distinct shift =
    List.sort_uniq compare (List.map (fun v -> v lsr shift) vaddrs)
  in
  let level1 = List.map (fun p -> (p lsl 30, 1)) (distinct 30) in
  let level0 = List.map (fun p -> (p lsl 21, 0)) (distinct 21) in
  ((0, 2) :: level1) @ level0

let page_count t = List.length (required_page_tables t) + List.length t.pages

let pad contents =
  contents ^ String.make (page_size - String.length contents) '\000'

let measurement t =
  let ctx = Measurement.start () in
  Measurement.extend_create ctx ~evbase:t.evbase ~evsize:t.evsize
    ~mailbox_count:t.mailbox_slots;
  List.iter
    (fun (vaddr, level) -> Measurement.extend_page_table ctx ~vaddr ~level)
    (required_page_tables t);
  List.iter
    (fun p ->
      Measurement.extend_page ctx ~vaddr:p.vaddr ~r:p.r ~w:p.w ~x:p.x
        ~contents:(pad p.contents))
    t.pages;
  List.iter
    (fun (vaddr, len) -> Measurement.extend_shared ctx ~vaddr ~len)
    t.shared;
  List.iter
    (fun (entry_pc, entry_sp) ->
      Measurement.extend_thread ctx ~entry_pc ~entry_sp)
    t.threads;
  Measurement.finalize ctx

let pp ppf t =
  Format.fprintf ppf
    "image{evrange=[0x%x,0x%x), %d pages, %d shared, %d threads}" t.evbase
    (t.evbase + t.evsize) (List.length t.pages) (List.length t.shared)
    (List.length t.threads)
