module Crypto = Sanctorum_crypto

type identity = {
  sm_measurement : string;
  attestation_key : Crypto.Schnorr.secret_key;
  device_public : Crypto.Schnorr.public_key;
  certificates : Crypto.Cert.t list;
  root_public : Crypto.Schnorr.public_key;
}

let manufacturer_root ~seed =
  Crypto.Schnorr.secret_key_of_seed ("sanctorum-manufacturer-root" ^ seed)

let perform ~root ~device_secret ~sm_binary =
  let sm_measurement = Crypto.Sha3.sha3_256 sm_binary in
  (* The device key depends only on the device secret; the monitor key
     binds the device to the booted monitor's measurement, so patching
     the monitor re-keys it ([7]). *)
  let device_key =
    Crypto.Schnorr.secret_key_of_seed
      (Crypto.Hkdf.derive ~salt:"sanctorum-device-key" ~ikm:device_secret
         ~info:"" ~len:32)
  in
  let attestation_key =
    Crypto.Schnorr.secret_key_of_seed
      (Crypto.Hkdf.derive ~salt:"sanctorum-sm-key" ~ikm:device_secret
         ~info:sm_measurement ~len:32)
  in
  let device_public = Crypto.Schnorr.public_key device_key in
  let device_cert =
    Crypto.Cert.issue ~issuer:"manufacturer" ~issuer_key:root ~subject:"device"
      ~subject_key:device_public ()
  in
  let sm_cert =
    Crypto.Cert.issue ~issuer:"device" ~issuer_key:device_key
      ~subject:"security-monitor"
      ~subject_key:(Crypto.Schnorr.public_key attestation_key)
      ~bound_measurement:sm_measurement ()
  in
  {
    sm_measurement;
    attestation_key;
    device_public;
    certificates = [ device_cert; sm_cert ];
    root_public = Crypto.Schnorr.public_key root;
  }
