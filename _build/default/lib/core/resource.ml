type domain = Sanctorum_hw.Trap.domain
type state = Available | Offered of domain | Owned of domain | Blocked of domain
type kind = Core_resource | Memory_resource
type t = { cores : state array; memory : state array }

let untrusted = Sanctorum_hw.Trap.domain_untrusted

let create ~cores ~memory_units =
  {
    cores = Array.make cores (Owned untrusted);
    memory = Array.make memory_units (Owned untrusted);
  }

let table t = function Core_resource -> t.cores | Memory_resource -> t.memory
let count t kind = Array.length (table t kind)

let state t kind ~rid =
  let arr = table t kind in
  if rid < 0 || rid >= Array.length arr then
    Error (Api_error.Illegal_argument "resource id out of range")
  else Ok arr.(rid)

let owner t kind ~rid =
  match state t kind ~rid with
  | Ok (Owned d | Blocked d | Offered d) -> Some d
  | Ok Available | Error _ -> None

let force_owner t kind ~rid d = (table t kind).(rid) <- Owned d

let block t kind ~rid ~by =
  match state t kind ~rid with
  | Error e -> Error e
  | Ok (Owned d) when d = by || by = Sanctorum_hw.Trap.domain_sm ->
      (table t kind).(rid) <- Blocked d;
      Ok ()
  | Ok (Owned _) -> Error Api_error.Unauthorized
  | Ok (Blocked _ | Available | Offered _) ->
      Error (Api_error.Invalid_state "block: resource is not owned")

let clean t kind ~rid =
  match state t kind ~rid with
  | Error e -> Error e
  | Ok (Blocked d) ->
      (table t kind).(rid) <- Available;
      Ok d
  | Ok (Owned _ | Available | Offered _) ->
      Error (Api_error.Invalid_state "clean: resource is not blocked")

let grant t kind ~rid ~to_ ~auto_accept =
  match state t kind ~rid with
  | Error e -> Error e
  | Ok Available ->
      (table t kind).(rid) <-
        (if auto_accept || to_ = untrusted then Owned to_ else Offered to_);
      Ok ()
  | Ok (Owned _ | Blocked _ | Offered _) ->
      Error (Api_error.Invalid_state "grant: resource is not available")

let accept t kind ~rid ~by =
  match state t kind ~rid with
  | Error e -> Error e
  | Ok (Offered d) when d = by ->
      (table t kind).(rid) <- Owned d;
      Ok ()
  | Ok (Offered _) -> Error Api_error.Unauthorized
  | Ok (Owned _ | Blocked _ | Available) ->
      Error (Api_error.Invalid_state "accept: resource was not offered")

let units_owned_by t kind d =
  let arr = table t kind in
  let acc = ref [] in
  for rid = Array.length arr - 1 downto 0 do
    match arr.(rid) with
    | Owned d' when d' = d -> acc := rid :: !acc
    | Owned _ | Blocked _ | Available | Offered _ -> ()
  done;
  !acc

let pp_state ppf = function
  | Available -> Format.pp_print_string ppf "available"
  | Offered d -> Format.fprintf ppf "offered(%d)" d
  | Owned d -> Format.fprintf ppf "owned(%d)" d
  | Blocked d -> Format.fprintf ppf "blocked(%d)" d
