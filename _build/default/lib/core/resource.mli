(** The generic resource state machine of paper Fig. 2, instantiated for
    every typed machine resource the monitor tracks (cores and memory
    allocation units).

    States and edges:
    {v
      owned(d)  --block by owner-->  blocked(d)
      blocked(d) --clean by OS/SM--> available
      available --grant(new) by OS--> offered(new) --accept by new--> owned(new)
    v}

    [offered] is the intermediate point of the grant→accept edge the
    paper's text describes ("An existing domain can accept resources the
    OS offers, completing the transition"). Grants to the untrusted
    domain itself, and grants to an enclave that is still loading (where
    the monitor acts on the enclave's behalf), complete immediately. *)

type domain = Sanctorum_hw.Trap.domain

type state = Available | Offered of domain | Owned of domain | Blocked of domain

type kind = Core_resource | Memory_resource

type t

val create : cores:int -> memory_units:int -> t
(** All resources start [Owned untrusted]; the monitor marks its own
    memory afterwards with {!force_owner}. *)

val count : t -> kind -> int
val state : t -> kind -> rid:int -> state Api_error.result
val owner : t -> kind -> rid:int -> domain option
(** The owning domain for [Owned]/[Blocked]/[Offered] states. *)

val force_owner : t -> kind -> rid:int -> domain -> unit
(** Unchecked assignment, used only during monitor boot. *)

val block : t -> kind -> rid:int -> by:domain -> unit Api_error.result
(** Owner (or the monitor on its behalf, e.g. enclave deletion) marks
    the resource reclaimable. *)

val clean : t -> kind -> rid:int -> domain Api_error.result
(** OS reclaims a blocked resource; returns the previous owner so the
    caller can scrub the corresponding hardware state. *)

val grant : t -> kind -> rid:int -> to_:domain -> auto_accept:bool ->
  unit Api_error.result

val accept : t -> kind -> rid:int -> by:domain -> unit Api_error.result

val units_owned_by : t -> kind -> domain -> int list
(** Resource ids currently [Owned] by the domain, ascending. *)

val pp_state : Format.formatter -> state -> unit
