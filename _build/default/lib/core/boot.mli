(** The secure-boot protocol (paper §IV-A, citing [7]): at reset the
    hardware root of trust measures the monitor binary and endows it
    with a key pair derived from the device secret and that
    measurement, plus a certificate chain rooted in the manufacturer's
    PKI. A different (e.g. tampered) monitor binary yields a different
    key, for which no valid certificate exists. *)

type identity = {
  sm_measurement : string;  (** SHA3-256 of the monitor binary image *)
  attestation_key : Sanctorum_crypto.Schnorr.secret_key;
  device_public : Sanctorum_crypto.Schnorr.public_key;
  certificates : Sanctorum_crypto.Cert.t list;
      (** [device_cert; sm_cert], verifiable root-first against
          {!field:root_public} *)
  root_public : Sanctorum_crypto.Schnorr.public_key;
      (** the manufacturer root verifiers already trust *)
}

val manufacturer_root : seed:string -> Sanctorum_crypto.Schnorr.secret_key
(** The manufacturer's offline root key (simulated; a verifier would
    hold only its public half). *)

val perform :
  root:Sanctorum_crypto.Schnorr.secret_key ->
  device_secret:string ->
  sm_binary:string ->
  identity
(** Boot the monitor image [sm_binary] on the device holding
    [device_secret]. Deterministic: same device + same binary = same
    identity. *)
