module Crypto = Sanctorum_crypto

type t = Crypto.Sha3.t

let size = 32
let start () = Crypto.Sha3.init_sha3_256 ()
let u64 v = Sanctorum_util.Bytesx.of_int64_le v
let int v = u64 (Int64.of_int v)

let extend_create t ~evbase ~evsize ~mailbox_count =
  Crypto.Sha3.absorb t ("enclave-create" ^ int evbase ^ int evsize ^ int mailbox_count)

let extend_page_table t ~vaddr ~level =
  Crypto.Sha3.absorb t ("enclave-page-table" ^ int vaddr ^ int level)

let extend_page t ~vaddr ~r ~w ~x ~contents =
  let flag b = if b then "1" else "0" in
  Crypto.Sha3.absorb t
    ("enclave-page" ^ int vaddr ^ flag r ^ flag w ^ flag x ^ contents)

let extend_shared t ~vaddr ~len =
  Crypto.Sha3.absorb t ("enclave-shared" ^ int vaddr ^ int len)

let extend_thread t ~entry_pc ~entry_sp =
  Crypto.Sha3.absorb t ("enclave-thread" ^ u64 entry_pc ^ u64 entry_sp)

let finalize t = Crypto.Sha3.finalize t ~len:size
