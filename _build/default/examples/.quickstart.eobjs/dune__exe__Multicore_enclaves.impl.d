examples/multicore_enclaves.ml: Int64 List Os Printf Result Sanctorum Sanctorum_attack Sanctorum_hw Sanctorum_os Testbed
