examples/cache_sidechannel.mli:
