examples/cache_sidechannel.ml: Printf Sanctorum_attack Sanctorum_os Testbed
