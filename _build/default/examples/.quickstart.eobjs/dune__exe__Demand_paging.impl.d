examples/demand_paging.ml: List Os Printf Result Sanctorum Sanctorum_attack Sanctorum_hw Sanctorum_os String Testbed
