examples/quickstart.mli:
