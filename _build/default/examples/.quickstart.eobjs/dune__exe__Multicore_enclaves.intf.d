examples/multicore_enclaves.mli:
