examples/quickstart.ml: List Os Printf Result Sanctorum Sanctorum_attack Sanctorum_hw Sanctorum_os Sanctorum_platform Sanctorum_util String Testbed
