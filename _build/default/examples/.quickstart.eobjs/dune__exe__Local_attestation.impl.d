examples/local_attestation.ml: Os Printf Result Sanctorum Sanctorum_hw Sanctorum_os Sanctorum_util String Testbed
