examples/local_attestation.mli:
