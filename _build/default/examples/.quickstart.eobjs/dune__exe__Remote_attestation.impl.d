examples/remote_attestation.ml: Bytes Char Int32 List Os Printf Result Sanctorum Sanctorum_crypto Sanctorum_hw Sanctorum_os Sanctorum_util String Testbed
