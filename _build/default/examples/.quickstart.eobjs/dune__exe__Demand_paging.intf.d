examples/demand_paging.mli:
