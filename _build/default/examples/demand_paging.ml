(* The controlled-channel experiment (§II-c) plus the enclave-side fault
   handler that makes enclave self-paging possible (§V-A).

     dune exec examples/demand_paging.exe
*)
module Hw = Sanctorum_hw
module S = Sanctorum.Sm
module Atk = Sanctorum_attack
open Sanctorum_os

let secret = [ 2; 7; 1; 8; 2; 8 ]

let () =
  (* Part 1: a normal process under a malicious OS's demand paging —
     the OS reads the page-access sequence (the "secret") straight out
     of the fault addresses. *)
  let tb = Testbed.create () in
  let o = Atk.Controlled_channel.baseline tb ~secret ~core:0 in
  Printf.printf "ordinary process, OS-managed paging:\n";
  Printf.printf "  secret page sequence : [%s]\n"
    (String.concat "; " (List.map string_of_int secret));
  Printf.printf "  OS observed          : [%s]  (recovered: %b)\n\n"
    (String.concat "; " (List.map string_of_int o.Atk.Controlled_channel.observed_pages))
    o.Atk.Controlled_channel.recovered;

  (* Part 2: the same access pattern inside an enclave. The enclave's
     page tables are private; the OS sees no faults at all. *)
  let tb2 = Testbed.create () in
  (match Atk.Controlled_channel.enclave tb2 ~secret ~core:0 with
  | Error m -> Printf.printf "enclave run failed: %s\n" m
  | Ok o2 ->
      Printf.printf "same pattern inside a Sanctorum enclave:\n";
      Printf.printf "  OS observed          : [%s]  (recovered: %b)\n\n"
        (String.concat "; "
           (List.map string_of_int o2.Atk.Controlled_channel.observed_pages))
        o2.Atk.Controlled_channel.recovered);

  (* Part 3: enclaves can still page themselves — a fault inside
     evrange is delivered to the enclave's own registered handler, not
     to the OS. The handler below records the faulting address in the
     enclave's data page and exits. *)
  let tb3 = Testbed.create () in
  let evbase = 0x10000 in
  let open Hw.Isa in
  let entry =
    li a0 (evbase + 0x40)
    @ [ Op_imm (Add, a7, zero, S.Ecall.set_fault_handler); Ecall ]
    @ li t0 0x18000
    @ [ Load (Ld, t1, t0, 0); j 0 ]
  in
  let entry_padded = entry @ List.init (16 - List.length entry) (fun _ -> nop) in
  let handler =
    li t2 (evbase + 4096)
    @ [ Store (Sd, a0, t2, 0);
        Op_imm (Add, a7, zero, S.Ecall.exit_enclave); Ecall ]
  in
  let image = Sanctorum.Image.of_program ~evbase (entry_padded @ handler) in
  let inst = Result.get_ok (Os.install_enclave tb3.Testbed.os image) in
  Os.clear_delegated_events tb3.Testbed.os;
  (match
     Os.run_enclave tb3.Testbed.os ~eid:inst.Os.eid ~tid:(List.hd inst.Os.tids)
       ~core:0 ~fuel:1000 ()
   with
  | Ok Os.Exited ->
      let paddrs = Atk.Malicious_os.enclave_paddrs tb3.Testbed.os ~eid:inst.Os.eid in
      let data =
        List.nth paddrs (List.length (Sanctorum.Image.required_page_tables image) + 1)
      in
      let fault_va = Hw.Phys_mem.read_u64 (Hw.Machine.mem tb3.Testbed.machine) data in
      Printf.printf "enclave self-paging:\n";
      Printf.printf "  enclave touched unmapped 0x18000; its OWN handler ran\n";
      Printf.printf "  handler recorded faulting address 0x%Lx and exited\n" fault_va;
      Printf.printf "  OS-visible page faults during the run: %d\n"
        (List.length
           (List.filter
              (function
                | Hw.Trap.Exception (Hw.Trap.Page_fault _) -> true
                | _ -> false)
              (Os.delegated_events tb3.Testbed.os)))
  | Ok _ -> Printf.printf "unexpected outcome\n"
  | Error e -> Printf.printf "run failed: %s\n" (Sanctorum.Api_error.to_string e))
