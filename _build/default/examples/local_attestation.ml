(* Fig. 6 walkthrough: enclave E2 attests enclave E1 with no
   cryptography at all — the monitor's authenticated mailboxes carry the
   sender's measurement, and mutual trust in the monitor does the rest.

     dune exec examples/local_attestation.exe
*)
module Hw = Sanctorum_hw
module S = Sanctorum.Sm
open Sanctorum_os

let () =
  let tb = Testbed.create () in
  let sm = tb.Testbed.sm in
  let exit_prog =
    Hw.Isa.[ Op_imm (Add, a7, zero, S.Ecall.exit_enclave); Ecall ]
  in
  let e1_img = Sanctorum.Image.of_program ~evbase:0x10000 exit_prog in
  let e2_img = Sanctorum.Image.of_program ~evbase:0x40000 exit_prog in
  let e1 = (Result.get_ok (Os.install_enclave tb.Testbed.os e1_img)).Os.eid in
  let e2 = (Result.get_ok (Os.install_enclave tb.Testbed.os e2_img)).Os.eid in
  Printf.printf "E1 = 0x%x, E2 = 0x%x\n" e1 e2;

  (* E2 knows (out of band) what E1 is supposed to be: *)
  let expected = Sanctorum.Image.measurement e1_img in
  Printf.printf "expected measurement of E1: %s…\n"
    (Sanctorum_util.Hex.encode (String.sub expected 0 8));

  (* ① E2 signals intent to receive from E1 *)
  (match S.accept_mail sm ~caller:(S.Enclave_caller e2)
           ~sender:(Sanctorum.Mailbox.From_enclave e1) with
  | Ok () -> Printf.printf "1. E2: accept_mail(E1)\n"
  | Error e -> failwith (Sanctorum.Api_error.to_string e));

  (* ② E1 sends a message; the monitor records E1's measurement *)
  (match S.send_mail sm ~caller:(S.Enclave_caller e1) ~recipient:e2
           ~msg:"hello from E1" with
  | Ok () -> Printf.printf "2. E1: send_mail(E2, msg)\n"
  | Error e -> failwith (Sanctorum.Api_error.to_string e));

  (* ③ E2 fetches the message and the monitor-recorded sender tag *)
  let msg, tag =
    match S.get_mail sm ~caller:(S.Enclave_caller e2)
            ~sender:(Sanctorum.Mailbox.From_enclave e1) with
    | Ok r -> r
    | Error e -> failwith (Sanctorum.Api_error.to_string e)
  in
  Printf.printf "3. E2: get_mail -> %S, sender tag %s…\n"
    (String.sub msg 0 13)
    (Sanctorum_util.Hex.encode (String.sub tag 0 8));

  (* ④ E2 compares the tag against its expectation *)
  Printf.printf "4. E2: tag = expected? %b  ->  E1 is authentic\n"
    (Sanctorum_util.Bytesx.constant_time_equal tag expected);

  (* The same protocol rejects an impostor: the OS cannot fill E2's
     mailbox pretending to be E1 ... *)
  (match S.accept_mail sm ~caller:(S.Enclave_caller e2)
           ~sender:(Sanctorum.Mailbox.From_enclave e1) with
  | Ok () -> () | Error e -> failwith (Sanctorum.Api_error.to_string e));
  (match S.send_mail sm ~caller:S.Os ~recipient:e2 ~msg:"i am E1, honest" with
  | Error _ -> Printf.printf "(impostor OS send: rejected by the monitor)\n"
  | Ok () -> Printf.printf "(impostor OS send: ACCEPTED - bug!)\n");

  (* ... and a different enclave's mail carries a different tag. *)
  let e3_img = Sanctorum.Image.of_program ~evbase:0x80000 (Hw.Isa.nop :: exit_prog) in
  let e3 = (Result.get_ok (Os.install_enclave tb.Testbed.os e3_img)).Os.eid in
  (match S.accept_mail sm ~caller:(S.Enclave_caller e2)
           ~sender:(Sanctorum.Mailbox.From_enclave e3) with
  | Ok () -> () | Error e -> failwith (Sanctorum.Api_error.to_string e));
  (match S.send_mail sm ~caller:(S.Enclave_caller e3) ~recipient:e2 ~msg:"me too" with
  | Ok () -> () | Error e -> failwith (Sanctorum.Api_error.to_string e));
  let _, tag3 =
    Result.get_ok
      (S.get_mail sm ~caller:(S.Enclave_caller e2)
         ~sender:(Sanctorum.Mailbox.From_enclave e3))
  in
  Printf.printf "(E3's tag equals E1's expectation? %b - so E2 spots the difference)\n"
    (Sanctorum_util.Bytesx.constant_time_equal tag3 expected)
