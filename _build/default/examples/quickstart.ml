(* Quickstart: boot a monitored machine, build an enclave that computes
   42 in real (simulated) RISC-V, run it, and check its measurement.

     dune exec examples/quickstart.exe
*)
module Hw = Sanctorum_hw
open Sanctorum_os

let () =
  (* 1. Bring up the stack: machine + Sanctum platform + secure boot +
     security monitor + untrusted OS. *)
  let tb = Testbed.create () in
  Printf.printf "booted: %s platform, %d cores, monitor measurement %s…\n"
    tb.Testbed.platform.Sanctorum_platform.Platform.name
    (Hw.Machine.core_count tb.Testbed.machine)
    (Sanctorum_util.Hex.encode
       (String.sub (Sanctorum.Sm.get_field tb.Testbed.sm Sanctorum.Sm.Field_sm_measurement) 0 8));

  (* 2. Write an enclave program: a0 = 6 * 7, store it to the enclave's
     data page, and exit through the monitor. *)
  let evbase = 0x10000 in
  let open Hw.Isa in
  let program =
    li t0 6 @ li t1 7
    @ [ Mul (a0, t0, t1) ]
    @ li t2 (evbase + 4096)
    @ [ Store (Sd, a0, t2, 0) ]
    @ [ Op_imm (Add, a7, zero, Sanctorum.Sm.Ecall.exit_enclave); Ecall ]
  in
  let image = Sanctorum.Image.of_program ~evbase program in

  (* 3. The OS loads it through the monitor's API (create, grant memory,
     page tables, measured pages, thread, init). *)
  match Os.install_enclave tb.Testbed.os image with
  | Error e ->
      Printf.printf "install failed: %s\n" (Sanctorum.Api_error.to_string e)
  | Ok inst ->
      let eid = inst.Os.eid and tid = List.hd inst.Os.tids in
      Printf.printf "enclave installed: eid=0x%x\n" eid;

      (* 4. Its measurement is exactly what anyone can precompute from
         the image — the foundation of attestation. *)
      let m = Result.get_ok (Sanctorum.Sm.enclave_measurement tb.Testbed.sm ~eid) in
      Printf.printf "measurement: %s\n" (Sanctorum_util.Hex.encode m);
      Printf.printf "matches offline Image.measurement: %b\n"
        (m = Sanctorum.Image.measurement image);

      (* 5. Run it. *)
      (match Os.run_enclave tb.Testbed.os ~eid ~tid ~core:0 ~fuel:1000 () with
      | Ok Os.Exited -> Printf.printf "enclave ran and exited cleanly\n"
      | Ok _ -> Printf.printf "unexpected outcome\n"
      | Error e -> Printf.printf "run failed: %s\n" (Sanctorum.Api_error.to_string e));

      (* 6. The OS cannot read the answer out of enclave memory — the
         hardware refuses — but the monitor (for this demo) can. *)
      let paddrs = Sanctorum_attack.Malicious_os.enclave_paddrs tb.Testbed.os ~eid in
      let data = List.nth paddrs (List.length (Sanctorum.Image.required_page_tables image) + 1) in
      (match Sanctorum_attack.Malicious_os.os_load tb.Testbed.os ~core:1 ~paddr:data with
      | Sanctorum_attack.Malicious_os.Denied ->
          Printf.printf "OS probe of the result: denied by hardware (as it must be)\n"
      | Sanctorum_attack.Malicious_os.Leaked v ->
          Printf.printf "OS probe LEAKED 0x%Lx - isolation broken!\n" v);
      Printf.printf "monitor's view of the result: %Ld\n"
        (Hw.Phys_mem.read_u64 (Hw.Machine.mem tb.Testbed.machine) data)
