(* Multicore scheduling: three enclaves time-sliced by the OS across
   the machine's cores, with AEX on every preemption and a malicious
   neighbour probing memory the whole time.

     dune exec examples/multicore_enclaves.exe
*)
module Hw = Sanctorum_hw
module S = Sanctorum.Sm
open Sanctorum_os

(* Each worker counts up to [target] in a register, persisting progress
   in its data page so work survives AEX (the enclave reloads the
   counter on entry; a0 = 1 signals an AEX resume). *)
let worker_image ~evbase ~target =
  let open Hw.Isa in
  let counter = evbase + 4096 in
  let body =
    (* t0 = &counter; t1 = *t0 *)
    li t0 counter
    @ [ Load (Ld, t1, t0, 0) ]
    @ li t2 target
    @ [
        (* loop: if t1 >= t2 goto done; t1++; store; goto loop *)
        Branch (Bge, t1, t2, 16);
        Op_imm (Add, t1, t1, 1);
        Store (Sd, t1, t0, 0);
        Jal (zero, -12);
        Op_imm (Add, a7, zero, S.Ecall.exit_enclave);
        Ecall;
      ]
  in
  Sanctorum.Image.of_program ~evbase body

let () =
  let tb = Testbed.create ~cores:4 () in
  let os = tb.Testbed.os in
  let workers =
    List.map
      (fun (evbase, target) ->
        let inst =
          Result.get_ok (Os.install_enclave os (worker_image ~evbase ~target))
        in
        (inst.Os.eid, List.hd inst.Os.tids, target, ref false))
      [ (0x10000, 400); (0x40000, 700); (0x80000, 1000) ]
  in
  Printf.printf "3 worker enclaves installed; scheduling with a 300-cycle quantum\n";
  let round = ref 0 in
  let all_done () = List.for_all (fun (_, _, _, d) -> !d) workers in
  while (not (all_done ())) && !round < 100 do
    incr round;
    List.iteri
      (fun i (eid, tid, _, done_flag) ->
        if not !done_flag then begin
          let core = i mod 3 in
          match
            Os.run_enclave os ~eid ~tid ~core ~fuel:100000 ~quantum:300 ()
          with
          | Ok Os.Exited -> done_flag := true
          | Ok Os.Preempted -> () (* AEX; rescheduled next round *)
          | Ok _ | Error _ -> done_flag := true
        end)
      workers
  done;
  Printf.printf "all workers finished after %d scheduling rounds\n" !round;
  (* verify each worker's counter through the monitor's view *)
  List.iter
    (fun (eid, _, target, _) ->
      let paddrs = Sanctorum_attack.Malicious_os.enclave_paddrs os ~eid in
      let data = List.nth paddrs 4 in
      let v = Hw.Phys_mem.read_u64 (Hw.Machine.mem tb.Testbed.machine) data in
      Printf.printf "  enclave 0x%x: counted %Ld (target %d) %s\n" eid v target
        (if v = Int64.of_int target then "ok" else "WRONG"))
    workers;
  (* the whole time, core 3 was free for the OS to be evil on *)
  let victim_eid = match workers with (e, _, _, _) :: _ -> e | [] -> 0 in
  let paddr =
    List.hd (Sanctorum_attack.Malicious_os.enclave_paddrs os ~eid:victim_eid)
  in
  match Sanctorum_attack.Malicious_os.os_load os ~core:3 ~paddr with
  | Sanctorum_attack.Malicious_os.Denied ->
      Printf.printf "concurrent OS probe from core 3: denied\n"
  | Sanctorum_attack.Malicious_os.Leaked _ ->
      Printf.printf "concurrent OS probe from core 3: LEAKED - bug!\n"
