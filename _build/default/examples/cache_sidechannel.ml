(* Experiment S1 as a demo: an OS-level prime+probe attacker against a
   victim enclave whose secret selects which cache line it touches.

   On Keystone (shared LLC, per its threat model) the attacker reads
   the secret from its probe timings; on Sanctum (LLC partitioned by
   DRAM-region page coloring) the same attacker sees a flat profile.

     dune exec examples/cache_sidechannel.exe
*)
module Atk = Sanctorum_attack
open Sanctorum_os

let run_backend backend =
  Printf.printf "--- %s ---\n" (Testbed.backend_name backend);
  let recovered = ref 0 in
  let total = 8 in
  for secret = 0 to total - 1 do
    let tb = Testbed.create ~backend ~l2:Atk.Cache_probe.recommended_l2 () in
    match Atk.Cache_probe.run tb ~secret () with
    | Error m -> Printf.printf "  secret %d: error %s\n" secret m
    | Ok o ->
        if o.Atk.Cache_probe.leaked then incr recovered;
        Printf.printf "  secret %d -> guess %d (spread %3d cycles) %s\n" secret
          o.Atk.Cache_probe.guess o.Atk.Cache_probe.spread
          (if o.Atk.Cache_probe.leaked then "LEAKED" else "no signal")
  done;
  Printf.printf "  => attacker recovered %d / %d secrets\n\n" !recovered total

let () =
  Printf.printf
    "prime+probe: attacker primes the LLC sets a victim load could map to,\n\
     schedules the victim enclave, probes with rdcycle timings.\n\n";
  run_backend Testbed.Keystone_backend;
  run_backend Testbed.Sanctum_backend;
  Printf.printf
    "Sanctum's cache partitioning (paper SVII-A) removes the channel that\n\
     Keystone's threat model (SVII-B) deliberately leaves out of scope.\n"
