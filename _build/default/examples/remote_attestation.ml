(* Fig. 7 walkthrough: a remote verifier attests enclave E1 through the
   signing enclave E_S and the manufacturer PKI, step by step.

     dune exec examples/remote_attestation.exe
*)
module Hw = Sanctorum_hw
module C = Sanctorum_crypto
module S = Sanctorum.Sm
module A = Sanctorum.Attestation
open Sanctorum_os

let hex8 s = Sanctorum_util.Hex.encode (String.sub s 0 8)

let () =
  let tb = Testbed.create () in
  let sm = tb.Testbed.sm in
  let rng = tb.Testbed.rng in

  (* The trusted signing enclave: its measurement is hard-coded in the
     monitor, which is what gates the monitor's attestation key. *)
  let es = (Result.get_ok (Testbed.install_signing_enclave tb)).Os.eid in
  Printf.printf "signing enclave E_S installed, measurement %s… (= monitor constant: %b)\n"
    (hex8 A.signing_expected_measurement)
    (S.get_field sm S.Field_signing_measurement = A.signing_expected_measurement);

  (* The enclave to be attested. *)
  let target_img =
    Sanctorum.Image.of_program ~evbase:0x30000
      Hw.Isa.[ Op_imm (Add, a7, zero, S.Ecall.exit_enclave); Ecall ]
  in
  let e1 = (Result.get_ok (Os.install_enclave tb.Testbed.os target_img)).Os.eid in
  Printf.printf "target enclave E1 installed: eid=0x%x\n\n" e1;

  (* ① Key agreement between the remote verifier and E1 over the
     untrusted network. *)
  let v_secret, v_public = C.Dh.generate rng in
  let e_secret, e_public = C.Dh.generate rng in
  let binding =
    C.Sha3.sha3_256 (C.Dh.public_to_bytes e_public ^ C.Dh.public_to_bytes v_public)
  in
  Printf.printf "1. DH key agreement; channel binding %s…\n" (hex8 binding);

  (* ② The verifier sends a nonce. *)
  let nonce = C.Drbg.random_bytes rng 32 in
  Printf.printf "2. verifier nonce %s…\n" (hex8 nonce);

  (* ③–⑥ E1 asks E_S for a signature over (nonce, binding, E1's
     measurement); the monitor's mailboxes authenticate both sides and
     get_key releases the monitor key only to E_S. *)
  let evidence =
    match A.request_attestation sm ~eid:e1 ~es_eid:es ~nonce ~channel_binding:binding with
    | Ok ev -> ev
    | Error e -> failwith (Sanctorum.Api_error.to_string e)
  in
  Printf.printf "3-6. E1 <-> E_S mailbox round trip; signature %s…\n"
    (hex8 evidence.A.signature);

  (* ⑦ E1 attaches the monitor's certificate chain. *)
  Printf.printf "7. certificate chain: %d bytes (manufacturer -> device -> monitor)\n"
    (String.length evidence.A.certificates);

  (* ⑧–⑨ The verifier checks everything against the manufacturer root. *)
  let root = (S.identity sm).Sanctorum.Boot.root_public in
  (match
     A.verify_evidence ~root ~expected_measurement:(Sanctorum.Image.measurement target_img)
       ~nonce ~channel_binding:binding evidence
   with
  | Ok () -> Printf.printf "8-9. verifier: evidence VERIFIED\n"
  | Error m -> Printf.printf "8-9. verifier: REJECTED (%s)\n" m);

  (* ⑩ Both ends now trust the session key the attestation bound. *)
  let k_v = C.Dh.shared_key v_secret e_public in
  let k_e = C.Dh.shared_key e_secret v_public in
  Printf.printf "10. session keys agree: %b (%s…)\n\n" (k_v = k_e) (hex8 k_v);

  (* Negative cases the verifier must catch: *)
  let reject label ev nonce' =
    match
      A.verify_evidence ~root
        ~expected_measurement:(Sanctorum.Image.measurement target_img)
        ~nonce:nonce' ~channel_binding:binding ev
    with
    | Ok () -> Printf.printf "  %s: ACCEPTED (bug!)\n" label
    | Error m -> Printf.printf "  %s: rejected (%s)\n" label m
  in
  Printf.printf "tamper checks:\n";
  reject "replayed nonce" evidence (C.Drbg.random_bytes rng 32);
  reject "flipped signature bit"
    { evidence with A.signature =
        String.mapi (fun i c -> if i = 0 then Char.chr (Char.code c lxor 1) else c)
          evidence.A.signature }
    nonce;
  (* and a fake monitor (different device) cannot produce a chain that
     verifies under the genuine manufacturer root *)
  let rogue_root = Sanctorum.Boot.manufacturer_root ~seed:"rogue" in
  let rogue =
    Sanctorum.Boot.perform ~root:rogue_root ~device_secret:"rogue-device"
      ~sm_binary:"rogue monitor"
  in
  let rogue_blob =
    String.concat ""
      (List.map
         (fun c ->
           let s = C.Cert.serialize c in
           let b = Bytes.create 4 in
           Bytes.set_int32_le b 0 (Int32.of_int (String.length s));
           Bytes.unsafe_to_string b ^ s)
         rogue.Sanctorum.Boot.certificates)
  in
  reject "rogue device's certificate chain"
    { evidence with A.certificates = rogue_blob }
    nonce
