type t =
  | Illegal_argument of string
  | Unauthorized
  | Concurrent_call
  | Invalid_state of string
  | Out_of_resources of string
  | Internal_fault of string

type 'a result = ('a, t) Stdlib.result

let equal a b =
  match (a, b) with
  | Illegal_argument _, Illegal_argument _ -> true
  | Unauthorized, Unauthorized -> true
  | Concurrent_call, Concurrent_call -> true
  | Invalid_state _, Invalid_state _ -> true
  | Out_of_resources _, Out_of_resources _ -> true
  | Internal_fault _, Internal_fault _ -> true
  | ( (Illegal_argument _ | Unauthorized | Concurrent_call | Invalid_state _
      | Out_of_resources _ | Internal_fault _),
      _ ) ->
      false

let pp ppf = function
  | Illegal_argument m -> Format.fprintf ppf "illegal argument: %s" m
  | Unauthorized -> Format.pp_print_string ppf "unauthorized"
  | Concurrent_call -> Format.pp_print_string ppf "concurrent call"
  | Invalid_state m -> Format.fprintf ppf "invalid state: %s" m
  | Out_of_resources m -> Format.fprintf ppf "out of resources: %s" m
  | Internal_fault m -> Format.fprintf ppf "internal fault: %s" m

let to_string e = Format.asprintf "%a" pp e
