module Hw = Sanctorum_hw
module Crypto = Sanctorum_crypto

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* The signing enclave: a canonical one-page image whose measurement is
   the constant the monitor trusts. Its behaviour is modeled natively;
   the image (an idle loop) pins down its identity. *)

let signing_image =
  Image.of_program ~evbase:0x10000 ~data_pages:1 [ Hw.Isa.j 0 ]

let signing_expected_measurement = Image.measurement signing_image

(* ------------------------------------------------------------------ *)
(* Evidence *)

type evidence = {
  enclave_measurement : string;
  channel_binding : string;
  nonce : string;
  signature : string;
  certificates : string;
}

let attested_payload e =
  "sanctorum-attestation" ^ e.nonce ^ e.channel_binding ^ e.enclave_measurement

let request_message ~nonce ~channel_binding = nonce ^ channel_binding

(* Mailbox messages are fixed-size; requests are nonce (32) followed by
   channel binding (32), everything else zero. *)
let split_request msg =
  if String.length msg < 64 then None
  else Some (String.sub msg 0 32, String.sub msg 32 32)

let signing_enclave_serve sm ~es_eid ~requester =
  let caller = Sm.Enclave_caller es_eid in
  let* () = Sm.accept_mail sm ~caller ~sender:(Mailbox.From_enclave requester) in
  Ok ()

(* The serve call is split: accept first (so the requester can send),
   then the actual service round. [signing_enclave_respond] performs the
   read-sign-reply half. *)
let signing_enclave_respond sm ~es_eid ~requester =
  let caller = Sm.Enclave_caller es_eid in
  let* msg, requester_measurement =
    Sm.get_mail sm ~caller ~sender:(Mailbox.From_enclave requester)
  in
  match split_request msg with
  | None -> Error (Api_error.Illegal_argument "malformed attestation request")
  | Some (nonce, channel_binding) ->
      let* key = Sm.get_signing_key sm ~caller in
      let payload =
        attested_payload
          {
            enclave_measurement = requester_measurement;
            channel_binding;
            nonce;
            signature = "";
            certificates = "";
          }
      in
      let signature = Crypto.Schnorr.sign key payload in
      Sanctorum_telemetry.Sink.incr_counter (Sm.sink sm) "crypto.sign";
      Sm.send_mail sm ~caller ~recipient:requester ~msg:signature

let request_attestation sm ~eid ~es_eid ~nonce ~channel_binding =
  if String.length nonce <> 32 || String.length channel_binding <> 32 then
    Error (Api_error.Illegal_argument "nonce and binding must be 32 bytes")
  else begin
    let caller = Sm.Enclave_caller eid in
    (* Step 3 (Fig. 7): the enclave asks E_S to sign its measurement. *)
    let* () = Sm.accept_mail sm ~caller ~sender:(Mailbox.From_enclave es_eid) in
    let* () = signing_enclave_serve sm ~es_eid ~requester:eid in
    let* () =
      Sm.send_mail sm ~caller ~recipient:es_eid
        ~msg:(request_message ~nonce ~channel_binding)
    in
    (* Steps 4–5: E_S fetches the key and signs (scheduled by the OS;
       modeled as a direct call). *)
    let* () = signing_enclave_respond sm ~es_eid ~requester:eid in
    (* Step 6: collect the signature; authenticate the responder by the
       measurement tag the monitor recorded. *)
    let* sig_msg, responder_measurement =
      Sm.get_mail sm ~caller ~sender:(Mailbox.From_enclave es_eid)
    in
    if
      not
        (Sanctorum_util.Bytesx.constant_time_equal responder_measurement
           (Sm.get_field sm Sm.Field_signing_measurement))
    then Error Api_error.Unauthorized
    else begin
      let* own_measurement = Sm.enclave_measurement sm ~eid in
      let signature = String.sub sig_msg 0 Crypto.Schnorr.signature_size in
      Ok
        {
          enclave_measurement = own_measurement;
          channel_binding;
          nonce;
          signature;
          certificates = Sm.get_field sm Sm.Field_certificates;
        }
    end
  end

(* ------------------------------------------------------------------ *)
(* Verifier side *)

let parse_certificates blob =
  let rec go off acc =
    if off = String.length blob then Ok (List.rev acc)
    else if off + 4 > String.length blob then Error "truncated certificate chain"
    else begin
      let len = Int32.to_int (String.get_int32_le blob off) in
      if len < 0 || off + 4 + len > String.length blob then
        Error "truncated certificate"
      else begin
        match Crypto.Cert.deserialize (String.sub blob (off + 4) len) with
        | Error e -> Error e
        | Ok c -> go (off + 4 + len) (c :: acc)
      end
    end
  in
  go 0 []

let verify_evidence ~root ~expected_measurement ~nonce ~channel_binding e =
  if e.nonce <> nonce then Error "nonce mismatch"
  else if e.channel_binding <> channel_binding then Error "channel mismatch"
  else if
    not
      (Sanctorum_util.Bytesx.constant_time_equal e.enclave_measurement
         expected_measurement)
  then Error "enclave measurement mismatch"
  else begin
    let* certs = parse_certificates e.certificates in
    let* sm_key = Crypto.Cert.verify_chain ~root certs in
    if
      Crypto.Schnorr.verify sm_key ~msg:(attested_payload e)
        ~signature:e.signature
    then Ok ()
    else Error "attestation signature invalid"
  end

(* One attestation service sweep verifies many clients' evidence at
   once: the structural checks stay per item, but every Schnorr check —
   two certificate signatures and the evidence signature per item — is
   folded into a single random-linear-combination batch. A bad item is
   pinpointed by the batch fallback and reported individually. *)

type batch_request = {
  vr_root : Crypto.Schnorr.public_key;
  vr_expected_measurement : string;
  vr_nonce : string;
  vr_channel_binding : string;
  vr_evidence : evidence;
}

let verify_evidence_batch reqs =
  let reqs = Array.of_list reqs in
  let n = Array.length reqs in
  let results = Array.make n (Ok ()) in
  let claims = ref [] in
  (* per item: position of its first claim and its certificate count *)
  let spans = Array.make n None in
  let next = ref 0 in
  for i = 0 to n - 1 do
    let r = reqs.(i) in
    let e = r.vr_evidence in
    let structural =
      if e.nonce <> r.vr_nonce then Error "nonce mismatch"
      else if e.channel_binding <> r.vr_channel_binding then
        Error "channel mismatch"
      else if
        not
          (Sanctorum_util.Bytesx.constant_time_equal e.enclave_measurement
             r.vr_expected_measurement)
      then Error "enclave measurement mismatch"
      else begin
        let* certs = parse_certificates e.certificates in
        Crypto.Cert.signature_claims ~root:r.vr_root certs
      end
    in
    match structural with
    | Error msg -> results.(i) <- Error msg
    | Ok (cert_claims, sm_key) ->
        let all =
          cert_claims @ [ (sm_key, attested_payload e, e.signature) ]
        in
        spans.(i) <- Some (!next, List.length cert_claims);
        next := !next + List.length all;
        claims := List.rev_append all !claims
  done;
  if !next = 0 then results
  else begin
    let verdicts = Crypto.Schnorr.verify_batch (List.rev !claims) in
    Array.iteri
      (fun i span ->
        match span with
        | None -> () (* failed structurally; already reported *)
        | Some (first, ncerts) ->
            let verdict = ref (Ok ()) in
            for j = ncerts downto 0 do
              if not verdicts.(first + j) then
                verdict :=
                  Error
                    (if j < ncerts then "certificate chain signature invalid"
                     else "attestation signature invalid")
            done;
            results.(i) <- !verdict)
      spans;
    results
  end

(* ------------------------------------------------------------------ *)
(* End-to-end drivers *)

let local_attest sm ~verifier ~prover ~expected =
  let challenge = "local-attestation-challenge" in
  (* ① E2 readies a mailbox for E1; ② E1 sends; ③ E2 fetches;
     ④ E2 compares the monitor-recorded measurement. *)
  let* () =
    Sm.accept_mail sm ~caller:(Sm.Enclave_caller verifier)
      ~sender:(Mailbox.From_enclave prover)
  in
  let* () =
    Sm.send_mail sm ~caller:(Sm.Enclave_caller prover) ~recipient:verifier
      ~msg:challenge
  in
  let* msg, measurement =
    Sm.get_mail sm ~caller:(Sm.Enclave_caller verifier)
      ~sender:(Mailbox.From_enclave prover)
  in
  Ok
    (Sanctorum_util.Bytesx.constant_time_equal measurement expected
    && String.sub msg 0 (String.length challenge) = challenge)

type remote_session = {
  session_key_verifier : string;
  session_key_enclave : string;
  verdict : (unit, string) result;
}

let run_remote_attestation sm ~rng ~eid ~es_eid ~expected_measurement =
  (* ① key agreement over the untrusted network *)
  let v_secret, v_public = Crypto.Dh.generate rng in
  let e_secret, e_public = Crypto.Dh.generate rng in
  let channel_binding =
    Crypto.Sha3.sha3_256
      (Crypto.Dh.public_to_bytes e_public ^ Crypto.Dh.public_to_bytes v_public)
  in
  (* ② the verifier's nonce *)
  let nonce = Crypto.Drbg.random_bytes rng 32 in
  (* ③–⑦ the enclave obtains its signed attestation *)
  let root = (Sm.identity sm).Boot.root_public in
  match request_attestation sm ~eid ~es_eid ~nonce ~channel_binding with
  | Error e ->
      {
        session_key_verifier = "";
        session_key_enclave = "";
        verdict = Error (Api_error.to_string e);
      }
  | Ok evidence ->
      (* ⑧–⑨ the verifier checks the evidence; ⑩ both sides hold the
         session key the attestation just authenticated. *)
      let verdict =
        verify_evidence ~root ~expected_measurement ~nonce ~channel_binding
          evidence
      in
      {
        session_key_verifier = Crypto.Dh.shared_key v_secret e_public;
        session_key_enclave = Crypto.Dh.shared_key e_secret v_public;
        verdict;
      }
