(** Enclave measurement (paper §VI-A): a SHA3-256 hash extended by every
    monitor operation that shapes the enclave's initial state, finalized
    at [init_enclave].

    Two enclaves loaded with identical configuration, virtual layout and
    contents measure equal — physical placement is deliberately {e not}
    covered. The monitor separately enforces the invariants that make
    the measurement descriptive (ascending physical loads, injective
    virtual-to-physical mapping, page tables before data).

    The context records the extension transcript and hashes it at
    {!finalize}; with a {!Cache} attached, a transcript measured before
    returns its digest without re-running SHA3 over enclave memory
    (measure once, bind many — the churn/fleet install fast path). *)

type t

(** A digest cache keyed by the {e exact} transcript bytes (structural
    string equality), so a hit can never alias two different images and
    a one-byte image change is, by construction, a different key. *)
module Cache : sig
  type cache

  val create : ?capacity:int -> unit -> cache
  (** The cache flushes wholesale when [capacity] (default 512) distinct
      transcripts are held. *)

  val hits : cache -> int
  val misses : cache -> int
  val entries : cache -> int
end

val start : unit -> t

val extend_create : t -> evbase:int -> evsize:int -> mailbox_count:int -> unit
val extend_page_table : t -> vaddr:int -> level:int -> unit

val extend_page :
  t -> vaddr:int -> r:bool -> w:bool -> x:bool -> contents:string -> unit

val extend_shared : t -> vaddr:int -> len:int -> unit
(** Shared-buffer windows are measured by geometry only — their contents
    belong to the untrusted OS. *)

val extend_thread : t -> entry_pc:int64 -> entry_sp:int64 -> unit

val finalize : ?cache:Cache.cache -> t -> string
(** The 32-byte enclave measurement. The context cannot be extended
    afterwards. The digest is identical with and without a cache. *)

val size : int
