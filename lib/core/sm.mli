(** The Sanctorum security monitor (paper §V).

    One [t] is the trusted software of one machine. It owns the bottom
    of physical memory, interposes on every trap (Fig. 1), verifies the
    untrusted OS's resource-management decisions against the security
    state machine (Figs. 2–5), measures enclaves (§VI-A), and brokers
    attestation (§VI-B/C).

    The monitor is {e not} a kernel: every function here only checks and
    executes a decision made by system software; it never chooses which
    resource to hand to whom.

    Modeling note (see DESIGN.md): the paper's monitor is bare-metal
    M-mode C. Here the monitor runs natively and manipulates the
    simulated machine, installed as the machine's M-mode trap handler;
    callers are authenticated by the protection domain executing on the
    calling core for the ecall path, and by the [caller] argument for
    the native path (the harness stands in for scheduled software). *)

type t

type caller = Os | Enclave_caller of int  (** eid *)

type resource_target = To_os | To_enclave of int

type field =
  | Field_public_key  (** the monitor's attestation public key *)
  | Field_certificates  (** serialized certificate chain, root first *)
  | Field_sm_measurement
  | Field_signing_measurement  (** expected measurement of the signing enclave *)

(** {2 Boot} *)

val binary_image : string
(** The canonical monitor binary this model stands in for; measured by
    secure boot. *)

val boot :
  platform:Sanctorum_platform.Platform.t ->
  identity:Boot.identity ->
  signing_enclave_measurement:string ->
  t
(** Install the monitor on a platform: claims the monitor's memory,
    builds resource metadata, hooks the machine's trap funnel. *)

val platform : t -> Sanctorum_platform.Platform.t
val machine : t -> Sanctorum_hw.Machine.t
val identity : t -> Boot.identity

val set_os_trap_handler :
  t -> (Sanctorum_hw.Machine.core -> Sanctorum_hw.Trap.cause -> unit) -> unit
(** Where the monitor delegates events that belong to the OS (Fig. 1);
    always called {e after} any required AEX has cleaned the core. *)

(** {2 Telemetry} *)

val set_sink : t -> Sanctorum_telemetry.Sink.t -> unit
(** Attach a telemetry sink to the monitor {e and} its machine. Every
    API entry point then emits one [Sm_api] event per call — accepted
    or rejected with the rendered error — plus per-API call/reject
    counters ([sm.api.*]) and an [sm.api.latency] histogram; enclave
    lifecycle transitions, region grants/frees and mailbox traffic
    become events of their own. The default sink is
    {!Sanctorum_telemetry.Sink.null}, under which every
    instrumentation site is a single boolean test. *)

val sink : t -> Sanctorum_telemetry.Sink.t

val set_post_api_hook : t -> (api:string -> unit) option -> unit
(** Install (or clear) a callback invoked after {e every} public API
    call returns, whether the sink is enabled or not. Used by
    [Sanctorum_analysis] to run the invariant checker after each call
    ([--check-invariants]). The hook must only use the read-only
    introspection accessors below — calling API entry points from the
    hook would recurse. *)

val mailbox_stats : t -> eid:int -> (int * int * int) Api_error.result
(** [(deposited, retrieved, rejected)] for the enclave's mailbox set. *)

(** {2 Generic resources (Fig. 2)} *)

val memory_units : t -> int
val memory_unit_bytes : t -> int

val block_resource :
  t -> caller:caller -> Resource.kind -> rid:int -> unit Api_error.result

val clean_resource :
  t -> caller:caller -> Resource.kind -> rid:int -> unit Api_error.result

val grant_resource :
  t ->
  caller:caller ->
  Resource.kind ->
  rid:int ->
  to_:resource_target ->
  unit Api_error.result

val accept_resource :
  t -> caller:caller -> Resource.kind -> rid:int -> unit Api_error.result

val resource_state :
  t -> Resource.kind -> rid:int -> Resource.state Api_error.result

(** {2 Enclave lifecycle (Fig. 3)} *)

val metadata_base : t -> int
(** First physical address usable for enclave/thread metadata. The OS
    picks concrete addresses inside the metadata area; the monitor
    enforces safety (§V-B). *)

val metadata_limit : t -> int
val enclave_slot_bytes : int
val thread_slot_bytes : int

val create_enclave :
  t ->
  caller:caller ->
  eid:int ->
  evbase:int ->
  evsize:int ->
  ?mailbox_slots:int ->
  unit ->
  unit Api_error.result

val allocate_page_table :
  t -> caller:caller -> eid:int -> vaddr:int -> level:int -> unit Api_error.result
(** Reserve the next physical page of the enclave for the page-table
    node covering [vaddr] at [level] (2 = root). Tables must precede
    data (§VI-A). *)

val load_page :
  t ->
  caller:caller ->
  eid:int ->
  vaddr:int ->
  src_paddr:int ->
  r:bool ->
  w:bool ->
  x:bool ->
  unit Api_error.result
(** Copy one page from untrusted memory into the enclave's next
    physical page and map it at [vaddr] (which must lie in evrange).
    Extends the measurement with the contents and virtual layout. *)

val map_shared :
  t ->
  caller:caller ->
  eid:int ->
  vaddr:int ->
  src_paddr:int ->
  len:int ->
  unit Api_error.result
(** Map a window of untrusted memory (outside evrange) into the
    enclave's address space for OS communication; measured by geometry
    only. *)

val load_thread :
  t ->
  caller:caller ->
  eid:int ->
  tid:int ->
  entry_pc:int64 ->
  entry_sp:int64 ->
  unit Api_error.result

val init_enclave : t -> caller:caller -> eid:int -> unit Api_error.result
(** Seal: finalize the measurement; threads become schedulable. *)

val delete_enclave : t -> caller:caller -> eid:int -> unit Api_error.result
(** Destroy the enclave and block all its resources; they must be
    cleaned before re-allocation. Fails while any thread runs. *)

val enclave_state : t -> eid:int -> [ `Loading | `Initialized ] Api_error.result
val enclave_measurement : t -> eid:int -> string Api_error.result
val enclave_domain : t -> eid:int -> Sanctorum_hw.Trap.domain Api_error.result
val enclaves : t -> int list

(** {2 Threads (Fig. 4)} *)

val assign_thread :
  t -> caller:caller -> eid:int -> tid:int -> unit Api_error.result
(** OS offers an available thread to an enclave. *)

(** [accept_thread] lets the accepting enclave re-point the recycled
    thread's entry state; omitted values keep the (cleaned) defaults of
    zero. *)
val accept_thread :
  t ->
  caller:caller ->
  tid:int ->
  ?entry_pc:int64 ->
  ?entry_sp:int64 ->
  unit ->
  unit Api_error.result
val release_thread : t -> caller:caller -> tid:int -> unit Api_error.result
val unassign_thread : t -> caller:caller -> tid:int -> unit Api_error.result
val delete_thread : t -> caller:caller -> tid:int -> unit Api_error.result

val thread_state :
  t -> tid:int -> [ `Available | `Assigned of int | `Running of int * int ]
  Api_error.result
(** [`Running (eid, core)]. *)

val thread_has_aex_state : t -> tid:int -> bool Api_error.result

(** {2 Enclave execution} *)

val enter_enclave :
  t -> caller:caller -> eid:int -> tid:int -> core:int -> unit Api_error.result
(** Schedule the thread onto the core: switches protection domain,
    installs the enclave page table and entry state. The core then runs
    until [exit_enclave] or an AEX. a0 is 1 when an AEX state dump is
    pending, else 0. *)

val exit_enclave : t -> caller:caller -> core:int -> unit Api_error.result
(** Voluntary exit: cleans the core and returns it to the OS. *)

val set_fault_handler :
  t -> caller:caller -> handler:int64 -> unit Api_error.result
(** An initialized enclave registers a virtual address to receive its
    own faults (paging etc., §V-A). *)

val read_aex_state : t -> caller:caller -> tid:int -> string Api_error.result
(** The owning enclave reads (and clears) a pending AEX dump from the
    thread's metadata to resume the interrupted computation (§V-C).
    Layout: x1..x31 then the interrupted pc, 32 little-endian 64-bit
    words. *)

(** {2 Fault recovery} *)

val patrol_scrub : t -> int * int
(** Background ECC patrol: walk all of physical memory through the
    scrubber, correcting single-bit faults before a second hit in the
    same word makes them uncorrectable. An uncorrectable word found
    here is retired in place — its owning enclave is emergency-reclaimed
    and the word zeroed — {e without} quarantining a core: nothing was
    executing through the bad word, so unlike the machine-check trap
    path there is no poisoned architectural state. Returns
    [(corrected, retired)] word counts. Idempotent when memory is
    clean, and O(1) in that case. *)

(** {2 Mailboxes (Fig. 5)} *)

val accept_mail :
  t -> caller:caller -> sender:Mailbox.sender -> unit Api_error.result

val send_mail :
  t -> caller:caller -> recipient:int -> msg:string -> unit Api_error.result

val get_mail :
  t -> caller:caller -> sender:Mailbox.sender -> (string * string) Api_error.result
(** [(message, sender_measurement)]. *)

(** {2 Attestation support (§VI)} *)

val get_field : t -> field -> string

val get_signing_key :
  t -> caller:caller -> Sanctorum_crypto.Schnorr.secret_key Api_error.result
(** Released only to the enclave whose measurement equals the hard-coded
    signing-enclave measurement (§VI-C). *)

(** {2 Read-only introspection}

    Snapshot views of the monitor's internal metadata for external
    checkers ([Sanctorum_analysis]) and debugging tools. None of these
    take locks, emit telemetry, or mutate state. *)

type enclave_info = {
  i_eid : int;
  i_domain : Sanctorum_hw.Trap.domain;
  i_evbase : int;
  i_evsize : int;
  i_initialized : bool;
  i_has_measurement : bool;
  i_measuring : bool;  (** a measurement context is still open *)
  i_root_ppn : int option;
  i_free_pages : int list;
  i_threads : int list;
  i_mappings : (int * int) list;  (** (vpn, ppn), sorted *)
  i_locked : bool;
}

type thread_info = {
  i_tid : int;
  i_owner : int option;
  i_offered : int option;
  i_phase : [ `Available | `Assigned | `Running of int ];
  i_has_aex : bool;
  i_thread_locked : bool;
}

val enclave_info : t -> eid:int -> enclave_info option
val thread_ids : t -> int list
val thread_info : t -> tid:int -> thread_info option

val mailbox_snapshot : t -> eid:int -> (Mailbox.sender * bool) list option
(** The enclave's semantic mailbox state ({!Mailbox.snapshot}):
    accepted [(sender, full)] pairs in slot order, without the
    cumulative counters of {!mailbox_stats}. [None] if no such
    enclave. *)

val metadata_slots : t -> (int * int) list
(** Claimed metadata slots as sorted [(addr, len)] pairs; all must lie
    inside [[metadata_base, metadata_limit)] and never overlap. *)

val held_locks : t -> string list
(** Names of every fine-grained lock currently held (should be empty
    between API calls): ["resource"], ["enclave:0x<eid>"],
    ["thread:0x<tid>"]. *)

(** {2 Test and experiment hooks} *)

val try_lock_enclave : t -> eid:int -> bool
(** Grab an enclave's fine-grained metadata lock, as a concurrent API
    call would; lets tests exercise transaction aborts. *)

val unlock_enclave : t -> eid:int -> unit

val caller_measurement : t -> caller -> string option
(** The measurement the monitor would record for messages sent by this
    caller. *)

val corrupt_enclave_lifecycle : t -> eid:int -> unit
(** Fault injection (tests only): flip the enclave's lifecycle state
    without performing the transition's work, so the analysis layer's
    [enclave.lifecycle] invariant fires. *)

val corrupt_thread_phase : t -> tid:int -> core:int -> unit
(** Fault injection (tests only): mark a thread running on [core]
    without entering the enclave ([thread.lifecycle]). *)

val corrupt_metadata_slot : t -> unit
(** Fault injection (tests only): claim a metadata slot outside the
    monitor's metadata window ([meta.slots]). *)

val corrupt_resource_owner : t -> rid:int -> Sanctorum_hw.Trap.domain -> unit
(** Fault injection (tests only): rewrite a memory unit's Fig. 2 state
    to [Owned domain] without telling the hardware ([own.exclusive],
    [own.sm-reserved]). *)

(** {2 The ecall ABI (Fig. 1: API call via system exceptions)}

    Enclave code running on the machine invokes the monitor with
    [ecall]; a7 selects the call, a0..a2 carry arguments, and a0
    returns 0 on success or a positive {!Api_error.t} code. *)

module Ecall : sig
  val exit_enclave : int

  (** [accept_mail]: a0 = sender eid, 0 for the OS. *)
  val accept_mail : int

  (** [send_mail]: a0 = recipient eid, a1 = message vaddr. *)
  val send_mail : int

  (** [get_mail]: a0 = sender eid (0 = OS), a1 = out message vaddr,
      a2 = out measurement vaddr. *)
  val get_mail : int

  (** [block_resource]: a0 = kind (0 core, 1 memory), a1 = rid. *)
  val block_resource : int

  val accept_resource : int

  (** [accept_thread]: a0 = tid. *)
  val accept_thread : int

  val release_thread : int

  (** [set_fault_handler]: a0 = handler vaddr. *)
  val set_fault_handler : int

  (** [read_aex_state]: a0 = tid (0 = the calling thread), a1 = output
      buffer vaddr (256 bytes: x1..x31 then the interrupted pc). *)
  val read_aex_state : int

  val error_code : Api_error.t -> int64
end
