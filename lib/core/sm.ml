module Hw = Sanctorum_hw
module Pf = Sanctorum_platform
module Crypto = Sanctorum_crypto
module Tel = Sanctorum_telemetry

type caller = Os | Enclave_caller of int
type resource_target = To_os | To_enclave of int

type field =
  | Field_public_key
  | Field_certificates
  | Field_sm_measurement
  | Field_signing_measurement

type enclave_lifecycle = Loading | Initialized

type thread_phase = T_available | T_assigned | T_running of int (* core *)

type thread = {
  tid : int;
  mutable t_owner : int option; (* eid *)
  mutable t_offered : int option; (* eid pending accept *)
  mutable phase : thread_phase;
  mutable entry_pc : int64;
  mutable entry_sp : int64;
  mutable aex_state : int64 array option; (* 32 regs then pc *)
  mutable t_lock : bool;
}

type enclave = {
  eid : int;
  domain : Hw.Trap.domain;
  evbase : int;
  evsize : int;
  mutable lifecycle : enclave_lifecycle;
  mutable meas_ctx : Measurement.t option;
  mutable measurement : string option;
  mutable root_ppn : int option;
  mutable free_pages : int list; (* ascending ppns granted and not yet used *)
  mutable last_alloc_ppn : int;
  mutable data_loaded : bool;
  vmap : (int, int) Hashtbl.t; (* vpn -> ppn *)
  pmap : (int, int) Hashtbl.t; (* ppn -> vpn *)
  mailboxes : Mailbox.t;
  mutable threads : int list;
  mutable fault_handler : int64 option;
  mutable e_lock : bool;
}

type t = {
  pf : Pf.Platform.t;
  machine : Hw.Machine.t;
  identity : Boot.identity;
  signing_measurement : string;
  resources : Resource.t;
  unit_bytes : int;
  enclaves : (int, enclave) Hashtbl.t;
  threads : (int, thread) Hashtbl.t;
  slots : (int, int) Hashtbl.t; (* metadata addr -> length *)
  domain_of_enclave : (Hw.Trap.domain, int) Hashtbl.t; (* domain -> eid *)
  mutable next_domain : Hw.Trap.domain;
  mutable os_handler : Hw.Machine.core -> Hw.Trap.cause -> unit;
  mutable resource_lock : bool;
  mutable sink : Tel.Sink.t;
  mutable post_api_hook : (api:string -> unit) option;
  meas_cache : Measurement.Cache.cache;
      (* measure-once/bind-many: repeated installs of an identical image
         skip the SHA3 sweep at init_enclave *)
}

let binary_image =
  (* Stands in for the monitor's C binary; its hash is the SM
     measurement covered by attestations. *)
  String.concat "\n"
    [ "sanctorum security monitor"; "version 1.0"; "model: ocaml reproduction" ]

let enclave_slot_bytes = 2048
let thread_slot_bytes = 512
let sm_image_bytes = 64 * 1024
let page = Hw.Phys_mem.page_size

let ( let* ) = Result.bind
let ok = Ok ()
let err_arg m = Error (Api_error.Illegal_argument m)
let err_state m = Error (Api_error.Invalid_state m)

let platform t = t.pf
let machine t = t.machine
let identity t = t.identity
let metadata_base _ = sm_image_bytes
let metadata_limit _ = Pf.Platform.sm_memory_bytes
let memory_units t = Resource.count t.resources Resource.Memory_resource
let memory_unit_bytes t = t.unit_bytes
let set_os_trap_handler t f = t.os_handler <- f

(* ------------------------------------------------------------------ *)
(* Telemetry plumbing used below. API events carry cycle timestamps
   from the machine (host-context actions run natively, so [core] is -1
   unless a specific core is known). With the default null sink every
   instrumented point is one boolean test. *)

let caller_label = function
  | Os -> "os"
  | Enclave_caller eid -> Printf.sprintf "enclave:0x%x" eid

let sm_now t = Hw.Machine.now t.machine

let emit t ?(core = -1) payload =
  Tel.Sink.emit t.sink ~core ~cycles:(sm_now t) payload

(* ------------------------------------------------------------------ *)
(* Locking: every API call is a transaction under fine-grained locks;
   a held lock aborts the call with [Concurrent_call] (§V-A). Lock
   names as seen by the lock-discipline analyzer: ["resource"],
   ["enclave:0x<eid>"], ["thread:0x<tid>"]. *)

let resource_lock_name = "resource"
let enclave_lock_name eid = Printf.sprintf "enclave:0x%x" eid
let thread_lock_name tid = Printf.sprintf "thread:0x%x" tid

let emit_lock t name acquired =
  if Tel.Sink.enabled t.sink then
    emit t
      (if acquired then Tel.Event.Lock_acquired { lock = name }
       else Tel.Event.Lock_released { lock = name })

let note_write t ~lock ~field =
  if Tel.Sink.enabled t.sink then emit t (Tel.Event.Guarded_write { lock; field })

let with_flag t name get set f =
  if get () then Error Api_error.Concurrent_call
  else begin
    set true;
    emit_lock t name true;
    Fun.protect
      ~finally:(fun () ->
        set false;
        emit_lock t name false)
      f
  end

let with_enclave_lock t e f =
  with_flag t (enclave_lock_name e.eid)
    (fun () -> e.e_lock)
    (fun v -> e.e_lock <- v)
    f

let with_thread_lock t th f =
  with_flag t (thread_lock_name th.tid)
    (fun () -> th.t_lock)
    (fun v -> th.t_lock <- v)
    f

let with_resource_lock t f =
  with_flag t resource_lock_name
    (fun () -> t.resource_lock)
    (fun v -> t.resource_lock <- v)
    f

(* Every clear of a thread's saved AEX dump funnels through here, so
   the write is always visible to the lock-discipline analyzer as a
   [Guarded_write] under the thread's lock — an unguarded clear would
   blind it to exactly the kind of lost-update the discipline exists
   to catch. Callers inside [with_thread_lock] pass [~locked:true];
   the rest ([delete_enclave] under the enclave lock, the emergency
   reclaim paths) take the lock for the duration of the write. The
   take is forced rather than [with_flag]-checked: the emergency
   paths may find the bit stuck set by a dead holder, and the
   resulting acquire-while-held event is precisely what the analyzer
   should see in that case. *)
let clear_aex_state t th ~locked =
  let name = thread_lock_name th.tid in
  let write () =
    th.aex_state <- None;
    note_write t ~lock:name ~field:"aex_state"
  in
  if locked then write ()
  else begin
    th.t_lock <- true;
    emit_lock t name true;
    Fun.protect
      ~finally:(fun () ->
        th.t_lock <- false;
        emit_lock t name false)
      write
  end

let try_lock_enclave t ~eid =
  match Hashtbl.find_opt t.enclaves eid with
  | Some e when not e.e_lock ->
      e.e_lock <- true;
      emit_lock t (enclave_lock_name eid) true;
      true
  | Some _ | None -> false

let unlock_enclave t ~eid =
  match Hashtbl.find_opt t.enclaves eid with
  | Some e ->
      if e.e_lock then emit_lock t (enclave_lock_name eid) false;
      e.e_lock <- false
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Lookups *)

let find_enclave t eid =
  match Hashtbl.find_opt t.enclaves eid with
  | Some e -> Ok e
  | None -> err_arg "unknown enclave id"

let find_thread t tid =
  match Hashtbl.find_opt t.threads tid with
  | Some th -> Ok th
  | None -> err_arg "unknown thread id"

let enclave_of_domain t d = Hashtbl.find_opt t.domain_of_enclave d

let caller_domain t = function
  | Os -> Ok Hw.Trap.domain_untrusted
  | Enclave_caller eid ->
      let* e = find_enclave t eid in
      Ok e.domain

let require_os = function
  | Os -> ok
  | Enclave_caller _ -> Error Api_error.Unauthorized

let require_enclave t = function
  | Os -> Error Api_error.Unauthorized
  | Enclave_caller eid -> find_enclave t eid

let enclaves t =
  Hashtbl.fold (fun eid _ acc -> eid :: acc) t.enclaves [] |> List.sort compare

(* ------------------------------------------------------------------ *)
(* API-call tracing. With the default null sink [traced] is one
   boolean test around the wrapped call (plus the post-API hook test,
   see below). *)

let run_post_api_hook t api =
  match t.post_api_hook with None -> () | Some hook -> hook ~api

let set_post_api_hook t hook = t.post_api_hook <- hook

(* Fail-closed guard: no monitor API entry may raise into untrusted
   code. A call that trips an unexpected exception — metadata corrupted
   by a hardware fault, a structure in a state no validation predicted —
   aborts with [Internal_fault] instead of unwinding through the ABI.
   [with_flag] releases its lock via [Fun.protect] before the exception
   reaches this guard, so lock state stays consistent. *)
let guard_api f =
  try f ()
  with exn -> Error (Api_error.Internal_fault (Printexc.to_string exn))

let traced t ~caller api f =
  let f () = guard_api f in
  if not (Tel.Sink.enabled t.sink) then begin
    let result = f () in
    run_post_api_hook t api;
    result
  end
  else begin
    let t0 = sm_now t in
    let result = f () in
    let t1 = sm_now t in
    let latency = t1 - t0 in
    Tel.Sink.incr_counter t.sink ("sm.api.calls." ^ api);
    let outcome =
      match result with
      | Ok _ -> Tel.Event.Accepted
      | Error e ->
          Tel.Sink.incr_counter t.sink ("sm.api.rejected." ^ api);
          Tel.Event.Rejected (Api_error.to_string e)
    in
    Tel.Sink.observe t.sink "sm.api.latency" latency;
    Tel.Sink.emit t.sink ~core:(-1) ~cycles:t1
      (Tel.Event.Sm_api { api; caller = caller_label caller; outcome; latency });
    run_post_api_hook t api;
    result
  end

(* ------------------------------------------------------------------ *)
(* Generic resources (Fig. 2) *)

let unit_range t rid = (rid * t.unit_bytes, (rid + 1) * t.unit_bytes)

let resource_state t kind ~rid = Resource.state t.resources kind ~rid

let sync_memory_owner t ~rid domain =
  let lo, hi = unit_range t rid in
  match t.pf.Pf.Platform.assign_range ~lo ~hi domain with
  | Ok () -> ok
  | Error m -> err_arg m

let block_resource t ~caller kind ~rid =
  with_resource_lock t (fun () ->
      let* by = caller_domain t caller in
      Resource.block t.resources kind ~rid ~by)

let clean_resource t ~caller kind ~rid =
  with_resource_lock t (fun () ->
      let* () = require_os caller in
      let* _prev = Resource.clean t.resources kind ~rid in
      match kind with
      | Resource.Memory_resource ->
          let lo, hi = unit_range t rid in
          t.pf.Pf.Platform.clean_range ~lo ~hi;
          sync_memory_owner t ~rid Hw.Trap.domain_untrusted
      | Resource.Core_resource ->
          Hw.Machine.reset_core_state (Hw.Machine.core t.machine rid);
          ok)

(* Completing a memory grant: hardware ownership flips and, for a
   loading enclave, the pages join its load pool. *)
let finish_memory_grant t ~rid e =
  let* () = sync_memory_owner t ~rid e.domain in
  let lo, hi = unit_range t rid in
  let pages = List.init ((hi - lo) / page) (fun i -> (lo / page) + i) in
  e.free_pages <- List.sort compare (e.free_pages @ pages);
  ok

let grant_resource t ~caller kind ~rid ~to_ =
  with_resource_lock t (fun () ->
      let* () = require_os caller in
      match (kind, to_) with
      | Resource.Core_resource, To_os ->
          Resource.grant t.resources kind ~rid ~to_:Hw.Trap.domain_untrusted
            ~auto_accept:true
      | Resource.Core_resource, To_enclave eid ->
          let* e = find_enclave t eid in
          Resource.grant t.resources kind ~rid ~to_:e.domain ~auto_accept:false
      | Resource.Memory_resource, To_os ->
          let* () =
            Resource.grant t.resources kind ~rid ~to_:Hw.Trap.domain_untrusted
              ~auto_accept:true
          in
          sync_memory_owner t ~rid Hw.Trap.domain_untrusted
      | Resource.Memory_resource, To_enclave eid ->
          let* e = find_enclave t eid in
          (* While loading, the monitor performs all operations on the
             enclave's behalf, so the grant completes immediately. *)
          let auto = e.lifecycle = Loading in
          let* () =
            Resource.grant t.resources kind ~rid ~to_:e.domain ~auto_accept:auto
          in
          if auto then finish_memory_grant t ~rid e else ok)

let accept_resource t ~caller kind ~rid =
  with_resource_lock t (fun () ->
      let* e = require_enclave t caller in
      let* () = Resource.accept t.resources kind ~rid ~by:e.domain in
      match kind with
      | Resource.Memory_resource -> finish_memory_grant t ~rid e
      | Resource.Core_resource -> ok)

(* ------------------------------------------------------------------ *)
(* Metadata slots: the OS picks addresses inside the monitor's metadata
   area; the monitor enforces containment and non-overlap (§V-B). *)

let claim_slot t ~addr ~len =
  let base = metadata_base t and limit = metadata_limit t in
  if addr < base || addr + len > limit then
    err_arg "metadata slot outside the monitor's metadata area"
  else if addr mod 8 <> 0 then err_arg "metadata slot must be 8-aligned"
  else begin
    let overlaps =
      Hashtbl.fold
        (fun a l acc -> acc || (addr < a + l && a < addr + len))
        t.slots false
    in
    if overlaps then err_state "metadata slot overlaps an existing structure"
    else begin
      Hashtbl.replace t.slots addr len;
      ok
    end
  end

let release_slot t ~addr = Hashtbl.remove t.slots addr

(* ------------------------------------------------------------------ *)
(* Page-table plumbing. The monitor has M-mode authority: it reads and
   writes enclave page tables directly in physical memory. *)

let mem t = Hw.Machine.mem t.machine

let pt_perms_none = Hw.Page_table.{ r = false; w = false; x = false; u = false }

(* Descend from the root to the table that holds [vaddr]'s entry at
   [level]; every intermediate node must already exist. *)
let find_table t e ~vaddr ~level =
  match e.root_ppn with
  | None -> err_state "enclave has no root page table"
  | Some root ->
      let rec go ppn l =
        if l = level then Ok ppn
        else begin
          let idx = (vaddr lsr (12 + (9 * l))) land 511 in
          let pte_addr = Hw.Phys_mem.page_base ppn + (8 * idx) in
          match Hw.Page_table.decode_pte (Hw.Phys_mem.read_u64 (mem t) pte_addr) with
          | Error () -> err_state "missing intermediate page table"
          | Ok (_, _, true) -> err_state "superpage in the way"
          | Ok (next, _, false) -> go next (l - 1)
        end
      in
      go root (Hw.Page_table.levels - 1)

let write_pte t ~table_ppn ~vaddr ~level ~pte =
  let idx = (vaddr lsr (12 + (9 * level))) land 511 in
  let pte_addr = Hw.Phys_mem.page_base table_ppn + (8 * idx) in
  match Hw.Page_table.decode_pte (Hw.Phys_mem.read_u64 (mem t) pte_addr) with
  | Ok _ -> err_state "page-table entry already present"
  | Error () ->
      Hw.Phys_mem.write_u64 (mem t) pte_addr pte;
      ok

(* Probe that the destination PTE slot is free without writing it.
   Destination validation must happen before [alloc_enclave_page]: the
   pop mutates [free_pages] and [last_alloc_ppn], so any failure after
   it would leak a page from a rejected call and break the API's
   transaction guarantee. *)
let pte_slot_free t ~table_ppn ~vaddr ~level =
  let idx = (vaddr lsr (12 + (9 * level))) land 511 in
  let pte_addr = Hw.Phys_mem.page_base table_ppn + (8 * idx) in
  match Hw.Page_table.decode_pte (Hw.Phys_mem.read_u64 (mem t) pte_addr) with
  | Ok _ -> err_state "page-table entry already present"
  | Error () -> ok

(* Pop the enclave's next physical page, enforcing the ascending-order
   rule that keeps the measurement descriptive (§VI-A). *)
let alloc_enclave_page e =
  match e.free_pages with
  | [] -> Error (Api_error.Out_of_resources "enclave has no free pages")
  | ppn :: rest ->
      if ppn <= e.last_alloc_ppn then
        err_state "physical pages must be loaded in ascending order"
      else begin
        e.free_pages <- rest;
        e.last_alloc_ppn <- ppn;
        Ok ppn
      end

let in_evrange e ~vaddr ~len =
  vaddr >= e.evbase && vaddr + len <= e.evbase + e.evsize

(* ------------------------------------------------------------------ *)
(* Enclave lifecycle (Fig. 3) *)

let max_vaddr = 1 lsl Hw.Page_table.vpn_bits

let create_enclave t ~caller ~eid ~evbase ~evsize ?(mailbox_slots = 4) () =
  let* () = require_os caller in
  if Hashtbl.mem t.enclaves eid then err_state "enclave id already in use"
  else if evbase mod page <> 0 || evsize mod page <> 0 || evsize <= 0 then
    err_arg "evrange must be page-aligned and non-empty"
  else if evbase < 0 || evbase + evsize > max_vaddr then
    err_arg "evrange outside the virtual address space"
  else if mailbox_slots <= 0 || mailbox_slots > 64 then
    err_arg "mailbox count out of range"
  else begin
    let* () = claim_slot t ~addr:eid ~len:enclave_slot_bytes in
    let meas = Measurement.start () in
    Measurement.extend_create meas ~evbase ~evsize ~mailbox_count:mailbox_slots;
    let domain = t.next_domain in
    t.next_domain <- t.next_domain + 1;
    let e =
      {
        eid;
        domain;
        evbase;
        evsize;
        lifecycle = Loading;
        meas_ctx = Some meas;
        measurement = None;
        root_ppn = None;
        free_pages = [];
        last_alloc_ppn = -1;
        data_loaded = false;
        vmap = Hashtbl.create 64;
        pmap = Hashtbl.create 64;
        mailboxes = Mailbox.create ~slots:mailbox_slots;
        threads = [];
        fault_handler = None;
        e_lock = false;
      }
    in
    Hashtbl.replace t.enclaves eid e;
    Hashtbl.replace t.domain_of_enclave domain eid;
    ok
  end

let require_loading e =
  match e.lifecycle with
  | Loading -> ok
  | Initialized -> err_state "enclave is already initialized"

let require_initialized e =
  match e.lifecycle with
  | Initialized -> ok
  | Loading -> err_state "enclave is still loading"

let extend_measurement e f =
  match e.meas_ctx with
  | Some ctx ->
      f ctx;
      ok
  | None -> err_state "measurement already finalized"

let allocate_page_table t ~caller ~eid ~vaddr ~level =
  let* () = require_os caller in
  let* e = find_enclave t eid in
  with_enclave_lock t e (fun () ->
      let* () = require_loading e in
      if level < 0 || level >= Hw.Page_table.levels then
        err_arg "bad page-table level"
      else if vaddr mod page <> 0 || vaddr < 0 || vaddr >= max_vaddr then
        err_arg "bad page-table vaddr"
      else if e.data_loaded then
        err_state "page tables must be initialized before any data"
      else begin
        (* resolve and validate the parent slot before allocating *)
        let* parent =
          if level = Hw.Page_table.levels - 1 then begin
            match e.root_ppn with
            | Some _ -> err_state "root page table already allocated"
            | None -> Ok None
          end
          else
            let* parent = find_table t e ~vaddr ~level:(level + 1) in
            let* () =
              pte_slot_free t ~table_ppn:parent ~vaddr ~level:(level + 1)
            in
            Ok (Some parent)
        in
        let* ppn = alloc_enclave_page e in
        Hw.Phys_mem.zero_range (mem t) ~pos:(Hw.Phys_mem.page_base ppn) ~len:page;
        let* () =
          match parent with
          | None ->
              e.root_ppn <- Some ppn;
              ok
          | Some parent ->
              write_pte t ~table_ppn:parent ~vaddr ~level:(level + 1)
                ~pte:(Hw.Page_table.encode_pte ~ppn ~perms:pt_perms_none ~valid:true)
        in
        extend_measurement e (fun ctx ->
            Measurement.extend_page_table ctx ~vaddr ~level)
      end)

let load_page t ~caller ~eid ~vaddr ~src_paddr ~r ~w ~x =
  let* () = require_os caller in
  let* e = find_enclave t eid in
  with_enclave_lock t e (fun () ->
      let* () = require_loading e in
      if vaddr mod page <> 0 || not (in_evrange e ~vaddr ~len:page) then
        err_arg "load_page: vaddr must be a page inside evrange"
      else if src_paddr mod page <> 0 then err_arg "load_page: unaligned source"
      else if src_paddr < 0 || src_paddr + page > Hw.Phys_mem.size (mem t) then
        err_arg "load_page: source outside physical memory"
      else if
        t.pf.Pf.Platform.owner_at ~paddr:src_paddr <> Hw.Trap.domain_untrusted
      then err_arg "load_page: source must be untrusted memory"
      else if Hashtbl.mem e.vmap (vaddr / page) then
        err_state "load_page: virtual page already mapped (aliasing forbidden)"
      else begin
        (* resolve and validate the leaf slot before allocating *)
        let* table = find_table t e ~vaddr ~level:0 in
        let* () = pte_slot_free t ~table_ppn:table ~vaddr ~level:0 in
        let* ppn = alloc_enclave_page e in
        let contents =
          Hw.Phys_mem.read_string (mem t) ~pos:src_paddr ~len:page
        in
        Hw.Phys_mem.write_string (mem t) ~pos:(Hw.Phys_mem.page_base ppn) contents;
        let perms = Hw.Page_table.{ r; w; x; u = true } in
        let* () =
          write_pte t ~table_ppn:table ~vaddr ~level:0
            ~pte:(Hw.Page_table.encode_pte ~ppn ~perms ~valid:true)
        in
        Hashtbl.replace e.vmap (vaddr / page) ppn;
        Hashtbl.replace e.pmap ppn (vaddr / page);
        e.data_loaded <- true;
        extend_measurement e (fun ctx ->
            Measurement.extend_page ctx ~vaddr ~r ~w ~x ~contents)
      end)

let map_shared t ~caller ~eid ~vaddr ~src_paddr ~len =
  let* () = require_os caller in
  let* e = find_enclave t eid in
  with_enclave_lock t e (fun () ->
      let* () = require_loading e in
      if
        vaddr mod page <> 0 || src_paddr mod page <> 0 || len <= 0
        || len mod page <> 0
      then err_arg "map_shared: page alignment required"
      else if vaddr < 0 || vaddr + len > max_vaddr then
        err_arg "map_shared: outside the virtual address space"
      else if src_paddr < 0 || src_paddr + len > Hw.Phys_mem.size (mem t) then
        err_arg "map_shared: source outside physical memory"
      else if vaddr + len > e.evbase && e.evbase + e.evsize > vaddr then
        err_arg "map_shared: window overlaps evrange"
      else begin
        let pages_n = len / page in
        let rec check_source i =
          if i = pages_n then ok
          else if
            t.pf.Pf.Platform.owner_at ~paddr:(src_paddr + (i * page))
            <> Hw.Trap.domain_untrusted
          then err_arg "map_shared: source must be untrusted memory"
          else check_source (i + 1)
        in
        let* () = check_source 0 in
        let rec install i =
          if i = pages_n then ok
          else begin
            let va = vaddr + (i * page) in
            let* table = find_table t e ~vaddr:va ~level:0 in
            let perms = Hw.Page_table.{ r = true; w = true; x = false; u = true } in
            let* () =
              write_pte t ~table_ppn:table ~vaddr:va ~level:0
                ~pte:
                  (Hw.Page_table.encode_pte ~ppn:((src_paddr / page) + i) ~perms
                     ~valid:true)
            in
            install (i + 1)
          end
        in
        let* () = install 0 in
        extend_measurement e (fun ctx -> Measurement.extend_shared ctx ~vaddr ~len)
      end)

let load_thread t ~caller ~eid ~tid ~entry_pc ~entry_sp =
  let* () = require_os caller in
  let* e = find_enclave t eid in
  with_enclave_lock t e (fun () ->
      let* () = require_loading e in
      if Hashtbl.mem t.threads tid then err_state "thread id already in use"
      else begin
        let* () = claim_slot t ~addr:tid ~len:thread_slot_bytes in
        let th =
          {
            tid;
            t_owner = Some eid;
            t_offered = None;
            phase = T_assigned;
            entry_pc;
            entry_sp;
            aex_state = None;
            t_lock = false;
          }
        in
        Hashtbl.replace t.threads tid th;
        e.threads <- tid :: e.threads;
        extend_measurement e (fun ctx ->
            Measurement.extend_thread ctx ~entry_pc ~entry_sp)
      end)

let init_enclave t ~caller ~eid =
  let* () = require_os caller in
  let* e = find_enclave t eid in
  with_enclave_lock t e (fun () ->
      let* () = require_loading e in
      match e.root_ppn with
      | None -> err_state "init_enclave: no page tables"
      | Some _ -> begin
          match e.meas_ctx with
          | None -> err_state "measurement already finalized"
          | Some ctx ->
              note_write t ~lock:(enclave_lock_name eid) ~field:"lifecycle";
              let hits0 = Measurement.Cache.hits t.meas_cache in
              e.measurement <-
                Some (Measurement.finalize ~cache:t.meas_cache ctx);
              e.meas_ctx <- None;
              if Tel.Sink.enabled t.sink then
                Tel.Sink.incr_counter t.sink
                  (if Measurement.Cache.hits t.meas_cache > hits0 then
                     "measurement.cache.hit"
                   else "measurement.cache.miss");
              e.lifecycle <- Initialized;
              ok
        end)

let delete_enclave t ~caller ~eid =
  let* () = require_os caller in
  let* e = find_enclave t eid in
  with_enclave_lock t e (fun () ->
      let busy =
        List.exists
          (fun tid ->
            match Hashtbl.find_opt t.threads tid with
            | Some { phase = T_running _; _ } -> true
            | Some _ | None -> false)
          e.threads
      in
      if busy then err_state "delete_enclave: a thread is still scheduled"
      else begin
        (* Block every memory unit the enclave owns: the OS must clean
           them before re-allocation (Fig. 2 / Fig. 3). *)
        List.iter
          (fun rid ->
            match
              Resource.block t.resources Resource.Memory_resource ~rid
                ~by:Hw.Trap.domain_sm
            with
            | Ok () -> ()
            | Error _ -> ())
          (Resource.units_owned_by t.resources Resource.Memory_resource e.domain);
        List.iter
          (fun tid ->
            match Hashtbl.find_opt t.threads tid with
            | Some th ->
                th.t_owner <- None;
                th.t_offered <- None;
                th.phase <- T_available;
                clear_aex_state t th ~locked:false;
                th.entry_pc <- 0L;
                th.entry_sp <- 0L
            | None -> ())
          e.threads;
        Mailbox.wipe e.mailboxes;
        Hashtbl.remove t.enclaves eid;
        Hashtbl.remove t.domain_of_enclave e.domain;
        release_slot t ~addr:eid;
        ok
      end)

let enclave_state t ~eid =
  let* e = find_enclave t eid in
  Ok (match e.lifecycle with Loading -> `Loading | Initialized -> `Initialized)

let enclave_measurement t ~eid =
  let* e = find_enclave t eid in
  match e.measurement with
  | Some m -> Ok m
  | None -> err_state "enclave not yet initialized"

let enclave_domain t ~eid =
  let* e = find_enclave t eid in
  Ok e.domain

(* ------------------------------------------------------------------ *)
(* Threads (Fig. 4) *)

let thread_state t ~tid =
  let* th = find_thread t tid in
  Ok
    (match (th.phase, th.t_owner) with
    | T_available, _ -> `Available
    | T_assigned, Some eid -> `Assigned eid
    | T_running core, Some eid -> `Running (eid, core)
    | (T_assigned | T_running _), None -> `Available)

let thread_has_aex_state t ~tid =
  let* th = find_thread t tid in
  Ok (th.aex_state <> None)

let assign_thread t ~caller ~eid ~tid =
  let* () = require_os caller in
  let* _e = find_enclave t eid in
  let* th = find_thread t tid in
  with_thread_lock t th (fun () ->
      match th.phase with
      | T_available ->
          note_write t ~lock:(thread_lock_name tid) ~field:"t_offered";
          th.t_offered <- Some eid;
          ok
      | T_assigned | T_running _ -> err_state "assign_thread: thread is not available")

let accept_thread t ~caller ~tid ?(entry_pc = 0L) ?(entry_sp = 0L) () =
  let* e = require_enclave t caller in
  let* th = find_thread t tid in
  with_thread_lock t th (fun () ->
      match th.t_offered with
      | Some eid when eid = e.eid ->
          note_write t ~lock:(thread_lock_name tid) ~field:"phase";
          th.t_offered <- None;
          th.t_owner <- Some e.eid;
          th.phase <- T_assigned;
          th.entry_pc <- entry_pc;
          th.entry_sp <- entry_sp;
          clear_aex_state t th ~locked:true;
          e.threads <- tid :: e.threads;
          ok
      | Some _ | None -> Error Api_error.Unauthorized)

let release_thread t ~caller ~tid =
  let* e = require_enclave t caller in
  let* th = find_thread t tid in
  with_thread_lock t th (fun () ->
      match (th.phase, th.t_owner) with
      | T_assigned, Some owner when owner = e.eid ->
          note_write t ~lock:(thread_lock_name tid) ~field:"phase";
          th.t_owner <- None;
          th.phase <- T_available;
          clear_aex_state t th ~locked:true;
          e.threads <- List.filter (fun x -> x <> tid) e.threads;
          ok
      | T_running _, Some owner when owner = e.eid ->
          err_state "release_thread: thread is running"
      | _, _ -> Error Api_error.Unauthorized)

let unassign_thread t ~caller ~tid =
  let* () = require_os caller in
  let* th = find_thread t tid in
  with_thread_lock t th (fun () ->
      match (th.phase, th.t_owner) with
      | T_running _, _ -> err_state "unassign_thread: thread is running"
      | _, Some owner when Hashtbl.mem t.enclaves owner ->
          (* The OS cannot rip a live enclave's thread away. *)
          Error Api_error.Unauthorized
      | _, (Some _ | None) ->
          note_write t ~lock:(thread_lock_name tid) ~field:"phase";
          th.t_owner <- None;
          th.t_offered <- None;
          th.phase <- T_available;
          clear_aex_state t th ~locked:true;
          ok)

let delete_thread t ~caller ~tid =
  let* () = require_os caller in
  let* th = find_thread t tid in
  with_thread_lock t th (fun () ->
      match th.phase with
      | T_available ->
          Hashtbl.remove t.threads tid;
          release_slot t ~addr:tid;
          ok
      | T_assigned | T_running _ ->
          err_state "delete_thread: thread is still assigned")

(* ------------------------------------------------------------------ *)
(* Enclave execution, AEX, and the trap funnel (Fig. 1) *)

let running_thread_on t core_id =
  Hashtbl.fold
    (fun _ th acc ->
      match th.phase with
      | T_running c when c = core_id -> Some th
      | T_running _ | T_assigned | T_available -> acc)
    t.threads None

let enter_enclave t ~caller ~eid ~tid ~core =
  let* () = require_os caller in
  let* e = find_enclave t eid in
  with_enclave_lock t e (fun () ->
      let* () = require_initialized e in
      let* th = find_thread t tid in
      with_thread_lock t th (fun () ->
          if core < 0 || core >= Hw.Machine.core_count t.machine then
            err_arg "no such core"
          else if (Hw.Machine.core t.machine core).Hw.Machine.quarantined then
            err_state "enter_enclave: core is quarantined"
          else begin
            let c = Hw.Machine.core t.machine core in
            let* core_owner =
              match Resource.owner t.resources Resource.Core_resource ~rid:core with
              | Some d -> Ok d
              | None -> err_state "core is not owned"
            in
            if core_owner <> Hw.Trap.domain_untrusted && core_owner <> e.domain
            then Error Api_error.Unauthorized
            else if c.Hw.Machine.domain <> Hw.Trap.domain_untrusted then
              err_state "core is already inside an enclave"
            else begin
              match (th.phase, th.t_owner) with
              | T_assigned, Some owner when owner = eid ->
                  (* Core re-allocation: flush time-multiplexed state,
                     install the enclave's private translation. *)
                  t.pf.Pf.Platform.enter_domain ~core:c e.domain;
                  Hw.Machine.reset_core_state c;
                  c.Hw.Machine.satp_root <- e.root_ppn;
                  c.Hw.Machine.pc <- th.entry_pc;
                  Hw.Machine.write_reg c Hw.Isa.sp th.entry_sp;
                  Hw.Machine.write_reg c Hw.Isa.a0
                    (if th.aex_state <> None then 1L else 0L);
                  c.Hw.Machine.halted <- false;
                  note_write t ~lock:(thread_lock_name tid) ~field:"phase";
                  th.phase <- T_running core;
                  ok
              | (T_assigned | T_running _ | T_available), _ ->
                  err_state "enter_enclave: thread is not assigned to this enclave"
            end
          end))

(* Return a core to the untrusted domain with no architected or
   microarchitectural residue.

   The domain switches here and in [enter_enclave] also invalidate the
   machine's fetch fast path without any explicit call: writing
   [satp_root] changes a value the fast path compares on every fetch,
   and [enter_domain]'s TLB flush (like the shootdown IPIs behind
   [Platform.clean_range]) bumps the TLB generation it also checks.
   Monitor stores to guest memory invalidate predecoded instructions
   through the [Phys_mem] write hook. A stale translation or decode
   can therefore never survive a monitor-mediated transition. *)
let scrub_core t c =
  Hw.Machine.reset_core_state c;
  c.Hw.Machine.satp_root <- None;
  t.pf.Pf.Platform.enter_domain ~core:c Hw.Trap.domain_untrusted;
  c.Hw.Machine.halted <- true

let exit_enclave t ~caller ~core =
  let* e = require_enclave t caller in
  if core < 0 || core >= Hw.Machine.core_count t.machine then
    err_arg "no such core"
  else begin
    let c = Hw.Machine.core t.machine core in
    if c.Hw.Machine.domain <> e.domain then Error Api_error.Unauthorized
    else begin
      match running_thread_on t core with
      | None -> err_state "exit_enclave: no thread is running here"
      | Some th ->
          with_thread_lock t th (fun () ->
              note_write t ~lock:(thread_lock_name th.tid) ~field:"phase";
              th.phase <- T_assigned;
              clear_aex_state t th ~locked:true;
              scrub_core t c;
              ok)
    end
  end

let set_fault_handler t ~caller ~handler =
  let* e = require_enclave t caller in
  let* () = require_initialized e in
  e.fault_handler <- Some handler;
  ok

(* The AEX state dump lives in thread metadata (§V-C); the owning
   enclave reads it back to resume the interrupted computation, which
   also clears the dump. Layout: x1..x31 then the interrupted pc, as
   32 little-endian 64-bit words (x0 is omitted — it is always zero). *)
let aex_dump_bytes = 32 * 8

let read_aex_state t ~caller ~tid =
  let* e = require_enclave t caller in
  let* th = find_thread t tid in
  with_thread_lock t th (fun () ->
      if th.t_owner <> Some e.eid then Error Api_error.Unauthorized
      else begin
        match th.aex_state with
        | None -> err_state "no AEX state is pending"
        | Some dump ->
            clear_aex_state t th ~locked:true;
            let b = Bytes.create aex_dump_bytes in
            for i = 1 to 31 do
              Bytes.set_int64_le b ((i - 1) * 8) dump.(i)
            done;
            Bytes.set_int64_le b (31 * 8) dump.(32);
            Ok (Bytes.unsafe_to_string b)
      end)

(* Asynchronous enclave exit (§V-C): save the interrupted context into
   the thread's AEX area, then hand a clean core to the OS. *)
let perform_aex t c th =
  let dump = Array.make 33 0L in
  Array.blit c.Hw.Machine.regs 0 dump 0 32;
  dump.(32) <- c.Hw.Machine.pc;
  th.aex_state <- Some dump;
  th.phase <- T_assigned;
  (if Tel.Sink.enabled t.sink then
     match th.t_owner with
     | Some eid ->
         Tel.Sink.incr_counter t.sink "sm.aex";
         emit t ~core:c.Hw.Machine.id (Tel.Event.Enclave_exited { eid; aex = true })
     | None -> ());
  scrub_core t c

(* ------------------------------------------------------------------ *)
(* Mailboxes (Fig. 5) *)

let untrusted_measurement = String.make Measurement.size '\000'

let caller_measurement t = function
  | Os -> Some untrusted_measurement
  | Enclave_caller eid -> begin
      match Hashtbl.find_opt t.enclaves eid with
      | Some e -> e.measurement
      | None -> None
    end

let sender_of_caller = function
  | Os -> Mailbox.From_os
  | Enclave_caller eid -> Mailbox.From_enclave eid

let accept_mail t ~caller ~sender =
  let* e = require_enclave t caller in
  let* () = require_initialized e in
  with_enclave_lock t e (fun () -> Mailbox.accept e.mailboxes ~sender)

let send_mail t ~caller ~recipient ~msg =
  let* r = find_enclave t recipient in
  let* () = require_initialized r in
  let* meas =
    match caller_measurement t caller with
    | Some m -> Ok m
    | None -> err_state "sender has no measurement yet"
  in
  with_enclave_lock t r (fun () ->
      Mailbox.deposit r.mailboxes ~sender:(sender_of_caller caller)
        ~sender_measurement:meas ~msg)

let get_mail t ~caller ~sender =
  let* e = require_enclave t caller in
  with_enclave_lock t e (fun () -> Mailbox.retrieve e.mailboxes ~sender)

(* ------------------------------------------------------------------ *)
(* Attestation support (§VI) *)

let get_field t = function
  | Field_public_key ->
      Crypto.Schnorr.public_key_to_bytes
        (Crypto.Schnorr.public_key t.identity.Boot.attestation_key)
  | Field_certificates ->
      String.concat ""
        (List.map
           (fun c ->
             let s = Crypto.Cert.serialize c in
             let b = Bytes.create 4 in
             Bytes.set_int32_le b 0 (Int32.of_int (String.length s));
             Bytes.unsafe_to_string b ^ s)
           t.identity.Boot.certificates)
  | Field_sm_measurement -> t.identity.Boot.sm_measurement
  | Field_signing_measurement -> t.signing_measurement

let get_signing_key t ~caller =
  let* e = require_enclave t caller in
  match e.measurement with
  | Some m when Sanctorum_util.Bytesx.constant_time_equal m t.signing_measurement
    ->
      Ok t.identity.Boot.attestation_key
  | Some _ | None -> Error Api_error.Unauthorized

(* ------------------------------------------------------------------ *)
(* Tracing shadows. Each public entry point is re-bound to a traced
   version of itself — the non-recursive [let]s refer to the original
   definitions above — so every call, including those arriving through
   the ecall funnel below, lands in the audit log. Lifecycle events are
   emitted here on success, keeping the decision logic above clean. *)

let resource_kind_label = function
  | Resource.Core_resource -> "core"
  | Resource.Memory_resource -> "memory"

let target_label = function
  | To_os -> "os"
  | To_enclave eid -> Printf.sprintf "enclave:0x%x" eid

let on_ok r f = (match r with Ok _ -> f () | Error _ -> ()); r

let block_resource t ~caller kind ~rid =
  traced t ~caller "block_resource" (fun () -> block_resource t ~caller kind ~rid)

let clean_resource t ~caller kind ~rid =
  on_ok
    (traced t ~caller "clean_resource" (fun () ->
         clean_resource t ~caller kind ~rid))
    (fun () ->
      emit t (Tel.Event.Region_freed { kind = resource_kind_label kind; rid }))

let grant_resource t ~caller kind ~rid ~to_ =
  on_ok
    (traced t ~caller "grant_resource" (fun () ->
         grant_resource t ~caller kind ~rid ~to_))
    (fun () ->
      emit t
        (Tel.Event.Region_granted
           { kind = resource_kind_label kind; rid; owner = target_label to_ }))

let accept_resource t ~caller kind ~rid =
  traced t ~caller "accept_resource" (fun () ->
      accept_resource t ~caller kind ~rid)

let create_enclave t ~caller ~eid ~evbase ~evsize ?mailbox_slots () =
  on_ok
    (traced t ~caller "create_enclave" (fun () ->
         create_enclave t ~caller ~eid ~evbase ~evsize ?mailbox_slots ()))
    (fun () -> emit t (Tel.Event.Enclave_created { eid }))

let allocate_page_table t ~caller ~eid ~vaddr ~level =
  traced t ~caller "allocate_page_table" (fun () ->
      allocate_page_table t ~caller ~eid ~vaddr ~level)

let load_page t ~caller ~eid ~vaddr ~src_paddr ~r ~w ~x =
  traced t ~caller "load_page" (fun () ->
      load_page t ~caller ~eid ~vaddr ~src_paddr ~r ~w ~x)

let map_shared t ~caller ~eid ~vaddr ~src_paddr ~len =
  traced t ~caller "map_shared" (fun () ->
      map_shared t ~caller ~eid ~vaddr ~src_paddr ~len)

let load_thread t ~caller ~eid ~tid ~entry_pc ~entry_sp =
  traced t ~caller "load_thread" (fun () ->
      load_thread t ~caller ~eid ~tid ~entry_pc ~entry_sp)

let init_enclave t ~caller ~eid =
  on_ok
    (traced t ~caller "init_enclave" (fun () -> init_enclave t ~caller ~eid))
    (fun () -> emit t (Tel.Event.Enclave_initialized { eid }))

let delete_enclave t ~caller ~eid =
  on_ok
    (traced t ~caller "delete_enclave" (fun () -> delete_enclave t ~caller ~eid))
    (fun () -> emit t (Tel.Event.Enclave_destroyed { eid }))

let assign_thread t ~caller ~eid ~tid =
  traced t ~caller "assign_thread" (fun () -> assign_thread t ~caller ~eid ~tid)

let accept_thread t ~caller ~tid ?entry_pc ?entry_sp () =
  traced t ~caller "accept_thread" (fun () ->
      accept_thread t ~caller ~tid ?entry_pc ?entry_sp ())

let release_thread t ~caller ~tid =
  traced t ~caller "release_thread" (fun () -> release_thread t ~caller ~tid)

let unassign_thread t ~caller ~tid =
  traced t ~caller "unassign_thread" (fun () -> unassign_thread t ~caller ~tid)

let delete_thread t ~caller ~tid =
  traced t ~caller "delete_thread" (fun () -> delete_thread t ~caller ~tid)

let enter_enclave t ~caller ~eid ~tid ~core =
  on_ok
    (traced t ~caller "enter_enclave" (fun () ->
         enter_enclave t ~caller ~eid ~tid ~core))
    (fun () ->
      emit t ~core (Tel.Event.Enclave_entered { eid; tid; target_core = core }))

let exit_enclave t ~caller ~core =
  on_ok
    (traced t ~caller "exit_enclave" (fun () -> exit_enclave t ~caller ~core))
    (fun () ->
      match caller with
      | Enclave_caller eid ->
          emit t ~core (Tel.Event.Enclave_exited { eid; aex = false })
      | Os -> ())

let set_fault_handler t ~caller ~handler =
  traced t ~caller "set_fault_handler" (fun () ->
      set_fault_handler t ~caller ~handler)

let read_aex_state t ~caller ~tid =
  traced t ~caller "read_aex_state" (fun () -> read_aex_state t ~caller ~tid)

let accept_mail t ~caller ~sender =
  traced t ~caller "accept_mail" (fun () -> accept_mail t ~caller ~sender)

let send_mail t ~caller ~recipient ~msg =
  on_ok
    (traced t ~caller "send_mail" (fun () ->
         send_mail t ~caller ~recipient ~msg))
    (fun () ->
      emit t
        (Tel.Event.Mailbox_sent { sender = caller_label caller; recipient }))

let get_mail t ~caller ~sender =
  on_ok
    (traced t ~caller "get_mail" (fun () -> get_mail t ~caller ~sender))
    (fun () ->
      match caller with
      | Enclave_caller recipient ->
          let sender =
            match sender with
            | Mailbox.From_os -> "os"
            | Mailbox.From_enclave eid -> Printf.sprintf "enclave:0x%x" eid
          in
          emit t (Tel.Event.Mailbox_received { recipient; sender })
      | Os -> ())

let get_signing_key t ~caller =
  traced t ~caller "get_signing_key" (fun () -> get_signing_key t ~caller)

(* ------------------------------------------------------------------ *)
(* The ecall ABI *)

module Ecall = struct
  let exit_enclave = 1
  let accept_mail = 2
  let send_mail = 3
  let get_mail = 4
  let block_resource = 5
  let accept_resource = 6
  let accept_thread = 7
  let release_thread = 8
  let set_fault_handler = 9
  let read_aex_state = 10

  let error_code = function
    | Api_error.Illegal_argument _ -> 1L
    | Api_error.Unauthorized -> 2L
    | Api_error.Concurrent_call -> 3L
    | Api_error.Invalid_state _ -> 4L
    | Api_error.Out_of_resources _ -> 5L
    | Api_error.Internal_fault _ -> 6L
end

(* Copy bytes between monitor space and an enclave's virtual memory,
   through the enclave's own page tables (monitor authority bypasses
   the walk checks). *)
let enclave_vaddr_to_paddr t e vaddr =
  match e.root_ppn with
  | None -> None
  | Some root -> begin
      match
        Hw.Page_table.walk (mem t) ~root_ppn:root ~vaddr ~pte_fetch_ok:(fun _ ->
            true)
      with
      | Ok (ppn, _) ->
          Some (Hw.Phys_mem.page_base ppn lor (vaddr land (page - 1)))
      | Error _ -> None
    end

let read_enclave_bytes t e ~vaddr ~len =
  let buf = Buffer.create len in
  let rec go va remaining =
    if remaining = 0 then Some (Buffer.contents buf)
    else begin
      match enclave_vaddr_to_paddr t e va with
      | None -> None
      | Some pa ->
          let chunk = min remaining (page - (va land (page - 1))) in
          Buffer.add_string buf (Hw.Phys_mem.read_string (mem t) ~pos:pa ~len:chunk);
          go (va + chunk) (remaining - chunk)
    end
  in
  go vaddr len

let write_enclave_bytes t e ~vaddr data =
  let rec go va off =
    if off = String.length data then true
    else begin
      match enclave_vaddr_to_paddr t e va with
      | None -> false
      | Some pa ->
          let chunk = min (String.length data - off) (page - (va land (page - 1))) in
          Hw.Phys_mem.write_string (mem t) ~pos:pa (String.sub data off chunk);
          go (va + chunk) (off + chunk)
    end
  in
  go vaddr 0

let handle_ecall t (c : Hw.Machine.core) e =
  let caller = Enclave_caller e.eid in
  let arg n = Hw.Machine.read_reg c n in
  let a0 = Int64.to_int (arg Hw.Isa.a0) in
  let a1 = Int64.to_int (arg Hw.Isa.a1) in
  let a2 = Int64.to_int (arg Hw.Isa.a2) in
  let call = Int64.to_int (arg Hw.Isa.a7) in
  let sender_of_int v =
    if v = 0 then Mailbox.From_os else Mailbox.From_enclave v
  in
  let finish result =
    let code = match result with Ok () -> 0L | Error e -> Ecall.error_code e in
    Hw.Machine.write_reg c Hw.Isa.a0 code;
    c.Hw.Machine.pc <- Int64.add c.Hw.Machine.pc 4L
  in
  if call = Ecall.exit_enclave then begin
    match exit_enclave t ~caller ~core:c.Hw.Machine.id with
    | Ok () -> () (* core has been scrubbed; nothing to write back *)
    | Error err -> finish (Error err)
  end
  else if call = Ecall.accept_mail then
    finish (accept_mail t ~caller ~sender:(sender_of_int a0))
  else if call = Ecall.send_mail then begin
    match read_enclave_bytes t e ~vaddr:a1 ~len:Mailbox.message_size with
    | None -> finish (err_arg "bad message buffer")
    | Some msg -> finish (send_mail t ~caller ~recipient:a0 ~msg)
  end
  else if call = Ecall.get_mail then begin
    match get_mail t ~caller ~sender:(sender_of_int a0) with
    | Error err -> finish (Error err)
    | Ok (msg, meas) ->
        if
          write_enclave_bytes t e ~vaddr:a1 msg
          && write_enclave_bytes t e ~vaddr:a2 meas
        then finish ok
        else finish (err_arg "bad output buffer")
  end
  else if call = Ecall.block_resource then begin
    let kind = if a0 = 0 then Resource.Core_resource else Resource.Memory_resource in
    finish (block_resource t ~caller kind ~rid:a1)
  end
  else if call = Ecall.accept_resource then begin
    let kind = if a0 = 0 then Resource.Core_resource else Resource.Memory_resource in
    finish (accept_resource t ~caller kind ~rid:a1)
  end
  else if call = Ecall.accept_thread then
    finish (accept_thread t ~caller ~tid:a0 ())
  else if call = Ecall.release_thread then
    finish (release_thread t ~caller ~tid:a0)
  else if call = Ecall.set_fault_handler then
    finish (set_fault_handler t ~caller ~handler:(arg Hw.Isa.a0))
  else if call = Ecall.read_aex_state then begin
    (* a0 = 0 means "the thread running on this core" — an enclave does
       not otherwise know its own tid. *)
    let tid =
      if a0 <> 0 then a0
      else
        match running_thread_on t c.Hw.Machine.id with
        | Some th -> th.tid
        | None -> -1
    in
    match read_aex_state t ~caller ~tid with
    | Error err -> finish (Error err)
    | Ok dump ->
        if write_enclave_bytes t e ~vaddr:a1 dump then finish ok
        else finish (err_arg "bad output buffer")
  end
  else finish (err_arg "unknown monitor call")

(* ------------------------------------------------------------------ *)
(* Machine-check containment. A core that takes an uncorrectable error
   is lost: the monitor scrubs whatever is still reachable, reclaims
   the resident enclave's resources so the rest of the machine keeps
   serving, and retires the core. *)

(* Forced teardown of an enclave the monitor can no longer trust —
   the core it ran on died, or an uncorrectable error landed in its
   memory. Mirrors [delete_enclave]'s semantics (units blocked by the
   monitor, threads detached, slot released) but ignores locks (their
   holder may be the dead core) and running threads (their context is
   unrecoverable). *)
let emergency_reclaim_enclave t eid =
  match Hashtbl.find_opt t.enclaves eid with
  | None -> ()
  | Some e ->
      List.iter
        (fun rid ->
          match
            Resource.block t.resources Resource.Memory_resource ~rid
              ~by:Hw.Trap.domain_sm
          with
          | Ok () -> ()
          | Error _ -> ())
        (Resource.units_owned_by t.resources Resource.Memory_resource e.domain);
      List.iter
        (fun tid ->
          match Hashtbl.find_opt t.threads tid with
          | Some th ->
              th.t_owner <- None;
              th.t_offered <- None;
              th.phase <- T_available;
              th.t_lock <- false;
              clear_aex_state t th ~locked:false;
              th.entry_pc <- 0L;
              th.entry_sp <- 0L
          | None -> ())
        e.threads;
      Mailbox.wipe e.mailboxes;
      Hashtbl.remove t.enclaves eid;
      Hashtbl.remove t.domain_of_enclave e.domain;
      release_slot t ~addr:eid;
      if Tel.Sink.enabled t.sink then begin
        Tel.Sink.incr_counter t.sink "sm.emergency_reclaims";
        emit t (Tel.Event.Enclave_destroyed { eid })
      end

let handle_machine_check t (c : Hw.Machine.core) ~paddr =
  if Tel.Sink.enabled t.sink then
    Tel.Sink.incr_counter t.sink "sm.machine_checks";
  (* The enclave resident on the dying core goes with it. *)
  (match enclave_of_domain t c.Hw.Machine.domain with
  | Some eid -> emergency_reclaim_enclave t eid
  | None -> ());
  (* An uncorrectable word poisons its owner: reclaim the enclave it
     belonged to, then retire the word (zeroing rewrites the check
     bits) so honest accesses elsewhere stop tripping over it. *)
  if paddr >= 0 && paddr + 8 <= Hw.Phys_mem.size (mem t) then begin
    let owner = t.pf.Pf.Platform.owner_at ~paddr in
    (match Hashtbl.find_opt t.domain_of_enclave owner with
    | Some eid -> emergency_reclaim_enclave t eid
    | None -> ());
    Hw.Phys_mem.zero_range (mem t) ~pos:(paddr / 8 * 8) ~len:8
  end;
  (* The trap handler still runs on the faulted core, so architected
     and microarchitectural state remain scrubbable — unlike a
     shootdown-timeout quarantine, where the core is unreachable. *)
  scrub_core t c;
  Hw.Machine.quarantine t.machine ~core:c.Hw.Machine.id ~reason:"machine-check"

(* Background patrol scrub: walk all of memory through the ECC engine,
   correcting single-bit faults before they accumulate into
   uncorrectable ones. An uncorrectable word found here is retired in
   place — its owning enclave reclaimed, the word zeroed — without
   sacrificing a core: nothing was executing through the bad word, so
   unlike the trap path there is no poisoned architectural state. *)
let patrol_scrub t =
  let m = mem t in
  let size = Hw.Phys_mem.size m in
  let corrected_before = Hw.Phys_mem.corrected_count m in
  let retired = ref 0 in
  let budget = ref (Hw.Phys_mem.pending_faults m + 1) in
  let scanning = ref true in
  while !scanning && !budget > 0 do
    decr budget;
    match Hw.Phys_mem.scrub m ~pos:0 ~len:size with
    | `Clean | `Corrected _ -> scanning := false
    | `Uncorrectable paddr ->
        if Tel.Sink.enabled t.sink then
          Tel.Sink.incr_counter t.sink "sm.patrol.retired";
        let owner = t.pf.Pf.Platform.owner_at ~paddr in
        (match Hashtbl.find_opt t.domain_of_enclave owner with
        | Some eid -> emergency_reclaim_enclave t eid
        | None -> ());
        Hw.Phys_mem.zero_range m ~pos:paddr ~len:8;
        incr retired
  done;
  (Hw.Phys_mem.corrected_count m - corrected_before, !retired)

(* Invoked by the machine for every quarantined core, whatever the
   trigger. Any thread the dead core was running is detached: its
   context is lost (fail closed — the computation dies, nothing
   leaks), and its enclave, if still alive, may schedule the thread
   again elsewhere from its entry point. *)
let handle_core_quarantine t (c : Hw.Machine.core) ~reason:_ =
  match running_thread_on t c.Hw.Machine.id with
  | Some th ->
      th.phase <- T_assigned;
      clear_aex_state t th ~locked:false
  | None -> ()

(* The M-mode trap funnel (Fig. 1). *)
let on_trap_dispatch t _machine (c : Hw.Machine.core) cause =
  match enclave_of_domain t c.Hw.Machine.domain with
  | None ->
      (* Untrusted (or monitor-owned) context: straight delegation. *)
      t.os_handler c cause
  | Some eid -> begin
      match Hashtbl.find_opt t.enclaves eid with
      | None ->
          (* Stale domain: scrub defensively. *)
          (match running_thread_on t c.Hw.Machine.id with
          | Some th -> perform_aex t c th
          | None -> scrub_core t c);
          t.os_handler c cause
      | Some e -> begin
          match cause with
          | Hw.Trap.Interrupt _ -> begin
              (* The OS may always de-schedule an enclave; the monitor
                 cleans the core before the OS sees the event. *)
              match running_thread_on t c.Hw.Machine.id with
              | Some th ->
                  perform_aex t c th;
                  t.os_handler c cause
              | None ->
                  scrub_core t c;
                  t.os_handler c cause
            end
          | Hw.Trap.Exception Hw.Trap.Ecall_user -> handle_ecall t c e
          | Hw.Trap.Exception (Hw.Trap.Page_fault (_, va) as exc) -> begin
              match e.fault_handler with
              | Some h ->
                  (* Deliver the fault to the enclave's own handler —
                     the OS never observes faults inside evrange. *)
                  Hw.Machine.write_reg c Hw.Isa.a0 va;
                  Hw.Machine.write_reg c Hw.Isa.a1 13L (* load page fault code *);
                  c.Hw.Machine.pc <- h
              | None -> begin
                  match running_thread_on t c.Hw.Machine.id with
                  | Some th ->
                      perform_aex t c th;
                      t.os_handler c (Hw.Trap.Exception exc)
                  | None ->
                      scrub_core t c;
                      t.os_handler c (Hw.Trap.Exception exc)
                end
            end
          | Hw.Trap.Exception exc -> begin
              match running_thread_on t c.Hw.Machine.id with
              | Some th ->
                  perform_aex t c th;
                  t.os_handler c (Hw.Trap.Exception exc)
              | None ->
                  scrub_core t c;
                  t.os_handler c (Hw.Trap.Exception exc)
            end
        end
    end

let on_trap t machine (c : Hw.Machine.core) cause =
  match cause with
  | Hw.Trap.Exception (Hw.Trap.Machine_check paddr) ->
      (* Containment runs before any domain dispatch: the faulting
         core's bookkeeping may be among the casualties. *)
      handle_machine_check t c ~paddr
  | _ -> begin
      (* The funnel itself must not raise into the simulated machine:
         corrupted metadata mid-dispatch fails closed by retiring the
         core, exactly as a machine check would. *)
      match on_trap_dispatch t machine c cause with
      | () -> ()
      | exception _ ->
          (try scrub_core t c with _ -> ());
          Hw.Machine.quarantine t.machine ~core:c.Hw.Machine.id
            ~reason:"trap-handler-fault"
    end

(* ------------------------------------------------------------------ *)
(* Boot *)

let boot ~platform:pf ~identity ~signing_enclave_measurement =
  let machine = pf.Pf.Platform.machine in
  let unit_bytes = pf.Pf.Platform.alloc_unit in
  let mem_bytes = Hw.Phys_mem.size (Hw.Machine.mem machine) in
  let resources =
    Resource.create
      ~cores:(Hw.Machine.core_count machine)
      ~memory_units:(mem_bytes / unit_bytes)
  in
  (* The monitor's own memory: owned by the monitor, never grantable. *)
  let sm_units = Pf.Platform.sm_memory_bytes / unit_bytes in
  for rid = 0 to sm_units - 1 do
    Resource.force_owner resources Resource.Memory_resource ~rid
      Hw.Trap.domain_sm
  done;
  let t =
    {
      pf;
      machine;
      identity;
      signing_measurement = signing_enclave_measurement;
      resources;
      unit_bytes;
      enclaves = Hashtbl.create 16;
      threads = Hashtbl.create 16;
      slots = Hashtbl.create 16;
      domain_of_enclave = Hashtbl.create 16;
      next_domain = 2;
      os_handler =
        (fun core cause ->
          Format.eprintf "sanctorum: undelegated trap on core %d: %a@."
            core.Hw.Machine.id Hw.Trap.pp_cause cause;
          core.Hw.Machine.halted <- true);
      resource_lock = false;
      sink = Tel.Sink.null;
      post_api_hook = None;
      meas_cache = Measurement.Cache.create ();
    }
  in
  Hw.Machine.set_trap_handler machine (fun m c cause -> on_trap t m c cause);
  Hw.Machine.set_quarantine_handler machine (fun _ c ~reason ->
      handle_core_quarantine t c ~reason);
  t

let set_sink t sink =
  t.sink <- sink;
  Hw.Machine.set_sink t.machine sink

let sink t = t.sink

let mailbox_stats t ~eid =
  let* e = find_enclave t eid in
  Ok (Mailbox.stats e.mailboxes)

(* ------------------------------------------------------------------ *)
(* Read-only introspection for external checkers (Sanctorum_analysis).
   These deliberately bypass [traced]: a checker installed as a
   post-API hook must not itself generate API events or recurse. *)

type enclave_info = {
  i_eid : int;
  i_domain : Hw.Trap.domain;
  i_evbase : int;
  i_evsize : int;
  i_initialized : bool;
  i_has_measurement : bool;
  i_measuring : bool;
  i_root_ppn : int option;
  i_free_pages : int list;
  i_threads : int list;
  i_mappings : (int * int) list;
  i_locked : bool;
}

type thread_info = {
  i_tid : int;
  i_owner : int option;
  i_offered : int option;
  i_phase : [ `Available | `Assigned | `Running of int ];
  i_has_aex : bool;
  i_thread_locked : bool;
}

let enclave_info t ~eid =
  Option.map
    (fun e ->
      {
        i_eid = e.eid;
        i_domain = e.domain;
        i_evbase = e.evbase;
        i_evsize = e.evsize;
        i_initialized = (e.lifecycle = Initialized);
        i_has_measurement = e.measurement <> None;
        i_measuring = e.meas_ctx <> None;
        i_root_ppn = e.root_ppn;
        i_free_pages = e.free_pages;
        i_threads = List.sort compare e.threads;
        i_mappings =
          Hashtbl.fold (fun vpn ppn acc -> (vpn, ppn) :: acc) e.vmap []
          |> List.sort compare;
        i_locked = e.e_lock;
      })
    (Hashtbl.find_opt t.enclaves eid)

let thread_ids t =
  Hashtbl.fold (fun tid _ acc -> tid :: acc) t.threads [] |> List.sort compare

let thread_info t ~tid =
  Option.map
    (fun th ->
      {
        i_tid = th.tid;
        i_owner = th.t_owner;
        i_offered = th.t_offered;
        i_phase =
          (match th.phase with
          | T_available -> `Available
          | T_assigned -> `Assigned
          | T_running core -> `Running core);
        i_has_aex = th.aex_state <> None;
        i_thread_locked = th.t_lock;
      })
    (Hashtbl.find_opt t.threads tid)

let mailbox_snapshot t ~eid =
  Option.map
    (fun e -> Mailbox.snapshot e.mailboxes)
    (Hashtbl.find_opt t.enclaves eid)

let metadata_slots t =
  Hashtbl.fold (fun addr len acc -> (addr, len) :: acc) t.slots []
  |> List.sort compare

let held_locks t =
  let acc = if t.resource_lock then [ resource_lock_name ] else [] in
  let acc =
    Hashtbl.fold
      (fun eid e acc -> if e.e_lock then enclave_lock_name eid :: acc else acc)
      t.enclaves acc
  in
  Hashtbl.fold
    (fun tid th acc ->
      if th.t_lock then thread_lock_name tid :: acc else acc)
    t.threads acc
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Fault injection (tests only): break one internal invariant so the
   analysis layer can demonstrate that its checker fires. None of
   these are reachable through the API surface. *)

let corrupt_enclave_lifecycle t ~eid =
  match Hashtbl.find_opt t.enclaves eid with
  | None -> ()
  | Some e -> (
      match e.lifecycle with
      | Loading -> e.lifecycle <- Initialized
      | Initialized -> e.lifecycle <- Loading)

let corrupt_thread_phase t ~tid ~core =
  match Hashtbl.find_opt t.threads tid with
  | None -> ()
  | Some th -> th.phase <- T_running core

let corrupt_metadata_slot t =
  Hashtbl.replace t.slots (metadata_limit t) 16

let corrupt_resource_owner t ~rid domain =
  Resource.force_owner t.resources Resource.Memory_resource ~rid domain
