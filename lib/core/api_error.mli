(** Errors returned by the monitor API. Every call is a transaction:
    on error, no state has changed (paper §V-A). *)

type t =
  | Illegal_argument of string
      (** malformed request: bad id, bad range, misalignment, ... *)
  | Unauthorized
      (** the authenticated caller may not make this request *)
  | Concurrent_call
      (** a fine-grained lock was held: the transaction aborts and the
          caller retries (§V-A) *)
  | Invalid_state of string
      (** the target exists but is not in a state admitting this
          transition (Figs. 2–5) *)
  | Out_of_resources of string
  | Internal_fault of string
      (** the monitor hit an unexpected condition (a hardware fault, a
          corrupted structure) mid-call and aborted: the call fails
          closed instead of raising into untrusted code *)

type 'a result = ('a, t) Stdlib.result

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
