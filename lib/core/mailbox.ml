type sender = From_os | From_enclave of int

type slot_state =
  | Unaccepted
  | Empty of sender  (** accepted, waiting for this sender *)
  | Full of sender * string * string  (** sender, measurement, message *)

type t = {
  slots : slot_state array;
  mutable deposited : int;
  mutable retrieved : int;
  mutable rejected : int;
}

let message_size = 256

let create ~slots =
  if slots <= 0 then invalid_arg "Mailbox.create: slots must be positive";
  { slots = Array.make slots Unaccepted; deposited = 0; retrieved = 0; rejected = 0 }

let slots t = Array.length t.slots

let equal_sender a b =
  match (a, b) with
  | From_os, From_os -> true
  | From_enclave x, From_enclave y -> x = y
  | (From_os | From_enclave _), _ -> false

let find_slot t ~sender =
  let found = ref None in
  Array.iteri
    (fun i s ->
      match s with
      | (Empty who | Full (who, _, _)) when equal_sender who sender ->
          if !found = None then found := Some i
      | Empty _ | Full _ | Unaccepted -> ())
    t.slots;
  !found

let accept t ~sender =
  match find_slot t ~sender with
  | Some i ->
      (* Re-accepting resets the slot (the recipient discards any
         pending message from this sender). *)
      t.slots.(i) <- Empty sender;
      Ok ()
  | None -> begin
      let free = ref None in
      Array.iteri
        (fun i s -> if s = Unaccepted && !free = None then free := Some i)
        t.slots;
      match !free with
      | Some i ->
          t.slots.(i) <- Empty sender;
          Ok ()
      | None -> Error (Api_error.Out_of_resources "no free mailbox slot")
    end

let deposit t ~sender ~sender_measurement ~msg =
  if String.length msg > message_size then begin
    t.rejected <- t.rejected + 1;
    Error (Api_error.Illegal_argument "message too large")
  end
  else begin
    let msg = msg ^ String.make (message_size - String.length msg) '\000' in
    match find_slot t ~sender with
    | None ->
        t.rejected <- t.rejected + 1;
        Error (Api_error.Invalid_state "recipient has not accepted this sender")
    | Some i -> begin
        match t.slots.(i) with
        | Empty _ ->
            t.slots.(i) <- Full (sender, sender_measurement, msg);
            t.deposited <- t.deposited + 1;
            Ok ()
        | Full _ ->
            t.rejected <- t.rejected + 1;
            Error (Api_error.Invalid_state "mailbox is full")
        | Unaccepted -> assert false
      end
  end

let retrieve t ~sender =
  match find_slot t ~sender with
  | None -> Error (Api_error.Invalid_state "no mailbox for this sender")
  | Some i -> begin
      match t.slots.(i) with
      | Full (_, meas, msg) ->
          t.slots.(i) <- Unaccepted;
          t.retrieved <- t.retrieved + 1;
          Ok (msg, meas)
      | Empty _ -> Error (Api_error.Invalid_state "mailbox is empty")
      | Unaccepted -> assert false
    end

let wipe t = Array.fill t.slots 0 (Array.length t.slots) Unaccepted

let snapshot t =
  Array.to_list t.slots
  |> List.filter_map (function
       | Unaccepted -> None
       | Empty who -> Some (who, false)
       | Full (who, _, _) -> Some (who, true))

let stats t = (t.deposited, t.retrieved, t.rejected)

let pp_sender ppf = function
  | From_os -> Format.pp_print_string ppf "OS"
  | From_enclave eid -> Format.fprintf ppf "enclave 0x%x" eid
