(** Attestation protocols (paper §VI).

    {b Local attestation} (Fig. 6) needs no cryptography: the monitor's
    authenticated mailboxes tag each message with the sender's
    measurement, so two co-resident enclaves prove their identities to
    each other through mutual trust in the monitor. The raw {!Sm} mail
    API is the protocol; {!local_attest} packages the four steps.

    {b Remote attestation} (Fig. 7) routes through the trusted signing
    enclave E_S: after DH key agreement with the verifier, the attested
    enclave mails the verifier's nonce (bound to the channel transcript)
    to E_S, which retrieves the monitor's key — released only to the
    enclave matching the hard-coded measurement — and signs
    (nonce-binding, enclave measurement). The verifier checks the
    signature against the manufacturer PKI. *)

(** {2 The signing enclave} *)

val signing_image : Image.t
(** The canonical signing-enclave image. Its measurement is the value
    hard-coded into the monitor at boot. *)

val signing_expected_measurement : string
(** [Image.measurement signing_image]. *)

val signing_enclave_serve :
  Sm.t -> es_eid:int -> requester:int -> unit Api_error.result
(** First half of a signing-enclave service round (native model of its
    behaviour, acting as [Enclave_caller es_eid]): ready a mailbox for
    [requester] so its request can land. *)

val signing_enclave_respond :
  Sm.t -> es_eid:int -> requester:int -> unit Api_error.result
(** Second half: read (nonce ∥ channel binding) from the requester's
    mail — the requester's measurement comes from the monitor's tag,
    not from the message — fetch the monitor key via [get_key], sign,
    and mail the signature back. *)

(** {2 Evidence and verification} *)

type evidence = {
  enclave_measurement : string;
  channel_binding : string;  (** sha3-256 of both DH public keys *)
  nonce : string;
  signature : string;  (** by the monitor's attestation key *)
  certificates : string;  (** serialized chain from [get_field] *)
}

val attested_payload : evidence -> string
(** The exact byte string the signing enclave signs. *)

val request_attestation :
  Sm.t ->
  eid:int ->
  es_eid:int ->
  nonce:string ->
  channel_binding:string ->
  (evidence, Api_error.t) result
(** The attested enclave's side (native model, acting as
    [Enclave_caller eid]): mail the request to the signing enclave,
    collect the signature — verifying the responder's measurement tag
    against the monitor's published signing measurement — and assemble
    the evidence. [signing_enclave_serve] must run between the send and
    the receive; this function performs both halves and expects the OS
    to have scheduled E_S via the callback in {!run_protocol}. *)

val verify_evidence :
  root:Sanctorum_crypto.Schnorr.public_key ->
  expected_measurement:string ->
  nonce:string ->
  channel_binding:string ->
  evidence ->
  (unit, string) result
(** The trusted first party's check: certificate chain to the root,
    then the signature over the attested payload. *)

type batch_request = {
  vr_root : Sanctorum_crypto.Schnorr.public_key;
  vr_expected_measurement : string;
  vr_nonce : string;
  vr_channel_binding : string;
  vr_evidence : evidence;
}

val verify_evidence_batch :
  batch_request list -> (unit, string) result array
(** {!verify_evidence} over many items with every Schnorr check (both
    certificate signatures and the evidence signature, per item) folded
    into one {!Sanctorum_crypto.Schnorr.verify_batch} call. Structural
    failures and pinpointed signature failures are reported per item;
    the result array is positional. *)

(** {2 End-to-end drivers} *)

val local_attest :
  Sm.t ->
  verifier:int ->
  prover:int ->
  expected:string ->
  (bool, Api_error.t) result
(** Fig. 6: enclave [verifier] attests enclave [prover]; returns whether
    the measurement tag matched [expected]. The message content is a
    fixed challenge. *)

type remote_session = {
  session_key_verifier : string;
  session_key_enclave : string;
  verdict : (unit, string) result;
}

val run_remote_attestation :
  Sm.t ->
  rng:Sanctorum_crypto.Drbg.t ->
  eid:int ->
  es_eid:int ->
  expected_measurement:string ->
  remote_session
(** Fig. 7 end to end: key agreement, nonce, signing-enclave round trip,
    verification. Both derived session keys are returned so callers can
    confirm the channel agrees ([session_key_verifier =
    session_key_enclave]). *)
