module Crypto = Sanctorum_crypto

(* The context records the transcript (tag headers and content strings,
   in order) instead of absorbing eagerly. Finalize either hashes the
   parts — multi-chunk, so page contents are absorbed in place with no
   throwaway per-page concatenation — or, through a cache, skips the
   SHA3 sweep entirely when the exact transcript has been measured
   before (measure once, bind many). *)

type t = { mutable parts : string list; mutable finalized : bool }

module Cache = struct
  (* Keyed by the full transcript bytes: a hit requires structural
     string equality, so two different images can never alias — the
     invalidation story is simply "any differing byte is a different
     key". Bounded by wholesale flush; the working set of a churn-style
     workload (a few hundred distinct images) fits comfortably. *)
  type cache = {
    tbl : (string, string) Hashtbl.t;
    capacity : int;
    mutable hits : int;
    mutable misses : int;
  }

  let create ?(capacity = 512) () =
    if capacity <= 0 then invalid_arg "Measurement.Cache.create: capacity";
    { tbl = Hashtbl.create 64; capacity; hits = 0; misses = 0 }

  let hits c = c.hits
  let misses c = c.misses
  let entries c = Hashtbl.length c.tbl
end

let size = 32
let start () = { parts = []; finalized = false }

let push t s = t.parts <- s :: t.parts

let u64 v = Sanctorum_util.Bytesx.of_int64_le v
let int v = u64 (Int64.of_int v)

let extend_create t ~evbase ~evsize ~mailbox_count =
  push t ("enclave-create" ^ int evbase ^ int evsize ^ int mailbox_count)

let extend_page_table t ~vaddr ~level =
  push t ("enclave-page-table" ^ int vaddr ^ int level)

let extend_page t ~vaddr ~r ~w ~x ~contents =
  let flag b = if b then "1" else "0" in
  push t ("enclave-page" ^ int vaddr ^ flag r ^ flag w ^ flag x);
  push t contents

let extend_shared t ~vaddr ~len =
  push t ("enclave-shared" ^ int vaddr ^ int len)

let extend_thread t ~entry_pc ~entry_sp =
  push t ("enclave-thread" ^ u64 entry_pc ^ u64 entry_sp)

let digest parts =
  let ctx = Crypto.Sha3.init_sha3_256 () in
  List.iter (Crypto.Sha3.absorb ctx) parts;
  Crypto.Sha3.finalize ctx ~len:size

let finalize ?cache t =
  if t.finalized then invalid_arg "Measurement.finalize: already finalized";
  t.finalized <- true;
  let parts = List.rev t.parts in
  t.parts <- [];
  match cache with
  | None -> digest parts
  | Some c -> begin
      let key = String.concat "" parts in
      match Hashtbl.find_opt c.Cache.tbl key with
      | Some d ->
          c.Cache.hits <- c.Cache.hits + 1;
          d
      | None ->
          c.Cache.misses <- c.Cache.misses + 1;
          let d = Crypto.Sha3.sha3_256 key in
          if Hashtbl.length c.Cache.tbl >= c.Cache.capacity then
            Hashtbl.reset c.Cache.tbl;
          Hashtbl.add c.Cache.tbl key d;
          d
    end
