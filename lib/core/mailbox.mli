(** Trusted message passing for local attestation (paper §VI-B, Fig. 5).

    Each enclave owns a fixed set of mailboxes in monitor memory. A
    recipient must first declare the sender it is willing to hear from
    ([accept]) — this is the anti-denial-of-service rule — after which a
    single message from that exact sender can be deposited ([deposit])
    and retrieved ([retrieve]) together with the sender's measurement,
    which the monitor itself records and which therefore cannot be
    forged. *)

type sender = From_os | From_enclave of int  (** eid *)

type t

val message_size : int
(** Fixed message size in bytes (shorter messages are zero-padded). *)

val create : slots:int -> t

val slots : t -> int

val accept : t -> sender:sender -> unit Api_error.result
(** Ready a free mailbox slot for [sender]. Re-accepting the same sender
    resets its (possibly full) slot to empty. *)

val deposit :
  t -> sender:sender -> sender_measurement:string -> msg:string ->
  unit Api_error.result
(** Fails with [Invalid_state] unless the recipient accepted this sender
    and the slot is empty (Fig. 5: only [empty --send_mail--> full]). *)

val retrieve : t -> sender:sender -> (string * string) Api_error.result
(** [(message, sender_measurement)]; the slot returns to the
    unaccepted pool. *)

val wipe : t -> unit
(** Drop all state (enclave deletion). *)

val snapshot : t -> (sender * bool) list
(** The accepted slots in slot order as [(sender, full)] pairs —
    the semantic mailbox state (Fig. 5), without the cumulative
    operation counters of {!stats}. Read-only. *)

val stats : t -> int * int * int
(** [(deposited, retrieved, rejected)] operation counts since
    creation. [rejected] counts failed deposits (unaccepted sender,
    full slot, oversized message). *)

val equal_sender : sender -> sender -> bool
val pp_sender : Format.formatter -> sender -> unit
