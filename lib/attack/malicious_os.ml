module Hw = Sanctorum_hw
module Os = Sanctorum_os.Os

type probe_result = Denied | Leaked of int64

(* Run a short OS-level program with bare (physical) addressing: the
   probe instruction stream itself lives in OS-owned staging memory, so
   only the probed access can fault. *)
let run_bare os ~core ~program =
  let machine = Os.machine os in
  let c = Hw.Machine.core machine core in
  let code = Hw.Isa.encode_program program in
  let code_paddr = Os.alloc_staging os ~bytes:(String.length code) in
  Os.os_write os ~paddr:code_paddr code;
  Os.clear_delegated_events os;
  Hw.Machine.reset_core_state c;
  c.Hw.Machine.satp_root <- None;
  c.Hw.Machine.pc <- Int64.of_int code_paddr;
  c.Hw.Machine.halted <- false;
  let _ = Hw.Machine.run machine ~core ~fuel:64 in
  let events = Os.delegated_events os in
  let a0 = Hw.Machine.read_reg c Hw.Isa.a0 in
  (events, a0)

let faulted events =
  List.exists
    (function
      | Hw.Trap.Exception (Hw.Trap.Access_fault _)
      | Hw.Trap.Exception (Hw.Trap.Page_fault _) ->
          true
      | Hw.Trap.Exception _ | Hw.Trap.Interrupt _ -> false)
    events

let os_load os ~core ~paddr =
  let open Hw.Isa in
  let program = li t0 paddr @ [ Load (Ld, a0, t0, 0); Ecall ] in
  let events, a0 = run_bare os ~core ~program in
  if faulted events then Denied else Leaked a0

let os_store os ~core ~paddr ~value =
  let open Hw.Isa in
  (* 64-bit immediates do not fit [li]; materialize via two words. *)
  let lo = Int64.to_int (Int64.logand value 0xffffL) in
  let program =
    li t0 paddr @ li t1 lo @ [ Store (Sd, t1, t0, 0); Ecall ]
  in
  let events, _ = run_bare os ~core ~program in
  if faulted events then `Denied else `Stored

let os_execute os ~core ~paddr =
  let open Hw.Isa in
  let program = li t0 paddr @ [ Jalr (ra, t0, 0) ] in
  let events, _ = run_bare os ~core ~program in
  if faulted events then `Denied else `Executed

let dma_read os ~paddr ~len =
  match Hw.Machine.dma_read (Os.machine os) ~paddr ~len with
  | Ok data -> `Leaked data
  | Error _ -> `Denied

let dma_write os ~paddr ~data =
  match Hw.Machine.dma_write (Os.machine os) ~paddr data with
  | Ok () -> `Stored
  | Error _ -> `Denied

let relax_protections os ~eid =
  (* Model a buggy or subverted isolation primitive: the enclave's
     first memory unit silently reverts to the untrusted domain while
     the monitor's metadata still records it as enclave-owned. The
     probes above then leak, and the analysis layer's ownership
     invariant must flag the divergence. *)
  let sm = Os.sm os in
  match Sanctorum.Sm.enclave_domain sm ~eid with
  | Error _ -> false
  | Ok domain ->
      let pf = Sanctorum.Sm.platform sm in
      let unit_bytes = Sanctorum.Sm.memory_unit_bytes sm in
      let ranges = pf.Sanctorum_platform.Platform.ranges_of_domain domain in
      (match ranges with
      | [] -> false
      | (lo, _) :: _ ->
          let lo = lo - (lo mod unit_bytes) in
          Result.is_ok
            (pf.Sanctorum_platform.Platform.assign_range ~lo
               ~hi:(lo + unit_bytes) Hw.Trap.domain_untrusted))

let enclave_paddrs os ~eid =
  let sm = Os.sm os in
  match Sanctorum.Sm.enclave_domain sm ~eid with
  | Error _ -> []
  | Ok domain ->
      let pf = Sanctorum.Sm.platform sm in
      List.concat_map
        (fun (lo, hi) ->
          List.init ((hi - lo) / Hw.Phys_mem.page_size) (fun i ->
              lo + (i * Hw.Phys_mem.page_size)))
        (pf.Sanctorum_platform.Platform.ranges_of_domain domain)
