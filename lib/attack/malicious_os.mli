(** Direct attacks by the privileged software adversary of the threat
    model (§IV): OS code trying to reach enclave state through loads,
    stores, instruction fetch, and DMA. Every probe here must be stopped
    by the hardware isolation primitive, not by monitor software. *)

type probe_result = Denied | Leaked of int64

val os_load : Sanctorum_os.Os.t -> core:int -> paddr:int -> probe_result
(** Run an OS-level user program (bare addressing, untrusted domain)
    that loads 8 bytes from [paddr]. *)

val os_store : Sanctorum_os.Os.t -> core:int -> paddr:int -> value:int64 ->
  [ `Denied | `Stored ]

val os_execute : Sanctorum_os.Os.t -> core:int -> paddr:int ->
  [ `Denied | `Executed ]
(** Jump into [paddr] — e.g. to run enclave code with OS data. *)

val dma_read : Sanctorum_os.Os.t -> paddr:int -> len:int ->
  [ `Denied | `Leaked of string ]
(** A malicious device's DMA read (§IV-B1). *)

val dma_write : Sanctorum_os.Os.t -> paddr:int -> data:string ->
  [ `Denied | `Stored ]

val relax_protections : Sanctorum_os.Os.t -> eid:int -> bool
(** Model a subverted isolation primitive: silently revert the
    enclave's first memory unit to the untrusted domain behind the
    monitor's back. Afterwards {!os_load} leaks where it was denied,
    and the [Sanctorum_analysis] checker must report the
    [own.exclusive] divergence. Returns [false] if the enclave owns no
    memory. *)

val enclave_paddrs : Sanctorum_os.Os.t -> eid:int -> int list
(** Physical pages currently owned by the enclave's domain — what the
    OS (which allocated them) knows to aim at. *)
