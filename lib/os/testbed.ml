module Hw = Sanctorum_hw
module Pf = Sanctorum_platform
module Crypto = Sanctorum_crypto

type backend = Sanctum_backend | Keystone_backend

type t = {
  platform : Pf.Platform.t;
  machine : Hw.Machine.t;
  sm : Sanctorum.Sm.t;
  os : Os.t;
  rng : Crypto.Drbg.t;
  seed : string;
}

let backend_name = function
  | Sanctum_backend -> "sanctum"
  | Keystone_backend -> "keystone"

let create ?(backend = Sanctum_backend) ?(cores = 4)
    ?(mem_bytes = 16 * 1024 * 1024) ?l2 ?pmp_entries ?(seed = "testbed") ?sink
    () =
  let base = Hw.Machine.default_config in
  let l2 = Option.value ~default:base.Hw.Machine.l2 l2 in
  let pmp_entries =
    Option.value ~default:base.Hw.Machine.pmp_entries pmp_entries
  in
  let machine =
    Hw.Machine.create { base with cores; mem_bytes; l2; pmp_entries }
  in
  let platform =
    match backend with
    | Sanctum_backend -> Pf.Sanctum.create machine
    | Keystone_backend -> Pf.Keystone.create machine
  in
  let root = Sanctorum.Boot.manufacturer_root ~seed in
  let identity =
    Sanctorum.Boot.perform ~root ~device_secret:("device-secret-" ^ seed)
      ~sm_binary:Sanctorum.Sm.binary_image
  in
  let sm =
    Sanctorum.Sm.boot ~platform ~identity
      ~signing_enclave_measurement:
        Sanctorum.Attestation.signing_expected_measurement
  in
  (* Attach before the OS model runs so even the first API calls land
     in the trace. *)
  (match sink with
  | Some s -> Sanctorum.Sm.set_sink sm s
  | None -> ());
  let os = Os.create sm in
  { platform; machine; sm; os; rng = Crypto.Drbg.create ~seed; seed }

let install_signing_enclave t =
  Os.install_enclave t.os Sanctorum.Attestation.signing_image

(* ------------------------------------------------------------------ *)
(* Fault injection for the analysis layer's negative tests: each
   helper breaks exactly one protection the monitor normally keeps, so
   tests can prove the corresponding checker invariant fires. *)

let page = Hw.Phys_mem.page_size

let corrupt_owner_map t ~rid =
  let unit_bytes = Sanctorum.Sm.memory_unit_bytes t.sm in
  let lo = rid * unit_bytes in
  ignore
    (t.platform.Pf.Platform.assign_range ~lo ~hi:(lo + unit_bytes) 77)

let leak_lock t ~eid = ignore (Sanctorum.Sm.try_lock_enclave t.sm ~eid)

let skip_flush t ~eid =
  (* Re-create what a missed shootdown leaves behind: core 0 (in
     untrusted context) keeps a translation and a private cache line
     for a frame the enclave's domain owns. *)
  match Sanctorum.Sm.enclave_info t.sm ~eid with
  | None -> ()
  | Some info -> (
      match t.platform.Pf.Platform.ranges_of_domain info.i_domain with
      | [] -> ()
      | (lo, _) :: _ ->
          let c = Hw.Machine.core t.machine 0 in
          Hw.Tlb.insert c.Hw.Machine.tlb ~vpn:(lo / page) ~ppn:(lo / page)
            ~perms:{ Hw.Tlb.r = true; w = false; x = false; u = true };
          ignore (Hw.Cache.access c.Hw.Machine.l1 ~paddr:lo))

(* Overwrite the level-0 PTE for [vpn] so it points at [ppn]. *)
let rewrite_leaf t ~root ~vpn ~ppn =
  let mem = Hw.Machine.mem t.machine in
  let rec leaf_table table level =
    if level = 0 then Some table
    else
      let idx = (vpn lsr (9 * level)) land 511 in
      let pte =
        Hw.Phys_mem.read_u64 mem (Hw.Phys_mem.page_base table + (idx * 8))
      in
      match Hw.Page_table.decode_pte pte with
      | Ok (child, _, false) -> leaf_table child (level - 1)
      | Ok _ | Error () -> None
  in
  match leaf_table root (Hw.Page_table.levels - 1) with
  | None -> ()
  | Some table ->
      let idx = vpn land 511 in
      Hw.Phys_mem.write_u64 mem
        (Hw.Phys_mem.page_base table + (idx * 8))
        (Hw.Page_table.encode_pte ~ppn
           ~perms:{ Hw.Page_table.r = true; w = true; x = false; u = true }
           ~valid:true)

let corrupt_page_table t ~eid =
  match Sanctorum.Sm.enclave_info t.sm ~eid with
  | Some { i_root_ppn = Some root; i_mappings = (vpn, _) :: _; _ } ->
      (* point an evrange mapping at frame 0 — monitor memory *)
      rewrite_leaf t ~root ~vpn ~ppn:0
  | Some _ | None -> ()

let alias_page_table t ~eid =
  match Sanctorum.Sm.enclave_info t.sm ~eid with
  | Some
      { i_root_ppn = Some root; i_mappings = (_, ppn1) :: (vpn2, _) :: _; _ }
    ->
      rewrite_leaf t ~root ~vpn:vpn2 ~ppn:ppn1
  | Some _ | None -> ()

let corrupt_core_domain t ~core =
  let c = Hw.Machine.core t.machine core in
  c.Hw.Machine.domain <- 999
