module Hw = Sanctorum_hw
module Pf = Sanctorum_platform
module Crypto = Sanctorum_crypto

type backend = Sanctum_backend | Keystone_backend

type t = {
  platform : Pf.Platform.t;
  machine : Hw.Machine.t;
  sm : Sanctorum.Sm.t;
  os : Os.t;
  rng : Crypto.Drbg.t;
}

let backend_name = function
  | Sanctum_backend -> "sanctum"
  | Keystone_backend -> "keystone"

let create ?(backend = Sanctum_backend) ?(cores = 4)
    ?(mem_bytes = 16 * 1024 * 1024) ?l2 ?(seed = "testbed") ?sink () =
  let base = Hw.Machine.default_config in
  let l2 = Option.value ~default:base.Hw.Machine.l2 l2 in
  let machine = Hw.Machine.create { base with cores; mem_bytes; l2 } in
  let platform =
    match backend with
    | Sanctum_backend -> Pf.Sanctum.create machine
    | Keystone_backend -> Pf.Keystone.create machine
  in
  let root = Sanctorum.Boot.manufacturer_root ~seed in
  let identity =
    Sanctorum.Boot.perform ~root ~device_secret:("device-secret-" ^ seed)
      ~sm_binary:Sanctorum.Sm.binary_image
  in
  let sm =
    Sanctorum.Sm.boot ~platform ~identity
      ~signing_enclave_measurement:
        Sanctorum.Attestation.signing_expected_measurement
  in
  (* Attach before the OS model runs so even the first API calls land
     in the trace. *)
  (match sink with
  | Some s -> Sanctorum.Sm.set_sink sm s
  | None -> ());
  let os = Os.create sm in
  { platform; machine; sm; os; rng = Crypto.Drbg.create ~seed }

let install_signing_enclave t =
  Os.install_enclave t.os Sanctorum.Attestation.signing_image
