module Hw = Sanctorum_hw
module Pf = Sanctorum_platform

type run_outcome =
  | Exited
  | Preempted
  | Faulted of Hw.Trap.cause
  | Fuel_exhausted
  | Killed

type installed = {
  eid : int;
  tids : int list;
  shared_paddrs : (int * int * int) list;
}

type t = {
  sm : Sanctorum.Sm.t;
  machine : Hw.Machine.t;
  mutable staging_next : int;
  staging_limit : int;
  pool_first_unit : int;
  unit_free : bool array; (* indexed from pool_first_unit *)
  mutable metadata_next : int;
  mutable free_enclave_slots : int list;
  mutable free_thread_slots : int list;
  mutable scratch_page : int option; (* staging page reused for loads *)
  mutable events : Hw.Trap.cause list; (* newest first *)
  granted : (int, int list) Hashtbl.t; (* eid -> units *)
  thread_table : (int, int list) Hashtbl.t; (* eid -> tids *)
}

let ( let* ) = Result.bind
let page = Hw.Phys_mem.page_size

(* Monitor calls can abort with [Concurrent_call] when a fine-grained
   lock is held (§V-A): the documented protocol is simply to retry the
   transaction. The driver retries a bounded number of times so a lock
   leaked by a fault cannot spin the OS forever. *)
let transient_retries = 4

let retry_transient f =
  let rec go n =
    match f () with
    | Error Sanctorum.Api_error.Concurrent_call when n > 0 -> go (n - 1)
    | r -> r
  in
  go transient_retries

(* The OS heap: memory above the monitor's reservation that the OS
   keeps for itself (staging buffers, its own page tables, shared
   windows). Never granted to enclaves. *)
let os_heap_base = Pf.Platform.sm_memory_bytes
let os_heap_bytes = 512 * 1024

let create sm =
  let machine = Sanctorum.Sm.machine sm in
  let unit_bytes = Sanctorum.Sm.memory_unit_bytes sm in
  let pool_base = os_heap_base + os_heap_bytes in
  let pool_first_unit = (pool_base + unit_bytes - 1) / unit_bytes in
  let total_units = Sanctorum.Sm.memory_units sm in
  let t =
    {
      sm;
      machine;
      staging_next = os_heap_base;
      staging_limit = pool_base;
      pool_first_unit;
      unit_free = Array.make (max 0 (total_units - pool_first_unit)) true;
      metadata_next = Sanctorum.Sm.metadata_base sm;
      free_enclave_slots = [];
      free_thread_slots = [];
      scratch_page = None;
      events = [];
      granted = Hashtbl.create 8;
      thread_table = Hashtbl.create 8;
    }
  in
  Sanctorum.Sm.set_os_trap_handler sm (fun core cause ->
      t.events <- cause :: t.events;
      (* The OS's handler runs natively: park the core so control
         returns to the scheduler loop. *)
      core.Hw.Machine.halted <- true);
  t

let sm t = t.sm
let machine t = t.machine
let unit_bytes t = Sanctorum.Sm.memory_unit_bytes t.sm

let delegated_events t = List.rev t.events
let clear_delegated_events t = t.events <- []

(* --------------------------------------------------------------- *)
(* Allocation *)

let alloc_metadata t kind =
  let pop_free () =
    match kind with
    | `Enclave -> begin
        match t.free_enclave_slots with
        | a :: rest ->
            t.free_enclave_slots <- rest;
            Some a
        | [] -> None
      end
    | `Thread -> begin
        match t.free_thread_slots with
        | a :: rest ->
            t.free_thread_slots <- rest;
            Some a
        | [] -> None
      end
  in
  match pop_free () with
  | Some addr -> addr
  | None ->
      let size =
        match kind with
        | `Enclave -> Sanctorum.Sm.enclave_slot_bytes
        | `Thread -> Sanctorum.Sm.thread_slot_bytes
      in
      let addr = Sanctorum_util.Bits.align_up t.metadata_next 8 in
      if addr + size > Sanctorum.Sm.metadata_limit t.sm then raise Out_of_memory
      else begin
        t.metadata_next <- addr + size;
        addr
      end

let release_metadata t kind addr =
  match kind with
  | `Enclave -> t.free_enclave_slots <- addr :: t.free_enclave_slots
  | `Thread -> t.free_thread_slots <- addr :: t.free_thread_slots

let alloc_staging t ~bytes =
  let addr = Sanctorum_util.Bits.align_up t.staging_next page in
  let len = Sanctorum_util.Bits.align_up (max bytes 1) page in
  if addr + len > t.staging_limit then raise Out_of_memory
  else begin
    t.staging_next <- addr + len;
    addr
  end

let alloc_units t ~count =
  if count <= 0 then invalid_arg "Os.alloc_units: count must be positive";
  let n = Array.length t.unit_free in
  let rec find start =
    if start + count > n then raise Out_of_memory
    else begin
      let rec all_free i = i = count || (t.unit_free.(start + i) && all_free (i + 1)) in
      if all_free 0 then start else find (start + 1)
    end
  in
  let start = find 0 in
  List.init count (fun i ->
      t.unit_free.(start + i) <- false;
      t.pool_first_unit + start + i)

let free_units t units =
  List.iter
    (fun rid ->
      let i = rid - t.pool_first_unit in
      if i >= 0 && i < Array.length t.unit_free then t.unit_free.(i) <- true)
    units

let free_unit_count t =
  Array.fold_left (fun acc free -> if free then acc + 1 else acc) 0 t.unit_free

(* Untrusted memory access helper: the native OS only ever touches
   memory it owns (the machine would fault anything else anyway). *)
let os_owned t ~paddr =
  (Sanctorum.Sm.platform t.sm).Pf.Platform.owner_at ~paddr = Hw.Trap.domain_untrusted

let os_write t ~paddr data =
  assert (os_owned t ~paddr);
  Hw.Phys_mem.write_string (Hw.Machine.mem t.machine) ~pos:paddr data

let os_read t ~paddr ~len =
  assert (os_owned t ~paddr);
  Hw.Phys_mem.read_string (Hw.Machine.mem t.machine) ~pos:paddr ~len

(* --------------------------------------------------------------- *)
(* Enclave installation: the OS decides placement; the monitor checks. *)

let pad_page contents = contents ^ String.make (page - String.length contents) '\000'

let install_enclave t (image : Sanctorum.Image.t) =
  let eid = alloc_metadata t `Enclave in
  let* () =
    Sanctorum.Sm.create_enclave t.sm ~caller:Sanctorum.Sm.Os ~eid ~evbase:image.Sanctorum.Image.evbase
      ~evsize:image.Sanctorum.Image.evsize ~mailbox_slots:image.Sanctorum.Image.mailbox_slots ()
  in
  (* Fig. 2 round trip for each unit: block (we own it), clean, grant. *)
  let ub = unit_bytes t in
  let units_needed = ((Sanctorum.Image.page_count image * page) + ub - 1) / ub in
  let units = alloc_units t ~count:units_needed in
  Hashtbl.replace t.granted eid units;
  let rec grant_all = function
    | [] -> Ok ()
    | rid :: rest ->
        let* () =
          retry_transient (fun () ->
              Sanctorum.Sm.block_resource t.sm ~caller:Sanctorum.Sm.Os Sanctorum.Resource.Memory_resource ~rid)
        in
        let* () =
          retry_transient (fun () ->
              Sanctorum.Sm.clean_resource t.sm ~caller:Sanctorum.Sm.Os Sanctorum.Resource.Memory_resource ~rid)
        in
        let* () =
          retry_transient (fun () ->
              Sanctorum.Sm.grant_resource t.sm ~caller:Sanctorum.Sm.Os Sanctorum.Resource.Memory_resource ~rid
                ~to_:(Sanctorum.Sm.To_enclave eid))
        in
        grant_all rest
  in
  let* () = grant_all units in
  let rec tables = function
    | [] -> Ok ()
    | (vaddr, level) :: rest ->
        let* () = Sanctorum.Sm.allocate_page_table t.sm ~caller:Sanctorum.Sm.Os ~eid ~vaddr ~level in
        tables rest
  in
  let* () = tables (Sanctorum.Image.required_page_tables image) in
  let staging =
    match t.scratch_page with
    | Some p -> p
    | None ->
        let p = alloc_staging t ~bytes:page in
        t.scratch_page <- Some p;
        p
  in
  let rec pages = function
    | [] -> Ok ()
    | (p : Sanctorum.Image.page) :: rest ->
        os_write t ~paddr:staging (pad_page p.Sanctorum.Image.contents);
        let* () =
          Sanctorum.Sm.load_page t.sm ~caller:Sanctorum.Sm.Os ~eid ~vaddr:p.Sanctorum.Image.vaddr
            ~src_paddr:staging ~r:p.Sanctorum.Image.r ~w:p.Sanctorum.Image.w ~x:p.Sanctorum.Image.x
        in
        pages rest
  in
  let* () = pages image.Sanctorum.Image.pages in
  let rec shared acc = function
    | [] -> Ok (List.rev acc)
    | (vaddr, len) :: rest ->
        let src = alloc_staging t ~bytes:len in
        let* () =
          Sanctorum.Sm.map_shared t.sm ~caller:Sanctorum.Sm.Os ~eid ~vaddr ~src_paddr:src ~len
        in
        shared ((vaddr, src, len) :: acc) rest
  in
  let* shared_paddrs = shared [] image.Sanctorum.Image.shared in
  let rec threads acc = function
    | [] -> Ok (List.rev acc)
    | (entry_pc, entry_sp) :: rest ->
        let tid = alloc_metadata t `Thread in
        let* () =
          Sanctorum.Sm.load_thread t.sm ~caller:Sanctorum.Sm.Os ~eid ~tid ~entry_pc ~entry_sp
        in
        threads (tid :: acc) rest
  in
  let* tids = threads [] image.Sanctorum.Image.threads in
  let* () = Sanctorum.Sm.init_enclave t.sm ~caller:Sanctorum.Sm.Os ~eid in
  Hashtbl.replace t.thread_table eid tids;
  Ok { eid; tids; shared_paddrs }

let reclaim_enclave t ~eid =
  let* () =
    match
      retry_transient (fun () ->
          Sanctorum.Sm.delete_enclave t.sm ~caller:Sanctorum.Sm.Os ~eid)
    with
    | Ok () -> Ok ()
    | Error _ when not (List.mem eid (Sanctorum.Sm.enclaves t.sm)) ->
        (* The monitor already tore the enclave down (emergency reclaim
           after a machine check). Its units are blocked and waiting for
           the cleaning below, so reclamation proceeds as usual. *)
        Ok ()
    | Error e -> Error e
  in
  let units = Option.value ~default:[] (Hashtbl.find_opt t.granted eid) in
  let rec reclaim = function
    | [] -> Ok ()
    | rid :: rest ->
        let* () =
          retry_transient (fun () ->
              Sanctorum.Sm.clean_resource t.sm ~caller:Sanctorum.Sm.Os Sanctorum.Resource.Memory_resource ~rid)
        in
        let* () =
          retry_transient (fun () ->
              Sanctorum.Sm.grant_resource t.sm ~caller:Sanctorum.Sm.Os Sanctorum.Resource.Memory_resource ~rid
                ~to_:Sanctorum.Sm.To_os)
        in
        reclaim rest
  in
  let* () = reclaim units in
  Hashtbl.remove t.granted eid;
  free_units t units;
  (* Recycle metadata: the dead enclave's threads became available. *)
  List.iter
    (fun tid ->
      match Sanctorum.Sm.delete_thread t.sm ~caller:Sanctorum.Sm.Os ~tid with
      | Ok () -> release_metadata t `Thread tid
      | Error _ -> ())
    (Option.value ~default:[] (Hashtbl.find_opt t.thread_table eid));
  Hashtbl.remove t.thread_table eid;
  release_metadata t `Enclave eid;
  Ok ()

(* --------------------------------------------------------------- *)
(* Scheduling *)

let classify_outcome t ~events_before ~tid ~core =
  let new_events =
    let rec take n l = if n <= 0 then [] else match l with [] -> [] | x :: r -> x :: take (n - 1) r in
    take (List.length t.events - events_before) t.events
  in
  if (Hw.Machine.core t.machine core).Hw.Machine.quarantined then Killed
  else
  match Sanctorum.Sm.thread_state t.sm ~tid with
  | Ok (`Running _) -> Fuel_exhausted
  | Ok (`Assigned _) | Ok `Available | Error _ -> begin
      match Sanctorum.Sm.thread_has_aex_state t.sm ~tid with
      | Ok true -> begin
          (* An AEX happened: the delegated event says why. *)
          match new_events with
          | Hw.Trap.Interrupt _ :: _ -> Preempted
          | (Hw.Trap.Exception _ as e) :: _ -> Faulted e
          | [] -> Preempted
        end
      | Ok false | Error _ -> Exited
    end

let enter_and_run t ~eid ~tid ~core ~fuel ~quantum =
  let c = Hw.Machine.core t.machine core in
  let events_before = List.length t.events in
  let* () =
    retry_transient (fun () ->
        Sanctorum.Sm.enter_enclave t.sm ~caller:Sanctorum.Sm.Os ~eid ~tid ~core)
  in
  (match quantum with
  | Some q -> c.Hw.Machine.timer_cmp <- Some (c.Hw.Machine.cycles + q)
  | None -> ());
  let _retired = Hw.Machine.run t.machine ~core ~fuel in
  c.Hw.Machine.timer_cmp <- None;
  Ok (classify_outcome t ~events_before ~tid ~core)

let run_enclave t ~eid ~tid ~core ~fuel ?quantum () =
  enter_and_run t ~eid ~tid ~core ~fuel ~quantum

let resume_enclave t ~eid ~tid ~core ~fuel ?quantum () =
  enter_and_run t ~eid ~tid ~core ~fuel ~quantum

(* A dropped preemption tick leaves the thread running when the fuel
   budget runs dry ([Fuel_exhausted] with the core still inside the
   enclave). The OS cannot [enter_enclave] again — the thread never
   exited — so it re-arms the quantum and lets the core continue. *)
let continue_running t ~tid ~core ~fuel ?quantum () =
  let c = Hw.Machine.core t.machine core in
  let events_before = List.length t.events in
  match Sanctorum.Sm.thread_state t.sm ~tid with
  | Ok (`Running (_, rcore)) when rcore = core ->
      (match quantum with
      | Some q -> c.Hw.Machine.timer_cmp <- Some (c.Hw.Machine.cycles + q)
      | None -> ());
      let _retired = Hw.Machine.run t.machine ~core ~fuel in
      c.Hw.Machine.timer_cmp <- None;
      Ok (classify_outcome t ~events_before ~tid ~core)
  | Ok _ | Error _ ->
      Error
        (Sanctorum.Api_error.Invalid_state
           "continue_running: thread is not running on this core")

(* --------------------------------------------------------------- *)
(* Fair multi-enclave scheduling: a round-robin run queue dispatching
   one quantum per live core per round. The scheduler owns only the
   *decision* of who runs where — every entry still goes through the
   monitor's enter/resume checks, so a scheduling mistake surfaces as
   an API error in the slot, never as a hole.

   A thread whose fuel ran dry while still [Running] (a lost timer
   tick) is pinned to its core: the OS cannot re-enter a thread that
   never exited, so the next round continues it in place. Everything
   else rotates freely. *)

module Scheduler = struct
  type job = {
    j_eid : int;
    j_tid : int;
    mutable j_pinned : int option; (* core still Running this thread *)
    mutable j_errors : int; (* consecutive dispatch errors *)
  }

  type slot = {
    s_core : int;
    s_eid : int;
    s_tid : int;
    s_cycles : int; (* simulated cycles this quantum consumed *)
    s_instret : int; (* instructions retired this quantum *)
    s_outcome : (run_outcome, Sanctorum.Api_error.t) result;
  }

  type sched = {
    s_os : t;
    s_cores : int list;
    s_queue : job Queue.t;
    mutable s_pinned : (int * job) list; (* core -> job, small *)
  }

  (* A job erroring this many times in a row is dropped from the
     queue — a livelocked entry must not wedge the whole engine. *)
  let max_errors = 3

  let create os ~cores =
    if cores = [] then invalid_arg "Os.Scheduler.create: no cores";
    { s_os = os; s_cores = cores; s_queue = Queue.create (); s_pinned = [] }

  let enqueue sch ~eid ~tid =
    Queue.add { j_eid = eid; j_tid = tid; j_pinned = None; j_errors = 0 }
      sch.s_queue

  let pending sch = Queue.length sch.s_queue + List.length sch.s_pinned

  let dispatch sch ~core ~fuel ~quantum j =
    let os = sch.s_os in
    match j.j_pinned with
    | Some _ -> continue_running os ~tid:j.j_tid ~core ~fuel ~quantum ()
    | None -> (
        match Sanctorum.Sm.thread_has_aex_state os.sm ~tid:j.j_tid with
        | Ok true ->
            resume_enclave os ~eid:j.j_eid ~tid:j.j_tid ~core ~fuel ~quantum ()
        | Ok false | Error _ ->
            run_enclave os ~eid:j.j_eid ~tid:j.j_tid ~core ~fuel ~quantum ())

  (* One scheduler round: at most one quantum per non-quarantined
     core. Returns the dispatched slots in core order; [Exited],
     [Faulted] and [Killed] jobs leave the queue (the caller decides
     whether to re-[enqueue], reclaim, or park them). *)
  let round sch ~fuel ~quantum =
    let os = sch.s_os in
    let slots = ref [] in
    List.iter
      (fun core ->
        let c = Hw.Machine.core os.machine core in
        if not c.Hw.Machine.quarantined then begin
          let job =
            match List.assoc_opt core sch.s_pinned with
            | Some j ->
                sch.s_pinned <- List.remove_assoc core sch.s_pinned;
                Some j
            | None -> Queue.take_opt sch.s_queue
          in
          match job with
          | None -> ()
          | Some j ->
              let cycles0 = c.Hw.Machine.cycles
              and instret0 = c.Hw.Machine.instret in
              let r = dispatch sch ~core ~fuel ~quantum j in
              (match r with
              | Ok Preempted ->
                  j.j_pinned <- None;
                  j.j_errors <- 0;
                  Queue.add j sch.s_queue
              | Ok Fuel_exhausted ->
                  (* still Running in there: only this core can go on *)
                  j.j_pinned <- Some core;
                  j.j_errors <- 0;
                  sch.s_pinned <- (core, j) :: sch.s_pinned
              | Ok (Exited | Faulted _ | Killed) -> j.j_pinned <- None
              | Error _ ->
                  j.j_errors <- j.j_errors + 1;
                  if j.j_errors < max_errors then Queue.add j sch.s_queue);
              slots :=
                {
                  s_core = core;
                  s_eid = j.j_eid;
                  s_tid = j.j_tid;
                  s_cycles = c.Hw.Machine.cycles - cycles0;
                  s_instret = c.Hw.Machine.instret - instret0;
                  s_outcome = r;
                }
                :: !slots
        end)
      sch.s_cores;
    List.rev !slots

  (* Drive every pinned (still-Running) thread to an architectural
     stop, so reclamation can proceed: a Running thread blocks
     [delete_enclave]. Bounded — a thread that will not stop within
     the budget is left pinned and reported. *)
  let drain sch ~fuel ~quantum =
    let budget = ref 64 in
    while sch.s_pinned <> [] && !budget > 0 do
      decr budget;
      List.iter
        (fun (core, j) ->
          match
            continue_running sch.s_os ~tid:j.j_tid ~core ~fuel ~quantum ()
          with
          | Ok Fuel_exhausted -> ()
          | Ok _ | Error _ ->
              sch.s_pinned <- List.remove_assoc core sch.s_pinned)
        sch.s_pinned
    done;
    sch.s_pinned = []
end

(* --------------------------------------------------------------- *)
(* Untrusted user programs (the baseline protection domain) *)

let untrusted_code_vaddr = 0x400000

let run_untrusted_program t ~code ~core ~fuel ?(data_pages = 1) () =
  let c = Hw.Machine.core t.machine core in
  let mem = Hw.Machine.mem t.machine in
  let encoded = Hw.Isa.encode_program code in
  if String.length encoded > page then
    invalid_arg "Os.run_untrusted_program: program exceeds one page";
  let root = alloc_staging t ~bytes:page / page in
  Hw.Phys_mem.zero_range mem ~pos:(Hw.Phys_mem.page_base root) ~len:page;
  let alloc_table () =
    let ppn = alloc_staging t ~bytes:page / page in
    Hw.Phys_mem.zero_range mem ~pos:(Hw.Phys_mem.page_base ppn) ~len:page;
    ppn
  in
  let map_one ~vaddr ~paddr ~x ~w =
    Hw.Page_table.map mem ~root_ppn:root ~vaddr ~ppn:(paddr / page)
      ~perms:Hw.Page_table.{ r = true; w; x; u = true }
      ~alloc_table
  in
  let code_paddr = alloc_staging t ~bytes:page in
  os_write t ~paddr:code_paddr (pad_page encoded);
  map_one ~vaddr:untrusted_code_vaddr ~paddr:code_paddr ~x:true ~w:false;
  for i = 0 to data_pages - 1 do
    let p = alloc_staging t ~bytes:page in
    map_one
      ~vaddr:(untrusted_code_vaddr + ((i + 1) * page))
      ~paddr:p ~x:false ~w:true
  done;
  let events_before = List.length t.events in
  Hw.Machine.reset_core_state c;
  (* Installing a new address space invalidates prior translations. *)
  Hw.Tlb.flush c.Hw.Machine.tlb;
  c.Hw.Machine.satp_root <- Some root;
  c.Hw.Machine.pc <- Int64.of_int untrusted_code_vaddr;
  Hw.Machine.write_reg c Hw.Isa.sp
    (Int64.of_int (untrusted_code_vaddr + ((data_pages + 1) * page) - 16));
  c.Hw.Machine.halted <- false;
  let _ = Hw.Machine.run t.machine ~core ~fuel in
  let a0 = Hw.Machine.read_reg c Hw.Isa.a0 in
  let outcome =
    if not c.Hw.Machine.halted then Fuel_exhausted
    else begin
      let new_count = List.length t.events - events_before in
      let rec nth_new l n = match (l, n) with x :: _, 0 -> Some x | _ :: r, n -> nth_new r (n - 1) | [], _ -> None in
      match if new_count > 0 then nth_new t.events 0 else None with
      | Some (Hw.Trap.Exception Hw.Trap.Ecall_user) -> Exited
      | Some (Hw.Trap.Interrupt _) -> Preempted
      | Some e -> Faulted e
      | None -> Exited
    end
  in
  c.Hw.Machine.satp_root <- None;
  (outcome, a0)
