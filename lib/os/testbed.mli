(** One-call bring-up of the whole stack — machine, platform backend,
    secure boot, monitor, OS — shared by the examples, tests and
    benchmarks. *)

type backend = Sanctum_backend | Keystone_backend

type t = {
  platform : Sanctorum_platform.Platform.t;
  machine : Sanctorum_hw.Machine.t;
  sm : Sanctorum.Sm.t;
  os : Os.t;
  rng : Sanctorum_crypto.Drbg.t;  (** deterministic per [seed] *)
}

val create :
  ?backend:backend ->
  ?cores:int ->
  ?mem_bytes:int ->
  ?l2:Sanctorum_hw.Cache.config ->
  ?seed:string ->
  ?sink:Sanctorum_telemetry.Sink.t ->
  unit ->
  t
(** Defaults: Sanctum backend, 4 cores, 16 MiB of memory, seed
    "testbed". The manufacturer root, device secret and DRBG are all
    derived from [seed], so runs are reproducible. [sink], when given,
    is attached to the monitor and machine before the OS model issues
    its first API call. *)

val backend_name : backend -> string

val install_signing_enclave : t -> (Os.installed, Sanctorum.Api_error.t) result
(** Load the canonical signing enclave (§VI-C); its measurement matches
    the constant the monitor was booted with. *)
