(** One-call bring-up of the whole stack — machine, platform backend,
    secure boot, monitor, OS — shared by the examples, tests and
    benchmarks. *)

type backend = Sanctum_backend | Keystone_backend

type t = {
  platform : Sanctorum_platform.Platform.t;
  machine : Sanctorum_hw.Machine.t;
  sm : Sanctorum.Sm.t;
  os : Os.t;
  rng : Sanctorum_crypto.Drbg.t;  (** deterministic per [seed] *)
  seed : string;
      (** the seed this testbed was created with — print it on every
          failure so the run can be reproduced from the log line *)
}

val create :
  ?backend:backend ->
  ?cores:int ->
  ?mem_bytes:int ->
  ?l2:Sanctorum_hw.Cache.config ->
  ?pmp_entries:int ->
  ?seed:string ->
  ?sink:Sanctorum_telemetry.Sink.t ->
  unit ->
  t
(** Defaults: Sanctum backend, 4 cores, 16 MiB of memory, seed
    "testbed". The manufacturer root, device secret and DRBG are all
    derived from [seed], so runs are reproducible. [sink], when given,
    is attached to the monitor and machine before the OS model issues
    its first API call. *)

val backend_name : backend -> string

val install_signing_enclave : t -> (Os.installed, Sanctorum.Api_error.t) result
(** Load the canonical signing enclave (§VI-C); its measurement matches
    the constant the monitor was booted with. *)

(** {2 Fault injection}

    Each helper breaks exactly one protection the monitor normally
    maintains, so the negative tests in [test/] can prove that the
    corresponding [Sanctorum_analysis] invariant actually fires. They
    bypass the API surface entirely — none of these states is
    reachable by software running on the machine. *)

val corrupt_owner_map : t -> rid:int -> unit
(** Hand memory unit [rid]'s hardware range to a domain the resource
    state machine has never heard of ([own.exclusive]). *)

val leak_lock : t -> eid:int -> unit
(** Take the enclave's metadata lock and never release it
    ([lock.quiescent], and [lock.leak] in traces). *)

val skip_flush : t -> eid:int -> unit
(** Simulate a missed shootdown: plant a TLB entry and an L1 line for
    an enclave-owned frame on core 0 in untrusted context
    ([tlb.no-stale], [cache.no-residue]). *)

val corrupt_page_table : t -> eid:int -> unit
(** Rewrite one of the enclave's leaf PTEs to reach monitor memory
    ([pt.confined]). *)

val alias_page_table : t -> eid:int -> unit
(** Point two enclave virtual pages at the same physical frame
    ([pt.no-alias]). Needs an enclave with at least two mapped pages. *)

val corrupt_core_domain : t -> core:int -> unit
(** Load a dead protection domain into a core's domain register
    ([core.domain]). *)
