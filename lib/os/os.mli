(** The untrusted operating system model.

    The OS makes every resource-management {e decision} — which metadata
    addresses, which memory units, which core, when to preempt — and the
    monitor merely verifies them. Nothing in this library is trusted;
    the isolation experiments drive deliberately malicious variants of
    it ({!Sanctorum_attack}). *)

type t

type run_outcome =
  | Exited  (** the enclave called exit_enclave *)
  | Preempted  (** a timer interrupt forced an AEX *)
  | Faulted of Sanctorum_hw.Trap.cause  (** AEX caused by an exception *)
  | Fuel_exhausted
  | Killed
      (** the core was quarantined mid-run (machine check or shootdown
          timeout): the computation is lost, nothing leaked *)

type installed = {
  eid : int;
  tids : int list;
  shared_paddrs : (int * int * int) list;
      (** (vaddr, paddr, len): where each shared window of the image
          landed in untrusted memory *)
}

val create : Sanctorum.Sm.t -> t
(** Boot the OS on a monitored machine. Installs the OS trap handler
    (receiving the monitor's delegated events) and builds the physical
    allocator over grantable memory. *)

val sm : t -> Sanctorum.Sm.t
val machine : t -> Sanctorum_hw.Machine.t

(** {2 Allocation decisions} *)

val alloc_metadata : t -> [ `Enclave | `Thread ] -> int
(** Pick a fresh metadata address for the monitor to validate. *)

val release_metadata : t -> [ `Enclave | `Thread ] -> int -> unit
(** Recycle a metadata address after the monitor released the slot. *)

val alloc_staging : t -> bytes:int -> int
(** Page-aligned scratch memory in the OS's own (never granted) heap,
    e.g. to stage enclave pages or share buffers with enclaves. *)

val alloc_units : t -> count:int -> int list
(** Reserve [count] grantable memory units, ascending and contiguous.
    Raises [Out_of_memory] if the pool is exhausted. *)

val free_units : t -> int list -> unit

val free_unit_count : t -> int
(** Grantable memory units currently free in the OS pool — the
    reclamation baseline: after every enclave is reclaimed, the count
    must return to its boot value. *)

val unit_bytes : t -> int

val os_write : t -> paddr:int -> string -> unit
(** A native store by OS code into memory it owns (asserts ownership —
    a real OS load/store to foreign memory faults in the machine, which
    the attack suite demonstrates at the ISA level). *)

val os_read : t -> paddr:int -> len:int -> string

(** {2 Enclave management} *)

val install_enclave : t -> Sanctorum.Image.t -> (installed, Sanctorum.Api_error.t) result
(** The full loading sequence of Fig. 3: create, grant memory, allocate
    page tables, load pages, map shared windows, load threads, init.
    Follows the canonical order of {!Sanctorum.Image.measurement}. *)

val reclaim_enclave : t -> eid:int -> unit Sanctorum.Api_error.result
(** delete_enclave followed by cleaning every blocked unit — the Fig. 2
    cycle back to [available] (and re-granting to the OS pool). *)

val run_enclave :
  t -> eid:int -> tid:int -> core:int -> fuel:int -> ?quantum:int -> unit ->
  (run_outcome, Sanctorum.Api_error.t) result
(** enter_enclave then run the core. [quantum] (cycles), when given,
    arms the OS preemption timer. *)

val resume_enclave :
  t -> eid:int -> tid:int -> core:int -> fuel:int -> ?quantum:int -> unit ->
  (run_outcome, Sanctorum.Api_error.t) result
(** Re-enter after an AEX (the enclave sees a0 = 1). *)

val continue_running :
  t -> tid:int -> core:int -> fuel:int -> ?quantum:int -> unit ->
  (run_outcome, Sanctorum.Api_error.t) result
(** Continue a thread that is still [Running] on [core] — the recovery
    path when a dropped timer interrupt let the fuel budget expire
    without an AEX. Re-arms [quantum] and resumes without re-entering. *)

val retry_transient :
  (unit -> 'a Sanctorum.Api_error.result) -> 'a Sanctorum.Api_error.result
(** Run a monitor transaction, retrying a bounded number of times on
    [Concurrent_call] (the only transient error class, §V-A). *)

(** {2 Fair multi-enclave scheduling}

    A round-robin run queue dispatching one quantum per live core per
    round. The scheduler owns only the {e decision} of who runs where;
    every entry still goes through the monitor's enter/resume checks. *)

module Scheduler : sig
  type sched

  type slot = {
    s_core : int;
    s_eid : int;
    s_tid : int;
    s_cycles : int;  (** simulated cycles this quantum consumed *)
    s_instret : int;  (** instructions retired this quantum *)
    s_outcome : (run_outcome, Sanctorum.Api_error.t) result;
  }

  val create : t -> cores:int list -> sched
  (** The cores this scheduler may dispatch on. Quarantined cores are
      skipped automatically at each round. *)

  val enqueue : sched -> eid:int -> tid:int -> unit
  (** Append a runnable thread to the tail of the run queue. *)

  val pending : sched -> int
  (** Jobs still queued or pinned to a core (excludes exited ones). *)

  val round : sched -> fuel:int -> quantum:int -> slot list
  (** One scheduler round: at most one quantum per non-quarantined
      core, in core order. Enter vs resume is chosen by whether the
      thread holds a pending AEX dump; a thread whose fuel ran dry
      while still [Running] (lost timer tick) is pinned to its core
      and continued there next round. [Exited], [Faulted] and
      [Killed] jobs leave the queue — re-[enqueue] to run them again.
      A job erroring 3 times in a row is dropped. *)

  val drain : sched -> fuel:int -> quantum:int -> bool
  (** Drive every pinned (still-Running) thread to an architectural
      stop so reclamation can proceed. [false] if some thread refused
      to stop within the internal budget. *)
end

(** {2 Untrusted programs}

    The OS can also run ordinary user programs in its own protection
    domain — the baseline the enclave experiments compare against. *)

val run_untrusted_program :
  t ->
  code:Sanctorum_hw.Isa.t list ->
  core:int ->
  fuel:int ->
  ?data_pages:int ->
  unit ->
  run_outcome * int64
(** Builds OS page tables in OS memory, runs the program at virtual
    0x400000, returns the outcome and the final a0 value. The program
    signals completion with [ecall] (an OS syscall). *)

val delegated_events : t -> Sanctorum_hw.Trap.cause list
(** Every event the monitor delegated to the OS, oldest first — what a
    (possibly malicious) OS gets to observe. *)

val clear_delegated_events : t -> unit
