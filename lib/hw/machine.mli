(** The simulated multiprocessor: in-order cores, physical memory, a
    per-core L1, a shared L2/LLC, per-core TLB and PMP, timers, and a
    trap funnel.

    Every trap — API ecall, page fault, isolation violation, interrupt —
    lands in a single M-mode handler installed by the security monitor
    (paper Fig. 1). Isolation checks are delegated to hooks installed by
    the platform backend, mirroring how the monitor relies on the
    hardware isolation primitive (§IV-B). *)

type core = {
  id : int;
  regs : int64 array;  (** x0..x31; x0 reads as zero *)
  mutable pc : int64;
  mutable domain : Trap.domain;  (** protection domain now on this core *)
  mutable satp_root : int option;
      (** PPN of the active page-table root; [None] = bare (physical)
          addressing *)
  mutable cycles : int;
  mutable instret : int;
  mutable halted : bool;
  mutable quarantined : bool;
      (** the core suffered a machine check or stopped acknowledging
          IPIs and was removed from service; a quarantined core is
          permanently halted and is skipped by shootdowns *)
  tlb : Tlb.t;
  l1 : Cache.t;
  pmp : Pmp.t;
  mutable timer_cmp : int option;
      (** deliver a timer interrupt when [cycles >= cmp] *)
  pending_interrupts : Trap.interrupt Queue.t;
      (** delivered FIFO by {!step}, one per step, after any due timer;
          {!post_interrupt} enqueues in O(1) *)
}

type fault_hooks = {
  tick : core:int -> cycles:int -> unit;
      (** called once per {!step}, before anything else — the
          fault-injection engine's clock *)
  irq_gate : core:int -> irq:Trap.interrupt -> bool;
      (** [false] drops the interrupt on the floor (it is consumed but
          not delivered) — a transient interrupt-controller fault *)
  drop_shootdown_ipi : target_core:int -> attempt:int -> bool;
      (** [true] loses this shootdown IPI; the protocol retries *)
}
(** Hooks installed by the fault-injection engine ([Sanctorum_faults]).
    With no hooks installed every site costs one option match. *)

type t

type config = {
  mem_bytes : int;
  cores : int;
  l1 : Cache.config;
  l2 : Cache.config;
  tlb_entries : int;
  pte_fetch_cycles : int;  (** added per page-walk step *)
  pmp_entries : int;
      (** PMP entries per core ({!Pmp.entry_count} by default). The
          Keystone platform needs roughly one deny entry per
          concurrently live enclave, so many-enclave runs raise this. *)
}

val default_config : config

val create : config -> t

val mem : t -> Phys_mem.t
val l2 : t -> Cache.t
val cores : t -> core array
val core : t -> int -> core
val core_count : t -> int

val active_root_ppns : t -> int list
(** Distinct page-table root PPNs currently installed in any core's
    satp, sorted. Bare-addressing cores contribute nothing. For the
    [Sanctorum_analysis] page-walk invariants. *)

(** {2 Isolation hooks (installed by the platform backend)} *)

val set_phys_check :
  t -> (core:core -> access:Trap.access -> paddr:int -> bool) -> unit
(** Decide whether the domain executing on [core] may touch [paddr].
    Applied to every data/fetch access after translation. The check
    must be pure: the fetch fast path re-evaluates it on every fetch
    (it is the one translation input with no change counter — Keystone
    reprograms PMP without a TLB flush) and a fast-path miss evaluates
    it a second time on the slow path. Installing a check bumps the
    protection epoch (see {!note_protection_change}); backends that
    later mutate the state the installed check reads — reprogram PMP,
    reassign an ownership range, switch a core's domain — must call
    {!note_protection_change} after each such change. *)

val set_pte_fetch_check : t -> (core:core -> paddr:int -> bool) -> unit
(** The Sanctum page-walk invariant: approve each PTE fetch address. *)

val note_protection_change : t -> unit
(** Record that the state behind the installed physical-isolation check
    changed (PMP reprogrammed, ownership range reassigned, domain
    switched). Bumps the protection epoch that superblocks snapshot at
    entry and re-check at every memory operation, so a block can never
    complete a load or store against a stale protection decision.
    Cheap (one increment); calling it conservatively is always safe. *)

val set_dma_check : t -> (paddr:int -> len:int -> bool) -> unit

val set_trap_handler : t -> (t -> core -> Trap.cause -> unit) -> unit
(** The M-mode software: the security monitor. The handler mutates core
    state (pc, registers, domain, satp) and returns; execution resumes
    at [core.pc] unless the handler halted the core. *)

(** {2 Faults, quarantine and shootdown} *)

val set_fault_hooks : t -> fault_hooks option -> unit
(** Install (or with [None] remove) the fault-injection hooks. *)

val quarantine : t -> core:int -> reason:string -> unit
(** Remove a core from service: permanently halt it, cancel its timer
    and pending interrupts, emit [Core_quarantined], and invoke the
    quarantine handler (if set) so the monitor can reclaim whatever
    was running there. Idempotent. *)

val set_quarantine_handler : t -> (t -> core -> reason:string -> unit) -> unit
(** Called exactly once per quarantined core, after the core is
    halted. Installed by the monitor. *)

val shootdown_max_attempts : int
(** IPI delivery attempts per target core before it is presumed dead
    (3). *)

val tlb_shootdown : t -> reason:string -> unit
(** Flush every live core's TLB and private cache via IPIs with
    acknowledgment timeouts: an IPI lost to fault injection is retried
    up to {!shootdown_max_attempts} times, then the unresponsive core
    is {!quarantine}d — stale state on a core that never runs again
    cannot leak, so the shootdown fails closed. Emits one [Tlb_flush]
    event with [reason]. *)

val raise_machine_check : t -> core:int -> paddr:int -> unit
(** Deliver a machine-check trap on [core] (no-op if it is already
    halted or quarantined). Used by the fault engine for the
    core-death fault class; ECC-detected double-bit errors take the
    same trap path from inside the access functions. *)

(** {2 Telemetry} *)

val set_sink : t -> Sanctorum_telemetry.Sink.t -> unit
(** Attach a telemetry sink. Trap deliveries and DMA transfers become
    events; when the sink carries a metrics registry, counter handles
    for [hw.cache.*], [hw.tlb.*], [hw.ptw.steps] and [hw.instret] are
    resolved once here and bumped on the hot paths. With the default
    {!Sanctorum_telemetry.Sink.null} every site is a single test. *)

val sink : t -> Sanctorum_telemetry.Sink.t

val now : t -> int
(** Machine-wide timestamp for host-context events: the maximum cycle
    count over all cores. *)

(** {2 Execution} *)

val set_fast_path : t -> bool -> unit
(** Enable (default) or disable the simulator's host-side fast path: a
    per-core fetch-translation cache plus a per-physical-page
    predecoded-instruction cache. Architectural state — cycles,
    instret, registers, traps, TLB/cache statistics — is bit-identical
    in both modes; only host wall-clock differs. The [off] mode exists
    as the differential-testing baseline ([bench sim] measures the
    gap, the qcheck property proves the equivalence). *)

val fast_path : t -> bool

val set_superblock : t -> bool -> unit
(** Enable (default) or disable the superblock execution tier on top of
    the fast path: straight-line runs — including loads and stores —
    pre-translated into per-physical-page arrays of pre-bound closures,
    built lazily from the predecode cache. Guards at block entry and at
    every memory operation (protection epoch, TLB generation, satp,
    pending ECC faults, interrupt/timer/fault-hook state) side-exit to
    the stepped path with architectural state bit-identical to never
    having entered the block; any operation that would trap, split
    across a page boundary, or need an ECC scrub side-exits before a
    byte moves. Accounting is deferred but exact: cycles, instret,
    TLB and cache statistics, and telemetry match the stepped path
    bit-for-bit (only the host-side [hw.sb.*] diagnostic counters
    differ across tiers). The tier only runs when {!set_fast_path} is
    enabled; disabling drops every compiled page. *)

val superblock : t -> bool

val inject_bit_flip : t -> paddr:int -> bit:int -> unit
(** {!Phys_mem.inject_bit_flip} on this machine's memory, via the
    write hook that keeps the predecoded-instruction cache coherent.
    The fault engine must corrupt memory through this entry point. *)

val step : t -> core -> unit
(** Execute one instruction (or deliver one pending trap/interrupt). *)

val run : t -> core:int -> fuel:int -> int
(** [run t ~core ~fuel] steps until the core halts or [fuel]
    instructions have retired; returns instructions retired. *)

val post_interrupt : t -> core:int -> Trap.interrupt -> unit
(** Queue an external interrupt for [core]. Dropped silently if the
    core is quarantined — a fenced core is off the interconnect. *)

(** {2 Register and memory helpers} *)

val read_reg : core -> int -> int64
val write_reg : core -> int -> int64 -> unit
val reset_core_state : core -> unit
(** Zero the architected register file and PC — part of the monitor's
    core cleaning on re-allocation. Does not touch caches or TLB. *)

val translate :
  t ->
  core ->
  access:Trap.access ->
  vaddr:int64 ->
  (int, Trap.exception_cause) result
(** Translate without performing an access (no cache side effects;
    page-walk cycle costs still accrue on the core). *)

val dma_write : t -> paddr:int -> string -> (unit, Trap.exception_cause) result
(** A device-initiated write, subject to the DMA check (§IV-B1). *)

val dma_read :
  t -> paddr:int -> len:int -> (string, Trap.exception_cause) result
