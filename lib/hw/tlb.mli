(** A small fully-associative TLB.

    The Sanctum page-walk invariant requires a TLB shootdown whenever a
    DRAM region changes protection domain (§VII-A); the monitor performs
    a full flush on every domain switch. *)

type perms = { r : bool; w : bool; x : bool; u : bool }

type t

val create : entries:int -> t

val lookup : t -> vpn:int -> (int * perms) option
(** [lookup t ~vpn] is [Some (ppn, perms)] on a hit. *)

val insert : t -> vpn:int -> ppn:int -> perms:perms -> unit

val flush : t -> unit

val flush_vpn : t -> vpn:int -> unit

val entry_count : t -> int
(** Number of currently valid entries. *)

val iter_entries : t -> (vpn:int -> ppn:int -> perms:perms -> unit) -> unit
(** Read-only view of every valid entry, for external checkers (the
    [Sanctorum_analysis] stale-translation invariant). Does not touch
    hit/miss statistics or replacement state. *)

val stats : t -> int * int
(** (hits, misses) of {!lookup} since creation or [reset_stats]. *)

val reset_stats : t -> unit
