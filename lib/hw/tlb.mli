(** A small fully-associative TLB.

    The Sanctum page-walk invariant requires a TLB shootdown whenever a
    DRAM region changes protection domain (§VII-A); the monitor performs
    a full flush on every domain switch. *)

type perms = { r : bool; w : bool; x : bool; u : bool }

type t

val create : entries:int -> t

val lookup : t -> vpn:int -> (int * perms) option
(** [lookup t ~vpn] is [Some (ppn, perms)] on a hit. Convenience
    wrapper around {!find}; allocates on a hit. *)

val find : t -> vpn:int -> int
(** Allocation-free lookup: the slot index holding [vpn], or [-1] on a
    miss. Counts exactly one hit or one miss, like {!lookup} (of which
    it is the implementation), and promotes the hit slot to the MRU
    probe position. Slot indices are invalidated by {!insert} and the
    flushes — read them back immediately via {!slot_ppn} /
    {!slot_perms}. *)

val slot_ppn : t -> int -> int
val slot_perms : t -> int -> perms

val note_hit : t -> unit
(** Account one hit without performing a lookup. For an external
    translation cache (the machine's fetch fast path) that answers
    from a snapshot of this TLB: the slow path would have hit, so the
    statistics must say so. *)

val note_hits : t -> int -> unit
(** [note_hits t n] accounts [n] hits at once — the superblock tier
    defers its per-fetch {!note_hit}s to one flush at block exit.
    Equivalent to calling {!note_hit} [n] times. *)

val probe : t -> vpn:int -> int
(** Pure {!find}: the slot index holding [vpn], or [-1] — but with no
    statistics and no MRU promotion. The superblock tier probes before
    committing to an access; pairing a successful probe with
    {!commit_hit} is observably identical to one {!find}, while a
    failed probe leaves the TLB untouched for the stepped replay. *)

val commit_hit : t -> int -> unit
(** [commit_hit t slot] performs the mutating half of a hit on [slot]:
    one hit counted and the slot promoted to the MRU probe position.
    [probe] + [commit_hit] = [find] on the hit path. *)

val insert : t -> vpn:int -> ppn:int -> perms:perms -> unit

val generation : t -> int
(** Monotonic counter bumped by every {!insert}, {!flush} and
    {!flush_vpn} — i.e. by every mutation of the translation contents.
    Two equal generation numbers guarantee the TLB holds exactly the
    same entries, which is what lets the machine's fetch fast path
    reuse a cached translation without rescanning. *)

val flush : t -> unit

val flush_vpn : t -> vpn:int -> unit

val entry_count : t -> int
(** Number of currently valid entries. *)

val iter_entries : t -> (vpn:int -> ppn:int -> perms:perms -> unit) -> unit
(** Read-only view of every valid entry, for external checkers (the
    [Sanctorum_analysis] stale-translation invariant). Does not touch
    hit/miss statistics or replacement state. *)

val stats : t -> int * int
(** (hits, misses) of {!lookup} since creation or [reset_stats]. *)

val reset_stats : t -> unit
