(* Physical memory with a word-granular ECC fault model.

   [data] holds the stored (possibly corrupted) bytes; [faults] maps a
   word index (paddr / 8) to the XOR mask of bits currently flipped in
   that word, so the pristine value is always recoverable for the
   single-bit (correctable) case. [pending] counts live faulted words:
   the architectural access paths only pay for ECC when it is nonzero,
   keeping the fault-free fast path at a single integer compare. *)

type t = {
  data : Bytes.t;
  faults : (int, int64) Hashtbl.t;
  mutable pending : int;
  mutable corrected : int;
  mutable uncorrectable : int;
  mutable write_hook : (pos:int -> len:int -> unit) option;
}

let page_size = 4096

let create ~size =
  if size <= 0 || size mod page_size <> 0 then
    invalid_arg "Phys_mem.create: size must be a positive multiple of 4096";
  {
    data = Bytes.make size '\000';
    faults = Hashtbl.create 8;
    pending = 0;
    corrected = 0;
    uncorrectable = 0;
    write_hook = None;
  }

let set_write_hook t h = t.write_hook <- h

(* Every mutation of the stored bytes — architectural stores, DMA,
   zeroing, fault injection, ECC scrub corrections — reports the dirty
   range, so a layer caching derived views of memory (the machine's
   predecoded-instruction cache) can invalidate. One option match when
   no hook is installed. *)
let notify t pos len =
  match t.write_hook with None -> () | Some f -> f ~pos ~len

let size t = Bytes.length t.data

let check t pos len label =
  if pos < 0 || pos + len > Bytes.length t.data then
    invalid_arg
      (Printf.sprintf "Phys_mem.%s: address 0x%x out of range" label pos)

(* A store rewrites the whole word's check bits, so any fault pending
   on an overwritten word is absorbed: restore the pristine value (the
   mask records exactly which bits are flipped), drop the mask, then
   let the store land. Without this a later architectural scrub would
   XOR a stale mask into freshly written data — silent corruption the
   real memory controller cannot produce. *)
let absorb_faults t pos len =
  if t.pending > 0 then begin
    let first = pos / 8 and last = (pos + len - 1) / 8 in
    for w = first to last do
      match Hashtbl.find_opt t.faults w with
      | None -> ()
      | Some mask ->
          let base = w * 8 in
          if base + 8 <= Bytes.length t.data then begin
            let stored = Bytes.get_int64_le t.data base in
            Bytes.set_int64_le t.data base (Int64.logxor stored mask);
            notify t base 8
          end;
          Hashtbl.remove t.faults w;
          t.pending <- t.pending - 1
    done
  end

let read_u8 t pos =
  check t pos 1 "read_u8";
  Char.code (Bytes.get t.data pos)

let write_u8 t pos v =
  check t pos 1 "write_u8";
  absorb_faults t pos 1;
  Bytes.set t.data pos (Char.chr (v land 0xff));
  notify t pos 1

let read_u16 t pos =
  check t pos 2 "read_u16";
  Bytes.get_uint16_le t.data pos

let write_u16 t pos v =
  check t pos 2 "write_u16";
  absorb_faults t pos 2;
  Bytes.set_uint16_le t.data pos (v land 0xffff);
  notify t pos 2

let read_u32 t pos =
  check t pos 4 "read_u32";
  Bytes.get_int32_le t.data pos

let write_u32 t pos v =
  check t pos 4 "write_u32";
  absorb_faults t pos 4;
  Bytes.set_int32_le t.data pos v;
  notify t pos 4

let read_u64 t pos =
  check t pos 8 "read_u64";
  Bytes.get_int64_le t.data pos

let write_u64 t pos v =
  check t pos 8 "write_u64";
  absorb_faults t pos 8;
  Bytes.set_int64_le t.data pos v;
  notify t pos 8

let read_string t ~pos ~len =
  check t pos len "read_string";
  Bytes.sub_string t.data pos len

let write_string t ~pos s =
  check t pos (String.length s) "write_string";
  if String.length s > 0 then begin
    absorb_faults t pos (String.length s);
    Bytes.blit_string s 0 t.data pos (String.length s);
    notify t pos (String.length s)
  end

let zero_range t ~pos ~len =
  check t pos len "zero_range";
  Bytes.fill t.data pos len '\000';
  if len > 0 then notify t pos len;
  if t.pending > 0 then begin
    (* zeroing rewrites the whole word, which rewrites the check bits *)
    let first = pos / 8 and last = (pos + len - 1) / 8 in
    for w = first to last do
      if Hashtbl.mem t.faults w then begin
        Hashtbl.remove t.faults w;
        t.pending <- t.pending - 1
      end
    done
  end

let page_of paddr = paddr / page_size
let page_base ppn = ppn * page_size

(* ---- ECC model ------------------------------------------------------ *)

let word_of pos = pos / 8
let word_base w = w * 8

let inject_bit_flip t ~paddr ~bit =
  check t paddr 1 "inject_bit_flip";
  if bit < 0 || bit > 63 then invalid_arg "Phys_mem.inject_bit_flip: bit";
  let w = word_of paddr in
  let base = word_base w in
  if base + 8 > Bytes.length t.data then
    (* the final partial word is not ECC-protected in this model *)
    ()
  else begin
    let mask = Int64.shift_left 1L bit in
    let stored = Bytes.get_int64_le t.data base in
    Bytes.set_int64_le t.data base (Int64.logxor stored mask);
    notify t base 8;
    let prev = Option.value (Hashtbl.find_opt t.faults w) ~default:0L in
    if prev = 0L then t.pending <- t.pending + 1;
    let now = Int64.logxor prev mask in
    if now = 0L then begin
      (* flipping the same bit twice restores the word *)
      Hashtbl.remove t.faults w;
      t.pending <- t.pending - 1
    end
    else Hashtbl.replace t.faults w now
  end

let popcount64 x =
  let n = ref 0 and v = ref x in
  while !v <> 0L do
    v := Int64.logand !v (Int64.sub !v 1L);
    incr n
  done;
  !n

(* Scrub the words overlapping [pos, pos+len): correct single-bit
   faults in place, report the first uncorrectable (>= 2 flipped bits)
   word. Called by the machine layer on every architectural access;
   the [pending = 0] early exit keeps that free in the common case. *)
let scrub t ~pos ~len =
  if t.pending = 0 then `Clean
  else begin
    check t pos len "scrub";
    let first = word_of pos and last = word_of (pos + len - 1) in
    let corrected = ref 0 in
    let bad = ref None in
    let w = ref first in
    while !bad = None && !w <= last do
      (match Hashtbl.find_opt t.faults !w with
      | None -> ()
      | Some mask ->
          if popcount64 mask = 1 then begin
            let base = word_base !w in
            let stored = Bytes.get_int64_le t.data base in
            Bytes.set_int64_le t.data base (Int64.logxor stored mask);
            notify t base 8;
            Hashtbl.remove t.faults !w;
            t.pending <- t.pending - 1;
            t.corrected <- t.corrected + 1;
            incr corrected
          end
          else begin
            t.uncorrectable <- t.uncorrectable + 1;
            bad := Some (word_base !w)
          end);
      incr w
    done;
    match !bad with
    | Some paddr -> `Uncorrectable paddr
    | None -> if !corrected > 0 then `Corrected !corrected else `Clean
  end

let pending_faults t = t.pending
let corrected_count t = t.corrected
let uncorrectable_count t = t.uncorrectable
