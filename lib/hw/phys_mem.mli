(** Byte-accurate physical memory. Isolation is {e not} enforced here —
    the machine layer consults the platform's isolation primitive (PMP or
    DRAM regions) before every access, exactly as hardware would. *)

type t

val page_size : int
(** 4096 bytes. *)

val create : size:int -> t
(** [create ~size] is zero-filled memory; [size] must be page-aligned. *)

val size : t -> int

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit
val read_u16 : t -> int -> int
val write_u16 : t -> int -> int -> unit
val read_u32 : t -> int -> int32
val write_u32 : t -> int -> int32 -> unit
val read_u64 : t -> int -> int64
val write_u64 : t -> int -> int64 -> unit

val read_string : t -> pos:int -> len:int -> string
val write_string : t -> pos:int -> string -> unit

val zero_range : t -> pos:int -> len:int -> unit
(** Models the monitor's cleaning of a reclaimed memory resource. *)

val set_write_hook : t -> (pos:int -> len:int -> unit) option -> unit
(** Observe every mutation of the stored bytes: architectural and DMA
    stores, {!zero_range}, {!inject_bit_flip}, fault absorption and
    ECC scrub corrections all report the byte range they dirtied. The
    machine layer installs its predecoded-instruction-cache
    invalidator here; at most one hook is live per memory. The hook
    runs with the bytes already mutated and must not touch this
    memory. With no hook installed each mutation pays one option
    match. *)

val page_of : int -> int
(** [page_of paddr] is the physical page number. *)

val page_base : int -> int
(** [page_base ppn] is the first address of page [ppn]. *)

(** {2 ECC fault model}

    DRAM words (8 bytes) carry SECDED check bits: a single flipped bit
    in a word is detected and corrected on access, two or more flipped
    bits are detected but uncorrectable. The plain [read_*] accessors
    above stay oblivious — they return the stored (possibly corrupted)
    bytes — because ECC runs in the memory controller, i.e. in the
    machine layer's architectural access paths, not in every raw
    inspection of the array. The [write_*] accessors absorb any fault
    pending on the words they touch (a store rewrites the check bits),
    restoring the pristine bytes before the new data lands. *)

val inject_bit_flip : t -> paddr:int -> bit:int -> unit
(** Flip bit [bit] (0..63) of the 8-byte word containing [paddr].
    Flipping the same bit twice restores the word. *)

val scrub : t -> pos:int -> len:int -> [ `Clean | `Corrected of int | `Uncorrectable of int ]
(** Run ECC over the words overlapping [pos, pos+len): correct
    single-bit faults in place (counted), stop at the first
    uncorrectable word and return its base address. O(1) when no
    faults are pending. *)

val pending_faults : t -> int
(** Number of words currently holding undetected flipped bits. *)

val corrected_count : t -> int
(** Total single-bit errors corrected so far. *)

val uncorrectable_count : t -> int
(** Total uncorrectable (machine-check) errors detected so far. *)
