(** Trap causes and protection-domain identifiers.

    A trap is the only mechanism by which control reaches the security
    monitor (paper Fig. 1: "SM API via system exceptions"). *)

type access = Read | Write | Execute

type exception_cause =
  | Illegal_instruction of int32
  | Instruction_address_misaligned of int64
      (** a fetch from a PC that is not 4-byte aligned (JALR clears only
          bit 0 of the target, so bit 1 can survive into the PC) *)
  | Misaligned of access * int64  (** access kind and faulting address *)
  | Access_fault of access * int64
      (** physical isolation violation (PMP / DRAM-region check) *)
  | Page_fault of access * int64  (** translation failure *)
  | Ecall_user  (** environment call from U-mode: an SM API call *)
  | Breakpoint
  | Machine_check of int
      (** uncorrectable hardware error (e.g. a double-bit ECC fault);
          the payload is the faulting physical address, or [-1] when
          the failure is not tied to a memory access (a dying core) *)

type interrupt =
  | Timer  (** the OS's preemption tick *)
  | Software
  | External of int  (** device interrupts, identified by IRQ number *)

type cause = Exception of exception_cause | Interrupt of interrupt

type domain = int
(** A protection domain identifier. By convention (mirrored by the
    monitor layer): 0 is the SM itself, 1 is the untrusted OS and all
    user applications, and values >= 2 are individual enclaves. *)

val domain_sm : domain
val domain_untrusted : domain

val cause_label : cause -> string
(** A short stable slug for a cause, without faulting addresses —
    e.g. ["page-fault-read"], ["ecall"], ["irq-timer"]. Suitable as a
    trace-event name or metric-name suffix. *)

val pp_access : Format.formatter -> access -> unit
val pp_cause : Format.formatter -> cause -> unit
