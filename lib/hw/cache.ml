type line = { mutable valid : bool; mutable tag : int; mutable lru : int }

type config = {
  sets : int;
  ways : int;
  line_bytes : int;
  hit_cycles : int;
  miss_cycles : int;
}

type t = {
  cfg : config;
  lines : line array array; (* [set].[way] *)
  mutable index_fn : int -> int;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
}

let default_l1 =
  { sets = 64; ways = 4; line_bytes = 64; hit_cycles = 1; miss_cycles = 10 }

let default_l2 =
  { sets = 1024; ways = 8; line_bytes = 64; hit_cycles = 10; miss_cycles = 60 }

let create cfg =
  if not (Sanctorum_util.Bits.is_power_of_two cfg.sets) then
    invalid_arg "Cache.create: sets must be a power of two";
  if not (Sanctorum_util.Bits.is_power_of_two cfg.line_bytes) then
    invalid_arg "Cache.create: line_bytes must be a power of two";
  let mk_line () = { valid = false; tag = 0; lru = 0 } in
  let lines =
    Array.init cfg.sets (fun _ -> Array.init cfg.ways (fun _ -> mk_line ()))
  in
  let default_index paddr = paddr / cfg.line_bytes mod cfg.sets in
  {
    cfg;
    lines;
    index_fn = default_index;
    tick = 0;
    hits = 0;
    misses = 0;
  }

let config t = t.cfg
let set_index_fn t f = t.index_fn <- f
let set_of_paddr t paddr = t.index_fn paddr
let tag_of t paddr = paddr / t.cfg.line_bytes

let access t ~paddr =
  t.tick <- t.tick + 1;
  let set = t.lines.(t.index_fn paddr land (t.cfg.sets - 1)) in
  let tag = tag_of t paddr in
  let hit = ref None in
  Array.iter (fun l -> if l.valid && l.tag = tag then hit := Some l) set;
  match !hit with
  | Some l ->
      l.lru <- t.tick;
      t.hits <- t.hits + 1;
      (true, t.cfg.hit_cycles)
  | None ->
      t.misses <- t.misses + 1;
      (* Fill: prefer an invalid way, else evict the LRU way. *)
      let victim = ref set.(0) in
      Array.iter
        (fun l ->
          if not l.valid then begin
            if !victim.valid then victim := l
          end
          else if !victim.valid && l.lru < !victim.lru then victim := l)
        set;
      !victim.valid <- true;
      !victim.tag <- tag;
      !victim.lru <- t.tick;
      (false, t.cfg.miss_cycles)

let probe t ~paddr =
  let set = t.lines.(t.index_fn paddr land (t.cfg.sets - 1)) in
  let tag = tag_of t paddr in
  Array.exists (fun l -> l.valid && l.tag = tag) set

let iter_tags t f =
  Array.iteri
    (fun set ways ->
      Array.iter
        (fun l -> if l.valid then f ~set ~paddr:(l.tag * t.cfg.line_bytes))
        ways)
    t.lines

let flush_all t =
  Array.iter (fun set -> Array.iter (fun l -> l.valid <- false) set) t.lines

let flush_set t i =
  Array.iter (fun l -> l.valid <- false) t.lines.(i land (t.cfg.sets - 1))

let stats t = (t.hits, t.misses)

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0. else float_of_int t.hits /. float_of_int total

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
