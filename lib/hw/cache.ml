type line = { mutable valid : bool; mutable tag : int; mutable lru : int }

type config = {
  sets : int;
  ways : int;
  line_bytes : int;
  hit_cycles : int;
  miss_cycles : int;
}

type t = {
  cfg : config;
  line_shift : int; (* log2 line_bytes: tag/index without division *)
  set_mask : int; (* sets - 1 *)
  lines : line array array; (* [set].[way] *)
  mru : int array; (* per set: way of the last hit or fill, probed first *)
  mutable index_fn : int -> int;
  mutable default_index : bool; (* skip the closure call until overridden *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
}

let default_l1 =
  { sets = 64; ways = 4; line_bytes = 64; hit_cycles = 1; miss_cycles = 10 }

let default_l2 =
  { sets = 1024; ways = 8; line_bytes = 64; hit_cycles = 10; miss_cycles = 60 }

let create cfg =
  if not (Sanctorum_util.Bits.is_power_of_two cfg.sets) then
    invalid_arg "Cache.create: sets must be a power of two";
  if not (Sanctorum_util.Bits.is_power_of_two cfg.line_bytes) then
    invalid_arg "Cache.create: line_bytes must be a power of two";
  let mk_line () = { valid = false; tag = 0; lru = 0 } in
  let lines =
    Array.init cfg.sets (fun _ -> Array.init cfg.ways (fun _ -> mk_line ()))
  in
  let line_shift = Sanctorum_util.Bits.log2 cfg.line_bytes in
  let default_index paddr = (paddr lsr line_shift) land (cfg.sets - 1) in
  {
    cfg;
    line_shift;
    set_mask = cfg.sets - 1;
    lines;
    mru = Array.make cfg.sets 0;
    index_fn = default_index;
    default_index = true;
    tick = 0;
    hits = 0;
    misses = 0;
  }

let config t = t.cfg

let set_index_fn t f =
  t.index_fn <- f;
  t.default_index <- false
let set_of_paddr t paddr = t.index_fn paddr
let tag_of t paddr = paddr lsr t.line_shift

(* Early-exit scans. Tags are unique within a set (a fill only happens
   after a whole-set miss), so the first match is the only match. *)
let rec scan_tag set tag w n =
  if w >= n then -1
  else
    let l = set.(w) in
    if l.valid && l.tag = tag then w else scan_tag set tag (w + 1) n

let rec first_invalid set w n =
  if w >= n then -1
  else if not set.(w).valid then w
  else first_invalid set (w + 1) n

(* Strict [<] keeps the lowest-indexed way among LRU ties — the same
   way the original whole-set fold picked. *)
let rec min_lru set best w n =
  if w >= n then best
  else min_lru set (if set.(w).lru < set.(best).lru then w else best) (w + 1) n

let access_hit t ~paddr =
  t.tick <- t.tick + 1;
  let si =
    if t.default_index then (paddr lsr t.line_shift) land t.set_mask
    else t.index_fn paddr land t.set_mask
  in
  (* [si] is masked to [0, sets) and stored MRU ways are always valid
     way indices, so the unchecked reads cannot go out of bounds. *)
  let set = Array.unsafe_get t.lines si in
  let tag = paddr lsr t.line_shift in
  let ways = Array.length set in
  let hit_way =
    let mw = Array.unsafe_get t.mru si in
    let m = Array.unsafe_get set mw in
    if m.valid && m.tag = tag then mw else scan_tag set tag 0 ways
  in
  if hit_way >= 0 then begin
    let l = Array.unsafe_get set hit_way in
    l.lru <- t.tick;
    t.hits <- t.hits + 1;
    Array.unsafe_set t.mru si hit_way;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    (* Fill: prefer the first invalid way, else evict the LRU way. *)
    let vw =
      match first_invalid set 0 ways with
      | w when w >= 0 -> w
      | _ -> min_lru set 0 1 ways
    in
    let l = set.(vw) in
    l.valid <- true;
    l.tag <- tag;
    l.lru <- t.tick;
    t.mru.(si) <- vw;
    false
  end

let access t ~paddr =
  if access_hit t ~paddr then (true, t.cfg.hit_cycles)
  else (false, t.cfg.miss_cycles)

(* Account [n] further hits on the line of [paddr], which must have
   been the target of the immediately preceding access on this cache
   with nothing touched in between — the superblock tier batches
   consecutive same-line instruction fetches and flushes them here.
   Each repeat of [access_hit] would advance the tick and stamp the
   line with it; only the final stamp is observable when no other
   access intervenes, so one batched update leaves tick, LRU order and
   statistics bit-identical to [n] sequential calls. *)
let note_repeat_hits t ~paddr ~n =
  if n > 0 then begin
    let si =
      if t.default_index then (paddr lsr t.line_shift) land t.set_mask
      else t.index_fn paddr land t.set_mask
    in
    let set = t.lines.(si) in
    let l = set.(t.mru.(si)) in
    (* the precondition makes the batched line this set's MRU way *)
    assert (l.valid && l.tag = paddr lsr t.line_shift);
    t.tick <- t.tick + n;
    l.lru <- t.tick;
    t.hits <- t.hits + n
  end

let probe t ~paddr =
  let set = t.lines.(t.index_fn paddr land (t.cfg.sets - 1)) in
  let tag = tag_of t paddr in
  Array.exists (fun l -> l.valid && l.tag = tag) set

let iter_tags t f =
  Array.iteri
    (fun set ways ->
      Array.iter
        (fun l -> if l.valid then f ~set ~paddr:(l.tag * t.cfg.line_bytes))
        ways)
    t.lines

let flush_all t =
  Array.iter (fun set -> Array.iter (fun l -> l.valid <- false) set) t.lines

let flush_set t i =
  Array.iter (fun l -> l.valid <- false) t.lines.(i land (t.cfg.sets - 1))

let stats t = (t.hits, t.misses)

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0. else float_of_int t.hits /. float_of_int total

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
