type privilege = U | S | M

type entry = {
  mutable active : bool;
  mutable lo : int;
  mutable hi : int;
  mutable r : bool;
  mutable w : bool;
  mutable x : bool;
  mutable locked : bool;
}

type t = entry array

let entry_count = 16

let create ?(entries = entry_count) () =
  if entries < 1 then invalid_arg "Pmp.create: entries must be >= 1";
  Array.init entries (fun _ ->
      {
        active = false;
        lo = 0;
        hi = 0;
        r = false;
        w = false;
        x = false;
        locked = false;
      })

let count t = Array.length t

let set_entry t ~index ~lo ~hi ~r ~w ~x ~locked =
  if index < 0 || index >= Array.length t then
    invalid_arg "Pmp.set_entry: index out of range";
  if lo < 0 || hi < lo then invalid_arg "Pmp.set_entry: bad range";
  let e = t.(index) in
  if e.locked then invalid_arg "Pmp.set_entry: entry is locked";
  e.active <- true;
  e.lo <- lo;
  e.hi <- hi;
  e.r <- r;
  e.w <- w;
  e.x <- x;
  e.locked <- locked

let clear_entry t ~index =
  if index < 0 || index >= Array.length t then
    invalid_arg "Pmp.clear_entry: index out of range";
  if t.(index).locked then invalid_arg "Pmp.clear_entry: entry is locked";
  t.(index).active <- false

let permits e access =
  match (access : Trap.access) with
  | Trap.Read -> e.r
  | Trap.Write -> e.w
  | Trap.Execute -> e.x

let check t ~privilege ~access ~paddr =
  let n = Array.length t in
  let rec go i =
    if i >= n then privilege = M
    else begin
      let e = t.(i) in
      if e.active && paddr >= e.lo && paddr < e.hi then
        if privilege = M && not e.locked then true else permits e access
      else go (i + 1)
    end
  in
  go 0

let check_range t ~privilege ~access ~lo ~hi =
  (* Split the range at entry boundaries; each fragment is decided by
     its first matching entry, so checking one representative address
     per fragment is exact. *)
  let cuts = ref [ lo; hi ] in
  Array.iter
    (fun e ->
      if e.active then begin
        if e.lo > lo && e.lo < hi then cuts := e.lo :: !cuts;
        if e.hi > lo && e.hi < hi then cuts := e.hi :: !cuts
      end)
    t;
  let points = List.sort_uniq Stdlib.compare !cuts in
  let rec fragments = function
    | a :: (b :: _ as rest) ->
        check t ~privilege ~access ~paddr:a && a < b && fragments rest
    | [ _ ] | [] -> true
  in
  lo < hi && fragments points

let pp ppf t =
  Array.iteri
    (fun i e ->
      if e.active then
        Format.fprintf ppf "pmp%d: [0x%x,0x%x) %s%s%s%s@." i e.lo e.hi
          (if e.r then "r" else "-")
          (if e.w then "w" else "-")
          (if e.x then "x" else "-")
          (if e.locked then "L" else ""))
    t
