type access = Read | Write | Execute

type exception_cause =
  | Illegal_instruction of int32
  | Instruction_address_misaligned of int64
  | Misaligned of access * int64
  | Access_fault of access * int64
  | Page_fault of access * int64
  | Ecall_user
  | Breakpoint
  | Machine_check of int

type interrupt = Timer | Software | External of int
type cause = Exception of exception_cause | Interrupt of interrupt
type domain = int

let domain_sm = 0
let domain_untrusted = 1

let pp_access ppf a =
  Format.pp_print_string ppf
    (match a with Read -> "read" | Write -> "write" | Execute -> "execute")

let access_label = function
  | Read -> "read"
  | Write -> "write"
  | Execute -> "execute"

let cause_label = function
  | Exception (Illegal_instruction _) -> "illegal-instruction"
  | Exception (Instruction_address_misaligned _) -> "instr-misaligned"
  | Exception (Misaligned (a, _)) -> "misaligned-" ^ access_label a
  | Exception (Access_fault (a, _)) -> "access-fault-" ^ access_label a
  | Exception (Page_fault (a, _)) -> "page-fault-" ^ access_label a
  | Exception Ecall_user -> "ecall"
  | Exception Breakpoint -> "breakpoint"
  | Exception (Machine_check _) -> "machine-check"
  | Interrupt Timer -> "irq-timer"
  | Interrupt Software -> "irq-software"
  | Interrupt (External _) -> "irq-external"

let pp_cause ppf = function
  | Exception (Illegal_instruction w) ->
      Format.fprintf ppf "illegal instruction %08lx" w
  | Exception (Instruction_address_misaligned addr) ->
      Format.fprintf ppf "instruction address misaligned at 0x%Lx" addr
  | Exception (Misaligned (a, addr)) ->
      Format.fprintf ppf "misaligned %a at 0x%Lx" pp_access a addr
  | Exception (Access_fault (a, addr)) ->
      Format.fprintf ppf "access fault (%a) at 0x%Lx" pp_access a addr
  | Exception (Page_fault (a, addr)) ->
      Format.fprintf ppf "page fault (%a) at 0x%Lx" pp_access a addr
  | Exception Ecall_user -> Format.pp_print_string ppf "ecall from U-mode"
  | Exception Breakpoint -> Format.pp_print_string ppf "breakpoint"
  | Exception (Machine_check paddr) ->
      if paddr < 0 then Format.pp_print_string ppf "machine check"
      else Format.fprintf ppf "machine check at 0x%x" paddr
  | Interrupt Timer -> Format.pp_print_string ppf "timer interrupt"
  | Interrupt Software -> Format.pp_print_string ppf "software interrupt"
  | Interrupt (External n) -> Format.fprintf ppf "external interrupt %d" n
