(** A set-associative cache timing model with LRU replacement.

    Used twice: per-core private L1s (flushed by the monitor on every
    protection-domain switch) and a shared L2/LLC (partitioned by page
    coloring on the Sanctum platform, shared on Keystone). The cache
    carries no data — only tags — because its purpose is timing: it is
    the surface the paper's cache side-channel adversary probes. *)

type t

type config = {
  sets : int;  (** power of two *)
  ways : int;
  line_bytes : int;  (** power of two *)
  hit_cycles : int;
  miss_cycles : int;
}

val default_l1 : config
val default_l2 : config

val create : config -> t

val config : t -> config

val set_index_fn : t -> (int -> int) -> unit
(** Override the paddr→set mapping. The Sanctum platform installs a
    page-coloring function here so that distinct DRAM regions map to
    disjoint sets. *)

val access : t -> paddr:int -> bool * int
(** [access t ~paddr] touches the line holding [paddr]; returns
    [(hit, cycles)] and updates LRU/fill state. Convenience wrapper
    around {!access_hit}; allocates the result pair. *)

val access_hit : t -> paddr:int -> bool
(** Allocation-free {!access}: same LRU/fill/statistics side effects,
    returns only whether the access hit. The caller derives the cycle
    cost from {!config} ([hit_cycles] / [miss_cycles]). *)

val note_repeat_hits : t -> paddr:int -> n:int -> unit
(** [note_repeat_hits t ~paddr ~n] accounts [n] additional consecutive
    hits on the line holding [paddr]. Precondition: that line was the
    target of the immediately preceding access on this cache and
    nothing else has been accessed since (checked by an assertion on
    the MRU way). Under that precondition the result — tick, LRU
    order, statistics — is bit-identical to [n] sequential
    {!access_hit} calls; the superblock tier uses it to flush a batch
    of same-line instruction fetches in O(1). *)

val probe : t -> paddr:int -> bool
(** Non-destructive lookup: would this access hit? (Used by attack
    oracles in tests; real attackers must use {!access} timing.) *)

val iter_tags : t -> (set:int -> paddr:int -> unit) -> unit
(** Read-only view of every valid line, for external checkers (the
    [Sanctorum_analysis] flush-residue invariant). [paddr] is the first
    byte of the cached line. Does not disturb LRU or statistics. *)

val flush_all : t -> unit

val flush_set : t -> int -> unit

val set_of_paddr : t -> int -> int

val stats : t -> int * int
(** (hits, misses) since creation or [reset_stats]. *)

val hit_rate : t -> float
(** [hits / (hits + misses)], or [0.] before any access. *)

val reset_stats : t -> unit
