(** RISC-V physical memory protection (priv. spec [13]), the isolation
    primitive of the Keystone platform (§VII-B): a per-core list of
    prioritized address ranges white-listing accesses by privilege mode.

    We model ranges directly (equivalent to TOR/NAPOT encodings) with
    standard priority-match semantics: the lowest-numbered matching
    entry decides; with no match, M-mode is allowed and S/U denied. *)

type t

type privilege = U | S | M

val entry_count : int
(** The default entry count: 16, as in the ratified spec. *)

val create : ?entries:int -> unit -> t
(** [entries] defaults to {!entry_count}. The ratified spec allows up
    to 64; larger values model generous future hardware — the Keystone
    platform needs roughly one deny entry per concurrently live
    enclave, so many-enclave stress runs size the PMP accordingly. *)

val count : t -> int
(** The number of entries this instance was created with. *)

val set_entry :
  t ->
  index:int ->
  lo:int ->
  hi:int ->
  r:bool ->
  w:bool ->
  x:bool ->
  locked:bool ->
  unit
(** Program entry [index] to cover physical addresses [lo, hi). A locked
    entry applies to M-mode too and cannot be reprogrammed. Raises
    [Invalid_argument] when reprogramming a locked entry. *)

val clear_entry : t -> index:int -> unit

val check : t -> privilege:privilege -> access:Trap.access -> paddr:int -> bool

val check_range :
  t -> privilege:privilege -> access:Trap.access -> lo:int -> hi:int -> bool
(** Every byte of [lo, hi) passes {!check}. Conservative per-entry
    implementation (no byte loop). *)

val pp : Format.formatter -> t -> unit
