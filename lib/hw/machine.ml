module Tel = Sanctorum_telemetry

type core = {
  id : int;
  regs : int64 array;
  mutable pc : int64;
  mutable domain : Trap.domain;
  mutable satp_root : int option;
  mutable cycles : int;
  mutable instret : int;
  mutable halted : bool;
  mutable quarantined : bool;
  tlb : Tlb.t;
  l1 : Cache.t;
  pmp : Pmp.t;
  mutable timer_cmp : int option;
  pending_interrupts : Trap.interrupt Queue.t;
}

(* Hooks the fault-injection engine (lib/faults) installs to perturb
   the machine. [None] is the production configuration: each site pays
   a single option match. *)
type fault_hooks = {
  tick : core:int -> cycles:int -> unit;
  irq_gate : core:int -> irq:Trap.interrupt -> bool;
  drop_shootdown_ipi : target_core:int -> attempt:int -> bool;
}

type config = {
  mem_bytes : int;
  cores : int;
  l1 : Cache.config;
  l2 : Cache.config;
  tlb_entries : int;
  pte_fetch_cycles : int;
  pmp_entries : int;
}

(* Counter handles resolved once at [set_sink] time so the hot paths
   never do a by-name registry lookup. *)
type hw_counters = {
  c_l1_hits : Tel.Metrics.counter;
  c_l1_misses : Tel.Metrics.counter;
  c_l2_hits : Tel.Metrics.counter;
  c_l2_misses : Tel.Metrics.counter;
  c_tlb_hits : Tel.Metrics.counter;
  c_tlb_misses : Tel.Metrics.counter;
  c_ptw_steps : Tel.Metrics.counter;
  c_instret : Tel.Metrics.counter;
  c_ecc_corrected : Tel.Metrics.counter;
  c_ecc_uncorrectable : Tel.Metrics.counter;
}

(* Per-core fetch-translation cache: the last successful instruction
   fetch, as (virtual page → physical page base) plus everything that
   translation depended on — the satp root and the TLB generation. A
   fetch whose PC stays in the page reuses the paddr without walking;
   any mismatch falls back to the full slow path, which refreshes the
   cache. All-int fields so the validity test allocates nothing. *)
type fetch_state = {
  mutable f_valid : bool;
  mutable f_vpn : int;  (* virtual page number of the cached fetch *)
  mutable f_pbase : int;  (* physical page base it translated to *)
  mutable f_satp : int;  (* satp root PPN at fill time; -1 = bare *)
  mutable f_gen : int;  (* [Tlb.generation] at fill time *)
}

(* One predecoded slot per 4-byte instruction word of a physical page.
   [Dbad] keeps the raw word so the [Illegal_instruction] trap payload
   is bit-identical to a fresh decode. *)
type dslot = Dempty | Dinstr of Isa.t | Dbad of int32

type t = {
  mem : Phys_mem.t;
  cores : core array;
  l2 : Cache.t;
  cfg : config;
  fetch : fetch_state array;  (* indexed by core id *)
  decode_pages : dslot array option array;  (* indexed by physical page *)
  mutable fast_path : bool;
  mutable phys_check : core:core -> access:Trap.access -> paddr:int -> bool;
  mutable pte_fetch_check : core:core -> paddr:int -> bool;
  mutable dma_check : paddr:int -> len:int -> bool;
  mutable trap_handler : t -> core -> Trap.cause -> unit;
  mutable sink : Tel.Sink.t;
  mutable ctrs : hw_counters option;
  mutable fault_hooks : fault_hooks option;
  mutable quarantine_handler : (t -> core -> reason:string -> unit) option;
}

exception Fault of Trap.exception_cause

(* Local copies of the 4 KiB page geometry so the hot paths compile to
   a shift and a mask instead of cross-module loads and divisions. *)
let page_shift = 12
let page_mask = 0xfff
let () = assert (Phys_mem.page_size = 1 lsl page_shift)

let default_config =
  {
    mem_bytes = 16 * 1024 * 1024;
    cores = 4;
    l1 = Cache.default_l1;
    l2 = Cache.default_l2;
    tlb_entries = 32;
    pte_fetch_cycles = 12;
    pmp_entries = Pmp.entry_count;
  }

(* Drop every predecoded slot overlapping the dirtied byte range.
   Fired by the [Phys_mem] write hook on every mutation of the stored
   bytes, so self-modifying code, DMA, zeroing and injected bit flips
   can never execute a stale decode. *)
let invalidate_decode t ~pos ~len =
  if len > 0 then begin
    let n = Array.length t.decode_pages in
    let p0 = pos lsr page_shift in
    let p1 = (pos + len - 1) lsr page_shift in
    let p0 = if p0 < 0 then 0 else p0 in
    let p1 = if p1 >= n then n - 1 else p1 in
    for p = p0 to p1 do
      t.decode_pages.(p) <- None
    done
  end

let create cfg =
  let mk_core id =
    {
      id;
      regs = Array.make 32 0L;
      pc = 0L;
      domain = Trap.domain_untrusted;
      satp_root = None;
      cycles = 0;
      instret = 0;
      halted = false;
      quarantined = false;
      tlb = Tlb.create ~entries:cfg.tlb_entries;
      l1 = Cache.create cfg.l1;
      pmp = Pmp.create ~entries:cfg.pmp_entries ();
      timer_cmp = None;
      pending_interrupts = Queue.create ();
    }
  in
  let mk_fetch _ =
    { f_valid = false; f_vpn = 0; f_pbase = 0; f_satp = -1; f_gen = 0 }
  in
  let t =
    {
      mem = Phys_mem.create ~size:cfg.mem_bytes;
      cores = Array.init cfg.cores mk_core;
      l2 = Cache.create cfg.l2;
      cfg;
      fetch = Array.init cfg.cores mk_fetch;
      decode_pages = Array.make (cfg.mem_bytes / Phys_mem.page_size) None;
      fast_path = true;
      phys_check = (fun ~core:_ ~access:_ ~paddr:_ -> true);
    pte_fetch_check = (fun ~core:_ ~paddr:_ -> true);
    dma_check = (fun ~paddr:_ ~len:_ -> true);
    trap_handler =
      (fun _ core cause ->
        Format.eprintf "machine: unhandled trap on core %d: %a@." core.id
          Trap.pp_cause cause;
        core.halted <- true);
      sink = Tel.Sink.null;
      ctrs = None;
      fault_hooks = None;
      quarantine_handler = None;
    }
  in
  Phys_mem.set_write_hook t.mem
    (Some (fun ~pos ~len -> invalidate_decode t ~pos ~len));
  t

let set_fast_path t enabled =
  t.fast_path <- enabled;
  (* Invalidate on disable so a later re-enable starts from scratch;
     the per-fetch validity checks would catch stale entries anyway. *)
  if not enabled then Array.iter (fun fs -> fs.f_valid <- false) t.fetch

let fast_path t = t.fast_path

let set_sink t sink =
  t.sink <- sink;
  t.ctrs <-
    (match Tel.Sink.metrics sink with
    | None -> None
    | Some m ->
        let c = Tel.Metrics.counter m in
        Some
          {
            c_l1_hits = c "hw.cache.l1.hits";
            c_l1_misses = c "hw.cache.l1.misses";
            c_l2_hits = c "hw.cache.l2.hits";
            c_l2_misses = c "hw.cache.l2.misses";
            c_tlb_hits = c "hw.tlb.hits";
            c_tlb_misses = c "hw.tlb.misses";
            c_ptw_steps = c "hw.ptw.steps";
            c_instret = c "hw.instret";
            c_ecc_corrected = c "hw.ecc.corrected";
            c_ecc_uncorrectable = c "hw.ecc.uncorrectable";
          })

let sink t = t.sink

let now t = Array.fold_left (fun m c -> max m c.cycles) 0 t.cores

let mem t = t.mem
let l2 t = t.l2
let cores t = t.cores
let core t i = t.cores.(i)
let core_count t = Array.length t.cores

let active_root_ppns t =
  Array.to_list t.cores
  |> List.filter_map (fun c -> c.satp_root)
  |> List.sort_uniq compare
let set_phys_check t f = t.phys_check <- f
let set_pte_fetch_check t f = t.pte_fetch_check <- f
let set_dma_check t f = t.dma_check <- f
let set_trap_handler t f = t.trap_handler <- f
let set_fault_hooks t h = t.fault_hooks <- h
let set_quarantine_handler t f = t.quarantine_handler <- Some f
let read_reg core r = if r = 0 then 0L else core.regs.(r)
let write_reg core r v = if r <> 0 then core.regs.(r) <- v

let reset_core_state core =
  Array.fill core.regs 0 32 0L;
  core.pc <- 0L

let post_interrupt t ~core irq =
  let c = t.cores.(core) in
  (* a quarantined core is fenced off the interconnect: interrupts
     aimed at it are dropped, never queued *)
  if not c.quarantined then Queue.add irq c.pending_interrupts

(* ECC runs in the memory controller: every architectural access
   (instruction fetch, load/store, PTE fetch, DMA) scrubs the words it
   touches. Single-bit faults are corrected silently (and counted);
   an uncorrectable word raises [Fault (Machine_check paddr)]. The
   [pending_faults] guard keeps the fault-free fast path at one load
   and compare. *)
let ecc_check_exn t ~core_id ~cycles ~pos ~len =
  if Phys_mem.pending_faults t.mem > 0 && pos >= 0 && len > 0
     && pos + len <= Phys_mem.size t.mem
  then
    match Phys_mem.scrub t.mem ~pos ~len with
    | `Clean -> ()
    | `Corrected n ->
        (match t.ctrs with
        | Some c -> Tel.Metrics.add c.c_ecc_corrected n
        | None -> ());
        if Tel.Sink.enabled t.sink then
          Tel.Sink.emit t.sink ~core:core_id ~cycles
            (Tel.Event.Ecc_corrected { paddr = pos })
    | `Uncorrectable paddr ->
        (match t.ctrs with
        | Some c -> Tel.Metrics.incr c.c_ecc_uncorrectable
        | None -> ());
        if Tel.Sink.enabled t.sink then
          Tel.Sink.emit t.sink ~core:core_id ~cycles
            (Tel.Event.Machine_check { paddr });
        raise (Fault (Trap.Machine_check paddr))

let tlb_perms_allow (perms : Tlb.perms) (access : Trap.access) =
  perms.u
  &&
  match access with
  | Trap.Read -> perms.r
  | Trap.Write -> perms.w
  | Trap.Execute -> perms.x

(* Translation without the final cache access. Raises [Fault]. *)
let translate_exn t core ~access ~vaddr =
  let va = Int64.to_int vaddr in
  if va < 0 || Int64.compare vaddr (Int64.shift_left 1L Page_table.vpn_bits) >= 0
  then raise (Fault (Trap.Page_fault (access, vaddr)));
  let paddr =
    match core.satp_root with
    | None -> va
    | Some root ->
        let vpn = va lsr 12 in
        let slot = Tlb.find core.tlb ~vpn in
        if slot >= 0 then begin
          (* TLB hit: the whole translation is slot reads and integer
             arithmetic — no allocation. *)
          (match t.ctrs with
          | Some c -> Tel.Metrics.incr c.c_tlb_hits
          | None -> ());
          let perms = Tlb.slot_perms core.tlb slot in
          if not (tlb_perms_allow perms access) then
            raise (Fault (Trap.Page_fault (access, vaddr)));
          Phys_mem.page_base (Tlb.slot_ppn core.tlb slot)
          lor (va land page_mask)
        end
        else begin
          (match t.ctrs with
          | Some c -> Tel.Metrics.incr c.c_tlb_misses
          | None -> ());
          let pte_fetch_ok paddr =
            ecc_check_exn t ~core_id:core.id ~cycles:core.cycles ~pos:paddr
              ~len:8;
            t.pte_fetch_check ~core ~paddr
          in
          let steps =
            Page_table.walk_cost_levels t.mem ~root_ppn:root ~vaddr:va
              ~pte_fetch_ok
          in
          (match t.ctrs with
          | Some c -> Tel.Metrics.add c.c_ptw_steps steps
          | None -> ());
          core.cycles <- core.cycles + (steps * t.cfg.pte_fetch_cycles);
          match Page_table.walk t.mem ~root_ppn:root ~vaddr:va ~pte_fetch_ok with
          | Error Page_table.Invalid_mapping ->
              raise (Fault (Trap.Page_fault (access, vaddr)))
          | Error (Page_table.Walk_access_denied _) ->
              raise (Fault (Trap.Access_fault (access, vaddr)))
          | Ok (ppn, p) ->
              let perms : Tlb.perms =
                { r = p.Page_table.r; w = p.w; x = p.x; u = p.u }
              in
              Tlb.insert core.tlb ~vpn ~ppn ~perms;
              if not (tlb_perms_allow perms access) then
                raise (Fault (Trap.Page_fault (access, vaddr)));
              Phys_mem.page_base ppn lor (va land page_mask)
        end
  in
  if paddr + 8 > Phys_mem.size t.mem then
    raise (Fault (Trap.Access_fault (access, vaddr)));
  if not (t.phys_check ~core ~access ~paddr) then
    raise (Fault (Trap.Access_fault (access, vaddr)));
  paddr

let translate t core ~access ~vaddr =
  match translate_exn t core ~access ~vaddr with
  | paddr -> Ok paddr
  | exception Fault f -> Error f

(* Charge the cache hierarchy (L1, on miss also L2) for one access. *)
let charge_cache t (core : core) ~paddr =
  let cost =
    if Cache.access_hit core.l1 ~paddr then begin
      (match t.ctrs with
      | Some c -> Tel.Metrics.incr c.c_l1_hits
      | None -> ());
      t.cfg.l1.Cache.hit_cycles
    end
    else begin
      let l2_hit = Cache.access_hit t.l2 ~paddr in
      (match t.ctrs with
      | Some c ->
          Tel.Metrics.incr c.c_l1_misses;
          Tel.Metrics.incr (if l2_hit then c.c_l2_hits else c.c_l2_misses)
      | None -> ());
      t.cfg.l1.Cache.miss_cycles
      + if l2_hit then t.cfg.l2.Cache.hit_cycles else t.cfg.l2.Cache.miss_cycles
    end
  in
  core.cycles <- core.cycles + cost

(* Charge the cache hierarchy for an instruction fetch and return the
   paddr. A PC that is not 4-byte aligned raises the precise
   [Instruction_address_misaligned] trap (RISC-V: JALR clears only bit
   0 of its target, so bit 1 can survive into the PC); the fast fetch
   path and the block executor both bail to this slow path on a
   misaligned PC, so the trap is identical either way. *)
let cached_access t core ~access ~vaddr ~size =
  if access = Trap.Execute && Int64.logand vaddr 3L <> 0L then
    raise (Fault (Trap.Instruction_address_misaligned vaddr));
  let paddr = translate_exn t core ~access ~vaddr in
  ecc_check_exn t ~core_id:core.id ~cycles:core.cycles ~pos:paddr ~len:size;
  charge_cache t core ~paddr;
  paddr

(* A data access is either contiguous in physical memory or, when it
   crosses a page boundary, split across two independent translations
   (this machine supports misaligned loads/stores in hardware, like
   most RV64 application cores). Both halves are translated — and both
   PMP / ownership checks pass — before a single byte moves, so a fault
   on the second page can neither leak bytes through the first page's
   translation nor leave a partial store behind. *)
type span = Contig of int | Split of int * int * int
(* [Split (paddr_lo, bytes_lo, paddr_hi)]: [bytes_lo] bytes at
   [paddr_lo], the rest at [paddr_hi]. *)

let data_access t core ~access ~vaddr ~size =
  let off = Int64.to_int vaddr land page_mask in
  if off + size <= Phys_mem.page_size then begin
    let paddr = translate_exn t core ~access ~vaddr in
    ecc_check_exn t ~core_id:core.id ~cycles:core.cycles ~pos:paddr ~len:size;
    charge_cache t core ~paddr;
    Contig paddr
  end
  else begin
    let bytes_lo = Phys_mem.page_size - off in
    let paddr_lo = translate_exn t core ~access ~vaddr in
    let paddr_hi =
      translate_exn t core ~access
        ~vaddr:(Int64.add vaddr (Int64.of_int bytes_lo))
    in
    ecc_check_exn t ~core_id:core.id ~cycles:core.cycles ~pos:paddr_lo
      ~len:bytes_lo;
    ecc_check_exn t ~core_id:core.id ~cycles:core.cycles ~pos:paddr_hi
      ~len:(size - bytes_lo);
    charge_cache t core ~paddr:paddr_lo;
    charge_cache t core ~paddr:paddr_hi;
    Split (paddr_lo, bytes_lo, paddr_hi)
  end

let load t core ~op ~vaddr =
  let open Isa in
  let size = match op with
    | Lb | Lbu -> 1 | Lh | Lhu -> 2 | Lw | Lwu -> 4 | Ld -> 8
  in
  let raw =
    match data_access t core ~access:Trap.Read ~vaddr ~size with
    | Contig paddr -> (
        match size with
        | 1 -> Int64.of_int (Phys_mem.read_u8 t.mem paddr)
        | 2 -> Int64.of_int (Phys_mem.read_u16 t.mem paddr)
        | 4 ->
            Int64.logand
              (Int64.of_int32 (Phys_mem.read_u32 t.mem paddr))
              0xffffffffL
        | _ -> Phys_mem.read_u64 t.mem paddr)
    | Split (lo, bytes_lo, hi) ->
        let v = ref 0L in
        for i = size - 1 downto 0 do
          let b =
            if i < bytes_lo then Phys_mem.read_u8 t.mem (lo + i)
            else Phys_mem.read_u8 t.mem (hi + i - bytes_lo)
          in
          v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int b)
        done;
        !v
  in
  match op with
  | Lb ->
      Int64.of_int (Sanctorum_util.Bits.sign_extend (Int64.to_int raw) ~width:8)
  | Lbu -> raw
  | Lh ->
      Int64.of_int (Sanctorum_util.Bits.sign_extend (Int64.to_int raw) ~width:16)
  | Lhu -> raw
  | Lw -> Int64.of_int32 (Int64.to_int32 raw)
  | Lwu -> raw
  | Ld -> raw

let store t core ~op ~vaddr ~value =
  let open Isa in
  let size = match op with Sb -> 1 | Sh -> 2 | Sw -> 4 | Sd -> 8 in
  match data_access t core ~access:Trap.Write ~vaddr ~size with
  | Contig paddr -> (
      match op with
      | Sb -> Phys_mem.write_u8 t.mem paddr (Int64.to_int value land 0xff)
      | Sh -> Phys_mem.write_u16 t.mem paddr (Int64.to_int value land 0xffff)
      | Sw -> Phys_mem.write_u32 t.mem paddr (Int64.to_int32 value)
      | Sd -> Phys_mem.write_u64 t.mem paddr value)
  | Split (lo, bytes_lo, hi) ->
      for i = 0 to size - 1 do
        let b = Int64.to_int (Int64.shift_right_logical value (8 * i)) land 0xff in
        let pos = if i < bytes_lo then lo + i else hi + i - bytes_lo in
        Phys_mem.write_u8 t.mem pos b
      done

let alu op a b =
  let open Isa in
  match op with
  | Add -> Int64.add a b
  | Sub -> Int64.sub a b
  | Sll -> Int64.shift_left a (Int64.to_int b land 63)
  | Slt -> if Int64.compare a b < 0 then 1L else 0L
  | Sltu ->
      if Int64.unsigned_compare a b < 0 then 1L else 0L
  | Xor -> Int64.logxor a b
  | Srl -> Int64.shift_right_logical a (Int64.to_int b land 63)
  | Sra -> Int64.shift_right a (Int64.to_int b land 63)
  | Or -> Int64.logor a b
  | And -> Int64.logand a b

let branch_taken op a b =
  let open Isa in
  match op with
  | Beq -> Int64.equal a b
  | Bne -> not (Int64.equal a b)
  | Blt -> Int64.compare a b < 0
  | Bge -> Int64.compare a b >= 0
  | Bltu -> Int64.unsigned_compare a b < 0
  | Bgeu -> Int64.unsigned_compare a b >= 0

let deliver_trap t core cause =
  if Tel.Sink.enabled t.sink then begin
    let label = Trap.cause_label cause in
    Tel.Sink.incr_counter t.sink ("hw.traps." ^ label);
    Tel.Sink.emit t.sink ~core:core.id ~cycles:core.cycles
      (Tel.Event.Trap_enter { cause = label });
    t.trap_handler t core cause;
    Tel.Sink.emit t.sink ~core:core.id ~cycles:core.cycles
      (Tel.Event.Trap_exit { cause = label })
  end
  else t.trap_handler t core cause

(* ---- Fault containment --------------------------------------------- *)

let quarantine t ~core ~reason =
  let c = t.cores.(core) in
  if not c.quarantined then begin
    c.quarantined <- true;
    c.halted <- true;
    c.timer_cmp <- None;
    Queue.clear c.pending_interrupts;
    if Tel.Sink.enabled t.sink then begin
      Tel.Sink.incr_counter t.sink "hw.core.quarantined";
      Tel.Sink.emit t.sink ~core:(-1) ~cycles:(now t)
        (Tel.Event.Core_quarantined { core; reason })
    end;
    match t.quarantine_handler with Some f -> f t c ~reason | None -> ()
  end

let shootdown_max_attempts = 3

(* Inter-core TLB shootdown with acknowledgment timeouts. An IPI the
   fault engine drops is retried up to [shootdown_max_attempts] times;
   a core that never acknowledges is presumed dead and quarantined —
   its stale TLB is harmless because a quarantined core never runs
   again (fail closed: lose a core, never serve a stale translation). *)
let tlb_shootdown t ~reason =
  Array.iter
    (fun c ->
      if not c.quarantined then begin
        let delivered = ref false in
        let attempt = ref 1 in
        while (not !delivered) && !attempt <= shootdown_max_attempts do
          let dropped =
            match t.fault_hooks with
            | Some h -> h.drop_shootdown_ipi ~target_core:c.id ~attempt:!attempt
            | None -> false
          in
          if dropped then begin
            if Tel.Sink.enabled t.sink then begin
              Tel.Sink.incr_counter t.sink "hw.shootdown.retries";
              Tel.Sink.emit t.sink ~core:(-1) ~cycles:(now t)
                (Tel.Event.Shootdown_retry
                   { target_core = c.id; attempt = !attempt })
            end;
            incr attempt
          end
          else begin
            Tlb.flush c.tlb;
            Cache.flush_all c.l1;
            delivered := true
          end
        done;
        if not !delivered then quarantine t ~core:c.id ~reason:"shootdown-timeout"
      end)
    t.cores;
  if Tel.Sink.enabled t.sink then
    Tel.Sink.emit t.sink ~core:(-1) ~cycles:(now t)
      (Tel.Event.Tlb_flush { reason })

let raise_machine_check t ~core ~paddr =
  let c = t.cores.(core) in
  if not (c.halted || c.quarantined) then begin
    (match t.ctrs with
    | Some ctrs -> Tel.Metrics.incr ctrs.c_ecc_uncorrectable
    | None -> ());
    if Tel.Sink.enabled t.sink then
      Tel.Sink.emit t.sink ~core:c.id ~cycles:c.cycles
        (Tel.Event.Machine_check { paddr });
    deliver_trap t c (Trap.Exception (Trap.Machine_check paddr))
  end

let irq_allowed t core irq =
  match t.fault_hooks with
  | None -> true
  | Some h ->
      let ok = h.irq_gate ~core:core.id ~irq in
      if (not ok) && Tel.Sink.enabled t.sink then
        Tel.Sink.incr_counter t.sink "hw.irq.dropped";
      ok

(* Returns true if an interrupt was delivered instead of an instruction. *)
let check_interrupts t core =
  let timer_due =
    match core.timer_cmp with Some c -> core.cycles >= c | None -> false
  in
  if timer_due then begin
    core.timer_cmp <- None;
    if irq_allowed t core Trap.Timer then begin
      deliver_trap t core (Trap.Interrupt Trap.Timer);
      true
    end
    else false
  end
  else if Queue.is_empty core.pending_interrupts then false
  else begin
    let irq = Queue.pop core.pending_interrupts in
    if irq_allowed t core irq then begin
      deliver_trap t core (Trap.Interrupt irq);
      true
    end
    else false
  end

let execute t core instr =
  let open Isa in
  let next = Int64.add core.pc 4L in
  match instr with
  | Lui (rd, imm) ->
      write_reg core rd (Int64.shift_left (Int64.of_int imm) 12);
      core.pc <- next
  | Auipc (rd, imm) ->
      write_reg core rd (Int64.add core.pc (Int64.shift_left (Int64.of_int imm) 12));
      core.pc <- next
  | Jal (rd, off) ->
      write_reg core rd next;
      core.pc <- Int64.add core.pc (Int64.of_int off)
  | Jalr (rd, rs1, imm) ->
      let target =
        Int64.logand
          (Int64.add (read_reg core rs1) (Int64.of_int imm))
          (Int64.lognot 1L)
      in
      write_reg core rd next;
      core.pc <- target
  | Branch (op, rs1, rs2, off) ->
      if branch_taken op (read_reg core rs1) (read_reg core rs2) then
        core.pc <- Int64.add core.pc (Int64.of_int off)
      else core.pc <- next
  | Load (op, rd, rs1, imm) ->
      let vaddr = Int64.add (read_reg core rs1) (Int64.of_int imm) in
      let v = load t core ~op ~vaddr in
      write_reg core rd v;
      core.pc <- next
  | Store (op, rs2, rs1, imm) ->
      let vaddr = Int64.add (read_reg core rs1) (Int64.of_int imm) in
      store t core ~op ~vaddr ~value:(read_reg core rs2);
      core.pc <- next
  | Op_imm (op, rd, rs1, imm) ->
      write_reg core rd (alu op (read_reg core rs1) (Int64.of_int imm));
      core.pc <- next
  | Op (op, rd, rs1, rs2) ->
      write_reg core rd (alu op (read_reg core rs1) (read_reg core rs2));
      core.pc <- next
  | Mul (rd, rs1, rs2) ->
      write_reg core rd (Int64.mul (read_reg core rs1) (read_reg core rs2));
      core.pc <- next
  | Csr_read_cycle rd ->
      write_reg core rd (Int64.of_int core.cycles);
      core.pc <- next
  | Fence -> core.pc <- next
  | Ecall -> deliver_trap t core (Trap.Exception Trap.Ecall_user)
  | Ebreak -> deliver_trap t core (Trap.Exception Trap.Breakpoint)

(* Decode [paddr]'s word through the per-page predecode cache. Only
   called on architecturally clean bytes (the fetch path scrubs, the
   fast path requires no pending faults), so a cached slot always
   reflects what a fresh decode of memory would produce. Never returns
   [Dempty]. *)
let decode_at t paddr =
  let ppn = paddr lsr page_shift in
  let page =
    match t.decode_pages.(ppn) with
    | Some page -> page
    | None ->
        let page = Array.make (Phys_mem.page_size / 4) Dempty in
        t.decode_pages.(ppn) <- Some page;
        page
  in
  let slot = (paddr land page_mask) lsr 2 in
  match page.(slot) with
  | Dempty ->
      let word = Phys_mem.read_u32 t.mem paddr in
      let d =
        match Isa.decode word with Some i -> Dinstr i | None -> Dbad word
      in
      page.(slot) <- d;
      d
  | d -> d

(* Refresh the fetch-translation cache after a successful slow-path
   fetch of [core.pc] that resolved to [paddr]. *)
let fetch_fill t core ~paddr =
  let fs = t.fetch.(core.id) in
  fs.f_valid <- true;
  fs.f_vpn <- Int64.to_int core.pc lsr page_shift;
  fs.f_pbase <- paddr land lnot page_mask;
  fs.f_satp <- (match core.satp_root with None -> -1 | Some r -> r);
  fs.f_gen <- Tlb.generation core.tlb

(* The fetch fast path: reuse the cached translation when the PC is
   aligned and in the cached page, the satp root and TLB contents are
   unchanged since the fill, and no ECC fault is pending (so the scrub
   the slow path would run is a no-op). The physical-isolation check
   reruns every time — Keystone reprograms PMP without a TLB flush, so
   it is the one input the generation counter does not cover; both
   backends install pure checks. Returns the fetch paddr or -1 for the
   full slow path; -1 is always safe because the slow path
   re-establishes everything from scratch. *)
let fast_fetch_paddr t core =
  let fs = t.fetch.(core.id) in
  let pcv = Int64.to_int core.pc in
  if
    fs.f_valid
    && pcv land 3 = 0
    && pcv lsr page_shift = fs.f_vpn
    && (match core.satp_root with
       | None -> fs.f_satp = -1
       | Some r -> fs.f_satp = r)
    && Tlb.generation core.tlb = fs.f_gen
    && Phys_mem.pending_faults t.mem = 0
  then begin
    let paddr = fs.f_pbase lor (pcv land page_mask) in
    if
      paddr + 8 <= Phys_mem.size t.mem
      && t.phys_check ~core ~access:Trap.Execute ~paddr
    then paddr
    else -1
  end
  else -1

(* Retire one instruction: identical accounting on both fetch paths. *)
let dispatch t core instr =
  core.cycles <- core.cycles + 1;
  match execute t core instr with
  | () ->
      core.instret <- core.instret + 1;
      (match t.ctrs with
      | Some c -> Tel.Metrics.incr c.c_instret
      | None -> ())
  | exception Fault f -> deliver_trap t core (Trap.Exception f)

let step t core =
  (match t.fault_hooks with
  | Some h -> h.tick ~core:core.id ~cycles:core.cycles
  | None -> ());
  if core.halted then ()
  else if check_interrupts t core then ()
  else begin
    let fast_paddr = if t.fast_path then fast_fetch_paddr t core else -1 in
    if fast_paddr >= 0 then begin
      (* Mirror the slow path's accounting exactly: a paging-mode fetch
         would have hit the TLB (generation unchanged since the entry
         served the fill), and the cache model is charged either way. *)
      if t.fetch.(core.id).f_satp >= 0 then begin
        Tlb.note_hit core.tlb;
        match t.ctrs with
        | Some c -> Tel.Metrics.incr c.c_tlb_hits
        | None -> ()
      end;
      charge_cache t core ~paddr:fast_paddr;
      match decode_at t fast_paddr with
      | Dinstr instr -> dispatch t core instr
      | Dbad word ->
          deliver_trap t core (Trap.Exception (Trap.Illegal_instruction word))
      | Dempty -> assert false
    end
    else begin
      match
        cached_access t core ~access:Trap.Execute ~vaddr:core.pc ~size:4
      with
      | exception Fault f -> deliver_trap t core (Trap.Exception f)
      | paddr ->
          if t.fast_path then begin
            fetch_fill t core ~paddr;
            match decode_at t paddr with
            | Dinstr instr -> dispatch t core instr
            | Dbad word ->
                deliver_trap t core
                  (Trap.Exception (Trap.Illegal_instruction word))
            | Dempty -> assert false
          end
          else begin
            (* fast path disabled: the seed pipeline, byte for byte *)
            let word = Phys_mem.read_u32 t.mem paddr in
            match Isa.decode word with
            | None ->
                deliver_trap t core
                  (Trap.Exception (Trap.Illegal_instruction word))
            | Some instr -> dispatch t core instr
          end
    end
  end

(* Instructions eligible for block execution: they touch no memory and
   can raise no trap, so executing one changes nothing that [step]'s
   per-instruction checks depend on — satp, the TLB, physical memory,
   the predecode cache, the interrupt queue and the timer all stay
   fixed across the block. *)
let block_safe instr =
  match (instr : Isa.t) with
  | Load _ | Store _ | Ecall | Ebreak -> false
  | Lui _ | Auipc _ | Jal _ | Jalr _ | Branch _ | Op_imm _ | Op _ | Mul _
  | Csr_read_cycle _ | Fence ->
      true

(* Run up to [fuel] consecutive block-safe instructions whose fetches
   stay in the currently cached (and already predecoded) page, paying
   the exact per-instruction accounting [step] would: TLB hit + cache
   charge + cycles + instret per fetch, with the physical-isolation
   check re-evaluated every time. Only called from [run] when no fault
   hooks are armed, the timer is off and no interrupt is pending —
   conditions no block-safe instruction can change, so checking them
   once per block equals checking them once per step.

   The executor inlines [execute]'s block-safe arms with the PC kept
   as an unboxed int. [Int64.to_int] drops the top bit of an aliased
   PC; [pc_hi] preserves it and link values and the written-back PC
   re-add it, which equals carrying it through [execute]'s int64
   arithmetic (PC-relative flow never changes the dropped bits, and a
   register-target [Jalr] writes the architectural int64 directly and
   ends the block). Returns instructions retired; 0 means [step] must
   take over. *)
let exec_block t core ~fuel =
  let fs = t.fetch.(core.id) in
  let fp0 = fast_fetch_paddr t core in
  if fp0 < 0 then 0
  else
    match t.decode_pages.(fp0 lsr page_shift) with
    | None -> 0 (* not predecoded yet: let the stepped path fill it *)
    | Some page ->
        let vpn = fs.f_vpn and pbase = fs.f_pbase in
        let paging = fs.f_satp >= 0 in
        let pcv0 = Int64.to_int core.pc in
        let pc_hi = Int64.sub core.pc (Int64.of_int pcv0) in
        let to_pc v = Int64.add pc_hi (Int64.of_int v) in
        let executed = ref 0 in
        let pcv = ref pcv0 in
        let wrote_pc = ref false in
        let continue = ref true in
        while !continue && !executed < fuel do
          let p = !pcv in
          if p land 3 <> 0 || p lsr page_shift <> vpn then continue := false
          else
            let paddr = pbase lor (p land page_mask) in
            if not (t.phys_check ~core ~access:Trap.Execute ~paddr) then
              continue := false
            else
              match page.((paddr land page_mask) lsr 2) with
              | Dinstr instr when block_safe instr ->
                  if paging then begin
                    Tlb.note_hit core.tlb;
                    match t.ctrs with
                    | Some c -> Tel.Metrics.incr c.c_tlb_hits
                    | None -> ()
                  end;
                  charge_cache t core ~paddr;
                  core.cycles <- core.cycles + 1;
                  (match (instr : Isa.t) with
                  | Op_imm (op, rd, rs1, imm) ->
                      write_reg core rd
                        (alu op (read_reg core rs1) (Int64.of_int imm));
                      pcv := p + 4
                  | Op (op, rd, rs1, rs2) ->
                      write_reg core rd
                        (alu op (read_reg core rs1) (read_reg core rs2));
                      pcv := p + 4
                  | Branch (op, rs1, rs2, off) ->
                      pcv :=
                        if
                          branch_taken op (read_reg core rs1)
                            (read_reg core rs2)
                        then p + off
                        else p + 4
                  | Lui (rd, imm) ->
                      write_reg core rd
                        (Int64.shift_left (Int64.of_int imm) 12);
                      pcv := p + 4
                  | Auipc (rd, imm) ->
                      write_reg core rd
                        (Int64.add (to_pc p)
                           (Int64.shift_left (Int64.of_int imm) 12));
                      pcv := p + 4
                  | Jal (rd, off) ->
                      write_reg core rd (to_pc (p + 4));
                      pcv := p + off
                  | Jalr (rd, rs1, imm) ->
                      let target =
                        Int64.logand
                          (Int64.add (read_reg core rs1) (Int64.of_int imm))
                          (Int64.lognot 1L)
                      in
                      write_reg core rd (to_pc (p + 4));
                      core.pc <- target;
                      wrote_pc := true;
                      continue := false
                  | Mul (rd, rs1, rs2) ->
                      write_reg core rd
                        (Int64.mul (read_reg core rs1) (read_reg core rs2));
                      pcv := p + 4
                  | Csr_read_cycle rd ->
                      write_reg core rd (Int64.of_int core.cycles);
                      pcv := p + 4
                  | Fence -> pcv := p + 4
                  | Load _ | Store _ | Ecall | Ebreak -> assert false);
                  core.instret <- core.instret + 1;
                  (match t.ctrs with
                  | Some c -> Tel.Metrics.incr c.c_instret
                  | None -> ());
                  incr executed
              | _ -> continue := false
        done;
        if not !wrote_pc then core.pc <- to_pc !pcv;
        !executed

let run t ~core ~fuel =
  let c = t.cores.(core) in
  let start = c.instret in
  let budget = ref fuel in
  while (not c.halted) && !budget > 0 do
    let before = c.instret in
    (if
       t.fast_path && t.fault_hooks = None
       && c.timer_cmp = None
       && Queue.is_empty c.pending_interrupts
     then begin
       let n = exec_block t c ~fuel:!budget in
       if n = 0 then step t c
     end
     else step t c);
    (* Trap deliveries retire no instruction; still consume fuel so a
       fault loop cannot hang the simulation. *)
    budget := !budget - max 1 (c.instret - before)
  done;
  c.instret - start

(* The fault engine's entry point for memory corruption. Routing it
   through the machine (rather than straight into [Phys_mem]) keeps
   the invalidation contract in one place: the write hook installed at
   [create] drops any predecoded instructions for the touched page, so
   an injected flip can never execute as a stale decode. *)
let inject_bit_flip t ~paddr ~bit = Phys_mem.inject_bit_flip t.mem ~paddr ~bit

let trace_dma t ~write ~paddr ~len ~granted =
  if Tel.Sink.enabled t.sink then begin
    Tel.Sink.incr_counter t.sink
      (if not granted then "hw.dma.rejected"
       else if write then "hw.dma.writes"
       else "hw.dma.reads");
    Tel.Sink.emit t.sink ~core:(-1) ~cycles:(now t)
      (Tel.Event.Dma_transfer { write; paddr; len; granted })
  end

let dma_write t ~paddr data =
  let len = String.length data in
  if not (t.dma_check ~paddr ~len) then begin
    trace_dma t ~write:true ~paddr ~len ~granted:false;
    Error (Trap.Access_fault (Trap.Write, Int64.of_int paddr))
  end
  else if paddr < 0 || paddr + len > Phys_mem.size t.mem then
    Error (Trap.Access_fault (Trap.Write, Int64.of_int paddr))
  else begin
    match ecc_check_exn t ~core_id:(-1) ~cycles:(now t) ~pos:paddr ~len with
    | exception Fault f ->
        trace_dma t ~write:true ~paddr ~len ~granted:false;
        Error f
    | () ->
        trace_dma t ~write:true ~paddr ~len ~granted:true;
        Phys_mem.write_string t.mem ~pos:paddr data;
        Ok ()
  end

let dma_read t ~paddr ~len =
  if not (t.dma_check ~paddr ~len) then begin
    trace_dma t ~write:false ~paddr ~len ~granted:false;
    Error (Trap.Access_fault (Trap.Read, Int64.of_int paddr))
  end
  else if paddr < 0 || len < 0 || paddr + len > Phys_mem.size t.mem then
    Error (Trap.Access_fault (Trap.Read, Int64.of_int paddr))
  else begin
    match ecc_check_exn t ~core_id:(-1) ~cycles:(now t) ~pos:paddr ~len with
    | exception Fault f ->
        trace_dma t ~write:false ~paddr ~len ~granted:false;
        Error f
    | () ->
        trace_dma t ~write:false ~paddr ~len ~granted:true;
        Ok (Phys_mem.read_string t.mem ~pos:paddr ~len)
  end
