module Tel = Sanctorum_telemetry

type core = {
  id : int;
  regs : int64 array;
  mutable pc : int64;
  mutable domain : Trap.domain;
  mutable satp_root : int option;
  mutable cycles : int;
  mutable instret : int;
  mutable halted : bool;
  mutable quarantined : bool;
  tlb : Tlb.t;
  l1 : Cache.t;
  pmp : Pmp.t;
  mutable timer_cmp : int option;
  pending_interrupts : Trap.interrupt Queue.t;
}

(* Hooks the fault-injection engine (lib/faults) installs to perturb
   the machine. [None] is the production configuration: each site pays
   a single option match. *)
type fault_hooks = {
  tick : core:int -> cycles:int -> unit;
  irq_gate : core:int -> irq:Trap.interrupt -> bool;
  drop_shootdown_ipi : target_core:int -> attempt:int -> bool;
}

type config = {
  mem_bytes : int;
  cores : int;
  l1 : Cache.config;
  l2 : Cache.config;
  tlb_entries : int;
  pte_fetch_cycles : int;
  pmp_entries : int;
}

(* Counter handles resolved once at [set_sink] time so the hot paths
   never do a by-name registry lookup. *)
type hw_counters = {
  c_l1_hits : Tel.Metrics.counter;
  c_l1_misses : Tel.Metrics.counter;
  c_l2_hits : Tel.Metrics.counter;
  c_l2_misses : Tel.Metrics.counter;
  c_tlb_hits : Tel.Metrics.counter;
  c_tlb_misses : Tel.Metrics.counter;
  c_ptw_steps : Tel.Metrics.counter;
  c_instret : Tel.Metrics.counter;
  c_ecc_corrected : Tel.Metrics.counter;
  c_ecc_uncorrectable : Tel.Metrics.counter;
  (* host-side superblock diagnostics, the hw.sb. family: not
     architectural, so the one counter family allowed to differ across
     tiers *)
  c_sb_blocks : Tel.Metrics.counter;
  c_sb_instret : Tel.Metrics.counter;
  c_sb_side_exits : Tel.Metrics.counter;
}

(* Per-core fetch-translation cache: the last successful instruction
   fetch, as (virtual page → physical page base) plus everything that
   translation depended on — the satp root and the TLB generation. A
   fetch whose PC stays in the page reuses the paddr without walking;
   any mismatch falls back to the full slow path, which refreshes the
   cache. All-int fields so the validity test allocates nothing. *)
type fetch_state = {
  mutable f_valid : bool;
  mutable f_vpn : int;  (* virtual page number of the cached fetch *)
  mutable f_pbase : int;  (* physical page base it translated to *)
  mutable f_satp : int;  (* satp root PPN at fill time; -1 = bare *)
  mutable f_gen : int;  (* [Tlb.generation] at fill time *)
}

(* One predecoded slot per 4-byte instruction word of a physical page.
   [Dbad] keeps the raw word so the [Illegal_instruction] trap payload
   is bit-identical to a fresh decode. *)
type dslot = Dempty | Dinstr of Isa.t | Dbad of int32

(* ---- Superblock tier: representation -------------------------------

   One [sb_page] per physical page of code: an array with one compiled
   closure per 4-byte slot. A closure executes its instruction with the
   exact (deferred) accounting [step] would pay and returns the next
   slot to run within the same page, or -1 to leave the block after
   storing the resume PC in [sx_exit_pc]. Slots start out as a shared
   build closure that compiles itself on first execution. [sb_alive]
   lets a block notice that a store it just committed shot down its own
   page (the write hook drops the page from the machine's table, but
   the running block still holds the array). *)

type sb_ctx = {
  sx_core : core;
  mutable sx_page : sb_page;
  mutable sx_vbase : int64;
      (* virtual address of the page's slot 0 at entry (PC minus the
         in-page offset), alias bits included: all in-block PCs, link
         values and exit PCs derive from it *)
  mutable sx_paging : bool;  (* satp active at entry *)
  mutable sx_epoch : int;  (* [phys_epoch] at entry *)
  mutable sx_gen : int;  (* [Tlb.generation] at entry *)
  mutable sx_fuel : int;
  mutable sx_exit_pc : int64;
  mutable sx_dslot : int;  (* TLB slot of the last successful data probe *)
  (* deferred-but-exact accounting: accumulated here, flushed once at
     block exit *)
  mutable sx_cycles : int;
  mutable sx_instret : int;
  mutable sx_fetch_notes : int;  (* deferred fetch [Tlb.note_hit]s *)
  mutable sx_tlb_ctr : int;  (* deferred telemetry hw.tlb.hits *)
  mutable sx_l1h : int;
  mutable sx_l1m : int;
  mutable sx_l2h : int;
  mutable sx_l2m : int;
  (* batch of consecutive same-line fetch hits, flushed via
     [Cache.note_repeat_hits] before any other cache-model access *)
  mutable sx_line : int;  (* line tag; -1 = no open batch *)
  mutable sx_line_paddr : int;
  mutable sx_line_rep : int;
  sx_hit_plus1 : int;  (* L1 hit cycles + the dispatch cycle *)
  mutable sx_side_exit : bool;  (* ended on a guard miss / trap handoff *)
}

and sb_page = {
  sb_code : (sb_ctx -> int -> int) array;
  mutable sb_alive : bool;
}

type t = {
  mem : Phys_mem.t;
  cores : core array;
  l2 : Cache.t;
  cfg : config;
  fetch : fetch_state array;  (* indexed by core id *)
  decode_pages : dslot array option array;  (* indexed by physical page *)
  sb_pages : sb_page option array;  (* indexed by physical page *)
  sb_ctxs : sb_ctx array;  (* indexed by core id *)
  l1_shift : int;  (* log2 of the L1 line size: fetch-batch line tags *)
  mutable fast_path : bool;
  mutable superblock : bool;
  mutable phys_epoch : int;
      (* bumped on every protection change ([set_phys_check],
         [note_protection_change]): the superblock guard that covers
         the phys-check inputs no generation counter sees *)
  mutable phys_check : core:core -> access:Trap.access -> paddr:int -> bool;
  mutable pte_fetch_check : core:core -> paddr:int -> bool;
  mutable dma_check : paddr:int -> len:int -> bool;
  mutable trap_handler : t -> core -> Trap.cause -> unit;
  mutable sink : Tel.Sink.t;
  mutable ctrs : hw_counters option;
  mutable fault_hooks : fault_hooks option;
  mutable quarantine_handler : (t -> core -> reason:string -> unit) option;
}

exception Fault of Trap.exception_cause

(* Local copies of the 4 KiB page geometry so the hot paths compile to
   a shift and a mask instead of cross-module loads and divisions. *)
let page_shift = 12
let page_mask = 0xfff
let () = assert (Phys_mem.page_size = 1 lsl page_shift)

let default_config =
  {
    mem_bytes = 16 * 1024 * 1024;
    cores = 4;
    l1 = Cache.default_l1;
    l2 = Cache.default_l2;
    tlb_entries = 32;
    pte_fetch_cycles = 12;
    pmp_entries = Pmp.entry_count;
  }

(* Drop every predecoded slot and compiled superblock page overlapping
   the dirtied byte range. Fired by the [Phys_mem] write hook on every
   mutation of the stored bytes, so self-modifying code, DMA, zeroing,
   ECC absorption and injected bit flips can never execute a stale
   decode or a stale closure. A superblock page is additionally marked
   dead so a block that dirtied its own page — the store already
   committed when the hook fires — exits before running another slot. *)
let invalidate_decode t ~pos ~len =
  if len > 0 then begin
    let n = Array.length t.decode_pages in
    let p0 = pos lsr page_shift in
    let p1 = (pos + len - 1) lsr page_shift in
    let p0 = if p0 < 0 then 0 else p0 in
    let p1 = if p1 >= n then n - 1 else p1 in
    for p = p0 to p1 do
      t.decode_pages.(p) <- None;
      match t.sb_pages.(p) with
      | Some sp ->
          sp.sb_alive <- false;
          t.sb_pages.(p) <- None
      | None -> ()
    done
  end

let create cfg =
  let mk_core id =
    {
      id;
      regs = Array.make 32 0L;
      pc = 0L;
      domain = Trap.domain_untrusted;
      satp_root = None;
      cycles = 0;
      instret = 0;
      halted = false;
      quarantined = false;
      tlb = Tlb.create ~entries:cfg.tlb_entries;
      l1 = Cache.create cfg.l1;
      pmp = Pmp.create ~entries:cfg.pmp_entries ();
      timer_cmp = None;
      pending_interrupts = Queue.create ();
    }
  in
  let mk_fetch _ =
    { f_valid = false; f_vpn = 0; f_pbase = 0; f_satp = -1; f_gen = 0 }
  in
  let sb_dead = { sb_code = [||]; sb_alive = false } in
  let mk_sb_ctx core =
    {
      sx_core = core;
      sx_page = sb_dead;
      sx_vbase = 0L;
      sx_paging = false;
      sx_epoch = 0;
      sx_gen = 0;
      sx_fuel = 0;
      sx_exit_pc = 0L;
      sx_dslot = -1;
      sx_cycles = 0;
      sx_instret = 0;
      sx_fetch_notes = 0;
      sx_tlb_ctr = 0;
      sx_l1h = 0;
      sx_l1m = 0;
      sx_l2h = 0;
      sx_l2m = 0;
      sx_line = -1;
      sx_line_paddr = 0;
      sx_line_rep = 0;
      sx_hit_plus1 = cfg.l1.Cache.hit_cycles + 1;
      sx_side_exit = false;
    }
  in
  let cores = Array.init cfg.cores mk_core in
  let t =
    {
      mem = Phys_mem.create ~size:cfg.mem_bytes;
      cores;
      l2 = Cache.create cfg.l2;
      cfg;
      fetch = Array.init cfg.cores mk_fetch;
      decode_pages = Array.make (cfg.mem_bytes / Phys_mem.page_size) None;
      sb_pages = Array.make (cfg.mem_bytes / Phys_mem.page_size) None;
      sb_ctxs = Array.map mk_sb_ctx cores;
      l1_shift = Sanctorum_util.Bits.log2 cfg.l1.Cache.line_bytes;
      fast_path = true;
      superblock = true;
      phys_epoch = 0;
      phys_check = (fun ~core:_ ~access:_ ~paddr:_ -> true);
    pte_fetch_check = (fun ~core:_ ~paddr:_ -> true);
    dma_check = (fun ~paddr:_ ~len:_ -> true);
    trap_handler =
      (fun _ core cause ->
        Format.eprintf "machine: unhandled trap on core %d: %a@." core.id
          Trap.pp_cause cause;
        core.halted <- true);
      sink = Tel.Sink.null;
      ctrs = None;
      fault_hooks = None;
      quarantine_handler = None;
    }
  in
  Phys_mem.set_write_hook t.mem
    (Some (fun ~pos ~len -> invalidate_decode t ~pos ~len));
  t

let set_fast_path t enabled =
  t.fast_path <- enabled;
  (* Invalidate on disable so a later re-enable starts from scratch;
     the per-fetch validity checks would catch stale entries anyway. *)
  if not enabled then Array.iter (fun fs -> fs.f_valid <- false) t.fetch

let fast_path t = t.fast_path

let set_superblock t enabled =
  t.superblock <- enabled;
  (* Drop every compiled page on disable: a later re-enable recompiles
     from the (coherent) predecode cache, and marking the pages dead
     keeps any block re-entered across the toggle honest. *)
  if not enabled then
    Array.iteri
      (fun i p ->
        match p with
        | Some sp ->
            sp.sb_alive <- false;
            t.sb_pages.(i) <- None
        | None -> ())
      t.sb_pages

let superblock t = t.superblock
let note_protection_change t = t.phys_epoch <- t.phys_epoch + 1

let set_sink t sink =
  t.sink <- sink;
  t.ctrs <-
    (match Tel.Sink.metrics sink with
    | None -> None
    | Some m ->
        let c = Tel.Metrics.counter m in
        Some
          {
            c_l1_hits = c "hw.cache.l1.hits";
            c_l1_misses = c "hw.cache.l1.misses";
            c_l2_hits = c "hw.cache.l2.hits";
            c_l2_misses = c "hw.cache.l2.misses";
            c_tlb_hits = c "hw.tlb.hits";
            c_tlb_misses = c "hw.tlb.misses";
            c_ptw_steps = c "hw.ptw.steps";
            c_instret = c "hw.instret";
            c_ecc_corrected = c "hw.ecc.corrected";
            c_ecc_uncorrectable = c "hw.ecc.uncorrectable";
            c_sb_blocks = c "hw.sb.blocks";
            c_sb_instret = c "hw.sb.instret";
            c_sb_side_exits = c "hw.sb.side_exits";
          })

let sink t = t.sink

let now t = Array.fold_left (fun m c -> max m c.cycles) 0 t.cores

let mem t = t.mem
let l2 t = t.l2
let cores t = t.cores
let core t i = t.cores.(i)
let core_count t = Array.length t.cores

let active_root_ppns t =
  Array.to_list t.cores
  |> List.filter_map (fun c -> c.satp_root)
  |> List.sort_uniq compare
let set_phys_check t f =
  t.phys_check <- f;
  t.phys_epoch <- t.phys_epoch + 1
let set_pte_fetch_check t f = t.pte_fetch_check <- f
let set_dma_check t f = t.dma_check <- f
let set_trap_handler t f = t.trap_handler <- f
let set_fault_hooks t h = t.fault_hooks <- h
let set_quarantine_handler t f = t.quarantine_handler <- Some f
let read_reg core r = if r = 0 then 0L else core.regs.(r)
let write_reg core r v = if r <> 0 then core.regs.(r) <- v

let reset_core_state core =
  Array.fill core.regs 0 32 0L;
  core.pc <- 0L

let post_interrupt t ~core irq =
  let c = t.cores.(core) in
  (* a quarantined core is fenced off the interconnect: interrupts
     aimed at it are dropped, never queued *)
  if not c.quarantined then Queue.add irq c.pending_interrupts

(* ECC runs in the memory controller: every architectural access
   (instruction fetch, load/store, PTE fetch, DMA) scrubs the words it
   touches. Single-bit faults are corrected silently (and counted);
   an uncorrectable word raises [Fault (Machine_check paddr)]. The
   [pending_faults] guard keeps the fault-free fast path at one load
   and compare. *)
let ecc_check_exn t ~core_id ~cycles ~pos ~len =
  if Phys_mem.pending_faults t.mem > 0 && pos >= 0 && len > 0
     && pos + len <= Phys_mem.size t.mem
  then
    match Phys_mem.scrub t.mem ~pos ~len with
    | `Clean -> ()
    | `Corrected n ->
        (match t.ctrs with
        | Some c -> Tel.Metrics.add c.c_ecc_corrected n
        | None -> ());
        if Tel.Sink.enabled t.sink then
          Tel.Sink.emit t.sink ~core:core_id ~cycles
            (Tel.Event.Ecc_corrected { paddr = pos })
    | `Uncorrectable paddr ->
        (match t.ctrs with
        | Some c -> Tel.Metrics.incr c.c_ecc_uncorrectable
        | None -> ());
        if Tel.Sink.enabled t.sink then
          Tel.Sink.emit t.sink ~core:core_id ~cycles
            (Tel.Event.Machine_check { paddr });
        raise (Fault (Trap.Machine_check paddr))

let tlb_perms_allow (perms : Tlb.perms) (access : Trap.access) =
  perms.u
  &&
  match access with
  | Trap.Read -> perms.r
  | Trap.Write -> perms.w
  | Trap.Execute -> perms.x

(* Translation without the final cache access. Raises [Fault]. *)
let translate_exn t core ~access ~vaddr =
  let va = Int64.to_int vaddr in
  if va < 0 || Int64.compare vaddr (Int64.shift_left 1L Page_table.vpn_bits) >= 0
  then raise (Fault (Trap.Page_fault (access, vaddr)));
  let paddr =
    match core.satp_root with
    | None -> va
    | Some root ->
        let vpn = va lsr 12 in
        let slot = Tlb.find core.tlb ~vpn in
        if slot >= 0 then begin
          (* TLB hit: the whole translation is slot reads and integer
             arithmetic — no allocation. *)
          (match t.ctrs with
          | Some c -> Tel.Metrics.incr c.c_tlb_hits
          | None -> ());
          let perms = Tlb.slot_perms core.tlb slot in
          if not (tlb_perms_allow perms access) then
            raise (Fault (Trap.Page_fault (access, vaddr)));
          Phys_mem.page_base (Tlb.slot_ppn core.tlb slot)
          lor (va land page_mask)
        end
        else begin
          (match t.ctrs with
          | Some c -> Tel.Metrics.incr c.c_tlb_misses
          | None -> ());
          let pte_fetch_ok paddr =
            ecc_check_exn t ~core_id:core.id ~cycles:core.cycles ~pos:paddr
              ~len:8;
            t.pte_fetch_check ~core ~paddr
          in
          let steps =
            Page_table.walk_cost_levels t.mem ~root_ppn:root ~vaddr:va
              ~pte_fetch_ok
          in
          (match t.ctrs with
          | Some c -> Tel.Metrics.add c.c_ptw_steps steps
          | None -> ());
          core.cycles <- core.cycles + (steps * t.cfg.pte_fetch_cycles);
          match Page_table.walk t.mem ~root_ppn:root ~vaddr:va ~pte_fetch_ok with
          | Error Page_table.Invalid_mapping ->
              raise (Fault (Trap.Page_fault (access, vaddr)))
          | Error (Page_table.Walk_access_denied _) ->
              raise (Fault (Trap.Access_fault (access, vaddr)))
          | Ok (ppn, p) ->
              let perms : Tlb.perms =
                { r = p.Page_table.r; w = p.w; x = p.x; u = p.u }
              in
              Tlb.insert core.tlb ~vpn ~ppn ~perms;
              if not (tlb_perms_allow perms access) then
                raise (Fault (Trap.Page_fault (access, vaddr)));
              Phys_mem.page_base ppn lor (va land page_mask)
        end
  in
  if paddr + 8 > Phys_mem.size t.mem then
    raise (Fault (Trap.Access_fault (access, vaddr)));
  if not (t.phys_check ~core ~access ~paddr) then
    raise (Fault (Trap.Access_fault (access, vaddr)));
  paddr

let translate t core ~access ~vaddr =
  match translate_exn t core ~access ~vaddr with
  | paddr -> Ok paddr
  | exception Fault f -> Error f

(* Charge the cache hierarchy (L1, on miss also L2) for one access. *)
let charge_cache t (core : core) ~paddr =
  let cost =
    if Cache.access_hit core.l1 ~paddr then begin
      (match t.ctrs with
      | Some c -> Tel.Metrics.incr c.c_l1_hits
      | None -> ());
      t.cfg.l1.Cache.hit_cycles
    end
    else begin
      let l2_hit = Cache.access_hit t.l2 ~paddr in
      (match t.ctrs with
      | Some c ->
          Tel.Metrics.incr c.c_l1_misses;
          Tel.Metrics.incr (if l2_hit then c.c_l2_hits else c.c_l2_misses)
      | None -> ());
      t.cfg.l1.Cache.miss_cycles
      + if l2_hit then t.cfg.l2.Cache.hit_cycles else t.cfg.l2.Cache.miss_cycles
    end
  in
  core.cycles <- core.cycles + cost

(* Charge the cache hierarchy for an instruction fetch and return the
   paddr. A PC that is not 4-byte aligned raises the precise
   [Instruction_address_misaligned] trap (RISC-V: JALR clears only bit
   0 of its target, so bit 1 can survive into the PC); the fast fetch
   path and the block executor both bail to this slow path on a
   misaligned PC, so the trap is identical either way. *)
let cached_access t core ~access ~vaddr ~size =
  if access = Trap.Execute && Int64.logand vaddr 3L <> 0L then
    raise (Fault (Trap.Instruction_address_misaligned vaddr));
  let paddr = translate_exn t core ~access ~vaddr in
  ecc_check_exn t ~core_id:core.id ~cycles:core.cycles ~pos:paddr ~len:size;
  charge_cache t core ~paddr;
  paddr

(* A data access is either contiguous in physical memory or, when it
   crosses a page boundary, split across two independent translations
   (this machine supports misaligned loads/stores in hardware, like
   most RV64 application cores). Both halves are translated — and both
   PMP / ownership checks pass — before a single byte moves, so a fault
   on the second page can neither leak bytes through the first page's
   translation nor leave a partial store behind. *)
type span = Contig of int | Split of int * int * int
(* [Split (paddr_lo, bytes_lo, paddr_hi)]: [bytes_lo] bytes at
   [paddr_lo], the rest at [paddr_hi]. *)

let data_access t core ~access ~vaddr ~size =
  let off = Int64.to_int vaddr land page_mask in
  if off + size <= Phys_mem.page_size then begin
    let paddr = translate_exn t core ~access ~vaddr in
    ecc_check_exn t ~core_id:core.id ~cycles:core.cycles ~pos:paddr ~len:size;
    charge_cache t core ~paddr;
    Contig paddr
  end
  else begin
    let bytes_lo = Phys_mem.page_size - off in
    let paddr_lo = translate_exn t core ~access ~vaddr in
    let paddr_hi =
      translate_exn t core ~access
        ~vaddr:(Int64.add vaddr (Int64.of_int bytes_lo))
    in
    ecc_check_exn t ~core_id:core.id ~cycles:core.cycles ~pos:paddr_lo
      ~len:bytes_lo;
    ecc_check_exn t ~core_id:core.id ~cycles:core.cycles ~pos:paddr_hi
      ~len:(size - bytes_lo);
    charge_cache t core ~paddr:paddr_lo;
    charge_cache t core ~paddr:paddr_hi;
    Split (paddr_lo, bytes_lo, paddr_hi)
  end

let load t core ~op ~vaddr =
  let open Isa in
  let size = match op with
    | Lb | Lbu -> 1 | Lh | Lhu -> 2 | Lw | Lwu -> 4 | Ld -> 8
  in
  let raw =
    match data_access t core ~access:Trap.Read ~vaddr ~size with
    | Contig paddr -> (
        match size with
        | 1 -> Int64.of_int (Phys_mem.read_u8 t.mem paddr)
        | 2 -> Int64.of_int (Phys_mem.read_u16 t.mem paddr)
        | 4 ->
            Int64.logand
              (Int64.of_int32 (Phys_mem.read_u32 t.mem paddr))
              0xffffffffL
        | _ -> Phys_mem.read_u64 t.mem paddr)
    | Split (lo, bytes_lo, hi) ->
        let v = ref 0L in
        for i = size - 1 downto 0 do
          let b =
            if i < bytes_lo then Phys_mem.read_u8 t.mem (lo + i)
            else Phys_mem.read_u8 t.mem (hi + i - bytes_lo)
          in
          v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int b)
        done;
        !v
  in
  match op with
  | Lb ->
      Int64.of_int (Sanctorum_util.Bits.sign_extend (Int64.to_int raw) ~width:8)
  | Lbu -> raw
  | Lh ->
      Int64.of_int (Sanctorum_util.Bits.sign_extend (Int64.to_int raw) ~width:16)
  | Lhu -> raw
  | Lw -> Int64.of_int32 (Int64.to_int32 raw)
  | Lwu -> raw
  | Ld -> raw

let store t core ~op ~vaddr ~value =
  let open Isa in
  let size = match op with Sb -> 1 | Sh -> 2 | Sw -> 4 | Sd -> 8 in
  match data_access t core ~access:Trap.Write ~vaddr ~size with
  | Contig paddr -> (
      match op with
      | Sb -> Phys_mem.write_u8 t.mem paddr (Int64.to_int value land 0xff)
      | Sh -> Phys_mem.write_u16 t.mem paddr (Int64.to_int value land 0xffff)
      | Sw -> Phys_mem.write_u32 t.mem paddr (Int64.to_int32 value)
      | Sd -> Phys_mem.write_u64 t.mem paddr value)
  | Split (lo, bytes_lo, hi) ->
      for i = 0 to size - 1 do
        let b = Int64.to_int (Int64.shift_right_logical value (8 * i)) land 0xff in
        let pos = if i < bytes_lo then lo + i else hi + i - bytes_lo in
        Phys_mem.write_u8 t.mem pos b
      done

let alu op a b =
  let open Isa in
  match op with
  | Add -> Int64.add a b
  | Sub -> Int64.sub a b
  | Sll -> Int64.shift_left a (Int64.to_int b land 63)
  | Slt -> if Int64.compare a b < 0 then 1L else 0L
  | Sltu ->
      if Int64.unsigned_compare a b < 0 then 1L else 0L
  | Xor -> Int64.logxor a b
  | Srl -> Int64.shift_right_logical a (Int64.to_int b land 63)
  | Sra -> Int64.shift_right a (Int64.to_int b land 63)
  | Or -> Int64.logor a b
  | And -> Int64.logand a b

let branch_taken op a b =
  let open Isa in
  match op with
  | Beq -> Int64.equal a b
  | Bne -> not (Int64.equal a b)
  | Blt -> Int64.compare a b < 0
  | Bge -> Int64.compare a b >= 0
  | Bltu -> Int64.unsigned_compare a b < 0
  | Bgeu -> Int64.unsigned_compare a b >= 0

let deliver_trap t core cause =
  if Tel.Sink.enabled t.sink then begin
    let label = Trap.cause_label cause in
    Tel.Sink.incr_counter t.sink ("hw.traps." ^ label);
    Tel.Sink.emit t.sink ~core:core.id ~cycles:core.cycles
      (Tel.Event.Trap_enter { cause = label });
    t.trap_handler t core cause;
    Tel.Sink.emit t.sink ~core:core.id ~cycles:core.cycles
      (Tel.Event.Trap_exit { cause = label })
  end
  else t.trap_handler t core cause

(* ---- Fault containment --------------------------------------------- *)

let quarantine t ~core ~reason =
  let c = t.cores.(core) in
  if not c.quarantined then begin
    c.quarantined <- true;
    c.halted <- true;
    c.timer_cmp <- None;
    Queue.clear c.pending_interrupts;
    if Tel.Sink.enabled t.sink then begin
      Tel.Sink.incr_counter t.sink "hw.core.quarantined";
      Tel.Sink.emit t.sink ~core:(-1) ~cycles:(now t)
        (Tel.Event.Core_quarantined { core; reason })
    end;
    match t.quarantine_handler with Some f -> f t c ~reason | None -> ()
  end

let shootdown_max_attempts = 3

(* Inter-core TLB shootdown with acknowledgment timeouts. An IPI the
   fault engine drops is retried up to [shootdown_max_attempts] times;
   a core that never acknowledges is presumed dead and quarantined —
   its stale TLB is harmless because a quarantined core never runs
   again (fail closed: lose a core, never serve a stale translation). *)
let tlb_shootdown t ~reason =
  Array.iter
    (fun c ->
      if not c.quarantined then begin
        let delivered = ref false in
        let attempt = ref 1 in
        while (not !delivered) && !attempt <= shootdown_max_attempts do
          let dropped =
            match t.fault_hooks with
            | Some h -> h.drop_shootdown_ipi ~target_core:c.id ~attempt:!attempt
            | None -> false
          in
          if dropped then begin
            if Tel.Sink.enabled t.sink then begin
              Tel.Sink.incr_counter t.sink "hw.shootdown.retries";
              Tel.Sink.emit t.sink ~core:(-1) ~cycles:(now t)
                (Tel.Event.Shootdown_retry
                   { target_core = c.id; attempt = !attempt })
            end;
            incr attempt
          end
          else begin
            Tlb.flush c.tlb;
            Cache.flush_all c.l1;
            delivered := true
          end
        done;
        if not !delivered then quarantine t ~core:c.id ~reason:"shootdown-timeout"
      end)
    t.cores;
  if Tel.Sink.enabled t.sink then
    Tel.Sink.emit t.sink ~core:(-1) ~cycles:(now t)
      (Tel.Event.Tlb_flush { reason })

let raise_machine_check t ~core ~paddr =
  let c = t.cores.(core) in
  if not (c.halted || c.quarantined) then begin
    (match t.ctrs with
    | Some ctrs -> Tel.Metrics.incr ctrs.c_ecc_uncorrectable
    | None -> ());
    if Tel.Sink.enabled t.sink then
      Tel.Sink.emit t.sink ~core:c.id ~cycles:c.cycles
        (Tel.Event.Machine_check { paddr });
    deliver_trap t c (Trap.Exception (Trap.Machine_check paddr))
  end

let irq_allowed t core irq =
  match t.fault_hooks with
  | None -> true
  | Some h ->
      let ok = h.irq_gate ~core:core.id ~irq in
      if (not ok) && Tel.Sink.enabled t.sink then
        Tel.Sink.incr_counter t.sink "hw.irq.dropped";
      ok

(* Returns true if an interrupt was delivered instead of an instruction. *)
let check_interrupts t core =
  let timer_due =
    match core.timer_cmp with Some c -> core.cycles >= c | None -> false
  in
  if timer_due then begin
    core.timer_cmp <- None;
    if irq_allowed t core Trap.Timer then begin
      deliver_trap t core (Trap.Interrupt Trap.Timer);
      true
    end
    else false
  end
  else if Queue.is_empty core.pending_interrupts then false
  else begin
    let irq = Queue.pop core.pending_interrupts in
    if irq_allowed t core irq then begin
      deliver_trap t core (Trap.Interrupt irq);
      true
    end
    else false
  end

let execute t core instr =
  let open Isa in
  let next = Int64.add core.pc 4L in
  match instr with
  | Lui (rd, imm) ->
      write_reg core rd (Int64.shift_left (Int64.of_int imm) 12);
      core.pc <- next
  | Auipc (rd, imm) ->
      write_reg core rd (Int64.add core.pc (Int64.shift_left (Int64.of_int imm) 12));
      core.pc <- next
  | Jal (rd, off) ->
      write_reg core rd next;
      core.pc <- Int64.add core.pc (Int64.of_int off)
  | Jalr (rd, rs1, imm) ->
      let target =
        Int64.logand
          (Int64.add (read_reg core rs1) (Int64.of_int imm))
          (Int64.lognot 1L)
      in
      write_reg core rd next;
      core.pc <- target
  | Branch (op, rs1, rs2, off) ->
      if branch_taken op (read_reg core rs1) (read_reg core rs2) then
        core.pc <- Int64.add core.pc (Int64.of_int off)
      else core.pc <- next
  | Load (op, rd, rs1, imm) ->
      let vaddr = Int64.add (read_reg core rs1) (Int64.of_int imm) in
      let v = load t core ~op ~vaddr in
      write_reg core rd v;
      core.pc <- next
  | Store (op, rs2, rs1, imm) ->
      let vaddr = Int64.add (read_reg core rs1) (Int64.of_int imm) in
      store t core ~op ~vaddr ~value:(read_reg core rs2);
      core.pc <- next
  | Op_imm (op, rd, rs1, imm) ->
      write_reg core rd (alu op (read_reg core rs1) (Int64.of_int imm));
      core.pc <- next
  | Op (op, rd, rs1, rs2) ->
      write_reg core rd (alu op (read_reg core rs1) (read_reg core rs2));
      core.pc <- next
  | Mul (rd, rs1, rs2) ->
      write_reg core rd (Int64.mul (read_reg core rs1) (read_reg core rs2));
      core.pc <- next
  | Csr_read_cycle rd ->
      write_reg core rd (Int64.of_int core.cycles);
      core.pc <- next
  | Fence -> core.pc <- next
  | Ecall -> deliver_trap t core (Trap.Exception Trap.Ecall_user)
  | Ebreak -> deliver_trap t core (Trap.Exception Trap.Breakpoint)

(* Decode [paddr]'s word through the per-page predecode cache. Only
   called on architecturally clean bytes (the fetch path scrubs, the
   fast path requires no pending faults), so a cached slot always
   reflects what a fresh decode of memory would produce. Never returns
   [Dempty]. *)
let decode_at t paddr =
  let ppn = paddr lsr page_shift in
  let page =
    match t.decode_pages.(ppn) with
    | Some page -> page
    | None ->
        let page = Array.make (Phys_mem.page_size / 4) Dempty in
        t.decode_pages.(ppn) <- Some page;
        page
  in
  let slot = (paddr land page_mask) lsr 2 in
  match page.(slot) with
  | Dempty ->
      let word = Phys_mem.read_u32 t.mem paddr in
      let d =
        match Isa.decode word with Some i -> Dinstr i | None -> Dbad word
      in
      page.(slot) <- d;
      d
  | d -> d

(* Refresh the fetch-translation cache after a successful slow-path
   fetch of [core.pc] that resolved to [paddr]. *)
let fetch_fill t core ~paddr =
  let fs = t.fetch.(core.id) in
  fs.f_valid <- true;
  fs.f_vpn <- Int64.to_int core.pc lsr page_shift;
  fs.f_pbase <- paddr land lnot page_mask;
  fs.f_satp <- (match core.satp_root with None -> -1 | Some r -> r);
  fs.f_gen <- Tlb.generation core.tlb

(* The fetch fast path: reuse the cached translation when the PC is
   aligned and in the cached page, the satp root and TLB contents are
   unchanged since the fill, and no ECC fault is pending (so the scrub
   the slow path would run is a no-op). The physical-isolation check
   reruns every time — Keystone reprograms PMP without a TLB flush, so
   it is the one input the generation counter does not cover; both
   backends install pure checks. Returns the fetch paddr or -1 for the
   full slow path; -1 is always safe because the slow path
   re-establishes everything from scratch. *)
let fast_fetch_paddr t core =
  let fs = t.fetch.(core.id) in
  let pcv = Int64.to_int core.pc in
  if
    fs.f_valid
    && pcv land 3 = 0
    && pcv lsr page_shift = fs.f_vpn
    && (match core.satp_root with
       | None -> fs.f_satp = -1
       | Some r -> fs.f_satp = r)
    && Tlb.generation core.tlb = fs.f_gen
    && Phys_mem.pending_faults t.mem = 0
  then begin
    let paddr = fs.f_pbase lor (pcv land page_mask) in
    if
      paddr + 8 <= Phys_mem.size t.mem
      && t.phys_check ~core ~access:Trap.Execute ~paddr
    then paddr
    else -1
  end
  else -1

(* Retire one instruction: identical accounting on both fetch paths. *)
let dispatch t core instr =
  core.cycles <- core.cycles + 1;
  match execute t core instr with
  | () ->
      core.instret <- core.instret + 1;
      (match t.ctrs with
      | Some c -> Tel.Metrics.incr c.c_instret
      | None -> ())
  | exception Fault f -> deliver_trap t core (Trap.Exception f)

let step t core =
  (match t.fault_hooks with
  | Some h -> h.tick ~core:core.id ~cycles:core.cycles
  | None -> ());
  if core.halted then ()
  else if check_interrupts t core then ()
  else begin
    let fast_paddr = if t.fast_path then fast_fetch_paddr t core else -1 in
    if fast_paddr >= 0 then begin
      (* Mirror the slow path's accounting exactly: a paging-mode fetch
         would have hit the TLB (generation unchanged since the entry
         served the fill), and the cache model is charged either way. *)
      if t.fetch.(core.id).f_satp >= 0 then begin
        Tlb.note_hit core.tlb;
        match t.ctrs with
        | Some c -> Tel.Metrics.incr c.c_tlb_hits
        | None -> ()
      end;
      charge_cache t core ~paddr:fast_paddr;
      match decode_at t fast_paddr with
      | Dinstr instr -> dispatch t core instr
      | Dbad word ->
          deliver_trap t core (Trap.Exception (Trap.Illegal_instruction word))
      | Dempty -> assert false
    end
    else begin
      match
        cached_access t core ~access:Trap.Execute ~vaddr:core.pc ~size:4
      with
      | exception Fault f -> deliver_trap t core (Trap.Exception f)
      | paddr ->
          if t.fast_path then begin
            fetch_fill t core ~paddr;
            match decode_at t paddr with
            | Dinstr instr -> dispatch t core instr
            | Dbad word ->
                deliver_trap t core
                  (Trap.Exception (Trap.Illegal_instruction word))
            | Dempty -> assert false
          end
          else begin
            (* fast path disabled: the seed pipeline, byte for byte *)
            let word = Phys_mem.read_u32 t.mem paddr in
            match Isa.decode word with
            | None ->
                deliver_trap t core
                  (Trap.Exception (Trap.Illegal_instruction word))
            | Some instr -> dispatch t core instr
          end
    end
  end

(* Instructions eligible for block execution: they touch no memory and
   can raise no trap, so executing one changes nothing that [step]'s
   per-instruction checks depend on — satp, the TLB, physical memory,
   the predecode cache, the interrupt queue and the timer all stay
   fixed across the block. *)
let block_safe instr =
  match (instr : Isa.t) with
  | Load _ | Store _ | Ecall | Ebreak -> false
  | Lui _ | Auipc _ | Jal _ | Jalr _ | Branch _ | Op_imm _ | Op _ | Mul _
  | Csr_read_cycle _ | Fence ->
      true

(* Run up to [fuel] consecutive block-safe instructions whose fetches
   stay in the currently cached (and already predecoded) page, paying
   the exact per-instruction accounting [step] would: TLB hit + cache
   charge + cycles + instret per fetch, with the physical-isolation
   check re-evaluated every time. Only called from [run] when no fault
   hooks are armed, the timer is off and no interrupt is pending —
   conditions no block-safe instruction can change, so checking them
   once per block equals checking them once per step.

   The executor inlines [execute]'s block-safe arms with the PC kept
   as an unboxed int. [Int64.to_int] drops the top bit of an aliased
   PC; [pc_hi] preserves it and link values and the written-back PC
   re-add it, which equals carrying it through [execute]'s int64
   arithmetic (PC-relative flow never changes the dropped bits, and a
   register-target [Jalr] writes the architectural int64 directly and
   ends the block). Returns instructions retired; 0 means [step] must
   take over. *)
let exec_block t core ~fuel =
  let fs = t.fetch.(core.id) in
  let fp0 = fast_fetch_paddr t core in
  if fp0 < 0 then 0
  else
    match t.decode_pages.(fp0 lsr page_shift) with
    | None -> 0 (* not predecoded yet: let the stepped path fill it *)
    | Some page ->
        let vpn = fs.f_vpn and pbase = fs.f_pbase in
        let paging = fs.f_satp >= 0 in
        let pcv0 = Int64.to_int core.pc in
        let pc_hi = Int64.sub core.pc (Int64.of_int pcv0) in
        let to_pc v = Int64.add pc_hi (Int64.of_int v) in
        let executed = ref 0 in
        let pcv = ref pcv0 in
        let wrote_pc = ref false in
        let continue = ref true in
        while !continue && !executed < fuel do
          let p = !pcv in
          if p land 3 <> 0 || p lsr page_shift <> vpn then continue := false
          else
            let paddr = pbase lor (p land page_mask) in
            if not (t.phys_check ~core ~access:Trap.Execute ~paddr) then
              continue := false
            else
              match page.((paddr land page_mask) lsr 2) with
              | Dinstr instr when block_safe instr ->
                  if paging then begin
                    Tlb.note_hit core.tlb;
                    match t.ctrs with
                    | Some c -> Tel.Metrics.incr c.c_tlb_hits
                    | None -> ()
                  end;
                  charge_cache t core ~paddr;
                  core.cycles <- core.cycles + 1;
                  (match (instr : Isa.t) with
                  | Op_imm (op, rd, rs1, imm) ->
                      write_reg core rd
                        (alu op (read_reg core rs1) (Int64.of_int imm));
                      pcv := p + 4
                  | Op (op, rd, rs1, rs2) ->
                      write_reg core rd
                        (alu op (read_reg core rs1) (read_reg core rs2));
                      pcv := p + 4
                  | Branch (op, rs1, rs2, off) ->
                      pcv :=
                        if
                          branch_taken op (read_reg core rs1)
                            (read_reg core rs2)
                        then p + off
                        else p + 4
                  | Lui (rd, imm) ->
                      write_reg core rd
                        (Int64.shift_left (Int64.of_int imm) 12);
                      pcv := p + 4
                  | Auipc (rd, imm) ->
                      write_reg core rd
                        (Int64.add (to_pc p)
                           (Int64.shift_left (Int64.of_int imm) 12));
                      pcv := p + 4
                  | Jal (rd, off) ->
                      write_reg core rd (to_pc (p + 4));
                      pcv := p + off
                  | Jalr (rd, rs1, imm) ->
                      let target =
                        Int64.logand
                          (Int64.add (read_reg core rs1) (Int64.of_int imm))
                          (Int64.lognot 1L)
                      in
                      write_reg core rd (to_pc (p + 4));
                      core.pc <- target;
                      wrote_pc := true;
                      continue := false
                  | Mul (rd, rs1, rs2) ->
                      write_reg core rd
                        (Int64.mul (read_reg core rs1) (read_reg core rs2));
                      pcv := p + 4
                  | Csr_read_cycle rd ->
                      write_reg core rd (Int64.of_int core.cycles);
                      pcv := p + 4
                  | Fence -> pcv := p + 4
                  | Load _ | Store _ | Ecall | Ebreak -> assert false);
                  core.instret <- core.instret + 1;
                  (match t.ctrs with
                  | Some c -> Tel.Metrics.incr c.c_instret
                  | None -> ());
                  incr executed
              | _ -> continue := false
        done;
        if not !wrote_pc then core.pc <- to_pc !pcv;
        !executed

(* ---- Superblock tier: engine ----------------------------------------

   Pre-translated straight-line runs, including loads and stores. Every
   closure splits into a pure guard phase and a commit phase:

   - guard: the fetch-side isolation check (re-run at every cache-line
     transition; within a block no monitor code can run, so the pure
     phys check's inputs are frozen — see [sb_fetch_ok]) and, for
     memory ops, every check [translate_exn]/[data_access] would make,
     plus the epoch/generation/interrupt/timer/fault-hook guards. The
     guard phase mutates nothing, so a side exit leaves architectural
     state bit-identical to never having entered the block and the
     stepped path replays the instruction — and raises the precise
     trap — from scratch.

   - commit: the access in [step]'s exact order — fetch TLB note,
     fetch cache charge (batched per line), the dispatch cycle, data
     TLB hit, data cache charge, bytes, registers, retire — with
     cycles / instret / TLB notes / telemetry accumulated in the
     per-core [sb_ctx] and flushed once at block exit. Batching is the
     only reordering, and [Cache.note_repeat_hits] makes it exact:
     consecutive same-line fetch hits with nothing in between collapse
     to one update with bit-identical tick/LRU/stats. *)

let sb_slots = Phys_mem.page_size / 4
let sb_page_size64 = Int64.of_int Phys_mem.page_size
let sb_va_limit = Int64.shift_left 1L Page_table.vpn_bits

(* Side-exit before any effect: resume at the guarded instruction. *)
let sb_side_exit ctx slot =
  ctx.sx_exit_pc <- Int64.add ctx.sx_vbase (Int64.of_int (slot lsl 2));
  ctx.sx_side_exit <- true;
  -1

(* End the block after a committed instruction; [pc] is architectural. *)
let sb_exit_at ctx pc =
  ctx.sx_exit_pc <- pc;
  -1

let sb_flush_line (core : core) ctx =
  if ctx.sx_line_rep > 0 then begin
    Cache.note_repeat_hits core.l1 ~paddr:ctx.sx_line_paddr ~n:ctx.sx_line_rep;
    ctx.sx_l1h <- ctx.sx_l1h + ctx.sx_line_rep;
    ctx.sx_line_rep <- 0
  end;
  ctx.sx_line <- -1

(* First fetch from a new cache line: flush the previous batch, pay the
   real cache-model access, open a new batch. Adds the fetch cost plus
   the dispatch cycle. *)
let sb_fetch_transition t (core : core) ctx ~paddr ~line =
  sb_flush_line core ctx;
  let cost =
    if Cache.access_hit core.l1 ~paddr then begin
      ctx.sx_l1h <- ctx.sx_l1h + 1;
      t.cfg.l1.Cache.hit_cycles
    end
    else begin
      let l2_hit = Cache.access_hit t.l2 ~paddr in
      ctx.sx_l1m <- ctx.sx_l1m + 1;
      if l2_hit then ctx.sx_l2h <- ctx.sx_l2h + 1
      else ctx.sx_l2m <- ctx.sx_l2m + 1;
      t.cfg.l1.Cache.miss_cycles
      + if l2_hit then t.cfg.l2.Cache.hit_cycles else t.cfg.l2.Cache.miss_cycles
    end
  in
  ctx.sx_cycles <- ctx.sx_cycles + cost + 1;
  ctx.sx_line <- line;
  ctx.sx_line_paddr <- paddr

(* Fetch-side guard. The physical-isolation check is pure (the
   [set_phys_check] contract) and its inputs — PMP entries, the owner
   map, the core's domain — are only ever changed by monitor code,
   which cannot run inside a block (every trap side-exits first). It
   is therefore re-evaluated at every cache-line transition rather
   than every fetch: within one line of one block the answer is
   provably the entry answer. The per-memory-op epoch guard
   ([sb_data_paddr]) backstops the same inputs independently. *)
let sb_fetch_ok t (core : core) ctx ~paddr ~line =
  ctx.sx_line = line || t.phys_check ~core ~access:Trap.Execute ~paddr

(* Per-instruction fetch commit: TLB note (paging), cache charge
   (batched per line) and the dispatch cycle — the deferred image of
   what [step] pays per fetch. *)
let sb_account_fetch t (core : core) ctx ~paddr ~line =
  if ctx.sx_line = line then begin
    ctx.sx_line_rep <- ctx.sx_line_rep + 1;
    ctx.sx_cycles <- ctx.sx_cycles + ctx.sx_hit_plus1
  end
  else sb_fetch_transition t core ctx ~paddr ~line;
  if ctx.sx_paging then begin
    ctx.sx_fetch_notes <- ctx.sx_fetch_notes + 1;
    ctx.sx_tlb_ctr <- ctx.sx_tlb_ctr + 1
  end

(* Data-access guard phase: every check the stepped path would make,
   evaluated without mutating anything. Returns the physical address,
   or -1 to side-exit — any op that would trap (bad virtual address,
   TLB miss or permission denial, bounds, ownership denial), would
   split across a page boundary, or would need an ECC scrub is left
   entirely to the stepped path, before a single byte moves. On
   success with paging on, [sx_dslot] holds the TLB slot for the
   commit. *)
let sb_data_paddr t (core : core) ctx ~access ~vaddr ~size =
  let va = Int64.to_int vaddr in
  if
    (va land page_mask) + size > Phys_mem.page_size
    || va < 0
    || Int64.compare vaddr sb_va_limit >= 0
    || Phys_mem.pending_faults t.mem > 0
    || t.phys_epoch <> ctx.sx_epoch
    || Tlb.generation core.tlb <> ctx.sx_gen
    || core.timer_cmp <> None
    || (not (Queue.is_empty core.pending_interrupts))
    || t.fault_hooks <> None
  then -1
  else begin
    let paddr =
      if not ctx.sx_paging then va
      else begin
        let slot = Tlb.probe core.tlb ~vpn:(va lsr page_shift) in
        if slot < 0 then -1
        else if not (tlb_perms_allow (Tlb.slot_perms core.tlb slot) access)
        then -1
        else begin
          ctx.sx_dslot <- slot;
          Phys_mem.page_base (Tlb.slot_ppn core.tlb slot) lor (va land page_mask)
        end
      end
    in
    if
      paddr < 0
      || paddr + 8 > Phys_mem.size t.mem
      || not (t.phys_check ~core ~access ~paddr)
    then -1
    else paddr
  end

(* Data-access commit: the mutating half in [step]'s order — data TLB
   hit, then the cache charge, flushing the fetch batch first so
   cache-model ticks interleave exactly as stepped. *)
let sb_commit_data t (core : core) ctx ~paddr =
  if ctx.sx_paging then begin
    Tlb.commit_hit core.tlb ctx.sx_dslot;
    ctx.sx_tlb_ctr <- ctx.sx_tlb_ctr + 1
  end;
  sb_flush_line core ctx;
  let cost =
    if Cache.access_hit core.l1 ~paddr then begin
      ctx.sx_l1h <- ctx.sx_l1h + 1;
      t.cfg.l1.Cache.hit_cycles
    end
    else begin
      let l2_hit = Cache.access_hit t.l2 ~paddr in
      ctx.sx_l1m <- ctx.sx_l1m + 1;
      if l2_hit then ctx.sx_l2h <- ctx.sx_l2h + 1
      else ctx.sx_l2m <- ctx.sx_l2m + 1;
      t.cfg.l1.Cache.miss_cycles
      + if l2_hit then t.cfg.l2.Cache.hit_cycles else t.cfg.l2.Cache.miss_cycles
    end
  in
  ctx.sx_cycles <- ctx.sx_cycles + cost

(* Retire and fall through; past the last slot the block exits at the
   first PC of the next page. *)
let sb_retire_continue ctx fall =
  ctx.sx_instret <- ctx.sx_instret + 1;
  ctx.sx_fuel <- ctx.sx_fuel - 1;
  if fall >= 0 then fall
  else begin
    ctx.sx_exit_pc <- Int64.add ctx.sx_vbase sb_page_size64;
    -1
  end

let sb_alu_fn (op : Isa.alu_op) : int64 -> int64 -> int64 =
  match op with
  | Add -> Int64.add
  | Sub -> Int64.sub
  | Sll -> fun a b -> Int64.shift_left a (Int64.to_int b land 63)
  | Slt -> fun a b -> if Int64.compare a b < 0 then 1L else 0L
  | Sltu -> fun a b -> if Int64.unsigned_compare a b < 0 then 1L else 0L
  | Xor -> Int64.logxor
  | Srl -> fun a b -> Int64.shift_right_logical a (Int64.to_int b land 63)
  | Sra -> fun a b -> Int64.shift_right a (Int64.to_int b land 63)
  | Or -> Int64.logor
  | And -> Int64.logand

let sb_branch_fn (op : Isa.branch_op) : int64 -> int64 -> bool =
  match op with
  | Beq -> Int64.equal
  | Bne -> fun a b -> not (Int64.equal a b)
  | Blt -> fun a b -> Int64.compare a b < 0
  | Bge -> fun a b -> Int64.compare a b >= 0
  | Bltu -> fun a b -> Int64.unsigned_compare a b < 0
  | Bgeu -> fun a b -> Int64.unsigned_compare a b >= 0

(* Compile one slot of a physical page into its closure. Everything
   that depends only on the page and the decoded instruction — own
   paddr, own cache line, fall-through and branch-target slots,
   immediates, ALU/branch operators, load/store width accessors — is
   bound at compile time; everything virtual comes from the entry-time
   [sx_vbase], so one compiled page serves any mapping that reaches
   it. *)
let sb_compile t ~ppn ~slot =
  let own_paddr = Phys_mem.page_base ppn lor (slot lsl 2) in
  let own_line = own_paddr lsr t.l1_shift in
  let fall = if slot + 1 < sb_slots then slot + 1 else -1 in
  let off = slot lsl 2 in
  match decode_at t own_paddr with
  | Dempty -> assert false
  | Dbad _ ->
      (* stepped path re-decodes and traps with the exact raw word *)
      sb_side_exit
  | Dinstr instr -> (
      match (instr : Isa.t) with
      | Ecall | Ebreak ->
          (* trap delivery never happens inside a block *)
          sb_side_exit
      | Op_imm (op, rd, rs1, imm) ->
          let f = sb_alu_fn op and b = Int64.of_int imm in
          fun ctx slot ->
            let core = ctx.sx_core in
            if not (sb_fetch_ok t core ctx ~paddr:own_paddr ~line:own_line)
            then sb_side_exit ctx slot
            else begin
              sb_account_fetch t core ctx ~paddr:own_paddr ~line:own_line;
              let a = if rs1 = 0 then 0L else Array.unsafe_get core.regs rs1 in
              if rd <> 0 then Array.unsafe_set core.regs rd (f a b);
              sb_retire_continue ctx fall
            end
      | Op (op, rd, rs1, rs2) ->
          let f = sb_alu_fn op in
          fun ctx slot ->
            let core = ctx.sx_core in
            if not (sb_fetch_ok t core ctx ~paddr:own_paddr ~line:own_line)
            then sb_side_exit ctx slot
            else begin
              sb_account_fetch t core ctx ~paddr:own_paddr ~line:own_line;
              let a = if rs1 = 0 then 0L else Array.unsafe_get core.regs rs1
              and b = if rs2 = 0 then 0L else Array.unsafe_get core.regs rs2 in
              if rd <> 0 then Array.unsafe_set core.regs rd (f a b);
              sb_retire_continue ctx fall
            end
      | Mul (rd, rs1, rs2) ->
          fun ctx slot ->
            let core = ctx.sx_core in
            if not (sb_fetch_ok t core ctx ~paddr:own_paddr ~line:own_line)
            then sb_side_exit ctx slot
            else begin
              sb_account_fetch t core ctx ~paddr:own_paddr ~line:own_line;
              let a = if rs1 = 0 then 0L else Array.unsafe_get core.regs rs1
              and b = if rs2 = 0 then 0L else Array.unsafe_get core.regs rs2 in
              if rd <> 0 then Array.unsafe_set core.regs rd (Int64.mul a b);
              sb_retire_continue ctx fall
            end
      | Lui (rd, imm) ->
          let v = Int64.shift_left (Int64.of_int imm) 12 in
          fun ctx slot ->
            let core = ctx.sx_core in
            if not (sb_fetch_ok t core ctx ~paddr:own_paddr ~line:own_line)
            then sb_side_exit ctx slot
            else begin
              sb_account_fetch t core ctx ~paddr:own_paddr ~line:own_line;
              if rd <> 0 then Array.unsafe_set core.regs rd v;
              sb_retire_continue ctx fall
            end
      | Auipc (rd, imm) ->
          (* pc + (imm << 12) = sx_vbase + (off + (imm << 12)) *)
          let addend = Int64.of_int ((imm lsl 12) + off) in
          fun ctx slot ->
            let core = ctx.sx_core in
            if not (sb_fetch_ok t core ctx ~paddr:own_paddr ~line:own_line)
            then sb_side_exit ctx slot
            else begin
              sb_account_fetch t core ctx ~paddr:own_paddr ~line:own_line;
              if rd <> 0 then
                Array.unsafe_set core.regs rd (Int64.add ctx.sx_vbase addend);
              sb_retire_continue ctx fall
            end
      | Csr_read_cycle rd ->
          fun ctx slot ->
            let core = ctx.sx_core in
            if not (sb_fetch_ok t core ctx ~paddr:own_paddr ~line:own_line)
            then sb_side_exit ctx slot
            else begin
              sb_account_fetch t core ctx ~paddr:own_paddr ~line:own_line;
              (* deferred cycles materialized: fetch + dispatch already
                 accumulated, exactly [step]'s read point *)
              if rd <> 0 then
                Array.unsafe_set core.regs rd
                  (Int64.of_int (core.cycles + ctx.sx_cycles));
              sb_retire_continue ctx fall
            end
      | Fence ->
          fun ctx slot ->
            let core = ctx.sx_core in
            if not (sb_fetch_ok t core ctx ~paddr:own_paddr ~line:own_line)
            then sb_side_exit ctx slot
            else begin
              sb_account_fetch t core ctx ~paddr:own_paddr ~line:own_line;
              sb_retire_continue ctx fall
            end
      | Jal (rd, joff) ->
          let toff = off + joff in
          let target_slot =
            if toff >= 0 && toff < Phys_mem.page_size && toff land 3 = 0 then
              toff lsr 2
            else -1
          in
          let toff64 = Int64.of_int toff in
          let link_off = Int64.of_int (off + 4) in
          fun ctx slot ->
            let core = ctx.sx_core in
            if not (sb_fetch_ok t core ctx ~paddr:own_paddr ~line:own_line)
            then sb_side_exit ctx slot
            else begin
              sb_account_fetch t core ctx ~paddr:own_paddr ~line:own_line;
              if rd <> 0 then
                Array.unsafe_set core.regs rd (Int64.add ctx.sx_vbase link_off);
              ctx.sx_instret <- ctx.sx_instret + 1;
              ctx.sx_fuel <- ctx.sx_fuel - 1;
              if target_slot >= 0 then target_slot
              else sb_exit_at ctx (Int64.add ctx.sx_vbase toff64)
            end
      | Jalr (rd, rs1, imm) ->
          let imm64 = Int64.of_int imm in
          let link_off = Int64.of_int (off + 4) in
          fun ctx slot ->
            let core = ctx.sx_core in
            if not (sb_fetch_ok t core ctx ~paddr:own_paddr ~line:own_line)
            then sb_side_exit ctx slot
            else begin
              sb_account_fetch t core ctx ~paddr:own_paddr ~line:own_line;
              (* target before the link write: rd may alias rs1 *)
              let target =
                Int64.logand
                  (Int64.add
                     (if rs1 = 0 then 0L else Array.unsafe_get core.regs rs1)
                     imm64)
                  (Int64.lognot 1L)
              in
              if rd <> 0 then
                Array.unsafe_set core.regs rd (Int64.add ctx.sx_vbase link_off);
              ctx.sx_instret <- ctx.sx_instret + 1;
              ctx.sx_fuel <- ctx.sx_fuel - 1;
              sb_exit_at ctx target
            end
      | Branch (op, rs1, rs2, boff) ->
          let f = sb_branch_fn op in
          let toff = off + boff in
          let target_slot =
            if toff >= 0 && toff < Phys_mem.page_size && toff land 3 = 0 then
              toff lsr 2
            else -1
          in
          let toff64 = Int64.of_int toff in
          fun ctx slot ->
            let core = ctx.sx_core in
            if not (sb_fetch_ok t core ctx ~paddr:own_paddr ~line:own_line)
            then sb_side_exit ctx slot
            else begin
              sb_account_fetch t core ctx ~paddr:own_paddr ~line:own_line;
              let a = if rs1 = 0 then 0L else Array.unsafe_get core.regs rs1
              and b = if rs2 = 0 then 0L else Array.unsafe_get core.regs rs2 in
              ctx.sx_instret <- ctx.sx_instret + 1;
              ctx.sx_fuel <- ctx.sx_fuel - 1;
              if f a b then
                if target_slot >= 0 then target_slot
                else sb_exit_at ctx (Int64.add ctx.sx_vbase toff64)
              else if fall >= 0 then fall
              else sb_exit_at ctx (Int64.add ctx.sx_vbase sb_page_size64)
            end
      | Load (lop, rd, rs1, imm) ->
          let size =
            match lop with
            | Lb | Lbu -> 1
            | Lh | Lhu -> 2
            | Lw | Lwu -> 4
            | Ld -> 8
          in
          let read : Phys_mem.t -> int -> int64 =
            match lop with
            | Lb ->
                fun mem p ->
                  Int64.of_int
                    (Sanctorum_util.Bits.sign_extend (Phys_mem.read_u8 mem p)
                       ~width:8)
            | Lbu -> fun mem p -> Int64.of_int (Phys_mem.read_u8 mem p)
            | Lh ->
                fun mem p ->
                  Int64.of_int
                    (Sanctorum_util.Bits.sign_extend (Phys_mem.read_u16 mem p)
                       ~width:16)
            | Lhu -> fun mem p -> Int64.of_int (Phys_mem.read_u16 mem p)
            | Lw -> fun mem p -> Int64.of_int32 (Phys_mem.read_u32 mem p)
            | Lwu ->
                fun mem p ->
                  Int64.logand
                    (Int64.of_int32 (Phys_mem.read_u32 mem p))
                    0xffffffffL
            | Ld -> Phys_mem.read_u64
          in
          let imm64 = Int64.of_int imm in
          fun ctx slot ->
            let core = ctx.sx_core in
            if not (sb_fetch_ok t core ctx ~paddr:own_paddr ~line:own_line)
            then sb_side_exit ctx slot
            else begin
              let vaddr =
                Int64.add
                  (if rs1 = 0 then 0L else Array.unsafe_get core.regs rs1)
                  imm64
              in
              let dp =
                sb_data_paddr t core ctx ~access:Trap.Read ~vaddr ~size
              in
              if dp < 0 then sb_side_exit ctx slot
              else begin
                sb_account_fetch t core ctx ~paddr:own_paddr ~line:own_line;
                sb_commit_data t core ctx ~paddr:dp;
                let v = read t.mem dp in
                if rd <> 0 then Array.unsafe_set core.regs rd v;
                sb_retire_continue ctx fall
              end
            end
      | Store (sop, rs2, rs1, imm) ->
          let size = match sop with Sb -> 1 | Sh -> 2 | Sw -> 4 | Sd -> 8 in
          let write : Phys_mem.t -> int -> int64 -> unit =
            match sop with
            | Sb -> fun mem p v -> Phys_mem.write_u8 mem p (Int64.to_int v land 0xff)
            | Sh ->
                fun mem p v -> Phys_mem.write_u16 mem p (Int64.to_int v land 0xffff)
            | Sw -> fun mem p v -> Phys_mem.write_u32 mem p (Int64.to_int32 v)
            | Sd -> fun mem p v -> Phys_mem.write_u64 mem p v
          in
          let imm64 = Int64.of_int imm in
          (* fall-through PC, also the resume PC when the store shoots
             down its own page: off + 4 = page size on the last slot *)
          let next_off64 = Int64.of_int (off + 4) in
          fun ctx slot ->
            let core = ctx.sx_core in
            if not (sb_fetch_ok t core ctx ~paddr:own_paddr ~line:own_line)
            then sb_side_exit ctx slot
            else begin
              let vaddr =
                Int64.add
                  (if rs1 = 0 then 0L else Array.unsafe_get core.regs rs1)
                  imm64
              in
              let dp =
                sb_data_paddr t core ctx ~access:Trap.Write ~vaddr ~size
              in
              if dp < 0 then sb_side_exit ctx slot
              else begin
                sb_account_fetch t core ctx ~paddr:own_paddr ~line:own_line;
                sb_commit_data t core ctx ~paddr:dp;
                write t.mem dp
                  (if rs2 = 0 then 0L else Array.unsafe_get core.regs rs2);
                ctx.sx_instret <- ctx.sx_instret + 1;
                ctx.sx_fuel <- ctx.sx_fuel - 1;
                (* the write hook may have shot down this very page:
                   never run another (stale) closure from it *)
                if fall >= 0 && ctx.sx_page.sb_alive then fall
                else sb_exit_at ctx (Int64.add ctx.sx_vbase next_off64)
              end
            end)

(* Lazily compiled page: every slot starts as a shared build closure
   that compiles itself on first execution, replaces the slot, and
   tail-runs the result. Invalidation drops the whole page. *)
let sb_new_page t ppn =
  let code = Array.make sb_slots sb_side_exit in
  let page = { sb_code = code; sb_alive = true } in
  let build ctx slot =
    let f = sb_compile t ~ppn ~slot in
    code.(slot) <- f;
    f ctx slot
  in
  Array.fill code 0 sb_slots build;
  page

(* Superblock entry: same preconditions and same contract as
   [exec_block] — returns instructions retired, 0 = stepped takeover.
   Entry guards ride on [fast_fetch_paddr]: alignment, satp and TLB
   generation, no pending ECC faults, bounds and the isolation check. *)
let sb_exec t (core : core) ~fuel =
  let fp0 = fast_fetch_paddr t core in
  if fp0 < 0 then 0
  else begin
    let ppn = fp0 lsr page_shift in
    let page =
      match t.sb_pages.(ppn) with
      | Some p -> p
      | None ->
          let p = sb_new_page t ppn in
          t.sb_pages.(ppn) <- Some p;
          p
    in
    let ctx = t.sb_ctxs.(core.id) in
    ctx.sx_page <- page;
    ctx.sx_paging <- t.fetch.(core.id).f_satp >= 0;
    ctx.sx_vbase <- Int64.sub core.pc (Int64.of_int (fp0 land page_mask));
    ctx.sx_epoch <- t.phys_epoch;
    ctx.sx_gen <- Tlb.generation core.tlb;
    ctx.sx_fuel <- fuel;
    ctx.sx_exit_pc <- core.pc;
    ctx.sx_cycles <- 0;
    ctx.sx_instret <- 0;
    ctx.sx_fetch_notes <- 0;
    ctx.sx_tlb_ctr <- 0;
    ctx.sx_l1h <- 0;
    ctx.sx_l1m <- 0;
    ctx.sx_l2h <- 0;
    ctx.sx_l2m <- 0;
    ctx.sx_line <- -1;
    ctx.sx_line_rep <- 0;
    ctx.sx_side_exit <- false;
    let code = page.sb_code in
    let slot = ref ((fp0 land page_mask) lsr 2) in
    let running = ref true in
    while !running do
      if ctx.sx_fuel <= 0 then begin
        ctx.sx_exit_pc <- Int64.add ctx.sx_vbase (Int64.of_int (!slot lsl 2));
        running := false
      end
      else begin
        let next = (Array.unsafe_get code !slot) ctx !slot in
        if next >= 0 then slot := next else running := false
      end
    done;
    sb_flush_line core ctx;
    core.pc <- ctx.sx_exit_pc;
    core.cycles <- core.cycles + ctx.sx_cycles;
    core.instret <- core.instret + ctx.sx_instret;
    if ctx.sx_fetch_notes > 0 then Tlb.note_hits core.tlb ctx.sx_fetch_notes;
    (match t.ctrs with
    | Some c ->
        if ctx.sx_instret > 0 then begin
          Tel.Metrics.add c.c_instret ctx.sx_instret;
          Tel.Metrics.incr c.c_sb_blocks;
          Tel.Metrics.add c.c_sb_instret ctx.sx_instret
        end;
        if ctx.sx_tlb_ctr > 0 then Tel.Metrics.add c.c_tlb_hits ctx.sx_tlb_ctr;
        if ctx.sx_l1h > 0 then Tel.Metrics.add c.c_l1_hits ctx.sx_l1h;
        if ctx.sx_l1m > 0 then Tel.Metrics.add c.c_l1_misses ctx.sx_l1m;
        if ctx.sx_l2h > 0 then Tel.Metrics.add c.c_l2_hits ctx.sx_l2h;
        if ctx.sx_l2m > 0 then Tel.Metrics.add c.c_l2_misses ctx.sx_l2m;
        if ctx.sx_side_exit then Tel.Metrics.incr c.c_sb_side_exits
    | None -> ());
    ctx.sx_instret
  end

let run t ~core ~fuel =
  let c = t.cores.(core) in
  let start = c.instret in
  let budget = ref fuel in
  while (not c.halted) && !budget > 0 do
    let before = c.instret in
    (if
       t.fast_path && t.fault_hooks = None
       && c.timer_cmp = None
       && Queue.is_empty c.pending_interrupts
     then begin
       let n =
         if t.superblock then sb_exec t c ~fuel:!budget
         else exec_block t c ~fuel:!budget
       in
       if n = 0 then step t c
     end
     else step t c);
    (* Trap deliveries retire no instruction; still consume fuel so a
       fault loop cannot hang the simulation. *)
    budget := !budget - max 1 (c.instret - before)
  done;
  c.instret - start

(* The fault engine's entry point for memory corruption. Routing it
   through the machine (rather than straight into [Phys_mem]) keeps
   the invalidation contract in one place: the write hook installed at
   [create] drops any predecoded instructions for the touched page, so
   an injected flip can never execute as a stale decode. *)
let inject_bit_flip t ~paddr ~bit = Phys_mem.inject_bit_flip t.mem ~paddr ~bit

let trace_dma t ~write ~paddr ~len ~granted =
  if Tel.Sink.enabled t.sink then begin
    Tel.Sink.incr_counter t.sink
      (if not granted then "hw.dma.rejected"
       else if write then "hw.dma.writes"
       else "hw.dma.reads");
    Tel.Sink.emit t.sink ~core:(-1) ~cycles:(now t)
      (Tel.Event.Dma_transfer { write; paddr; len; granted })
  end

let dma_write t ~paddr data =
  let len = String.length data in
  if not (t.dma_check ~paddr ~len) then begin
    trace_dma t ~write:true ~paddr ~len ~granted:false;
    Error (Trap.Access_fault (Trap.Write, Int64.of_int paddr))
  end
  else if paddr < 0 || paddr + len > Phys_mem.size t.mem then
    Error (Trap.Access_fault (Trap.Write, Int64.of_int paddr))
  else begin
    match ecc_check_exn t ~core_id:(-1) ~cycles:(now t) ~pos:paddr ~len with
    | exception Fault f ->
        trace_dma t ~write:true ~paddr ~len ~granted:false;
        Error f
    | () ->
        trace_dma t ~write:true ~paddr ~len ~granted:true;
        Phys_mem.write_string t.mem ~pos:paddr data;
        Ok ()
  end

let dma_read t ~paddr ~len =
  if not (t.dma_check ~paddr ~len) then begin
    trace_dma t ~write:false ~paddr ~len ~granted:false;
    Error (Trap.Access_fault (Trap.Read, Int64.of_int paddr))
  end
  else if paddr < 0 || len < 0 || paddr + len > Phys_mem.size t.mem then
    Error (Trap.Access_fault (Trap.Read, Int64.of_int paddr))
  else begin
    match ecc_check_exn t ~core_id:(-1) ~cycles:(now t) ~pos:paddr ~len with
    | exception Fault f ->
        trace_dma t ~write:false ~paddr ~len ~granted:false;
        Error f
    | () ->
        trace_dma t ~write:false ~paddr ~len ~granted:true;
        Ok (Phys_mem.read_string t.mem ~pos:paddr ~len)
  end
