type perms = { r : bool; w : bool; x : bool; u : bool }
type fault = Invalid_mapping | Walk_access_denied of int

let levels = 3
let entries_per_table = 512
let vpn_bits = 39
let pte_size = 8

(* PTE layout (RISC-V Sv39): bit0 V, bit1 R, bit2 W, bit3 X, bit4 U,
   PPN in bits 10..53. An entry with V set and R=W=X=0 points to the
   next table level; any of R/W/X set makes it a leaf. *)
let bit n v = if v then Int64.shift_left 1L n else 0L

let encode_pte ~ppn ~perms ~valid =
  Int64.logor
    (Int64.shift_left (Int64.of_int ppn) 10)
    (Int64.logor (bit 0 valid)
       (Int64.logor (bit 1 perms.r)
          (Int64.logor (bit 2 perms.w)
             (Int64.logor (bit 3 perms.x) (bit 4 perms.u)))))

let decode_pte v =
  let get n = Int64.logand (Int64.shift_right_logical v n) 1L = 1L in
  if not (get 0) then Error ()
  else begin
    let perms = { r = get 1; w = get 2; x = get 3; u = get 4 } in
    let ppn = Int64.to_int (Int64.shift_right_logical v 10) land 0xfffffffffff in
    let is_leaf = perms.r || perms.w || perms.x in
    Ok (ppn, perms, is_leaf)
  end

let vpn_index vaddr level =
  (* level 2 is the root; each index is 9 bits. *)
  (vaddr lsr (12 + (9 * level))) land (entries_per_table - 1)

let walk_steps mem ~root_ppn ~vaddr ~pte_fetch_ok =
  let steps = ref 0 in
  let rec go table_ppn level =
    let pte_addr =
      Phys_mem.page_base table_ppn + (pte_size * vpn_index vaddr level)
    in
    (* A corrupted intermediate PTE can point the walk outside physical
       memory; real hardware reports that as an invalid translation,
       not a crash. *)
    if pte_addr < 0 || pte_addr + pte_size > Phys_mem.size mem then
      Error Invalid_mapping
    else if not (pte_fetch_ok pte_addr) then Error (Walk_access_denied pte_addr)
    else begin
      incr steps;
      match decode_pte (Phys_mem.read_u64 mem pte_addr) with
      | Error () -> Error Invalid_mapping
      | Ok (ppn, perms, is_leaf) ->
          if is_leaf then begin
            (* Resolve superpage leaves to the containing 4 KiB frame. *)
            let span = 1 lsl (9 * level) in
            let frame = ppn + ((vaddr lsr 12) land (span - 1)) in
            Ok (frame, perms)
          end
          else if level = 0 then Error Invalid_mapping
          else go ppn (level - 1)
    end
  in
  let result = go root_ppn (levels - 1) in
  (result, !steps)

let walk mem ~root_ppn ~vaddr ~pte_fetch_ok =
  fst (walk_steps mem ~root_ppn ~vaddr ~pte_fetch_ok)

let walk_cost_levels mem ~root_ppn ~vaddr ~pte_fetch_ok =
  snd (walk_steps mem ~root_ppn ~vaddr ~pte_fetch_ok)

let map mem ~root_ppn ~vaddr ~ppn ~perms ~alloc_table =
  let rec go table_ppn level =
    let pte_addr =
      Phys_mem.page_base table_ppn + (pte_size * vpn_index vaddr level)
    in
    if level = 0 then begin
      match decode_pte (Phys_mem.read_u64 mem pte_addr) with
      | Ok _ -> invalid_arg "Page_table.map: slot already mapped"
      | Error () ->
          Phys_mem.write_u64 mem pte_addr (encode_pte ~ppn ~perms ~valid:true)
    end
    else begin
      match decode_pte (Phys_mem.read_u64 mem pte_addr) with
      | Ok (next_ppn, _, false) -> go next_ppn (level - 1)
      | Ok (_, _, true) -> invalid_arg "Page_table.map: superpage in the way"
      | Error () ->
          let next_ppn = alloc_table () in
          Phys_mem.write_u64 mem pte_addr
            (encode_pte ~ppn:next_ppn
               ~perms:{ r = false; w = false; x = false; u = false }
               ~valid:true);
          go next_ppn (level - 1)
    end
  in
  go root_ppn (levels - 1)

let unmap mem ~root_ppn ~vaddr =
  let rec go table_ppn level =
    let pte_addr =
      Phys_mem.page_base table_ppn + (pte_size * vpn_index vaddr level)
    in
    match decode_pte (Phys_mem.read_u64 mem pte_addr) with
    | Error () -> false
    | Ok (_, _, true) when level > 0 -> false
    | Ok (_, _, true) ->
        Phys_mem.write_u64 mem pte_addr 0L;
        true
    | Ok (next_ppn, _, false) ->
        if level = 0 then false else go next_ppn (level - 1)
  in
  go root_ppn (levels - 1)
