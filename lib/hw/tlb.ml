type perms = { r : bool; w : bool; x : bool; u : bool }

type entry = {
  mutable valid : bool;
  mutable vpn : int;
  mutable ppn : int;
  mutable perms : perms;
}

type t = {
  entries : entry array;
  mutable next : int;  (* round-robin fill pointer *)
  mutable mru : int;  (* slot of the last hit or insert, probed first *)
  mutable gen : int;  (* see [generation] *)
  mutable hits : int;
  mutable misses : int;
}

let no_perms = { r = false; w = false; x = false; u = false }

let create ~entries =
  if entries <= 0 then invalid_arg "Tlb.create: entries must be positive";
  {
    entries =
      Array.init entries (fun _ ->
          { valid = false; vpn = 0; ppn = 0; perms = no_perms });
    next = 0;
    mru = 0;
    gen = 0;
    hits = 0;
    misses = 0;
  }

(* Early-exit scan. A vpn appears in at most one valid slot ([insert]
   reuses the existing mapping's slot), so the first match is the only
   match. Returns the slot index, or -1. *)
let rec scan entries vpn i n =
  if i >= n then -1
  else
    let e = entries.(i) in
    if e.valid && e.vpn = vpn then i else scan entries vpn (i + 1) n

let find t ~vpn =
  let m = t.entries.(t.mru) in
  if m.valid && m.vpn = vpn then begin
    t.hits <- t.hits + 1;
    t.mru
  end
  else begin
    let i = scan t.entries vpn 0 (Array.length t.entries) in
    if i >= 0 then begin
      t.hits <- t.hits + 1;
      t.mru <- i
    end
    else t.misses <- t.misses + 1;
    i
  end

let slot_ppn t i = t.entries.(i).ppn
let slot_perms t i = t.entries.(i).perms

let lookup t ~vpn =
  let i = find t ~vpn in
  if i < 0 then None else Some (t.entries.(i).ppn, t.entries.(i).perms)

let note_hit t = t.hits <- t.hits + 1
let note_hits t n = t.hits <- t.hits + n

(* Pure lookup for the superblock tier: same slot [find] would return,
   but no statistics and no MRU promotion, so a side exit that replays
   the access on the stepped path observes an untouched TLB. *)
let probe t ~vpn =
  let m = t.entries.(t.mru) in
  if m.valid && m.vpn = vpn then t.mru
  else scan t.entries vpn 0 (Array.length t.entries)

let commit_hit t i =
  t.hits <- t.hits + 1;
  t.mru <- i

let insert t ~vpn ~ppn ~perms =
  t.gen <- t.gen + 1;
  let n = Array.length t.entries in
  (* Reuse an existing mapping slot when present, else round-robin. *)
  let slot =
    match scan t.entries vpn 0 n with
    | i when i >= 0 -> i
    | _ ->
        let s = t.next in
        t.next <- (s + 1) mod n;
        s
  in
  let e = t.entries.(slot) in
  e.valid <- true;
  e.vpn <- vpn;
  e.ppn <- ppn;
  e.perms <- perms;
  t.mru <- slot

let flush t =
  t.gen <- t.gen + 1;
  Array.iter (fun e -> e.valid <- false) t.entries

let flush_vpn t ~vpn =
  t.gen <- t.gen + 1;
  Array.iter (fun e -> if e.vpn = vpn then e.valid <- false) t.entries

let generation t = t.gen

let iter_entries t f =
  Array.iter
    (fun e -> if e.valid then f ~vpn:e.vpn ~ppn:e.ppn ~perms:e.perms)
    t.entries

let entry_count t =
  Array.fold_left (fun n e -> if e.valid then n + 1 else n) 0 t.entries

let stats t = (t.hits, t.misses)

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
