type perms = { r : bool; w : bool; x : bool; u : bool }

type entry = {
  mutable valid : bool;
  mutable vpn : int;
  mutable ppn : int;
  mutable perms : perms;
}

type t = {
  entries : entry array;
  mutable next : int;
  mutable hits : int;
  mutable misses : int;
}

let no_perms = { r = false; w = false; x = false; u = false }

let create ~entries =
  if entries <= 0 then invalid_arg "Tlb.create: entries must be positive";
  {
    entries =
      Array.init entries (fun _ ->
          { valid = false; vpn = 0; ppn = 0; perms = no_perms });
    next = 0;
    hits = 0;
    misses = 0;
  }

let lookup t ~vpn =
  let found = ref None in
  Array.iter
    (fun e -> if e.valid && e.vpn = vpn then found := Some (e.ppn, e.perms))
    t.entries;
  (match !found with
  | Some _ -> t.hits <- t.hits + 1
  | None -> t.misses <- t.misses + 1);
  !found

let insert t ~vpn ~ppn ~perms =
  (* Reuse an existing mapping slot when present, else round-robin. *)
  let slot = ref None in
  Array.iter (fun e -> if e.valid && e.vpn = vpn then slot := Some e) t.entries;
  let e =
    match !slot with
    | Some e -> e
    | None ->
        let e = t.entries.(t.next) in
        t.next <- (t.next + 1) mod Array.length t.entries;
        e
  in
  e.valid <- true;
  e.vpn <- vpn;
  e.ppn <- ppn;
  e.perms <- perms

let flush t = Array.iter (fun e -> e.valid <- false) t.entries

let flush_vpn t ~vpn =
  Array.iter (fun e -> if e.vpn = vpn then e.valid <- false) t.entries

let iter_entries t f =
  Array.iter
    (fun e -> if e.valid then f ~vpn:e.vpn ~ppn:e.ppn ~perms:e.perms)
    t.entries

let entry_count t =
  Array.fold_left (fun n e -> if e.valid then n + 1 else n) 0 t.entries

let stats t = (t.hits, t.misses)

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
