module Hw = Sanctorum_hw
module Tel = Sanctorum_telemetry

let create machine =
  let mem = Hw.Machine.mem machine in
  let mem_bytes = Hw.Phys_mem.size mem in
  let owners = Owner_map.create mem ~initial_owner:Hw.Trap.domain_untrusted in
  Owner_map.set_range owners ~lo:0 ~hi:Platform.sm_memory_bytes
    Hw.Trap.domain_sm;
  (* Entry 0 on every core: the monitor's memory, locked, no access for
     any mode. The monitor model performs its own memory operations
     natively, standing in for M-mode execution. *)
  Array.iter
    (fun (c : Hw.Machine.core) ->
      Hw.Pmp.set_entry c.Hw.Machine.pmp ~index:0 ~lo:0
        ~hi:Platform.sm_memory_bytes ~r:false ~w:false ~x:false ~locked:true)
    (Hw.Machine.cores machine);
  let program_pmp (core : Hw.Machine.core) domain =
    let pmp = core.Hw.Machine.pmp in
    for i = 1 to Hw.Pmp.count pmp - 1 do
      Hw.Pmp.clear_entry pmp ~index:i
    done;
    let next = ref 1 in
    let overflow = ref false in
    let add ~lo ~hi ~allow =
      if !next < Hw.Pmp.count pmp - 1 then begin
        Hw.Pmp.set_entry pmp ~index:!next ~lo ~hi ~r:allow ~w:allow ~x:allow
          ~locked:false;
        incr next
      end
      else overflow := true
    in
    (* One pass over the owner map classifies every range: another
       enclave's memory is a deny, the incoming domain's own memory an
       allow. Only live ownership matters, so the walk costs the same
       however many enclaves have come and gone — a cumulative
       per-domain list here once made long churn runs quadratic. *)
    let denies = ref [] and allows = ref [] in
    Owner_map.iter_ranges owners (fun ~lo ~hi ~domain:d ->
        if d <> Hw.Trap.domain_sm && d <> Hw.Trap.domain_untrusted then
          if d = domain then allows := (lo, hi) :: !allows
          else denies := (lo, hi) :: !denies);
    (* Security-critical entries first: every other enclave's ranges
       are denied. If the entry budget overflows, dropped entries must
       be denies of the lowest-priority kind, never silent allows. *)
    List.iter (fun (lo, hi) -> add ~lo ~hi ~allow:false) (List.rev !denies);
    (* Then the incoming domain's own ranges. *)
    List.iter (fun (lo, hi) -> add ~lo ~hi ~allow:true) (List.rev !allows);
    (* Lowest priority: OS-shared memory stays reachable — but only
       when every deny fitted. On overflow the core fails closed: with
       no background entry, unmatched U/S accesses are denied, so
       running out of PMP entries can cause spurious faults but never
       an isolation violation. *)
    if !overflow then Hw.Pmp.clear_entry pmp ~index:(Hw.Pmp.count pmp - 1)
    else
      Hw.Pmp.set_entry pmp
        ~index:(Hw.Pmp.count pmp - 1)
        ~lo:0 ~hi:mem_bytes ~r:true ~w:true ~x:true ~locked:false
  in
  let phys_check ~(core : Hw.Machine.core) ~access ~paddr =
    Hw.Pmp.check core.Hw.Machine.pmp ~privilege:Hw.Pmp.U ~access ~paddr
  in
  let pte_fetch_check ~(core : Hw.Machine.core) ~paddr =
    Hw.Pmp.check core.Hw.Machine.pmp ~privilege:Hw.Pmp.U ~access:Hw.Trap.Read
      ~paddr
  in
  let dma_check ~paddr ~len =
    len >= 0
    && paddr >= 0
    && paddr + len <= mem_bytes
    && begin
         let lo = Sanctorum_util.Bits.align_down paddr Hw.Phys_mem.page_size in
         let hi =
           Sanctorum_util.Bits.align_up (paddr + max len 1) Hw.Phys_mem.page_size
         in
         Owner_map.range_owned_by owners ~lo ~hi Hw.Trap.domain_untrusted
       end
  in
  Hw.Machine.set_phys_check machine phys_check;
  Hw.Machine.set_pte_fetch_check machine pte_fetch_check;
  Hw.Machine.set_dma_check machine dma_check;
  let page = Hw.Phys_mem.page_size in
  let assign_range ~lo ~hi domain =
    if lo mod page <> 0 || hi mod page <> 0 || lo >= hi then
      Error "keystone: grants are page-aligned ranges"
    else if hi > mem_bytes then Error "keystone: range beyond physical memory"
    else begin
      Owner_map.set_range owners ~lo ~hi domain;
      (* Cores currently inside a domain see the new white-list at
         once, as a real monitor would re-program PMP under a lock. *)
      Array.iter
        (fun (c : Hw.Machine.core) -> program_pmp c c.Hw.Machine.domain)
        (Hw.Machine.cores machine);
      Hw.Machine.note_protection_change machine;
      Ok ()
    end
  in
  let l2 = Hw.Machine.l2 machine in
  let clean_range ~lo ~hi =
    Hw.Phys_mem.zero_range mem ~pos:lo ~len:(hi - lo);
    let line = (Hw.Cache.config l2).Hw.Cache.line_bytes in
    let rec go addr =
      if addr < hi then begin
        Hw.Cache.flush_set l2 (Hw.Cache.set_of_paddr l2 addr);
        go (addr + line)
      end
    in
    go lo;
    Hw.Machine.tlb_shootdown machine ~reason:"region-clean-shootdown"
  in
  let enter_domain ~(core : Hw.Machine.core) domain =
    Hw.Cache.flush_all core.Hw.Machine.l1;
    Hw.Tlb.flush core.Hw.Machine.tlb;
    program_pmp core domain;
    core.Hw.Machine.domain <- domain;
    Hw.Machine.note_protection_change machine;
    let sink = Hw.Machine.sink machine in
    if Tel.Sink.enabled sink then begin
      let id = core.Hw.Machine.id and cycles = core.Hw.Machine.cycles in
      Tel.Sink.emit sink ~core:id ~cycles
        (Tel.Event.Tlb_flush { reason = "domain-switch" });
      Tel.Sink.emit sink ~core:id ~cycles (Tel.Event.Domain_switch { domain })
    end
  in
  {
    Platform.name = "keystone";
    machine;
    alloc_unit = page;
    llc_partitioned = false;
    assign_range;
    owner_at = (fun ~paddr -> Owner_map.owner_at owners ~paddr);
    clean_range;
    enter_domain;
    ranges_of_domain = (fun d -> Owner_map.domain_ranges owners d);
  }
