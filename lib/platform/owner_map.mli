(** Page-granular bookkeeping of which protection domain owns each
    physical page. Both platform backends keep this map as the ground
    truth that their hardware primitive (DRAM regions / PMP) enforces. *)

type t

val create : Sanctorum_hw.Phys_mem.t -> initial_owner:Sanctorum_hw.Trap.domain -> t

val owner_at : t -> paddr:int -> Sanctorum_hw.Trap.domain
(** Raises [Invalid_argument] for an out-of-range address. *)

val set_range : t -> lo:int -> hi:int -> Sanctorum_hw.Trap.domain -> unit
(** [lo, hi) must be page-aligned. *)

val range_owned_by :
  t -> lo:int -> hi:int -> Sanctorum_hw.Trap.domain -> bool
(** Every page of [lo, hi) belongs to the given domain. *)

val pages : t -> int

val domain_ranges : t -> Sanctorum_hw.Trap.domain -> (int * int) list
(** Maximal contiguous [lo, hi) byte ranges owned by a domain, in
    ascending order. *)

val iter_ranges :
  t -> (lo:int -> hi:int -> domain:Sanctorum_hw.Trap.domain -> unit) -> unit
(** One pass over the whole map: [f] is called once per maximal
    same-owner [lo, hi) byte range, in ascending address order. Lets a
    caller rebuild its view of every domain at once without paying one
    {!domain_ranges} scan per domain. *)
