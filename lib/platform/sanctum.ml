module Hw = Sanctorum_hw
module Tel = Sanctorum_telemetry

let default_region_count = 64

let region_of ~region_bytes paddr = paddr / region_bytes

let create ?(region_count = default_region_count) machine =
  let mem = Hw.Machine.mem machine in
  let mem_bytes = Hw.Phys_mem.size mem in
  let region_bytes = mem_bytes / region_count in
  if
    region_bytes * region_count <> mem_bytes
    || region_bytes mod Hw.Phys_mem.page_size <> 0
  then
    invalid_arg "Sanctum.create: memory does not split into aligned regions";
  let owners = Owner_map.create mem ~initial_owner:Hw.Trap.domain_untrusted in
  Owner_map.set_range owners ~lo:0 ~hi:Platform.sm_memory_bytes
    Hw.Trap.domain_sm;
  (* LLC partitioning: region index bits select a disjoint group of
     cache sets (page coloring), so no two regions ever contend. *)
  let l2 = Hw.Machine.l2 machine in
  let l2_cfg = Hw.Cache.config l2 in
  let sets_per_region = max 1 (l2_cfg.Hw.Cache.sets / region_count) in
  let color_index paddr =
    let region = region_of ~region_bytes paddr mod region_count in
    let line = paddr / l2_cfg.Hw.Cache.line_bytes in
    ((region * sets_per_region) + (line mod sets_per_region))
    land (l2_cfg.Hw.Cache.sets - 1)
  in
  Hw.Cache.set_index_fn l2 color_index;
  let owner_at ~paddr = Owner_map.owner_at owners ~paddr in
  (* A domain reaches its own memory and memory the OS left shared
     (untrusted-owned). Cross-domain accesses fault in hardware. *)
  let phys_check ~(core : Hw.Machine.core) ~access:_ ~paddr =
    let owner = owner_at ~paddr in
    owner = core.Hw.Machine.domain || owner = Hw.Trap.domain_untrusted
  in
  (* Private page walks: every PTE fetch must target memory owned by
     the walking domain itself (the Sanctum page-walk invariant). *)
  let pte_fetch_check ~(core : Hw.Machine.core) ~paddr =
    owner_at ~paddr = core.Hw.Machine.domain
  in
  let dma_check ~paddr ~len =
    len >= 0
    && paddr >= 0
    && paddr + len <= mem_bytes
    && begin
         let lo = Sanctorum_util.Bits.align_down paddr Hw.Phys_mem.page_size in
         let hi =
           Sanctorum_util.Bits.align_up (paddr + max len 1) Hw.Phys_mem.page_size
         in
         Owner_map.range_owned_by owners ~lo ~hi Hw.Trap.domain_untrusted
       end
  in
  Hw.Machine.set_phys_check machine phys_check;
  Hw.Machine.set_pte_fetch_check machine pte_fetch_check;
  Hw.Machine.set_dma_check machine dma_check;
  let assign_range ~lo ~hi domain =
    if lo mod region_bytes <> 0 || hi mod region_bytes <> 0 || lo >= hi then
      Error "sanctum: grants are whole DRAM regions"
    else if hi > mem_bytes then Error "sanctum: range beyond physical memory"
    else begin
      Owner_map.set_range owners ~lo ~hi domain;
      Hw.Machine.note_protection_change machine;
      Ok ()
    end
  in
  let flush_llc_range ~lo ~hi =
    let line = l2_cfg.Hw.Cache.line_bytes in
    let rec go addr =
      if addr < hi then begin
        Hw.Cache.flush_set l2 (color_index addr);
        go (addr + line)
      end
    in
    go lo
  in
  let clean_range ~lo ~hi =
    Hw.Phys_mem.zero_range mem ~pos:lo ~len:(hi - lo);
    flush_llc_range ~lo ~hi;
    (* Region re-allocation requires a TLB shootdown on every core and
       private caches cannot keep lines of the reassigned region. The
       machine-level protocol retries lost IPIs and quarantines cores
       that never acknowledge. *)
    Hw.Machine.tlb_shootdown machine ~reason:"region-clean-shootdown"
  in
  let enter_domain ~(core : Hw.Machine.core) domain =
    (* Cores are time-multiplexed: all per-core microarchitectural
       state is flushed at each re-allocation (§IV-B2). *)
    Hw.Cache.flush_all core.Hw.Machine.l1;
    Hw.Tlb.flush core.Hw.Machine.tlb;
    core.Hw.Machine.domain <- domain;
    Hw.Machine.note_protection_change machine;
    let sink = Hw.Machine.sink machine in
    if Tel.Sink.enabled sink then begin
      let id = core.Hw.Machine.id and cycles = core.Hw.Machine.cycles in
      Tel.Sink.emit sink ~core:id ~cycles
        (Tel.Event.Tlb_flush { reason = "domain-switch" });
      Tel.Sink.emit sink ~core:id ~cycles (Tel.Event.Domain_switch { domain })
    end
  in
  {
    Platform.name = "sanctum";
    machine;
    alloc_unit = region_bytes;
    llc_partitioned = true;
    assign_range;
    owner_at = (fun ~paddr -> owner_at ~paddr);
    clean_range;
    enter_domain;
    ranges_of_domain = (fun d -> Owner_map.domain_ranges owners d);
  }
