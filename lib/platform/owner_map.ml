module Hw = Sanctorum_hw

type t = { owners : int array }

let page = Hw.Phys_mem.page_size

(* [owner_at] sits on the per-fetch isolation check: a logical shift
   instead of a division (whose divisor the compiler cannot see across
   the module boundary) keeps it off the profile. *)
let page_shift = 12
let () = assert (page = 1 lsl page_shift)

let create mem ~initial_owner =
  { owners = Array.make (Hw.Phys_mem.size mem / page) initial_owner }

let owner_at t ~paddr =
  (* negative [paddr] shifts to a huge positive int, caught by the
     length check *)
  let p = paddr lsr page_shift in
  if p >= Array.length t.owners then
    invalid_arg "Owner_map.owner_at: address out of range";
  t.owners.(p)

let check_aligned lo hi =
  if lo mod page <> 0 || hi mod page <> 0 || lo > hi then
    invalid_arg "Owner_map: range must be page-aligned"

let set_range t ~lo ~hi domain =
  check_aligned lo hi;
  for p = lo / page to (hi / page) - 1 do
    t.owners.(p) <- domain
  done

let range_owned_by t ~lo ~hi domain =
  check_aligned lo hi;
  let ok = ref (lo < hi) in
  for p = lo / page to (hi / page) - 1 do
    if t.owners.(p) <> domain then ok := false
  done;
  !ok

let pages t = Array.length t.owners

let iter_ranges t f =
  let n = Array.length t.owners in
  let lo = ref 0 in
  for p = 1 to n do
    if p = n || t.owners.(p) <> t.owners.(!lo) then begin
      f ~lo:(!lo * page) ~hi:(p * page) ~domain:t.owners.(!lo);
      lo := p
    end
  done

let domain_ranges t domain =
  let n = Array.length t.owners in
  let rec scan p acc current =
    if p = n then begin
      match current with
      | Some lo -> List.rev ((lo, n * page) :: acc)
      | None -> List.rev acc
    end
    else if t.owners.(p) = domain then
      scan (p + 1) acc (match current with Some _ -> current | None -> Some (p * page))
    else begin
      match current with
      | Some lo -> scan (p + 1) ((lo, p * page) :: acc) None
      | None -> scan (p + 1) acc None
    end
  in
  scan 0 [] None
