module C = Sanctorum_crypto
module A = Sanctorum.Attestation
module B = Sanctorum.Boot
module Img = Sanctorum.Image
module Tel = Sanctorum_telemetry
module Wl = Sanctorum_workload
module Rng = Sanctorum_util.Splitmix
open Sanctorum_os

type config = {
  seed : string;
  backend : Testbed.backend;
  shards : int;
  cores : int;
  enclaves : int;
  jobs : int;
  target : int;
  mix : Wl.Programs.mix;
  policy : Policy.t;
  retry_budget : int;
  batch_rounds : int;
  fuel : int;
  quantum : int;
  check_every : int;
  faults : (int * Sanctorum_faults.Spec.t) list;
  fault_horizon : int;
  rogue : int list;
  net : Netfault.spec;
  net_horizon : int;
}

let default =
  {
    seed = "fleet";
    backend = Testbed.Keystone_backend;
    shards = 2;
    cores = 4;
    enclaves = 12;
    jobs = 24;
    target = 4;
    mix = Wl.Programs.Compute;
    policy = Policy.Round_robin;
    retry_budget = 3;
    batch_rounds = 600;
    fuel = 2000;
    quantum = 500;
    check_every = 16;
    faults = [];
    fault_horizon = 200_000;
    rogue = [];
    net = Netfault.empty;
    net_horizon = 48;
  }

type shard_outcome = {
  so_node : int;
  so_joined : bool;
  so_evicted : bool;
  so_rejoined : bool;
  so_epoch : int;
  so_report : Wl.Workload.report;
}

type outcome = {
  r_config_shards : int;
  r_policy : Policy.t;
  r_seed : string;
  r_shards : shard_outcome list;
  r_completed : int list;
  r_failed_closed : (int * string) list;
  r_generations : int;
  r_wall_s : float;
  r_instret : int;
  r_ops : int;
  r_mips : float;
  r_ops_per_sec : float;
  r_p50 : int;
  r_p90 : int;
  r_p99 : int;
  r_findings : int;
  r_accounted : bool;
  r_clean : bool;
  r_counters : (string * int) list;
}

let shard_seed cfg i = Printf.sprintf "%s/shard-%d" cfg.seed i

let job_seed cfg jid =
  Rng.next (Rng.of_string (Printf.sprintf "%s/job-%d" cfg.seed jid))

(* Protocol pacing, all in cluster ticks (virtual time: one event-loop
   sweep). Nothing here reads the wall clock. *)
let join_deadline = 120 (* challenge unanswered -> retry, fresh epoch *)
let suspect_deadline = 240 (* silence while work is outstanding -> fence *)
let probe_every = 64 (* rejoin challenge cadence for a fenced node *)

(* Join and probe budgets must outlast the longest partition the fault
   layer can draw — [Netfault.plan] caps a seeded window at
   horizon*8 + 512 ticks — or a merely-partitioned node is declared
   Dead (an absorbing state) and, with every peer dark, the whole job
   set fails closed. 8 x 120 and 24 x 64 both clear the default
   horizon's worst window (~900 ticks) with margin while keeping every
   run bounded. *)
let join_tries = 8 (* challenge attempts before a node is given up *)
let probe_tries = 24 (* rejoin challenges before a fenced node is dead *)

type phase =
  | Joining  (* challenge outstanding, never established this epoch *)
  | Established
  | Fenced  (* suspected dead: fenced off, rejoin probes running *)
  | Dead  (* join/rejoin budget exhausted, or quarantined *)

(* Per-node control-plane bookkeeping. The channels are the only state
   shared with the node's domain; the downlink fault schedule and the
   session are cluster-private. *)
type peer = {
  p_id : int;
  p_inbox : Node.to_node Channel.t;  (* cluster -> node *)
  p_outbox : Node.from_node Channel.t;  (* node -> cluster *)
  p_domain : unit Domain.t;
  p_link : Node.to_node Netfault.link;
  p_session : (Node.down, Node.up) Session.t;
  mutable p_phase : phase;
  mutable p_epoch : int;  (* epoch of the current/last challenge *)
  mutable p_secret : C.Dh.secret;  (* fresh per challenge *)
  mutable p_pub_bytes : string;
  mutable p_nonce : string;
  mutable p_challenge_sent : int;  (* tick *)
  mutable p_tries : int;  (* join/rejoin attempts left *)
  mutable p_next_probe : int;  (* tick of the next rejoin challenge *)
  mutable p_alive_at : int;  (* tick the failure-detector clock started *)
  mutable p_ever_joined : bool;
  mutable p_rejoined : bool;
  mutable p_evicted : bool;
  mutable p_batch : (int * Node.job_spec list) option;  (* outstanding *)
  mutable p_reply : Node.up option;
}

let validate cfg =
  let need cond msg = if not cond then invalid_arg ("Cluster.run: " ^ msg) in
  need (cfg.shards >= 1) "shards must be >= 1";
  need (cfg.cores >= 1) "cores must be >= 1";
  need (cfg.enclaves >= 1) "enclaves must be >= 1";
  need (cfg.jobs >= 1) "jobs must be >= 1";
  need (cfg.target >= 1) "target must be >= 1";
  need (cfg.retry_budget >= 0) "retry budget must be >= 0";
  need (cfg.batch_rounds >= 1) "batch_rounds must be >= 1";
  need (cfg.fuel >= 1) "fuel must be >= 1";
  need (cfg.quantum >= 1) "quantum must be >= 1";
  need (cfg.check_every >= 0) "check_every must be >= 0";
  need (cfg.fault_horizon >= 1) "fault_horizon must be >= 1";
  need (cfg.net_horizon >= 1) "net_horizon must be >= 1";
  let members = if cfg.mix = Wl.Programs.Ipc then 2 else 1 in
  need (cfg.enclaves >= members) "enclave capacity below one job"

let run cfg =
  validate cfg;
  let members_per_job = if cfg.mix = Wl.Programs.Ipc then 2 else 1 in
  let batch_cap = max 1 (cfg.enclaves / members_per_job) in
  let net_enabled = not (Netfault.is_empty cfg.net) in
  let metrics = Tel.Metrics.create () in
  let ctr n = Tel.Metrics.counter metrics ("fleet." ^ n) in
  let nctr n = Tel.Metrics.counter metrics ("net." ^ n) in
  let c_placed = ctr "jobs.placed"
  and c_migrated = ctr "jobs.migrated"
  and c_retried = ctr "jobs.retried"
  and c_joined = ctr "nodes.joined"
  and c_rejoined = ctr "nodes.rejoined"
  and c_evicted = ctr "nodes.evicted"
  and c_verified = ctr "attest.verified"
  and c_rejected = ctr "attest.rejected" in
  let c_crypto_verify = Tel.Metrics.counter metrics "crypto.verify"
  and c_crypto_batch = Tel.Metrics.counter metrics "crypto.batch_verify" in
  (* Pre-resolved handles: the event loop bumps these on its hot path,
     so each is resolved to a record once, never by name. *)
  let c_retx = nctr "retransmits"
  and c_dups = nctr "dups_dropped"
  and c_hmac = nctr "hmac_rejects"
  and c_stale = nctr "stale_rejected"
  and c_hb = nctr "heartbeats"
  and c_hb_missed = nctr "heartbeats_missed"
  and c_join_timeouts = nctr "join_timeouts"
  and c_rekeys = nctr "rekeys" in
  let h_retx_delay = Tel.Metrics.histogram metrics "net.retransmit.delay" in
  let fleet_hist = Tel.Metrics.histogram metrics "fleet.quantum.cycles" in
  let drbg = C.Drbg.create ~seed:(cfg.seed ^ "/cluster") in
  let tick = ref 0 in
  let progress = ref false in
  let t0 = Unix.gettimeofday () in
  (* -------------------------------------------------------------- *)
  (* Spawn: one domain per shard, each with a private machine. A
     shard's compute-bound stretches take a slot from this throttle,
     so no more shards crunch at once than the host has cores — on a
     wide machine it admits everyone. *)
  let crunch = Throttle.create (Throttle.host_parallelism ()) in
  let peers =
    List.init cfg.shards (fun i ->
        let node_cfg =
          {
            Node.node_id = i;
            seed = shard_seed cfg i;
            backend = cfg.backend;
            cores = cfg.cores;
            enclaves = cfg.enclaves;
            mix = cfg.mix;
            fuel = cfg.fuel;
            quantum = cfg.quantum;
            check_every = cfg.check_every;
            batch_rounds = cfg.batch_rounds;
            faults = List.assoc_opt i cfg.faults;
            fault_horizon = cfg.fault_horizon;
            rogue = List.mem i cfg.rogue;
            net = cfg.net;
            net_horizon = cfg.net_horizon;
          }
        in
        let inbox = Channel.create () and outbox = Channel.create () in
        let domain =
          Domain.spawn (fun () ->
              (* A minor collection is a stop-the-world sync across
                 every running domain; on a host with fewer cores than
                 shards those syncs serialize through the kernel
                 scheduler and dominate the run. A large per-domain
                 minor heap makes them rare (measured ~4.5x on an
                 oversubscribed single-core host). *)
              Gc.set { (Gc.get ()) with Gc.minor_heap_size = 1 lsl 20 };
              Node.run ~throttle:crunch node_cfg ~inbox ~outbox)
        in
        let link =
          Netfault.create ~chan:inbox
            ~seed:(Rng.next (Rng.of_string (shard_seed cfg i ^ "/net-down")))
            ~spec:cfg.net ~horizon:cfg.net_horizon
            ~clock:(fun () -> !tick)
            ~corrupt:Node.corrupt_to_node ()
        in
        let session =
          Session.create Session.cluster_config
            ~seed:(Rng.next (Rng.of_string (shard_seed cfg i ^ "/session")))
            ~role:Session.Cluster_end ~encode_tx:Node.down_bytes
            ~encode_rx:Node.up_bytes
        in
        let secret, _public = C.Dh.generate drbg in
        {
          p_id = i;
          p_inbox = inbox;
          p_outbox = outbox;
          p_domain = domain;
          p_link = link;
          p_session = session;
          p_phase = Joining;
          p_epoch = 0;
          p_secret = secret;
          p_pub_bytes = "";
          p_nonce = "";
          p_challenge_sent = 0;
          p_tries = (if net_enabled then join_tries else 1);
          p_next_probe = 0;
          p_alive_at = 0;
          p_ever_joined = false;
          p_rejoined = false;
          p_evicted = false;
          p_batch = None;
          p_reply = None;
        })
  in
  (* -------------------------------------------------------------- *)
  (* Job ledger: every jid moves Waiting -> Running -> Done | Failed,
     and the Done/Failed states are absorbing — a duplicated or stale
     completion can never credit a job twice, and a late completion
     never reopens a job that was already failed closed. *)
  let policy_state =
    Policy.create cfg.policy ~nodes:cfg.shards
      ~seed:(Rng.next (Rng.of_string (cfg.seed ^ "/policy")))
  in
  let jstate = Array.make cfg.jobs `Waiting in
  let retries = Array.make cfg.jobs 0 in
  let pending = ref (List.init cfg.jobs Fun.id) in
  let completed = ref [] in
  let failed_closed = ref [] in
  let generations = ref 0 in
  (* Each generation either completes a job, burns a retry, or evicts a
     node, so this bound is unreachable without a livelock bug. *)
  let generation_cap = (cfg.jobs * (cfg.retry_budget + 2)) + cfg.shards + 8 in
  let fail_closed jid reason =
    match jstate.(jid) with
    | `Done | `Failed -> ()
    | `Waiting | `Running ->
        jstate.(jid) <- `Failed;
        failed_closed := (jid, reason) :: !failed_closed
  in
  let complete jid =
    match jstate.(jid) with
    | `Done | `Failed -> ()
    | `Waiting | `Running ->
        jstate.(jid) <- `Done;
        completed := jid :: !completed
  in
  let replace counter jid reason =
    match jstate.(jid) with
    | `Done | `Failed -> ()
    | `Waiting | `Running ->
        jstate.(jid) <- `Waiting;
        Tel.Metrics.incr counter;
        retries.(jid) <- retries.(jid) + 1;
        if retries.(jid) > cfg.retry_budget then
          fail_closed jid (Printf.sprintf "retry budget exhausted (%s)" reason)
        else pending := !pending @ [ jid ]
  in
  (* -------------------------------------------------------------- *)
  (* Join: challenge every node, verify evidence against a root the
     cluster derives itself — never one the node supplied. Every
     challenge attempt gets a fresh epoch, nonce, and DH key, so a
     reply always proves possession of {e this} attempt's transcript
     and a node re-attested after fencing comes back under a new key
     epoch that fences off everything from before. *)
  let expected_measurement = Img.measurement Node.agent_image in
  let challenge p ~epoch =
    let secret, public = C.Dh.generate drbg in
    p.p_secret <- secret;
    p.p_pub_bytes <- C.Dh.public_to_bytes public;
    p.p_nonce <- C.Drbg.random_bytes drbg 32;
    p.p_epoch <- epoch;
    p.p_challenge_sent <- !tick;
    Netfault.send p.p_link
      (Node.Challenge
         {
           ch_epoch = epoch;
           ch_nonce = p.p_nonce;
           ch_cluster_pub = p.p_pub_bytes;
         })
  in
  let evict p =
    if not p.p_evicted then begin
      p.p_evicted <- true;
      Tel.Metrics.incr c_evicted
    end
  in
  let fence p =
    Tel.Metrics.incr c_hb_missed;
    evict p;
    p.p_phase <- Fenced;
    p.p_tries <- probe_tries;
    p.p_next_probe <- !tick + probe_every
  in
  let join_reject p =
    Tel.Metrics.incr c_rejected;
    p.p_tries <- p.p_tries - 1;
    if p.p_tries <= 0 then p.p_phase <- Dead
    else challenge p ~epoch:(p.p_epoch + 1)
  in
  (* Join replies are collected during the sweep and verified together
     at the end of it: one random-linear-combination batch covers every
     candidate's certificate chain and evidence signature, and the
     per-item fallback pinpoints any rogue among honest joiners. All
     per-candidate guards, commits and rejections are unchanged — only
     the Schnorr arithmetic is batched. *)
  let pending_joins = ref [] in
  let collect_joined p ~jd_epoch ~jd_evidence ~jd_node_pub =
    if
      jd_epoch <> p.p_epoch
      || (p.p_phase <> Joining && p.p_phase <> Fenced)
      || List.exists (fun (q, _, _) -> q.p_id = p.p_id) !pending_joins
    then
      (* a reply for an epoch that already moved on (a duplicate after
         establishment, or a second reply in one sweep) dies at this
         guard — counted, so a corrupted handshake frame never
         vanishes untallied *)
      Tel.Metrics.incr c_stale
    else pending_joins := (p, jd_evidence, jd_node_pub) :: !pending_joins
  in
  let commit_joined p ~jd_node_pub verdict =
    begin
      match (verdict, C.Dh.public_of_bytes jd_node_pub) with
      | Ok (), Ok node_public ->
          Tel.Metrics.incr c_verified;
          Session.set_key p.p_session ~epoch:p.p_epoch
            ~key:(C.Dh.shared_key p.p_secret node_public);
          if p.p_phase = Fenced then begin
            p.p_rejoined <- true;
            p.p_evicted <- false;
            Tel.Metrics.incr c_rejoined;
            Tel.Metrics.incr c_rekeys;
            (* The node voided its batch queue when it re-attested (a
               fresh key epoch fences off all in-flight work), so any
               batch still charged to this peer is lost: migrate it
               now, before the peer re-enters Established — otherwise
               the generation barrier waits forever for a Batch_done
               the rekeyed node can no longer send. A reply that
               landed before the fence still counts and folds
               normally. *)
            match (p.p_batch, p.p_reply) with
            | Some (_, jobs), None ->
                List.iter
                  (fun (j : Node.job_spec) ->
                    replace c_migrated j.Node.js_jid "rekeyed mid-batch")
                  jobs;
                p.p_batch <- None
            | _ -> ()
          end;
          if not p.p_ever_joined then Tel.Metrics.incr c_joined;
          p.p_ever_joined <- true;
          p.p_phase <- Established;
          p.p_alive_at <- !tick
      | _ -> join_reject p
    end
  in
  let flush_joins () =
    match List.rev !pending_joins with
    | [] -> ()
    | candidates ->
        pending_joins := [];
        Tel.Metrics.incr c_crypto_batch;
        let reqs =
          List.map
            (fun (p, jd_evidence, jd_node_pub) ->
              {
                A.vr_root =
                  C.Schnorr.public_key
                    (B.manufacturer_root ~seed:(shard_seed cfg p.p_id));
                A.vr_expected_measurement = expected_measurement;
                A.vr_nonce = p.p_nonce;
                A.vr_channel_binding =
                  C.Sha3.sha3_256 (jd_node_pub ^ p.p_pub_bytes);
                A.vr_evidence = jd_evidence;
              })
            candidates
        in
        let verdicts = A.verify_evidence_batch reqs in
        List.iteri
          (fun i (p, _, jd_node_pub) ->
            Tel.Metrics.incr c_crypto_verify;
            commit_joined p ~jd_node_pub verdicts.(i))
          candidates
  in
  let record_up p up =
    match up with
    | Node.Batch_done { bd_gen; _ } -> (
        match p.p_batch with
        | Some (gen, _) when gen = bd_gen && p.p_reply = None ->
            p.p_reply <- Some up
        | _ -> ())
  in
  let drain_peer p =
    let rec go () =
      match Channel.try_recv p.p_outbox with
      | None -> ()
      | Some msg ->
          progress := true;
          (match msg with
          | Node.Joined { jd_epoch; jd_evidence; jd_node_pub; _ } ->
              collect_joined p ~jd_epoch ~jd_evidence ~jd_node_pub
          | Node.Join_failed { jf_epoch; _ } ->
              if
                jf_epoch = p.p_epoch
                && (p.p_phase = Joining || p.p_phase = Fenced)
              then join_reject p
              else Tel.Metrics.incr c_stale (* wrong epoch/phase: tallied *)
          | Node.Up fr -> (
              match p.p_phase with
              | Established -> (
                  match Session.receive p.p_session ~now:!tick fr with
                  | Session.Delivered ups -> List.iter (record_up p) ups
                  | Session.Heartbeat | Session.Duplicate -> ()
                  | Session.Bad_mac | Session.Stale | Session.No_key -> ())
              | Fenced ->
                  (* liveness evidence at best; a fenced node's results
                     are never credited — its work was re-placed. A
                     frame that verifies under no known epoch is an
                     authenticity reject, same as on a live session. *)
                  if Session.verify_only p.p_session fr then
                    Tel.Metrics.incr c_stale
                  else Tel.Metrics.incr c_hmac
              | Joining | Dead ->
                  (* no live session to judge it against: stale by
                     definition, and still tallied *)
                  Tel.Metrics.incr c_stale)
          | Node.Bye _ -> () (* teardown only *));
          go ()
    in
    go ()
  in
  let gen_outstanding () = List.exists (fun p -> p.p_batch <> None) peers in
  let gen_resolved () =
    List.for_all
      (fun p ->
        p.p_batch = None || p.p_reply <> None || p.p_phase <> Established)
      peers
  in
  let fold_generation () =
    progress := true;
    List.iter
      (fun p ->
        (match (p.p_batch, p.p_reply) with
        | None, _ -> ()
        | ( Some _,
            Some
              (Node.Batch_done
                 { bd_completed; bd_failed; bd_unfinished; bd_healthy; _ }) )
          ->
            List.iter complete bd_completed;
            List.iter
              (fun (jid, reason) -> replace c_retried jid reason)
              bd_failed;
            List.iter
              (fun jid -> replace c_migrated jid "migrated off shard")
              bd_unfinished;
            if not bd_healthy then begin
              (* quarantined hardware, not a flaky link: no rejoin *)
              evict p;
              p.p_phase <- Dead
            end
        | Some (_, jobs), None ->
            (* fenced or dead mid-generation: the whole batch migrates,
               exactly like a quarantined shard's unfinished jobs *)
            List.iter
              (fun (j : Node.job_spec) ->
                replace c_migrated j.Node.js_jid "node suspected")
              jobs);
        p.p_batch <- None;
        p.p_reply <- None)
      peers
  in
  let place_generation () =
    if List.for_all (fun p -> p.p_phase = Dead) peers then begin
      (* no shard left to run anything: fail the remainder closed *)
      progress := true;
      List.iter (fun jid -> fail_closed jid "no eligible shard") !pending;
      pending := []
    end
    else if List.exists (fun p -> p.p_phase = Established) peers then
      if !generations >= generation_cap then begin
        progress := true;
        List.iter (fun jid -> fail_closed jid "generation cap") !pending;
        pending := []
      end
      else begin
        progress := true;
        incr generations;
        let gen = !generations in
        let room = Array.make cfg.shards batch_cap in
        let batches = Array.make cfg.shards [] in
        let unplaced = ref [] in
        List.iter
          (fun jid ->
            let eligible =
              List.filter_map
                (fun p ->
                  if p.p_phase = Established && room.(p.p_id) > 0 then
                    Some p.p_id
                  else None)
                peers
            in
            match Policy.place policy_state ~jid ~eligible with
            | None -> unplaced := jid :: !unplaced (* capacity backlog *)
            | Some n ->
                room.(n) <- room.(n) - 1;
                Tel.Metrics.incr c_placed;
                jstate.(jid) <- `Running;
                batches.(n) <-
                  batches.(n)
                  @ [
                      {
                        Node.js_jid = jid;
                        js_seed = job_seed cfg jid;
                        js_target = cfg.target;
                      };
                    ])
          !pending;
        pending := List.rev !unplaced;
        List.iter
          (fun p ->
            match batches.(p.p_id) with
            | [] -> ()
            | jobs ->
                let frame =
                  Session.send p.p_session ~now:!tick (Node.Batch { gen; jobs })
                in
                Netfault.send p.p_link (Node.Down frame);
                p.p_batch <- Some (gen, jobs);
                p.p_alive_at <- !tick)
          peers
      end
    (* else: every live peer is still joining or probing — wait *)
  in
  (* -------------------------------------------------------------- *)
  (* The event loop. One sweep = one tick of virtual time: drain every
     outbox in node-id order (so processing order is deterministic even
     though domains interleave arbitrarily), run the protocol timers,
     then fold/place at the generation barrier. When a sweep makes no
     progress the loop sleeps, adaptively, so an idle cluster costs
     nothing and a busy one never waits. *)
  let net_timers p =
    match p.p_phase with
    | Joining ->
        if !tick - p.p_challenge_sent > join_deadline then begin
          progress := true;
          Tel.Metrics.incr c_join_timeouts;
          p.p_tries <- p.p_tries - 1;
          if p.p_tries <= 0 then p.p_phase <- Dead
          else challenge p ~epoch:(p.p_epoch + 1)
        end
    | Established ->
        List.iter
          (fun (fr, delay) ->
            progress := true;
            Tel.Metrics.incr c_retx;
            Tel.Metrics.observe h_retx_delay delay;
            Netfault.send p.p_link (Node.Down fr))
          (Session.due p.p_session ~now:!tick);
        if Session.exhausted p.p_session then fence p
        else if p.p_batch <> None then begin
          (match Session.heartbeat_due p.p_session ~now:!tick with
          | Some fr -> Netfault.send p.p_link (Node.Down fr)
          | None -> ());
          let heard = max (Session.last_heard p.p_session) p.p_alive_at in
          if !tick - heard > suspect_deadline then fence p
        end
    | Fenced ->
        if !tick >= p.p_next_probe then begin
          progress := true;
          p.p_tries <- p.p_tries - 1;
          if p.p_tries <= 0 then p.p_phase <- Dead
          else begin
            challenge p ~epoch:(p.p_epoch + 1);
            p.p_next_probe <- !tick + probe_every
          end
        end
    | Dead -> ()
  in
  let joins_settled () = List.for_all (fun p -> p.p_phase <> Joining) peers in
  let finished () =
    !pending = [] && List.for_all (fun p -> p.p_batch = None) peers
  in
  (* Pure livelock insurance: the protocol's own bounds (finite fault
     schedules, bounded windows, bounded retries and probes, the
     generation cap) terminate every run long before this trips. *)
  let quiet_cap = 200_000 in
  let quiet = ref 0 in
  List.iter (fun p -> challenge p ~epoch:1) peers;
  while (not (finished ())) && !quiet < quiet_cap do
    incr tick;
    progress := false;
    List.iter drain_peer peers;
    flush_joins ();
    if net_enabled then List.iter net_timers peers;
    List.iter
      (fun p ->
        if p.p_phase = Established && Session.want_ack p.p_session then
          Netfault.send p.p_link (Node.Down (Session.ack_frame p.p_session)))
      peers;
    if gen_outstanding () then begin
      if gen_resolved () then fold_generation ()
    end
    else if !pending <> [] && joins_settled () then place_generation ();
    if !progress then quiet := 0
    else begin
      incr quiet;
      if !quiet > 3 then Unix.sleepf (min 0.002 (0.00005 *. float_of_int !quiet))
    end;
    (* Wall-clock floor on the sweep rate while protocol timers are
       live: heartbeat-ack chatter keeps [progress] hot, and an
       unpaced loop then spins ticks so fast that [suspect_deadline]
       elapses inside one engine round of an honest, hard-crunching
       node — fencing it for being busy, over and over (observed as a
       fence/re-attest/migrate livelock under loss specs). One tick >=
       ~1ms keeps every tick-denominated deadline meaningful in the
       only clock the nodes' compute actually runs in. Faults-off runs
       skip the timers and keep the unpaced barrier path. *)
    if net_enabled then Unix.sleepf 0.001
  done;
  if !quiet >= quiet_cap then begin
    List.iter
      (fun p ->
        match p.p_batch with
        | Some (_, jobs) ->
            List.iter
              (fun (j : Node.job_spec) ->
                fail_closed j.Node.js_jid "livelock safety valve")
              jobs;
            p.p_batch <- None
        | None -> ())
      peers;
    List.iter (fun jid -> fail_closed jid "livelock safety valve") !pending;
    pending := []
  end;
  (* -------------------------------------------------------------- *)
  (* Teardown: out-of-band shutdown past the fault layer (the operator
     console, not the network), so every domain is joined no matter
     the spec. *)
  let finals =
    List.map
      (fun p ->
        Netfault.send_oob p.p_link Node.Shutdown;
        let rec await () =
          match Channel.recv p.p_outbox with
          | Node.Bye { bye_report; bye_hist; bye_net; _ } ->
              (bye_report, bye_hist, bye_net)
          | Node.Up fr ->
              (* the ledger is closed, but a late frame still gets
                 classified — a corrupted one must die at the MAC
                 tally, not vanish into the teardown *)
              ignore (Session.receive p.p_session ~now:!tick fr);
              await ()
          | Node.Joined _ | Node.Join_failed _ ->
              Tel.Metrics.incr c_stale;
              await ()
        in
        let r = await () in
        Domain.join p.p_domain;
        r)
      peers
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  (* Fold the per-endpoint transport counters into the fleet metrics:
     cluster-side links and sessions directly, node-side via [Bye]. *)
  let l n = Tel.Metrics.counter metrics ("net.link." ^ n) in
  List.iter
    (fun p ->
      let ls = Netfault.stats p.p_link in
      Tel.Metrics.add (l "dropped") ls.Netfault.dropped;
      Tel.Metrics.add (l "duplicated") ls.Netfault.duplicated;
      Tel.Metrics.add (l "corrupted") ls.Netfault.corrupted;
      Tel.Metrics.add (l "delayed") ls.Netfault.delayed;
      Tel.Metrics.add (l "reordered") ls.Netfault.reordered;
      Tel.Metrics.add (l "partition_dropped") ls.Netfault.partition_dropped;
      let ss = Session.stats p.p_session in
      Tel.Metrics.add c_dups ss.Session.dups_dropped;
      Tel.Metrics.add c_hmac ss.Session.mac_rejects;
      Tel.Metrics.add c_stale ss.Session.stale_rejects;
      Tel.Metrics.add c_hb ss.Session.heartbeats)
    peers;
  List.iter
    (fun (_, _, bye_net) ->
      List.iter
        (fun (name, v) -> Tel.Metrics.add (Tel.Metrics.counter metrics name) v)
        bye_net)
    finals;
  let shards =
    List.map2
      (fun p (report, _, _) ->
        {
          so_node = p.p_id;
          so_joined = p.p_ever_joined;
          so_evicted = p.p_evicted;
          so_rejoined = p.p_rejoined;
          so_epoch = p.p_epoch;
          so_report = report;
        })
      peers finals
  in
  List.iter (fun (_, h, _) -> Tel.Metrics.merge ~into:fleet_hist h) finals;
  let sum f = List.fold_left (fun acc s -> acc + f s.so_report) 0 shards in
  let instret = sum (fun r -> r.Wl.Workload.rp_instret) in
  let ops =
    sum (fun r ->
        r.Wl.Workload.rp_installs + r.Wl.Workload.rp_reclaims
        + r.Wl.Workload.rp_exits)
  in
  let findings = sum (fun r -> List.length r.Wl.Workload.rp_findings) in
  let completed = List.sort_uniq compare !completed in
  let failed_closed =
    List.sort (fun (a, _) (b, _) -> compare a b) !failed_closed
  in
  let accounted =
    List.length completed + List.length failed_closed = cfg.jobs
    && List.sort compare (completed @ List.map fst failed_closed)
       = List.init cfg.jobs Fun.id
  in
  let shard_clean s =
    let r = s.so_report in
    r.Wl.Workload.rp_reclaimed && r.Wl.Workload.rp_drained
    && r.Wl.Workload.rp_trace_dropped = 0
    && r.Wl.Workload.rp_msgs_accounted
  in
  let clean =
    findings = 0 && accounted
    && List.for_all
         (fun s -> s.so_evicted || (not s.so_joined) || shard_clean s)
         shards
  in
  let rate v = if wall_s > 0. then float_of_int v /. wall_s else 0. in
  {
    r_config_shards = cfg.shards;
    r_policy = cfg.policy;
    r_seed = cfg.seed;
    r_shards = shards;
    r_completed = completed;
    r_failed_closed = failed_closed;
    r_generations = !generations;
    r_wall_s = wall_s;
    r_instret = instret;
    r_ops = ops;
    r_mips = rate instret /. 1e6;
    r_ops_per_sec = rate ops;
    r_p50 = Tel.Metrics.percentile fleet_hist 0.5;
    r_p90 = Tel.Metrics.percentile fleet_hist 0.9;
    r_p99 = Tel.Metrics.percentile fleet_hist 0.99;
    r_findings = findings;
    r_accounted = accounted;
    r_clean = clean;
    r_counters =
      List.filter_map
        (fun (n, i) ->
          match i with
          | Tel.Metrics.Counter c -> Some (n, Tel.Metrics.value c)
          | Tel.Metrics.Histogram _ -> None)
        (Tel.Metrics.to_list metrics);
  }

let pp_outcome fmt r =
  Format.fprintf fmt
    "@[<v>fleet: seed=%S shards=%d policy=%s@,\
     jobs     : completed=%d failed-closed=%d generations=%d accounted=%b@,\
     rates    : wall=%.3fs aggregate-mips=%.2f enclave-ops/s=%.1f@,\
     latency  : fleet per-quantum sim cycles p50<=%d p90<=%d p99<=%d@,\
     health   : findings=%d clean=%b@,\
     counters : %a@,\
     shards   :%a@]"
    r.r_seed r.r_config_shards (Policy.name r.r_policy)
    (List.length r.r_completed)
    (List.length r.r_failed_closed)
    r.r_generations r.r_accounted r.r_wall_s r.r_mips r.r_ops_per_sec r.r_p50
    r.r_p90 r.r_p99 r.r_findings r.r_clean
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt " ")
       (fun fmt (n, v) -> Format.fprintf fmt "%s=%d" n v))
    r.r_counters
    (fun fmt shards ->
      List.iter
        (fun s ->
          Format.fprintf fmt
            "@,  node %d: joined=%b evicted=%b rejoined=%b epoch=%d \
             installs=%d exits=%d reclaimed=%b findings=%d"
            s.so_node s.so_joined s.so_evicted s.so_rejoined s.so_epoch
            s.so_report.Wl.Workload.rp_installs s.so_report.Wl.Workload.rp_exits
            s.so_report.Wl.Workload.rp_reclaimed
            (List.length s.so_report.Wl.Workload.rp_findings))
        shards)
    r.r_shards
