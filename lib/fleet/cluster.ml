module C = Sanctorum_crypto
module A = Sanctorum.Attestation
module B = Sanctorum.Boot
module Img = Sanctorum.Image
module Tel = Sanctorum_telemetry
module Wl = Sanctorum_workload
module Rng = Sanctorum_util.Splitmix
open Sanctorum_os

type config = {
  seed : string;
  backend : Testbed.backend;
  shards : int;
  cores : int;
  enclaves : int;
  jobs : int;
  target : int;
  mix : Wl.Programs.mix;
  policy : Policy.t;
  retry_budget : int;
  batch_rounds : int;
  fuel : int;
  quantum : int;
  check_every : int;
  faults : (int * Sanctorum_faults.Spec.t) list;
  fault_horizon : int;
  rogue : int list;
}

let default =
  {
    seed = "fleet";
    backend = Testbed.Keystone_backend;
    shards = 2;
    cores = 4;
    enclaves = 12;
    jobs = 24;
    target = 4;
    mix = Wl.Programs.Compute;
    policy = Policy.Round_robin;
    retry_budget = 3;
    batch_rounds = 600;
    fuel = 2000;
    quantum = 500;
    check_every = 16;
    faults = [];
    fault_horizon = 200_000;
    rogue = [];
  }

type shard_outcome = {
  so_node : int;
  so_joined : bool;
  so_evicted : bool;
  so_report : Wl.Workload.report;
}

type outcome = {
  r_config_shards : int;
  r_policy : Policy.t;
  r_seed : string;
  r_shards : shard_outcome list;
  r_completed : int list;
  r_failed_closed : (int * string) list;
  r_generations : int;
  r_wall_s : float;
  r_instret : int;
  r_ops : int;
  r_mips : float;
  r_ops_per_sec : float;
  r_p50 : int;
  r_p90 : int;
  r_p99 : int;
  r_findings : int;
  r_accounted : bool;
  r_clean : bool;
  r_counters : (string * int) list;
}

let shard_seed cfg i = Printf.sprintf "%s/shard-%d" cfg.seed i

let job_seed cfg jid =
  Rng.next (Rng.of_string (Printf.sprintf "%s/job-%d" cfg.seed jid))

(* Per-node control-plane bookkeeping. The channels are the only state
   shared with the node's domain. *)
type peer = {
  p_id : int;
  p_inbox : Node.to_node Channel.t;  (* cluster -> node *)
  p_outbox : Node.from_node Channel.t;  (* node -> cluster *)
  p_domain : unit Domain.t;
  p_secret : C.Dh.secret;
  p_pub_bytes : string;
  p_nonce : string;
  mutable p_key : string option;  (* Some = joined *)
  mutable p_evicted : bool;
}

let validate cfg =
  if cfg.shards < 1 then invalid_arg "Cluster.run: shards must be >= 1";
  if cfg.cores < 1 then invalid_arg "Cluster.run: cores must be >= 1";
  if cfg.jobs < 1 then invalid_arg "Cluster.run: jobs must be >= 1";
  if cfg.target < 1 then invalid_arg "Cluster.run: target must be >= 1";
  if cfg.retry_budget < 0 then
    invalid_arg "Cluster.run: retry budget must be >= 0";
  if cfg.batch_rounds < 1 then
    invalid_arg "Cluster.run: batch_rounds must be >= 1";
  let members = if cfg.mix = Wl.Programs.Ipc then 2 else 1 in
  if cfg.enclaves < members then
    invalid_arg "Cluster.run: enclave capacity below one job"

let run cfg =
  validate cfg;
  let members_per_job = if cfg.mix = Wl.Programs.Ipc then 2 else 1 in
  let batch_cap = max 1 (cfg.enclaves / members_per_job) in
  let metrics = Tel.Metrics.create () in
  let ctr n = Tel.Metrics.counter metrics ("fleet." ^ n) in
  let c_placed = ctr "jobs.placed"
  and c_migrated = ctr "jobs.migrated"
  and c_retried = ctr "jobs.retried"
  and c_joined = ctr "nodes.joined"
  and c_evicted = ctr "nodes.evicted"
  and c_verified = ctr "attest.verified"
  and c_rejected = ctr "attest.rejected" in
  let fleet_hist = Tel.Metrics.histogram metrics "fleet.quantum.cycles" in
  let drbg = C.Drbg.create ~seed:(cfg.seed ^ "/cluster") in
  let t0 = Unix.gettimeofday () in
  (* -------------------------------------------------------------- *)
  (* Spawn: one domain per shard, each with a private machine. A
     shard's compute-bound stretches take a slot from this throttle,
     so no more shards crunch at once than the host has cores — on a
     wide machine it admits everyone. *)
  let crunch = Throttle.create (Throttle.host_parallelism ()) in
  let peers =
    List.init cfg.shards (fun i ->
        let node_cfg =
          {
            Node.node_id = i;
            seed = shard_seed cfg i;
            backend = cfg.backend;
            cores = cfg.cores;
            enclaves = cfg.enclaves;
            mix = cfg.mix;
            fuel = cfg.fuel;
            quantum = cfg.quantum;
            check_every = cfg.check_every;
            batch_rounds = cfg.batch_rounds;
            faults = List.assoc_opt i cfg.faults;
            fault_horizon = cfg.fault_horizon;
            rogue = List.mem i cfg.rogue;
          }
        in
        let inbox = Channel.create () and outbox = Channel.create () in
        let domain =
          Domain.spawn (fun () ->
              (* A minor collection is a stop-the-world sync across
                 every running domain; on a host with fewer cores than
                 shards those syncs serialize through the kernel
                 scheduler and dominate the run. A large per-domain
                 minor heap makes them rare (measured ~4.5x on an
                 oversubscribed single-core host). *)
              Gc.set { (Gc.get ()) with Gc.minor_heap_size = 1 lsl 20 };
              Node.run ~throttle:crunch node_cfg ~inbox ~outbox)
        in
        let secret, public = C.Dh.generate drbg in
        {
          p_id = i;
          p_inbox = inbox;
          p_outbox = outbox;
          p_domain = domain;
          p_secret = secret;
          p_pub_bytes = C.Dh.public_to_bytes public;
          p_nonce = C.Drbg.random_bytes drbg 32;
          p_key = None;
          p_evicted = false;
        })
  in
  (* -------------------------------------------------------------- *)
  (* Join: challenge every node, verify evidence against a root the
     cluster derives itself — never one the node supplied. *)
  let expected_measurement = Img.measurement Node.agent_image in
  List.iter
    (fun p ->
      Channel.send p.p_inbox
        (Node.Challenge { nonce = p.p_nonce; cluster_pub = p.p_pub_bytes }))
    peers;
  List.iter
    (fun p ->
      match Channel.recv p.p_outbox with
      | Node.Joined { jd_node = _; jd_evidence; jd_node_pub } -> (
          let root =
            C.Schnorr.public_key (B.manufacturer_root ~seed:(shard_seed cfg p.p_id))
          in
          let channel_binding =
            C.Sha3.sha3_256 (jd_node_pub ^ p.p_pub_bytes)
          in
          match
            ( A.verify_evidence ~root ~expected_measurement ~nonce:p.p_nonce
                ~channel_binding jd_evidence,
              C.Dh.public_of_bytes jd_node_pub )
          with
          | Ok (), Ok node_public ->
              Tel.Metrics.incr c_verified;
              Tel.Metrics.incr c_joined;
              p.p_key <- Some (C.Dh.shared_key p.p_secret node_public)
          | _ -> Tel.Metrics.incr c_rejected)
      | Node.Join_failed _ -> Tel.Metrics.incr c_rejected
      | Node.Batch_done _ | Node.Batch_rejected _ | Node.Final _ ->
          Tel.Metrics.incr c_rejected)
    peers;
  (* -------------------------------------------------------------- *)
  (* Generations: place, dispatch under MAC, fold results, re-place. *)
  let policy_state =
    Policy.create cfg.policy ~nodes:cfg.shards
      ~seed:(Rng.next (Rng.of_string (cfg.seed ^ "/policy")))
  in
  let retries = Array.make cfg.jobs 0 in
  let pending = ref (List.init cfg.jobs Fun.id) in
  let completed = ref [] in
  let failed_closed = ref [] in
  let generations = ref 0 in
  (* Each generation either completes a job, burns a retry, or evicts a
     node, so this bound is unreachable without a livelock bug. *)
  let generation_cap = (cfg.jobs * (cfg.retry_budget + 2)) + cfg.shards + 8 in
  let fail_closed jid reason =
    failed_closed := (jid, reason) :: !failed_closed
  in
  let replace counter jid reason =
    Tel.Metrics.incr counter;
    retries.(jid) <- retries.(jid) + 1;
    if retries.(jid) > cfg.retry_budget then
      fail_closed jid (Printf.sprintf "retry budget exhausted (%s)" reason)
    else pending := !pending @ [ jid ]
  in
  let evict p =
    if not p.p_evicted then begin
      p.p_evicted <- true;
      Tel.Metrics.incr c_evicted
    end
  in
  while !pending <> [] && !generations < generation_cap do
    incr generations;
    let gen = !generations in
    let active p = p.p_key <> None && not p.p_evicted in
    if not (List.exists active peers) then begin
      (* no shard left to run anything: fail the remainder closed *)
      List.iter (fun jid -> fail_closed jid "no eligible shard") !pending;
      pending := []
    end
    else begin
      let room = Array.make cfg.shards batch_cap in
      let batches = Array.make cfg.shards [] in
      let unplaced = ref [] in
      List.iter
        (fun jid ->
          let eligible =
            List.filter_map
              (fun p ->
                if active p && room.(p.p_id) > 0 then Some p.p_id else None)
              peers
          in
          match Policy.place policy_state ~jid ~eligible with
          | None -> unplaced := jid :: !unplaced (* capacity backlog *)
          | Some n ->
              room.(n) <- room.(n) - 1;
              Tel.Metrics.incr c_placed;
              batches.(n) <-
                batches.(n)
                @ [
                    {
                      Node.js_jid = jid;
                      js_seed = job_seed cfg jid;
                      js_target = cfg.target;
                    };
                  ])
        !pending;
      pending := List.rev !unplaced;
      let dispatched =
        List.filter (fun p -> batches.(p.p_id) <> []) peers
      in
      List.iter
        (fun p ->
          let jobs = batches.(p.p_id) in
          let key = Option.get p.p_key in
          let tag = C.Hmac.mac ~key (Node.batch_bytes ~gen jobs) in
          Channel.send p.p_inbox (Node.Batch { gen; jobs; tag }))
        dispatched;
      List.iter
        (fun p ->
          match Channel.recv p.p_outbox with
          | Node.Batch_done
              { bd_completed; bd_failed; bd_unfinished; bd_healthy; _ } ->
              completed := !completed @ bd_completed;
              List.iter
                (fun (jid, reason) -> replace c_retried jid reason)
                bd_failed;
              List.iter
                (fun jid -> replace c_migrated jid "migrated off shard")
                bd_unfinished;
              if not bd_healthy then evict p
          | Node.Batch_rejected { br_reason; _ } ->
              (* the channel broke: every job of the batch comes back *)
              List.iter
                (fun (j : Node.job_spec) ->
                  replace c_retried j.Node.js_jid br_reason)
                batches.(p.p_id);
              evict p
          | Node.Joined _ | Node.Join_failed _ | Node.Final _ -> evict p)
        dispatched
    end
  done;
  List.iter (fun jid -> fail_closed jid "generation cap") !pending;
  pending := [];
  (* -------------------------------------------------------------- *)
  (* Teardown: every spawned node reports and its domain is joined. *)
  let finals =
    List.map
      (fun p ->
        Channel.send p.p_inbox Node.Finish;
        let rec await () =
          match Channel.recv p.p_outbox with
          | Node.Final { fn_report; fn_hist; _ } -> (fn_report, fn_hist)
          | _ -> await ()
        in
        let r = await () in
        Domain.join p.p_domain;
        r)
      peers
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let shards =
    List.map2
      (fun p (report, _) ->
        {
          so_node = p.p_id;
          so_joined = p.p_key <> None;
          so_evicted = p.p_evicted;
          so_report = report;
        })
      peers finals
  in
  List.iter (fun (_, h) -> Tel.Metrics.merge ~into:fleet_hist h) finals;
  let sum f = List.fold_left (fun acc s -> acc + f s.so_report) 0 shards in
  let instret = sum (fun r -> r.Wl.Workload.rp_instret) in
  let ops =
    sum (fun r ->
        r.Wl.Workload.rp_installs + r.Wl.Workload.rp_reclaims
        + r.Wl.Workload.rp_exits)
  in
  let findings =
    sum (fun r -> List.length r.Wl.Workload.rp_findings)
  in
  let completed = List.sort_uniq compare !completed in
  let failed_closed =
    List.sort (fun (a, _) (b, _) -> compare a b) !failed_closed
  in
  let accounted =
    List.length completed + List.length failed_closed = cfg.jobs
    && List.sort compare (completed @ List.map fst failed_closed)
       = List.init cfg.jobs Fun.id
  in
  let shard_clean s =
    let r = s.so_report in
    r.Wl.Workload.rp_reclaimed && r.Wl.Workload.rp_drained
    && r.Wl.Workload.rp_trace_dropped = 0
    && r.Wl.Workload.rp_msgs_accounted
  in
  let clean =
    findings = 0 && accounted
    && List.for_all
         (fun s -> s.so_evicted || (not s.so_joined) || shard_clean s)
         shards
  in
  let rate v = if wall_s > 0. then float_of_int v /. wall_s else 0. in
  {
    r_config_shards = cfg.shards;
    r_policy = cfg.policy;
    r_seed = cfg.seed;
    r_shards = shards;
    r_completed = completed;
    r_failed_closed = failed_closed;
    r_generations = !generations;
    r_wall_s = wall_s;
    r_instret = instret;
    r_ops = ops;
    r_mips = rate instret /. 1e6;
    r_ops_per_sec = rate ops;
    r_p50 = Tel.Metrics.percentile fleet_hist 0.5;
    r_p90 = Tel.Metrics.percentile fleet_hist 0.9;
    r_p99 = Tel.Metrics.percentile fleet_hist 0.99;
    r_findings = findings;
    r_accounted = accounted;
    r_clean = clean;
    r_counters =
      List.filter_map
        (fun (n, i) ->
          match i with
          | Tel.Metrics.Counter c -> Some (n, Tel.Metrics.value c)
          | Tel.Metrics.Histogram _ -> None)
        (Tel.Metrics.to_list metrics);
  }

let pp_outcome fmt r =
  Format.fprintf fmt
    "@[<v>fleet: seed=%S shards=%d policy=%s@,\
     jobs     : completed=%d failed-closed=%d generations=%d accounted=%b@,\
     rates    : wall=%.3fs aggregate-mips=%.2f enclave-ops/s=%.1f@,\
     latency  : fleet per-quantum sim cycles p50<=%d p90<=%d p99<=%d@,\
     health   : findings=%d clean=%b@,\
     counters : %a@,\
     shards   :%a@]"
    r.r_seed r.r_config_shards (Policy.name r.r_policy)
    (List.length r.r_completed)
    (List.length r.r_failed_closed)
    r.r_generations r.r_accounted r.r_wall_s r.r_mips r.r_ops_per_sec r.r_p50
    r.r_p90 r.r_p99 r.r_findings r.r_clean
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt " ")
       (fun fmt (n, v) -> Format.fprintf fmt "%s=%d" n v))
    r.r_counters
    (fun fmt shards ->
      List.iter
        (fun s ->
          Format.fprintf fmt
            "@,  node %d: joined=%b evicted=%b installs=%d exits=%d \
             reclaimed=%b findings=%d"
            s.so_node s.so_joined s.so_evicted
            s.so_report.Wl.Workload.rp_installs s.so_report.Wl.Workload.rp_exits
            s.so_report.Wl.Workload.rp_reclaimed
            (List.length s.so_report.Wl.Workload.rp_findings))
        shards)
    r.r_shards
