(** A reliable, authenticated session over an unreliable link — one
    endpoint's half of the fleet's transport protocol.

    Every data frame carries a monotone sequence number, a cumulative
    ack of the peer's frames, a key {e epoch}, and an HMAC-SHA3 tag
    over all of it under the DH session key, with the sending direction
    mixed into the MAC input so a reflected frame never verifies.

    - {b exactly-once delivery}: the receiver delivers payloads in
      sequence order, buffers a bounded window of out-of-order frames,
      and drops (but re-acks) duplicates — a retransmitted batch is
      acked, never re-run;
    - {b bounded retransmit}: unacked frames are re-sent under
      deterministic exponential backoff with seeded jitter, up to a
      retry limit ({!exhausted});
    - {b heartbeats}: payload-less frames keep the peer's failure
      detector fed and carry acks ({!heartbeat_due}, {!ack_frame});
    - {b epoch fencing}: {!set_key} installs a new key epoch and resets
      all transfer state; frames from any other epoch are rejected as
      stale, so a re-keyed (rejoined) node can never smuggle in results
      from before it was fenced.

    Time is the caller's virtual clock (cluster ticks, or messages
    received on the node side) — nothing here reads the wall clock, so
    a run is replayable from its seeds. *)

type config = {
  retransmit_base : int;  (** first retransmit deadline, in clock units *)
  backoff_cap : int;  (** exponent cap: delay <= base * 2^cap + jitter *)
  retry_limit : int;  (** retransmits before the peer is presumed dead *)
  window : int;  (** out-of-order frames buffered before drop *)
  heartbeat_every : int;  (** clock units between {!heartbeat_due} fires *)
}

val cluster_config : config
(** paced in cluster ticks *)

val node_config : config
(** paced in received messages: the node's clock only advances when the
    cluster pokes it, so deadlines are short and the retry limit high *)

type 'a frame = {
  fr_epoch : int;
  fr_seq : int;  (** -1 on payload-less (heartbeat/ack) frames *)
  fr_ack : int;  (** highest contiguously received peer seq, -1 none *)
  fr_payload : 'a option;
  fr_tag : string;
}

type role = Cluster_end | Node_end

type ('tx, 'rx) t

val create :
  config ->
  seed:int64 ->
  role:role ->
  encode_tx:('tx -> string) ->
  encode_rx:('rx -> string) ->
  ('tx, 'rx) t
(** [encode_tx]/[encode_rx] produce the canonical bytes MAC'd for each
    direction's payloads ({!Node.batch_bytes} and friends). *)

val set_key : ('tx, 'rx) t -> epoch:int -> key:string -> unit
(** Install a key and epoch; resets sequence numbers, the dedup window
    and the retransmit queue. A later call with a higher epoch is a
    rekey — everything in flight under the old epoch is fenced off. *)

val established : ('tx, 'rx) t -> bool

val epoch : ('tx, 'rx) t -> int

val send : ('tx, 'rx) t -> now:int -> 'tx -> 'tx frame
(** Assign the next sequence number, tag the frame, and queue it for
    retransmission until acked. Raises if no key is set. *)

type 'rx verdict =
  | Delivered of 'rx list
      (** in-order payloads now deliverable ([[]] = buffered
          out-of-order; an ack is scheduled either way) *)
  | Heartbeat  (** valid payload-less frame; ack processed *)
  | Duplicate  (** already-delivered seq; dropped, re-ack scheduled *)
  | Bad_mac
  | Stale  (** wrong epoch *)
  | No_key

val receive : ('tx, 'rx) t -> now:int -> 'rx frame -> 'rx verdict
(** Verify, process the piggybacked ack, and classify. Acks clear
    frames from the retransmit queue. *)

val verify_only : ('tx, 'rx) t -> 'rx frame -> bool
(** MAC + epoch check with no state change — liveness evidence from a
    fenced peer whose frames must not be delivered. *)

val due : ('tx, 'rx) t -> now:int -> ('tx frame * int) list
(** Frames whose retransmit deadline passed, re-tagged with a fresh
    cumulative ack, paired with the backoff delay (for the
    [net.retransmit.delay] histogram). Each call backs the deadline
    off exponentially with seeded jitter. *)

val exhausted : ('tx, 'rx) t -> bool
(** Some frame has hit the retry limit — the peer is presumed dead. *)

val heartbeat_due : ('tx, 'rx) t -> now:int -> 'tx frame option
(** A heartbeat if [heartbeat_every] clock units have passed since the
    last one (and a key is set). *)

val want_ack : ('tx, 'rx) t -> bool

val ack_frame : ('tx, 'rx) t -> 'tx frame
(** A payload-less frame carrying the current cumulative ack; clears
    {!want_ack}. Also the node's reply to a cluster heartbeat. *)

val last_heard : ('tx, 'rx) t -> int
(** Clock time of the last authentically verified frame. *)

val unacked : ('tx, 'rx) t -> int

type stats = {
  retransmits : int;
  dups_dropped : int;
  mac_rejects : int;
  stale_rejects : int;
  heartbeats : int;
}

val stats : ('tx, 'rx) t -> stats
