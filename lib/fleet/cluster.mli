(** The fleet control plane: N shard {!Node}s, one OCaml domain each,
    sharing no mutable state, under a seeded load balancer, an attested
    join protocol, and — because the link between cluster and node is
    hostile ({!Netfault}) — a reliable {!Session} layer with
    retransmit, heartbeats, a deadline failure detector, and
    rejoin-with-rekey.

    Life of a run:

    + spawn one domain per shard; each boots a private machine from
      its shard-qualified seed;
    + challenge every node with an epoch, a fresh nonce and DH key;
      verify the returned evidence against the {e independently
      derived} manufacturer root and the agent measurement the cluster
      computes itself — a node that fails verification never receives
      a job. Under a fault spec, unanswered or corrupted challenges
      are retried a bounded number of times, each with a fresh
      epoch+nonce+key;
    + place jobs generation by generation via the {!Policy}, capped by
      each shard's enclave capacity; each batch travels as a
      sequence-numbered, cumulatively-acked, HMAC'd session frame, and
      unacked frames retransmit under deterministic exponential
      backoff with seeded jitter;
    + while a generation is outstanding, heartbeats keep each waiting
      link alive; a node silent past the suspicion deadline (or out of
      retransmit budget) is {e fenced}: evicted, its batch re-placed
      through the quarantine/migration path, its key epoch dead. A
      fenced node is probed with fresh challenges — full
      re-attestation and DH rekey let a merely-partitioned node
      rejoin, while anything it sent under the old epoch is rejected
      as stale;
    + after each generation, fold in completions, re-place failed jobs
      (bounded per-job retry budget) and jobs left in flight by a
      quarantined or fenced shard. The job ledger's Done/Failed states
      are absorbing, so no duplicated, reordered, or stale message can
      credit a job twice;
    + when every job is completed or failed closed, shut nodes down
      out-of-band (the operator console, not the network — so
      teardown terminates under any fault spec), collect final
      per-shard reports and latency histograms, merge them
      ({!Sanctorum_telemetry.Metrics.merge}) into fleet percentiles
      and aggregate rates.

    With no net spec, every protocol timer is quiesced and the run is
    a pure function of the config — per-shard reports are
    bit-deterministic and the completed / failed-closed partition
    replays exactly. Under a net spec the fault schedules are seeded
    and replayable, and the accounting invariants above still hold for
    every (seed, policy, fault spec, net spec). *)

type config = {
  seed : string;
  backend : Sanctorum_os.Testbed.backend;
  shards : int;  (** one OCaml domain each *)
  cores : int;  (** simulated cores per shard *)
  enclaves : int;  (** per-shard capacity (PMP sizing + batch cap) *)
  jobs : int;  (** total jobs across the fleet *)
  target : int;  (** exits per job member before it completes *)
  mix : Sanctorum_workload.Programs.mix;
  policy : Policy.t;
  retry_budget : int;
      (** re-placements (migrations and retries) allowed per job before
          it is failed closed *)
  batch_rounds : int;  (** per-shard round cap per generation *)
  fuel : int;
  quantum : int;
  check_every : int;
  faults : (int * Sanctorum_faults.Spec.t) list;
      (** per-shard fault specs, armed before any job runs *)
  fault_horizon : int;
  rogue : int list;  (** shards presenting corrupted evidence *)
  net : Netfault.spec;
      (** link-fault spec, armed (independently seeded) on both
          directions of every cluster<->node link *)
  net_horizon : int;  (** send-index window the link faults land in *)
}

val default : config
(** keystone backend, 2 shards x 4 cores, 24 jobs (capacity 12) of the
    compute mix at target 4, round-robin, retry budget 3, no net
    faults. *)

type shard_outcome = {
  so_node : int;
  so_joined : bool;  (** evidence verified at least once *)
  so_evicted : bool;  (** quarantined or fenced, and never rejoined *)
  so_rejoined : bool;  (** fenced, then re-attested under a new epoch *)
  so_epoch : int;  (** final key epoch (1 = first join; >1 = rekeyed) *)
  so_report : Sanctorum_workload.Workload.report;
}

type outcome = {
  r_config_shards : int;
  r_policy : Policy.t;
  r_seed : string;
  r_shards : shard_outcome list;  (** ascending node id *)
  r_completed : int list;  (** ascending jid *)
  r_failed_closed : (int * string) list;  (** ascending jid, with reason *)
  r_generations : int;
  r_wall_s : float;  (** host wall clock, spawn to last [Bye] *)
  r_instret : int;  (** simulated instructions, all shards *)
  r_ops : int;  (** installs + reclaims + exits, all shards *)
  r_mips : float;  (** aggregate: instret / wall *)
  r_ops_per_sec : float;  (** aggregate: ops / wall *)
  r_p50 : int;  (** fleet-level per-quantum latency percentiles, *)
  r_p90 : int;  (** from the merged per-shard histograms *)
  r_p99 : int;
  r_findings : int;  (** invariant/trace violations across all shards *)
  r_accounted : bool;
      (** [completed + failed_closed] partitions the job set exactly *)
  r_clean : bool;
      (** no findings anywhere, every job accounted, and every
          non-evicted joined shard drained + fully reclaimed with its
          mailbox traffic accounted *)
  r_counters : (string * int) list;
      (** every counter, sorted by name:
          [fleet.jobs.placed/migrated/retried],
          [fleet.nodes.joined/rejoined/evicted],
          [fleet.attest.verified/rejected], and the transport's
          [net.retransmits/dups_dropped/hmac_rejects/stale_rejected],
          [net.heartbeats/heartbeats_missed/join_timeouts/rekeys],
          [net.link.dropped/duplicated/corrupted/delayed/reordered/
          partition_dropped] (both directions of every link summed) *)
}

val shard_seed : config -> int -> string
(** The seed shard [i] boots from — [seed ^ "/shard-i"]. The cluster
    uses it to derive the manufacturer root it verifies evidence
    against, independently of anything the node sends. *)

val job_seed : config -> int -> int64
(** The splitmix seed of job [jid]'s private stream — identical
    wherever the job lands, so migrated jobs replay their images. *)

val validate : config -> unit
(** Raises [Invalid_argument] on a nonsensical config: non-positive
    [shards]/[cores]/[enclaves]/[jobs]/[target]/[fuel]/[quantum]/
    [batch_rounds]/[fault_horizon]/[net_horizon], negative
    [retry_budget] or [check_every], or ipc capacity below one pair.
    {!run} calls this first. *)

val run : config -> outcome
(** Raises [Invalid_argument] exactly when {!validate} does. *)

val pp_outcome : Format.formatter -> outcome -> unit
(** Multi-line human-readable summary. *)
