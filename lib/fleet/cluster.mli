(** The fleet control plane: N shard {!Node}s, one OCaml domain each,
    sharing no mutable state, under a seeded load balancer and an
    attested join protocol.

    Life of a run:

    + spawn one domain per shard; each boots a private machine from
      its shard-qualified seed;
    + challenge every node with a fresh nonce and DH key; verify the
      returned evidence against the {e independently derived}
      manufacturer root and the agent measurement the cluster computes
      itself — a node that fails verification never receives a job;
    + place jobs generation by generation via the {!Policy}, capped by
      each shard's enclave capacity, and ship each batch under an HMAC
      keyed by that node's DH session key;
    + after each generation, fold in completions, re-place failed jobs
      (bounded per-job retry budget) and jobs left in flight by a
      quarantined shard — that shard is evicted first, reusing the
      fail-closed machinery of [lib/faults];
    + when every job is completed or failed closed, collect final
      per-shard reports and latency histograms, merge them
      ({!Sanctorum_telemetry.Metrics.merge}) into fleet percentiles
      and aggregate rates.

    Every decision above is a pure function of the config — the wall
    clock only converts simulated totals into rates — so per-shard
    reports are bit-deterministic and the completed / failed-closed
    partition replays exactly. *)

type config = {
  seed : string;
  backend : Sanctorum_os.Testbed.backend;
  shards : int;  (** one OCaml domain each *)
  cores : int;  (** simulated cores per shard *)
  enclaves : int;  (** per-shard capacity (PMP sizing + batch cap) *)
  jobs : int;  (** total jobs across the fleet *)
  target : int;  (** exits per job member before it completes *)
  mix : Sanctorum_workload.Programs.mix;
  policy : Policy.t;
  retry_budget : int;
      (** re-placements (migrations and retries) allowed per job before
          it is failed closed *)
  batch_rounds : int;  (** per-shard round cap per generation *)
  fuel : int;
  quantum : int;
  check_every : int;
  faults : (int * Sanctorum_faults.Spec.t) list;
      (** per-shard fault specs, armed before any job runs *)
  fault_horizon : int;
  rogue : int list;  (** shards presenting corrupted evidence *)
}

val default : config
(** keystone backend, 2 shards x 4 cores, 24 jobs (capacity 12) of the
    compute mix at target 4, round-robin, retry budget 3. *)

type shard_outcome = {
  so_node : int;
  so_joined : bool;  (** evidence verified; eligible for jobs *)
  so_evicted : bool;  (** quarantined mid-run and removed *)
  so_report : Sanctorum_workload.Workload.report;
}

type outcome = {
  r_config_shards : int;
  r_policy : Policy.t;
  r_seed : string;
  r_shards : shard_outcome list;  (** ascending node id *)
  r_completed : int list;  (** ascending jid *)
  r_failed_closed : (int * string) list;  (** ascending jid, with reason *)
  r_generations : int;
  r_wall_s : float;  (** host wall clock, spawn to last Final *)
  r_instret : int;  (** simulated instructions, all shards *)
  r_ops : int;  (** installs + reclaims + exits, all shards *)
  r_mips : float;  (** aggregate: instret / wall *)
  r_ops_per_sec : float;  (** aggregate: ops / wall *)
  r_p50 : int;  (** fleet-level per-quantum latency percentiles, *)
  r_p90 : int;  (** from the merged per-shard histograms *)
  r_p99 : int;
  r_findings : int;  (** invariant/trace violations across all shards *)
  r_accounted : bool;
      (** [completed + failed_closed] partitions the job set exactly *)
  r_clean : bool;
      (** no findings anywhere, every job accounted, and every
          non-evicted joined shard drained + fully reclaimed with its
          mailbox traffic accounted *)
  r_counters : (string * int) list;
      (** the [fleet.*] telemetry counters, sorted by name:
          [fleet.jobs.placed/migrated/retried],
          [fleet.nodes.joined/evicted],
          [fleet.attest.verified/rejected] *)
}

val shard_seed : config -> int -> string
(** The seed shard [i] boots from — [seed ^ "/shard-i"]. The cluster
    uses it to derive the manufacturer root it verifies evidence
    against, independently of anything the node sends. *)

val job_seed : config -> int -> int64
(** The splitmix seed of job [jid]'s private stream — identical
    wherever the job lands, so migrated jobs replay their images. *)

val run : config -> outcome
(** Raises [Invalid_argument] on a nonsensical config (no shards, no
    jobs, ipc capacity below one pair...). *)

val pp_outcome : Format.formatter -> outcome -> unit
(** Multi-line human-readable summary. *)
