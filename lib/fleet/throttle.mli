(** A counting semaphore bounding how many shards crunch batches at
    once.

    Spawning more compute-bound domains than the host has cores is
    pure overhead in OCaml 5: every minor collection is a
    stop-the-world synchronisation across all running domains, and on
    an oversubscribed host those barriers serialize through the kernel
    scheduler (measured up to 19x on a single-core container). The
    cluster therefore sizes one of these to {!host_parallelism} and
    nodes take a slot only for the compute-bound part of a batch —
    never while blocked on a channel — so on a machine with at least
    as many cores as shards the throttle admits everyone and costs two
    uncontended mutex operations per batch. *)

type t

val create : int -> t
(** [create slots] admits at most [slots] concurrent holders.
    @raise Invalid_argument if [slots < 1]. *)

val host_parallelism : unit -> int
(** [max 1 (Domain.recommended_domain_count ())]. *)

val with_slot : ?while_waiting:(unit -> unit) -> t -> (unit -> 'a) -> 'a
(** [with_slot t f] waits until a slot is free, runs [f], and releases
    the slot even if [f] raises.

    Without [while_waiting] the wait blocks on a condition variable.
    With [while_waiting] the wait polls, invoking the callback between
    attempts — a fleet node passes its session-servicing step here so
    that a shard queued behind another shard's crunch keeps answering
    heartbeats instead of reading as dead to the cluster's failure
    detector (which would fence it and migrate its batch for no
    reason). *)
