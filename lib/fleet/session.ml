module C = Sanctorum_crypto
module Rng = Sanctorum_util.Splitmix

type config = {
  retransmit_base : int;
  backoff_cap : int;
  retry_limit : int;
  window : int;
  heartbeat_every : int;
}

let cluster_config =
  {
    retransmit_base = 24;
    backoff_cap = 4;
    retry_limit = 10;
    window = 64;
    heartbeat_every = 8;
  }

let node_config =
  {
    retransmit_base = 2;
    backoff_cap = 4;
    retry_limit = 1000;
    window = 64;
    heartbeat_every = max_int / 2;
  }

type 'a frame = {
  fr_epoch : int;
  fr_seq : int;
  fr_ack : int;
  fr_payload : 'a option;
  fr_tag : string;
}

type role = Cluster_end | Node_end

type 'tx pending = {
  pd_payload : 'tx;
  pd_seq : int;
  mutable pd_attempts : int;
  mutable pd_due : int;
}

type ('tx, 'rx) t = {
  cfg : config;
  rng : Rng.t;
  tx_dir : string;
  rx_dir : string;
  encode_tx : 'tx -> string;
  encode_rx : 'rx -> string;
  mutable key : string option;
  mutable epoch : int;
  mutable next_seq : int;
  mutable recv_next : int;
  mutable ooo : (int * 'rx) list;  (* sorted by seq, within the window *)
  mutable unacked : 'tx pending list;  (* sorted by seq *)
  mutable want_ack : bool;
  mutable exhausted : bool;
  mutable last_heard : int;
  mutable last_hb : int;
  mutable s_retransmits : int;
  mutable s_dups : int;
  mutable s_mac_rejects : int;
  mutable s_stale : int;
  mutable s_heartbeats : int;
}

let create cfg ~seed ~role ~encode_tx ~encode_rx =
  let tx_dir, rx_dir =
    match role with
    | Cluster_end -> ("c2n", "n2c")
    | Node_end -> ("n2c", "c2n")
  in
  {
    cfg;
    rng = Rng.create ~seed;
    tx_dir;
    rx_dir;
    encode_tx;
    encode_rx;
    key = None;
    epoch = 0;
    next_seq = 0;
    recv_next = 0;
    ooo = [];
    unacked = [];
    want_ack = false;
    exhausted = false;
    last_heard = 0;
    last_hb = 0;
    s_retransmits = 0;
    s_dups = 0;
    s_mac_rejects = 0;
    s_stale = 0;
    s_heartbeats = 0;
  }

let set_key t ~epoch ~key =
  t.key <- Some key;
  t.epoch <- epoch;
  t.next_seq <- 0;
  t.recv_next <- 0;
  t.ooo <- [];
  t.unacked <- [];
  t.want_ack <- false;
  t.exhausted <- false

let established t = t.key <> None
let epoch t = t.epoch

(* The direction string keys the MAC to one flow of one epoch: a frame
   reflected back at its sender, or replayed across a rekey, never
   verifies. *)
let mac_input dir encode ~epoch ~seq ~ack payload =
  let body = match payload with None -> "hb" | Some p -> encode p in
  Printf.sprintf "%s|e=%d;s=%d;a=%d;%s" dir epoch seq ack body

let the_key t =
  match t.key with
  | Some k -> k
  | None -> invalid_arg "Session: no key established"

let cum_ack t = t.recv_next - 1

let tag_tx t ~seq payload =
  C.Hmac.mac ~key:(the_key t)
    (mac_input t.tx_dir t.encode_tx ~epoch:t.epoch ~seq ~ack:(cum_ack t)
       payload)

let make_tx t ~seq payload =
  {
    fr_epoch = t.epoch;
    fr_seq = seq;
    fr_ack = cum_ack t;
    fr_payload = payload;
    fr_tag = tag_tx t ~seq payload;
  }

let jitter t = Rng.int t.rng ~bound:(max 1 t.cfg.retransmit_base)

let send t ~now payload =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.unacked <-
    t.unacked
    @ [
        {
          pd_payload = payload;
          pd_seq = seq;
          pd_attempts = 0;
          pd_due = now + t.cfg.retransmit_base + jitter t;
        };
      ];
  t.want_ack <- false;
  make_tx t ~seq (Some payload)

type 'rx verdict =
  | Delivered of 'rx list
  | Heartbeat
  | Duplicate
  | Bad_mac
  | Stale
  | No_key

type check = Valid | Bad_tag | Wrong_epoch | None_key

let verify t frame =
  match t.key with
  | None -> None_key
  | Some key ->
      if frame.fr_epoch <> t.epoch then Wrong_epoch
      else if
        C.Hmac.verify ~key
          ~msg:
            (mac_input t.rx_dir t.encode_rx ~epoch:frame.fr_epoch
               ~seq:frame.fr_seq ~ack:frame.fr_ack frame.fr_payload)
          ~tag:frame.fr_tag
      then Valid
      else Bad_tag

let verify_only t frame = verify t frame = Valid

let process_ack t ack =
  t.unacked <- List.filter (fun p -> p.pd_seq > ack) t.unacked

let receive t ~now frame =
  match verify t frame with
  | None_key -> No_key
  | Wrong_epoch ->
      t.s_stale <- t.s_stale + 1;
      Stale
  | Bad_tag ->
      t.s_mac_rejects <- t.s_mac_rejects + 1;
      Bad_mac
  | Valid -> (
      t.last_heard <- now;
      process_ack t frame.fr_ack;
      match frame.fr_payload with
      | None -> Heartbeat
      | Some p ->
          let seq = frame.fr_seq in
          t.want_ack <- true;
          if seq < t.recv_next then begin
            t.s_dups <- t.s_dups + 1;
            Duplicate
          end
          else if seq = t.recv_next then begin
            (* deliver this frame plus any contiguous run it unblocks *)
            let rec take next acc = function
              | (s, p') :: rest when s = next -> take (next + 1) (p' :: acc) rest
              | rest -> (next, acc, rest)
            in
            let next, acc, rest = take (seq + 1) [ p ] t.ooo in
            t.recv_next <- next;
            t.ooo <- rest;
            Delivered (List.rev acc)
          end
          else if seq <= t.recv_next + t.cfg.window then
            if List.mem_assoc seq t.ooo then begin
              t.s_dups <- t.s_dups + 1;
              Duplicate
            end
            else begin
              t.ooo <-
                List.sort (fun (a, _) (b, _) -> compare a b)
                  ((seq, p) :: t.ooo);
              Delivered []
            end
          else begin
            (* beyond the window: drop, but still re-ack so the sender
               makes progress *)
            t.s_dups <- t.s_dups + 1;
            Duplicate
          end)

let due t ~now =
  List.filter_map
    (fun p ->
      if p.pd_due > now then None
      else begin
        p.pd_attempts <- p.pd_attempts + 1;
        if p.pd_attempts > t.cfg.retry_limit then begin
          t.exhausted <- true;
          None
        end
        else begin
          let backoff =
            t.cfg.retransmit_base
            * (1 lsl min p.pd_attempts t.cfg.backoff_cap)
          in
          let delay = backoff + jitter t in
          p.pd_due <- now + delay;
          t.s_retransmits <- t.s_retransmits + 1;
          Some (make_tx t ~seq:p.pd_seq (Some p.pd_payload), delay)
        end
      end)
    t.unacked

let exhausted t = t.exhausted

let hb t =
  {
    fr_epoch = t.epoch;
    fr_seq = -1;
    fr_ack = cum_ack t;
    fr_payload = None;
    fr_tag = tag_tx t ~seq:(-1) None;
  }

let heartbeat_due t ~now =
  if t.key <> None && now - t.last_hb >= t.cfg.heartbeat_every then begin
    t.last_hb <- now;
    t.s_heartbeats <- t.s_heartbeats + 1;
    Some (hb t)
  end
  else None

let want_ack t = t.want_ack

let ack_frame t =
  t.want_ack <- false;
  hb t

let last_heard t = t.last_heard
let unacked t = List.length t.unacked

type stats = {
  retransmits : int;
  dups_dropped : int;
  mac_rejects : int;
  stale_rejects : int;
  heartbeats : int;
}

let stats t =
  {
    retransmits = t.s_retransmits;
    dups_dropped = t.s_dups;
    mac_rejects = t.s_mac_rejects;
    stale_rejects = t.s_stale;
    heartbeats = t.s_heartbeats;
  }
