(** Seeded, deterministic job-placement policies.

    The control plane consults the policy once per (job, generation);
    every decision is a pure function of the policy, the seed, and the
    sequence of placements so far — never of timing — so a fleet run
    replays identically. *)

type t =
  | Round_robin  (** cycle through nodes, skipping ineligible ones *)
  | Least_loaded
      (** fewest jobs assigned so far; ties go to the lowest node id *)
  | Affinity
      (** each job hashes (with the seed) to a home node and sticks to
          it; if the home is ineligible, probe upward to the next
          eligible node — deterministic fail-over *)

val name : t -> string

val of_string : string -> (t, string) result
(** Accepts ["round-robin"], ["least-loaded"], ["affinity"]. *)

val all : t list

type state

val create : t -> nodes:int -> seed:int64 -> state

val place : state -> jid:int -> eligible:int list -> int option
(** Choose a node for [jid] among [eligible] (sorted ascending) and
    record the assignment. [None] iff [eligible] is empty. *)

val load : state -> int -> int
(** Jobs assigned to a node so far, across all generations. *)
