module Hw = Sanctorum_hw
module C = Sanctorum_crypto
module S = Sanctorum.Sm
module A = Sanctorum.Attestation
module Img = Sanctorum.Image
module Tel = Sanctorum_telemetry
module Wl = Sanctorum_workload
module Rng = Sanctorum_util.Splitmix
module Engine = Sanctorum_workload.Engine
open Sanctorum_os

type job_spec = { js_jid : int; js_seed : int64; js_target : int }
type down = Batch of { gen : int; jobs : job_spec list }

type up =
  | Batch_done of {
      bd_node : int;
      bd_gen : int;
      bd_completed : int list;
      bd_failed : (int * string) list;
      bd_unfinished : int list;
      bd_healthy : bool;
    }

type to_node =
  | Challenge of { ch_epoch : int; ch_nonce : string; ch_cluster_pub : string }
  | Down of down Session.frame
  | Shutdown

type from_node =
  | Joined of {
      jd_node : int;
      jd_epoch : int;
      jd_evidence : A.evidence;
      jd_node_pub : string;
    }
  | Join_failed of { jf_node : int; jf_epoch : int; jf_reason : string }
  | Up of up Session.frame
  | Bye of {
      bye_node : int;
      bye_report : Wl.Workload.report;
      bye_hist : Tel.Metrics.histogram;
      bye_net : (string * int) list;
    }

type config = {
  node_id : int;
  seed : string;
  backend : Testbed.backend;
  cores : int;
  enclaves : int;
  mix : Wl.Programs.mix;
  fuel : int;
  quantum : int;
  check_every : int;
  batch_rounds : int;
  faults : Sanctorum_faults.Spec.t option;
  fault_horizon : int;
  rogue : bool;
  net : Netfault.spec;
  net_horizon : int;
}

let agent_image =
  Img.of_program ~evbase:0x30000 Hw.Isa.[ Op_imm (Add, a7, zero, 1); Ecall ]

let batch_bytes ~gen jobs =
  let b = Buffer.create 64 in
  Buffer.add_string b (Printf.sprintf "gen=%d" gen);
  List.iter
    (fun j ->
      Buffer.add_string b
        (Printf.sprintf ";%d:%Lx:%d" j.js_jid j.js_seed j.js_target))
    jobs;
  Buffer.contents b

let down_bytes = function Batch { gen; jobs } -> batch_bytes ~gen jobs

let up_bytes = function
  | Batch_done { bd_node; bd_gen; bd_completed; bd_failed; bd_unfinished;
                 bd_healthy } ->
      let ints l = String.concat "," (List.map string_of_int l) in
      Printf.sprintf "done;n=%d;g=%d;c=%s;f=%s;u=%s;h=%b" bd_node bd_gen
        (ints bd_completed)
        (String.concat ","
           (List.map
              (fun (jid, r) -> Printf.sprintf "%d=%s" jid r)
              bd_failed))
        (ints bd_unfinished) bd_healthy

(* ------------------------------------------------------------------ *)
(* Wire corruption: what [Netfault]'s corrupt class does to a message
   in flight. Flipping one tag bit (or one nonce/key byte for the
   unkeyed handshake) is the minimal mangling that every authenticity
   check must still catch — if any corrupted message is ever acted on,
   the HMAC or the evidence verification has a hole. *)

let flip_byte s =
  if s = "" then s
  else
    String.mapi (fun i c -> if i = 0 then Char.chr (Char.code c lxor 1) else c) s

let corrupt_frame fr = { fr with Session.fr_tag = flip_byte fr.Session.fr_tag }

let corrupt_to_node = function
  | Challenge c -> Challenge { c with ch_nonce = flip_byte c.ch_nonce }
  | Down fr -> Down (corrupt_frame fr)
  | Shutdown -> Shutdown (* out-of-band only; never routed through faults *)

let corrupt_from_node = function
  | Joined j -> Joined { j with jd_node_pub = flip_byte j.jd_node_pub }
  | Join_failed f -> Join_failed { f with jf_reason = flip_byte f.jf_reason }
  | Up fr -> Up (corrupt_frame fr)
  | Bye b -> Bye b (* out-of-band only *)

(* A rogue machine holds no monitor attestation key, so the best it can
   do is present evidence whose signature does not verify — modelled by
   corrupting one signature bit of otherwise honest evidence. *)
let corrupt_signature (e : A.evidence) =
  { e with A.signature = flip_byte e.A.signature }

type session = {
  eng : Engine.t;
  mutable es_eid : int option;
  mutable agent_eid : int option;
}

(* The attestation enclaves exist for the join handshake only. Keeping
   them resident would tax every later context switch — the keystone
   backend walks the live-enclave set on each one — so the node returns
   their memory as soon as the challenge is answered, and reinstalls
   them if a rejoin demands fresh evidence. *)
let retire_attestation sess =
  let tb = Engine.testbed sess.eng in
  let reclaim = function
    | None -> ()
    | Some eid ->
        ignore
          (Os.retry_transient (fun () -> Os.reclaim_enclave tb.Testbed.os ~eid))
  in
  reclaim sess.es_eid;
  reclaim sess.agent_eid;
  sess.es_eid <- None;
  sess.agent_eid <- None

let ensure_attestation sess =
  let tb = Engine.testbed sess.eng in
  (match sess.es_eid with
  | Some _ -> ()
  | None -> (
      match Testbed.install_signing_enclave tb with
      | Ok inst -> sess.es_eid <- Some inst.Os.eid
      | Error _ -> ()));
  match sess.agent_eid with
  | Some _ -> ()
  | None -> (
      match Os.install_enclave tb.Testbed.os agent_image with
      | Ok inst -> sess.agent_eid <- Some inst.Os.eid
      | Error _ -> ())

let join cfg sess ~nonce ~cluster_pub =
  let tb = Engine.testbed sess.eng in
  let sm = tb.Testbed.sm in
  match (sess.agent_eid, sess.es_eid, C.Dh.public_of_bytes cluster_pub) with
  | None, _, _ | _, None, _ -> Error "attestation enclaves unavailable"
  | _, _, Error m -> Error ("bad cluster key: " ^ m)
  | Some agent_eid, Some es_eid, Ok cluster_public -> (
      let secret, public = C.Dh.generate tb.Testbed.rng in
      let node_pub = C.Dh.public_to_bytes public in
      (* enclave key first, verifier key second — the same transcript
         order [run_remote_attestation] pins *)
      let channel_binding = C.Sha3.sha3_256 (node_pub ^ cluster_pub) in
      match
        A.request_attestation sm ~eid:agent_eid ~es_eid ~nonce ~channel_binding
      with
      | Error e -> Error (Sanctorum.Api_error.to_string e)
      | Ok evidence ->
          let evidence =
            if cfg.rogue then corrupt_signature evidence else evidence
          in
          Ok (evidence, node_pub, C.Dh.shared_key secret cluster_public))

(* Run one batch to completion: submit every job, step until they have
   all settled, the round cap hits, or a core of this shard is
   quarantined. [service] runs every round — it costs one try_recv and
   a few timer checks against a round's worth of simulation, and the
   cadence is what keeps heartbeats answered and retransmits firing
   mid-crunch: at large batch sizes even a handful of rounds of
   silence outruns the cluster's suspicion deadline and an honest,
   hard-working node reads as dead. Jobs still in flight at the end
   are aborted and reported unfinished so the cluster can re-place
   them — the quarantine-driven migration path. *)
let run_batch cfg sess ~service ~interrupted ~gen ~jobs =
  let eng = sess.eng in
  let completed = ref [] and failed = ref [] in
  let submitted =
    List.filter
      (fun j ->
        try
          Engine.submit eng ~jid:j.js_jid ~seed:j.js_seed
            ~target:(Some j.js_target);
          true
        with Failure m ->
          failed := (j.js_jid, m) :: !failed;
          false)
      jobs
  in
  let remaining = ref (List.map (fun j -> j.js_jid) submitted) in
  let rounds = ref 0 in
  while
    !remaining <> []
    && !rounds < cfg.batch_rounds
    && Engine.healthy eng
    && not (interrupted ())
  do
    let done_now = Engine.step eng in
    let failed_now = Engine.take_failed eng in
    remaining :=
      List.filter
        (fun j ->
          (not (List.mem j done_now)) && not (List.mem_assoc j failed_now))
        !remaining;
    completed := !completed @ done_now;
    failed := !failed @ failed_now;
    incr rounds;
    service ()
  done;
  let unfinished = !remaining in
  let reason =
    if not (Engine.healthy eng) then "shard quarantined"
    else if interrupted () then "batch interrupted"
    else "batch round cap"
  in
  List.iter (fun jid -> Engine.abort eng ~jid ~reason) unfinished;
  (* drain the abort notifications so they don't masquerade as genuine
     failures of a later batch *)
  ignore (Engine.take_failed eng);
  Batch_done
    {
      bd_node = cfg.node_id;
      bd_gen = gen;
      bd_completed = !completed;
      bd_failed = !failed;
      bd_unfinished = unfinished;
      bd_healthy = Engine.healthy eng;
    }

let run ?throttle cfg ~inbox ~outbox =
  (* Slots guard only the compute-bound stretches (engine boot and
     batch crunching), never a channel wait — a node holding a slot
     always runs to the next protocol message without blocking. *)
  let crunching ?while_waiting f =
    match throttle with
    | Some th -> Throttle.with_slot ?while_waiting th f
    | None -> f ()
  in
  let sess =
    crunching (fun () ->
        let eng =
          Engine.create
            {
              Engine.seed = cfg.seed;
              backend = cfg.backend;
              cores = cfg.cores;
              enclaves = cfg.enclaves;
              rounds = cfg.batch_rounds;
              mix = cfg.mix;
              fuel = cfg.fuel;
              quantum = cfg.quantum;
              check_every = cfg.check_every;
            }
        in
        let tb = Engine.testbed eng in
        (match cfg.faults with
        | None -> ()
        | Some spec ->
            let inj =
              Sanctorum_faults.Injector.create ~horizon:cfg.fault_horizon
                ~machine:tb.Testbed.machine
                ~seed:(Rng.next (Rng.of_string (cfg.seed ^ "/faults")))
                ~spec ()
            in
            Sanctorum_faults.Injector.arm inj);
        let sess = { eng; es_eid = None; agent_eid = None } in
        ensure_attestation sess;
        (match (sess.es_eid, sess.agent_eid) with
        | Some _, Some _ -> ()
        | _ -> failwith "fleet node: attestation enclaves failed to install");
        sess)
  in
  (* The node's clock is its received-message count — virtual time that
     only advances when the cluster pokes it, keeping every deadline
     here replayable. *)
  let now = ref 0 in
  (* Partitions — explicit [part\@S+L] windows and seeded [part:N]
     draws alike — sever the downlink only. They are measured in
     control-plane ticks, a clock this uplink does not have: its clock
     is the received-message count, which freezes the moment the
     downlink goes dark, so a window here could outlive any rejoin
     probe budget (observed: every Joined reply of a fenced node
     swallowed until the fleet failed the whole job set closed). The
     uplink experiences a partition as what it is from this side —
     silence. *)
  let uplink =
    Netfault.create ~chan:outbox
      ~seed:(Rng.next (Rng.of_string (cfg.seed ^ "/net-up")))
      ~spec:(Netfault.without_partitions cfg.net)
      ~horizon:cfg.net_horizon
      ~clock:(fun () -> !now)
      ~corrupt:corrupt_from_node ()
  in
  let sn =
    Session.create Session.node_config
      ~seed:(Rng.next (Rng.of_string (cfg.seed ^ "/session")))
      ~role:Session.Node_end ~encode_tx:up_bytes ~encode_rx:down_bytes
  in
  let epoch_now = ref 0 in
  let cached_reply = ref None in
  (* Counted so that a corrupted (or merely late) challenge that dies
     at the epoch guard still shows up as a stale rejection — no
     faulted message may vanish without a counter saying why. *)
  let stale_challenges = ref 0 in
  let batchq = Queue.create () in
  let deferred = Queue.create () in
  let running = ref true in
  let emit fr = Netfault.send uplink (Up fr) in
  let pump () =
    List.iter (fun (fr, _) -> emit fr) (Session.due sn ~now:!now);
    if Session.want_ack sn then emit (Session.ack_frame sn)
  in
  let handle_challenge ~ch_epoch ~ch_nonce ~ch_cluster_pub =
    if ch_epoch < !epoch_now then
      incr stale_challenges (* obsolete duplicate *)
    else if ch_epoch = !epoch_now && !epoch_now > 0 then
      (* retransmitted challenge: our reply was lost — resend it *)
      Option.iter (Netfault.send uplink) !cached_reply
    else begin
      (* fresh (or higher-epoch) challenge: full re-attestation *)
      epoch_now := ch_epoch;
      ensure_attestation sess;
      (match join cfg sess ~nonce:ch_nonce ~cluster_pub:ch_cluster_pub with
      | Ok (evidence, node_pub, key) ->
          Session.set_key sn ~epoch:ch_epoch ~key;
          (* work delivered under a previous epoch is fenced off: the
             cluster has already re-placed it, so running it here could
             only burn cycles or double-run a job *)
          Queue.clear batchq;
          let r =
            Joined
              {
                jd_node = cfg.node_id;
                jd_epoch = ch_epoch;
                jd_evidence = evidence;
                jd_node_pub = node_pub;
              }
          in
          cached_reply := Some r;
          Netfault.send uplink r
      | Error reason ->
          let r =
            Join_failed
              { jf_node = cfg.node_id; jf_epoch = ch_epoch; jf_reason = reason }
          in
          cached_reply := Some r;
          Netfault.send uplink r);
      retire_attestation sess
    end
  in
  (* [light] marks mid-crunch servicing: session upkeep only — a
     challenge (engine surgery) or shutdown waits for the crunch. *)
  let handle ~light msg =
    match msg with
    | (Challenge _ | Shutdown) when light -> Queue.push msg deferred
    | Challenge { ch_epoch; ch_nonce; ch_cluster_pub } ->
        handle_challenge ~ch_epoch ~ch_nonce ~ch_cluster_pub
    | Shutdown -> running := false
    | Down fr -> (
        match Session.receive sn ~now:!now fr with
        | Session.Delivered ps ->
            List.iter (fun p -> Queue.push p batchq) ps
        | Session.Heartbeat -> emit (Session.ack_frame sn)
        | Session.Duplicate (* re-acked by [pump] *)
        | Session.Bad_mac | Session.Stale | Session.No_key ->
            ())
  in
  let rec drain ~light () =
    match Channel.try_recv inbox with
    | None -> ()
    | Some msg ->
        incr now;
        handle ~light msg;
        drain ~light ()
  in
  let service () =
    drain ~light:true ();
    pump ()
  in
  while !running do
    if not (Queue.is_empty deferred) then handle ~light:false (Queue.pop deferred)
    else if not (Queue.is_empty batchq) then begin
      match Queue.pop batchq with
      | Batch { gen; jobs } ->
          (* [while_waiting]: a node queued for a compute slot still
             answers heartbeats — slot starvation must not look like
             death to the cluster's failure detector. [interrupted]: a
             deferred challenge means the cluster has fenced this
             epoch, so every further round of this batch is work for a
             ledger that will reject it as stale — abort at the round
             boundary, report the remainder unfinished, and let the
             re-attestation run while the probe budget is still
             breathing. A deferred shutdown bounds teardown the same
             way. A delayed or duplicated copy of an old challenge is
             neither — only a strictly newer epoch interrupts. *)
          let interrupting = function
            | Challenge { ch_epoch; _ } -> ch_epoch > !epoch_now
            | Shutdown -> true
            | Down _ -> false
          in
          let interrupted () =
            Queue.fold (fun acc m -> acc || interrupting m) false deferred
          in
          let resp =
            crunching ~while_waiting:service (fun () ->
                run_batch cfg sess ~service ~interrupted ~gen ~jobs)
          in
          (* a rekey can't have happened mid-crunch (challenges are
             deferred), so the response rides the same epoch that
             delivered the batch *)
          emit (Session.send sn ~now:!now resp);
          pump ()
    end
    else begin
      let msg = Channel.recv inbox in
      incr now;
      handle ~light:false msg;
      drain ~light:false ();
      pump ()
    end
  done;
  retire_attestation sess;
  let report = Engine.finish sess.eng in
  let ls = Netfault.stats uplink in
  let ss = Session.stats sn in
  Netfault.send_oob uplink
    (Bye
       {
         bye_node = cfg.node_id;
         bye_report = report;
         bye_hist = Engine.latency_histogram sess.eng;
         bye_net =
           [
             ("net.link.dropped", ls.Netfault.dropped);
             ("net.link.duplicated", ls.Netfault.duplicated);
             ("net.link.corrupted", ls.Netfault.corrupted);
             ("net.link.delayed", ls.Netfault.delayed);
             ("net.link.reordered", ls.Netfault.reordered);
             ("net.link.partition_dropped", ls.Netfault.partition_dropped);
             ("net.retransmits", ss.Session.retransmits);
             ("net.dups_dropped", ss.Session.dups_dropped);
             ("net.hmac_rejects", ss.Session.mac_rejects);
             ("net.stale_rejected", ss.Session.stale_rejects + !stale_challenges);
           ];
       })
