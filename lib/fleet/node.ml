module Hw = Sanctorum_hw
module C = Sanctorum_crypto
module S = Sanctorum.Sm
module A = Sanctorum.Attestation
module Img = Sanctorum.Image
module Tel = Sanctorum_telemetry
module Wl = Sanctorum_workload
module Engine = Sanctorum_workload.Engine
open Sanctorum_os

type job_spec = { js_jid : int; js_seed : int64; js_target : int }

type to_node =
  | Challenge of { nonce : string; cluster_pub : string }
  | Batch of { gen : int; jobs : job_spec list; tag : string }
  | Finish

type from_node =
  | Joined of {
      jd_node : int;
      jd_evidence : A.evidence;
      jd_node_pub : string;
    }
  | Join_failed of { jf_node : int; jf_reason : string }
  | Batch_done of {
      bd_node : int;
      bd_gen : int;
      bd_completed : int list;
      bd_failed : (int * string) list;
      bd_unfinished : int list;
      bd_healthy : bool;
    }
  | Batch_rejected of { br_node : int; br_gen : int; br_reason : string }
  | Final of {
      fn_node : int;
      fn_report : Wl.Workload.report;
      fn_hist : Tel.Metrics.histogram;
    }

type config = {
  node_id : int;
  seed : string;
  backend : Testbed.backend;
  cores : int;
  enclaves : int;
  mix : Wl.Programs.mix;
  fuel : int;
  quantum : int;
  check_every : int;
  batch_rounds : int;
  faults : Sanctorum_faults.Spec.t option;
  fault_horizon : int;
  rogue : bool;
}

let agent_image =
  Img.of_program ~evbase:0x30000 Hw.Isa.[ Op_imm (Add, a7, zero, 1); Ecall ]

let batch_bytes ~gen jobs =
  let b = Buffer.create 64 in
  Buffer.add_string b (Printf.sprintf "gen=%d" gen);
  List.iter
    (fun j ->
      Buffer.add_string b
        (Printf.sprintf ";%d:%Lx:%d" j.js_jid j.js_seed j.js_target))
    jobs;
  Buffer.contents b

(* A rogue machine holds no monitor attestation key, so the best it can
   do is present evidence whose signature does not verify — modelled by
   corrupting one signature bit of otherwise honest evidence. *)
let corrupt_signature (e : A.evidence) =
  {
    e with
    A.signature =
      String.mapi
        (fun i c -> if i = 0 then Char.chr (Char.code c lxor 1) else c)
        e.A.signature;
  }

type session = {
  eng : Engine.t;
  mutable es_eid : int option;
  mutable agent_eid : int option;
  mutable key : string option;  (* DH session key once joined *)
}

(* The attestation enclaves exist for the join handshake only. Keeping
   them resident would tax every later context switch — the keystone
   backend walks the live-enclave set on each one — so the node returns
   their memory as soon as the challenge is answered. *)
let retire_attestation sess =
  let tb = Engine.testbed sess.eng in
  let reclaim = function
    | None -> ()
    | Some eid ->
        ignore
          (Os.retry_transient (fun () -> Os.reclaim_enclave tb.Testbed.os ~eid))
  in
  reclaim sess.es_eid;
  reclaim sess.agent_eid;
  sess.es_eid <- None;
  sess.agent_eid <- None

let join cfg sess ~nonce ~cluster_pub =
  let tb = Engine.testbed sess.eng in
  let sm = tb.Testbed.sm in
  match (sess.agent_eid, sess.es_eid, C.Dh.public_of_bytes cluster_pub) with
  | None, _, _ | _, None, _ -> Error "attestation enclaves retired"
  | _, _, Error m -> Error ("bad cluster key: " ^ m)
  | Some agent_eid, Some es_eid, Ok cluster_public -> (
      let secret, public = C.Dh.generate tb.Testbed.rng in
      let node_pub = C.Dh.public_to_bytes public in
      (* enclave key first, verifier key second — the same transcript
         order [run_remote_attestation] pins *)
      let channel_binding = C.Sha3.sha3_256 (node_pub ^ cluster_pub) in
      match
        A.request_attestation sm ~eid:agent_eid ~es_eid ~nonce ~channel_binding
      with
      | Error e -> Error (Sanctorum.Api_error.to_string e)
      | Ok evidence ->
          let evidence =
            if cfg.rogue then corrupt_signature evidence else evidence
          in
          sess.key <- Some (C.Dh.shared_key secret cluster_public);
          Ok (evidence, node_pub))

(* Run one authenticated batch to completion: submit every job, step
   until they have all settled, the round cap hits, or a core of this
   shard is quarantined. Jobs still in flight at the end are aborted
   and reported unfinished so the cluster can re-place them — the
   quarantine-driven migration path. *)
let run_batch cfg sess ~gen ~jobs =
  let eng = sess.eng in
  let completed = ref [] and failed = ref [] in
  let submitted =
    List.filter
      (fun j ->
        try
          Engine.submit eng ~jid:j.js_jid ~seed:j.js_seed
            ~target:(Some j.js_target);
          true
        with Failure m ->
          failed := (j.js_jid, m) :: !failed;
          false)
      jobs
  in
  let remaining = ref (List.map (fun j -> j.js_jid) submitted) in
  let rounds = ref 0 in
  while !remaining <> [] && !rounds < cfg.batch_rounds && Engine.healthy eng do
    let done_now = Engine.step eng in
    let failed_now = Engine.take_failed eng in
    remaining :=
      List.filter
        (fun j ->
          (not (List.mem j done_now))
          && not (List.mem_assoc j failed_now))
        !remaining;
    completed := !completed @ done_now;
    failed := !failed @ failed_now;
    incr rounds
  done;
  let unfinished = !remaining in
  let reason =
    if not (Engine.healthy eng) then "shard quarantined"
    else "batch round cap"
  in
  List.iter (fun jid -> Engine.abort eng ~jid ~reason) unfinished;
  (* drain the abort notifications so they don't masquerade as genuine
     failures of a later batch *)
  ignore (Engine.take_failed eng);
  Batch_done
    {
      bd_node = cfg.node_id;
      bd_gen = gen;
      bd_completed = !completed;
      bd_failed = !failed;
      bd_unfinished = unfinished;
      bd_healthy = Engine.healthy eng;
    }

let finish cfg sess =
  let eng = sess.eng in
  (* normally retired at join time; covers a node that never saw a
     challenge *)
  retire_attestation sess;
  let report = Engine.finish eng in
  Final
    {
      fn_node = cfg.node_id;
      fn_report = report;
      fn_hist = Engine.latency_histogram eng;
    }

let run ?throttle cfg ~inbox ~outbox =
  (* Slots guard only the compute-bound stretches (engine boot and
     batch crunching), never a channel wait — a node holding a slot
     always runs to the next protocol message without blocking. *)
  let crunching f =
    match throttle with Some th -> Throttle.with_slot th f | None -> f ()
  in
  let sess =
    crunching (fun () ->
        let eng =
          Engine.create
            {
              Engine.seed = cfg.seed;
              backend = cfg.backend;
              cores = cfg.cores;
              enclaves = cfg.enclaves;
              rounds = cfg.batch_rounds;
              mix = cfg.mix;
              fuel = cfg.fuel;
              quantum = cfg.quantum;
              check_every = cfg.check_every;
            }
        in
        let tb = Engine.testbed eng in
        (match cfg.faults with
        | None -> ()
        | Some spec ->
            let inj =
              Sanctorum_faults.Injector.create ~horizon:cfg.fault_horizon
                ~machine:tb.Testbed.machine
                ~seed:(Sanctorum_util.Splitmix.next
                         (Sanctorum_util.Splitmix.of_string
                            (cfg.seed ^ "/faults")))
                ~spec ()
            in
            Sanctorum_faults.Injector.arm inj);
        let es =
          match Testbed.install_signing_enclave tb with
          | Ok inst -> inst.Os.eid
          | Error e ->
              failwith
                ("fleet node: signing enclave: "
                ^ Sanctorum.Api_error.to_string e)
        in
        let agent =
          match Os.install_enclave tb.Testbed.os agent_image with
          | Ok inst -> inst.Os.eid
          | Error e ->
              failwith
                ("fleet node: agent enclave: "
                ^ Sanctorum.Api_error.to_string e)
        in
        { eng; es_eid = Some es; agent_eid = Some agent; key = None })
  in
  let running = ref true in
  while !running do
    match Channel.recv inbox with
    | Challenge { nonce; cluster_pub } ->
        (match join cfg sess ~nonce ~cluster_pub with
        | Ok (evidence, node_pub) ->
            Channel.send outbox
              (Joined
                 {
                   jd_node = cfg.node_id;
                   jd_evidence = evidence;
                   jd_node_pub = node_pub;
                 })
        | Error reason ->
            Channel.send outbox
              (Join_failed { jf_node = cfg.node_id; jf_reason = reason }));
        retire_attestation sess
    | Batch { gen; jobs; tag } -> (
        match sess.key with
        | None ->
            Channel.send outbox
              (Batch_rejected
                 { br_node = cfg.node_id; br_gen = gen; br_reason = "not joined" })
        | Some key ->
            if
              not
                (Sanctorum_crypto.Hmac.verify ~key
                   ~msg:(batch_bytes ~gen jobs) ~tag)
            then
              Channel.send outbox
                (Batch_rejected
                   {
                     br_node = cfg.node_id;
                     br_gen = gen;
                     br_reason = "batch MAC mismatch";
                   })
            else
              Channel.send outbox
                (crunching (fun () -> run_batch cfg sess ~gen ~jobs)))
    | Finish ->
        running := false;
        Channel.send outbox (finish cfg sess)
  done
