module Rng = Sanctorum_util.Splitmix

type t = Round_robin | Least_loaded | Affinity

let name = function
  | Round_robin -> "round-robin"
  | Least_loaded -> "least-loaded"
  | Affinity -> "affinity"

let of_string = function
  | "round-robin" -> Ok Round_robin
  | "least-loaded" -> Ok Least_loaded
  | "affinity" -> Ok Affinity
  | s ->
      Error
        (Printf.sprintf
           "unknown policy %S (expected round-robin|least-loaded|affinity)" s)

let all = [ Round_robin; Least_loaded; Affinity ]

type state = {
  policy : t;
  nodes : int;
  seed : int64;
  assigned : int array;
  mutable cursor : int;  (* round-robin position *)
}

let create policy ~nodes ~seed =
  if nodes < 1 then invalid_arg "Policy.create: nodes must be >= 1";
  { policy; nodes; seed; assigned = Array.make nodes 0; cursor = 0 }

(* The job's sticky home: one splitmix draw keyed by (seed, jid), so
   the mapping is scattered but replayable. *)
let home st ~jid =
  let r = Rng.create ~seed:(Int64.logxor st.seed (Int64.of_int (jid * 2 + 1))) in
  Rng.int r ~bound:st.nodes

let place st ~jid ~eligible =
  match eligible with
  | [] -> None
  | _ ->
      let chosen =
        match st.policy with
        | Round_robin ->
            (* advance the cursor to the next eligible node *)
            let rec probe tries =
              let c = st.cursor mod st.nodes in
              st.cursor <- st.cursor + 1;
              if List.mem c eligible then c
              else if tries >= st.nodes then List.hd eligible
              else probe (tries + 1)
            in
            probe 0
        | Least_loaded ->
            List.fold_left
              (fun best n ->
                if st.assigned.(n) < st.assigned.(best) then n else best)
              (List.hd eligible) eligible
        | Affinity ->
            let h = home st ~jid in
            let rec probe i =
              if i >= st.nodes then List.hd eligible
              else
                let c = (h + i) mod st.nodes in
                if List.mem c eligible then c else probe (i + 1)
            in
            probe 0
      in
      st.assigned.(chosen) <- st.assigned.(chosen) + 1;
      Some chosen

let load st n = st.assigned.(n)
