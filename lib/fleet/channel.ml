type 'a t = { mutex : Mutex.t; nonempty : Condition.t; q : 'a Queue.t }

let create () =
  { mutex = Mutex.create (); nonempty = Condition.create (); q = Queue.create () }

let send t v =
  Mutex.lock t.mutex;
  Queue.push v t.q;
  Condition.signal t.nonempty;
  Mutex.unlock t.mutex

let recv t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.q do
    Condition.wait t.nonempty t.mutex
  done;
  let v = Queue.pop t.q in
  Mutex.unlock t.mutex;
  v

let try_recv t =
  Mutex.lock t.mutex;
  let v = if Queue.is_empty t.q then None else Some (Queue.pop t.q) in
  Mutex.unlock t.mutex;
  v

let length t =
  Mutex.lock t.mutex;
  let n = Queue.length t.q in
  Mutex.unlock t.mutex;
  n
