module Rng = Sanctorum_util.Splitmix

type fault_class = Drop | Dup | Corrupt | Delay | Reorder | Part

type spec = {
  counts : (fault_class * int) list;
  windows : (int * int) list;
}

let empty = { counts = []; windows = [] }

let is_empty spec =
  spec.windows = [] && List.for_all (fun (_, n) -> n <= 0) spec.counts

let without_partitions spec =
  {
    counts = List.filter (fun (cls, _) -> cls <> Part) spec.counts;
    windows = [];
  }

let class_name = function
  | Drop -> "drop"
  | Dup -> "dup"
  | Corrupt -> "corrupt"
  | Delay -> "delay"
  | Reorder -> "reorder"
  | Part -> "part"

let class_of_name = function
  | "drop" -> Some Drop
  | "dup" -> Some Dup
  | "corrupt" -> Some Corrupt
  | "delay" -> Some Delay
  | "reorder" -> Some Reorder
  | "part" -> Some Part
  | _ -> None

let all_preset =
  {
    counts =
      [ (Drop, 3); (Dup, 2); (Corrupt, 2); (Delay, 2); (Reorder, 1); (Part, 1) ];
    windows = [];
  }

let parse s =
  let s = String.trim s in
  if s = "" || s = "none" then Ok empty
  else if s = "all" then Ok all_preset
  else
    let terms = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Ok acc
      | t :: rest -> (
          let t = String.trim t in
          match String.index_opt t '@' with
          | Some i -> (
              let cls = String.sub t 0 i in
              let win = String.sub t (i + 1) (String.length t - i - 1) in
              if cls <> "part" then
                Error (Printf.sprintf "only part takes a window: %S" t)
              else
                match String.split_on_char '+' win with
                | [ a; b ] -> (
                    match (int_of_string_opt a, int_of_string_opt b) with
                    | Some start, Some len when start >= 0 && len > 0 ->
                        go { acc with windows = acc.windows @ [ (start, len) ] }
                          rest
                    | _ -> Error (Printf.sprintf "bad partition window: %S" t))
                | _ ->
                    Error
                      (Printf.sprintf "expected part@START+LEN, got %S" t))
          | None -> (
              let name, count =
                match String.index_opt t ':' with
                | None -> (t, Some 1)
                | Some i ->
                    ( String.sub t 0 i,
                      int_of_string_opt
                        (String.sub t (i + 1) (String.length t - i - 1)) )
              in
              match (class_of_name name, count) with
              | Some cls, Some n when n >= 0 ->
                  go { acc with counts = acc.counts @ [ (cls, n) ] } rest
              | Some _, _ -> Error (Printf.sprintf "bad count in %S" t)
              | None, _ -> Error (Printf.sprintf "unknown fault class %S" name)))
    in
    go empty terms

let to_string spec =
  if is_empty spec then "none"
  else
    String.concat ","
      (List.map
         (fun (cls, n) -> Printf.sprintf "%s:%d" (class_name cls) n)
         (List.filter (fun (_, n) -> n > 0) spec.counts)
      @ List.map
          (fun (start, len) -> Printf.sprintf "part@%d+%d" start len)
          spec.windows)

(* ------------------------------------------------------------------ *)

type action = A_drop | A_dup | A_corrupt | A_delay of int | A_reorder of int

type 'a link = {
  chan : 'a Channel.t;
  clock : unit -> int;
  corrupt_fn : 'a -> 'a;
  rng : Rng.t;  (* consumed only by reorder release permutations *)
  sched : (int, action) Hashtbl.t;  (* send index -> action (first wins) *)
  windows : (int * int) list;
  mutable sent : int;
  mutable holds : (int * int * 'a) list;  (* (release_at, order, msg) *)
  mutable hold_order : int;
  mutable shuffle : (int * 'a list) option;  (* (slots left, collected rev) *)
  mutable delivered : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable corrupted : int;
  mutable delayed : int;
  mutable reordered : int;
  mutable partition_dropped : int;
}

(* Every random choice in a fixed generation order: iterate the spec's
   classes as listed, drawing (index, parameters) per instance — the
   schedule is a pure function of (seed, spec, horizon). *)
let plan rng ~horizon (spec : spec) =
  let sched = Hashtbl.create 16 in
  let windows = ref spec.windows in
  List.iter
    (fun (cls, count) ->
      for _ = 1 to count do
        let at = Rng.int rng ~bound:horizon in
        match cls with
        | Drop -> if not (Hashtbl.mem sched at) then Hashtbl.add sched at A_drop
        | Dup -> if not (Hashtbl.mem sched at) then Hashtbl.add sched at A_dup
        | Corrupt ->
            if not (Hashtbl.mem sched at) then Hashtbl.add sched at A_corrupt
        | Delay ->
            let d = 1 + Rng.int rng ~bound:4 in
            if not (Hashtbl.mem sched at) then Hashtbl.add sched at (A_delay d)
        | Reorder ->
            let depth = 2 + Rng.int rng ~bound:3 in
            if not (Hashtbl.mem sched at) then
              Hashtbl.add sched at (A_reorder depth)
        | Part ->
            (* windows live on the clock, not the send index: a
               partition must end even if the victim stops sending *)
            let start = Rng.int rng ~bound:(horizon * 8) in
            let len = 32 + Rng.int rng ~bound:480 in
            windows := !windows @ [ (start, len) ]
      done)
    spec.counts;
  (sched, !windows)

let create ~chan ~seed ~spec ~horizon ~clock ~corrupt () =
  if horizon < 1 then invalid_arg "Netfault.create: horizon must be >= 1";
  let rng = Rng.create ~seed in
  let sched, windows = plan rng ~horizon spec in
  {
    chan;
    clock;
    corrupt_fn = corrupt;
    rng;
    sched;
    windows;
    sent = 0;
    holds = [];
    hold_order = 0;
    shuffle = None;
    delivered = 0;
    dropped = 0;
    duplicated = 0;
    corrupted = 0;
    delayed = 0;
    reordered = 0;
    partition_dropped = 0;
  }

let deliver t m =
  t.delivered <- t.delivered + 1;
  Channel.send t.chan m

let partitioned t =
  let now = t.clock () in
  List.exists (fun (start, len) -> now >= start && now < start + len) t.windows

(* Fisher–Yates over the collected messages, drawn from the link's own
   stream — the permutation is part of the replayable schedule. *)
let release_shuffle t msgs =
  let a = Array.of_list msgs in
  for i = Array.length a - 1 downto 1 do
    let j = Rng.int t.rng ~bound:(i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.iter (fun m -> deliver t m) a

let release_due t =
  let due, rest =
    List.partition (fun (at, _, _) -> at <= t.sent) t.holds
  in
  t.holds <- rest;
  List.iter
    (fun (_, _, m) -> deliver t m)
    (List.sort (fun (a, i, _) (b, j, _) -> compare (a, i) (b, j)) due)

let send t m =
  let i = t.sent in
  t.sent <- i + 1;
  (match t.shuffle with
  | Some (left, acc) ->
      (* while the shuffle buffer is filling it consumes every send,
         superseding whatever else the schedule put at these indices *)
      let acc = m :: acc in
      if left <= 1 then begin
        t.shuffle <- None;
        t.reordered <- t.reordered + 1;
        release_shuffle t (List.rev acc)
      end
      else t.shuffle <- Some (left - 1, acc)
  | None ->
      if partitioned t then
        t.partition_dropped <- t.partition_dropped + 1
      else begin
        match Hashtbl.find_opt t.sched i with
        | Some A_drop -> t.dropped <- t.dropped + 1
        | Some A_dup ->
            t.duplicated <- t.duplicated + 1;
            deliver t m;
            deliver t m
        | Some A_corrupt ->
            t.corrupted <- t.corrupted + 1;
            deliver t (t.corrupt_fn m)
        | Some (A_delay d) ->
            t.delayed <- t.delayed + 1;
            let order = t.hold_order in
            t.hold_order <- order + 1;
            t.holds <- (i + d, order, m) :: t.holds
        | Some (A_reorder depth) -> t.shuffle <- Some (depth - 1, [ m ])
        | None -> deliver t m
      end);
  release_due t

let flush t =
  (match t.shuffle with
  | None -> ()
  | Some (_, acc) ->
      t.shuffle <- None;
      t.reordered <- t.reordered + 1;
      release_shuffle t (List.rev acc));
  let held =
    List.sort (fun (a, i, _) (b, j, _) -> compare (a, i) (b, j)) t.holds
  in
  t.holds <- [];
  List.iter (fun (_, _, m) -> deliver t m) held

let send_oob t m =
  flush t;
  Channel.send t.chan m

type stats = {
  sent : int;
  delivered : int;
  dropped : int;
  duplicated : int;
  corrupted : int;
  delayed : int;
  reordered : int;
  partition_dropped : int;
}

let stats (t : 'a link) =
  {
    sent = t.sent;
    delivered = t.delivered;
    dropped = t.dropped;
    duplicated = t.duplicated;
    corrupted = t.corrupted;
    delayed = t.delayed;
    reordered = t.reordered;
    partition_dropped = t.partition_dropped;
  }
