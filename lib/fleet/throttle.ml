type t = { mu : Mutex.t; cv : Condition.t; mutable free : int }

let create slots =
  if slots < 1 then invalid_arg "Throttle.create: slots must be >= 1";
  { mu = Mutex.create (); cv = Condition.create (); free = slots }

let host_parallelism () = max 1 (Domain.recommended_domain_count ())

let try_acquire t =
  Mutex.lock t.mu;
  let got = t.free > 0 in
  if got then t.free <- t.free - 1;
  Mutex.unlock t.mu;
  got

let with_slot ?while_waiting t f =
  (match while_waiting with
  | None ->
      Mutex.lock t.mu;
      while t.free = 0 do
        Condition.wait t.cv t.mu
      done;
      t.free <- t.free - 1;
      Mutex.unlock t.mu
  | Some poll ->
      (* Poll rather than block: a queued node must keep answering
         heartbeats, or the cluster's failure detector reads slot
         starvation as death (observed on a 1-core host: every shard
         but the crunching one was fenced mid-batch). *)
      (* 2ms between polls: ~1/100th of the cluster's suspicion
         deadline, so heartbeats stay comfortably fresh, while a
         waiting domain stays asleep enough not to tax the one that
         holds the slot (minor GCs are stop-the-world across running
         domains). *)
      while not (try_acquire t) do
        poll ();
        Unix.sleepf 0.002
      done);
  Fun.protect f ~finally:(fun () ->
      Mutex.lock t.mu;
      t.free <- t.free + 1;
      Condition.signal t.cv;
      Mutex.unlock t.mu)
