type t = { mu : Mutex.t; cv : Condition.t; mutable free : int }

let create slots =
  if slots < 1 then invalid_arg "Throttle.create: slots must be >= 1";
  { mu = Mutex.create (); cv = Condition.create (); free = slots }

let host_parallelism () = max 1 (Domain.recommended_domain_count ())

let with_slot t f =
  Mutex.lock t.mu;
  while t.free = 0 do
    Condition.wait t.cv t.mu
  done;
  t.free <- t.free - 1;
  Mutex.unlock t.mu;
  Fun.protect f ~finally:(fun () ->
      Mutex.lock t.mu;
      t.free <- t.free + 1;
      Condition.signal t.cv;
      Mutex.unlock t.mu)
