(** A seeded, replayable fault layer for one direction of a fleet link.

    The fleet's {!Channel} is a perfect lossless FIFO; real links are
    not. A [link] wraps the sending end of a channel and, before each
    message reaches the queue, consults a fault schedule that is a pure
    function of [(seed, spec, horizon)] — the [lib/faults/injector]
    discipline applied to the network: every random choice is drawn
    from a private splitmix stream in a fixed generation order, so a
    run replays bit-for-bit from its seed.

    Fault classes (counts drawn within the first [horizon] sends):

    - {b drop} — the message vanishes;
    - {b dup} — the message is enqueued twice;
    - {b corrupt} — the caller-supplied [corrupt] function mangles the
      payload (the receiver's HMAC must catch it — the link is never
      trusted);
    - {b delay} — the message is held back a few sends and released
      out of order;
    - {b reorder} — a bounded-depth shuffle buffer collects the next
      few sends and releases them in a seeded permutation;
    - {b part} — a timed partition: every send while the link's clock
      is inside the window is dropped. Windows are measured on the
      caller's [clock] (cluster ticks, on the fleet's downlink) so a
      partition always ends even when the send rate collapses. A
      partition is a downlink-only fault class: the uplink's clock is
      its received-message count, which freezes the moment the
      downlink goes dark, so a window there could outlive any probe
      budget — the uplink experiences a partition as silence instead,
      and callers strip the class with {!without_partitions}.

    Faults are applied on the {e sender's} side of the channel, so each
    domain runs its own schedule and no mutable state crosses domains
    beyond the channel itself. *)

type fault_class = Drop | Dup | Corrupt | Delay | Reorder | Part

type spec = {
  counts : (fault_class * int) list;
  windows : (int * int) list;
      (** explicit partition windows [(start, len)] in clock units, in
          addition to any seeded [Part] windows. Like the seeded kind,
          they belong on the tick-denominated downlink only — see
          {!without_partitions}. *)
}

val empty : spec

val without_partitions : spec -> spec
(** [spec] minus every partition: seeded [Part] counts and explicit
    windows. Applied to the uplink's copy of a fleet net spec, whose
    received-message clock cannot measure a partition window. *)

val is_empty : spec -> bool
(** no fault ever fires: all counts zero and no windows *)

val parse : string -> (spec, string) result
(** Comma-separated [class:count] terms ([drop:3,dup:2,...]; a bare
    class means count 1) plus explicit partitions [part\@START+LEN].
    [""], ["none"] parse to {!empty}; ["all"] is a preset with every
    class enabled. *)

val to_string : spec -> string
(** Round-trips through {!parse}. *)

type 'a link

type stats = {
  sent : int;  (** messages offered to the link (faulted path only) *)
  delivered : int;  (** messages that reached the channel, dups included *)
  dropped : int;
  duplicated : int;
  corrupted : int;
  delayed : int;
  reordered : int;  (** shuffle buffers released *)
  partition_dropped : int;
}

val create :
  chan:'a Channel.t ->
  seed:int64 ->
  spec:spec ->
  horizon:int ->
  clock:(unit -> int) ->
  corrupt:('a -> 'a) ->
  unit ->
  'a link
(** [horizon] is the send-index window the per-message faults are drawn
    in; seeded partition windows are drawn in clock units scaled from
    it. Raises [Invalid_argument] if [horizon < 1]. *)

val send : 'a link -> 'a -> unit
(** Offer one message to the faulted path. *)

val flush : 'a link -> unit
(** Release everything still held back (delay holds and a partially
    filled shuffle buffer), in schedule order. Called automatically by
    {!send_oob}. *)

val send_oob : 'a link -> 'a -> unit
(** Out-of-band delivery that bypasses the fault path entirely — the
    operator console, not the network. Used only for final teardown
    ([Shutdown]/[Bye]), so a run always terminates no matter the
    spec. *)

val stats : 'a link -> stats
