(** One fleet node: a complete, independent [Machine]+SM+OS shard
    wrapped in a {!Sanctorum_workload.Engine}, running in its own
    domain and speaking the cluster protocol over two {!Channel}s —
    through a {!Netfault} link and a {!Session}, because the link is
    hostile: messages drop, duplicate, reorder, corrupt, and partition.

    Nothing mutable is shared with any other shard — each node boots
    its own simulated machine from its own seed — so the only
    cross-domain traffic is the message protocol below.

    {b Join protocol} (paper Fig. 7, with the cluster as the trusted
    first party): the cluster sends an epoch, a fresh nonce, and its DH
    public key; the node installs the canonical signing enclave E_S and
    a fixed agent enclave on its own monitor, obtains signed evidence
    over (nonce, channel binding, agent measurement), and replies with
    the evidence and its own DH public key. Only if the cluster
    verifies the evidence against the {e independently derived}
    manufacturer root does the node receive jobs. A {e higher-epoch}
    challenge — a rejoin after the node was fenced off as suspected
    dead, or a retry after a corrupted handshake — triggers full
    re-attestation (the enclaves are reinstalled if retired) and a DH
    rekey; batches queued under the old epoch are discarded, because
    the cluster has already re-placed them. A {e same-epoch} challenge
    is a retransmit: the cached reply is resent, never re-attested.

    {b Data plane}: every batch and result travels as a {!Session}
    frame — sequence-numbered, cumulatively acked, HMAC'd under the
    epoch's DH key. The session dedups redelivered batches (acked, not
    re-run), buffers reordered ones, rejects corrupted or stale ones,
    and retransmits unacked results when the cluster's heartbeats poke
    it. Mid-crunch the node services its inbox every few engine rounds
    so a long batch never reads as a dead node.

    {b Teardown} is out-of-band ([Shutdown]/[Bye] bypass the fault
    layer — the operator console, not the network), so a run
    terminates under any fault spec. *)

type job_spec = {
  js_jid : int;
  js_seed : int64;  (** seeds the job's private splitmix stream *)
  js_target : int;  (** exits per member before the job completes *)
}

type down = Batch of { gen : int; jobs : job_spec list }
(** cluster -> node session payloads *)

(** node -> cluster session payloads *)
type up =
  | Batch_done of {
      bd_node : int;
      bd_gen : int;
      bd_completed : int list;
      bd_failed : (int * string) list;
          (** jobs that failed on this shard (fault, kill, API errors) *)
      bd_unfinished : int list;
          (** jobs aborted still-running — quarantine or round cap —
              for the cluster to re-place *)
      bd_healthy : bool;  (** no core quarantined *)
    }

type to_node =
  | Challenge of { ch_epoch : int; ch_nonce : string; ch_cluster_pub : string }
  | Down of down Session.frame
  | Shutdown  (** out-of-band: answer {!Bye} and exit *)

type from_node =
  | Joined of {
      jd_node : int;
      jd_epoch : int;
      jd_evidence : Sanctorum.Attestation.evidence;
      jd_node_pub : string;
    }
  | Join_failed of { jf_node : int; jf_epoch : int; jf_reason : string }
  | Up of up Session.frame
  | Bye of {
      bye_node : int;
      bye_report : Sanctorum_workload.Workload.report;
      bye_hist : Sanctorum_telemetry.Metrics.histogram;
      bye_net : (string * int) list;
          (** this node's [net.*] counters, merged fleet-wide *)
    }

type config = {
  node_id : int;
  seed : string;  (** this shard's seed (already shard-qualified) *)
  backend : Sanctorum_os.Testbed.backend;
  cores : int;
  enclaves : int;  (** capacity — sizes the shard's PMP *)
  mix : Sanctorum_workload.Programs.mix;
  fuel : int;
  quantum : int;
  check_every : int;
  batch_rounds : int;
      (** per-batch round cap; jobs still in flight at the cap are
          aborted and reported unfinished *)
  faults : Sanctorum_faults.Spec.t option;
      (** armed on this shard's machine before any job runs *)
  fault_horizon : int;  (** cycle window the fault schedule is drawn in *)
  rogue : bool;
      (** present evidence with a corrupted signature — a node
          impersonating a genuine Sanctorum machine *)
  net : Netfault.spec;  (** faults armed on this node's uplink *)
  net_horizon : int;
}

val agent_image : Sanctorum.Image.t
(** The enclave every node attests at join time. The cluster computes
    [Image.measurement agent_image] on its own — the expected value
    never travels over the wire. *)

val batch_bytes : gen:int -> job_spec list -> string
(** The byte string both sides MAC: generation number and every job
    field. *)

val down_bytes : down -> string
val up_bytes : up -> string
(** Canonical MAC inputs for the two session directions. *)

val corrupt_to_node : to_node -> to_node
val corrupt_from_node : from_node -> from_node
(** What in-flight corruption does to a message: one flipped tag bit on
    a session frame, one flipped handshake byte otherwise. Every
    authenticity check must catch the result. *)

val run :
  ?throttle:Throttle.t ->
  config ->
  inbox:to_node Channel.t ->
  outbox:from_node Channel.t ->
  unit
(** The domain body: boot, then serve challenges and batches until an
    out-of-band [Shutdown], then tear down and send [Bye].

    When [throttle] is given, engine boot and batch crunching each take
    a slot, bounding how many shards compute at once (see
    {!Throttle}); protocol waits never hold a slot. *)
