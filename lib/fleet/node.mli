(** One fleet node: a complete, independent [Machine]+SM+OS shard
    wrapped in a {!Sanctorum_workload.Engine}, running in its own
    domain and speaking the cluster protocol over two {!Channel}s.

    Nothing mutable is shared with any other shard — each node boots
    its own simulated machine from its own seed — so the only
    cross-domain traffic is the message protocol below, and every
    shard's architectural behaviour is a pure function of
    [(seed, shard-id, placed jobs)].

    {b Join protocol} (paper Fig. 7, with the cluster as the trusted
    first party): the cluster sends a nonce and its DH public key; the
    node installs the canonical signing enclave E_S and a fixed agent
    enclave on its own monitor, obtains signed evidence over
    (nonce, channel binding, agent measurement), and replies with the
    evidence and its own DH public key. Only if the cluster verifies
    the evidence against the {e independently derived} manufacturer
    root does the node receive jobs — and every job batch is
    authenticated with an HMAC under the DH session key, which the
    node checks before running anything. *)

type job_spec = {
  js_jid : int;
  js_seed : int64;  (** seeds the job's private splitmix stream *)
  js_target : int;  (** exits per member before the job completes *)
}

type to_node =
  | Challenge of { nonce : string; cluster_pub : string }
  | Batch of { gen : int; jobs : job_spec list; tag : string }
      (** [tag] = HMAC over {!batch_bytes} under the session key *)
  | Finish

type from_node =
  | Joined of {
      jd_node : int;
      jd_evidence : Sanctorum.Attestation.evidence;
      jd_node_pub : string;
    }
  | Join_failed of { jf_node : int; jf_reason : string }
  | Batch_done of {
      bd_node : int;
      bd_gen : int;
      bd_completed : int list;
      bd_failed : (int * string) list;
          (** jobs that failed on this shard (fault, kill, API errors) *)
      bd_unfinished : int list;
          (** jobs aborted still-running — quarantine or round cap —
              for the cluster to re-place *)
      bd_healthy : bool;  (** no core quarantined *)
    }
  | Batch_rejected of { br_node : int; br_gen : int; br_reason : string }
  | Final of {
      fn_node : int;
      fn_report : Sanctorum_workload.Workload.report;
      fn_hist : Sanctorum_telemetry.Metrics.histogram;
    }

type config = {
  node_id : int;
  seed : string;  (** this shard's seed (already shard-qualified) *)
  backend : Sanctorum_os.Testbed.backend;
  cores : int;
  enclaves : int;  (** capacity — sizes the shard's PMP *)
  mix : Sanctorum_workload.Programs.mix;
  fuel : int;
  quantum : int;
  check_every : int;
  batch_rounds : int;
      (** per-batch round cap; jobs still in flight at the cap are
          aborted and reported unfinished *)
  faults : Sanctorum_faults.Spec.t option;
      (** armed on this shard's machine before any job runs *)
  fault_horizon : int;  (** cycle window the fault schedule is drawn in *)
  rogue : bool;
      (** present evidence with a corrupted signature — a node
          impersonating a genuine Sanctorum machine *)
}

val agent_image : Sanctorum.Image.t
(** The enclave every node attests at join time. The cluster computes
    [Image.measurement agent_image] on its own — the expected value
    never travels over the wire. *)

val batch_bytes : gen:int -> job_spec list -> string
(** The byte string both sides MAC: generation number and every job
    field. *)

val run :
  ?throttle:Throttle.t ->
  config ->
  inbox:to_node Channel.t ->
  outbox:from_node Channel.t ->
  unit
(** The domain body: boot, join, serve batches until [Finish], then
    tear down and send [Final]. Never raises — a protocol-fatal error
    surfaces as [Join_failed] and an idle wait for [Finish].

    When [throttle] is given, engine boot and batch crunching each take
    a slot, bounding how many shards compute at once (see
    {!Throttle}); protocol waits never hold a slot. *)
