(** A blocking FIFO channel for cross-domain messaging — the fleet's
    model of a machine-to-machine network link.

    Many senders, many receivers, unbounded queue, mutex + condition
    under the hood. The cluster gives every node a private inbox and a
    private outbox and always drains outboxes in node-id order, so
    message {e processing} order — and with it the whole control
    plane — stays deterministic even though domains interleave
    arbitrarily. *)

type 'a t

val create : unit -> 'a t

val send : 'a t -> 'a -> unit
(** Never blocks (the queue is unbounded). *)

val recv : 'a t -> 'a
(** Blocks until a message is available. *)

val try_recv : 'a t -> 'a option

val length : 'a t -> int
(** Messages currently queued — a consistent snapshot taken under the
    channel mutex, so it is exact at the instant it is read. It may be
    stale by the time the caller acts on it: another domain can send
    or receive between the read and any decision based on it, so use
    it for telemetry and tests that have quiesced the other side,
    never to decide whether {!recv} would block (use {!try_recv}). *)
