(** The deterministic fault-injection engine.

    From a seed and a {!Spec.t} the engine derives a fixed schedule of
    faults at simulated-cycle granularity, then installs itself as the
    machine's {!Sanctorum_hw.Machine.fault_hooks}. Because the
    simulation itself is deterministic, the same seed always yields
    the same schedule {e and} the same outcome — every failure is
    reproducible from its seed.

    Delivery model: the engine's clock is the maximum cycle count any
    core has reached; a fault whose cycle is due fires from the next
    [tick], on whichever core is stepping (so core-targeted faults —
    spurious interrupts, machine checks — always hit a live core).
    Interrupt drops and IPI drops arm a counter consumed by the next
    matching delivery attempt. *)

type t

val create :
  ?horizon:int ->
  machine:Sanctorum_hw.Machine.t ->
  seed:int64 ->
  spec:Spec.t ->
  unit ->
  t
(** Derive the schedule: every fault in [spec] is placed at a seeded
    uniform cycle in [[0, horizon)] (default 4000) with seeded
    parameters (addresses, bits, interrupt kinds). Nothing fires until
    {!arm}. *)

val arm : t -> unit
(** Install the engine as the machine's fault hooks. *)

val disarm : t -> unit
(** Remove the hooks; pending schedule entries stop firing. *)

val schedule : t -> (int * string) list
(** The full schedule as [(cycle, description)] pairs, in firing
    order — the determinism witness: equal seeds and specs yield equal
    schedules. *)

type stats = {
  injected : int;  (** schedule entries fired so far *)
  pending : int;  (** schedule entries not yet due *)
  irqs_dropped : int;  (** interrupts actually suppressed *)
  ipis_dropped : int;  (** shootdown IPI deliveries actually lost *)
  dma_granted : int;
  dma_denied : int;
}

val stats : t -> stats

val dma_grants : t -> int list
(** Physical addresses of misfired DMA writes the machine {e let
    through}. The chaos harness cross-checks each against the owner
    map: a grant into non-untrusted memory is fail-open evidence. *)
