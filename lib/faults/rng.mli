(** The fault engine's own deterministic RNG (splitmix64).

    Deliberately {e not} [Stdlib.Random] and {e not} the monitor's
    DRBG: the whole point of the engine is that the same seed always
    produces the same fault schedule, independent of anything else the
    process does, so every chaos failure is reproducible from the seed
    printed in the log line. *)

type t

val create : seed:int64 -> t

val next : t -> int64
(** The next 64-bit output. *)

val int : t -> bound:int -> int
(** Uniform-ish in [[0, bound)]; [bound] must be positive. *)

val pick : t -> 'a list -> 'a
(** A uniform element of a non-empty list. *)
