module Hw = Sanctorum_hw
module Pf = Sanctorum_platform
module Sm = Sanctorum.Sm
module An = Sanctorum_analysis
module Tel = Sanctorum_telemetry
open Sanctorum_os

type report = {
  backend : string;
  seed : int64;
  spec : Spec.t;
  rounds : int;
  completed : int;
  failed_closed : int;
  incidents : string list;
  stats : Injector.stats;
  ecc_corrected : int;
  words_retired : int;
  quarantined_cores : int;
  findings : An.Report.violation list;
  fail_open : string list;
}

let evbase = 0x10000
let target = 300

let counting_program =
  let counter = evbase + Hw.Phys_mem.page_size in
  Hw.Isa.(
    li t0 counter
    @ [ Load (Ld, t1, t0, 0) ]
    @ li t2 target
    @ [
        Branch (Bge, t1, t2, 16);
        Op_imm (Add, t1, t1, 1);
        Store (Sd, t1, t0, 0);
        Jal (zero, -12);
      ]
    @ [ Op_imm (Add, a7, zero, Sm.Ecall.exit_enclave); Ecall ])

let live_core machine =
  let cores = Hw.Machine.cores machine in
  let rec go i =
    if i >= Array.length cores then None
    else if cores.(i).Hw.Machine.quarantined then go (i + 1)
    else Some i
  in
  go 0

(* Drive one installed enclave to completion: resume after every AEX,
   re-arm the quantum after a lost timer tick (Fuel_exhausted without
   an AEX), give up after [budget] scheduling decisions. *)
let drive os ~eid ~tid ~core =
  let fuel = 5000 and quantum = 200 in
  let rec go mode budget =
    if budget = 0 then `Gave_up
    else
      let r =
        match mode with
        | `Enter -> Os.run_enclave os ~eid ~tid ~core ~fuel ~quantum ()
        | `Resume -> Os.resume_enclave os ~eid ~tid ~core ~fuel ~quantum ()
        | `Continue -> Os.continue_running os ~tid ~core ~fuel ~quantum ()
      in
      match r with
      | Ok Os.Exited -> `Exited
      | Ok Os.Preempted -> go `Resume (budget - 1)
      | Ok Os.Fuel_exhausted -> go `Continue (budget - 1)
      | Ok (Os.Faulted c) -> `Faulted c
      | Ok Os.Killed -> `Killed
      | Error e -> `Denied e
  in
  go `Enter 100

let run ?(backend = Testbed.Sanctum_backend) ?(rounds = 5) ?horizon ?sink
    ~seed ~spec () =
  let horizon = Option.value horizon ~default:(1500 * rounds) in
  let tb =
    Testbed.create ~backend ~seed:(Printf.sprintf "chaos-%Ld" seed) ?sink ()
  in
  let machine = tb.Testbed.machine in
  let mem = Hw.Machine.mem machine in
  let inj = Injector.create ~horizon ~machine ~seed ~spec () in
  Injector.arm inj;
  let completed = ref 0 and failed_closed = ref 0 in
  let incidents = ref [] and fail_open = ref [] in
  let closed msg =
    incr failed_closed;
    incidents := msg :: !incidents
  in
  let image =
    Sanctorum.Image.of_program ~evbase ~data_pages:1 counting_program
  in
  for round = 1 to rounds do
    let pre = Printf.sprintf "round %d: " round in
    match live_core machine with
    | None -> closed (pre ^ "no live cores left")
    | Some core -> (
        match Os.install_enclave tb.Testbed.os image with
        | exception exn ->
            fail_open := (pre ^ "install raised " ^ Printexc.to_string exn)
                         :: !fail_open
        | Error e ->
            closed (pre ^ "install denied: " ^ Sanctorum.Api_error.to_string e)
        | Ok inst -> (
            let eid = inst.Os.eid and tid = List.hd inst.Os.tids in
            let counter_paddr =
              match Sm.enclave_info tb.Testbed.sm ~eid with
              | Some info ->
                  let vpn = (evbase + Hw.Phys_mem.page_size) / Hw.Phys_mem.page_size in
                  Option.map Hw.Phys_mem.page_base
                    (List.assoc_opt vpn info.Sm.i_mappings)
              | None -> None
            in
            (match drive tb.Testbed.os ~eid ~tid ~core with
            | exception exn ->
                fail_open := (pre ^ "run raised " ^ Printexc.to_string exn)
                             :: !fail_open
            | `Exited -> (
                match counter_paddr with
                | None ->
                    fail_open := (pre ^ "exited but the counter page was never \
                                         mapped") :: !fail_open
                | Some paddr -> (
                    (* the verifying read goes through ECC, like any
                       post-hoc DMA or inspection would *)
                    match Hw.Phys_mem.scrub mem ~pos:paddr ~len:8 with
                    | `Uncorrectable _ ->
                        closed (pre ^ "result word uncorrectable; discarded")
                    | `Clean | `Corrected _ ->
                        let v = Hw.Phys_mem.read_u64 mem paddr in
                        if v = Int64.of_int target then incr completed
                        else
                          fail_open :=
                            Printf.sprintf
                              "%sexited with wrong result %Ld (expected %d)"
                              pre v target
                            :: !fail_open))
            | `Faulted c ->
                closed
                  (pre ^ Format.asprintf "faulted (%a)" Hw.Trap.pp_cause c)
            | `Killed -> closed (pre ^ "core quarantined mid-run")
            | `Denied e ->
                closed (pre ^ "denied: " ^ Sanctorum.Api_error.to_string e)
            | `Gave_up -> closed (pre ^ "scheduling budget exhausted"));
            match Os.reclaim_enclave tb.Testbed.os ~eid with
            | exception exn ->
                fail_open := (pre ^ "reclaim raised " ^ Printexc.to_string exn)
                             :: !fail_open
            | Ok () -> ()
            | Error e ->
                incidents :=
                  (pre ^ "reclaim denied: " ^ Sanctorum.Api_error.to_string e)
                  :: !incidents))
  done;
  Injector.disarm inj;
  (* A misfired DMA the machine let through must have landed in plain
     untrusted memory; anything else is a hole in the isolation. *)
  List.iter
    (fun paddr ->
      let owner = tb.Testbed.platform.Pf.Platform.owner_at ~paddr in
      if owner <> Hw.Trap.domain_untrusted then
        fail_open :=
          Printf.sprintf "DMA misfire granted into domain %d memory at 0x%x"
            owner paddr
          :: !fail_open)
    (Injector.dma_grants inj);
  (* Recovery completes with one patrol pass; after it the monitor's
     state must be indistinguishable from a healthy machine's. *)
  let _, retired = Sm.patrol_scrub tb.Testbed.sm in
  ignore retired;
  let findings = An.Checker.run_all tb.Testbed.sm in
  let quarantined =
    Array.fold_left
      (fun acc c -> if c.Hw.Machine.quarantined then acc + 1 else acc)
      0 (Hw.Machine.cores machine)
  in
  {
    backend = Testbed.backend_name backend;
    seed;
    spec;
    rounds;
    completed = !completed;
    failed_closed = !failed_closed;
    incidents = List.rev !incidents;
    stats = Injector.stats inj;
    ecc_corrected = Hw.Phys_mem.corrected_count mem;
    words_retired = Hw.Phys_mem.uncorrectable_count mem;
    quarantined_cores = quarantined;
    findings;
    fail_open = List.rev !fail_open;
  }

let ok r = r.fail_open = [] && r.findings = []

let pp fmt r =
  Format.fprintf fmt "chaos %s seed=%Ld faults=%a@." r.backend r.seed Spec.pp
    r.spec;
  Format.fprintf fmt
    "  rounds: %d (%d completed, %d failed closed)@."
    r.rounds r.completed r.failed_closed;
  Format.fprintf fmt
    "  injected: %d (%d pending), irqs dropped %d, IPIs dropped %d, DMA %d \
     granted / %d denied@."
    r.stats.Injector.injected r.stats.Injector.pending
    r.stats.Injector.irqs_dropped r.stats.Injector.ipis_dropped
    r.stats.Injector.dma_granted r.stats.Injector.dma_denied;
  Format.fprintf fmt
    "  recovery: %d ECC corrections, %d words retired, %d cores quarantined@."
    r.ecc_corrected r.words_retired r.quarantined_cores;
  List.iter (fun i -> Format.fprintf fmt "  closed: %s@." i) r.incidents;
  List.iter (fun e -> Format.fprintf fmt "  FAIL-OPEN: %s@." e) r.fail_open;
  List.iter
    (fun v -> Format.fprintf fmt "  FINDING: %a@." An.Report.pp v)
    r.findings;
  Format.fprintf fmt "  verdict: %s@."
    (if ok r then "fail-closed (ok)" else "FAIL-OPEN or unrecovered")
