(** The chaos harness: honest workloads under a seeded fault storm.

    Each round installs a small counting enclave, drives it to
    completion through preemptions (resuming after every AEX and
    re-arming the quantum after a lost timer tick), verifies its
    result, and reclaims it — while the {!Injector} delivers the
    scheduled faults. The harness asserts the two fail-closed
    properties the paper's recovery story promises:

    - an honest workload either completes with the right answer or
      fails {e closed} (denied, faulted, or killed with its core) —
      it never completes with a wrong answer, never observes a raised
      exception, and no misfired DMA lands outside untrusted memory;
    - after the storm, one patrol-scrub pass finishes recovery and
      {!Sanctorum_analysis.Checker.run_all} reports {e zero} findings.

    Determinism: same [seed], [spec], [backend] and [rounds] give the
    same report, so any failure reproduces from the log line. *)

type report = {
  backend : string;
  seed : int64;
  spec : Spec.t;
  rounds : int;
  completed : int;  (** rounds that finished with the right answer *)
  failed_closed : int;
      (** rounds denied/faulted/killed — computation lost, nothing
          leaked *)
  incidents : string list;
      (** one line per fail-closed outcome, oldest first *)
  stats : Injector.stats;
  ecc_corrected : int;  (** single-bit corrections, including patrol *)
  words_retired : int;  (** uncorrectable words retired by recovery *)
  quarantined_cores : int;
  findings : Sanctorum_analysis.Report.violation list;
      (** invariant findings after recovery — must be empty *)
  fail_open : string list;  (** fail-open evidence — must be empty *)
}

val run :
  ?backend:Sanctorum_os.Testbed.backend ->
  ?rounds:int ->
  ?horizon:int ->
  ?sink:Sanctorum_telemetry.Sink.t ->
  seed:int64 ->
  spec:Spec.t ->
  unit ->
  report
(** Defaults: Sanctum backend, 5 rounds, horizon [1500 * rounds]. *)

val ok : report -> bool
(** No fail-open evidence and no post-recovery findings. *)

val pp : Format.formatter -> report -> unit
