module Hw = Sanctorum_hw
module Tel = Sanctorum_telemetry

(* The PR-3 fault engine carried its own splitmix64; it now lives in
   lib/util, shared with the workload and fleet engines. The stream is
   unchanged (known-answer-tested), so recorded fault schedules still
   replay. *)
module Rng = Sanctorum_util.Splitmix

type action =
  | Flip of { paddr : int; bit : int }
  | Flip2 of { paddr : int; bit_a : int; bit_b : int }
  | Drop_irq
  | Spurious of Hw.Trap.interrupt
  | Drop_ipis of int
  | Dma of { paddr : int; data : string }
  | Core_check

type scheduled = { at : int; action : action; mutable fired : bool }

type t = {
  machine : Hw.Machine.t;
  schedule : scheduled array;  (* sorted by cycle, generation order ties *)
  mutable next : int;
  mutable now : int;
  mutable irq_drops : int;  (* armed, not yet consumed *)
  mutable ipi_drops : int;
  mutable injected : int;
  mutable irqs_dropped : int;
  mutable ipis_dropped : int;
  mutable dma_results : (int * bool) list;  (* (paddr, granted) *)
}

let describe = function
  | Flip { paddr; bit } -> Printf.sprintf "bitflip 0x%x bit %d" paddr bit
  | Flip2 { paddr; bit_a; bit_b } ->
      Printf.sprintf "bitflip2 0x%x bits %d,%d" paddr bit_a bit_b
  | Drop_irq -> "irq-drop"
  | Spurious irq ->
      Printf.sprintf "spurious-irq %s"
        (Hw.Trap.cause_label (Hw.Trap.Interrupt irq))
  | Drop_ipis n -> Printf.sprintf "ipi-drop x%d" n
  | Dma { paddr; _ } -> Printf.sprintf "dma 0x%x" paddr
  | Core_check -> "mce"

(* One schedule entry per fault the spec asks for, with every random
   choice drawn from the seeded stream in a fixed generation order, so
   the schedule is a pure function of (seed, spec, machine geometry). *)
let plan rng ~mem_size ~spec =
  let word () = Rng.int rng ~bound:(mem_size / 8) * 8 in
  let gen cls =
    match (cls : Spec.fault_class) with
    | Spec.Bit_flip -> Flip { paddr = word (); bit = Rng.int rng ~bound:64 }
    | Spec.Double_bit_flip ->
        let bit_a = Rng.int rng ~bound:64 in
        let bit_b = (bit_a + 1 + Rng.int rng ~bound:63) mod 64 in
        Flip2 { paddr = word (); bit_a; bit_b }
    | Spec.Irq_drop -> Drop_irq
    | Spec.Spurious_irq ->
        Spurious
          (Rng.pick rng
             [ Hw.Trap.Timer; Hw.Trap.Software; Hw.Trap.External 7 ])
    | Spec.Ipi_drop ->
        (* 1-2 lost deliveries force retries; losing a full round of
           [shootdown_max_attempts] kills the target instead *)
        Drop_ipis (1 + Rng.int rng ~bound:Hw.Machine.shootdown_max_attempts)
    | Spec.Dma_misfire ->
        let data = String.init 8 (fun _ -> Char.chr (Rng.int rng ~bound:256)) in
        Dma { paddr = word (); data }
    | Spec.Core_check -> Core_check
  in
  let entries =
    List.concat_map
      (fun { Spec.cls; count } ->
        List.init count (fun _ ->
            let at = Rng.int rng ~bound:max_int in
            (at, gen cls)))
      spec
  in
  entries

let create ?(horizon = 4000) ~machine ~seed ~spec () =
  if horizon <= 0 then invalid_arg "Injector.create: horizon must be positive";
  let rng = Rng.create ~seed in
  let mem_size = Hw.Phys_mem.size (Hw.Machine.mem machine) in
  let entries =
    plan rng ~mem_size ~spec
    |> List.map (fun (raw, action) ->
           { at = raw mod horizon; action; fired = false })
  in
  let schedule = Array.of_list entries in
  Array.stable_sort (fun a b -> compare a.at b.at) schedule;
  {
    machine;
    schedule;
    next = 0;
    now = 0;
    irq_drops = 0;
    ipi_drops = 0;
    injected = 0;
    irqs_dropped = 0;
    ipis_dropped = 0;
    dma_results = [];
  }

let emit t action =
  let sink = Hw.Machine.sink t.machine in
  if Tel.Sink.enabled sink then begin
    Tel.Sink.incr_counter sink "faults.injected";
    let fault =
      match action with
      | Flip _ -> "bitflip"
      | Flip2 _ -> "bitflip2"
      | Drop_irq -> "irq-drop"
      | Spurious _ -> "spurious-irq"
      | Drop_ipis _ -> "ipi-drop"
      | Dma _ -> "dma"
      | Core_check -> "mce"
    in
    Tel.Sink.emit sink ~core:(-1) ~cycles:t.now
      (Tel.Event.Fault_injected { fault; detail = describe action })
  end

(* [core] is the core whose tick made the entry due: core-targeted
   faults hit it precisely because it is demonstrably live. *)
let fire t ~core action =
  t.injected <- t.injected + 1;
  emit t action;
  match action with
  | Flip { paddr; bit } ->
      (* via the machine, not raw [Phys_mem]: the machine's write hook
         invalidates any predecoded instructions for the touched page *)
      Hw.Machine.inject_bit_flip t.machine ~paddr ~bit
  | Flip2 { paddr; bit_a; bit_b } ->
      Hw.Machine.inject_bit_flip t.machine ~paddr ~bit:bit_a;
      Hw.Machine.inject_bit_flip t.machine ~paddr ~bit:bit_b
  | Drop_irq -> t.irq_drops <- t.irq_drops + 1
  | Spurious irq -> Hw.Machine.post_interrupt t.machine ~core irq
  | Drop_ipis n -> t.ipi_drops <- t.ipi_drops + n
  | Dma { paddr; data } ->
      let granted =
        match Hw.Machine.dma_write t.machine ~paddr data with
        | Ok () -> true
        | Error _ -> false
      in
      t.dma_results <- (paddr, granted) :: t.dma_results
  | Core_check -> Hw.Machine.raise_machine_check t.machine ~core ~paddr:(-1)

let tick t ~core ~cycles =
  if cycles > t.now then t.now <- cycles;
  while
    t.next < Array.length t.schedule && t.schedule.(t.next).at <= t.now
  do
    let entry = t.schedule.(t.next) in
    t.next <- t.next + 1;
    if not entry.fired then begin
      entry.fired <- true;
      fire t ~core entry.action
    end
  done

let irq_gate t ~core:_ ~irq:_ =
  if t.irq_drops > 0 then begin
    t.irq_drops <- t.irq_drops - 1;
    t.irqs_dropped <- t.irqs_dropped + 1;
    false
  end
  else true

let drop_shootdown_ipi t ~target_core:_ ~attempt:_ =
  if t.ipi_drops > 0 then begin
    t.ipi_drops <- t.ipi_drops - 1;
    t.ipis_dropped <- t.ipis_dropped + 1;
    true
  end
  else false

let arm t =
  Hw.Machine.set_fault_hooks t.machine
    (Some
       {
         Hw.Machine.tick = (fun ~core ~cycles -> tick t ~core ~cycles);
         irq_gate = (fun ~core ~irq -> irq_gate t ~core ~irq);
         drop_shootdown_ipi =
           (fun ~target_core ~attempt -> drop_shootdown_ipi t ~target_core ~attempt);
       })

let disarm t = Hw.Machine.set_fault_hooks t.machine None

let schedule t =
  Array.to_list (Array.map (fun e -> (e.at, describe e.action)) t.schedule)

type stats = {
  injected : int;
  pending : int;
  irqs_dropped : int;
  ipis_dropped : int;
  dma_granted : int;
  dma_denied : int;
}

let stats t =
  let dma_granted, dma_denied =
    List.fold_left
      (fun (g, d) (_, granted) -> if granted then (g + 1, d) else (g, d + 1))
      (0, 0) t.dma_results
  in
  {
    injected = t.injected;
    pending = Array.length t.schedule - t.next;
    irqs_dropped = t.irqs_dropped;
    ipis_dropped = t.ipis_dropped;
    dma_granted;
    dma_denied;
  }

let dma_grants t =
  List.filter_map
    (fun (paddr, granted) -> if granted then Some paddr else None)
    t.dma_results
