type fault_class =
  | Bit_flip
  | Double_bit_flip
  | Irq_drop
  | Spurious_irq
  | Ipi_drop
  | Dma_misfire
  | Core_check

type entry = { cls : fault_class; count : int }
type t = entry list

let all_classes =
  [
    Bit_flip; Double_bit_flip; Irq_drop; Spurious_irq; Ipi_drop; Dma_misfire;
    Core_check;
  ]

let class_name = function
  | Bit_flip -> "bitflip"
  | Double_bit_flip -> "bitflip2"
  | Irq_drop -> "irq-drop"
  | Spurious_irq -> "spurious-irq"
  | Ipi_drop -> "ipi-drop"
  | Dma_misfire -> "dma"
  | Core_check -> "mce"

let class_of_name name =
  List.find_opt (fun c -> class_name c = name) all_classes

let parse s =
  let parse_entry chunk =
    let name, count =
      match String.index_opt chunk ':' with
      | None -> (chunk, Ok 1)
      | Some i ->
          let n = String.sub chunk (i + 1) (String.length chunk - i - 1) in
          ( String.sub chunk 0 i,
            match int_of_string_opt n with
            | Some c when c > 0 -> Ok c
            | Some _ | None ->
                Error (Printf.sprintf "bad count %S in %S" n chunk) )
    in
    match count with
    | Error _ as e -> e
    | Ok count -> (
        match name with
        | "all" -> Ok (List.map (fun cls -> { cls; count }) all_classes)
        | _ -> (
            match class_of_name name with
            | Some cls -> Ok [ { cls; count } ]
            | None ->
                Error
                  (Printf.sprintf "unknown fault class %S (expected %s or all)"
                     name
                     (String.concat "|" (List.map class_name all_classes)))))
  in
  let chunks =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun c -> c <> "")
  in
  if chunks = [] then Error "empty fault spec"
  else
    List.fold_left
      (fun acc chunk ->
        match (acc, parse_entry chunk) with
        | (Error _ as e), _ -> e
        | _, (Error _ as e) -> e
        | Ok entries, Ok more -> Ok (entries @ more))
      (Ok []) chunks

let to_string t =
  String.concat ","
    (List.map
       (fun { cls; count } ->
         if count = 1 then class_name cls
         else Printf.sprintf "%s:%d" (class_name cls) count)
       t)

let total t = List.fold_left (fun acc e -> acc + e.count) 0 t

let pp fmt t = Format.pp_print_string fmt (to_string t)
