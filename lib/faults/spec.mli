(** Fault-class vocabulary and the [--faults SPEC] mini-language.

    A spec is a list of [(class, count)] entries; the engine schedules
    [count] independent faults of each class at seeded-random cycles.

    Concrete syntax: comma-separated [name] or [name:count] entries,
    e.g. ["bitflip:3,mce:1"]; the name ["all"] (or ["all:N"]) expands
    to every class. *)

type fault_class =
  | Bit_flip  (** single DRAM bit flip — ECC detects and corrects *)
  | Double_bit_flip
      (** two flipped bits in one word — detected, uncorrectable:
          a machine check on the next architectural access *)
  | Irq_drop  (** the interrupt controller loses one interrupt *)
  | Spurious_irq  (** an interrupt nobody asked for *)
  | Ipi_drop
      (** TLB-shootdown IPIs go missing; the protocol retries, then
          quarantines the unresponsive core *)
  | Dma_misfire  (** a device writes to an address it was never given *)
  | Core_check  (** a core dies with a non-memory machine check *)

type entry = { cls : fault_class; count : int }
type t = entry list

val all_classes : fault_class list

val class_name : fault_class -> string
(** ["bitflip"], ["bitflip2"], ["irq-drop"], ["spurious-irq"],
    ["ipi-drop"], ["dma"], ["mce"]. *)

val class_of_name : string -> fault_class option

val parse : string -> (t, string) result

val to_string : t -> string
(** Canonical spec string; [parse (to_string s)] round-trips. *)

val total : t -> int
(** Total number of faults the spec asks for. *)

val pp : Format.formatter -> t -> unit
