(** splitmix64 (Steele, Lea & Flood 2014): the one deterministic PRNG
    shared by every engine that promises replayability — fault
    schedules ({!Sanctorum_faults}), workload decisions
    ({!Sanctorum_workload}) and fleet placement ({!Sanctorum_fleet}).

    Deliberately {e not} [Stdlib.Random] and {e not} the monitor's
    DRBG: the whole point is that the same seed always produces the
    same stream, independent of anything else the process does, so
    every failure reproduces from the seed printed in the log line.
    The stream is pinned by a known-answer test; changing it silently
    would re-shuffle every recorded schedule. *)

type t

val create : seed:int64 -> t

val of_string : string -> t
(** Fold a seed string into the initial state (FNV-style multiply
    and add, starting from the splitmix64 gamma), so string-keyed
    engines share the integer-keyed stream. *)

val copy : t -> t
(** An independent stream continuing from the same state. *)

val next : t -> int64
(** The next 64-bit output. *)

val int : t -> bound:int -> int
(** Uniform-ish in [[0, bound)]; [bound] must be positive. *)

val pick : t -> 'a list -> 'a
(** A uniform element of a non-empty list. *)
