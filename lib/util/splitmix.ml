type t = { mutable state : int64 }

let create ~seed = { state = seed }

(* The same string fold the workload engine always used, so
   string-seeded streams stay stable across the deduplication. *)
let of_string seed =
  let h = ref 0x9E3779B97F4A7C15L in
  String.iter
    (fun c ->
      h := Int64.add (Int64.mul !h 0x100000001B3L) (Int64.of_int (Char.code c)))
    seed;
  { state = !h }

let copy t = { state = t.state }

let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t ~bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int) (Int64.of_int bound))

let pick t xs =
  match xs with
  | [] -> invalid_arg "Splitmix.pick: empty list"
  | _ -> List.nth xs (int t ~bound:(List.length xs))
