(* The synthetic Chrome-trace thread id for host-context events. *)
let host_tid = 1000

let tid_of core = if core < 0 then host_tid else core

let metadata_events events =
  let tids =
    List.sort_uniq compare (List.map (fun e -> tid_of e.Event.core) events)
  in
  let thread_name tid =
    Json.Obj
      [
        ("name", Json.String "thread_name");
        ("ph", Json.String "M");
        ("pid", Json.Int 0);
        ("tid", Json.Int tid);
        ( "args",
          Json.Obj
            [
              ( "name",
                Json.String
                  (if tid = host_tid then "sm host"
                   else Printf.sprintf "core %d" tid) );
            ] );
      ]
  in
  Json.Obj
    [
      ("name", Json.String "process_name");
      ("ph", Json.String "M");
      ("pid", Json.Int 0);
      ("args", Json.Obj [ ("name", Json.String "sanctorum machine") ]);
    ]
  :: List.map thread_name tids

let args_json payload =
  Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) (Event.args payload))

let chrome_event (e : Event.t) =
  let common =
    [
      ("name", Json.String (Event.label e.payload));
      ("cat", Json.String (Event.category e.payload));
      ("pid", Json.Int 0);
      ("tid", Json.Int (tid_of e.core));
      ("args", args_json e.payload);
    ]
  in
  match Event.phase e.payload with
  | `Begin -> Json.Obj (("ph", Json.String "B") :: ("ts", Json.Int e.cycles) :: common)
  | `End -> Json.Obj (("ph", Json.String "E") :: ("ts", Json.Int e.cycles) :: common)
  | `Complete dur ->
      Json.Obj
        (("ph", Json.String "X")
        :: ("ts", Json.Int (e.cycles - dur))
        :: ("dur", Json.Int dur)
        :: common)
  | `Instant ->
      Json.Obj
        (("ph", Json.String "i")
        :: ("ts", Json.Int e.cycles)
        :: ("s", Json.String "t")
        :: common)

let metric_totals metrics =
  List.map
    (fun (name, item) ->
      match item with
      | Metrics.Counter c -> (name, Json.Int (Metrics.value c))
      | Metrics.Histogram h ->
          let s = Metrics.summary h in
          ( name,
            Json.Obj
              [
                ("count", Json.Int s.Metrics.count);
                ("sum", Json.Int s.Metrics.sum);
                ("min", Json.Int s.Metrics.min);
                ("max", Json.Int s.Metrics.max);
                ("mean", Json.Float s.Metrics.mean);
              ] ))
    (Metrics.to_list metrics)

let chrome_trace ?metrics events =
  let fields =
    [
      ( "traceEvents",
        Json.List (metadata_events events @ List.map chrome_event events) );
      ("displayTimeUnit", Json.String "ms");
    ]
    @
    match metrics with
    | None -> []
    | Some m -> [ ("otherData", Json.Obj (metric_totals m)) ]
  in
  Json.to_string (Json.Obj fields)

let jsonl events =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (e : Event.t) ->
      Json.to_buffer buf
        (Json.Obj
           [
             ("seq", Json.Int e.seq);
             ("core", Json.Int e.core);
             ("cycles", Json.Int e.cycles);
             ("name", Json.String (Event.label e.payload));
             ("args", args_json e.payload);
           ]);
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Human-readable summary *)

let subsystem name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name

let summary ?events ppf metrics =
  let items = Metrics.to_list metrics in
  Format.fprintf ppf "== telemetry summary ==@.";
  let last_sub = ref "" in
  List.iter
    (fun (name, item) ->
      let sub = subsystem name in
      if sub <> !last_sub then begin
        Format.fprintf ppf "[%s]@." sub;
        last_sub := sub
      end;
      match item with
      | Metrics.Counter c ->
          Format.fprintf ppf "  %-44s %12d@." name (Metrics.value c)
      | Metrics.Histogram h ->
          let s = Metrics.summary h in
          Format.fprintf ppf
            "  %-44s n=%d mean=%.1f min=%d max=%d (cycles)@." name
            s.Metrics.count s.Metrics.mean s.Metrics.min s.Metrics.max)
    items;
  (* Derived hit rates for every <base>.hits / <base>.misses pair. *)
  let rates =
    List.filter_map
      (fun (name, item) ->
        match item with
        | Metrics.Counter hits
          when Filename.check_suffix name ".hits" -> begin
            let base = Filename.chop_suffix name ".hits" in
            match Metrics.find metrics (base ^ ".misses") with
            | Some (Metrics.Counter misses) ->
                Some (base, Metrics.value hits, Metrics.value misses)
            | Some (Metrics.Histogram _) | None -> None
          end
        | Metrics.Counter _ | Metrics.Histogram _ -> None)
      items
  in
  if rates <> [] then begin
    Format.fprintf ppf "[hit rates]@.";
    List.iter
      (fun (base, hits, misses) ->
        let total = hits + misses in
        let rate =
          if total = 0 then 0. else 100. *. float_of_int hits /. float_of_int total
        in
        Format.fprintf ppf "  %-44s %11.2f%%  (%d/%d)@." base rate hits total)
      rates
  end;
  match events with
  | None -> ()
  | Some evs ->
      let per_cat = Hashtbl.create 8 in
      List.iter
        (fun (e : Event.t) ->
          let c = Event.category e.payload in
          Hashtbl.replace per_cat c
            (1 + Option.value ~default:0 (Hashtbl.find_opt per_cat c)))
        evs;
      Format.fprintf ppf "[events] %d recorded@." (List.length evs);
      Hashtbl.fold (fun c n acc -> (c, n) :: acc) per_cat []
      |> List.sort compare
      |> List.iter (fun (c, n) -> Format.fprintf ppf "  %-44s %12d@." c n)
