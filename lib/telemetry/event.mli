(** Typed trace events.

    One event records one observable action of the simulated stack: a
    trap entering or leaving the monitor's funnel, an SM API decision,
    an enclave lifecycle step, a resource transfer, a TLB shootdown, a
    mailbox operation, or a DMA transfer. Events are timestamped with
    the simulated cycle counter of the core they happened on ([core]
    is [-1] for host-context actions that run outside any simulated
    core, e.g. API calls issued natively by the OS model). *)

type api_outcome =
  | Accepted
  | Rejected of string  (** rendered {!Sanctorum.Api_error.t} *)

type payload =
  | Trap_enter of { cause : string }
      (** control entered the M-mode trap funnel *)
  | Trap_exit of { cause : string }  (** the trap handler returned *)
  | Sm_api of {
      api : string;
      caller : string;
      outcome : api_outcome;
      latency : int;  (** simulated cycles spent inside the call *)
    }
  | Enclave_created of { eid : int }
  | Enclave_initialized of { eid : int }
      (** [init_enclave] sealed the measurement; the enclave is runnable *)
  | Enclave_entered of { eid : int; tid : int; target_core : int }
  | Enclave_exited of { eid : int; aex : bool }
      (** [aex] is true for an asynchronous exit, false for a
          voluntary [exit_enclave] *)
  | Enclave_destroyed of { eid : int }
  | Region_granted of { kind : string; rid : int; owner : string }
  | Region_freed of { kind : string; rid : int }
  | Domain_switch of { domain : int }
  | Tlb_flush of { reason : string }
  | Mailbox_sent of { sender : string; recipient : int }
  | Mailbox_received of { recipient : int; sender : string }
  | Dma_transfer of { write : bool; paddr : int; len : int; granted : bool }
  | Lock_acquired of { lock : string }
      (** one of the monitor's fine-grained locks (§V-A) was taken;
          [lock] is ["resource"], ["enclave:0x<eid>"] or
          ["thread:0x<tid>"] *)
  | Lock_released of { lock : string }
  | Guarded_write of { lock : string; field : string }
      (** a lock-guarded monitor field was mutated; consumed by the
          lock-discipline analyzer in [Sanctorum_analysis] *)
  | Fault_injected of { fault : string; detail : string }
      (** the fault-injection engine fired a scheduled fault;
          [fault] is the class label (e.g. ["bitflip"], ["mce"]) *)
  | Ecc_corrected of { paddr : int }
      (** the ECC model corrected a single-bit error on an
          architectural access to [paddr] *)
  | Machine_check of { paddr : int }
      (** an uncorrectable (double-bit) error or injected core
          failure raised a machine-check at [paddr] ([-1] when the
          check is not tied to a memory address) *)
  | Core_quarantined of { core : int; reason : string }
      (** the SM (or the shootdown protocol) removed [core] from
          service; [reason] is ["machine-check"] or
          ["shootdown-timeout"] *)
  | Shootdown_retry of { target_core : int; attempt : int }
      (** a TLB-shootdown IPI to [target_core] was not acknowledged
          and is being retried ([attempt] starts at 1) *)

type t = {
  seq : int;  (** global emission order, assigned by the sink *)
  core : int;  (** originating core id, [-1] = host/monitor context *)
  cycles : int;  (** simulated-cycle timestamp *)
  payload : payload;
}

val label : payload -> string
(** Short stable name, e.g. ["trap:ecall"], ["sm:create_enclave"],
    ["enclave:exit"]. The prefix before [':'] is the category. *)

val category : payload -> string

val phase : payload -> [ `Begin | `End | `Complete of int | `Instant ]
(** Chrome-trace phase: trap enter/exit bracket a duration, SM API
    calls are complete events carrying their latency, everything else
    is instant. *)

val args : payload -> (string * string) list
(** Structured key/value detail for exporters. *)

val pp : Format.formatter -> t -> unit
