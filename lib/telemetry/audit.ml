type decision = Accepted | Rejected of string

type entry = {
  seq : int;
  core : int;
  cycles : int;
  api : string;
  caller : string;
  decision : decision;
  latency : int;
}

let of_events events =
  List.filter_map
    (fun (e : Event.t) ->
      match e.payload with
      | Event.Sm_api { api; caller; outcome; latency } ->
          let decision =
            match outcome with
            | Event.Accepted -> Accepted
            | Event.Rejected err -> Rejected err
          in
          Some
            {
              seq = e.seq;
              core = e.core;
              cycles = e.cycles;
              api;
              caller;
              decision;
              latency;
            }
      | _ -> None)
    events

let accepted = List.filter (fun e -> e.decision = Accepted)
let rejected = List.filter (fun e -> e.decision <> Accepted)

let pp_entry ppf e =
  let core = if e.core < 0 then "host" else "c" ^ string_of_int e.core in
  let verdict, detail =
    match e.decision with
    | Accepted -> ("accept", "")
    | Rejected err -> ("REJECT", " — " ^ err)
  in
  Format.fprintf ppf "%8d %6s %-22s %-16s %s%s" e.cycles core e.api e.caller
    verdict detail

let pp ppf entries =
  Format.fprintf ppf "== SM audit log (%d decisions) ==@." (List.length entries);
  Format.fprintf ppf "%8s %6s %-22s %-16s %s@." "cycles" "core" "api" "caller"
    "decision";
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_entry e) entries;
  Format.fprintf ppf "accepted %d, rejected %d@."
    (List.length (accepted entries))
    (List.length (rejected entries))
