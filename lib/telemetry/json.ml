type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.0f" f)
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | String s -> escape_to buf s
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        l;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser: plain recursive descent over a cursor. *)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else begin
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> begin
            if !pos >= n then fail "unterminated escape";
            let e = s.[!pos] in
            advance ();
            (match e with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if !pos + 4 > n then fail "truncated \\u escape";
                let hex = String.sub s !pos 4 in
                pos := !pos + 4;
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail "bad \\u escape"
                in
                Buffer.add_char buf
                  (if code < 0x80 then Char.chr code else '?')
            | _ -> fail "bad escape");
            go ()
          end
        | c when Char.code c < 0x20 -> fail "control character in string"
        | c ->
            Buffer.add_char buf c;
            go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev (kv :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None

let to_list_opt = function List l -> Some l | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None
