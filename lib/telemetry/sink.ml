type t = {
  enabled : bool;
  ring : Event.t Ring.t option;
  metrics : Metrics.t option;
  mutable seq : int;
}

let null = { enabled = false; ring = None; metrics = None; seq = 0 }

let create ?(capacity = 65536) ?metrics () =
  { enabled = true; ring = Some (Ring.create ~capacity); metrics; seq = 0 }

let enabled t = t.enabled
let metrics t = t.metrics

let emit t ~core ~cycles payload =
  match t.ring with
  | None -> ()
  | Some r ->
      let seq = t.seq in
      t.seq <- seq + 1;
      Ring.push r { Event.seq; core; cycles; payload }

let events t = match t.ring with None -> [] | Some r -> Ring.to_list r
let event_count t = t.seq
let dropped t = match t.ring with None -> 0 | Some r -> Ring.dropped r

let clear t =
  (match t.ring with None -> () | Some r -> Ring.clear r);
  t.seq <- 0

let incr_counter t name =
  match t.metrics with
  | None -> ()
  | Some m -> Metrics.incr (Metrics.counter m name)

let observe t name sample =
  match t.metrics with
  | None -> ()
  | Some m -> Metrics.observe (Metrics.histogram m name) sample
