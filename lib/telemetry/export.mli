(** Exporters over a recorded event stream and metrics registry.

    Three formats: a human-readable summary (counters, histograms and
    derived hit rates), JSON lines (one event per line, for ad-hoc
    tooling), and the Chrome [trace_event] format, loadable in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}. Cycle
    timestamps are exported 1 cycle = 1 µs, so the trace UI's time
    axis reads directly in simulated cycles. *)

val chrome_trace : ?metrics:Metrics.t -> Event.t list -> string
(** The JSON-object flavour: [{"traceEvents": [...], ...}]. Cores map
    to threads of one "sanctorum machine" process; host-context events
    ([core = -1]) land on a synthetic "sm host" thread. Trap
    enter/exit pairs become duration slices, SM API calls complete
    events, the rest instants. Metric totals, when given, are attached
    under ["otherData"]. *)

val jsonl : Event.t list -> string
(** One compact JSON object per event per line:
    [{"seq":..,"core":..,"cycles":..,"name":..,"args":{..}}]. *)

val summary :
  ?events:Event.t list -> Format.formatter -> Metrics.t -> unit
(** Counter/histogram table grouped by subsystem, with derived hit
    rates for every [<base>.hits]/[<base>.misses] counter pair; when
    [events] is given, ends with an event-stream digest (count per
    category). *)
