(** A registry of named monotonic counters and histograms.

    Names are dotted paths, ["subsystem.detail"], e.g.
    ["hw.cache.l1.hits"] or ["sm.api.calls.create_enclave"]. The first
    segment is the owning subsystem; exporters group by it. A name is
    registered at most once and with a single kind: re-registering
    returns the existing instrument, registering it as the other kind
    raises [Invalid_argument].

    Instrument handles are plain mutable records, so the hot-path cost
    of [incr] is one store — instrument once at attach time, bump
    directly afterwards. *)

type t

type counter
type histogram

type summary = {
  count : int;
  sum : int;
  min : int;  (** meaningless when [count = 0] *)
  max : int;
  mean : float;
}

type item = Counter of counter | Histogram of histogram

val create : unit -> t

val counter : t -> string -> counter
(** Get-or-create. Raises [Invalid_argument] if [name] is already a
    histogram. *)

val histogram : t -> string -> histogram
(** Get-or-create. Raises [Invalid_argument] if [name] is already a
    counter. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val observe : histogram -> int -> unit
(** Record one sample (negative samples are clamped to 0). *)

val summary : histogram -> summary

val percentile : histogram -> float -> int
(** [percentile h q] for [q] in [0, 1]: an upper bound on the value of
    the [q]-th sample, resolved to the histogram's log-linear buckets
    (exact below 8; at most 25% above the true value elsewhere) and
    clamped to the observed maximum. [0] on an empty histogram. *)

val merge : into:histogram -> histogram -> unit
(** Fold [src]'s samples into [into] — bucket-by-bucket, so percentiles
    of the merged histogram are exactly those of the concatenated
    streams. Used to aggregate per-shard latency histograms into
    fleet-level percentiles. *)

val name : item -> string
val find : t -> string -> item option
val to_list : t -> (string * item) list
(** Sorted by name. *)

val reset : t -> unit
(** Zero every registered instrument (registrations survive). *)
