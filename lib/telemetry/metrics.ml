type counter = { c_name : string; mutable v : int }

(* Log-linear buckets (the HdrHistogram shape): values 0..7 get exact
   buckets; above that, each power-of-two octave is split into 4 linear
   sub-buckets, so a bucket's upper bound is at most 25% above any
   sample it holds. The plain power-of-two scheme this replaces
   collapsed all samples within one octave — p50/p90/p99 of a latency
   stream concentrated around one value were indistinguishable. *)
let bucket_count = 8 + (4 * 60)

type histogram = {
  h_name : string;
  mutable hcount : int;
  mutable hsum : int;
  mutable hmin : int;
  mutable hmax : int;
  buckets : int array;
}

type summary = { count : int; sum : int; min : int; max : int; mean : float }
type item = Counter of counter | Histogram of histogram
type t = { tbl : (string, item) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Counter c) -> c
  | Some (Histogram _) ->
      invalid_arg
        (Printf.sprintf "Metrics.counter: %S is registered as a histogram" name)
  | None ->
      let c = { c_name = name; v = 0 } in
      Hashtbl.replace t.tbl name (Counter c);
      c

let histogram t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Histogram h) -> h
  | Some (Counter _) ->
      invalid_arg
        (Printf.sprintf "Metrics.histogram: %S is registered as a counter" name)
  | None ->
      let h =
        {
          h_name = name;
          hcount = 0;
          hsum = 0;
          hmin = max_int;
          hmax = min_int;
          buckets = Array.make bucket_count 0;
        }
      in
      Hashtbl.replace t.tbl name (Histogram h);
      h

let incr c = c.v <- c.v + 1
let add c n = c.v <- c.v + n
let value c = c.v

let bucket_of v =
  if v < 8 then v
  else begin
    let rec msb_of i x = if x <= 1 then i else msb_of (i + 1) (x lsr 1) in
    let msb = msb_of 0 v in
    let sub = (v lsr (msb - 2)) land 3 in
    min (bucket_count - 1) (8 + ((msb - 3) * 4) + sub)
  end

(* Inclusive upper bound of bucket [b] — what [percentile] reports. *)
let bucket_upper b =
  if b < 8 then b
  else begin
    let msb = 3 + ((b - 8) / 4) in
    let sub = (b - 8) mod 4 in
    if msb >= 60 then max_int else ((5 + sub) lsl (msb - 2)) - 1
  end

let observe h sample =
  let sample = max 0 sample in
  h.hcount <- h.hcount + 1;
  h.hsum <- h.hsum + sample;
  if sample < h.hmin then h.hmin <- sample;
  if sample > h.hmax then h.hmax <- sample;
  let b = bucket_of sample in
  h.buckets.(b) <- h.buckets.(b) + 1

(* Percentiles resolve to the log-linear buckets: walk to the bucket
   holding the q-th sample and report its upper bound, clamped to the
   observed maximum. An upper bound within 25%, monotone and cheap —
   good enough for latency reporting. *)
let percentile h q =
  if h.hcount = 0 then 0
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank = max 1 (int_of_float (ceil (q *. float_of_int h.hcount))) in
    let rec go b seen =
      if b >= bucket_count then h.hmax
      else begin
        let seen = seen + h.buckets.(b) in
        if seen >= rank then min h.hmax (bucket_upper b) else go (b + 1) seen
      end
    in
    go 0 0
  end

let merge ~into src =
  into.hcount <- into.hcount + src.hcount;
  into.hsum <- into.hsum + src.hsum;
  if src.hmin < into.hmin then into.hmin <- src.hmin;
  if src.hmax > into.hmax then into.hmax <- src.hmax;
  Array.iteri (fun b n -> into.buckets.(b) <- into.buckets.(b) + n) src.buckets

let summary h =
  {
    count = h.hcount;
    sum = h.hsum;
    min = (if h.hcount = 0 then 0 else h.hmin);
    max = (if h.hcount = 0 then 0 else h.hmax);
    mean =
      (if h.hcount = 0 then 0.
       else float_of_int h.hsum /. float_of_int h.hcount);
  }

let name = function Counter c -> c.c_name | Histogram h -> h.h_name
let find t n = Hashtbl.find_opt t.tbl n

let to_list t =
  Hashtbl.fold (fun n i acc -> (n, i) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset t =
  Hashtbl.iter
    (fun _ -> function
      | Counter c -> c.v <- 0
      | Histogram h ->
          h.hcount <- 0;
          h.hsum <- 0;
          h.hmin <- max_int;
          h.hmax <- min_int;
          Array.fill h.buckets 0 bucket_count 0)
    t.tbl
