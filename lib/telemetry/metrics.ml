type counter = { c_name : string; mutable v : int }

(* Power-of-two buckets: bucket i counts samples in [2^i, 2^(i+1)),
   bucket 0 also absorbs 0. Enough resolution for cycle latencies. *)
let bucket_count = 62

type histogram = {
  h_name : string;
  mutable hcount : int;
  mutable hsum : int;
  mutable hmin : int;
  mutable hmax : int;
  buckets : int array;
}

type summary = { count : int; sum : int; min : int; max : int; mean : float }
type item = Counter of counter | Histogram of histogram
type t = { tbl : (string, item) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Counter c) -> c
  | Some (Histogram _) ->
      invalid_arg
        (Printf.sprintf "Metrics.counter: %S is registered as a histogram" name)
  | None ->
      let c = { c_name = name; v = 0 } in
      Hashtbl.replace t.tbl name (Counter c);
      c

let histogram t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Histogram h) -> h
  | Some (Counter _) ->
      invalid_arg
        (Printf.sprintf "Metrics.histogram: %S is registered as a counter" name)
  | None ->
      let h =
        {
          h_name = name;
          hcount = 0;
          hsum = 0;
          hmin = max_int;
          hmax = min_int;
          buckets = Array.make bucket_count 0;
        }
      in
      Hashtbl.replace t.tbl name (Histogram h);
      h

let incr c = c.v <- c.v + 1
let add c n = c.v <- c.v + n
let value c = c.v

let bucket_of v =
  let rec go i x = if x <= 1 then i else go (i + 1) (x lsr 1) in
  min (bucket_count - 1) (go 0 v)

let observe h sample =
  let sample = max 0 sample in
  h.hcount <- h.hcount + 1;
  h.hsum <- h.hsum + sample;
  if sample < h.hmin then h.hmin <- sample;
  if sample > h.hmax then h.hmax <- sample;
  let b = bucket_of sample in
  h.buckets.(b) <- h.buckets.(b) + 1

(* Percentiles resolve to the power-of-two buckets: walk to the bucket
   holding the q-th sample and report its upper bound, clamped to the
   observed maximum. Coarse, but monotone and cheap — good enough for
   latency reporting. *)
let percentile h q =
  if h.hcount = 0 then 0
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank = max 1 (int_of_float (ceil (q *. float_of_int h.hcount))) in
    let rec go b seen =
      if b >= bucket_count then h.hmax
      else begin
        let seen = seen + h.buckets.(b) in
        if seen >= rank then min h.hmax ((1 lsl (b + 1)) - 1) else go (b + 1) seen
      end
    in
    go 0 0
  end

let summary h =
  {
    count = h.hcount;
    sum = h.hsum;
    min = (if h.hcount = 0 then 0 else h.hmin);
    max = (if h.hcount = 0 then 0 else h.hmax);
    mean =
      (if h.hcount = 0 then 0.
       else float_of_int h.hsum /. float_of_int h.hcount);
  }

let name = function Counter c -> c.c_name | Histogram h -> h.h_name
let find t n = Hashtbl.find_opt t.tbl n

let to_list t =
  Hashtbl.fold (fun n i acc -> (n, i) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset t =
  Hashtbl.iter
    (fun _ -> function
      | Counter c -> c.v <- 0
      | Histogram h ->
          h.hcount <- 0;
          h.hsum <- 0;
          h.hmin <- max_int;
          h.hmax <- min_int;
          Array.fill h.buckets 0 bucket_count 0)
    t.tbl
