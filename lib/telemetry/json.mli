(** A minimal JSON tree, printer and parser — just enough for the
    trace exporters and for tests to round-trip their output. No
    external dependency; strings are assumed UTF-8 and escaped
    conservatively. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val to_buffer : Buffer.t -> t -> unit

val parse : string -> (t, string) result
(** Strict parse of one JSON value (surrounding whitespace allowed).
    [\u] escapes below 0x80 are decoded; higher code points are
    replaced with ['?'] — fine for structural validation. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] elsewhere. *)

val to_list_opt : t -> t list option
val to_string_opt : t -> string option
val to_int_opt : t -> int option
