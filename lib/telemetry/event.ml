type api_outcome = Accepted | Rejected of string

type payload =
  | Trap_enter of { cause : string }
  | Trap_exit of { cause : string }
  | Sm_api of {
      api : string;
      caller : string;
      outcome : api_outcome;
      latency : int;
    }
  | Enclave_created of { eid : int }
  | Enclave_initialized of { eid : int }
  | Enclave_entered of { eid : int; tid : int; target_core : int }
  | Enclave_exited of { eid : int; aex : bool }
  | Enclave_destroyed of { eid : int }
  | Region_granted of { kind : string; rid : int; owner : string }
  | Region_freed of { kind : string; rid : int }
  | Domain_switch of { domain : int }
  | Tlb_flush of { reason : string }
  | Mailbox_sent of { sender : string; recipient : int }
  | Mailbox_received of { recipient : int; sender : string }
  | Dma_transfer of { write : bool; paddr : int; len : int; granted : bool }
  | Lock_acquired of { lock : string }
  | Lock_released of { lock : string }
  | Guarded_write of { lock : string; field : string }
  | Fault_injected of { fault : string; detail : string }
  | Ecc_corrected of { paddr : int }
  | Machine_check of { paddr : int }
  | Core_quarantined of { core : int; reason : string }
  | Shootdown_retry of { target_core : int; attempt : int }

type t = { seq : int; core : int; cycles : int; payload : payload }

let label = function
  | Trap_enter { cause } | Trap_exit { cause } -> "trap:" ^ cause
  | Sm_api { api; _ } -> "sm:" ^ api
  | Enclave_created _ -> "enclave:create"
  | Enclave_initialized _ -> "enclave:init"
  | Enclave_entered _ -> "enclave:enter"
  | Enclave_exited { aex = true; _ } -> "enclave:aex"
  | Enclave_exited { aex = false; _ } -> "enclave:exit"
  | Enclave_destroyed _ -> "enclave:destroy"
  | Region_granted _ -> "region:grant"
  | Region_freed _ -> "region:free"
  | Domain_switch _ -> "hw:domain-switch"
  | Tlb_flush _ -> "hw:tlb-flush"
  | Mailbox_sent _ -> "mailbox:send"
  | Mailbox_received _ -> "mailbox:receive"
  | Dma_transfer { write = true; _ } -> "hw:dma-write"
  | Dma_transfer { write = false; _ } -> "hw:dma-read"
  | Lock_acquired _ -> "lock:acquire"
  | Lock_released _ -> "lock:release"
  | Guarded_write _ -> "lock:write"
  | Fault_injected _ -> "fault:inject"
  | Ecc_corrected _ -> "fault:ecc-corrected"
  | Machine_check _ -> "fault:machine-check"
  | Core_quarantined _ -> "recovery:quarantine"
  | Shootdown_retry _ -> "recovery:shootdown-retry"

let category p =
  let l = label p in
  match String.index_opt l ':' with
  | Some i -> String.sub l 0 i
  | None -> l

let phase = function
  | Trap_enter _ -> `Begin
  | Trap_exit _ -> `End
  | Sm_api { latency; _ } -> `Complete latency
  | Enclave_created _ | Enclave_initialized _ | Enclave_entered _
  | Enclave_exited _ | Enclave_destroyed _ | Region_granted _ | Region_freed _
  | Domain_switch _ | Tlb_flush _ | Mailbox_sent _ | Mailbox_received _
  | Dma_transfer _ | Lock_acquired _ | Lock_released _ | Guarded_write _
  | Fault_injected _ | Ecc_corrected _ | Machine_check _ | Core_quarantined _
  | Shootdown_retry _ ->
      `Instant

let args = function
  | Trap_enter { cause } | Trap_exit { cause } -> [ ("cause", cause) ]
  | Sm_api { api; caller; outcome; latency } ->
      [
        ("api", api);
        ("caller", caller);
        ( "outcome",
          match outcome with Accepted -> "accepted" | Rejected _ -> "rejected"
        );
        ("latency", string_of_int latency);
      ]
      @ (match outcome with Accepted -> [] | Rejected e -> [ ("error", e) ])
  | Enclave_created { eid } | Enclave_initialized { eid } ->
      [ ("eid", Printf.sprintf "0x%x" eid) ]
  | Enclave_entered { eid; tid; target_core } ->
      [
        ("eid", Printf.sprintf "0x%x" eid);
        ("tid", Printf.sprintf "0x%x" tid);
        ("core", string_of_int target_core);
      ]
  | Enclave_exited { eid; aex } ->
      [ ("eid", Printf.sprintf "0x%x" eid); ("aex", string_of_bool aex) ]
  | Enclave_destroyed { eid } -> [ ("eid", Printf.sprintf "0x%x" eid) ]
  | Region_granted { kind; rid; owner } ->
      [ ("kind", kind); ("rid", string_of_int rid); ("owner", owner) ]
  | Region_freed { kind; rid } ->
      [ ("kind", kind); ("rid", string_of_int rid) ]
  | Domain_switch { domain } -> [ ("domain", string_of_int domain) ]
  | Tlb_flush { reason } -> [ ("reason", reason) ]
  | Mailbox_sent { sender; recipient } ->
      [ ("sender", sender); ("recipient", Printf.sprintf "0x%x" recipient) ]
  | Mailbox_received { recipient; sender } ->
      [ ("recipient", Printf.sprintf "0x%x" recipient); ("sender", sender) ]
  | Dma_transfer { write; paddr; len; granted } ->
      [
        ("dir", if write then "write" else "read");
        ("paddr", Printf.sprintf "0x%x" paddr);
        ("len", string_of_int len);
        ("granted", string_of_bool granted);
      ]
  | Lock_acquired { lock } | Lock_released { lock } -> [ ("lock", lock) ]
  | Guarded_write { lock; field } -> [ ("lock", lock); ("field", field) ]
  | Fault_injected { fault; detail } ->
      [ ("fault", fault); ("detail", detail) ]
  | Ecc_corrected { paddr } -> [ ("paddr", Printf.sprintf "0x%x" paddr) ]
  | Machine_check { paddr } -> [ ("paddr", Printf.sprintf "0x%x" paddr) ]
  | Core_quarantined { core; reason } ->
      [ ("core", string_of_int core); ("reason", reason) ]
  | Shootdown_retry { target_core; attempt } ->
      [
        ("target_core", string_of_int target_core);
        ("attempt", string_of_int attempt);
      ]

let pp ppf t =
  let core = if t.core < 0 then "host" else "c" ^ string_of_int t.core in
  Format.fprintf ppf "#%d [%s @%d] %s" t.seq core t.cycles (label t.payload);
  List.iter
    (fun (k, v) -> Format.fprintf ppf " %s=%s" k v)
    (args t.payload)
