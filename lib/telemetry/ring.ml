type 'a t = {
  buf : 'a option array;
  capacity : int;
  mutable pushed : int; (* total ever pushed; write cursor = pushed mod capacity *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { buf = Array.make capacity None; capacity; pushed = 0 }

let capacity t = t.capacity

let push t x =
  t.buf.(t.pushed mod t.capacity) <- Some x;
  t.pushed <- t.pushed + 1

let length t = min t.pushed t.capacity
let pushed t = t.pushed
let dropped t = t.pushed - length t

let iter f t =
  let n = length t in
  let first = t.pushed - n in
  for i = first to t.pushed - 1 do
    match t.buf.(i mod t.capacity) with Some x -> f x | None -> ()
  done

let to_list t =
  let acc = ref [] in
  iter (fun x -> acc := x :: !acc) t;
  List.rev !acc

let clear t =
  Array.fill t.buf 0 t.capacity None;
  t.pushed <- 0
