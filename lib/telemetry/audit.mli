(** The SM audit log: the security-review view of the event stream.

    Dorami-style auditing asks {e which} monitor entry points fired,
    on whose behalf, and with what decision. This module projects the
    raw trace down to exactly that: one entry per SM API call,
    accepted or rejected with the API error that justified the
    rejection. *)

type decision = Accepted | Rejected of string

type entry = {
  seq : int;
  core : int;  (** [-1] = host context *)
  cycles : int;
  api : string;
  caller : string;
  decision : decision;
  latency : int;  (** simulated cycles inside the monitor *)
}

val of_events : Event.t list -> entry list
(** Project the SM API decisions out of a trace, oldest first. *)

val accepted : entry list -> entry list
val rejected : entry list -> entry list

val pp_entry : Format.formatter -> entry -> unit

val pp : Format.formatter -> entry list -> unit
(** A table, one line per decision, plus an accept/reject tally. *)
