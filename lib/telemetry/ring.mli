(** A fixed-capacity ring buffer that overwrites its oldest element on
    overflow — the standard trace-buffer discipline: a long run keeps
    the most recent window of events and counts what it dropped. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] if [capacity <= 0]. *)

val capacity : 'a t -> int

val push : 'a t -> 'a -> unit
(** O(1); overwrites the oldest element when full. *)

val length : 'a t -> int
(** Elements currently held, [<= capacity]. *)

val pushed : 'a t -> int
(** Total elements ever pushed. *)

val dropped : 'a t -> int
(** Elements overwritten so far: [pushed - length]. *)

val to_list : 'a t -> 'a list
(** Oldest first. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest first. *)

val clear : 'a t -> unit
(** Empties the buffer and resets the pushed/dropped accounting. *)
