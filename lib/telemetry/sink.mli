(** The instrumentation interface the simulator hot paths program
    against.

    A sink is either {!null} — tracing off, and every instrumentation
    site reduces to one boolean test — or a recording sink created by
    {!create}, which appends events to a ring buffer and optionally
    carries a {!Metrics.t} registry for counters.

    The contract for instrumented code:

    {[
      if Sink.enabled sink then
        Sink.emit sink ~core ~cycles (Event.Trap_enter { cause })
    ]}

    i.e. guard event {e construction} (an allocation) behind
    {!enabled} so the disabled path stays near-zero-cost. Counter
    handles should be resolved once when the sink is attached, not per
    bump. *)

type t

val null : t
(** Tracing off. [emit] is a no-op, [metrics] is [None]. *)

val create : ?capacity:int -> ?metrics:Metrics.t -> unit -> t
(** A recording sink. [capacity] (default 65536) bounds the event ring;
    the oldest events are overwritten on overflow and counted as
    dropped. *)

val enabled : t -> bool

val metrics : t -> Metrics.t option

val emit : t -> core:int -> cycles:int -> Event.payload -> unit
(** Stamp the payload with a global sequence number and append it.
    [core] is [-1] for host-context (non-core) actions. No-op on a
    null sink. *)

val events : t -> Event.t list
(** Recorded events, oldest first (the surviving window if the ring
    wrapped). *)

val event_count : t -> int
(** Total events ever emitted (including dropped ones). *)

val dropped : t -> int

val clear : t -> unit

val incr_counter : t -> string -> unit
(** Convenience for cold paths: bump a registry counter by name; no-op
    without a metrics registry. Hot paths should hold
    {!Metrics.counter} handles instead. *)

val observe : t -> string -> int -> unit
(** Convenience for cold paths: record a histogram sample by name. *)
