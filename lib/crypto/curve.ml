(* Extended twisted Edwards coordinates (X : Y : Z : T) with
   x = X/Z, y = Y/Z, T = XY/Z. The a = -1 formulas below are complete:
   they are correct for every pair of inputs, including doublings and
   the identity, so no special cases leak timing. *)

(* [enc] memoizes the 64-byte affine encoding: computing it costs a
   field inversion, and the signature paths encode the same long-lived
   points (a public key, a decoded commitment) over and over. The cache
   is write-once with a deterministic value, so a racing fleet domain
   can only ever store the same bytes. *)
type point = {
  x : Field.t;
  y : Field.t;
  z : Field.t;
  t : Field.t;
  mutable enc : string option;
}

let order =
  Bignum.add
    (Bignum.shift_left Bignum.one 252)
    (Bignum.of_decimal "27742317777372353535851937790883648493")

let cofactor = 8

let d =
  (* -121665/121666 mod p *)
  Field.mul
    (Field.neg (Field.of_int 121665))
    (Field.inv (Field.of_int 121666))

let two_d = Field.add d d
let identity =
  { x = Field.zero; y = Field.one; z = Field.one; t = Field.zero; enc = None }

let is_on_curve_affine (x, y) =
  (* -x^2 + y^2 = 1 + d x^2 y^2 *)
  let x2 = Field.square x and y2 = Field.square y in
  Field.equal
    (Field.sub y2 x2)
    (Field.add Field.one (Field.mul d (Field.mul x2 y2)))

let to_affine p =
  let zi = Field.inv p.z in
  (Field.mul p.x zi, Field.mul p.y zi)

let of_affine (x, y) =
  if not (is_on_curve_affine (x, y)) then
    invalid_arg "Curve.of_affine: point not on curve";
  { x; y; z = Field.one; t = Field.mul x y; enc = None }

let is_on_curve p = is_on_curve_affine (to_affine p)

let add p q =
  let a = Field.mul (Field.sub p.y p.x) (Field.sub q.y q.x) in
  let b = Field.mul (Field.add p.y p.x) (Field.add q.y q.x) in
  let c = Field.mul (Field.mul p.t two_d) q.t in
  let dd = Field.mul (Field.add p.z p.z) q.z in
  let e = Field.sub b a in
  let f = Field.sub dd c in
  let g = Field.add dd c in
  let h = Field.add b a in
  {
    x = Field.mul e f;
    y = Field.mul g h;
    t = Field.mul e h;
    z = Field.mul f g;
    enc = None;
  }

let double p =
  let a = Field.square p.x in
  let b = Field.square p.y in
  let c = Field.add (Field.square p.z) (Field.square p.z) in
  let h = Field.add a b in
  let e = Field.sub h (Field.square (Field.add p.x p.y)) in
  let g = Field.sub a b in
  let f = Field.add c g in
  {
    x = Field.mul e f;
    y = Field.mul g h;
    t = Field.mul e h;
    z = Field.mul f g;
    enc = None;
  }

let negate p = { p with x = Field.neg p.x; t = Field.neg p.t; enc = None }

let scalar_mul k p =
  let acc = ref identity in
  for i = Bignum.bit_length k - 1 downto 0 do
    acc := double !acc;
    if Bignum.test_bit k i then acc := add !acc p
  done;
  !acc

let equal p q =
  (* x1/z1 = x2/z2 and y1/z1 = y2/z2, cross-multiplied. *)
  Field.equal (Field.mul p.x q.z) (Field.mul q.x p.z)
  && Field.equal (Field.mul p.y q.z) (Field.mul q.y p.z)

let base =
  let y = Field.mul (Field.of_int 4) (Field.inv (Field.of_int 5)) in
  let y2 = Field.square y in
  let x2 =
    Field.mul
      (Field.sub y2 Field.one)
      (Field.inv (Field.add (Field.mul d y2) Field.one))
  in
  match Field.sqrt x2 with
  | None -> assert false
  | Some x ->
      let x = if Field.is_odd x then Field.neg x else x in
      of_affine (x, y)

(* ------------------------------------------------------------------ *)
(* The pre-optimization arithmetic, kept whole as the differential
   oracle and the bench baseline: the same extended-coordinate formulas
   over schoolbook modular arithmetic, where every field product pays a
   Knuth division ([Bignum.mod_mul]) — exactly the tier the Montgomery
   field replaced. Conversions to and from the fast representation
   happen only at the boundary, so agreement here checks the whole
   field + curve stack value for value. *)

module Schoolbook = struct
  let m = Field.p
  let mm a b = Bignum.mod_mul a b ~m
  let ma a b = Bignum.mod_add a b ~m
  let ms a b = Bignum.mod_sub a b ~m

  type spt = { sx : Bignum.t; sy : Bignum.t; sz : Bignum.t; st : Bignum.t }

  let two_d = Field.to_bignum (Field.add d d)
  let sidentity = { sx = Bignum.zero; sy = Bignum.one; sz = Bignum.one; st = Bignum.zero }

  let sadd p q =
    let a = mm (ms p.sy p.sx) (ms q.sy q.sx) in
    let b = mm (ma p.sy p.sx) (ma q.sy q.sx) in
    let c = mm (mm p.st two_d) q.st in
    let dd = mm (ma p.sz p.sz) q.sz in
    let e = ms b a in
    let f = ms dd c in
    let g = ma dd c in
    let h = ma b a in
    { sx = mm e f; sy = mm g h; st = mm e h; sz = mm f g }

  let sdouble p =
    let a = mm p.sx p.sx in
    let b = mm p.sy p.sy in
    let zz = mm p.sz p.sz in
    let c = ma zz zz in
    let h = ma a b in
    let xy = ma p.sx p.sy in
    let e = ms h (mm xy xy) in
    let g = ms a b in
    let f = ma c g in
    { sx = mm e f; sy = mm g h; st = mm e h; sz = mm f g }
end

let scalar_mul_schoolbook k p =
  let open Schoolbook in
  let xa, ya = to_affine p in
  let x = Field.to_bignum xa and y = Field.to_bignum ya in
  let pt = { sx = x; sy = y; sz = Bignum.one; st = mm x y } in
  let acc = ref sidentity in
  for i = Bignum.bit_length k - 1 downto 0 do
    acc := sdouble !acc;
    if Bignum.test_bit k i then acc := sadd !acc pt
  done;
  let r = !acc in
  let zi = Bignum.mod_inv r.sz ~m in
  of_affine
    (Field.of_bignum (mm r.sx zi), Field.of_bignum (mm r.sy zi))

(* ------------------------------------------------------------------ *)
(* Fixed-base windows. A table for P holds, per 4-bit window i of the
   scalar, the multiples j·16^i·P for j in 0..15; a scalar multiply is
   then at most 64 complete additions and no doublings. [scalar_mul]
   above is deliberately kept as the straightforward double-and-add —
   the differential oracle the table path is tested against. *)

let window_bits = 4
let table_bits = 256 (* scalar width every table covers *)

type table = { tp : point; wbits : int; rows : point array array }

(* Per-key tables default to 4-bit windows (64 × 16 points, cheap to
   build on the second use of a key); the generator's table below uses
   8-bit windows (32 × 256 points, ~8k additions) because it is built
   exactly once and every signature and verification walks it. *)
let make_table ?(bits = window_bits) p =
  if bits <> 4 && bits <> 8 then invalid_arg "Curve.make_table: bits";
  let windows = table_bits / bits in
  let size = 1 lsl bits in
  let rows = Array.init windows (fun _ -> Array.make size identity) in
  let cur = ref p in
  for i = 0 to windows - 1 do
    let row = rows.(i) in
    for j = 1 to size - 1 do
      row.(j) <- add row.(j - 1) !cur
    done;
    for _ = 1 to bits do
      cur := double !cur
    done
  done;
  { tp = p; wbits = bits; rows }

let table_point t = t.tp

let table_mul t k =
  if Bignum.bit_length k > table_bits then scalar_mul k t.tp
  else begin
    let kb = Bignum.to_bytes_le ~len:32 k in
    let acc = ref identity in
    if t.wbits = 8 then
      for i = 0 to 31 do
        let d = Char.code (String.unsafe_get kb i) in
        if d <> 0 then acc := add !acc t.rows.(i).(d)
      done
    else
      for i = 0 to 63 do
        let byte = Char.code (String.unsafe_get kb (i lsr 1)) in
        let d = if i land 1 = 0 then byte land 0xf else byte lsr 4 in
        if d <> 0 then acc := add !acc t.rows.(i).(d)
      done;
    !acc
  end

(* Eager, not lazy: fleet domains would race a [lazy] force. *)
let base_table = make_table ~bits:8 base
let scalar_mul_base k = table_mul base_table k

(* Strauss trick with 4-bit windows: one shared doubling chain for all
   terms, plus a 16-entry multiple table per term so each window costs
   at most one addition. With the short (128-bit) coefficients batch
   verification uses, the per-term work is about a third of a full
   scalar multiply and the doublings amortize across the whole batch. *)
let multi_scalar_mul terms =
  let bits =
    List.fold_left (fun m (k, _) -> max m (Bignum.bit_length k)) 0 terms
  in
  let windows = (bits + window_bits - 1) / window_bits in
  let tables =
    List.map
      (fun (k, p) ->
        let tbl = Array.make 16 identity in
        for j = 1 to 15 do
          tbl.(j) <- add tbl.(j - 1) p
        done;
        (k, tbl))
      terms
  in
  let acc = ref identity in
  for w = windows - 1 downto 0 do
    for _ = 1 to window_bits do
      acc := double !acc
    done;
    let lo = w * window_bits in
    List.iter
      (fun (k, tbl) ->
        let bit i = if Bignum.test_bit k (lo + i) then 1 lsl i else 0 in
        let d = bit 0 lor bit 1 lor bit 2 lor bit 3 in
        if d <> 0 then acc := add !acc tbl.(d))
      tables
  done;
  !acc

let encoded_size = 64

let encode p =
  match p.enc with
  | Some s -> s
  | None ->
      let x, y = to_affine p in
      let s = Field.to_bytes_le x ^ Field.to_bytes_le y in
      p.enc <- Some s;
      s

let decode s =
  if String.length s <> encoded_size then Error "Curve.decode: bad length"
  else begin
    let x = Field.of_bytes_le (String.sub s 0 32) in
    let y = Field.of_bytes_le (String.sub s 32 32) in
    if is_on_curve_affine (x, y) then begin
      let p = of_affine (x, y) in
      p.enc <- Some s;
      Ok p
    end
    else Error "Curve.decode: point not on curve"
  end

let pp ppf p =
  let x, y = to_affine p in
  Format.fprintf ppf "(%a, %a)" Field.pp x Field.pp y
