type t = {
  subject : string;
  subject_key : Schnorr.public_key;
  bound_measurement : string option;
  issuer : string;
  signature : string;
}

(* Length-prefixed field encoding; deterministic, so it can double as
   the to-be-signed representation. *)
let field s =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int (String.length s));
  Bytes.unsafe_to_string b ^ s

let read_field s off =
  if off + 4 > String.length s then Error "Cert: truncated length"
  else begin
    let len = Int32.to_int (String.get_int32_le s off) in
    if len < 0 || off + 4 + len > String.length s then Error "Cert: truncated field"
    else Ok (String.sub s (off + 4) len, off + 4 + len)
  end

let to_be_signed t =
  field t.subject
  ^ field (Schnorr.public_key_to_bytes t.subject_key)
  ^ field (match t.bound_measurement with None -> "" | Some m -> m)
  ^ field t.issuer

let issue ~issuer ~issuer_key ~subject ~subject_key ?bound_measurement () =
  let unsigned =
    { subject; subject_key; bound_measurement; issuer; signature = "" }
  in
  { unsigned with signature = Schnorr.sign issuer_key (to_be_signed unsigned) }

let verify_signature t ~issuer_key =
  Schnorr.verify issuer_key ~msg:(to_be_signed t) ~signature:t.signature

let verify_chain ~root certs =
  let rec go key = function
    | [] -> Ok key
    | c :: rest ->
        if verify_signature c ~issuer_key:key then go c.subject_key rest
        else Error (Printf.sprintf "Cert: bad signature on %S" c.subject)
  in
  match certs with [] -> Error "Cert: empty chain" | _ -> go root certs

let signature_claims ~root certs =
  let rec go key acc = function
    | [] -> Ok (List.rev acc, key)
    | c :: rest ->
        go c.subject_key ((key, to_be_signed c, c.signature) :: acc) rest
  in
  match certs with [] -> Error "Cert: empty chain" | _ -> go root [] certs

let serialize t = to_be_signed t ^ field t.signature

let deserialize s =
  let ( let* ) = Result.bind in
  let* subject, off = read_field s 0 in
  let* key_bytes, off = read_field s off in
  let* meas, off = read_field s off in
  let* issuer, off = read_field s off in
  let* signature, off = read_field s off in
  if off <> String.length s then Error "Cert: trailing bytes"
  else begin
    let* subject_key = Schnorr.public_key_of_bytes key_bytes in
    Ok
      {
        subject;
        subject_key;
        bound_measurement = (if meas = "" then None else Some meas);
        issuer;
        signature;
      }
  end

let pp ppf t =
  Format.fprintf ppf "cert{%s <- %s, key=%a%s}" t.subject t.issuer
    Schnorr.pp_public_key t.subject_key
    (match t.bound_measurement with
    | None -> ""
    | Some m -> ", meas=" ^ Sanctorum_util.Hex.encode (String.sub m 0 4))
