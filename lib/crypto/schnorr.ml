(* A public key carries a use counter and, once it has proven to be
   long-lived (second verification), a fixed-base window table — so
   repeated verifications against the same key (the signing enclave's
   key, a manufacturer root) cost 64 additions instead of a full
   double-and-add. The secret key caches its public half so [sign]
   never recomputes it. None of this changes a single byte of any
   signature or verdict; [verify_reference] below is the pre-table
   implementation kept as the differential oracle. *)

type public_key = {
  pt : Curve.point;
  mutable uses : int;
  mutable tbl : Curve.table option;
}

type secret_key = { scalar : Bignum.t; seed : string; pk : public_key }

let pk_of_point pt = { pt; uses = 0; tbl = None }
let scalar_of_hash data = Bignum.rem (Bignum.of_bytes_be data) Curve.order

let nonzero_scalar_of_hash data =
  let s = scalar_of_hash data in
  if Bignum.is_zero s then Bignum.one else s

let secret_key_of_seed seed =
  let scalar =
    nonzero_scalar_of_hash (Sha3.sha3_512 ("sanctorum-schnorr-key" ^ seed))
  in
  { scalar; seed; pk = pk_of_point (Curve.scalar_mul_base scalar) }

let public_key sk = sk.pk
let public_key_to_bytes pk = Curve.encode pk.pt
let public_key_of_bytes s = Result.map pk_of_point (Curve.decode s)
let signature_size = Curve.encoded_size + 32

(* Build the window table on the second use: one-shot verifications
   never pay the table construction, steady-state ones always hit it. *)
let table_threshold = 2

let pk_mul pk c =
  match pk.tbl with
  | Some t -> Curve.table_mul t c
  | None ->
      pk.uses <- pk.uses + 1;
      if pk.uses >= table_threshold then begin
        let t = Curve.make_table pk.pt in
        pk.tbl <- Some t;
        Curve.table_mul t c
      end
      else Curve.scalar_mul c pk.pt

let challenge ~commitment ~pk ~msg =
  scalar_of_hash
    (Sha3.sha3_512
       ("sanctorum-schnorr-chal" ^ Curve.encode commitment
      ^ Curve.encode pk.pt ^ msg))

let sign sk msg =
  let r =
    nonzero_scalar_of_hash
      (Sha3.sha3_512 ("sanctorum-schnorr-nonce" ^ sk.seed ^ msg))
  in
  let commitment = Curve.scalar_mul_base r in
  let c = challenge ~commitment ~pk:sk.pk ~msg in
  let s =
    Bignum.mod_add r (Bignum.mod_mul c sk.scalar ~m:Curve.order) ~m:Curve.order
  in
  Curve.encode commitment ^ Bignum.to_bytes_be ~len:32 s

let parse_signature signature =
  if String.length signature <> signature_size then None
  else begin
    match Curve.decode (String.sub signature 0 Curve.encoded_size) with
    | Error _ -> None
    | Ok commitment ->
        let s =
          Bignum.of_bytes_be (String.sub signature Curve.encoded_size 32)
        in
        if Bignum.compare s Curve.order >= 0 then None
        else Some (commitment, s)
  end

let verify pk ~msg ~signature =
  match parse_signature signature with
  | None -> false
  | Some (commitment, s) ->
      let c = challenge ~commitment ~pk ~msg in
      (* s·B = R + c·A *)
      Curve.equal (Curve.scalar_mul_base s) (Curve.add commitment (pk_mul pk c))

(* The pre-optimization verifier, verbatim: double-and-add over the
   schoolbook division-per-product field, no tables, no cached state —
   the tier every evidence verification went through before the
   throughput work. Differential tests demand verdict-for-verdict
   agreement with [verify]; the bench reports the speedup. *)
let verify_reference pk ~msg ~signature =
  match parse_signature signature with
  | None -> false
  | Some (commitment, s) ->
      let c = challenge ~commitment ~pk ~msg in
      Curve.equal
        (Curve.scalar_mul_schoolbook s Curve.base)
        (Curve.add commitment (Curve.scalar_mul_schoolbook c pk.pt))

(* ------------------------------------------------------------------ *)
(* Batch verification: check Σ zᵢsᵢ·B = Σ zᵢ·Rᵢ + Σ (zᵢcᵢ)·Aⱼ for
   random 128-bit coefficients zᵢ derived Fiat–Shamir-style from the
   whole batch, with the Aⱼ terms grouped per distinct key. One curve
   equation replaces N; a forged signature makes the combination fail
   with probability 1 - 2^-128, and the per-item fallback then pinpoints
   exactly which items are bad. *)

type batch_item = {
  idx : int;
  bpk : public_key;
  bmsg : string;
  commitment : Curve.point;
  s : Bignum.t;
  c : Bignum.t;
}

let batch_coefficient transcript i =
  let h =
    Sha3.sha3_256 (transcript ^ Sanctorum_util.Bytesx.of_int64_le (Int64.of_int i))
  in
  let z = Bignum.of_bytes_be (String.sub h 0 16) in
  if Bignum.is_zero z then Bignum.one else z

let verify_one it =
  let c = challenge ~commitment:it.commitment ~pk:it.bpk ~msg:it.bmsg in
  Curve.equal (Curve.scalar_mul_base it.s)
    (Curve.add it.commitment (pk_mul it.bpk c))

let verify_batch ?(seed = "") items =
  let items = Array.of_list items in
  let n = Array.length items in
  let results = Array.make n false in
  let parsed = ref [] in
  for i = n - 1 downto 0 do
    let pk, msg, signature = items.(i) in
    match parse_signature signature with
    | None -> () (* structurally invalid: stays false *)
    | Some (commitment, s) ->
        let c = challenge ~commitment ~pk ~msg in
        parsed := { idx = i; bpk = pk; bmsg = msg; commitment; s; c } :: !parsed
  done;
  let parsed = !parsed in
  if parsed = [] then results
  else begin
    let buf = Buffer.create 256 in
    Buffer.add_string buf "sanctorum-schnorr-batch";
    Buffer.add_string buf seed;
    List.iter
      (fun it ->
        Buffer.add_string buf (Curve.encode it.bpk.pt);
        Buffer.add_string buf (Sha3.sha3_256 it.bmsg);
        Buffer.add_string buf (Curve.encode it.commitment);
        Buffer.add_string buf (Bignum.to_bytes_be ~len:32 it.s))
      parsed;
    let transcript = Sha3.sha3_512 (Buffer.contents buf) in
    let m = Curve.order in
    let lhs = ref Bignum.zero in
    let per_key : (string, Bignum.t ref * Curve.point) Hashtbl.t =
      Hashtbl.create 16
    in
    let commitments =
      List.mapi
        (fun j it ->
          let z = batch_coefficient transcript j in
          lhs := Bignum.mod_add !lhs (Bignum.mod_mul z it.s ~m) ~m;
          let zc = Bignum.mod_mul z it.c ~m in
          let key = Curve.encode it.bpk.pt in
          (match Hashtbl.find_opt per_key key with
          | Some (acc, _) -> acc := Bignum.mod_add !acc zc ~m
          | None -> Hashtbl.add per_key key (ref zc, it.bpk.pt));
          (z, it.commitment))
        parsed
    in
    let terms =
      Hashtbl.fold (fun _ (acc, pt) l -> (!acc, pt) :: l) per_key commitments
    in
    if Curve.equal (Curve.scalar_mul_base !lhs) (Curve.multi_scalar_mul terms)
    then begin
      List.iter (fun it -> results.(it.idx) <- true) parsed;
      results
    end
    else begin
      (* Pinpoint the offenders one by one. *)
      List.iter (fun it -> results.(it.idx) <- verify_one it) parsed;
      results
    end
  end

let pp_public_key ppf pk =
  Format.fprintf ppf "%s"
    (Sanctorum_util.Hex.encode (String.sub (Curve.encode pk.pt) 0 8))
