(** The prime field GF(2^255 - 19), used by the attestation curve.

    Elements are kept in Montgomery form through a {!Bignum.Mont}
    context, so a field multiply is one division-free CIOS pass.
    Conversions happen only at the byte/bignum boundary. *)

type t

val p : Bignum.t
(** The field prime 2^255 - 19. *)

val zero : t
val one : t

val of_bignum : Bignum.t -> t
(** Reduces the argument mod [p]. *)

val to_bignum : t -> Bignum.t
val of_int : int -> t

val of_bytes_le : string -> t
(** 32 little-endian bytes, reduced mod [p]. *)

val to_bytes_le : t -> string
(** Canonical 32-byte little-endian form. *)

val equal : t -> t -> bool
val is_zero : t -> bool
val is_odd : t -> bool

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val square : t -> t
val pow : t -> Bignum.t -> t
val inv : t -> t
(** Inverse by Fermat's little theorem. Raises [Invalid_argument] on
    zero. *)

val sqrt : t -> t option
(** A square root if one exists (p ≡ 5 mod 8 method). *)

val pp : Format.formatter -> t -> unit
