(** The twisted Edwards curve -x^2 + y^2 = 1 + d x^2 y^2 over
    GF(2^255 - 19) with the Ed25519 parameters. This is the group used
    by the monitor's attestation signatures ({!Schnorr}) and key
    agreement ({!Dh}).

    The base point is recovered from y = 4/5 at module initialization
    (choosing the even-x root), so no large coordinate constant needs to
    be trusted. *)

type point
(** A point of the curve in extended homogeneous coordinates. *)

val order : Bignum.t
(** The prime order L = 2^252 + 27742317777372353535851937790883648493
    of the base-point subgroup. *)

val cofactor : int

val identity : point
val base : point

val add : point -> point -> point
val double : point -> point
val negate : point -> point

val scalar_mul : Bignum.t -> point -> point
(** Plain double-and-add. Kept as the reference implementation the
    windowed paths below are differentially tested against. *)

val scalar_mul_schoolbook : Bignum.t -> point -> point
(** The pre-optimization tier kept whole: the same extended-coordinate
    formulas over schoolbook modular arithmetic, where every field
    product pays a Knuth division. It converts to the fast
    representation only at the boundary, so agreement with
    {!scalar_mul} checks the whole field + curve stack value for
    value — the differential oracle and the bench baseline. *)

val equal : point -> point -> bool
val is_on_curve : point -> bool

type table
(** Fixed-base window (comb) precomputation for one point: per window
    of the scalar, every multiple of the windowed base, making a scalar
    multiply a handful of additions with no doublings. Worth building
    for long-lived points (the generator, the signing key, the
    manufacturer roots). *)

val make_table : ?bits:int -> point -> table
(** [bits] is the window width, 4 (default: 64 windows of 16 points,
    cheap to build) or 8 (32 windows of 256 points, ~8k additions to
    build — for a point walked very many times, like the generator).
    Raises [Invalid_argument] on any other width. *)

val table_point : table -> point

val table_mul : table -> Bignum.t -> point
(** [table_mul t k] is [scalar_mul k (table_point t)]. Scalars wider
    than 256 bits fall back to {!scalar_mul}. *)

val scalar_mul_base : Bignum.t -> point
(** [scalar_mul k base] through a table built at module init. *)

val multi_scalar_mul : (Bignum.t * point) list -> point
(** Σ kᵢ·Pᵢ with one shared doubling chain (Strauss), the core of batch
    signature verification. *)

val to_affine : point -> Field.t * Field.t
val of_affine : Field.t * Field.t -> point
(** Raises [Invalid_argument] if the coordinates are not on the curve. *)

val encode : point -> string
(** 64-byte uncompressed encoding: x (32 LE) followed by y (32 LE). *)

val decode : string -> (point, string) result
(** Inverse of {!encode}, including an on-curve check. *)

val encoded_size : int

val pp : Format.formatter -> point -> unit
