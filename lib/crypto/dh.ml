type secret = Bignum.t
type public = Curve.point

let generate rng =
  let s = Drbg.random_scalar rng ~m:Curve.order in
  (s, Curve.scalar_mul_base s)

let public_to_bytes = Curve.encode
let public_of_bytes = Curve.decode

let shared_key secret public =
  let shared = Curve.scalar_mul secret public in
  Sha3.sha3_256 ("sanctorum-dh-shared" ^ Curve.encode shared)
