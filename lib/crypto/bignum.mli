(** Arbitrary-precision natural numbers, built from scratch (no zarith in
    the sealed environment). Used by the attestation signature scheme and
    key agreement.

    Representation: little-endian arrays of 26-bit limbs, always
    normalized (no leading zero limb). All values are non-negative. *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t
(** Raises [Invalid_argument] on negative input. *)

val to_int_opt : t -> int option
(** [None] if the value does not fit in a native [int]. *)

val of_bytes_be : string -> t
(** Big-endian bytes to number. *)

val to_bytes_be : len:int -> t -> string
(** Fixed-width big-endian rendering. Raises [Invalid_argument] if the
    value needs more than [len] bytes. *)

val of_bytes_le : string -> t
val to_bytes_le : len:int -> t -> string

val of_hex : string -> t
val to_hex : t -> string

val of_decimal : string -> t
(** Parse a base-10 literal (used for published curve constants). *)

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool
val is_even : t -> bool
val bit_length : t -> int
val test_bit : t -> int -> bool

val add : t -> t -> t
val sub : t -> t -> t
(** Raises [Invalid_argument] if the result would be negative. *)

val mul : t -> t -> t
val shift_left : t -> int -> t
val shift_right : t -> int -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(a / b, a mod b)]; Knuth algorithm D. Raises
    [Division_by_zero] if [b] is zero. *)

val rem : t -> t -> t

val mod_add : t -> t -> m:t -> t
val mod_sub : t -> t -> m:t -> t
val mod_mul : t -> t -> m:t -> t
val mod_exp : t -> t -> m:t -> t
(** [mod_exp b e ~m] is [b^e mod m] by square-and-multiply. *)

val mod_inv : t -> m:t -> t
(** Modular inverse by the extended Euclidean algorithm. Raises
    [Invalid_argument] if no inverse exists. *)

(** Montgomery multiplication for a fixed odd modulus. A context
    precomputes everything the CIOS reduction needs, after which a
    modular multiply is a single limb pass with no division — the
    throughput tier under the attestation field and exponentiations.

    Montgomery residues are ordinary values [< modulus]; [to_mont] maps
    [x] to [x·R mod m] and [of_mont] maps back ([R = 2^(26·k)] for a
    [k]-limb modulus). *)
module Mont : sig
  type ctx

  val create : t -> ctx
  (** Raises [Invalid_argument] if the modulus is even or zero. *)

  val modulus : ctx -> t

  val one_m : ctx -> t
  (** The Montgomery form of 1, i.e. [R mod m]. *)

  val to_mont : ctx -> t -> t
  (** Reduces its argument mod [m] first, so any value is accepted. *)

  val of_mont : ctx -> t -> t
  val mont_mul : ctx -> t -> t -> t
  (** Montgomery product of two residues: [a·b·R^-1 mod m]. *)

  val mont_exp : ctx -> t -> t -> t
  (** [mont_exp ctx b e] is [b^e mod m] with plain-domain base and
      result; the walk happens in Montgomery form. *)

  val mod_mul : ctx -> t -> t -> t
  (** Plain-domain modular product via one round trip through
      Montgomery form; division-free drop-in for {!Bignum.mod_mul}. *)
end

val is_probable_prime : ?rounds:int -> t -> bool
(** Miller–Rabin with witnesses derived deterministically from SHA3 over
    the value's bytes (reproducible across OCaml versions). *)

val pp : Format.formatter -> t -> unit
(** Prints in hexadecimal. *)
