(* GF(2^255 - 19) in Montgomery form. A field element is a Bignum
   residue x·R mod p (R = 2^260 for the ten-limb prime), so every
   multiply goes through the division-free CIOS path of {!Bignum.Mont}
   instead of a generic [rem]. Addition, subtraction and equality work
   on residues unchanged because the Montgomery map is linear and
   residues are kept canonical (< p). *)

let p =
  (* 2^255 - 19 *)
  Bignum.sub (Bignum.shift_left Bignum.one 255) (Bignum.of_int 19)

let ctx = Bignum.Mont.create p

type t = Bignum.t

let zero = Bignum.zero
let one = Bignum.Mont.one_m ctx
let of_bignum x = Bignum.Mont.to_mont ctx x
let to_bignum x = Bignum.Mont.of_mont ctx x
let of_int n = of_bignum (Bignum.of_int n)
let of_bytes_le s = of_bignum (Bignum.of_bytes_le s)
let to_bytes_le x = Bignum.to_bytes_le ~len:32 (to_bignum x)
let equal = Bignum.equal
let is_zero = Bignum.is_zero
let is_odd x = not (Bignum.is_even (to_bignum x))
let add a b = Bignum.mod_add a b ~m:p
let sub a b = Bignum.mod_sub a b ~m:p
let neg a = if Bignum.is_zero a then a else Bignum.sub p a
let mul a b = Bignum.Mont.mont_mul ctx a b
let square a = mul a a

let pow b e =
  let acc = ref one in
  for i = Bignum.bit_length e - 1 downto 0 do
    acc := square !acc;
    if Bignum.test_bit e i then acc := mul !acc b
  done;
  !acc

let inv a =
  if is_zero a then invalid_arg "Field.inv: zero";
  pow a (Bignum.sub p Bignum.two)

(* p ≡ 5 (mod 8): candidate r = a^((p+3)/8). If r^2 = -a, multiply by
   sqrt(-1) = 2^((p-1)/4). Computed eagerly at module init — a [lazy]
   here would be forced concurrently by fleet domains. *)
let sqrt_minus_one =
  pow (of_int 2) (Bignum.shift_right (Bignum.sub p Bignum.one) 2)

let sqrt a =
  if is_zero a then Some zero
  else begin
    let e = Bignum.shift_right (Bignum.add p (Bignum.of_int 3)) 3 in
    let r = pow a e in
    if equal (square r) a then Some r
    else begin
      let r' = mul r sqrt_minus_one in
      if equal (square r') a then Some r' else None
    end
  end

let pp ppf x = Bignum.pp ppf (to_bignum x)
