(* Little-endian arrays of 26-bit limbs. 26 bits is chosen so that a
   limb product plus carries fits comfortably in OCaml's 63-bit native
   int (26 + 26 + safety margin). The empty array is zero; all values
   are normalized (no high zero limb). *)

let base_bits = 26
let base = 1 lsl base_bits
let mask = base - 1

type t = int array

let zero : t = [||]

let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int v =
  if v < 0 then invalid_arg "Bignum.of_int: negative";
  let rec limbs v = if v = 0 then [] else (v land mask) :: limbs (v lsr base_bits) in
  Array.of_list (limbs v)

let one = of_int 1
let two = of_int 2
let is_zero a = Array.length a = 0

let to_int_opt a =
  (* 63-bit native ints hold at most two full limbs plus 11 bits. *)
  let rec go i acc =
    if i < 0 then Some acc
    else if acc > (max_int - a.(i)) lsr base_bits then None
    else go (i - 1) ((acc lsl base_bits) lor a.(i))
  in
  if Array.length a > 3 then None else go (Array.length a - 1) 0

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0
let is_even a = Array.length a = 0 || a.(0) land 1 = 0

let bit_length a =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let top = a.(n - 1) in
    let rec width v = if v = 0 then 0 else 1 + width (v lsr 1) in
    ((n - 1) * base_bits) + width top
  end

let test_bit a i =
  let limb = i / base_bits and off = i mod base_bits in
  limb < Array.length a && (a.(limb) lsr off) land 1 = 1

let add a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb + 1 in
  let r = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s =
      (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry
    in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  normalize r

let sub a b =
  if compare a b < 0 then invalid_arg "Bignum.sub: negative result";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  normalize r

let mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let acc = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- acc land mask;
        carry := acc lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let acc = r.(!k) + !carry in
        r.(!k) <- acc land mask;
        carry := acc lsr base_bits;
        incr k
      done
    done;
    normalize r
  end

let shift_left a n =
  if is_zero a || n = 0 then a
  else begin
    let limb_shift = n / base_bits and bit_shift = n mod base_bits in
    let la = Array.length a in
    let r = Array.make (la + limb_shift + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bit_shift in
      r.(i + limb_shift) <- r.(i + limb_shift) lor (v land mask);
      r.(i + limb_shift + 1) <- r.(i + limb_shift + 1) lor (v lsr base_bits)
    done;
    normalize r
  end

let shift_right a n =
  if is_zero a || n = 0 then a
  else begin
    let limb_shift = n / base_bits and bit_shift = n mod base_bits in
    let la = Array.length a in
    if limb_shift >= la then zero
    else begin
      let len = la - limb_shift in
      let r = Array.make len 0 in
      for i = 0 to len - 1 do
        let lo = a.(i + limb_shift) lsr bit_shift in
        let hi =
          if bit_shift = 0 || i + limb_shift + 1 >= la then 0
          else a.(i + limb_shift + 1) lsl (base_bits - bit_shift)
        in
        r.(i) <- (lo lor hi) land mask
      done;
      normalize r
    end
  end

(* Short division by a single limb. *)
let divmod_limb a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (normalize q, of_int !r)

(* Knuth TAOCP vol. 2, algorithm D. *)
let divmod a b =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then divmod_limb a b.(0)
  else begin
    let shift =
      let rec top_width v = if v = 0 then 0 else 1 + top_width (v lsr 1) in
      base_bits - top_width b.(Array.length b - 1)
    in
    let u0 = shift_left a shift and v = shift_left b shift in
    let n = Array.length v in
    let m = Array.length u0 - n in
    (* u gets one extra high limb for the multiply-subtract step. *)
    let u = Array.make (Array.length u0 + 1) 0 in
    Array.blit u0 0 u 0 (Array.length u0);
    let q = Array.make (m + 1) 0 in
    let vtop = v.(n - 1) and vnext = v.(n - 2) in
    for j = m downto 0 do
      let top = (u.(j + n) lsl base_bits) lor u.(j + n - 1) in
      let qhat = ref (top / vtop) and rhat = ref (top mod vtop) in
      let adjust = ref true in
      while !adjust do
        if
          !qhat >= base
          || !qhat * vnext > (!rhat lsl base_bits) lor u.(j + n - 2)
        then begin
          decr qhat;
          rhat := !rhat + vtop;
          if !rhat >= base then adjust := false
        end
        else adjust := false
      done;
      (* multiply and subtract *)
      let borrow = ref 0 in
      for i = 0 to n - 1 do
        let p = !qhat * v.(i) in
        let t = u.(i + j) - !borrow - (p land mask) in
        u.(i + j) <- t land mask;
        borrow := (p lsr base_bits) - (t asr base_bits)
      done;
      let t = u.(j + n) - !borrow in
      u.(j + n) <- t land mask;
      if t < 0 then begin
        (* qhat was one too large: add v back once. *)
        decr qhat;
        let carry = ref 0 in
        for i = 0 to n - 1 do
          let s = u.(i + j) + v.(i) + !carry in
          u.(i + j) <- s land mask;
          carry := s lsr base_bits
        done;
        u.(j + n) <- (u.(j + n) + !carry) land mask
      end;
      q.(j) <- !qhat
    done;
    let r = normalize (Array.sub u 0 n) in
    (normalize q, shift_right r shift)
  end

let rem a b = snd (divmod a b)

let mod_add a b ~m =
  let s = add a b in
  if compare s m >= 0 then sub s m else s

let mod_sub a b ~m = if compare a b >= 0 then sub a b else sub (add a m) b
let mod_mul a b ~m = rem (mul a b) m

(* Montgomery multiplication for a fixed odd modulus m of k limbs, with
   R = 2^(base_bits·k). CIOS (coarsely integrated operand scanning)
   interleaves the multiply with the reduction, so a full modular
   multiply is one pass over the limbs and never divides. Residues are
   ordinary normalized values < m; only their *meaning* (x·R mod m) is
   Montgomery-specific. *)
module Mont = struct
  type ctx = {
    m : t;
    mk : int array; (* the modulus as exactly k limbs *)
    k : int;
    m' : int; (* -m^-1 mod 2^base_bits *)
    r2 : t; (* R^2 mod m, for entering Montgomery form *)
    rone : t; (* R mod m — the Montgomery form of 1 *)
  }

  let create m =
    if is_zero m || is_even m then
      invalid_arg "Bignum.Mont.create: modulus must be odd";
    let k = Array.length m in
    let mk = Array.copy m in
    (* Newton–Hensel iteration for m^-1 mod 2^base_bits: each step
       doubles the number of correct low bits, 5 steps cover 32 > 26. *)
    let inv = ref 1 in
    for _ = 1 to 5 do
      inv := !inv * (2 - (mk.(0) * !inv)) land mask
    done;
    let r = shift_left one (base_bits * k) in
    { m; mk; k; m' = (base - !inv) land mask; r2 = rem (mul r r) m; rone = rem r m }

  let modulus ctx = ctx.m
  let one_m ctx = ctx.rone

  let fixed ctx a =
    if Array.length a > ctx.k then
      invalid_arg "Bignum.Mont: operand exceeds the modulus width";
    let r = Array.make ctx.k 0 in
    Array.blit a 0 r 0 (Array.length a);
    r

  let geq (a : int array) (b : int array) k =
    let rec go i =
      if i < 0 then true else if a.(i) <> b.(i) then a.(i) > b.(i) else go (i - 1)
    in
    go (k - 1)

  let sub_in_place (a : int array) (b : int array) k =
    let borrow = ref 0 in
    for i = 0 to k - 1 do
      let d = a.(i) - b.(i) - !borrow in
      if d < 0 then begin
        a.(i) <- d + base;
        borrow := 1
      end
      else begin
        a.(i) <- d;
        borrow := 0
      end
    done

  (* r = a·b·R^-1 mod m over k-limb fixed arrays. The running value
     after each outer step stays below 2m, so one extra bit and a final
     conditional subtract suffice. *)
  let cios ctx (a : int array) (b : int array) =
    let k = ctx.k and mk = ctx.mk in
    let r = Array.make k 0 in
    let extra = ref 0 in
    for i = 0 to k - 1 do
      let ai = a.(i) in
      let carry = ref 0 in
      for j = 0 to k - 1 do
        let acc = r.(j) + (ai * b.(j)) + !carry in
        r.(j) <- acc land mask;
        carry := acc lsr base_bits
      done;
      let hi = !extra + !carry in
      let u = r.(0) * ctx.m' land mask in
      carry := (r.(0) + (u * mk.(0))) lsr base_bits;
      for j = 1 to k - 1 do
        let acc = r.(j) + (u * mk.(j)) + !carry in
        r.(j - 1) <- acc land mask;
        carry := acc lsr base_bits
      done;
      let hi = hi + !carry in
      r.(k - 1) <- hi land mask;
      extra := hi lsr base_bits
    done;
    if !extra <> 0 || geq r mk k then sub_in_place r mk k;
    r

  let mont_mul ctx a b = normalize (cios ctx (fixed ctx a) (fixed ctx b))
  let of_mont ctx a = normalize (cios ctx (fixed ctx a) (fixed ctx one))

  let to_mont ctx a =
    normalize (cios ctx (fixed ctx (rem a ctx.m)) (fixed ctx ctx.r2))

  let mod_mul ctx a b = of_mont ctx (mont_mul ctx (to_mont ctx a) (to_mont ctx b))

  (* Plain-domain base and result; the square-and-multiply walk happens
     entirely in Montgomery form, so no step divides. *)
  let mont_exp ctx b e =
    let bm = fixed ctx (to_mont ctx b) in
    let acc = ref (fixed ctx ctx.rone) in
    for i = bit_length e - 1 downto 0 do
      acc := cios ctx !acc !acc;
      if test_bit e i then acc := cios ctx !acc bm
    done;
    normalize (cios ctx !acc (fixed ctx one))
end

(* Left-to-right square and multiply; odd moduli go through a Montgomery
   context so the walk is division-free. *)
let mod_exp b e ~m =
  if equal m one then zero
  else if not (is_even m) then Mont.mont_exp (Mont.create m) b e
  else begin
    let b = rem b m in
    let r = ref one in
    for i = bit_length e - 1 downto 0 do
      r := mod_mul !r !r ~m;
      if test_bit e i then r := mod_mul !r b ~m
    done;
    !r
  end

let mod_inv a ~m =
  (* Extended Euclid on naturals, keeping Bezout coefficients in Z_m. *)
  let a = rem a m in
  if is_zero a then invalid_arg "Bignum.mod_inv: zero has no inverse";
  let rec go r0 r1 t0 t1 =
    if is_zero r1 then
      if equal r0 one then t0 else invalid_arg "Bignum.mod_inv: not invertible"
    else begin
      let q, r2 = divmod r0 r1 in
      let t2 = mod_sub t0 (mod_mul q t1 ~m) ~m in
      go r1 r2 t1 t2
    end
  in
  go m a zero one

let of_bytes_be s =
  let n = String.length s in
  let nbits = 8 * n in
  let nlimbs = (nbits + base_bits - 1) / base_bits in
  let r = Array.make (max nlimbs 1) 0 in
  for i = 0 to n - 1 do
    let byte = Char.code s.[n - 1 - i] in
    let bit = 8 * i in
    let limb = bit / base_bits and off = bit mod base_bits in
    r.(limb) <- r.(limb) lor ((byte lsl off) land mask);
    if off > base_bits - 8 && limb + 1 < Array.length r then
      r.(limb + 1) <- r.(limb + 1) lor (byte lsr (base_bits - off))
  done;
  normalize r

let to_bytes_be ~len a =
  if bit_length a > 8 * len then
    invalid_arg "Bignum.to_bytes_be: value too large for requested width";
  String.init len (fun i ->
      let bit = 8 * (len - 1 - i) in
      let limb = bit / base_bits and off = bit mod base_bits in
      let lo = if limb < Array.length a then a.(limb) lsr off else 0 in
      let hi =
        if off > base_bits - 8 && limb + 1 < Array.length a then
          a.(limb + 1) lsl (base_bits - off)
        else 0
      in
      Char.chr ((lo lor hi) land 0xff))

let of_bytes_le s =
  of_bytes_be (String.init (String.length s) (fun i ->
      s.[String.length s - 1 - i]))

let to_bytes_le ~len a =
  let be = to_bytes_be ~len a in
  String.init len (fun i -> be.[len - 1 - i])

let of_hex h =
  let h = if String.length h mod 2 = 1 then "0" ^ h else h in
  of_bytes_be (Sanctorum_util.Hex.decode h)

let to_hex a =
  if is_zero a then "0"
  else begin
    let len = (bit_length a + 7) / 8 in
    let s = Sanctorum_util.Hex.encode (to_bytes_be ~len a) in
    (* strip at most one leading zero nibble *)
    if String.length s > 1 && s.[0] = '0' then String.sub s 1 (String.length s - 1)
    else s
  end

let of_decimal s =
  if s = "" then invalid_arg "Bignum.of_decimal: empty";
  let ten = of_int 10 in
  String.fold_left
    (fun acc c ->
      match c with
      | '0' .. '9' -> add (mul acc ten) (of_int (Char.code c - Char.code '0'))
      | _ -> invalid_arg "Bignum.of_decimal: non-digit")
    zero s

let is_probable_prime ?(rounds = 16) n =
  if compare n two < 0 then false
  else if equal n two then true
  else if is_even n then false
  else if compare n (of_int 5) < 0 then true (* 3: no witness range exists *)
  else begin
    (* n - 1 = d * 2^s *)
    let n1 = sub n one in
    let rec split d s = if is_even d then split (shift_right d 1) (s + 1) else (d, s) in
    let d, s = split n1 0 in
    let n2 = sub n two in
    (* Deterministic witnesses in [2, n-2], derived with SHA3 over the
       value's own bytes. The previous scheme seeded an LCG with
       [Hashtbl.hash] of the hex string, which is not stable across
       OCaml versions or flag sets; this one is reproducible anywhere. *)
    let nb = to_bytes_be ~len:((bit_length n + 7) / 8) n in
    let witness i =
      let h =
        Sha3.shake256
          ~len:(String.length nb + 8)
          (Printf.sprintf "sanctorum-mr-witness-%d:" i ^ nb)
      in
      add (rem (of_bytes_be h) (sub n2 one)) two
    in
    let mctx = Mont.create n in
    let composite_witness a =
      let x = ref (Mont.mont_exp mctx a d) in
      if equal !x one || equal !x n1 then false
      else begin
        let rec loop i =
          if i >= s - 1 then true
          else begin
            x := Mont.mod_mul mctx !x !x;
            if equal !x n1 then false else loop (i + 1)
          end
        in
        loop 0
      end
    in
    let rec trial i =
      if i = rounds then true
      else if composite_witness (witness i) then false
      else trial (i + 1)
    in
    trial 0
  end

let pp ppf a = Format.fprintf ppf "0x%s" (to_hex a)
