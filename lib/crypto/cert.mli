(** A minimal certificate format for the manufacturer PKI the paper
    assumes (§IV-B4): the chain conveys trust from a manufacturer root
    key, through the device key, to the monitor's attestation key bound
    to the monitor's measurement. *)

type t = {
  subject : string;  (** human-readable subject name *)
  subject_key : Schnorr.public_key;
  bound_measurement : string option;
      (** for SM certificates: the measurement of the SM binary the key
          was derived for *)
  issuer : string;
  signature : string;  (** issuer's signature over the TBS bytes *)
}

val to_be_signed : t -> string
(** The deterministic byte string covered by [signature]. *)

val issue :
  issuer:string ->
  issuer_key:Schnorr.secret_key ->
  subject:string ->
  subject_key:Schnorr.public_key ->
  ?bound_measurement:string ->
  unit ->
  t

val verify_signature : t -> issuer_key:Schnorr.public_key -> bool

val verify_chain :
  root:Schnorr.public_key -> t list -> (Schnorr.public_key, string) result
(** [verify_chain ~root certs] checks a chain ordered root-first: each
    certificate is verified with the previous subject key, the first
    with [root]. Returns the final subject key on success. *)

val signature_claims :
  root:Schnorr.public_key ->
  t list ->
  ((Schnorr.public_key * string * string) list * Schnorr.public_key, string)
  result
(** The [(issuer key, message, signature)] triples {!verify_chain} would
    check, plus the chain's leaf key — without verifying anything. Lets
    a caller fold many chains into one {!Schnorr.verify_batch} call. *)

val serialize : t -> string
val deserialize : string -> (t, string) result

val pp : Format.formatter -> t -> unit
