(** Schnorr signatures over the attestation curve ({!Curve}).

    This is the signature scheme behind the monitor's remote attestation
    (§VI-C): the signing enclave signs (nonce, enclave measurement) with
    the monitor's attestation key, and the manufacturer PKI signs the
    monitor's public key. Deterministic nonces (hash of secret and
    message) remove the catastrophic nonce-reuse failure mode. *)

type secret_key

type public_key
(** Carries a use counter and a lazily built fixed-base window table, so
    verifying repeatedly against the same long-lived key (the signing
    enclave's, a manufacturer root's) amortizes to a table walk. The
    caching is invisible: signatures and verdicts are byte-identical
    with or without it. *)

val secret_key_of_seed : string -> secret_key
(** Derive a key pair deterministically from seed bytes (the secure boot
    protocol derives the monitor's key this way). The public half is
    computed once here and cached. *)

val public_key : secret_key -> public_key

val public_key_to_bytes : public_key -> string
(** 64-byte curve-point encoding. *)

val public_key_of_bytes : string -> (public_key, string) result

val signature_size : int
(** 96 bytes: the commitment point R (64) and the response scalar s
    (32, big-endian). *)

val sign : secret_key -> string -> string
(** [sign sk msg] is a [signature_size]-byte signature. *)

val verify : public_key -> msg:string -> signature:string -> bool

val verify_reference : public_key -> msg:string -> signature:string -> bool
(** The pre-optimization verifier: plain double-and-add over the
    schoolbook division-per-product field
    ({!Curve.scalar_mul_schoolbook}), no tables, no cached state — the
    tier every evidence verification went through before the
    throughput work. Kept as the oracle for differential tests and the
    before/after benchmark. Agrees with {!verify} on every input. *)

val verify_batch :
  ?seed:string -> (public_key * string * string) list -> bool array
(** [verify_batch items] checks N [(pk, msg, signature)] triples with
    one random-linear-combination curve equation (coefficients derived
    from the whole batch, so items cannot cancel each other). The
    result array is positional. If the combined check fails, every item
    is re-verified individually, so bad items are pinpointed and good
    items in a poisoned batch still verify. [seed] adds caller-side
    entropy to the coefficient derivation. *)

val pp_public_key : Format.formatter -> public_key -> unit
