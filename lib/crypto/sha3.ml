(* Keccak-f[1600] sponge. The state is 25 64-bit lanes; [rate] bytes are
   absorbed/squeezed per permutation call. Round constants and rotation
   offsets are the FIPS 202 standard tables (same as tiny_sha3). *)

let round_constants =
  [| 0x0000000000000001L; 0x0000000000008082L; 0x800000000000808AL;
     0x8000000080008000L; 0x000000000000808BL; 0x0000000080000001L;
     0x8000000080008081L; 0x8000000000008009L; 0x000000000000008AL;
     0x0000000000000088L; 0x0000000080008009L; 0x000000008000000AL;
     0x000000008000808BL; 0x800000000000008BL; 0x8000000000008089L;
     0x8000000000008003L; 0x8000000000008002L; 0x8000000000000080L;
     0x000000000000800AL; 0x800000008000000AL; 0x8000000080008081L;
     0x8000000000008080L; 0x0000000080000001L; 0x8000000080008008L |]

let rotation_offsets =
  [| 1; 3; 6; 10; 15; 21; 28; 36; 45; 55; 2; 14; 27; 41; 56; 8; 25; 43; 62;
     18; 39; 61; 20; 44 |]

let pi_lane =
  [| 10; 7; 11; 17; 18; 3; 5; 16; 8; 21; 24; 4; 15; 23; 19; 13; 12; 2; 20;
     14; 22; 9; 6; 1 |]

let keccak_f (st : int64 array) =
  let bc = Array.make 5 0L in
  for round = 0 to 23 do
    (* theta *)
    for i = 0 to 4 do
      bc.(i) <-
        Int64.logxor st.(i)
          (Int64.logxor st.(i + 5)
             (Int64.logxor st.(i + 10) (Int64.logxor st.(i + 15) st.(i + 20))))
    done;
    for i = 0 to 4 do
      let t =
        Int64.logxor bc.((i + 4) mod 5)
          (Sanctorum_util.Bits.rotl64 bc.((i + 1) mod 5) 1)
      in
      for j = 0 to 4 do
        st.((5 * j) + i) <- Int64.logxor st.((5 * j) + i) t
      done
    done;
    (* rho + pi *)
    let t = ref st.(1) in
    for i = 0 to 23 do
      let j = pi_lane.(i) in
      let saved = st.(j) in
      st.(j) <- Sanctorum_util.Bits.rotl64 !t rotation_offsets.(i);
      t := saved
    done;
    (* chi *)
    for j = 0 to 4 do
      for i = 0 to 4 do
        bc.(i) <- st.((5 * j) + i)
      done;
      for i = 0 to 4 do
        st.((5 * j) + i) <-
          Int64.logxor bc.(i)
            (Int64.logand (Int64.lognot bc.((i + 1) mod 5)) bc.((i + 2) mod 5))
      done
    done;
    (* iota *)
    st.(0) <- Int64.logxor st.(0) round_constants.(round)
  done

type variant = Sha3 of int (* digest length *) | Shake

type t = {
  state : int64 array;
  rate : int; (* bytes absorbed per block *)
  variant : variant;
  mutable pos : int; (* byte offset within the current block *)
  mutable finalized : bool;
}

let create ~rate ~variant =
  { state = Array.make 25 0L; rate; variant; pos = 0; finalized = false }

let init_sha3_256 () = create ~rate:136 ~variant:(Sha3 32)
let init_sha3_512 () = create ~rate:72 ~variant:(Sha3 64)
let init_shake128 () = create ~rate:168 ~variant:Shake
let init_shake256 () = create ~rate:136 ~variant:Shake

let xor_byte_into_state st idx byte =
  let lane = idx / 8 and shift = 8 * (idx mod 8) in
  st.(lane) <-
    Int64.logxor st.(lane) (Int64.shift_left (Int64.of_int byte) shift)

let state_byte st idx =
  let lane = idx / 8 and shift = 8 * (idx mod 8) in
  Int64.to_int (Int64.shift_right_logical st.(lane) shift) land 0xff

let absorb_byte t byte =
  xor_byte_into_state t.state t.pos byte;
  t.pos <- t.pos + 1;
  if t.pos = t.rate then begin
    keccak_f t.state;
    t.pos <- 0
  end

(* Absorbing dominates the measurement hot path, so whole 64-bit lanes
   are XORed in at once whenever the sponge position is lane-aligned
   (every supported rate is a multiple of 8, so alignment persists).
   Stray leading/trailing bytes fall back to the byte-at-a-time path. *)
let absorb t data =
  if t.finalized then invalid_arg "Sha3.absorb: context already finalized";
  let n = String.length data in
  let i = ref 0 in
  while !i < n && t.pos land 7 <> 0 do
    absorb_byte t (Char.code (String.unsafe_get data !i));
    incr i
  done;
  while n - !i >= 8 do
    let lane = t.pos lsr 3 in
    t.state.(lane) <- Int64.logxor t.state.(lane) (String.get_int64_le data !i);
    t.pos <- t.pos + 8;
    i := !i + 8;
    if t.pos = t.rate then begin
      keccak_f t.state;
      t.pos <- 0
    end
  done;
  while !i < n do
    absorb_byte t (Char.code (String.unsafe_get data !i));
    incr i
  done

let finalize t ~len =
  if t.finalized then invalid_arg "Sha3.finalize: context already finalized";
  (match t.variant with
  | Sha3 d ->
      if len <> d then
        invalid_arg
          (Printf.sprintf "Sha3.finalize: SHA3 digest is %d bytes, not %d" d
             len)
  | Shake -> if len <= 0 then invalid_arg "Sha3.finalize: len must be > 0");
  t.finalized <- true;
  let domain = match t.variant with Sha3 _ -> 0x06 | Shake -> 0x1f in
  xor_byte_into_state t.state t.pos domain;
  xor_byte_into_state t.state (t.rate - 1) 0x80;
  keccak_f t.state;
  let out = Bytes.create len in
  let pos = ref 0 in
  for i = 0 to len - 1 do
    if !pos = t.rate then begin
      keccak_f t.state;
      pos := 0
    end;
    Bytes.set out i (Char.chr (state_byte t.state !pos));
    incr pos
  done;
  Bytes.unsafe_to_string out

let one_shot init len data =
  let t = init () in
  absorb t data;
  finalize t ~len

let sha3_256 data = one_shot init_sha3_256 32 data
let sha3_512 data = one_shot init_sha3_512 64 data
let shake128 ~len data = one_shot init_shake128 len data
let shake256 ~len data = one_shot init_shake256 len data
let digest_size_256 = 32
let digest_size_512 = 64
