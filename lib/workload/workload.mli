(** A deterministic closed-loop multicore enclave load generator.

    Boots a {!Sanctorum_os.Testbed}, installs M enclaves (M usually far
    larger than the core count), and drives them through
    {!Sanctorum_os.Os.Scheduler} rounds: create / enter, quantum-expiry
    AEX + resume, mailbox IPC meshes, demand-paging storms, and
    destroy / reclaim churn — while the analysis layer's invariant
    checker and lock-discipline analyzer watch the whole run.

    This is a thin driver over {!Engine}, the job-oriented single-shard
    API: [run] submits the whole population as unbounded jobs and steps
    the engine for a fixed round count. The fleet layer drives the same
    engine with per-job exit targets instead.

    {b Determinism contract.} The schedule and every architectural
    outcome — which enclave runs on which core in which round, every
    AEX, every fault, every mailbox delivery, the per-quantum
    simulated-cycle latencies and their percentiles — are a pure
    function of [(seed, backend, cores, enclaves, rounds, mix)]. Host
    wall-clock time is consulted only to convert the simulated totals
    into MIPS / ops-per-second rates; it never influences a decision. *)

(** The four traffic mixes (= {!Programs.mix}). *)
type mix = Programs.mix =
  | Compute  (** tight store loops; exercises enter / preempt / resume *)
  | Ipc  (** enclave pairs exchanging mailbox messages *)
  | Paging
      (** each enclave touches an unmapped address and self-pages via
          its registered fault handler (§V-A) *)
  | Churn
      (** short-lived enclaves; exits trigger probabilistic
          destroy + reclaim + reinstall *)

val mix_name : mix -> string

val mix_of_string : string -> (mix, string) result
(** Accepts ["compute"], ["ipc"], ["paging"], ["churn"]. *)

val all_mixes : mix list

type config = Engine.config = {
  seed : string;
  backend : Sanctorum_os.Testbed.backend;
  cores : int;
  enclaves : int;
  rounds : int;
  mix : mix;
  fuel : int;  (** per-quantum fuel budget (instructions) *)
  quantum : int;  (** preemption-timer quantum (cycles); keep [fuel]
                      comfortably above it so lost-tick recovery stays
                      the exception *)
  check_every : int;
      (** run the checker + trace analyzers every this many rounds
          (0 = only at the end) *)
}

val default : config
(** keystone backend (4 KiB allocation units — the capacity the
    many-enclave mixes need), 4 cores, 64 enclaves, 1000 rounds,
    compute mix, seed ["workload"]. *)

type report = Engine.report = {
  rp_mix : mix;
  rp_seed : string;
  rp_cores : int;
  rp_enclaves : int;
  rp_rounds : int;  (** scheduler rounds actually executed *)
  rp_installs : int;
  rp_reclaims : int;
  rp_exits : int;
  rp_preempts : int;
  rp_fuel_exhausted : int;
  rp_os_faults : int;  (** faults the OS observed (delegated AEX) *)
  rp_killed : int;
  rp_api_errors : int;
  rp_quanta : int;  (** scheduler slots dispatched *)
  rp_instret : int;  (** instructions retired across all quanta *)
  rp_sim_cycles : int;  (** simulated cycles across all quanta *)
  rp_msgs_sent : int;  (** mailbox messages deposited (ipc mix) *)
  rp_msgs_received : int;  (** mailbox messages retrieved (ipc mix) *)
  rp_msgs_inflight : int;
      (** messages still sitting in a mailbox when its owner was
          reclaimed — the in-flight tail that explains any
          sent/received gap *)
  rp_msgs_accounted : bool;
      (** [sent = received + inflight]: no message is unaccounted for *)
  rp_wall_s : float;  (** host seconds for the scheduling loop *)
  rp_mips : float;  (** simulated Minstr / host second *)
  rp_ops_per_sec : float;
      (** (installs + reclaims + exits) / host second *)
  rp_quantum_p50 : int;  (** per-quantum simulated-cycle latency *)
  rp_quantum_p90 : int;
  rp_quantum_p99 : int;
  rp_findings : Sanctorum_analysis.Report.violation list;
      (** every checker / trace violation from all checkpoints *)
  rp_trace_dropped : int;  (** telemetry events lost to ring overflow *)
  rp_drained : bool;  (** all pinned threads reached a stop *)
  rp_free_units_boot : int;
  rp_free_units_end : int;
  rp_reclaimed : bool;
      (** end-state is clean: no enclaves, no threads, and the OS free
          pool back at its boot value *)
  rp_meas_cache_hits : int;
      (** monitor measurement-cache hits ([measurement.cache.hit]) *)
  rp_meas_cache_misses : int;
}

val run : config -> report
(** Execute the closed loop: install, schedule [rounds] rounds with
    per-mix re-enqueue policy, drain, reclaim everything, run a final
    checker pass. Raises [Invalid_argument] on a nonsensical config
    (no cores, no enclaves, [fuel <= quantum]...). *)

val pp_report : Format.formatter -> report -> unit
(** Multi-line human-readable summary. *)

val arch_signature : report -> string
(** Every architectural field of the report, rendered to one line —
    and none of the host-clock ones ([rp_wall_s], [rp_mips],
    [rp_ops_per_sec]). Two runs of the same shard are bit-deterministic
    iff their signatures are byte-identical; the fleet tests compare
    these across replays and domain counts. *)
