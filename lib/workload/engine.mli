(** The single-shard workload engine: one [Machine]+SM+OS stack, a
    scheduler, and a table of {e jobs} — enclaves (pairs, for the ipc
    mix) driven through scheduler rounds until they reach an exit
    target, forever (the round-bounded {!Workload.run} mode), or until
    the shard fails closed.

    This is the step/report API the fleet layer drives: a cluster node
    owns exactly one engine, submits the jobs the control plane placed
    on it, steps it round by round, and ships the architectural report
    back for aggregation. Everything here is single-domain; engines
    share no mutable state, which is what makes one-engine-per-domain
    a sound shard boundary.

    {b Determinism.} Every engine decision comes from splitmix64
    streams: the engine stream is seeded by [config.seed], and each
    job's stream by the [seed] passed to {!submit} — so a job's image
    (and churn coin flips) replay identically wherever the job runs,
    including after migration to another shard. *)

type config = {
  seed : string;
  backend : Sanctorum_os.Testbed.backend;
  cores : int;
  enclaves : int;
      (** capacity: sizes the keystone PMP (one deny entry per live
          enclave domain) and, in {!Workload.run} mode, the population *)
  rounds : int;
  mix : Programs.mix;
  fuel : int;  (** per-quantum fuel budget (instructions) *)
  quantum : int;  (** preemption-timer quantum (cycles); keep [fuel]
                      comfortably above it so lost-tick recovery stays
                      the exception *)
  check_every : int;
      (** run the checker + trace analyzers every this many rounds
          (0 = only at the end) *)
}

type report = {
  rp_mix : Programs.mix;
  rp_seed : string;
  rp_cores : int;
  rp_enclaves : int;
  rp_rounds : int;  (** scheduler rounds actually executed *)
  rp_installs : int;
  rp_reclaims : int;
  rp_exits : int;
  rp_preempts : int;
  rp_fuel_exhausted : int;
  rp_os_faults : int;  (** faults the OS observed (delegated AEX) *)
  rp_killed : int;
  rp_api_errors : int;
  rp_quanta : int;  (** scheduler slots dispatched *)
  rp_instret : int;  (** instructions retired across all quanta *)
  rp_sim_cycles : int;  (** simulated cycles across all quanta *)
  rp_msgs_sent : int;  (** mailbox messages deposited (ipc mix) *)
  rp_msgs_received : int;  (** mailbox messages retrieved (ipc mix) *)
  rp_msgs_inflight : int;
      (** messages still sitting in a mailbox when its owner was
          reclaimed — the in-flight tail that explains any
          sent/received gap *)
  rp_msgs_accounted : bool;
      (** [sent = received + inflight]: no message is unaccounted for *)
  rp_wall_s : float;  (** host seconds for the scheduling loop *)
  rp_mips : float;  (** simulated Minstr / host second *)
  rp_ops_per_sec : float;
      (** (installs + reclaims + exits) / host second *)
  rp_quantum_p50 : int;  (** per-quantum simulated-cycle latency *)
  rp_quantum_p90 : int;
  rp_quantum_p99 : int;
  rp_findings : Sanctorum_analysis.Report.violation list;
      (** every checker / trace violation from all checkpoints *)
  rp_trace_dropped : int;  (** telemetry events lost to ring overflow *)
  rp_drained : bool;  (** all pinned threads reached a stop *)
  rp_free_units_boot : int;
  rp_free_units_end : int;
  rp_reclaimed : bool;
      (** end-state is clean: no enclaves, no threads, and the OS free
          pool back at its boot value *)
  rp_meas_cache_hits : int;
      (** monitor measurement-cache hits ([measurement.cache.hit]) *)
  rp_meas_cache_misses : int;
}

type t

val create : config -> t
(** Boot the full stack for one shard; no jobs yet. Raises
    [Invalid_argument] on a nonsensical config (no cores,
    [fuel <= quantum]...). *)

val testbed : t -> Sanctorum_os.Testbed.t
(** The shard's stack — the fleet node uses it to install the signing
    and agent enclaves for its join-time attestation. *)

val submit : t -> jid:int -> seed:int64 -> target:int option -> unit
(** Install and enqueue job [jid]: one worker enclave, or an enclave
    pair for the ipc mix. [target = Some n] completes the job after
    [n] exits per member; [None] runs it until the caller stops
    stepping. Raises [Failure] if the install itself is denied — the
    shard cannot even host the job. *)

val step : t -> int list
(** One scheduler round; returns the jids that completed this round
    (already reclaimed). Jobs that failed locally (enclave fault,
    killed with a quarantined core, repeated API errors) are parked —
    collect them with {!take_failed}. *)

val abort : t -> jid:int -> reason:string -> unit
(** Give up on an in-flight job (round cap hit, shard quarantined):
    park it for {!take_failed} with [reason]. Members still in the
    scheduler keep running until their next architectural stop and are
    reclaimed as they surface (or at {!finish}) — there is no mid-queue
    eviction. No-op on an unknown or already-settled jid. *)

val take_failed : t -> (int * string) list
(** Jobs that failed locally since the last call, with a reason — the
    fleet re-places them elsewhere. Their enclaves are already
    reclaimed (or were destroyed by the monitor's emergency path). *)

val inflight : t -> int list
(** Jobs submitted but neither completed nor failed, ascending. *)

val healthy : t -> bool
(** No core of the shard's machine is quarantined. *)

val rounds_run : t -> int

val finish : t -> report
(** Drain the scheduler, reclaim every remaining enclave (accounting
    in-flight mailbox messages first), run the final analysis passes,
    and assemble the report. The engine must not be used afterwards. *)

val latency_histogram : t -> Sanctorum_telemetry.Metrics.histogram
(** The per-quantum simulated-cycle histogram, for fleet-level
    percentile aggregation. Stable after {!finish}. *)
