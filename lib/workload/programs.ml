module Hw = Sanctorum_hw
module S = Sanctorum.Sm

type mix = Compute | Ipc | Paging | Churn

let mix_name = function
  | Compute -> "compute"
  | Ipc -> "ipc"
  | Paging -> "paging"
  | Churn -> "churn"

let mix_of_string = function
  | "compute" -> Ok Compute
  | "ipc" -> Ok Ipc
  | "paging" -> Ok Paging
  | "churn" -> Ok Churn
  | s ->
      Error
        (Printf.sprintf "unknown mix %S (expected compute|ipc|paging|churn)" s)

let all_mixes = [ Compute; Ipc; Paging; Churn ]

let page = Hw.Phys_mem.page_size
let evbase = 0x10000
let shared_vaddr = 0x40000

(* Re-entry after an AEX scrubs the register file and restarts at the
   entry point (the monitor saves the interrupted context into thread
   metadata for the *enclave* to recover, §V-C), so every worker keeps
   its progress in enclave memory and restarts idempotently — the same
   checkpoint idiom as the demo's counting enclave. *)

(* Count to [iters] with the counter checkpointed in the data page;
   reset it before exiting so a re-entered job does a full pass again.
   The loop is position-independent, so the variable-length [li]
   prologue cannot skew the branch offsets. *)
let compute_program ~iters =
  let open Hw.Isa in
  li t0 (evbase + page)
  @ [ Load (Ld, t1, t0, 0) ]
  @ li t2 iters
  @ [
      Branch (Bge, t1, t2, 16);
      Op_imm (Add, t1, t1, 1);
      Store (Sd, t1, t0, 0);
      Jal (zero, -12);
      Store (Sd, zero, t0, 0);
      Op_imm (Add, a7, zero, S.Ecall.exit_enclave);
      Ecall;
    ]

(* Read the peer's eid from the shared window the OS filled in, accept
   its mail exactly once (re-accepting would discard a deposited
   message — an "accepted" flag in the data page survives re-entry),
   then attempt one send and one receive and exit. No retry spins: a
   failed attempt just means the peer has not progressed yet, and the
   next dispatch of this job tries again. Each entry therefore fits in
   a single quantum. Data page layout: 0 = outgoing message, 8 =
   accepted flag, 16 = received count, 256 = incoming message, 512 =
   sender measurement. *)
let ipc_program () =
  let open Hw.Isa in
  li t0 shared_vaddr
  @ [ Load (Ld, s1, t0, 0) ]
  @ li s0 (evbase + page)
  @ [
      Load (Ld, t2, s0, 8);
      Branch (Bne, t2, zero, 24);
      mv a0 s1;
      Op_imm (Add, a7, zero, S.Ecall.accept_mail);
      Ecall;
      Op_imm (Add, t2, zero, 1);
      Store (Sd, t2, s0, 8);
    ]
  @ li t2 0x5a5a
  @ [
      Store (Sd, t2, s0, 0);
      mv a0 s1;
      mv a1 s0;
      Op_imm (Add, a7, zero, S.Ecall.send_mail);
      Ecall;
      mv a0 s1;
      Op_imm (Add, a1, s0, 256);
      Op_imm (Add, a2, s0, 512);
      Op_imm (Add, a7, zero, S.Ecall.get_mail);
      Ecall;
      Branch (Bne, a0, zero, 20);
      Load (Ld, t2, s0, 16);
      Op_imm (Add, t2, t2, 1);
      Store (Sd, t2, s0, 16);
      (* retrieval resets the mailbox grant to unaccepted, so force a
         re-accept on the next entry *)
      Store (Sd, zero, s0, 8);
      Op_imm (Add, a7, zero, S.Ecall.exit_enclave);
      Ecall;
    ]

(* Register a fault handler, then touch an unmapped page: the monitor
   delivers the fault to the handler (never to the OS), which records
   the faulting address and exits — enclave self-paging, §V-A. *)
let paging_program ~k =
  let open Hw.Isa in
  let entry =
    li a0 (evbase + 0x40)
    @ [ Op_imm (Add, a7, zero, S.Ecall.set_fault_handler); Ecall ]
    @ li t0 (0x18000 + (k * page))
    @ [ Load (Ld, t1, t0, 0); j 0 ]
  in
  assert (List.length entry <= 16);
  let entry = entry @ List.init (16 - List.length entry) (fun _ -> nop) in
  let handler =
    li t2 (evbase + page)
    @ [
        Store (Sd, a0, t2, 0);
        Op_imm (Add, a7, zero, S.Ecall.exit_enclave);
        Ecall;
      ]
  in
  entry @ handler

let build_image ~mix ~rng =
  let next_int bound = Sanctorum_util.Splitmix.int rng ~bound in
  match mix with
  | Compute ->
      Sanctorum.Image.of_program ~evbase
        (compute_program ~iters:(200 + next_int 800))
  | Churn ->
      (* Short-lived, and crucially with no shared window: shared
         windows pin OS staging memory forever, which a churn loop
         would exhaust. *)
      Sanctorum.Image.of_program ~evbase
        (compute_program ~iters:(50 + next_int 150))
  | Paging ->
      Sanctorum.Image.of_program ~evbase (paging_program ~k:(next_int 4))
  | Ipc ->
      Sanctorum.Image.of_program ~evbase
        ~shared:[ (shared_vaddr, page) ]
        (ipc_program ())

let le64 v =
  String.init 8 (fun i ->
      Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xffL)))
