(** Attestation at scale: one machine's signing enclave serves evidence
    to many remote verifier clients (DH key agreement + nonce + signed
    evidence each), and the clients' checks run through
    {!Sanctorum.Attestation.verify_evidence_batch} — one
    random-linear-combination curve equation per batch instead of three
    signature verifications per client.

    With [tamper_every > 0], every k-th client forges its evidence; a
    clean run then requires the batch fallback to pinpoint exactly the
    forged items while every honest client still verifies. *)

type config = {
  seed : string;
  backend : Sanctorum_os.Testbed.backend;
  clients : int;
  batch : int;  (** evidence checks folded per batch verification *)
  tamper_every : int;  (** every k-th client forges evidence; 0 = none *)
}

val default : config
(** keystone, 64 clients, batches of 16, no tampering. *)

type report = {
  ar_clients : int;
  ar_verified : int;
  ar_rejected : int;
  ar_tampered : int;
  ar_batches : int;
  ar_wall_s : float;
  ar_clients_per_sec : float;
  ar_signs : int;  (** [crypto.sign]: one per evidence served *)
  ar_batch_verifies : int;  (** [crypto.batch_verify] *)
  ar_cache_hits : int;  (** [measurement.cache.hit] *)
  ar_findings : int;
  ar_clean : bool;
      (** catalog silent, every client accounted for, and rejections
          exactly the tampered set *)
}

val run : config -> report
