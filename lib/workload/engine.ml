module Hw = Sanctorum_hw
module Tel = Sanctorum_telemetry
module An = Sanctorum_analysis
module S = Sanctorum.Sm
module Rng = Sanctorum_util.Splitmix
open Sanctorum_os

type config = {
  seed : string;
  backend : Testbed.backend;
  cores : int;
  enclaves : int;
  rounds : int;
  mix : Programs.mix;
  fuel : int;
  quantum : int;
  check_every : int;
}

type report = {
  rp_mix : Programs.mix;
  rp_seed : string;
  rp_cores : int;
  rp_enclaves : int;
  rp_rounds : int;
  rp_installs : int;
  rp_reclaims : int;
  rp_exits : int;
  rp_preempts : int;
  rp_fuel_exhausted : int;
  rp_os_faults : int;
  rp_killed : int;
  rp_api_errors : int;
  rp_quanta : int;
  rp_instret : int;
  rp_sim_cycles : int;
  rp_msgs_sent : int;
  rp_msgs_received : int;
  rp_msgs_inflight : int;
  rp_msgs_accounted : bool;
  rp_wall_s : float;
  rp_mips : float;
  rp_ops_per_sec : float;
  rp_quantum_p50 : int;
  rp_quantum_p90 : int;
  rp_quantum_p99 : int;
  rp_findings : An.Report.violation list;
  rp_trace_dropped : int;
  rp_drained : bool;
  rp_free_units_boot : int;
  rp_free_units_end : int;
  rp_reclaimed : bool;
  rp_meas_cache_hits : int;
  rp_meas_cache_misses : int;
}

type member = {
  mutable m_eid : int;  (* churn reinstalls swap the identity in place *)
  mutable m_tid : int;
  mutable m_exits : int;
  mutable m_done : bool;
  mutable m_errs : int;  (* consecutive, mirroring the scheduler's 3-strike drop *)
  mutable m_live : bool;
}

type job = {
  jid : int;
  jrng : Rng.t;
  target : int option;
  members : member list;
  mutable failed : bool;
}

type t = {
  cfg : config;
  tb : Testbed.t;
  os : Os.t;
  sm : S.t;
  sched : Os.Scheduler.sched;
  sink : Tel.Sink.t;
  hist : Tel.Metrics.histogram;
  qrng : Rng.t;  (* timeslice jitter; see [step] *)
  jobs : (int, job) Hashtbl.t;  (* submitted, not yet completed/failed *)
  by_eid : (int, job * member) Hashtbl.t;
  free0 : int;
  mutable rounds : int;
  mutable population : int;  (* members ever submitted (excl. churn swaps) *)
  mutable installs : int;
  mutable reclaims : int;
  mutable exits : int;
  mutable preempts : int;
  mutable fuelex : int;
  mutable os_faults : int;
  mutable killed : int;
  mutable api_errors : int;
  mutable quanta : int;
  mutable instret : int;
  mutable sim_cycles : int;
  mutable msgs_sent : int;
  mutable msgs_received : int;
  mutable msgs_inflight : int;
  mutable findings : An.Report.violation list;
  mutable dropped : int;
  mutable history : Tel.Event.t list list;  (* reversed event-window chunks *)
  mutable failed_buf : (int * string) list;  (* reversed; drained by take_failed *)
  mutable wall_s : float;  (* host time spent inside step/finish *)
}

let create cfg =
  if cfg.cores < 1 then invalid_arg "Engine.create: cores must be >= 1";
  if cfg.enclaves < 1 then invalid_arg "Engine.create: enclaves must be >= 1";
  if cfg.fuel <= cfg.quantum then
    invalid_arg "Engine.create: fuel must exceed the quantum";
  let metrics = Tel.Metrics.create () in
  let sink = Tel.Sink.create ~capacity:(1 lsl 16) ~metrics () in
  (* The keystone platform spends one PMP deny entry per other live
     enclave domain (and fails closed on overflow), so a many-enclave
     population needs a PMP sized to match. *)
  let pmp_entries = max Hw.Pmp.entry_count (cfg.enclaves + 4) in
  let tb =
    Testbed.create ~backend:cfg.backend ~cores:cfg.cores ~pmp_entries
      ~seed:cfg.seed ~sink ()
  in
  let os = tb.Testbed.os in
  Os.clear_delegated_events os;
  {
    cfg;
    tb;
    os;
    sm = tb.Testbed.sm;
    sched = Os.Scheduler.create os ~cores:(List.init cfg.cores Fun.id);
    sink;
    hist = Tel.Metrics.histogram metrics "workload.quantum.cycles";
    qrng = Rng.of_string (cfg.seed ^ "/quantum");
    jobs = Hashtbl.create 97;
    by_eid = Hashtbl.create 97;
    free0 = Os.free_unit_count os;
    rounds = 0;
    population = 0;
    installs = 0;
    reclaims = 0;
    exits = 0;
    preempts = 0;
    fuelex = 0;
    os_faults = 0;
    killed = 0;
    api_errors = 0;
    quanta = 0;
    instret = 0;
    sim_cycles = 0;
    msgs_sent = 0;
    msgs_received = 0;
    msgs_inflight = 0;
    findings = [];
    dropped = 0;
    history = [];
    failed_buf = [];
    wall_s = 0.;
  }

let testbed t = t.tb

let install_one t image =
  match Os.retry_transient (fun () -> Os.install_enclave t.os image) with
  | Ok inst ->
      t.installs <- t.installs + 1;
      inst
  | Error e ->
      failwith ("Engine.submit: install: " ^ Sanctorum.Api_error.to_string e)

(* Count the messages still sitting in the enclave's mailbox before the
   metadata (and the stats with it) is torn down — the in-flight tail
   the report's sent/received equation accounts for. *)
let reclaim_member t m =
  if m.m_live then begin
    (match S.mailbox_stats t.sm ~eid:m.m_eid with
    | Ok (deposited, retrieved, _rejected) ->
        t.msgs_inflight <- t.msgs_inflight + (deposited - retrieved)
    | Error _ -> ());
    match Os.retry_transient (fun () -> Os.reclaim_enclave t.os ~eid:m.m_eid) with
    | Ok () ->
        t.reclaims <- t.reclaims + 1;
        Hashtbl.remove t.by_eid m.m_eid;
        m.m_live <- false
    | Error _ -> t.api_errors <- t.api_errors + 1
  end

let submit t ~jid ~seed ~target =
  if Hashtbl.mem t.jobs jid then
    invalid_arg (Printf.sprintf "Engine.submit: duplicate jid %d" jid);
  let jrng = Rng.create ~seed in
  let member inst =
    {
      m_eid = inst.Os.eid;
      m_tid = List.hd inst.Os.tids;
      m_exits = 0;
      m_done = false;
      m_errs = 0;
      m_live = true;
    }
  in
  let members =
    match t.cfg.mix with
    | Programs.Ipc ->
        let a = install_one t (Programs.build_image ~mix:t.cfg.mix ~rng:jrng) in
        let b = install_one t (Programs.build_image ~mix:t.cfg.mix ~rng:jrng) in
        let window inst =
          match inst.Os.shared_paddrs with
          | (_, paddr, _) :: _ -> paddr
          | [] -> assert false
        in
        Os.os_write t.os ~paddr:(window a)
          (Programs.le64 (Int64.of_int b.Os.eid));
        Os.os_write t.os ~paddr:(window b)
          (Programs.le64 (Int64.of_int a.Os.eid));
        [ member a; member b ]
    | Programs.Compute | Programs.Paging | Programs.Churn ->
        [ member (install_one t (Programs.build_image ~mix:t.cfg.mix ~rng:jrng)) ]
  in
  let job = { jid; jrng; target; members; failed = false } in
  List.iter
    (fun m ->
      Hashtbl.replace t.by_eid m.m_eid (job, m);
      Os.Scheduler.enqueue t.sched ~eid:m.m_eid ~tid:m.m_tid)
    members;
  t.population <- t.population + List.length members;
  Hashtbl.replace t.jobs jid job

(* A job that cannot make progress on this shard: park it for
   [take_failed] so the fleet can re-place it elsewhere. Members still
   in the scheduler keep running until their next architectural stop
   (there is no mid-queue eviction, matching real schedulers); each is
   reclaimed the moment it surfaces, or at [finish]. *)
let fail_job t job reason =
  if not job.failed then begin
    job.failed <- true;
    Hashtbl.remove t.jobs job.jid;
    t.failed_buf <- (job.jid, reason) :: t.failed_buf
  end

let complete_job t job =
  List.iter (reclaim_member t) job.members;
  Hashtbl.remove t.jobs job.jid

let checkpoint t =
  (* API calls never span a round boundary, so each drained window is
     well-formed for the lock-discipline pass. The orderliness lint
     needs whole-run lifecycles (a window that opens after an enclave's
     create would flag every later enter), so windows are accumulated
     and that pass runs once, in [finish]. *)
  let evs = Tel.Sink.events t.sink in
  t.findings <- t.findings @ An.Checker.snapshot t.sm @ An.Lockcheck.check evs;
  List.iter
    (fun (e : Tel.Event.t) ->
      match e.Tel.Event.payload with
      | Tel.Event.Mailbox_sent _ -> t.msgs_sent <- t.msgs_sent + 1
      | Tel.Event.Mailbox_received _ -> t.msgs_received <- t.msgs_received + 1
      | _ -> ())
    evs;
  t.history <- evs :: t.history;
  t.dropped <- t.dropped + Tel.Sink.dropped t.sink;
  Tel.Sink.clear t.sink

let on_exit t job m completed =
  m.m_exits <- m.m_exits + 1;
  m.m_errs <- 0;
  if job.failed then reclaim_member t m
  else begin
    (match job.target with
    | Some n when m.m_exits >= n -> m.m_done <- true
    | _ -> ());
    if m.m_done then begin
      if List.for_all (fun m -> m.m_done) job.members then begin
        complete_job t job;
        completed := job.jid :: !completed
      end
    end
    else
      match t.cfg.mix with
      | Programs.Churn when Rng.int job.jrng ~bound:2 = 0 ->
          reclaim_member t m;
          let inst =
            install_one t (Programs.build_image ~mix:t.cfg.mix ~rng:job.jrng)
          in
          m.m_eid <- inst.Os.eid;
          m.m_tid <- List.hd inst.Os.tids;
          m.m_live <- true;
          Hashtbl.replace t.by_eid m.m_eid (job, m);
          Os.Scheduler.enqueue t.sched ~eid:m.m_eid ~tid:m.m_tid
      | _ -> Os.Scheduler.enqueue t.sched ~eid:m.m_eid ~tid:m.m_tid
  end

let step t =
  let t0 = Sys.time () in
  (* Jitter the timeslice by up to 1/8 of a quantum, like a real
     scheduler's timer slack. A perfectly periodic quantum can
     phase-lock with a deterministic guest: if the preemption lands in
     the same fatal window of the program every entry (say, between a
     progress-counter reset and the exit ecall), the guest livelocks
     and no round cap is high enough. The jitter stream is seeded, so
     runs still replay bit-for-bit. *)
  let quantum =
    t.cfg.quantum + Rng.int t.qrng ~bound:(max 2 (t.cfg.quantum / 8))
  in
  let slots = Os.Scheduler.round t.sched ~fuel:t.cfg.fuel ~quantum in
  let completed = ref [] in
  List.iter
    (fun (s : Os.Scheduler.slot) ->
      t.quanta <- t.quanta + 1;
      t.instret <- t.instret + s.Os.Scheduler.s_instret;
      t.sim_cycles <- t.sim_cycles + s.Os.Scheduler.s_cycles;
      Tel.Metrics.observe t.hist s.Os.Scheduler.s_cycles;
      match Hashtbl.find_opt t.by_eid s.Os.Scheduler.s_eid with
      | None -> (
          (* A slot for an enclave we no longer track can only be a
             straggler of an already-failed job. *)
          match s.Os.Scheduler.s_outcome with
          | Error _ -> t.api_errors <- t.api_errors + 1
          | Ok _ -> ())
      | Some (job, m) -> (
          match s.Os.Scheduler.s_outcome with
          | Ok Os.Exited ->
              t.exits <- t.exits + 1;
              on_exit t job m completed
          | Ok Os.Preempted ->
              t.preempts <- t.preempts + 1;
              m.m_errs <- 0
          | Ok Os.Fuel_exhausted ->
              t.fuelex <- t.fuelex + 1;
              m.m_errs <- 0
          | Ok (Os.Faulted _) ->
              (* Delegated to the OS: the enclave had no handler for
                 this, and the scheduler already dropped the thread. *)
              t.os_faults <- t.os_faults + 1;
              fail_job t job "enclave fault delegated to OS";
              reclaim_member t m
          | Ok Os.Killed ->
              t.killed <- t.killed + 1;
              fail_job t job "core quarantined mid-run";
              reclaim_member t m
          | Error _ ->
              t.api_errors <- t.api_errors + 1;
              m.m_errs <- m.m_errs + 1;
              if m.m_errs >= 3 then begin
                (* the scheduler's 3-strike rule dropped it from the
                   queue; the enclave itself is still installed *)
                fail_job t job "repeated API errors";
                reclaim_member t m
              end))
    slots;
  t.rounds <- t.rounds + 1;
  if t.cfg.check_every > 0 && t.rounds mod t.cfg.check_every = 0 then
    checkpoint t;
  t.wall_s <- t.wall_s +. (Sys.time () -. t0);
  List.rev !completed

let abort t ~jid ~reason =
  match Hashtbl.find_opt t.jobs jid with
  | Some job -> fail_job t job reason
  | None -> ()

let take_failed t =
  let l = List.rev t.failed_buf in
  t.failed_buf <- [];
  l

let inflight t =
  Hashtbl.fold (fun jid _ acc -> jid :: acc) t.jobs [] |> List.sort compare

let healthy t =
  Array.for_all
    (fun (c : Hw.Machine.core) -> not c.Hw.Machine.quarantined)
    (Hw.Machine.cores t.tb.Testbed.machine)

let rounds_run t = t.rounds
let latency_histogram t = t.hist

let finish t =
  let t0 = Sys.time () in
  let drained = Os.Scheduler.drain t.sched ~fuel:t.cfg.fuel ~quantum:t.cfg.quantum in
  Hashtbl.fold (fun eid _ acc -> eid :: acc) t.by_eid []
  |> List.sort compare
  |> List.iter (fun eid ->
         match Hashtbl.find_opt t.by_eid eid with
         | Some (_, m) -> reclaim_member t m
         | None -> ());
  t.wall_s <- t.wall_s +. (Sys.time () -. t0);
  checkpoint t;
  t.findings <-
    t.findings @ An.Orderlint.check (List.concat (List.rev t.history));
  let free_end = Os.free_unit_count t.os in
  let reclaimed =
    free_end = t.free0 && S.enclaves t.sm = [] && S.thread_ids t.sm = []
  in
  let rate v = if t.wall_s > 0. then float_of_int v /. t.wall_s else 0. in
  let counter n =
    match Tel.Sink.metrics t.sink with
    | None -> 0
    | Some m -> (
        match Tel.Metrics.find m n with
        | Some (Tel.Metrics.Counter c) -> Tel.Metrics.value c
        | _ -> 0)
  in
  {
    rp_mix = t.cfg.mix;
    rp_seed = t.cfg.seed;
    rp_cores = t.cfg.cores;
    rp_enclaves = t.population;
    rp_rounds = t.rounds;
    rp_installs = t.installs;
    rp_reclaims = t.reclaims;
    rp_exits = t.exits;
    rp_preempts = t.preempts;
    rp_fuel_exhausted = t.fuelex;
    rp_os_faults = t.os_faults;
    rp_killed = t.killed;
    rp_api_errors = t.api_errors;
    rp_quanta = t.quanta;
    rp_instret = t.instret;
    rp_sim_cycles = t.sim_cycles;
    rp_msgs_sent = t.msgs_sent;
    rp_msgs_received = t.msgs_received;
    rp_msgs_inflight = t.msgs_inflight;
    rp_msgs_accounted = t.msgs_sent = t.msgs_received + t.msgs_inflight;
    rp_wall_s = t.wall_s;
    rp_mips = rate t.instret /. 1e6;
    rp_ops_per_sec = rate (t.installs + t.reclaims + t.exits);
    rp_quantum_p50 = Tel.Metrics.percentile t.hist 0.5;
    rp_quantum_p90 = Tel.Metrics.percentile t.hist 0.9;
    rp_quantum_p99 = Tel.Metrics.percentile t.hist 0.99;
    rp_findings = t.findings;
    rp_trace_dropped = t.dropped;
    rp_drained = drained;
    rp_free_units_boot = t.free0;
    rp_free_units_end = free_end;
    rp_reclaimed = reclaimed;
    rp_meas_cache_hits = counter "measurement.cache.hit";
    rp_meas_cache_misses = counter "measurement.cache.miss";
  }
