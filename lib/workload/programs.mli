(** The worker-enclave programs behind the workload mixes, shared by
    the round-bounded {!Workload.run} loop and the job-oriented
    {!Engine} the fleet layer drives. *)

(** The four traffic mixes. *)
type mix =
  | Compute  (** tight store loops; exercises enter / preempt / resume *)
  | Ipc  (** enclave pairs exchanging mailbox messages *)
  | Paging
      (** each enclave touches an unmapped address and self-pages via
          its registered fault handler (§V-A) *)
  | Churn
      (** short-lived enclaves; exits trigger probabilistic
          destroy + reclaim + reinstall *)

val mix_name : mix -> string

val mix_of_string : string -> (mix, string) result
(** Accepts ["compute"], ["ipc"], ["paging"], ["churn"]. *)

val all_mixes : mix list

val evbase : int
(** Virtual base address every worker image is linked at. *)

val shared_vaddr : int
(** Where the ipc mix maps its OS-shared window. *)

val build_image : mix:mix -> rng:Sanctorum_util.Splitmix.t -> Sanctorum.Image.t
(** A worker image for [mix]; iteration counts and paging targets are
    drawn from [rng], so the image is a pure function of the stream
    position. *)

val le64 : int64 -> string
(** 8 little-endian bytes — how the OS writes peer eids into shared
    windows. *)
