module Hw = Sanctorum_hw
module Tel = Sanctorum_telemetry
module An = Sanctorum_analysis
module S = Sanctorum.Sm
open Sanctorum_os

type mix = Compute | Ipc | Paging | Churn

let mix_name = function
  | Compute -> "compute"
  | Ipc -> "ipc"
  | Paging -> "paging"
  | Churn -> "churn"

let mix_of_string = function
  | "compute" -> Ok Compute
  | "ipc" -> Ok Ipc
  | "paging" -> Ok Paging
  | "churn" -> Ok Churn
  | s ->
      Error
        (Printf.sprintf "unknown mix %S (expected compute|ipc|paging|churn)" s)

let all_mixes = [ Compute; Ipc; Paging; Churn ]

type config = {
  seed : string;
  backend : Testbed.backend;
  cores : int;
  enclaves : int;
  rounds : int;
  mix : mix;
  fuel : int;
  quantum : int;
  check_every : int;
}

let default =
  {
    seed = "workload";
    backend = Testbed.Keystone_backend;
    cores = 4;
    enclaves = 64;
    rounds = 1000;
    mix = Compute;
    fuel = 2000;
    quantum = 500;
    check_every = 16;
  }

type report = {
  rp_mix : mix;
  rp_seed : string;
  rp_cores : int;
  rp_enclaves : int;
  rp_rounds : int;
  rp_installs : int;
  rp_reclaims : int;
  rp_exits : int;
  rp_preempts : int;
  rp_fuel_exhausted : int;
  rp_os_faults : int;
  rp_killed : int;
  rp_api_errors : int;
  rp_quanta : int;
  rp_instret : int;
  rp_sim_cycles : int;
  rp_msgs_sent : int;
  rp_msgs_received : int;
  rp_wall_s : float;
  rp_mips : float;
  rp_ops_per_sec : float;
  rp_quantum_p50 : int;
  rp_quantum_p90 : int;
  rp_quantum_p99 : int;
  rp_findings : An.Report.violation list;
  rp_trace_dropped : int;
  rp_drained : bool;
  rp_free_units_boot : int;
  rp_free_units_end : int;
  rp_reclaimed : bool;
}

(* ------------------------------------------------------------------ *)
(* Deterministic decisions: an inline splitmix64 stream keyed by the
   seed string, so every install / churn / iteration-count choice is a
   pure function of the config. *)

type rng = { mutable st : int64 }

let rng_of_seed seed =
  let h = ref 0x9E3779B97F4A7C15L in
  String.iter
    (fun c ->
      h := Int64.add (Int64.mul !h 0x100000001B3L) (Int64.of_int (Char.code c)))
    seed;
  { st = !h }

let next rng =
  rng.st <- Int64.add rng.st 0x9E3779B97F4A7C15L;
  let z = rng.st in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int rng bound =
  Int64.to_int (Int64.rem (Int64.logand (next rng) Int64.max_int) (Int64.of_int bound))

(* ------------------------------------------------------------------ *)
(* Worker programs *)

let page = Hw.Phys_mem.page_size
let evbase = 0x10000
let shared_vaddr = 0x40000

(* Re-entry after an AEX scrubs the register file and restarts at the
   entry point (the monitor saves the interrupted context into thread
   metadata for the *enclave* to recover, §V-C), so every worker keeps
   its progress in enclave memory and restarts idempotently — the same
   checkpoint idiom as the demo's counting enclave. *)

(* Count to [iters] with the counter checkpointed in the data page;
   reset it before exiting so a re-entered job does a full pass again.
   The loop is position-independent, so the variable-length [li]
   prologue cannot skew the branch offsets. *)
let compute_program ~iters =
  let open Hw.Isa in
  li t0 (evbase + page)
  @ [ Load (Ld, t1, t0, 0) ]
  @ li t2 iters
  @ [
      Branch (Bge, t1, t2, 16);
      Op_imm (Add, t1, t1, 1);
      Store (Sd, t1, t0, 0);
      Jal (zero, -12);
      Store (Sd, zero, t0, 0);
      Op_imm (Add, a7, zero, S.Ecall.exit_enclave);
      Ecall;
    ]

(* Read the peer's eid from the shared window the OS filled in, accept
   its mail exactly once (re-accepting would discard a deposited
   message — an "accepted" flag in the data page survives re-entry),
   then attempt one send and one receive and exit. No retry spins: a
   failed attempt just means the peer has not progressed yet, and the
   next dispatch of this job tries again. Each entry therefore fits in
   a single quantum. Data page layout: 0 = outgoing message, 8 =
   accepted flag, 16 = received count, 256 = incoming message, 512 =
   sender measurement. *)
let ipc_program () =
  let open Hw.Isa in
  li t0 shared_vaddr
  @ [ Load (Ld, s1, t0, 0) ]
  @ li s0 (evbase + page)
  @ [
      Load (Ld, t2, s0, 8);
      Branch (Bne, t2, zero, 24);
      mv a0 s1;
      Op_imm (Add, a7, zero, S.Ecall.accept_mail);
      Ecall;
      Op_imm (Add, t2, zero, 1);
      Store (Sd, t2, s0, 8);
    ]
  @ li t2 0x5a5a
  @ [
      Store (Sd, t2, s0, 0);
      mv a0 s1;
      mv a1 s0;
      Op_imm (Add, a7, zero, S.Ecall.send_mail);
      Ecall;
      mv a0 s1;
      Op_imm (Add, a1, s0, 256);
      Op_imm (Add, a2, s0, 512);
      Op_imm (Add, a7, zero, S.Ecall.get_mail);
      Ecall;
      Branch (Bne, a0, zero, 20);
      Load (Ld, t2, s0, 16);
      Op_imm (Add, t2, t2, 1);
      Store (Sd, t2, s0, 16);
      (* retrieval resets the mailbox grant to unaccepted, so force a
         re-accept on the next entry *)
      Store (Sd, zero, s0, 8);
      Op_imm (Add, a7, zero, S.Ecall.exit_enclave);
      Ecall;
    ]

(* Register a fault handler, then touch an unmapped page: the monitor
   delivers the fault to the handler (never to the OS), which records
   the faulting address and exits — enclave self-paging, §V-A. *)
let paging_program ~k =
  let open Hw.Isa in
  let entry =
    li a0 (evbase + 0x40)
    @ [ Op_imm (Add, a7, zero, S.Ecall.set_fault_handler); Ecall ]
    @ li t0 (0x18000 + (k * page))
    @ [ Load (Ld, t1, t0, 0); j 0 ]
  in
  assert (List.length entry <= 16);
  let entry = entry @ List.init (16 - List.length entry) (fun _ -> nop) in
  let handler =
    li t2 (evbase + page)
    @ [
        Store (Sd, a0, t2, 0);
        Op_imm (Add, a7, zero, S.Ecall.exit_enclave);
        Ecall;
      ]
  in
  entry @ handler

let build_image cfg rng =
  match cfg.mix with
  | Compute ->
      Sanctorum.Image.of_program ~evbase
        (compute_program ~iters:(200 + next_int rng 800))
  | Churn ->
      (* Short-lived, and crucially with no shared window: shared
         windows pin OS staging memory forever, which a churn loop
         would exhaust. *)
      Sanctorum.Image.of_program ~evbase
        (compute_program ~iters:(50 + next_int rng 150))
  | Paging ->
      Sanctorum.Image.of_program ~evbase (paging_program ~k:(next_int rng 4))
  | Ipc ->
      Sanctorum.Image.of_program ~evbase
        ~shared:[ (shared_vaddr, page) ]
        (ipc_program ())

let le64 v =
  String.init 8 (fun i ->
      Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xffL)))

(* ------------------------------------------------------------------ *)

let run cfg =
  if cfg.cores < 1 then invalid_arg "Workload.run: cores must be >= 1";
  if cfg.enclaves < 1 then invalid_arg "Workload.run: enclaves must be >= 1";
  if cfg.mix = Ipc && cfg.enclaves < 2 then
    invalid_arg "Workload.run: the ipc mix needs at least 2 enclaves";
  if cfg.rounds < 1 then invalid_arg "Workload.run: rounds must be >= 1";
  if cfg.fuel <= cfg.quantum then
    invalid_arg "Workload.run: fuel must exceed the quantum";
  let metrics = Tel.Metrics.create () in
  let sink = Tel.Sink.create ~capacity:(1 lsl 16) ~metrics () in
  (* The keystone platform spends one PMP deny entry per other live
     enclave domain (and fails closed on overflow), so a many-enclave
     population needs a PMP sized to match. *)
  let pmp_entries = max Hw.Pmp.entry_count (cfg.enclaves + 4) in
  let tb =
    Testbed.create ~backend:cfg.backend ~cores:cfg.cores ~pmp_entries
      ~seed:cfg.seed ~sink ()
  in
  let os = tb.Testbed.os in
  let sm = tb.Testbed.sm in
  let free0 = Os.free_unit_count os in
  let rng = rng_of_seed cfg.seed in
  let n_enclaves =
    if cfg.mix = Ipc then cfg.enclaves - (cfg.enclaves mod 2) else cfg.enclaves
  in
  let installs = ref 0
  and reclaims = ref 0
  and exits = ref 0
  and preempts = ref 0
  and fuelex = ref 0
  and os_faults = ref 0
  and killed = ref 0
  and api_errors = ref 0
  and quanta = ref 0
  and instret = ref 0
  and sim_cycles = ref 0 in
  let findings = ref [] in
  let dropped = ref 0 in
  let live = Hashtbl.create 97 (* eid -> tid *) in
  let install_one image =
    match Os.retry_transient (fun () -> Os.install_enclave os image) with
    | Ok inst ->
        incr installs;
        Hashtbl.replace live inst.Os.eid (List.hd inst.Os.tids);
        inst
    | Error e ->
        failwith ("Workload.run: install: " ^ Sanctorum.Api_error.to_string e)
  in
  let reclaim_one eid =
    match Os.retry_transient (fun () -> Os.reclaim_enclave os ~eid) with
    | Ok () ->
        incr reclaims;
        Hashtbl.remove live eid
    | Error _ -> incr api_errors
  in
  let sched = Os.Scheduler.create os ~cores:(List.init cfg.cores Fun.id) in
  (match cfg.mix with
  | Ipc ->
      for _p = 1 to n_enclaves / 2 do
        let a = install_one (build_image cfg rng) in
        let b = install_one (build_image cfg rng) in
        let window inst =
          match inst.Os.shared_paddrs with
          | (_, paddr, _) :: _ -> paddr
          | [] -> assert false
        in
        Os.os_write os ~paddr:(window a) (le64 (Int64.of_int b.Os.eid));
        Os.os_write os ~paddr:(window b) (le64 (Int64.of_int a.Os.eid));
        Os.Scheduler.enqueue sched ~eid:a.Os.eid ~tid:(List.hd a.Os.tids);
        Os.Scheduler.enqueue sched ~eid:b.Os.eid ~tid:(List.hd b.Os.tids)
      done
  | Compute | Paging | Churn ->
      for _i = 1 to n_enclaves do
        let inst = install_one (build_image cfg rng) in
        Os.Scheduler.enqueue sched ~eid:inst.Os.eid ~tid:(List.hd inst.Os.tids)
      done);
  Os.clear_delegated_events os;
  let hist = Tel.Metrics.histogram metrics "workload.quantum.cycles" in
  let msgs_sent = ref 0 and msgs_received = ref 0 in
  let history = ref [] (* reversed event-window chunks *) in
  let checkpoint () =
    (* API calls never span a round boundary, so each drained window is
       well-formed for the lock-discipline pass. The orderliness lint
       needs whole-run lifecycles (a window that opens after an
       enclave's create would flag every later enter), so windows are
       accumulated and that pass runs once, at the end. *)
    let evs = Tel.Sink.events sink in
    findings := !findings @ An.Checker.snapshot sm @ An.Lockcheck.check evs;
    List.iter
      (fun (e : Tel.Event.t) ->
        match e.Tel.Event.payload with
        | Tel.Event.Mailbox_sent _ -> incr msgs_sent
        | Tel.Event.Mailbox_received _ -> incr msgs_received
        | _ -> ())
      evs;
    history := evs :: !history;
    dropped := !dropped + Tel.Sink.dropped sink;
    Tel.Sink.clear sink
  in
  let t_start = Sys.time () in
  for r = 1 to cfg.rounds do
    let slots = Os.Scheduler.round sched ~fuel:cfg.fuel ~quantum:cfg.quantum in
    List.iter
      (fun (s : Os.Scheduler.slot) ->
        incr quanta;
        instret := !instret + s.Os.Scheduler.s_instret;
        sim_cycles := !sim_cycles + s.Os.Scheduler.s_cycles;
        Tel.Metrics.observe hist s.Os.Scheduler.s_cycles;
        match s.Os.Scheduler.s_outcome with
        | Ok Os.Exited -> (
            incr exits;
            let eid = s.Os.Scheduler.s_eid and tid = s.Os.Scheduler.s_tid in
            match cfg.mix with
            | Churn when next_int rng 2 = 0 ->
                reclaim_one eid;
                let inst = install_one (build_image cfg rng) in
                Os.Scheduler.enqueue sched ~eid:inst.Os.eid
                  ~tid:(List.hd inst.Os.tids)
            | Compute | Ipc | Paging | Churn ->
                Os.Scheduler.enqueue sched ~eid ~tid)
        | Ok Os.Preempted -> incr preempts
        | Ok Os.Fuel_exhausted -> incr fuelex
        | Ok (Os.Faulted _) -> incr os_faults
        | Ok Os.Killed -> incr killed
        | Error _ -> incr api_errors)
      slots;
    if cfg.check_every > 0 && r mod cfg.check_every = 0 then checkpoint ()
  done;
  let drained = Os.Scheduler.drain sched ~fuel:cfg.fuel ~quantum:cfg.quantum in
  Hashtbl.fold (fun eid _ acc -> eid :: acc) live []
  |> List.sort compare |> List.iter reclaim_one;
  let wall_s = Sys.time () -. t_start in
  checkpoint ();
  findings := !findings @ An.Orderlint.check (List.concat (List.rev !history));
  let free_end = Os.free_unit_count os in
  let reclaimed =
    free_end = free0 && S.enclaves sm = [] && S.thread_ids sm = []
  in
  let rate v = if wall_s > 0. then float_of_int v /. wall_s else 0. in
  {
    rp_mix = cfg.mix;
    rp_seed = cfg.seed;
    rp_cores = cfg.cores;
    rp_enclaves = n_enclaves;
    rp_rounds = cfg.rounds;
    rp_installs = !installs;
    rp_reclaims = !reclaims;
    rp_exits = !exits;
    rp_preempts = !preempts;
    rp_fuel_exhausted = !fuelex;
    rp_os_faults = !os_faults;
    rp_killed = !killed;
    rp_api_errors = !api_errors;
    rp_quanta = !quanta;
    rp_instret = !instret;
    rp_sim_cycles = !sim_cycles;
    rp_msgs_sent = !msgs_sent;
    rp_msgs_received = !msgs_received;
    rp_wall_s = wall_s;
    rp_mips = rate !instret /. 1e6;
    rp_ops_per_sec = rate (!installs + !reclaims + !exits);
    rp_quantum_p50 = Tel.Metrics.percentile hist 0.5;
    rp_quantum_p90 = Tel.Metrics.percentile hist 0.9;
    rp_quantum_p99 = Tel.Metrics.percentile hist 0.99;
    rp_findings = !findings;
    rp_trace_dropped = !dropped;
    rp_drained = drained;
    rp_free_units_boot = free0;
    rp_free_units_end = free_end;
    rp_reclaimed = reclaimed;
  }

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>workload %s: seed=%S cores=%d enclaves=%d rounds=%d@,\
     ops      : installs=%d reclaims=%d exits=%d preempts=%d fuel-exhausted=%d \
     os-faults=%d killed=%d api-errors=%d@,\
     volume   : quanta=%d instret=%d sim-cycles=%d msgs sent=%d received=%d@,\
     rates    : wall=%.3fs mips=%.2f enclave-ops/s=%.1f@,\
     latency  : per-quantum sim cycles p50<=%d p90<=%d p99<=%d@,\
     analysis : findings=%d dropped-events=%d@,\
     teardown : drained=%b free-units %d -> %d reclaimed=%b@]"
    (mix_name r.rp_mix) r.rp_seed r.rp_cores r.rp_enclaves r.rp_rounds
    r.rp_installs r.rp_reclaims r.rp_exits r.rp_preempts r.rp_fuel_exhausted
    r.rp_os_faults r.rp_killed r.rp_api_errors r.rp_quanta r.rp_instret
    r.rp_sim_cycles r.rp_msgs_sent r.rp_msgs_received r.rp_wall_s r.rp_mips
    r.rp_ops_per_sec r.rp_quantum_p50
    r.rp_quantum_p90 r.rp_quantum_p99
    (List.length r.rp_findings)
    r.rp_trace_dropped r.rp_drained r.rp_free_units_boot r.rp_free_units_end
    r.rp_reclaimed
