module Rng = Sanctorum_util.Splitmix

type mix = Programs.mix = Compute | Ipc | Paging | Churn

let mix_name = Programs.mix_name
let mix_of_string = Programs.mix_of_string
let all_mixes = Programs.all_mixes

type config = Engine.config = {
  seed : string;
  backend : Sanctorum_os.Testbed.backend;
  cores : int;
  enclaves : int;
  rounds : int;
  mix : mix;
  fuel : int;
  quantum : int;
  check_every : int;
}

let default =
  {
    seed = "workload";
    backend = Sanctorum_os.Testbed.Keystone_backend;
    cores = 4;
    enclaves = 64;
    rounds = 1000;
    mix = Compute;
    fuel = 2000;
    quantum = 500;
    check_every = 16;
  }

type report = Engine.report = {
  rp_mix : mix;
  rp_seed : string;
  rp_cores : int;
  rp_enclaves : int;
  rp_rounds : int;
  rp_installs : int;
  rp_reclaims : int;
  rp_exits : int;
  rp_preempts : int;
  rp_fuel_exhausted : int;
  rp_os_faults : int;
  rp_killed : int;
  rp_api_errors : int;
  rp_quanta : int;
  rp_instret : int;
  rp_sim_cycles : int;
  rp_msgs_sent : int;
  rp_msgs_received : int;
  rp_msgs_inflight : int;
  rp_msgs_accounted : bool;
  rp_wall_s : float;
  rp_mips : float;
  rp_ops_per_sec : float;
  rp_quantum_p50 : int;
  rp_quantum_p90 : int;
  rp_quantum_p99 : int;
  rp_findings : Sanctorum_analysis.Report.violation list;
  rp_trace_dropped : int;
  rp_drained : bool;
  rp_free_units_boot : int;
  rp_free_units_end : int;
  rp_reclaimed : bool;
  rp_meas_cache_hits : int;
  rp_meas_cache_misses : int;
}

(* The closed loop is the engine driven in its unbounded mode: the
   whole population is submitted with no exit target, stepped for
   exactly [rounds] rounds, then torn down. Job seeds are drawn from a
   stream keyed by the config seed, so every image and churn decision
   remains a pure function of the config. *)
let run cfg =
  if cfg.cores < 1 then invalid_arg "Workload.run: cores must be >= 1";
  if cfg.enclaves < 1 then invalid_arg "Workload.run: enclaves must be >= 1";
  if cfg.mix = Ipc && cfg.enclaves < 2 then
    invalid_arg "Workload.run: the ipc mix needs at least 2 enclaves";
  if cfg.rounds < 1 then invalid_arg "Workload.run: rounds must be >= 1";
  if cfg.fuel <= cfg.quantum then
    invalid_arg "Workload.run: fuel must exceed the quantum";
  let eng = Engine.create cfg in
  let rng = Rng.of_string cfg.seed in
  let n =
    if cfg.mix = Ipc then cfg.enclaves - (cfg.enclaves mod 2) else cfg.enclaves
  in
  let jobs = if cfg.mix = Ipc then n / 2 else n in
  for jid = 0 to jobs - 1 do
    Engine.submit eng ~jid ~seed:(Rng.next rng) ~target:None
  done;
  for _ = 1 to cfg.rounds do
    ignore (Engine.step eng : int list)
  done;
  Engine.finish eng

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>workload %s: seed=%S cores=%d enclaves=%d rounds=%d@,\
     ops      : installs=%d reclaims=%d exits=%d preempts=%d fuel-exhausted=%d \
     os-faults=%d killed=%d api-errors=%d@,\
     volume   : quanta=%d instret=%d sim-cycles=%d msgs sent=%d received=%d \
     in-flight=%d accounted=%b@,\
     rates    : wall=%.3fs mips=%.2f enclave-ops/s=%.1f@,\
     latency  : per-quantum sim cycles p50<=%d p90<=%d p99<=%d@,\
     analysis : findings=%d dropped-events=%d@,\
     teardown : drained=%b free-units %d -> %d reclaimed=%b@]"
    (mix_name r.rp_mix) r.rp_seed r.rp_cores r.rp_enclaves r.rp_rounds
    r.rp_installs r.rp_reclaims r.rp_exits r.rp_preempts r.rp_fuel_exhausted
    r.rp_os_faults r.rp_killed r.rp_api_errors r.rp_quanta r.rp_instret
    r.rp_sim_cycles r.rp_msgs_sent r.rp_msgs_received r.rp_msgs_inflight
    r.rp_msgs_accounted r.rp_wall_s r.rp_mips r.rp_ops_per_sec r.rp_quantum_p50
    r.rp_quantum_p90 r.rp_quantum_p99
    (List.length r.rp_findings)
    r.rp_trace_dropped r.rp_drained r.rp_free_units_boot r.rp_free_units_end
    r.rp_reclaimed

(* Everything the simulated machine decided, none of what the host
   clock measured: byte-identical across replays of the same (seed,
   shard) pair, which is how the fleet tests prove shard determinism. *)
let arch_signature r =
  Printf.sprintf
    "mix=%s seed=%s cores=%d enclaves=%d rounds=%d installs=%d reclaims=%d \
     exits=%d preempts=%d fuelex=%d osfaults=%d killed=%d apierr=%d quanta=%d \
     instret=%d cycles=%d sent=%d recv=%d inflight=%d accounted=%b p50=%d \
     p90=%d p99=%d findings=%d drained=%b free=%d/%d reclaimed=%b"
    (mix_name r.rp_mix) r.rp_seed r.rp_cores r.rp_enclaves r.rp_rounds
    r.rp_installs r.rp_reclaims r.rp_exits r.rp_preempts r.rp_fuel_exhausted
    r.rp_os_faults r.rp_killed r.rp_api_errors r.rp_quanta r.rp_instret
    r.rp_sim_cycles r.rp_msgs_sent r.rp_msgs_received r.rp_msgs_inflight
    r.rp_msgs_accounted r.rp_quantum_p50 r.rp_quantum_p90 r.rp_quantum_p99
    (List.length r.rp_findings)
    r.rp_drained r.rp_free_units_boot r.rp_free_units_end r.rp_reclaimed
