(* The attestation-at-scale scenario: one machine serves evidence to a
   crowd of remote verifier clients. Each client performs DH key
   agreement, sends a fresh nonce, and receives monitor-signed evidence
   for the target enclave; the clients' checks are folded into
   random-linear-combination batches ([Attestation.verify_evidence_batch]),
   so the service's verify cost is one curve equation per batch instead
   of three signature checks per client. Tampered clients exercise the
   fallback: the batch fails, the per-item pass pinpoints exactly the
   forged evidence, and every honest client in the same batch still
   verifies. *)

module Hw = Sanctorum_hw
module C = Sanctorum_crypto
module S = Sanctorum.Sm
module A = Sanctorum.Attestation
module B = Sanctorum.Boot
module Img = Sanctorum.Image
module Tel = Sanctorum_telemetry
module An = Sanctorum_analysis
open Sanctorum_os

type config = {
  seed : string;
  backend : Testbed.backend;
  clients : int;
  batch : int;  (* evidence checks folded per verify_evidence_batch *)
  tamper_every : int;  (* every k-th client forges its evidence; 0 = none *)
}

let default =
  {
    seed = "attest-service";
    backend = Testbed.Keystone_backend;
    clients = 64;
    batch = 16;
    tamper_every = 0;
  }

type report = {
  ar_clients : int;
  ar_verified : int;
  ar_rejected : int;
  ar_tampered : int;
  ar_batches : int;
  ar_wall_s : float;
  ar_clients_per_sec : float;
  ar_signs : int;  (* crypto.sign counter: one per served evidence *)
  ar_batch_verifies : int;  (* crypto.batch_verify counter *)
  ar_cache_hits : int;  (* measurement.cache.hit counter *)
  ar_findings : int;
  ar_clean : bool;
}

let validate cfg =
  let need cond msg =
    if not cond then invalid_arg ("Attest_service.run: " ^ msg)
  in
  need (cfg.clients >= 1) "clients must be >= 1";
  need (cfg.batch >= 1) "batch must be >= 1";
  need (cfg.tamper_every >= 0) "tamper_every must be >= 0"

let tampered cfg i = cfg.tamper_every > 0 && i mod cfg.tamper_every = 0

let run cfg =
  validate cfg;
  let metrics = Tel.Metrics.create () in
  let sink = Tel.Sink.create ~capacity:(1 lsl 14) ~metrics () in
  let tb = Testbed.create ~backend:cfg.backend ~seed:cfg.seed ~sink () in
  let sm = tb.Testbed.sm in
  let es = Result.get_ok (Testbed.install_signing_enclave tb) in
  let target =
    Img.of_program ~evbase:0x30000 Hw.Isa.[ Op_imm (Add, a7, zero, 1); Ecall ]
  in
  let t = Result.get_ok (Os.install_enclave tb.Testbed.os target) in
  let expected_measurement = Img.measurement target in
  let root = (S.identity sm).B.root_public in
  let rng = tb.Testbed.rng in
  (* Pre-resolved counters: the loop below bumps these per client and
     per batch; crypto.sign is bumped inside the signing path against
     the same registry via the testbed's sink. *)
  let c_verify = Tel.Metrics.counter metrics "crypto.verify"
  and c_batch = Tel.Metrics.counter metrics "crypto.batch_verify" in
  let t0 = Unix.gettimeofday () in
  let verified = ref 0 and rejected = ref 0 and batches = ref 0 in
  let tampered_n = ref 0 in
  let pending = ref [] and pending_n = ref 0 in
  let flush () =
    match List.rev !pending with
    | [] -> ()
    | reqs ->
        incr batches;
        Tel.Metrics.incr c_batch;
        Array.iter
          (fun verdict ->
            Tel.Metrics.incr c_verify;
            match verdict with
            | Ok () -> incr verified
            | Error _ -> incr rejected)
          (A.verify_evidence_batch reqs);
        pending := [];
        pending_n := 0
  in
  for i = 0 to cfg.clients - 1 do
    (* client side: DH keypair and a fresh nonce *)
    let _v_secret, v_public = C.Dh.generate rng in
    let e_secret, e_public = C.Dh.generate rng in
    ignore (C.Dh.shared_key e_secret v_public);
    let channel_binding =
      C.Sha3.sha3_256
        (C.Dh.public_to_bytes e_public ^ C.Dh.public_to_bytes v_public)
    in
    let nonce = C.Drbg.random_bytes rng 32 in
    match
      A.request_attestation sm ~eid:t.Os.eid ~es_eid:es.Os.eid ~nonce
        ~channel_binding
    with
    | Error e ->
        invalid_arg
          ("Attest_service.run: service failed: " ^ Sanctorum.Api_error.to_string e)
    | Ok evidence ->
        let evidence =
          if tampered cfg i then begin
            incr tampered_n;
            (* flip one bit of the signature: structurally valid, must
               be pinpointed by the batch fallback *)
            let b = Bytes.of_string evidence.A.signature in
            Bytes.set b 80 (Char.chr (Char.code (Bytes.get b 80) lxor 1));
            { evidence with A.signature = Bytes.to_string b }
          end
          else evidence
        in
        pending :=
          {
            A.vr_root = root;
            A.vr_expected_measurement = expected_measurement;
            A.vr_nonce = nonce;
            A.vr_channel_binding = channel_binding;
            A.vr_evidence = evidence;
          }
          :: !pending;
        incr pending_n;
        if !pending_n >= cfg.batch then flush ()
  done;
  flush ();
  let wall_s = Unix.gettimeofday () -. t0 in
  let findings = List.length (An.Checker.snapshot sm) in
  let counter n =
    match Tel.Metrics.find metrics n with
    | Some (Tel.Metrics.Counter c) -> Tel.Metrics.value c
    | _ -> 0
  in
  {
    ar_clients = cfg.clients;
    ar_verified = !verified;
    ar_rejected = !rejected;
    ar_tampered = !tampered_n;
    ar_batches = !batches;
    ar_wall_s = wall_s;
    ar_clients_per_sec =
      (if wall_s > 0. then float_of_int cfg.clients /. wall_s else 0.);
    ar_signs = counter "crypto.sign";
    ar_batch_verifies = counter "crypto.batch_verify";
    ar_cache_hits = counter "measurement.cache.hit";
    ar_findings = findings;
    ar_clean =
      findings = 0
      && !verified + !rejected = cfg.clients
      && !rejected = !tampered_n;
  }
