(** The snapshot invariant checker.

    Cross-checks a quiescent monitor (between API calls) against the
    platform owner map and the simulated machine: DRAM-region ownership
    (Fig. 2 vs hardware), full Sv39 walks of every enclave's private
    page tables (§V-C), TLB/cache flush residue (§IV-B2), the
    enclave/thread state machines (Figs. 3–4), metadata-slot
    confinement (§V-B), core domain registers, and lock quiescence
    (§V-A). Read-only: never takes locks, emits telemetry, or mutates
    state, so it is safe to run from {!Sanctorum.Sm.set_post_api_hook}.

    Invariant ids reported here: [own.exclusive], [own.sm-reserved],
    [pt.confined], [pt.no-alias], [tlb.no-stale], [cache.no-residue],
    [enclave.lifecycle], [thread.lifecycle], [core.domain],
    [meta.slots], [lock.quiescent]. *)

val ids : string list
(** Every invariant id this pass can report, in catalog order. The
    catalog-sync test asserts this list, {!Checker.catalog} and the
    DESIGN.md §4.1 table agree exactly. *)

val check : Sanctorum.Sm.t -> Report.violation list
