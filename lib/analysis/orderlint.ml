(* The orderliness lint (à la Guardian): a trace-level pass over the
   lifecycle events the monitor emits, flagging API sequences that are
   illegal regardless of the monitor's internal state — an enclave
   entered before it was initialized, an AEX resume with no AEX
   pending, a region granted twice with no intervening free. The pass
   is pure: it sees only the event list, so it can run over recorded
   traces long after the machine is gone. *)

module Event = Sanctorum_telemetry.Event

(* Every id [check] can report, in catalog order (see
   Invariants.ids). *)
let ids =
  [
    "order.create";
    "order.init";
    "order.enter";
    "order.exit";
    "order.destroy";
    "order.grant";
    "order.aex-resume";
    "order.mailbox";
  ]

type enclave_state = { mutable initialized : bool; mutable entered : int }

type state = {
  alive : (int, enclave_state) Hashtbl.t;  (* eid -> state *)
  on_core : (int, int) Hashtbl.t;  (* core -> eid currently inside *)
  pending_aex : (int, unit) Hashtbl.t;  (* eid with an unconsumed AEX *)
  granted : (string * int, unit) Hashtbl.t;  (* (kind, rid) outstanding *)
  pending_mail : (int, int) Hashtbl.t;  (* recipient eid -> undelivered *)
  mutable out : Report.violation list;
}

let flag st ?severity id ~subject detail =
  st.out <- Report.v ?severity id ~subject detail :: st.out

let esub eid = Printf.sprintf "enclave 0x%x" eid

(* SM API calls carry the caller as "enclave:0x<eid>". *)
let enclave_caller caller =
  match String.index_opt caller ':' with
  | Some i when String.sub caller 0 i = "enclave" -> (
      try
        Some
          (int_of_string
             (String.sub caller (i + 1) (String.length caller - i - 1)))
      with Failure _ -> None)
  | _ -> None

(* A dying core abandons whatever thread was inside: the monitor will
   never emit an exit for it, and — on the machine-check path — the
   resident enclave is emergency-reclaimed while formally entered.
   Release the trace-level entry so neither reads as a violation. *)
let condemn st ~core =
  match Hashtbl.find_opt st.on_core core with
  | None -> ()
  | Some eid ->
      Hashtbl.remove st.on_core core;
      (match Hashtbl.find_opt st.alive eid with
      | Some e when e.entered > 0 -> e.entered <- e.entered - 1
      | Some _ | None -> ());
      Hashtbl.remove st.pending_aex eid

let step st ~seq ~core payload =
  match payload with
  | Event.Enclave_created { eid } ->
      if Hashtbl.mem st.alive eid then
        flag st "order.create" ~subject:(esub eid)
          (Printf.sprintf "created twice without destroy (event #%d)" seq)
      else Hashtbl.replace st.alive eid { initialized = false; entered = 0 }
  | Event.Enclave_initialized { eid } -> (
      match Hashtbl.find_opt st.alive eid with
      | None ->
          flag st "order.init" ~subject:(esub eid)
            (Printf.sprintf "initialized before create (event #%d)" seq)
      | Some e ->
          if e.initialized then
            flag st "order.init" ~subject:(esub eid)
              (Printf.sprintf "initialized twice (event #%d)" seq)
          else e.initialized <- true)
  | Event.Enclave_entered { eid; target_core; _ } -> (
      match Hashtbl.find_opt st.alive eid with
      | None ->
          flag st "order.enter" ~subject:(esub eid)
            (Printf.sprintf "entered before create (event #%d)" seq)
      | Some e ->
          if not e.initialized then
            flag st "order.enter" ~subject:(esub eid)
              (Printf.sprintf "entered while still loading (event #%d)" seq);
          e.entered <- e.entered + 1;
          Hashtbl.replace st.on_core target_core eid)
  | Event.Enclave_exited { eid; aex } -> (
      match Hashtbl.find_opt st.alive eid with
      | None ->
          flag st "order.exit" ~subject:(esub eid)
            (Printf.sprintf "exit of an enclave never created (event #%d)" seq)
      | Some e ->
          if e.entered = 0 then
            flag st "order.exit" ~subject:(esub eid)
              (Printf.sprintf "exit with no outstanding enter (event #%d)" seq)
          else e.entered <- e.entered - 1;
          (* the exit event does not say which core; release one *)
          (match
             Hashtbl.fold
               (fun core e' acc -> if e' = eid then Some core else acc)
               st.on_core None
           with
          | Some core -> Hashtbl.remove st.on_core core
          | None -> ());
          if aex then Hashtbl.replace st.pending_aex eid ())
  | Event.Machine_check _ ->
      (* the envelope names the faulted core; the trap handler that
         follows emergency-reclaims its resident enclave before the
         quarantine event appears *)
      condemn st ~core
  | Event.Core_quarantined { core; _ } ->
      (* shootdown-timeout path: no machine-check event precedes it *)
      condemn st ~core
  | Event.Enclave_destroyed { eid } -> (
      match Hashtbl.find_opt st.alive eid with
      | None ->
          flag st "order.destroy" ~subject:(esub eid)
            (Printf.sprintf "destroyed before create (event #%d)" seq)
      | Some e ->
          if e.entered > 0 then
            flag st "order.destroy" ~subject:(esub eid)
              (Printf.sprintf
                 "destroyed with a thread still inside (event #%d)" seq);
          Hashtbl.remove st.alive eid;
          Hashtbl.remove st.pending_aex eid)
  | Event.Region_granted { kind; rid; _ } ->
      if Hashtbl.mem st.granted (kind, rid) then
        flag st "order.grant" ~subject:(Printf.sprintf "%s %d" kind rid)
          (Printf.sprintf
             "granted again without an intervening free (event #%d)" seq)
      else Hashtbl.replace st.granted (kind, rid) ()
  | Event.Region_freed { kind; rid } ->
      (* a free of a grant that predates the trace is fine *)
      Hashtbl.remove st.granted (kind, rid)
  | Event.Sm_api { api = "read_aex_state"; caller; outcome = Event.Accepted; _ }
    -> (
      match enclave_caller caller with
      | None -> ()
      | Some eid ->
          if Hashtbl.mem st.pending_aex eid then
            Hashtbl.remove st.pending_aex eid
          else
            flag st "order.aex-resume" ~subject:(esub eid)
              (Printf.sprintf
                 "AEX state read with no AEX pending (event #%d)" seq))
  | Event.Mailbox_sent { recipient; _ } ->
      Hashtbl.replace st.pending_mail recipient
        (1
        + Option.value ~default:0 (Hashtbl.find_opt st.pending_mail recipient))
  | Event.Mailbox_received { recipient; _ } -> (
      match Hashtbl.find_opt st.pending_mail recipient with
      | Some n when n > 0 -> Hashtbl.replace st.pending_mail recipient (n - 1)
      | Some _ | None ->
          flag st "order.mailbox" ~subject:(esub recipient)
            (Printf.sprintf
               "message retrieved but none was deposited (event #%d)" seq))
  | _ -> ()

let check events =
  let st =
    {
      alive = Hashtbl.create 8;
      on_core = Hashtbl.create 8;
      pending_aex = Hashtbl.create 8;
      granted = Hashtbl.create 32;
      pending_mail = Hashtbl.create 8;
      out = [];
    }
  in
  List.iter
    (fun (e : Event.t) -> step st ~seq:e.seq ~core:e.core e.payload)
    events;
  List.rev st.out
