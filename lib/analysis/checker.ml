let catalog =
  [
    ( "own.exclusive",
      "resource state machine, owner map and isolation hardware agree on \
       every allocation unit (Fig. 2, §IV-B)" );
    ( "own.sm-reserved",
      "the monitor's own memory is owned by the monitor on every view \
       (§V-B)" );
    ( "pt.confined",
      "every frame reachable from an enclave's page tables stays inside its \
       domain or shared untrusted memory (§V-C, Sanctum walk invariant)" );
    ( "pt.no-alias",
      "no physical frame is mapped twice inside evrange, within or across \
       enclaves (§VI-A)" );
    ( "tlb.no-stale",
      "no valid TLB entry survives a domain transition or region clean \
       (§IV-B2, §VII-A shootdown)" );
    ( "cache.no-residue",
      "no private cache line outlives its domain; the shared LLC never tags \
       monitor memory (§IV-B2)" );
    ( "enclave.lifecycle",
      "enclave state, measurement context and page-table root move in \
       lockstep (Fig. 3)" );
    ( "thread.lifecycle",
      "threads run only in initialized enclaves, one per core, with the \
       core's domain in agreement (Fig. 4)" );
    ( "core.domain",
      "every core's domain register names a live domain and carries that \
       domain's translation root" );
    ( "core.quarantine",
      "a quarantined core is fenced: halted, timer disarmed, no pending \
       interrupts — it can never execute again" );
    ( "meta.slots",
      "metadata slots stay inside the monitor's metadata window and never \
       overlap (§V-B)" );
    ( "lock.quiescent",
      "no fine-grained lock is held between API transactions (§V-A)" );
    ( "lock.leak",
      "trace: every acquired lock is released before its API call returns \
       (§V-A)" );
    ( "lock.guard",
      "trace: guarded monitor fields are only written under their lock \
       (§V-A)" );
    ( "lock.order",
      "trace: lock classes are acquired in a consistent global order \
       (resource < enclave < thread)" );
    ("order.create", "trace: an enclave id is never created twice (Fig. 3)");
    ( "order.init",
      "trace: init happens exactly once, after create (Fig. 3)" );
    ("order.enter", "trace: no enter before init (Fig. 3)");
    ("order.exit", "trace: every exit matches an outstanding enter (Fig. 1)");
    ( "order.destroy",
      "trace: no destroy while a thread is still inside (Fig. 3)" );
    ( "order.grant",
      "trace: no region is granted twice without an intervening free \
       (Fig. 2)" );
    ( "order.aex-resume",
      "trace: AEX state is only read after an asynchronous exit (§V-C)" );
    ( "order.mailbox",
      "trace: every mailbox receive matches a prior send (Fig. 5)" );
  ]

let snapshot = Invariants.check

let trace events = Lockcheck.check events @ Orderlint.check events

let run_all ?(events = []) sm = snapshot sm @ trace events
