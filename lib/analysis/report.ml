type severity = Critical | Warning

type violation = {
  id : string;
  severity : severity;
  subject : string;
  detail : string;
}

let v ?(severity = Critical) id ~subject detail =
  { id; severity; subject; detail }

let pp_severity ppf = function
  | Critical -> Format.pp_print_string ppf "critical"
  | Warning -> Format.pp_print_string ppf "warning"

let pp ppf t =
  Format.fprintf ppf "[%a] %-18s %s: %s" pp_severity t.severity t.id t.subject
    t.detail

let pp_list ppf = function
  | [] -> Format.fprintf ppf "no violations@."
  | vs -> List.iter (fun v -> Format.fprintf ppf "%a@." pp v) vs
