(* Bounded exhaustive exploration of the SM API state space. See the
   interface and DESIGN.md §10 for the model; the short version:

   - A state is whatever a fixed small geometry plus a sequence of
     successful API calls produces. States are rebuilt by replay (the
     boot identity is cached, everything else is deterministic), so
     "cloning" a state costs one boot plus at most [depth] calls.
   - The canonical state encoding reads only the monitor's public
     introspection surface and renders every enclave/thread/domain
     name symbolically, minimized over the (tiny) renaming group, so
     two states that differ only in creation order deduplicate.
   - Failed calls must not change the encoding at all — the monitor's
     transaction guarantee — which the explorer checks on every
     rejected edge for free, because rejected edges need no rebuild.
   - With [diff] on, a second world on the other backend shadows every
     action; constructor-level verdicts must match edge by edge. *)

module Hw = Sanctorum_hw
module Pf = Sanctorum_platform
module Tel = Sanctorum_telemetry
module Sm = Sanctorum.Sm
module Api_error = Sanctorum.Api_error
module Resource = Sanctorum.Resource
module Mailbox = Sanctorum.Mailbox

type backend = Sanctum | Keystone

let backend_name = function Sanctum -> "sanctum" | Keystone -> "keystone"
let other_backend = function Sanctum -> Keystone | Keystone -> Sanctum

type fault =
  | Corrupt_owner_map of int
  | Corrupt_lifecycle of int
  | Corrupt_thread of int * int
  | Corrupt_meta

type action =
  | Create of int
  | Alloc_pt of int * int
  | Load_page of int * int
  | Map_shared of int
  | Load_thread of int * int
  | Init of int
  | Delete of int
  | Block_mem of int
  | Clean_mem of int
  | Grant_mem of int * int
  | Grant_mem_os of int
  | Accept_mem of int * int
  | Assign of int * int
  | Accept_thread of int * int
  | Release_thread of int * int
  | Unassign of int
  | Delete_thread of int
  | Enter of int * int * int
  | Exit_enclave of int * int
  | Aex of int
  | Read_aex of int * int
  | Accept_mail of int * sender
  | Send_mail of sender * int
  | Get_mail of int * sender
  | Inject of fault

and sender = S_os | S_enclave of int

(* ------------------------------------------------------------------ *)
(* Serialization: compact colon-separated tokens, comma-joined paths,
   shell-safe so findings print as replayable command lines. *)

let sender_to_string = function
  | S_os -> "os"
  | S_enclave e -> "e" ^ string_of_int e

let sender_of_string = function
  | "os" -> Ok S_os
  | s when String.length s = 2 && s.[0] = 'e' && s.[1] >= '0' && s.[1] <= '9' ->
      Ok (S_enclave (Char.code s.[1] - Char.code '0'))
  | s -> Error (Printf.sprintf "bad sender %S (want os, e0, e1)" s)

let fault_to_string = function
  | Corrupt_owner_map u -> Printf.sprintf "owner-map:%d" u
  | Corrupt_lifecycle e -> Printf.sprintf "lifecycle:%d" e
  | Corrupt_thread (t, c) -> Printf.sprintf "thread:%d:%d" t c
  | Corrupt_meta -> "meta"

let fault_of_string s =
  match String.split_on_char ':' s with
  | [ "owner-map"; u ] -> (
      match int_of_string_opt u with
      | Some u -> Ok (Corrupt_owner_map u)
      | None -> Error ("bad fault " ^ s))
  | [ "lifecycle"; e ] -> (
      match int_of_string_opt e with
      | Some e -> Ok (Corrupt_lifecycle e)
      | None -> Error ("bad fault " ^ s))
  | [ "thread"; t; c ] -> (
      match (int_of_string_opt t, int_of_string_opt c) with
      | Some t, Some c -> Ok (Corrupt_thread (t, c))
      | _ -> Error ("bad fault " ^ s))
  | [ "meta" ] -> Ok Corrupt_meta
  | _ ->
      Error
        (Printf.sprintf
           "bad fault %S (want owner-map:U, lifecycle:E, thread:T:C, meta)" s)

let action_to_string = function
  | Create e -> Printf.sprintf "create:%d" e
  | Alloc_pt (e, l) -> Printf.sprintf "allocpt:%d:%d" e l
  | Load_page (e, i) -> Printf.sprintf "loadpage:%d:%d" e i
  | Map_shared e -> Printf.sprintf "mapshared:%d" e
  | Load_thread (e, t) -> Printf.sprintf "loadthread:%d:%d" e t
  | Init e -> Printf.sprintf "init:%d" e
  | Delete e -> Printf.sprintf "delete:%d" e
  | Block_mem u -> Printf.sprintf "blockmem:%d" u
  | Clean_mem u -> Printf.sprintf "cleanmem:%d" u
  | Grant_mem (u, e) -> Printf.sprintf "grantmem:%d:%d" u e
  | Grant_mem_os u -> Printf.sprintf "grantos:%d" u
  | Accept_mem (e, u) -> Printf.sprintf "acceptmem:%d:%d" e u
  | Assign (t, e) -> Printf.sprintf "assign:%d:%d" t e
  | Accept_thread (e, t) -> Printf.sprintf "acceptthread:%d:%d" e t
  | Release_thread (e, t) -> Printf.sprintf "release:%d:%d" e t
  | Unassign t -> Printf.sprintf "unassign:%d" t
  | Delete_thread t -> Printf.sprintf "delthread:%d" t
  | Enter (e, t, c) -> Printf.sprintf "enter:%d:%d:%d" e t c
  | Exit_enclave (e, c) -> Printf.sprintf "exit:%d:%d" e c
  | Aex c -> Printf.sprintf "aex:%d" c
  | Read_aex (e, t) -> Printf.sprintf "readaex:%d:%d" e t
  | Accept_mail (e, s) ->
      Printf.sprintf "acceptmail:%d:%s" e (sender_to_string s)
  | Send_mail (s, e) -> Printf.sprintf "sendmail:%s:%d" (sender_to_string s) e
  | Get_mail (e, s) -> Printf.sprintf "getmail:%d:%s" e (sender_to_string s)
  | Inject f -> "inject:" ^ fault_to_string f

let action_of_string s =
  let ( let* ) = Result.bind in
  let int x =
    match int_of_string_opt x with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "bad index %S in %S" x s)
  in
  match String.split_on_char ':' s with
  | [ "create"; e ] ->
      let* e = int e in
      Ok (Create e)
  | [ "allocpt"; e; l ] ->
      let* e = int e in
      let* l = int l in
      Ok (Alloc_pt (e, l))
  | [ "loadpage"; e; i ] ->
      let* e = int e in
      let* i = int i in
      Ok (Load_page (e, i))
  | [ "mapshared"; e ] ->
      let* e = int e in
      Ok (Map_shared e)
  | [ "loadthread"; e; t ] ->
      let* e = int e in
      let* t = int t in
      Ok (Load_thread (e, t))
  | [ "init"; e ] ->
      let* e = int e in
      Ok (Init e)
  | [ "delete"; e ] ->
      let* e = int e in
      Ok (Delete e)
  | [ "blockmem"; u ] ->
      let* u = int u in
      Ok (Block_mem u)
  | [ "cleanmem"; u ] ->
      let* u = int u in
      Ok (Clean_mem u)
  | [ "grantmem"; u; e ] ->
      let* u = int u in
      let* e = int e in
      Ok (Grant_mem (u, e))
  | [ "grantos"; u ] ->
      let* u = int u in
      Ok (Grant_mem_os u)
  | [ "acceptmem"; e; u ] ->
      let* e = int e in
      let* u = int u in
      Ok (Accept_mem (e, u))
  | [ "assign"; t; e ] ->
      let* t = int t in
      let* e = int e in
      Ok (Assign (t, e))
  | [ "acceptthread"; e; t ] ->
      let* e = int e in
      let* t = int t in
      Ok (Accept_thread (e, t))
  | [ "release"; e; t ] ->
      let* e = int e in
      let* t = int t in
      Ok (Release_thread (e, t))
  | [ "unassign"; t ] ->
      let* t = int t in
      Ok (Unassign t)
  | [ "delthread"; t ] ->
      let* t = int t in
      Ok (Delete_thread t)
  | [ "enter"; e; t; c ] ->
      let* e = int e in
      let* t = int t in
      let* c = int c in
      Ok (Enter (e, t, c))
  | [ "exit"; e; c ] ->
      let* e = int e in
      let* c = int c in
      Ok (Exit_enclave (e, c))
  | [ "aex"; c ] ->
      let* c = int c in
      Ok (Aex c)
  | [ "readaex"; e; t ] ->
      let* e = int e in
      let* t = int t in
      Ok (Read_aex (e, t))
  | [ "acceptmail"; e; snd ] ->
      let* e = int e in
      let* snd = sender_of_string snd in
      Ok (Accept_mail (e, snd))
  | [ "sendmail"; snd; e ] ->
      let* snd = sender_of_string snd in
      let* e = int e in
      Ok (Send_mail (snd, e))
  | [ "getmail"; e; snd ] ->
      let* e = int e in
      let* snd = sender_of_string snd in
      Ok (Get_mail (e, snd))
  | "inject" :: rest ->
      let* f = fault_of_string (String.concat ":" rest) in
      Ok (Inject f)
  | _ -> Error (Printf.sprintf "unknown action %S" s)

let path_to_string path = String.concat "," (List.map action_to_string path)

let path_of_string s =
  if String.trim s = "" then Ok []
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | tok :: rest -> (
          match action_of_string (String.trim tok) with
          | Ok a -> go (a :: acc) rest
          | Error e -> Error e)
    in
    go [] (String.split_on_char ',' s)

(* ------------------------------------------------------------------ *)
(* Configuration and the fixed small geometry. *)

type config = {
  backend : backend;
  depth : int;
  cores : int;
  units : int;
  diff : bool;
  warm : bool;
  inject : fault option;
  max_states : int;
  sink : Tel.Sink.t;
}

let default_config =
  {
    backend = Sanctum;
    depth = 4;
    cores = 1;
    units = 2;
    diff = false;
    warm = true;
    inject = None;
    max_states = 200_000;
    sink = Tel.Sink.null;
  }

let validate config =
  if config.depth < 0 || config.depth > 12 then
    invalid_arg "Modelcheck: depth must be 0..12";
  if config.cores < 1 || config.cores > 2 then
    invalid_arg "Modelcheck: cores must be 1..2";
  if config.units < 1 || config.units > 4 then
    invalid_arg "Modelcheck: units must be 1..4";
  if config.max_states < 1 then invalid_arg "Modelcheck: max_states must be > 0"

let page = Hw.Phys_mem.page_size
let max_eids = 2
let max_tids = 2

(* 1 MiB of DRAM makes one Sanctum region exactly [group_bytes], so an
   abstract unit group is one region there and four pages on Keystone:
   same byte count, same page count, identical capacity semantics. *)
let mem_bytes = 1 lsl 20
let group_bytes = 16 * 1024
let pmp_entries = 8
let evbase = 0x40000
let evsize = 4 * page
let shared_vaddr = 0x20000
let staging_paddr = mem_bytes - page
let mail_msg = "modelcheck-mail"

(* The Schnorr boot ceremony is deterministic in the seed and by far
   the most expensive part of bring-up; computed once, shared by every
   rebuilt world. *)
let identity =
  lazy
    (let seed = "modelcheck" in
     Sanctorum.Boot.perform
       ~root:(Sanctorum.Boot.manufacturer_root ~seed)
       ~device_secret:("device-secret-" ^ seed)
       ~sm_binary:Sm.binary_image)

type world = {
  w_backend : backend;
  w_machine : Hw.Machine.t;
  w_pf : Pf.Platform.t;
  w_sm : Sm.t;
  w_sink : Tel.Sink.t;
}

let make_world config backend =
  let base = Hw.Machine.default_config in
  let machine =
    Hw.Machine.create
      { base with Hw.Machine.cores = config.cores; mem_bytes; pmp_entries }
  in
  let pf =
    match backend with
    | Sanctum -> Pf.Sanctum.create machine
    | Keystone -> Pf.Keystone.create machine
  in
  let sm =
    Sm.boot ~platform:pf ~identity:(Lazy.force identity)
      ~signing_enclave_measurement:
        Sanctorum.Attestation.signing_expected_measurement
  in
  (* The explorer never runs guest instructions, so a delegated trap
     only ever means "the AEX is done"; nothing for an OS to do. *)
  Sm.set_os_trap_handler sm (fun _ _ -> ());
  let w_sink = Tel.Sink.create ~capacity:8192 () in
  Sm.set_sink sm w_sink;
  { w_backend = backend; w_machine = machine; w_pf = pf; w_sm = sm; w_sink }

let eid_addr w i = Sm.metadata_base w.w_sm + (i * Sm.enclave_slot_bytes)

let tid_addr w j =
  Sm.metadata_base w.w_sm + (max_eids * Sm.enclave_slot_bytes)
  + (j * Sm.thread_slot_bytes)

(* Abstract unit group [g] -> the backend's resource ids. The first
   grantable unit sits just above the monitor's own reservation. *)
let group_rids w g =
  let ub = Sm.memory_unit_bytes w.w_sm in
  let per = group_bytes / ub in
  let smu = Pf.Platform.sm_memory_bytes / ub in
  List.init per (fun i -> smu + (g * per) + i)

(* ------------------------------------------------------------------ *)
(* Applying one abstract action to one world. *)

let err_state m = Error (Api_error.Invalid_state m)
let config_cores w = Hw.Machine.core_count w.w_machine

(* A group operation issues one call per backend resource id. The rids
   of a group only ever transition together, so every per-rid verdict
   must agree; disagreement means the group abstraction (or the
   monitor) broke and is reported as an internal fault, which the
   differential layer then surfaces. *)
let group_op w g f =
  let rec go first = function
    | [] -> ( match first with None -> Ok () | Some v -> v)
    | rid :: rest -> (
        let v = f rid in
        match first with
        | None -> go (Some v) rest
        | Some prev ->
            if
              Api_error.(
                match (prev, v) with
                | Ok (), Ok () -> true
                | Error a, Error b -> equal a b
                | Ok (), Error _ | Error _, Ok () -> false)
            then go (Some prev) rest
            else
              Error
                (Api_error.Internal_fault
                   (Printf.sprintf "group %d verdicts diverged across rids" g)))
  in
  go None (group_rids w g)

let running_tid_on w c =
  List.find_opt
    (fun tid ->
      match Sm.thread_info w.w_sm ~tid with
      | Some { Sm.i_phase = `Running core; _ } -> core = c
      | Some _ | None -> false)
    (Sm.thread_ids w.w_sm)

let apply w action =
  let sm = w.w_sm in
  let os = Sm.Os in
  let enc e = Sm.Enclave_caller (eid_addr w e) in
  let caller_of = function S_os -> os | S_enclave e -> enc e in
  let mailbox_sender = function
    | S_os -> Mailbox.From_os
    | S_enclave e -> Mailbox.From_enclave (eid_addr w e)
  in
  match action with
  | Create e ->
      Sm.create_enclave sm ~caller:os ~eid:(eid_addr w e) ~evbase ~evsize ()
  | Alloc_pt (e, level) ->
      Sm.allocate_page_table sm ~caller:os ~eid:(eid_addr w e) ~vaddr:evbase
        ~level
  | Load_page (e, i) ->
      Sm.load_page sm ~caller:os ~eid:(eid_addr w e)
        ~vaddr:(evbase + (i * page))
        ~src_paddr:staging_paddr ~r:true ~w:true ~x:false
  | Map_shared e ->
      Sm.map_shared sm ~caller:os ~eid:(eid_addr w e) ~vaddr:shared_vaddr
        ~src_paddr:staging_paddr ~len:page
  | Load_thread (e, t) ->
      Sm.load_thread sm ~caller:os ~eid:(eid_addr w e) ~tid:(tid_addr w t)
        ~entry_pc:(Int64.of_int evbase)
        ~entry_sp:(Int64.of_int (evbase + evsize))
  | Init e -> Sm.init_enclave sm ~caller:os ~eid:(eid_addr w e)
  | Delete e -> Sm.delete_enclave sm ~caller:os ~eid:(eid_addr w e)
  | Block_mem g ->
      group_op w g (fun rid ->
          Sm.block_resource sm ~caller:os Resource.Memory_resource ~rid)
  | Clean_mem g ->
      group_op w g (fun rid ->
          Sm.clean_resource sm ~caller:os Resource.Memory_resource ~rid)
  | Grant_mem (g, e) ->
      group_op w g (fun rid ->
          Sm.grant_resource sm ~caller:os Resource.Memory_resource ~rid
            ~to_:(Sm.To_enclave (eid_addr w e)))
  | Grant_mem_os g ->
      group_op w g (fun rid ->
          Sm.grant_resource sm ~caller:os Resource.Memory_resource ~rid
            ~to_:Sm.To_os)
  | Accept_mem (e, g) ->
      group_op w g (fun rid ->
          Sm.accept_resource sm ~caller:(enc e) Resource.Memory_resource ~rid)
  | Assign (t, e) ->
      Sm.assign_thread sm ~caller:os ~eid:(eid_addr w e) ~tid:(tid_addr w t)
  | Accept_thread (e, t) ->
      Sm.accept_thread sm ~caller:(enc e) ~tid:(tid_addr w t)
        ~entry_pc:(Int64.of_int evbase)
        ~entry_sp:(Int64.of_int (evbase + evsize))
        ()
  | Release_thread (e, t) ->
      Sm.release_thread sm ~caller:(enc e) ~tid:(tid_addr w t)
  | Unassign t -> Sm.unassign_thread sm ~caller:os ~tid:(tid_addr w t)
  | Delete_thread t -> Sm.delete_thread sm ~caller:os ~tid:(tid_addr w t)
  | Enter (e, t, c) ->
      Sm.enter_enclave sm ~caller:os ~eid:(eid_addr w e) ~tid:(tid_addr w t)
        ~core:c
  | Exit_enclave (e, c) -> Sm.exit_enclave sm ~caller:(enc e) ~core:c
  | Aex c -> (
      (* Not an API call: the hardware preempts a running enclave. Only
         enabled when an enclave thread occupies the core — posting an
         interrupt at an idle core would leave it queued as invisible
         state. The guard reads introspection only, so both backends
         agree on enabledness by construction. *)
      if c < 0 || c >= config_cores w then err_state "aex: no such core"
      else
        match running_tid_on w c with
        | None -> err_state "aex: no enclave thread is running on this core"
        | Some _ ->
            Hw.Machine.post_interrupt w.w_machine ~core:c Hw.Trap.Timer;
            Hw.Machine.step w.w_machine (Hw.Machine.core w.w_machine c);
            Ok ())
  | Read_aex (e, t) -> (
      match Sm.read_aex_state sm ~caller:(enc e) ~tid:(tid_addr w t) with
      | Ok _ -> Ok ()
      | Error e -> Error e)
  | Accept_mail (e, s) ->
      Sm.accept_mail sm ~caller:(enc e) ~sender:(mailbox_sender s)
  | Send_mail (s, e) ->
      Sm.send_mail sm ~caller:(caller_of s) ~recipient:(eid_addr w e)
        ~msg:mail_msg
  | Get_mail (e, s) -> (
      match Sm.get_mail sm ~caller:(enc e) ~sender:(mailbox_sender s) with
      | Ok _ -> Ok ()
      | Error e -> Error e)
  | Inject f -> (
      match f with
      | Corrupt_owner_map g ->
          let ub = Sm.memory_unit_bytes sm in
          List.iter
            (fun rid ->
              let lo = rid * ub in
              ignore (w.w_pf.Pf.Platform.assign_range ~lo ~hi:(lo + ub) 77))
            (group_rids w g);
          Ok ()
      | Corrupt_lifecycle e ->
          if Sm.enclave_info sm ~eid:(eid_addr w e) = None then
            err_state "inject: no such enclave"
          else begin
            Sm.corrupt_enclave_lifecycle sm ~eid:(eid_addr w e);
            Ok ()
          end
      | Corrupt_thread (t, c) ->
          if Sm.thread_info sm ~tid:(tid_addr w t) = None then
            err_state "inject: no such thread"
          else begin
            Sm.corrupt_thread_phase sm ~tid:(tid_addr w t) ~core:c;
            Ok ()
          end
      | Corrupt_meta ->
          Sm.corrupt_metadata_slot sm;
          Ok ())

let verdict_tag = function
  | Ok () -> "ok"
  | Error (Api_error.Illegal_argument _) -> "illegal-argument"
  | Error Api_error.Unauthorized -> "unauthorized"
  | Error Api_error.Concurrent_call -> "concurrent-call"
  | Error (Api_error.Invalid_state _) -> "invalid-state"
  | Error (Api_error.Out_of_resources _) -> "out-of-resources"
  | Error (Api_error.Internal_fault _) -> "internal-fault"

let verdict_to_string = function
  | Ok () -> "ok"
  | Error e -> Api_error.to_string e

(* ------------------------------------------------------------------ *)
(* Canonical state encoding. Reads only public introspection; renders
   every name (eid, tid, domain, metadata address) as a symbol under a
   renaming [perm], then takes the minimum over all renamings as the
   canonical form. Deliberately excluded: cumulative telemetry/mailbox
   counters, thread entry registers and AEX dump contents (they never
   influence a verdict or an invariant), and unexplored resource
   units (constant by construction). *)

let perms2 = [ [| 0; 1 |]; [| 1; 0 |] ]

let encode w perm_e perm_t buf =
  let sm = w.w_sm in
  Buffer.clear buf;
  let add = Buffer.add_string buf in
  (* display index -> live enclave info, under the renaming *)
  let einfo =
    Array.init max_eids (fun i ->
        Sm.enclave_info sm ~eid:(eid_addr w perm_e.(i)))
  in
  let domain_sym d =
    if d = Hw.Trap.domain_untrusted then "os"
    else if d = Hw.Trap.domain_sm then "sm"
    else
      let rec find i =
        if i >= max_eids then "d" ^ string_of_int d
        else
          match einfo.(i) with
          | Some info when info.Sm.i_domain = d -> "e" ^ string_of_int i
          | Some _ | None -> find (i + 1)
      in
      find 0
  in
  let eid_sym eid =
    let rec find i =
      if i >= max_eids then "x" ^ string_of_int eid
      else if eid_addr w perm_e.(i) = eid then "e" ^ string_of_int i
      else find (i + 1)
    in
    find 0
  in
  let tid_sym tid =
    let rec find j =
      if j >= max_tids then "x" ^ string_of_int tid
      else if tid_addr w perm_t.(j) = tid then "t" ^ string_of_int j
      else find (j + 1)
    in
    find 0
  in
  (* tracked unit groups: every rid's Fig. 2 state (per-rid so any
     intra-group skew shows up as a distinct state, not silence), plus
     the hardware-level owner the platform actually enforces — the two
     can disagree only through a fault, and a fault state that encoded
     like the clean one would dedup away before the checker saw it *)
  let ub = Sm.memory_unit_bytes sm in
  let units = (mem_bytes - Pf.Platform.sm_memory_bytes) / group_bytes in
  for g = 0 to min units 4 - 1 do
    add "u";
    add (string_of_int g);
    List.iter
      (fun rid ->
        (match Sm.resource_state sm Resource.Memory_resource ~rid with
        | Ok Resource.Available -> add ":A"
        | Ok (Resource.Owned d) -> add (":O." ^ domain_sym d)
        | Ok (Resource.Offered d) -> add (":F." ^ domain_sym d)
        | Ok (Resource.Blocked d) -> add (":B." ^ domain_sym d)
        | Error _ -> add ":?");
        add ("/" ^ domain_sym (w.w_pf.Pf.Platform.owner_at ~paddr:(rid * ub))))
      (group_rids w g);
    add ";"
  done;
  (* enclaves *)
  for i = 0 to max_eids - 1 do
    add "e";
    add (string_of_int i);
    (match einfo.(i) with
    | None -> add ":-"
    | Some info ->
        add (if info.Sm.i_initialized then ":I" else ":L");
        add (if info.Sm.i_has_measurement then "m" else "");
        add (if info.Sm.i_measuring then "c" else "");
        add (if info.Sm.i_locked then "k" else "");
        (match info.Sm.i_root_ppn with
        | None -> add ":r-"
        | Some ppn -> add (":r" ^ string_of_int ppn));
        add ":f";
        List.iter
          (fun ppn -> add ("." ^ string_of_int ppn))
          (List.sort compare info.Sm.i_free_pages);
        add ":v";
        List.iter
          (fun (vpn, ppn) ->
            add (Printf.sprintf ".%d>%d" vpn ppn))
          info.Sm.i_mappings;
        add ":t";
        List.iter (fun tid -> add ("." ^ tid_sym tid)) info.Sm.i_threads;
        add ":mb";
        (match Sm.mailbox_snapshot sm ~eid:(eid_addr w perm_e.(i)) with
        | None -> ()
        | Some slots ->
            slots
            |> List.map (fun (sender, full) ->
                   (match sender with
                   | Mailbox.From_os -> "os"
                   | Mailbox.From_enclave eid -> eid_sym eid)
                   ^ if full then "!" else "?")
            |> List.sort compare
            |> List.iter (fun s -> add ("." ^ s))));
    add ";"
  done;
  (* threads *)
  for j = 0 to max_tids - 1 do
    add "t";
    add (string_of_int j);
    (match Sm.thread_info sm ~tid:(tid_addr w perm_t.(j)) with
    | None -> add ":-"
    | Some info ->
        (match info.Sm.i_owner with
        | None -> add ":o-"
        | Some eid -> add (":o" ^ eid_sym eid));
        (match info.Sm.i_offered with
        | None -> add ":f-"
        | Some eid -> add (":f" ^ eid_sym eid));
        (match info.Sm.i_phase with
        | `Available -> add ":A"
        | `Assigned -> add ":S"
        | `Running core -> add (":R" ^ string_of_int core));
        add (if info.Sm.i_has_aex then ":x" else ":");
        add (if info.Sm.i_thread_locked then "k" else ""));
    add ";"
  done;
  (* metadata slots, rendered symbolically then re-sorted so the
     renaming cannot reorder them *)
  add "s";
  Sm.metadata_slots sm
  |> List.map (fun (addr, len) ->
         let sym =
           let rec eid i =
             if i >= max_eids then None
             else if eid_addr w perm_e.(i) = addr then
               Some ("e" ^ string_of_int i)
             else eid (i + 1)
           and tidf j =
             if j >= max_tids then None
             else if tid_addr w perm_t.(j) = addr then
               Some ("t" ^ string_of_int j)
             else tidf (j + 1)
           in
           match eid 0 with
           | Some s -> s
           | None -> (
               match tidf 0 with
               | Some s -> s
               | None -> "a" ^ string_of_int addr)
         in
         Printf.sprintf "%s+%d" sym len)
  |> List.sort compare
  |> List.iter (fun s -> add ("." ^ s));
  add ";";
  (* cores *)
  for c = 0 to config_cores w - 1 do
    let core = Hw.Machine.core w.w_machine c in
    add "c";
    add (string_of_int c);
    add (":" ^ domain_sym core.Hw.Machine.domain);
    add (if core.Hw.Machine.halted then ":h" else ":r");
    add (match core.Hw.Machine.satp_root with None -> ":-" | Some _ -> ":p");
    add (if core.Hw.Machine.quarantined then ":q" else "");
    add ";"
  done;
  (* held locks would violate quiescence; include them so a leak is a
     distinct (and flagged) state rather than an invisible one *)
  add "l";
  List.iter (fun l -> add ("." ^ l)) (List.sort compare (Sm.held_locks sm))

(* The identity-renaming encoding: enough for equality checks against
   the same world (transaction check), avoids the digest cost. *)
let ident_encoding w buf =
  encode w [| 0; 1 |] [| 0; 1 |] buf;
  Buffer.contents buf

let canonical_key w buf =
  let best = ref None in
  List.iter
    (fun pe ->
      List.iter
        (fun pt ->
          encode w pe pt buf;
          let s = Buffer.contents buf in
          match !best with
          | Some b when b <= s -> ()
          | Some _ | None -> best := Some s)
        perms2)
    perms2;
  Digest.to_hex (Digest.string (Option.get !best))

(* ------------------------------------------------------------------ *)
(* Findings. *)

type finding_kind =
  | K_catalog of string * backend
  | K_divergence
  | K_transactional of backend

type finding = {
  f_kind : finding_kind;
  f_detail : string;
  f_action : action;
  f_prefix : action list;
  f_min : action list;
}

let finding_id f =
  match f.f_kind with
  | K_catalog (id, _) -> id
  | K_divergence -> "diff.verdict"
  | K_transactional _ -> "api.transactional"

let finding_path f = f.f_min @ [ f.f_action ]
let max_findings = 32

(* ------------------------------------------------------------------ *)
(* Replay plumbing shared by the explorer, the minimizer and the CLI. *)

(* The warm-start scenario. From raw boot, the only enabled actions are
   [Create] and [Block_mem]: everything of interest sits behind the same
   linear block/clean/grant/page-table ceremony, which would consume the
   entire depth budget at every exploration. The canonical scenario runs
   it once and leaves the machine at the edge of the dense region: one
   initialized enclave with a thread ready to enter, one enclave still
   loading, one memory group owned, one up for grabs. *)
let bringup =
  [
    Create 0;
    Block_mem 0;
    Clean_mem 0;
    Grant_mem (0, 0);
    Alloc_pt (0, 2);
    Alloc_pt (0, 1);
    Alloc_pt (0, 0);
    Load_page (0, 0);
    Load_thread (0, 0);
    Init 0;
    Create 1;
    Block_mem 1;
    Clean_mem 1;
    Grant_mem (1, 1);
    Alloc_pt (1, 2);
    Alloc_pt (1, 1);
    Alloc_pt (1, 0);
    Load_thread (1, 1);
  ]

let initial_path config = if config.warm then bringup else []

(* Build a fresh world and replay the initial path into it, insisting
   the monitor accepts every bring-up step: a rejected one would skew
   every explored path from a state nobody asked for. *)
let new_world config backend =
  let w = make_world config backend in
  List.iter
    (fun a ->
      match apply w a with
      | Ok () -> ()
      | Error e ->
          invalid_arg
            (Printf.sprintf "Modelcheck: bring-up action %s rejected on %s: %s"
               (action_to_string a) (backend_name backend)
               (Api_error.to_string e)))
    (initial_path config);
  w

let build_worlds config path =
  let wa = new_world config config.backend in
  let wb =
    if config.diff then Some (new_world config (other_backend config.backend))
    else None
  in
  List.iter
    (fun a ->
      ignore (apply wa a);
      match wb with Some wb -> ignore (apply wb a) | None -> ())
    path;
  (wa, wb)

let violations_of w =
  Checker.run_all ~events:(Tel.Sink.events w.w_sink) w.w_sm

(* Does the finding's defect reproduce when [prefix] replaces the
   original path to the pre-state? The final action is pinned; only
   the prefix is delta-debugged. *)
let holds config kind final prefix =
  match kind with
  | K_catalog (id, backend) ->
      let w = new_world { config with diff = false } backend in
      List.iter (fun a -> ignore (apply w a)) prefix;
      ignore (apply w final);
      List.exists (fun v -> v.Report.id = id) (violations_of w)
  | K_divergence ->
      let wa = new_world config config.backend in
      let wb = new_world config (other_backend config.backend) in
      let in_sync =
        List.for_all
          (fun a -> verdict_tag (apply wa a) = verdict_tag (apply wb a))
          prefix
      in
      in_sync && verdict_tag (apply wa final) <> verdict_tag (apply wb final)
  | K_transactional backend ->
      let w = new_world { config with diff = false } backend in
      List.iter (fun a -> ignore (apply w a)) prefix;
      let buf = Buffer.create 1024 in
      let before = ident_encoding w buf in
      let v = apply w final in
      let buf2 = Buffer.create 1024 in
      let after = ident_encoding w buf2 in
      (match v with Ok () -> false | Error _ -> true) && before <> after

let minimize config f =
  let rec shrink prefix =
    let n = List.length prefix in
    let rec try_at i =
      if i >= n then prefix
      else
        let cand = List.filteri (fun j _ -> j <> i) prefix in
        if holds config f.f_kind f.f_action cand then shrink cand
        else try_at (i + 1)
    in
    try_at 0
  in
  { f with f_min = shrink f.f_prefix }

(* ------------------------------------------------------------------ *)
(* The action alphabet, in a fixed order (exploration is deterministic
   in the configuration alone). *)

let alphabet config =
  let es = List.init max_eids Fun.id in
  let ts = List.init max_tids Fun.id in
  let us = List.init config.units Fun.id in
  let cs = List.init config.cores Fun.id in
  let senders = S_os :: List.map (fun e -> S_enclave e) es in
  List.concat
    [
      List.map (fun e -> Create e) es;
      List.concat_map
        (fun e -> List.map (fun l -> Alloc_pt (e, l)) [ 2; 1; 0 ])
        es;
      List.concat_map
        (fun e -> List.map (fun i -> Load_page (e, i)) [ 0; 1; 2; 3 ])
        es;
      List.map (fun e -> Map_shared e) es;
      List.concat_map (fun e -> List.map (fun t -> Load_thread (e, t)) ts) es;
      List.map (fun e -> Init e) es;
      List.map (fun e -> Delete e) es;
      List.map (fun u -> Block_mem u) us;
      List.map (fun u -> Clean_mem u) us;
      List.concat_map (fun u -> List.map (fun e -> Grant_mem (u, e)) es) us;
      List.map (fun u -> Grant_mem_os u) us;
      List.concat_map (fun e -> List.map (fun u -> Accept_mem (e, u)) us) es;
      List.concat_map (fun t -> List.map (fun e -> Assign (t, e)) es) ts;
      List.concat_map (fun e -> List.map (fun t -> Accept_thread (e, t)) ts) es;
      List.concat_map
        (fun e -> List.map (fun t -> Release_thread (e, t)) ts)
        es;
      List.map (fun t -> Unassign t) ts;
      List.map (fun t -> Delete_thread t) ts;
      List.concat_map
        (fun e ->
          List.concat_map
            (fun t -> List.map (fun c -> Enter (e, t, c)) cs)
            ts)
        es;
      List.concat_map (fun e -> List.map (fun c -> Exit_enclave (e, c)) cs) es;
      List.map (fun c -> Aex c) cs;
      List.concat_map (fun e -> List.map (fun t -> Read_aex (e, t)) ts) es;
      List.concat_map
        (fun e -> List.map (fun s -> Accept_mail (e, s)) senders)
        es;
      List.concat_map
        (fun s -> List.map (fun e -> Send_mail (s, e)) es)
        senders;
      List.concat_map (fun e -> List.map (fun s -> Get_mail (e, s)) senders) es;
      (match config.inject with Some f -> [ Inject f ] | None -> []);
    ]

(* ------------------------------------------------------------------ *)
(* Exploration. *)

type summary = {
  s_backend : backend;
  s_depth : int;
  s_states : int;
  s_edges : int;
  s_dedup_hits : int;
  s_truncated : bool;
  s_state_digest : string;
  s_findings : finding list;
  s_findings_total : int;
}

let explore config =
  validate config;
  let acts = alphabet config in
  let buf = Buffer.create 2048 in
  let visited = Hashtbl.create 4096 in
  let queue = Queue.create () in
  let states = ref 0 in
  let edges = ref 0 in
  let dedup_hits = ref 0 in
  let truncated = ref false in
  let digest = ref "" in
  let findings = ref [] in
  let findings_total = ref 0 in
  let record kind detail action prefix =
    incr findings_total;
    Tel.Sink.incr_counter config.sink "modelcheck.findings";
    if List.length !findings < max_findings then
      findings :=
        {
          f_kind = kind;
          f_detail = detail;
          f_action = action;
          f_prefix = prefix;
          f_min = prefix;
        }
        :: !findings
  in
  let note_state key =
    Hashtbl.replace visited key ();
    incr states;
    digest := Digest.to_hex (Digest.string (!digest ^ key));
    Tel.Sink.incr_counter config.sink "modelcheck.states"
  in
  let check_state path wa wb =
    let report w =
      List.iter
        (fun v ->
          match (path : action list) with
          | [] -> ()
          | _ ->
              let prefix =
                List.filteri (fun i _ -> i < List.length path - 1) path
              in
              let final = List.nth path (List.length path - 1) in
              record
                (K_catalog (v.Report.id, w.w_backend))
                (Format.asprintf "%a" Report.pp v)
                final prefix)
        (violations_of w)
    in
    report wa;
    match wb with Some wb -> report wb | None -> ()
  in
  (* root *)
  let wa0, wb0 = build_worlds config [] in
  let root_key =
    canonical_key wa0 buf
    ^ match wb0 with Some wb -> "|" ^ canonical_key wb buf | None -> ""
  in
  note_state root_key;
  (* boot-state violations have no action to pin; report them verbatim *)
  let boot_violations w =
    List.iter
      (fun v ->
        record
          (K_catalog (v.Report.id, w.w_backend))
          (Format.asprintf "boot state: %a" Report.pp v)
          (Create 0) [])
      (violations_of w)
  in
  boot_violations wa0;
  (match wb0 with Some wb -> boot_violations wb | None -> ());
  Queue.add ([], 0) queue;
  while not (Queue.is_empty queue) do
    let path, d = Queue.pop queue in
    if d < config.depth && not !truncated then begin
      let wa = ref (fst (build_worlds { config with diff = false } path)) in
      let wb =
        ref
          (if config.diff then
             Some
               (fst
                  (build_worlds
                     { config with diff = false;
                       backend = other_backend config.backend }
                     path))
           else None)
      in
      let ident_a = ref (ident_encoding !wa buf) in
      let ident_b =
        ref
          (match !wb with
          | Some w -> Some (ident_encoding w buf)
          | None -> None)
      in
      let rebuild () =
        let na, _ = build_worlds { config with diff = false } path in
        wa := na;
        ident_a := ident_encoding na buf;
        match !wb with
        | None -> ()
        | Some _ ->
            let nb, _ =
              build_worlds
                { config with diff = false;
                  backend = other_backend config.backend }
                path
            in
            wb := Some nb;
            ident_b := Some (ident_encoding nb buf)
      in
      List.iter
        (fun a ->
          if not !truncated then begin
            incr edges;
            let va = apply !wa a in
            let vb = match !wb with Some w -> Some (apply w a) | None -> None in
            let diverged =
              match vb with
              | Some vb when verdict_tag va <> verdict_tag vb ->
                  record K_divergence
                    (Printf.sprintf "%s: %s=%s, %s=%s" (action_to_string a)
                       (backend_name config.backend)
                       (verdict_to_string va)
                       (backend_name (other_backend config.backend))
                       (verdict_to_string vb))
                    a path;
                  true
              | Some _ | None -> false
            in
            if diverged then rebuild ()
            else
              match va with
              | Error _ ->
                  (* rejected on both sides: the transaction guarantee
                     says no observable state changed *)
                  let now_a = ident_encoding !wa buf in
                  let tx_broken_a = now_a <> !ident_a in
                  if tx_broken_a then
                    record
                      (K_transactional config.backend)
                      (Printf.sprintf "%s: rejected call mutated state"
                         (action_to_string a))
                      a path;
                  let tx_broken_b =
                    match (!wb, !ident_b) with
                    | Some w, Some ib ->
                        let now_b = ident_encoding w buf in
                        if now_b <> ib then begin
                          record
                            (K_transactional (other_backend config.backend))
                            (Printf.sprintf "%s: rejected call mutated state"
                               (action_to_string a))
                            a path;
                          true
                        end
                        else false
                    | _ -> false
                  in
                  if tx_broken_a || tx_broken_b then rebuild ()
              | Ok () ->
                  let key =
                    canonical_key !wa buf
                    ^
                    match !wb with
                    | Some w -> "|" ^ canonical_key w buf
                    | None -> ""
                  in
                  if Hashtbl.mem visited key then begin
                    incr dedup_hits;
                    Tel.Sink.incr_counter config.sink "modelcheck.dedup_hits"
                  end
                  else if !states >= config.max_states then truncated := true
                  else begin
                    note_state key;
                    let path' = path @ [ a ] in
                    check_state path' !wa !wb;
                    if d + 1 < config.depth then Queue.add (path', d + 1) queue
                  end;
                  rebuild ()
          end)
        acts
    end
  done;
  let findings = List.rev_map (minimize config) !findings in
  {
    s_backend = config.backend;
    s_depth = config.depth;
    s_states = !states;
    s_edges = !edges;
    s_dedup_hits = !dedup_hits;
    s_truncated = !truncated;
    s_state_digest = !digest;
    s_findings = List.rev findings;
    s_findings_total = !findings_total;
  }

(* ------------------------------------------------------------------ *)
(* Replay. *)

type replay_step = {
  r_action : action;
  r_verdict : string;
  r_verdict_other : string option;
}

let replay config path =
  validate config;
  let wa = new_world config config.backend in
  let wb =
    if config.diff then Some (new_world config (other_backend config.backend))
    else None
  in
  let steps =
    List.map
      (fun a ->
        let va = apply wa a in
        let vb = match wb with Some w -> Some (apply w a) | None -> None in
        {
          r_action = a;
          r_verdict = verdict_to_string va;
          r_verdict_other = Option.map verdict_to_string vb;
        })
      path
  in
  (steps, violations_of wa)

let replay_command config path =
  Printf.sprintf
    "sanctorum_demo modelcheck --backend %s --cores %d --units %d%s%s --replay \
     %s"
    (backend_name config.backend)
    config.cores config.units
    (if config.diff then " --diff" else "")
    (if config.warm then "" else " --cold")
    (path_to_string path)
