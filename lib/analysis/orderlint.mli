(** The API-orderliness lint.

    A pure pass over a telemetry trace that flags illegal SM API
    sequences independent of monitor state: double create
    ([order.create]), init before create or double init ([order.init]),
    enter before init ([order.enter]), exit without enter
    ([order.exit]), destroy while entered ([order.destroy]), double
    grant without free ([order.grant]), AEX resume with no AEX pending
    ([order.aex-resume]), and mailbox receive without a matching send
    ([order.mailbox]). *)

val ids : string list
(** Every invariant id this pass can report, in catalog order. *)

val check : Sanctorum_telemetry.Event.t list -> Report.violation list
