(** Bounded exhaustive model checking of the SM API (DESIGN.md §10).

    The monitor's public API is treated as a labeled transition
    system: a state is one freshly booted small-geometry machine plus
    every mutation a sequence of API calls has made to it; an action
    is one API call drawn from a small closed parameter domain (≤2
    enclaves, ≤2 threads, ≤2 memory-unit groups, 1–2 cores). From the
    initial state — boot, plus the {!bringup} scenario unless the
    configuration asks for a cold start — {!explore} enumerates every
    action at every state up
    to a depth bound, deduplicating states by a canonical hash that
    quotients out enclave/thread naming (symmetry reduction) and
    omitting read-only probes from the alphabet (the trivial
    partial-order reduction: probes commute with everything, so they
    run as checks at every state instead of branching it).

    At every deduplicated state the full analysis catalog runs —
    {!Checker.snapshot} on the monitor and the trace passes over the
    path's telemetry — and, with [diff] on, the same action sequence
    runs on the other platform backend in lockstep, demanding
    verdict-identical behavior: Sanctum and Keystone may differ in
    cost, never in accept/reject semantics. Any violation, verdict
    divergence, or failed-call state mutation (the monitor's
    transaction guarantee) becomes a {!finding}, is greedily
    delta-debugged to a minimal action sequence, and can be replayed
    with [sanctorum_demo modelcheck --replay].

    States are rebuilt by replay: every API call is deterministic, the
    boot identity is cached, and the geometry is small, so replaying a
    ≤k-action prefix is cheaper than deep-copying a [Sm.t]. *)

type backend = Sanctum | Keystone

val backend_name : backend -> string
val other_backend : backend -> backend

(** A seeded fault, mirroring the [Testbed.corrupt_*] injectors. When
    armed via {!config}[.inject] it joins the action alphabet as an
    [Inject] action, so the explorer must both reach it and minimize
    through it. *)
type fault =
  | Corrupt_owner_map of int
      (** rewrite a unit group's hardware owner to a foreign domain
          behind the resource map's back ([own.exclusive]) *)
  | Corrupt_lifecycle of int  (** flip enclave [i]'s lifecycle state *)
  | Corrupt_thread of int * int
      (** mark thread [i] running on a core without entering *)
  | Corrupt_meta  (** claim a metadata slot outside the window *)

(** One abstract API action. Indices are small ordinals into the fixed
    parameter domain, not raw eids/tids/rids: the concrete metadata
    addresses and backend-specific resource ids are derived per
    machine, which is what lets one action sequence replay on both
    backends. *)
type action =
  | Create of int
  | Alloc_pt of int * int  (** enclave, level (2 = root) *)
  | Load_page of int * int  (** enclave, page index inside evrange *)
  | Map_shared of int
  | Load_thread of int * int  (** enclave, thread *)
  | Init of int
  | Delete of int
  | Block_mem of int  (** unit group *)
  | Clean_mem of int
  | Grant_mem of int * int  (** unit group, enclave *)
  | Grant_mem_os of int
  | Accept_mem of int * int  (** enclave, unit group *)
  | Assign of int * int  (** thread, enclave *)
  | Accept_thread of int * int  (** enclave, thread *)
  | Release_thread of int * int
  | Unassign of int
  | Delete_thread of int
  | Enter of int * int * int  (** enclave, thread, core *)
  | Exit_enclave of int * int  (** enclave, core *)
  | Aex of int  (** core: deliver an interrupt to a running enclave *)
  | Read_aex of int * int  (** enclave, thread *)
  | Accept_mail of int * sender  (** recipient enclave, sender *)
  | Send_mail of sender * int  (** sender, recipient enclave *)
  | Get_mail of int * sender
  | Inject of fault

and sender = S_os | S_enclave of int

val fault_to_string : fault -> string
(** [owner-map:U], [lifecycle:E], [thread:T:C], [meta] — the
    [--inject] flag syntax. *)

val fault_of_string : string -> (fault, string) result
val action_to_string : action -> string
val action_of_string : string -> (action, string) result

val path_to_string : action list -> string
(** Comma-separated {!action_to_string} tokens. *)

val path_of_string : string -> (action list, string) result

type config = {
  backend : backend;
  depth : int;
  cores : int;  (** 1–2 *)
  units : int;  (** grantable unit groups exposed to actions, 1–4 *)
  diff : bool;  (** run the other backend in lockstep *)
  warm : bool;
      (** start from boot + {!bringup} instead of raw boot. From raw
          boot every interesting state sits behind the same
          block/clean/grant/map ceremony, so a small depth bound only
          ever re-explores bring-up; the warm start spends the depth
          budget on the dense region instead. [--cold] for the
          ceremony itself. *)
  inject : fault option;
  max_states : int;  (** exploration safety valve *)
  sink : Sanctorum_telemetry.Sink.t;
      (** receives [modelcheck.states], [modelcheck.dedup_hits] and
          [modelcheck.findings] counters *)
}

val default_config : config
(** Sanctum, depth 4, 1 core, 2 unit groups, no diff, warm, no fault,
    [max_states] 200_000, null sink. *)

val bringup : action list
(** The canonical warm-start scenario: enclave 0 provisioned (memory
    group 0), fully page-tabled, one data page, thread 0 loaded,
    initialized; enclave 1 created and still loading; memory group 1
    cleaned to [Available]. Every action must be accepted — {!explore}
    and {!replay} raise [Invalid_argument] if the monitor rejects one
    (that would silently skew every path). *)

type finding_kind =
  | K_catalog of string * backend
      (** an analysis-catalog violation id observed on [backend] *)
  | K_divergence  (** the final action's verdicts differ across backends *)
  | K_transactional of backend
      (** a failed call mutated observable state on [backend] *)

type finding = {
  f_kind : finding_kind;
  f_detail : string;
  f_action : action;  (** the action that exposed it *)
  f_prefix : action list;  (** path to the pre-state, as discovered *)
  f_min : action list;  (** delta-debugged prefix (= [f_prefix] if not run) *)
}

val finding_id : finding -> string
(** The catalog id, ["diff.verdict"], or ["api.transactional"]. *)

val finding_path : finding -> action list
(** [f_min @ [f_action]] — the minimized replayable sequence. *)

type summary = {
  s_backend : backend;
  s_depth : int;
  s_states : int;  (** deduplicated states reached (including boot) *)
  s_edges : int;  (** action applications tried *)
  s_dedup_hits : int;  (** successor states already visited *)
  s_truncated : bool;  (** hit [max_states] before exhausting depth *)
  s_state_digest : string;
      (** hex digest folded over every state hash in discovery order;
          equal digests mean equal explorations *)
  s_findings : finding list;  (** minimized, capped at {!max_findings} *)
  s_findings_total : int;  (** occurrences before the cap *)
}

val max_findings : int

val explore : config -> summary
(** Breadth-first bounded exploration. Deterministic in [config]:
    same parameters, same summary. Raises [Invalid_argument] on an
    out-of-range geometry (depth 0–12, cores 1–2, units 1–4). *)

type replay_step = {
  r_action : action;
  r_verdict : string;  (** rendered verdict on [config.backend] *)
  r_verdict_other : string option;  (** other backend when [diff] *)
}

val replay :
  config -> action list -> replay_step list * Report.violation list
(** Execute one action sequence from the configuration's initial state
    (the {!bringup} prefix is applied first when [warm], and is not
    part of the reported steps) and return per-step verdicts plus the
    full catalog report on the final state (primary backend). *)

val replay_command : config -> action list -> string
(** The [sanctorum_demo modelcheck --replay ...] command line that
    reproduces this sequence under this configuration. *)
