(* The snapshot pass: given a quiescent monitor (between API calls),
   cross-check the monitor's resource/enclave/thread metadata against
   the platform owner map and the machine's architectural and
   microarchitectural state. Every check is read-only. *)

module Hw = Sanctorum_hw
module Pf = Sanctorum_platform
module Sm = Sanctorum.Sm
module Resource = Sanctorum.Resource

let page = Hw.Phys_mem.page_size

(* Every id [check] can report, in catalog order. The catalog-sync
   test holds this list, Checker.catalog and the DESIGN.md §4.1 table
   to exact agreement. *)
let ids =
  [
    "own.exclusive";
    "own.sm-reserved";
    "pt.confined";
    "pt.no-alias";
    "tlb.no-stale";
    "cache.no-residue";
    "enclave.lifecycle";
    "thread.lifecycle";
    "core.domain";
    "core.quarantine";
    "meta.slots";
    "lock.quiescent";
  ]

type ctx = {
  sm : Sm.t;
  pf : Pf.Platform.t;
  machine : Hw.Machine.t;
  enclaves : Sm.enclave_info list;
  mutable out : Report.violation list;
}

let flag ctx ?severity id ~subject detail =
  ctx.out <- Report.v ?severity id ~subject detail :: ctx.out

let domain_name ctx d =
  if d = Hw.Trap.domain_sm then "sm"
  else if d = Hw.Trap.domain_untrusted then "untrusted"
  else
    match
      List.find_opt (fun (e : Sm.enclave_info) -> e.i_domain = d) ctx.enclaves
    with
    | Some e -> Printf.sprintf "enclave:0x%x" e.i_eid
    | None -> Printf.sprintf "domain:%d" d

(* ------------------------------------------------------------------ *)
(* own.exclusive / own.sm-reserved: the three views of memory
   ownership — the Fig. 2 resource state machine, the platform owner
   map, and (through it) the isolation hardware — must agree on every
   allocation unit, and the monitor's own memory is never given away. *)

let check_ownership ctx =
  let unit_bytes = Sm.memory_unit_bytes ctx.sm in
  let sm_units = Pf.Platform.sm_memory_bytes / unit_bytes in
  for rid = 0 to Sm.memory_units ctx.sm - 1 do
    let subject = Printf.sprintf "unit %d" rid in
    match Sm.resource_state ctx.sm Resource.Memory_resource ~rid with
    | Error e ->
        flag ctx "own.exclusive" ~subject
          (Printf.sprintf "resource state unreadable: %s"
             (Sanctorum.Api_error.to_string e))
    | Ok state ->
        let expected_hw =
          match state with
          | Resource.Owned d | Resource.Blocked d -> d
          | Resource.Available | Resource.Offered _ ->
              Hw.Trap.domain_untrusted
        in
        let lo = rid * unit_bytes in
        let rec scan paddr =
          if paddr < lo + unit_bytes then begin
            let hw = ctx.pf.Pf.Platform.owner_at ~paddr in
            if hw <> expected_hw then
              flag ctx "own.exclusive" ~subject
                (Printf.sprintf
                   "resource map says %s but hardware owner at 0x%x is %s"
                   (domain_name ctx expected_hw)
                   paddr (domain_name ctx hw))
            else scan (paddr + page)
          end
        in
        scan lo;
        if rid < sm_units && state <> Resource.Owned Hw.Trap.domain_sm then
          flag ctx "own.sm-reserved" ~subject
            (Format.asprintf
               "monitor-reserved unit is %a, expected owned by the monitor"
               Resource.pp_state state)
  done

(* ------------------------------------------------------------------ *)
(* pt.confined / pt.no-alias: a full Sv39 walk of every enclave's
   private page tables. Table pages and evrange leaves must live in
   the enclave's own domain; leaves outside evrange are shared windows
   and must point at untrusted memory; no frame inside evrange is
   mapped twice, within or across enclaves (§V-C, the Sanctum
   page-walk invariant). *)

let check_page_tables ctx =
  let mem = Hw.Machine.mem ctx.machine in
  (* (ppn, eid, vaddr) of every evrange leaf, for alias detection *)
  let leaves : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
  let walk_enclave (e : Sm.enclave_info) root =
    let subject = Printf.sprintf "enclave 0x%x" e.i_eid in
    let visited = Hashtbl.create 16 in
    let in_evrange vaddr =
      vaddr >= e.i_evbase && vaddr < e.i_evbase + e.i_evsize
    in
    let check_leaf ~vaddr ppn =
      let paddr = Hw.Phys_mem.page_base ppn in
      let owner = ctx.pf.Pf.Platform.owner_at ~paddr in
      if in_evrange vaddr then begin
        if owner <> e.i_domain then
          flag ctx "pt.confined" ~subject
            (Printf.sprintf
               "evrange mapping 0x%x -> frame 0x%x lies in %s memory" vaddr
               paddr (domain_name ctx owner));
        match Hashtbl.find_opt leaves ppn with
        | Some (other_eid, other_vaddr) ->
            flag ctx "pt.no-alias" ~subject
              (Printf.sprintf
                 "frame 0x%x mapped at 0x%x and (enclave 0x%x) 0x%x" paddr
                 vaddr other_eid other_vaddr)
        | None -> Hashtbl.replace leaves ppn (e.i_eid, vaddr)
      end
      else if owner <> Hw.Trap.domain_untrusted && owner <> e.i_domain then
        (* a window the OS later granted to this enclave is harmless;
           monitor or foreign-enclave memory is a breach *)
        flag ctx "pt.confined" ~subject
          (Printf.sprintf
             "shared-window mapping 0x%x -> frame 0x%x lies in %s memory"
             vaddr paddr (domain_name ctx owner))
    in
    let rec walk_table ppn ~level ~vpn_prefix =
      if Hashtbl.mem visited ppn then
        flag ctx "pt.confined" ~subject
          (Printf.sprintf "page-table cycle through table frame 0x%x"
             (Hw.Phys_mem.page_base ppn))
      else begin
        Hashtbl.replace visited ppn ();
        let table_paddr = Hw.Phys_mem.page_base ppn in
        let owner = ctx.pf.Pf.Platform.owner_at ~paddr:table_paddr in
        if owner <> e.i_domain then
          flag ctx "pt.confined" ~subject
            (Printf.sprintf "level-%d table frame 0x%x lies in %s memory"
               level table_paddr (domain_name ctx owner));
        for idx = 0 to Hw.Page_table.entries_per_table - 1 do
          let pte =
            Hw.Phys_mem.read_u64 mem
              (table_paddr + (idx * Hw.Page_table.pte_size))
          in
          match Hw.Page_table.decode_pte pte with
          | Error () -> ()
          | Ok (child_ppn, _perms, is_leaf) ->
              let vpn = (vpn_prefix lsl 9) lor idx in
              if is_leaf then
                (* superpage leaves resolve to their base frame; the
                   loader only installs 4 KiB leaves *)
                check_leaf ~vaddr:(vpn lsl ((level * 9) + 12)) child_ppn
              else if level = 0 then
                flag ctx "pt.confined" ~subject
                  (Printf.sprintf
                     "level-0 entry at table 0x%x index %d is a pointer"
                     table_paddr idx)
              else walk_table child_ppn ~level:(level - 1) ~vpn_prefix:vpn
        done
      end
    in
    walk_table root ~level:(Hw.Page_table.levels - 1) ~vpn_prefix:0
  in
  List.iter
    (fun (e : Sm.enclave_info) ->
      match e.i_root_ppn with
      | Some root -> walk_enclave e root
      | None -> ())
    ctx.enclaves

(* ------------------------------------------------------------------ *)
(* tlb.no-stale / cache.no-residue: after every domain transition and
   region clean the monitor flushes time-multiplexed state, so a
   quiescent machine never holds a translation or a private cache line
   for memory a core's current domain does not own (§IV-B2, §VII-A).
   The shared L2 may legitimately hold lines of any live domain (that
   is Keystone's documented side channel), but never of the monitor's
   own memory, which no core can access. *)

let check_residue ctx =
  Array.iter
    (fun (c : Hw.Machine.core) ->
      if c.Hw.Machine.quarantined then
        (* A core quarantined after a shootdown timeout is unreachable:
           its stale TLB and L1 contents can never be observed, so they
           are exempt here ([check_cores] insists the core is halted). *)
        ()
      else
      let subject = Printf.sprintf "core %d" c.Hw.Machine.id in
      let allowed owner =
        owner = c.Hw.Machine.domain || owner = Hw.Trap.domain_untrusted
      in
      Hw.Tlb.iter_entries c.Hw.Machine.tlb (fun ~vpn ~ppn ~perms:_ ->
          let paddr = Hw.Phys_mem.page_base ppn in
          let owner = ctx.pf.Pf.Platform.owner_at ~paddr in
          if not (allowed owner) then
            flag ctx "tlb.no-stale" ~subject
              (Printf.sprintf
                 "TLB entry 0x%x -> 0x%x survives into %s context but frame \
                  is owned by %s"
                 (vpn * page) paddr
                 (domain_name ctx c.Hw.Machine.domain)
                 (domain_name ctx owner)));
      Hw.Cache.iter_tags c.Hw.Machine.l1 (fun ~set:_ ~paddr ->
          let owner = ctx.pf.Pf.Platform.owner_at ~paddr in
          if not (allowed owner) then
            flag ctx "cache.no-residue" ~subject
              (Printf.sprintf
                 "L1 line tags 0x%x (owned by %s) in %s context" paddr
                 (domain_name ctx owner)
                 (domain_name ctx c.Hw.Machine.domain))))
    (Hw.Machine.cores ctx.machine);
  Hw.Cache.iter_tags (Hw.Machine.l2 ctx.machine) (fun ~set:_ ~paddr ->
      if paddr < Pf.Platform.sm_memory_bytes then
        flag ctx "cache.no-residue" ~subject:"L2"
          (Printf.sprintf "L2 line tags monitor memory at 0x%x" paddr))

(* ------------------------------------------------------------------ *)
(* enclave.lifecycle / thread.lifecycle / core.domain: the Fig. 3/4
   state machines and the cores' domain registers must be mutually
   consistent — e.g. a thread can only be running in an initialized
   enclave, on a core whose domain register agrees. *)

let check_lifecycles ctx =
  List.iter
    (fun (e : Sm.enclave_info) ->
      let subject = Printf.sprintf "enclave 0x%x" e.i_eid in
      if e.i_initialized then begin
        if not e.i_has_measurement then
          flag ctx "enclave.lifecycle" ~subject
            "initialized but the measurement was never finalized";
        if e.i_measuring then
          flag ctx "enclave.lifecycle" ~subject
            "initialized but a measurement context is still open";
        if e.i_root_ppn = None then
          flag ctx "enclave.lifecycle" ~subject
            "initialized without a page-table root"
      end
      else begin
        if e.i_has_measurement then
          flag ctx "enclave.lifecycle" ~subject
            "loading but already carries a final measurement";
        if not e.i_measuring then
          flag ctx "enclave.lifecycle" ~subject
            "loading but the measurement context is closed"
      end)
    ctx.enclaves;
  let running_on : (int, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun tid ->
      match Sm.thread_info ctx.sm ~tid with
      | None -> ()
      | Some th ->
          let subject = Printf.sprintf "thread 0x%x" tid in
          let owner_enclave () =
            match th.Sm.i_owner with
            | None ->
                flag ctx "thread.lifecycle" ~subject
                  "assigned or running without an owning enclave";
                None
            | Some eid -> (
                match
                  List.find_opt
                    (fun (e : Sm.enclave_info) -> e.i_eid = eid)
                    ctx.enclaves
                with
                | None ->
                    flag ctx "thread.lifecycle" ~subject
                      (Printf.sprintf "owned by dead enclave 0x%x" eid);
                    None
                | Some e -> Some e)
          in
          (match th.Sm.i_phase with
          | `Available -> ()
          | `Assigned -> ignore (owner_enclave ())
          | `Running core -> (
              (match Hashtbl.find_opt running_on core with
              | Some other ->
                  flag ctx "thread.lifecycle" ~subject
                    (Printf.sprintf
                       "running on core %d alongside thread 0x%x" core other)
              | None -> Hashtbl.replace running_on core tid);
              match owner_enclave () with
              | None -> ()
              | Some e ->
                  if not e.i_initialized then
                    flag ctx "thread.lifecycle" ~subject
                      (Printf.sprintf
                         "running in enclave 0x%x which is still loading"
                         e.i_eid);
                  if core < 0 || core >= Hw.Machine.core_count ctx.machine
                  then
                    flag ctx "thread.lifecycle" ~subject
                      (Printf.sprintf "running on nonexistent core %d" core)
                  else
                    let c = Hw.Machine.core ctx.machine core in
                    if c.Hw.Machine.domain <> e.i_domain then
                      flag ctx "thread.lifecycle" ~subject
                        (Printf.sprintf
                           "running on core %d whose domain is %s, not %s"
                           core
                           (domain_name ctx c.Hw.Machine.domain)
                           (domain_name ctx e.i_domain)))))
    (Sm.thread_ids ctx.sm)

let check_cores ctx =
  Array.iter
    (fun (c : Hw.Machine.core) ->
      let subject = Printf.sprintf "core %d" c.Hw.Machine.id in
      let d = c.Hw.Machine.domain in
      if c.Hw.Machine.quarantined then begin
        (* A quarantined core may hold a stale domain register (it was
           unreachable when its domain died), but it must be fenced:
           halted, with no interrupt that could ever wake it. *)
        if not c.Hw.Machine.halted then
          flag ctx "core.quarantine" ~subject
            "quarantined core is not halted";
        if not (Queue.is_empty c.Hw.Machine.pending_interrupts) then
          flag ctx "core.quarantine" ~subject
            "quarantined core still has pending interrupts";
        if c.Hw.Machine.timer_cmp <> None then
          flag ctx "core.quarantine" ~subject
            "quarantined core still has an armed timer"
      end
      else if d = Hw.Trap.domain_sm || d = Hw.Trap.domain_untrusted then ()
      else
        match
          List.find_opt
            (fun (e : Sm.enclave_info) -> e.i_domain = d)
            ctx.enclaves
        with
        | None ->
            flag ctx "core.domain" ~subject
              (Printf.sprintf "domain register holds dead domain %d" d)
        | Some e ->
            if c.Hw.Machine.satp_root <> e.i_root_ppn then
              flag ctx "core.domain" ~subject
                (Printf.sprintf
                   "inside enclave 0x%x but satp does not hold its root"
                   e.i_eid))
    (Hw.Machine.cores ctx.machine)

(* ------------------------------------------------------------------ *)
(* meta.slots: enclave/thread metadata slots live inside the monitor's
   metadata window and never overlap (§V-B). *)

let check_metadata ctx =
  let base = Sm.metadata_base ctx.sm and limit = Sm.metadata_limit ctx.sm in
  let rec go = function
    | [] -> ()
    | (addr, len) :: rest ->
        let subject = Printf.sprintf "slot 0x%x" addr in
        if len <= 0 then
          flag ctx "meta.slots" ~subject "slot has non-positive length"
        else if addr < base || addr + len > limit then
          flag ctx "meta.slots" ~subject
            (Printf.sprintf
               "slot [0x%x, 0x%x) escapes the metadata window [0x%x, 0x%x)"
               addr (addr + len) base limit)
        else begin
          (match rest with
          | (next, _) :: _ when next < addr + len ->
              flag ctx "meta.slots" ~subject
                (Printf.sprintf "slot overlaps the slot at 0x%x" next)
          | _ -> ());
          go rest
        end
  in
  go (Sm.metadata_slots ctx.sm)

(* ------------------------------------------------------------------ *)
(* lock.quiescent: between API transactions no fine-grained lock may
   remain held — a held lock here is a leak that would deadlock the
   next transaction into Concurrent_call forever (§V-A). *)

let check_locks ctx =
  List.iter
    (fun name ->
      flag ctx "lock.quiescent" ~subject:name
        "lock is still held between API calls")
    (Sm.held_locks ctx.sm)

let check sm =
  let ctx =
    {
      sm;
      pf = Sm.platform sm;
      machine = Sm.machine sm;
      enclaves =
        List.filter_map (fun eid -> Sm.enclave_info sm ~eid) (Sm.enclaves sm);
      out = [];
    }
  in
  check_ownership ctx;
  check_page_tables ctx;
  check_residue ctx;
  check_lifecycles ctx;
  check_cores ctx;
  check_metadata ctx;
  check_locks ctx;
  List.rev ctx.out
