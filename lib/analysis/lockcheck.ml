(* The lock-discipline analyzer: a sanitizer-style lockset pass over
   the telemetry event stream. The monitor's combinators emit
   [Lock_acquired]/[Lock_released] around every transaction and
   [Guarded_write] at each guarded mutation, so the trace carries
   enough structure to detect guarded writes outside their lock, locks
   leaking across an API return, and lock-order inversions — without
   any knowledge of the monitor's internals. *)

module Event = Sanctorum_telemetry.Event

(* Every id [check] can report, in catalog order (see
   Invariants.ids). *)
let ids = [ "lock.leak"; "lock.guard"; "lock.order" ]

(* Lock classes define the global acquisition order the monitor is
   expected to respect: resource < enclave < thread. An inversion is a
   cycle in the observed class-order graph. *)
let lock_class name =
  match String.index_opt name ':' with
  | Some i -> String.sub name 0 i
  | None -> name

type state = {
  mutable held : (string * int) list;  (* lock name, seq acquired; LIFO *)
  edges : (string * string, string * string * int) Hashtbl.t;
      (* class edge -> (witness locks, seq) of first observation *)
  mutable out : Report.violation list;
}

let flag st ?severity id ~subject detail =
  st.out <- Report.v ?severity id ~subject detail :: st.out

let on_acquire st ~seq name =
  if List.mem_assoc name st.held then
    flag st "lock.leak" ~subject:name
      (Printf.sprintf "re-acquired while already held (event #%d)" seq)
  else begin
    List.iter
      (fun (outer, _) ->
        let edge = (lock_class outer, lock_class name) in
        if not (Hashtbl.mem st.edges edge) then
          Hashtbl.replace st.edges edge (outer, name, seq))
      st.held;
    st.held <- (name, seq) :: st.held
  end

let on_release st ~seq name =
  if List.mem_assoc name st.held then
    st.held <- List.remove_assoc name st.held
  else
    flag st "lock.leak" ~subject:name
      (Printf.sprintf "released but never acquired (event #%d)" seq)

let on_guarded_write st ~seq ~lock ~field =
  if not (List.mem_assoc lock st.held) then
    flag st "lock.guard" ~subject:lock
      (Printf.sprintf "field [%s] written without holding the lock (event #%d)"
         field seq)

(* An API call returned: every lock still held leaked across the
   transaction boundary. Report each once and forget it so one leak
   does not re-fire on every later call. *)
let on_api_return st ~seq api =
  List.iter
    (fun (name, acquired) ->
      flag st "lock.leak" ~subject:name
        (Printf.sprintf
           "acquired at event #%d still held when [%s] returned (event #%d)"
           acquired api seq))
    st.held;
  st.held <- []

let check_order st =
  (* Transitive closure over the small class graph, then flag each
     observed edge that participates in a cycle. *)
  let classes =
    Hashtbl.fold (fun (a, b) _ acc -> a :: b :: acc) st.edges []
    |> List.sort_uniq compare
  in
  let reach = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace reach (c, c) ()) classes;
  Hashtbl.iter (fun e _ -> Hashtbl.replace reach e ()) st.edges;
  List.iter
    (fun k ->
      List.iter
        (fun i ->
          List.iter
            (fun j ->
              if Hashtbl.mem reach (i, k) && Hashtbl.mem reach (k, j) then
                Hashtbl.replace reach (i, j) ())
            classes)
        classes)
    classes;
  Hashtbl.iter
    (fun (a, b) (outer, inner, seq) ->
      if a <> b && Hashtbl.mem reach (b, a) then
        flag st "lock.order" ~subject:(Printf.sprintf "%s -> %s" a b)
          (Printf.sprintf
             "acquired %s while holding %s (event #%d), inverting the \
              established %s -> %s order"
             inner outer seq b a))
    st.edges

let check events =
  let st = { held = []; edges = Hashtbl.create 8; out = [] } in
  List.iter
    (fun (e : Event.t) ->
      match e.payload with
      | Event.Lock_acquired { lock } -> on_acquire st ~seq:e.seq lock
      | Event.Lock_released { lock } -> on_release st ~seq:e.seq lock
      | Event.Guarded_write { lock; field } ->
          on_guarded_write st ~seq:e.seq ~lock ~field
      | Event.Sm_api { api; _ } -> on_api_return st ~seq:e.seq api
      | _ -> ())
    events;
  List.iter
    (fun (name, acquired) ->
      flag st "lock.leak" ~subject:name
        (Printf.sprintf
           "acquired at event #%d still held at the end of the trace" acquired))
    st.held;
  check_order st;
  List.rev st.out
