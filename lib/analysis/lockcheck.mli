(** The lock-discipline analyzer (§V-A).

    A lockset pass over a telemetry trace: tracks
    [Lock_acquired]/[Lock_released] pairs and checks that every
    [Guarded_write] happens under its lock ([lock.guard]), that no lock
    survives an API return or the end of the trace ([lock.leak]), and
    that the observed acquisition order between lock classes
    (resource, enclave, thread) is acyclic ([lock.order]). *)

val ids : string list
(** Every invariant id this pass can report, in catalog order. *)

val check : Sanctorum_telemetry.Event.t list -> Report.violation list
