(** Structured violation reports shared by every analysis pass.

    A violation names the invariant it breaks (a stable id from
    {!Checker.catalog}), how bad it is, the object it concerns and a
    human-readable witness. *)

type severity = Critical | Warning

type violation = {
  id : string;  (** catalog id, e.g. ["own.exclusive"] *)
  severity : severity;
  subject : string;  (** the object concerned, e.g. ["unit 12"] *)
  detail : string;  (** the witness: what was observed vs expected *)
}

val v : ?severity:severity -> string -> subject:string -> string -> violation
(** [v id ~subject detail] builds a violation; severity defaults to
    [Critical]. *)

val pp : Format.formatter -> violation -> unit

val pp_list : Format.formatter -> violation list -> unit
(** One violation per line; prints ["no violations"] when empty. *)
