(** The combined entry point for all three analysis passes.

    {!snapshot} runs the state-based invariant checker over a quiescent
    monitor; {!trace} runs the lock-discipline analyzer and the
    orderliness lint over a recorded telemetry stream; {!run_all}
    composes them. All passes are read-only and re-entrant from
    {!Sanctorum.Sm.set_post_api_hook}. *)

val catalog : (string * string) list
(** Every invariant id either pass can report, with a one-line
    description naming the paper section it encodes. *)

val snapshot : Sanctorum.Sm.t -> Report.violation list

val trace : Sanctorum_telemetry.Event.t list -> Report.violation list

val run_all :
  ?events:Sanctorum_telemetry.Event.t list ->
  Sanctorum.Sm.t ->
  Report.violation list
(** [run_all ~events sm] = [snapshot sm @ trace events]. [events]
    defaults to the empty trace (snapshot only). *)
