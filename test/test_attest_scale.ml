(* The attestation fast path, held to the old tier's bytes.

   Every optimization behind `bench attest` — Montgomery bignum
   arithmetic, fixed-base window tables, Strauss multi-scalar
   multiplication, batch signature verification, the monitor's
   measurement cache — is architecturally invisible: same signatures,
   same evidence, same measurements. These tests pin that equivalence
   three ways: differentially (qcheck, fast path vs the retained
   reference implementations), against known-answer vectors generated
   on the pre-optimization tier, and end to end (the batch attestation
   service, including forged evidence pinpointed through the batch
   fallback, and the churn workload exercising the measurement cache). *)

module C = Sanctorum_crypto
module Hex = Sanctorum_util.Hex
module M = Sanctorum.Measurement
module W = Sanctorum_workload.Workload
module Asv = Sanctorum_workload.Attest_service

let check = Alcotest.(check string)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let gen_bignum =
  QCheck2.Gen.(
    map
      (fun l ->
        C.Bignum.of_bytes_be (String.concat "" (List.map (String.make 1) l)))
      (list_size (int_range 0 40) char))

(* An odd modulus >= 3, the Montgomery precondition. *)
let gen_odd_modulus =
  QCheck2.Gen.map
    (fun b ->
      let m = if C.Bignum.is_even b then C.Bignum.add b C.Bignum.one else b in
      if C.Bignum.compare m (C.Bignum.of_int 3) < 0 then C.Bignum.of_int 3
      else m)
    gen_bignum

let qcheck_mont_mul =
  QCheck2.Test.make ~name:"mont mod_mul = schoolbook mod_mul" ~count:300
    QCheck2.Gen.(triple gen_odd_modulus gen_bignum gen_bignum)
    (fun (m, a, b) ->
      let ctx = C.Bignum.Mont.create m in
      C.Bignum.equal
        (C.Bignum.Mont.mod_mul ctx a b)
        (C.Bignum.mod_mul a b ~m))

let qcheck_mont_exp =
  QCheck2.Test.make ~name:"mont_exp = mod_exp" ~count:60
    QCheck2.Gen.(triple gen_odd_modulus gen_bignum gen_bignum)
    (fun (m, b, e) ->
      let ctx = C.Bignum.Mont.create m in
      C.Bignum.equal (C.Bignum.Mont.mont_exp ctx b e) (C.Bignum.mod_exp b e ~m))

let qcheck_mont_roundtrip =
  QCheck2.Test.make ~name:"mont to/of roundtrip and one" ~count:200
    QCheck2.Gen.(pair gen_odd_modulus gen_bignum)
    (fun (m, a) ->
      let ctx = C.Bignum.Mont.create m in
      let am = C.Bignum.Mont.to_mont ctx a in
      C.Bignum.equal (C.Bignum.Mont.of_mont ctx am) (C.Bignum.rem a m)
      && C.Bignum.equal
           (C.Bignum.Mont.of_mont ctx (C.Bignum.Mont.one_m ctx))
           (C.Bignum.rem C.Bignum.one m))

let qcheck_field_mul =
  QCheck2.Test.make ~name:"field mul = bignum mod_mul" ~count:200
    QCheck2.Gen.(pair gen_bignum gen_bignum)
    (fun (a, b) ->
      let fa = C.Field.of_bignum a and fb = C.Field.of_bignum b in
      C.Bignum.equal
        (C.Field.to_bignum (C.Field.mul fa fb))
        (C.Bignum.mod_mul a b ~m:C.Field.p))

let gen_scalar = QCheck2.Gen.map (fun b -> C.Bignum.rem b C.Curve.order) gen_bignum

let qcheck_table_mul =
  QCheck2.Test.make ~name:"table_mul = scalar_mul" ~count:30
    QCheck2.Gen.(pair gen_scalar gen_scalar)
    (fun (k, kp) ->
      let p = C.Curve.scalar_mul kp C.Curve.base in
      let t = C.Curve.make_table p in
      C.Curve.equal (C.Curve.table_mul t k) (C.Curve.scalar_mul k p)
      && C.Curve.equal (C.Curve.scalar_mul_base k)
           (C.Curve.scalar_mul k C.Curve.base))

let qcheck_multi_scalar_mul =
  QCheck2.Test.make ~name:"multi_scalar_mul = sum of scalar_mul" ~count:30
    QCheck2.Gen.(list_size (int_range 0 5) (pair gen_scalar gen_scalar))
    (fun pairs ->
      let terms =
        List.map (fun (k, kp) -> (k, C.Curve.scalar_mul kp C.Curve.base)) pairs
      in
      let expect =
        List.fold_left
          (fun acc (k, p) -> C.Curve.add acc (C.Curve.scalar_mul k p))
          C.Curve.identity terms
      in
      C.Curve.equal (C.Curve.multi_scalar_mul terms) expect)

let qcheck_schoolbook_scalar_mul =
  QCheck2.Test.make ~name:"scalar_mul = scalar_mul_schoolbook" ~count:10
    QCheck2.Gen.(pair gen_scalar gen_scalar)
    (fun (k, kp) ->
      let p = C.Curve.scalar_mul kp C.Curve.base in
      C.Curve.equal (C.Curve.scalar_mul_schoolbook k p) (C.Curve.scalar_mul k p))

(* The reference verifier runs on the schoolbook field, so keep the
   count modest: each case pays two division-per-product scalar
   multiplies. *)
let qcheck_verify_differential =
  QCheck2.Test.make ~name:"schnorr verify = verify_reference" ~count:10
    QCheck2.Gen.(triple string_small string_small (int_range 0 95))
    (fun (seed, msg, flip) ->
      let sk = C.Schnorr.secret_key_of_seed seed in
      let pk = C.Schnorr.public_key sk in
      let signature = C.Schnorr.sign sk msg in
      let bad =
        String.mapi
          (fun i c -> if i = flip then Char.chr (Char.code c lxor 1) else c)
          signature
      in
      C.Schnorr.verify pk ~msg ~signature
      = C.Schnorr.verify_reference pk ~msg ~signature
      && C.Schnorr.verify pk ~msg ~signature:bad
         = C.Schnorr.verify_reference pk ~msg ~signature:bad)

(* Vectors generated on the pre-Montgomery, pre-table tier: the fast
   tier must reproduce them byte for byte. *)
let test_schnorr_pinned () =
  let sk = C.Schnorr.secret_key_of_seed "alpha" in
  let pk = C.Schnorr.public_key sk in
  check "pk(alpha)"
    "e8a20dd8a6c55413bf624af6c41dea6c6733d67c38761b3d4d61285bdfd5cf69416251a30d44b3cfc2e843357d7b18713e799886b1be33174cc1423d7f1e9738"
    (Hex.encode (C.Schnorr.public_key_to_bytes pk));
  check "sig(alpha, hello world)"
    "20606d9c9b0c4cd32eb6e81991cace3f8b6e1ffe460c1c3b267245b1622b33457daa4596148e1e901b3c34fd3a704c58f7d4b7fc03fb53403ab2885eee55b24a0532861ce74afa09330c334e5c450dc369a0035d70818cd665461f13bacdd794"
    (Hex.encode (C.Schnorr.sign sk "hello world"));
  check "sig(alpha, empty)"
    "976541d26b4acaba722b38afa25e7a95807982713b744e1e391fa27e59dd71311e01d5c6b7f95796d51e0e157610d696b4f51099bed2ed7b219b2dc7471017700dde74cfe7fcd5417edfa3ca238134bce33efd00c8bea82199c7aec32d3814e1"
    (Hex.encode (C.Schnorr.sign sk ""));
  let sk2 = C.Schnorr.secret_key_of_seed "beta" in
  check "sig(beta, msg2)"
    "c48f3d5d3d4246ce987c189c1fe409ad695f047972ad7ff116b38b9dff0b111be775fc1c53f96163503610785575af47895e689d9f9ffba35c15ca3e1553a1500d26848aacf11d1c90f2591c71083f7016ee69c8c12a46546de48974863b26bb"
    (Hex.encode (C.Schnorr.sign sk2 "msg2"));
  (* repeated verification against the same key crosses the
     table-building threshold; the verdicts must not change *)
  let signature = C.Schnorr.sign sk "hello world" in
  for _ = 1 to 4 do
    check_bool "verify stable across table build" true
      (C.Schnorr.verify pk ~msg:"hello world" ~signature)
  done

let test_dh_pinned () =
  let rng = C.Drbg.create ~seed:"pin-dh" in
  let s1, p1 = C.Dh.generate rng in
  let _s2, p2 = C.Dh.generate rng in
  check "dh pub1"
    "53a967a6e92b4663c510a1a5e6bc8b142b374e7953903f0e050502fe7544f549c08a9f7802dd24978bef88ff76d387d23a0ab1af0ad94e8efe8869178ce7170a"
    (Hex.encode (C.Dh.public_to_bytes p1));
  check "dh shared"
    "381d7b387b350584ea08854d723b1f649b3d06765dc819ddcd91fcfcb5d3f40a"
    (Hex.encode (C.Dh.shared_key s1 p2))

(* Known answers for the Sha3-derived Miller–Rabin witnesses: the
   witness schedule is deterministic, so these verdicts are exact. *)
let test_primality_known_answers () =
  let prime n = check_bool n true in
  let composite n = check_bool n false in
  prime "p = 2^255-19" (C.Bignum.is_probable_prime C.Field.p);
  prime "curve order" (C.Bignum.is_probable_prime C.Curve.order);
  prime "2^61-1"
    (C.Bignum.is_probable_prime
       (C.Bignum.sub (C.Bignum.shift_left C.Bignum.one 61) C.Bignum.one));
  composite "2^67-1"
    (C.Bignum.is_probable_prime
       (C.Bignum.sub (C.Bignum.shift_left C.Bignum.one 67) C.Bignum.one));
  (* Carmichael numbers defeat Fermat tests; Miller–Rabin must not be
     fooled whatever the witnesses. *)
  composite "561" (C.Bignum.is_probable_prime (C.Bignum.of_int 561));
  composite "41041" (C.Bignum.is_probable_prime (C.Bignum.of_int 41041));
  composite "3215031751"
    (C.Bignum.is_probable_prime (C.Bignum.of_int 3215031751));
  (* small edge cases around the witness range *)
  List.iter
    (fun (n, expect) ->
      check_bool (string_of_int n) expect
        (C.Bignum.is_probable_prime (C.Bignum.of_int n)))
    [ (0, false); (1, false); (2, true); (3, true); (4, false); (5, true) ]

(* The transcript-recording measurement context must produce the exact
   digest of the old eager-concatenation one (pinned below), and the
   cache must hit only on byte-identical transcripts. *)
let test_measurement_cache () =
  let img =
    Sanctorum.Image.of_program ~evbase:0x10000 Sanctorum_hw.Isa.[ j 0 ]
  in
  check "pinned image measurement"
    "b2d76ac68da740368601c0a7e07523549c6b7455a8b0df9c3dc034c81b578444"
    (Hex.encode (Sanctorum.Image.measurement img));
  let measure ?cache mutate =
    let t = M.start () in
    M.extend_create t ~evbase:0x10000 ~evsize:0x4000 ~mailbox_count:4;
    M.extend_page_table t ~vaddr:0x10000 ~level:0;
    let contents = Bytes.make 4096 '\x00' in
    Bytes.set contents 1234 'x';
    mutate contents;
    M.extend_page t ~vaddr:0x10000 ~r:true ~w:false ~x:true
      ~contents:(Bytes.to_string contents);
    M.extend_thread t ~entry_pc:0x10000L ~entry_sp:0x13ff0L;
    M.finalize ?cache t
  in
  let keep _ = () in
  let cache = M.Cache.create () in
  let d_none = measure keep in
  let d_miss = measure ~cache keep in
  let d_hit = measure ~cache keep in
  check "cache digest = uncached digest" (Hex.encode d_none)
    (Hex.encode d_miss);
  check "hit digest = miss digest" (Hex.encode d_miss) (Hex.encode d_hit);
  check_int "one miss" 1 (M.Cache.misses cache);
  check_int "one hit" 1 (M.Cache.hits cache);
  (* negative test: a single flipped byte in page contents must miss
     the cache and change the measurement *)
  let d_mut =
    measure ~cache (fun b ->
        Bytes.set b 2048 (Char.chr (Char.code (Bytes.get b 2048) lxor 1)))
  in
  check_int "mutation misses" 2 (M.Cache.misses cache);
  check_int "mutation does not hit" 1 (M.Cache.hits cache);
  check_bool "mutation changes the measurement" false (d_mut = d_miss)

let test_batch_soundness () =
  let item seed msg =
    let sk = C.Schnorr.secret_key_of_seed seed in
    (C.Schnorr.public_key sk, msg, C.Schnorr.sign sk msg)
  in
  let honest =
    [
      item "batch-a" "first";
      item "batch-b" "second";
      item "batch-a" "third";
      item "batch-c" "";
    ]
  in
  Array.iteri
    (fun i ok -> check_bool (Printf.sprintf "honest %d" i) true ok)
    (C.Schnorr.verify_batch honest);
  (* one forged signature: the batch equation fails and the fallback
     pinpoints exactly the forged item *)
  let forge (pk, msg, signature) =
    ( pk,
      msg,
      String.mapi
        (fun i c -> if i = 80 then Char.chr (Char.code c lxor 1) else c)
        signature )
  in
  let poisoned =
    List.mapi (fun i it -> if i = 2 then forge it else it) honest
  in
  let verdicts = C.Schnorr.verify_batch poisoned in
  Array.iteri
    (fun i ok -> check_bool (Printf.sprintf "pinpointed %d" i) (i <> 2) ok)
    verdicts;
  (* a structurally broken signature (off-curve commitment bytes) is
     rejected without spoiling the batch *)
  let broken =
    List.mapi
      (fun i (pk, msg, signature) ->
        if i = 1 then (pk, msg, String.make (String.length signature) '\xff')
        else (pk, msg, signature))
      honest
  in
  Array.iteri
    (fun i ok -> check_bool (Printf.sprintf "broken %d" i) (i <> 1) ok)
    (C.Schnorr.verify_batch broken);
  (* seeded and unseeded derivations agree on verdicts *)
  Array.iteri
    (fun i ok -> check_bool (Printf.sprintf "seeded %d" i) (i <> 2) ok)
    (C.Schnorr.verify_batch ~seed:"entropy" poisoned);
  check_int "empty batch" 0 (Array.length (C.Schnorr.verify_batch []))

let test_attest_service_clean () =
  let r = Asv.run { Asv.default with Asv.clients = 24; Asv.batch = 8 } in
  check_int "all verified" 24 r.Asv.ar_verified;
  check_int "none rejected" 0 r.Asv.ar_rejected;
  check_int "batches" 3 r.Asv.ar_batches;
  check_int "one signature per client" 24 r.Asv.ar_signs;
  check_int "batch verifies" 3 r.Asv.ar_batch_verifies;
  check_bool "clean" true r.Asv.ar_clean

let test_attest_service_tampered () =
  let r =
    Asv.run
      {
        Asv.default with
        Asv.clients = 20;
        Asv.batch = 8;
        Asv.tamper_every = 5;
      }
  in
  check_int "tampered count" 4 r.Asv.ar_tampered;
  check_int "rejected = tampered" 4 r.Asv.ar_rejected;
  check_int "honest still verify" 16 r.Asv.ar_verified;
  check_bool "clean (rejections exactly the forgeries)" true r.Asv.ar_clean

(* The churn mix reinstalls from a bounded program population, so the
   monitor's measurement cache must be doing real work — and the run
   must stay architecturally clean while it does. *)
let test_churn_measurement_cache () =
  let r =
    W.run
      {
        W.default with
        W.mix = W.Churn;
        W.seed = "attest-scale-churn";
        W.enclaves = 24;
        W.rounds = 160;
      }
  in
  check_bool "drained" true r.W.rp_drained;
  check_bool "reclaimed" true r.W.rp_reclaimed;
  check_int "catalog silent" 0 (List.length r.W.rp_findings);
  check_bool "cache hits observed"
    true (r.W.rp_meas_cache_hits > 0);
  check_bool "hits + misses cover installs" true
    (r.W.rp_meas_cache_hits + r.W.rp_meas_cache_misses >= r.W.rp_installs)

let suite =
  ( "attest-scale",
    [
      QCheck_alcotest.to_alcotest qcheck_mont_mul;
      QCheck_alcotest.to_alcotest qcheck_mont_exp;
      QCheck_alcotest.to_alcotest qcheck_mont_roundtrip;
      QCheck_alcotest.to_alcotest qcheck_field_mul;
      QCheck_alcotest.to_alcotest qcheck_table_mul;
      QCheck_alcotest.to_alcotest qcheck_multi_scalar_mul;
      QCheck_alcotest.to_alcotest qcheck_schoolbook_scalar_mul;
      QCheck_alcotest.to_alcotest qcheck_verify_differential;
      Alcotest.test_case "schnorr pinned vectors" `Quick test_schnorr_pinned;
      Alcotest.test_case "dh pinned vectors" `Quick test_dh_pinned;
      Alcotest.test_case "primality known answers" `Quick
        test_primality_known_answers;
      Alcotest.test_case "measurement cache invalidation" `Quick
        test_measurement_cache;
      Alcotest.test_case "batch verify soundness" `Quick test_batch_soundness;
      Alcotest.test_case "attest service clean" `Quick
        test_attest_service_clean;
      Alcotest.test_case "attest service tampered" `Quick
        test_attest_service_tampered;
      Alcotest.test_case "churn exercises measurement cache" `Quick
        test_churn_measurement_cache;
    ] )
