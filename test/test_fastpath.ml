(* The simulator's host-side fast path (predecoded instruction cache,
   per-core fetch-translation cache, allocation-free TLB/cache
   lookups) must be architecturally invisible: with the fast path on
   and off, the same program produces bit-identical instret, cycles,
   registers, PC, TLB/cache statistics and trap sequences. The qcheck
   property below proves it over random programs that include
   self-modifying stores into their own code page, DMA writes into
   code, injected ECC faults (correctable and uncorrectable) and
   posted interrupts — every event class that can invalidate a cached
   decode or translation. *)

module Hw = Sanctorum_hw
module Tel = Sanctorum_telemetry
module Pf = Sanctorum_platform
module Img = Sanctorum.Image
open Sanctorum_os

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_i64 = Alcotest.(check int64)

(* ------------------------------------------------------------------ *)
(* Harness *)

let bare_machine () =
  let m =
    Hw.Machine.create
      { Hw.Machine.default_config with cores = 1; mem_bytes = 1024 * 1024 }
  in
  let last = ref None in
  Hw.Machine.set_trap_handler m (fun _ c cause ->
      last := Some cause;
      c.Hw.Machine.halted <- true);
  (m, last)

let exec_at m pos =
  let c = Hw.Machine.core m 0 in
  Hw.Machine.reset_core_state c;
  c.Hw.Machine.pc <- Int64.of_int pos;
  c.Hw.Machine.halted <- false;
  ignore (Hw.Machine.run m ~core:0 ~fuel:10_000);
  c

let run_at m pos prog =
  Hw.Phys_mem.write_string (Hw.Machine.mem m) ~pos
    (Hw.Isa.encode_program prog);
  exec_at m pos

(* ------------------------------------------------------------------ *)
(* Self-modifying code: the predecode cache's sharpest edge. A program
   that overwrites an instruction must execute the new bytes, even
   when the old bytes were already fetched, decoded and cached. *)

let test_smc_inline_store () =
  let m, _ = bare_machine () in
  let open Hw.Isa in
  (* Straight-line program that patches its own next instruction. *)
  let enc_new = Int32.to_int (encode (Op_imm (Add, a0, zero, 777))) in
  let prefix = li t1 enc_new @ li t0 0x1000 in
  let placeholder_idx = List.length prefix + 1 in
  let prog =
    prefix
    @ [
        Store (Sw, t1, t0, 4 * placeholder_idx);
        Op_imm (Add, a0, zero, 1) (* overwritten before it is fetched *);
        Ecall;
      ]
  in
  let c = run_at m 0x1000 prog in
  check_i64 "patched instruction executed" 777L (Hw.Machine.read_reg c Hw.Isa.a0)

let test_smc_store_after_decode () =
  let m, _ = bare_machine () in
  let open Hw.Isa in
  (* Execute the target first so its decode is definitely cached... *)
  let c = run_at m 0x1000 [ Op_imm (Add, a0, zero, 1); Ecall ] in
  check_i64 "original executed" 1L (Hw.Machine.read_reg c Hw.Isa.a0);
  (* ...then patch it with a store from a different page... *)
  let enc_new = Int32.to_int (encode (Op_imm (Add, a0, zero, 99))) in
  let patcher =
    li t1 enc_new @ li t0 0x1000 @ [ Store (Sw, t1, t0, 0); Ecall ]
  in
  ignore (run_at m 0x2000 patcher);
  (* ...and re-run the (unrewritten) target page. *)
  let c = exec_at m 0x1000 in
  check_i64 "stale decode dropped after store" 99L
    (Hw.Machine.read_reg c Hw.Isa.a0)

let test_smc_dma () =
  let m, _ = bare_machine () in
  let open Hw.Isa in
  let c = run_at m 0x1000 [ Op_imm (Add, a0, zero, 1); Ecall ] in
  check_i64 "original executed" 1L (Hw.Machine.read_reg c Hw.Isa.a0);
  (match
     Hw.Machine.dma_write m ~paddr:0x1000
       (encode_program [ Op_imm (Add, a0, zero, 55) ])
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "dma_write refused");
  let c = exec_at m 0x1000 in
  check_i64 "stale decode dropped after DMA write" 55L
    (Hw.Machine.read_reg c Hw.Isa.a0)

let test_flip_invalidates_decode () =
  let m, _ = bare_machine () in
  let open Hw.Isa in
  let c = run_at m 0x1000 [ Op_imm (Add, a0, zero, 5); Ecall ] in
  check_i64 "original executed" 5L (Hw.Machine.read_reg c Hw.Isa.a0);
  (* A single-bit flip in the cached instruction word: the next fetch
     must not execute the stale decode, and ECC corrects the word back
     to the original bytes — so the original result, not garbage. *)
  Hw.Machine.inject_bit_flip m ~paddr:0x1000 ~bit:3;
  let c = exec_at m 0x1000 in
  check_i64 "corrected word re-decoded" 5L (Hw.Machine.read_reg c Hw.Isa.a0);
  check_int "fault scrubbed" 0
    (Hw.Phys_mem.pending_faults (Hw.Machine.mem m))

(* ------------------------------------------------------------------ *)
(* post_interrupt is a FIFO queue: delivery order is posting order. *)

let test_interrupt_fifo_order () =
  let m, _ = bare_machine () in
  let order = ref [] in
  Hw.Machine.set_trap_handler m (fun _ c cause ->
      match cause with
      | Hw.Trap.Interrupt irq -> order := irq :: !order
      | Hw.Trap.Exception Hw.Trap.Ecall_user -> c.Hw.Machine.halted <- true
      | _ -> c.Hw.Machine.halted <- true);
  Hw.Phys_mem.write_string (Hw.Machine.mem m) ~pos:0x1000
    (Hw.Isa.encode_program [ Hw.Isa.nop; Hw.Isa.nop; Hw.Isa.Ecall ]);
  Hw.Machine.post_interrupt m ~core:0 Hw.Trap.Software;
  Hw.Machine.post_interrupt m ~core:0 (Hw.Trap.External 7);
  Hw.Machine.post_interrupt m ~core:0 (Hw.Trap.External 3);
  Hw.Machine.post_interrupt m ~core:0 Hw.Trap.Software;
  ignore (exec_at m 0x1000);
  Alcotest.(check (list string))
    "FIFO delivery"
    [ "irq-software"; "irq-external"; "irq-external"; "irq-software" ]
    (List.rev_map
       (fun irq -> Hw.Trap.cause_label (Hw.Trap.Interrupt irq))
       !order);
  (* External irq payloads kept their order too *)
  check_bool "payload order" true
    (List.rev !order
    = [
        Hw.Trap.Software; Hw.Trap.External 7; Hw.Trap.External 3;
        Hw.Trap.Software;
      ])

(* ------------------------------------------------------------------ *)
(* TLB statistics stay exact under the early-exit + MRU rewrite: every
   lookup/find counts exactly one hit or one miss, on the MRU path,
   the scan path and after eviction/flush alike. *)

let test_tlb_stats_exact () =
  let t = Hw.Tlb.create ~entries:2 in
  let p = { Hw.Tlb.r = true; w = false; x = true; u = true } in
  check_bool "miss on empty" true (Hw.Tlb.lookup t ~vpn:5 = None);
  Hw.Tlb.insert t ~vpn:5 ~ppn:50 ~perms:p;
  (match Hw.Tlb.lookup t ~vpn:5 with
  | Some (50, pp) -> check_bool "perms preserved" true (pp = p)
  | _ -> Alcotest.fail "expected hit on vpn 5");
  ignore (Hw.Tlb.lookup t ~vpn:5) (* MRU-path hit *);
  Hw.Tlb.insert t ~vpn:6 ~ppn:60 ~perms:p;
  ignore (Hw.Tlb.lookup t ~vpn:6);
  ignore (Hw.Tlb.lookup t ~vpn:5) (* non-MRU scan hit *);
  Hw.Tlb.insert t ~vpn:7 ~ppn:70 ~perms:p (* round-robin evicts vpn 5 *);
  check_bool "evicted" true (Hw.Tlb.lookup t ~vpn:5 = None);
  let i = Hw.Tlb.find t ~vpn:7 in
  check_bool "find hit" true (i >= 0);
  check_int "slot_ppn" 70 (Hw.Tlb.slot_ppn t i);
  Hw.Tlb.flush t;
  check_bool "post-flush miss" true (Hw.Tlb.lookup t ~vpn:7 = None);
  (* 8 lookups above: 5 hits, 3 misses, nothing double-counted *)
  check_bool "counters exact" true (Hw.Tlb.stats t = (5, 3))

let test_tlb_generation () =
  let t = Hw.Tlb.create ~entries:4 in
  let p = { Hw.Tlb.r = true; w = true; x = true; u = true } in
  let g0 = Hw.Tlb.generation t in
  Hw.Tlb.insert t ~vpn:1 ~ppn:10 ~perms:p;
  let g1 = Hw.Tlb.generation t in
  check_bool "insert bumps" true (g1 > g0);
  ignore (Hw.Tlb.lookup t ~vpn:1);
  ignore (Hw.Tlb.lookup t ~vpn:2);
  check_int "lookups do not bump" g1 (Hw.Tlb.generation t);
  Hw.Tlb.flush_vpn t ~vpn:1;
  let g2 = Hw.Tlb.generation t in
  check_bool "flush_vpn bumps" true (g2 > g1);
  Hw.Tlb.flush t;
  check_bool "flush bumps" true (Hw.Tlb.generation t > g2)

(* Cache statistics through the allocation-free access path. *)
let test_cache_access_hit_stats () =
  let cfg = { Hw.Cache.default_l1 with Hw.Cache.sets = 4; ways = 2 } in
  let c = Hw.Cache.create cfg in
  check_bool "first access misses" false (Hw.Cache.access_hit c ~paddr:0x1000);
  check_bool "second access hits" true (Hw.Cache.access_hit c ~paddr:0x1000);
  check_bool "MRU-path hit" true (Hw.Cache.access_hit c ~paddr:0x1000);
  let addr tag = tag * 4 * 64 in
  ignore (Hw.Cache.access_hit c ~paddr:(addr 1)) (* same set, way 2 *);
  ignore (Hw.Cache.access_hit c ~paddr:0x1000) (* touch first line *);
  ignore (Hw.Cache.access_hit c ~paddr:(addr 2)) (* evicts LRU = addr 1 *);
  check_bool "LRU victim evicted" false (Hw.Cache.probe c ~paddr:(addr 1));
  check_bool "MRU survivor resident" true (Hw.Cache.probe c ~paddr:0x1000);
  (* 6 accesses above: 3 hits, 3 misses; probes count nothing *)
  check_bool "counters exact" true (Hw.Cache.stats c = (3, 3))

(* ------------------------------------------------------------------ *)
(* ecc_check_exn batches the corrected counter: one scrub correcting n
   words adds n in a single [Metrics.add]. *)

let test_ecc_corrected_batch () =
  let metrics = Tel.Metrics.create () in
  let sink = Tel.Sink.create ~metrics () in
  let m =
    Hw.Machine.create
      { Hw.Machine.default_config with cores = 1; mem_bytes = 64 * 1024 }
  in
  Hw.Machine.set_sink m sink;
  Hw.Machine.inject_bit_flip m ~paddr:0x3000 ~bit:2;
  Hw.Machine.inject_bit_flip m ~paddr:0x3008 ~bit:40;
  Hw.Machine.inject_bit_flip m ~paddr:0x3010 ~bit:7;
  (match Hw.Machine.dma_read m ~paddr:0x3000 ~len:24 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "dma_read refused");
  (match Tel.Metrics.find metrics "hw.ecc.corrected" with
  | Some (Tel.Metrics.Counter c) ->
      check_int "one scrub of 3 words counts 3" 3 (Tel.Metrics.value c)
  | _ -> Alcotest.fail "hw.ecc.corrected not registered");
  check_int "faults cleared" 0
    (Hw.Phys_mem.pending_faults (Hw.Machine.mem m))

(* ------------------------------------------------------------------ *)
(* The differential property. *)

type mode = Bare | Paged

type op =
  | Alu of int * int * int * int
  | Alu_imm of int * int * int * int
  | Load_data of int * int * int
  | Store_data of int * int * int
  | Load_cross of int * int * int (* page-boundary-straddling load *)
  | Store_cross of int * int * int (* page-boundary-straddling store *)
  | Store_code of int * int
  | Branch_fwd of int * int * int * int
  | Jal_fwd of int
  | Jalr_mis of int (* indirect jump, target possibly 2-misaligned *)
  | Read_cycle of int
  | Wild_load of int
  | Break

type event =
  | Flip of int * int (* correctable: one bit of one word *)
  | Flip2 of int * int (* uncorrectable: two bits of one word *)
  | Dma of int * int (* write one word into the code page *)
  | Irq of int

let alu_ops =
  Hw.Isa.[| Add; Sub; Sll; Slt; Sltu; Xor; Srl; Sra; Or; And |]

let branch_ops = Hw.Isa.[| Beq; Bne; Blt; Bge; Bltu; Bgeu |]
let load_ops = Hw.Isa.[| Lb; Lh; Lw; Ld; Lbu; Lhu; Lwu |]
let store_ops = Hw.Isa.[| Sb; Sh; Sw; Sd |]

let regs_pool = Hw.Isa.[| a0; a1; a2; a3; a4; a5; t2; t3; t4 |]

(* The program image is at most 96 words; stores into code target any
   of them, so self-modification can hit already-executed, cached and
   not-yet-fetched instructions alike. *)
let code_words = 96

let instr_of_op op =
  let open Hw.Isa in
  let r i = regs_pool.(i mod Array.length regs_pool) in
  let data_off size raw =
    let off = raw mod 2040 in
    (* mostly aligned, sometimes deliberately misaligned *)
    if raw mod 11 = 0 then off else off / size * size
  in
  match op with
  | Alu (o, rd, r1, r2) -> Op (alu_ops.(o mod 10), r rd, r r1, r r2)
  | Alu_imm (o, rd, r1, imm) -> (
      match alu_ops.(o mod 10) with
      | (Sll | Srl | Sra) as sop -> Op_imm (sop, r rd, r r1, imm land 63)
      | Sub (* subi does not exist *) | Add ->
          Op_imm (Add, r rd, r r1, (imm mod 1024) - 512)
      | aop -> Op_imm (aop, r rd, r r1, (imm mod 1024) - 512))
  | Load_data (s, rd, off) ->
      let lop = load_ops.(s mod 7) in
      let size = match lop with Lb | Lbu -> 1 | Lh | Lhu -> 2 | Lw | Lwu -> 4 | Ld -> 8 in
      Load (lop, r rd, t1, data_off size off)
  | Store_data (s, rs, off) ->
      let sop = store_ops.(s mod 4) in
      let size = match sop with Sb -> 1 | Sh -> 2 | Sw -> 4 | Sd -> 8 in
      Store (sop, r rs, t1, data_off size off)
  | Load_cross (s, rd, off) ->
      (* s0/s1 hold the first and second page boundaries past the data
         base; a wide access a few bytes below either straddles it *)
      Load (load_ops.(s mod 7), r rd,
            (if off land 8 = 0 then s0 else s1),
            -(1 + (off mod 7)))
  | Store_cross (s, rs, off) ->
      Store (store_ops.(s mod 4), r rs,
             (if off land 8 = 0 then s0 else s1),
             -(1 + (off mod 7)))
  | Store_code (rs, w) -> Store (Sw, r rs, t0, w mod code_words * 4)
  | Branch_fwd (o, r1, r2, skip) ->
      Branch (branch_ops.(o mod 6), r r1, r r2, 4 * (2 + (skip mod 2)))
  | Jal_fwd skip -> Jal (t5, 4 * (2 + (skip mod 2)))
  | Jalr_mis raw ->
      (* even offsets 0..510 into the code page: bit 1 survives JALR's
         bit-0 clearing, so half of these targets are 2-misaligned *)
      Jalr (t5, t0, raw land 0x1fe)
  | Read_cycle rd -> Csr_read_cycle (r rd)
  | Wild_load rd -> Load (Ld, r rd, a6, 0)
  | Break -> Ebreak

let apply_event m ~code_base ~data_base ev =
  match ev with
  | Flip (w, bit) ->
      let base = if w < 64 then code_base else data_base in
      Hw.Machine.inject_bit_flip m
        ~paddr:(base + (w mod 64 * 8))
        ~bit:(bit mod 63)
  | Flip2 (w, bit) ->
      let base = if w < 64 then code_base else data_base in
      let paddr = base + (w mod 64 * 8) in
      let bit = bit mod 62 in
      Hw.Machine.inject_bit_flip m ~paddr ~bit;
      Hw.Machine.inject_bit_flip m ~paddr ~bit:(bit + 1)
  | Dma (w, v) ->
      let b = Bytes.create 4 in
      Bytes.set_int32_le b 0 (Int32.of_int v);
      ignore
        (Hw.Machine.dma_write m
           ~paddr:(code_base + (w mod code_words * 4))
           (Bytes.to_string b))
  | Irq n ->
      Hw.Machine.post_interrupt m ~core:0
        (if n mod 3 = 0 then Hw.Trap.Software else Hw.Trap.External (n mod 7))

(* How to drive the machine: [Stepwise] calls [Machine.step] directly
   (events land between arbitrary single steps); [Chunked] calls
   [Machine.run] with a cycled list of small fuel slices (events land
   at chunk boundaries), which exercises the block executor and the
   superblock tier inside [run]. All machines of a differential group
   use the same drive, so injection points are architecturally
   identical. *)
type drive = Stepwise | Chunked of int list

(* The three execution tiers under differential test. [Super] is the
   default configuration (fast path + superblock); [Fast] is the PR4
   configuration (fast path, block executor, superblock off); [Slow]
   is the seed pipeline. *)
type tier = Slow | Fast | Super

let set_tier m = function
  | Slow -> Hw.Machine.set_fast_path m false
  | Fast -> Hw.Machine.set_superblock m false
  | Super -> ()

(* Run one machine to completion (or the step cap) and snapshot every
   piece of architectural state the fast tiers could disturb. *)
let run_one ~tier ~drive ~mode ~ops ~events ~raws =
  let m =
    Hw.Machine.create
      { Hw.Machine.default_config with cores = 1; mem_bytes = 1024 * 1024 }
  in
  set_tier m tier;
  let traps = ref [] in
  Hw.Machine.set_trap_handler m (fun _ c cause ->
      traps := Format.asprintf "%a" Hw.Trap.pp_cause cause :: !traps;
      match cause with
      | Hw.Trap.Exception Hw.Trap.Ecall_user -> c.Hw.Machine.halted <- true
      | Hw.Trap.Exception (Hw.Trap.Instruction_address_misaligned _) ->
          (* realign before skipping, or the retry would trap forever *)
          c.Hw.Machine.pc <-
            Int64.add (Int64.logand c.Hw.Machine.pc (Int64.lognot 3L)) 4L
      | Hw.Trap.Exception _ ->
          (* emulate a handler that skips the faulting instruction *)
          c.Hw.Machine.pc <- Int64.add c.Hw.Machine.pc 4L
      | Hw.Trap.Interrupt _ -> ());
  let mem = Hw.Machine.mem m in
  let c = Hw.Machine.core m 0 in
  let code_base, data_base, wild =
    match mode with
    | Bare -> (0x4000, 0x8000, 1024 * 1024)
    | Paged ->
        (* Identity-mapped code (rwx) and data (rw) pages, so physical
           event addresses coincide with the virtual bases; 0x30000 is
           left unmapped for page faults. *)
        let next = ref 0x40 in
        let alloc () =
          let p = !next in
          incr next;
          p
        in
        let root = alloc () in
        let map vaddr ppn perms =
          Hw.Page_table.map mem ~root_ppn:root ~vaddr ~ppn ~perms
            ~alloc_table:alloc
        in
        map 0x10000 0x10
          { Hw.Page_table.r = true; w = true; x = true; u = true };
        map 0x20000 0x20
          { Hw.Page_table.r = true; w = true; x = false; u = true };
        (* second data page in a non-adjacent frame, so page-crossing
           accesses must split-translate; 0x22000 stays unmapped so a
           cross out of it faults *)
        map 0x21000 0x28
          { Hw.Page_table.r = true; w = true; x = false; u = true };
        c.Hw.Machine.satp_root <- Some root;
        (0x10000, 0x20000, 0x30000)
  in
  let open Hw.Isa in
  let page = Hw.Phys_mem.page_size in
  let prologue =
    li t0 code_base @ li t1 data_base @ li a6 wild
    @ li s0 (data_base + page)
    @ li s1 (data_base + (2 * page))
  in
  let body = List.map instr_of_op ops in
  let program = prologue @ body @ [ Ecall; Ecall; Ecall; Ecall; Ecall ] in
  Hw.Phys_mem.write_string mem ~pos:code_base (encode_program program);
  let plen = List.length prologue in
  List.iter
    (fun (idx, word) ->
      (* raw words (mostly undecodable) dropped into the body *)
      let slot = plen + (idx mod (code_words - plen)) in
      Hw.Phys_mem.write_u32 mem (code_base + (4 * slot)) (Int32.of_int word))
    raws;
  c.Hw.Machine.pc <- Int64.of_int code_base;
  (match drive with
  | Stepwise ->
      let steps = ref 0 in
      while (not c.Hw.Machine.halted) && !steps < 1500 do
        List.iter
          (fun (k, ev) ->
            if k = !steps then apply_event m ~code_base ~data_base ev)
          events;
        Hw.Machine.step m c;
        incr steps
      done
  | Chunked chunks ->
      let chunks = Array.of_list chunks in
      let n = Array.length chunks in
      let i = ref 0 in
      while (not c.Hw.Machine.halted) && !i < 400 do
        List.iter
          (fun (k, ev) -> if k = !i then apply_event m ~code_base ~data_base ev)
          events;
        ignore
          (Hw.Machine.run m ~core:0 ~fuel:(1 + (chunks.(!i mod n) land 63)));
        incr i
      done);
  ( c.Hw.Machine.instret,
    c.Hw.Machine.cycles,
    c.Hw.Machine.pc,
    Array.to_list c.Hw.Machine.regs,
    Hw.Tlb.stats c.Hw.Machine.tlb,
    Hw.Cache.stats c.Hw.Machine.l1,
    Hw.Cache.stats (Hw.Machine.l2 m),
    List.rev !traps,
    Hw.Phys_mem.pending_faults mem )

let case_gen =
  let open QCheck2.Gen in
  let sm = int_bound 4095 in
  let op_gen =
    oneof
      [
        map2 (fun (a, b) (c, d) -> Alu (a, b, c, d)) (pair sm sm) (pair sm sm);
        map2 (fun (a, b) (c, d) -> Alu_imm (a, b, c, d)) (pair sm sm)
          (pair sm sm);
        map3 (fun a b c -> Load_data (a, b, c)) sm sm sm;
        map3 (fun a b c -> Store_data (a, b, c)) sm sm sm;
        map3 (fun a b c -> Load_cross (a, b, c)) sm sm sm;
        map3 (fun a b c -> Store_cross (a, b, c)) sm sm sm;
        map2 (fun a b -> Store_code (a, b)) sm sm;
        map2 (fun (a, b) (c, d) -> Branch_fwd (a, b, c, d)) (pair sm sm)
          (pair sm sm);
        map (fun a -> Jal_fwd a) sm;
        map (fun a -> Jalr_mis a) sm;
        map (fun a -> Read_cycle a) sm;
        map (fun a -> Wild_load a) sm;
        pure Break;
      ]
  in
  let event_gen =
    oneof
      [
        map2 (fun w b -> Flip (w, b)) (int_bound 127) (int_bound 62);
        map2 (fun w b -> Flip2 (w, b)) (int_bound 127) (int_bound 61);
        map2 (fun w v -> Dma (w, v)) (int_bound 95) (int_bound 0xFFFFFF);
        map (fun n -> Irq n) (int_bound 7);
      ]
  in
  quad
    (oneofl [ Bare; Paged ])
    (list_size (int_range 10 50) op_gen)
    (list_size (int_range 0 6) (pair (int_bound 400) event_gen))
    (list_size (int_range 0 3) (pair (int_bound 95) (int_bound 0x7FFFFFF)))

(* Compare two tier snapshots field by field; [label] names the pair
   so a failure pins which tier diverged from which. *)
let snapshots_agree ~label (i_a, c_a, pc_a, r_a, t_a, l1_a, l2_a, tr_a, p_a)
    (i_b, c_b, pc_b, r_b, t_b, l1_b, l2_b, tr_b, p_b) =
  let fail what = QCheck2.Test.fail_reportf "%s diverge on %s" label what in
  if i_a <> i_b then fail (Printf.sprintf "instret (%d vs %d)" i_a i_b)
  else if c_a <> c_b then fail (Printf.sprintf "cycles (%d vs %d)" c_a c_b)
  else if pc_a <> pc_b then fail (Printf.sprintf "pc (0x%Lx vs 0x%Lx)" pc_a pc_b)
  else if r_a <> r_b then fail "register file"
  else if t_a <> t_b then
    fail
      (Printf.sprintf "TLB stats (%d,%d vs %d,%d)" (fst t_a) (snd t_a)
         (fst t_b) (snd t_b))
  else if l1_a <> l1_b then
    fail
      (Printf.sprintf "L1 stats (%d,%d vs %d,%d)" (fst l1_a) (snd l1_a)
         (fst l1_b) (snd l1_b))
  else if l2_a <> l2_b then fail "L2 stats"
  else if tr_a <> tr_b then
    fail
      (Printf.sprintf "trap sequence (%d traps vs %d: [%s] vs [%s])"
         (List.length tr_a) (List.length tr_b) (String.concat "; " tr_a)
         (String.concat "; " tr_b))
  else if p_a <> p_b then fail "pending fault count"
  else true

(* The PR4 pairing: the default configuration against the seed
   pipeline ("fast path on/off" — on means everything the simulator
   enables by default, today fast path + superblock). *)
let compare_pair ~drive (mode, ops, events, raws) =
  let a = run_one ~tier:Super ~drive ~mode ~ops ~events ~raws
  and b = run_one ~tier:Slow ~drive ~mode ~ops ~events ~raws in
  snapshots_agree ~label:"fast/slow" a b

(* All three tiers on the same case, compared pairwise so a failure
   attributes the divergence: superblock-vs-fast isolates the
   superblock engine, fast-vs-stepped isolates the block executor. *)
let compare_tiers ~drive (mode, ops, events, raws) =
  let sup = run_one ~tier:Super ~drive ~mode ~ops ~events ~raws
  and fast = run_one ~tier:Fast ~drive ~mode ~ops ~events ~raws
  and slow = run_one ~tier:Slow ~drive ~mode ~ops ~events ~raws in
  snapshots_agree ~label:"superblock/fast" sup fast
  && snapshots_agree ~label:"fast/stepped" fast slow

(* Trial counts scale with SANCTORUM_QCHECK_COUNT for the deep sweep
   (the bugfix hunt runs thousands of cases per property); the default
   keeps `dune runtest` quick. *)
let qcount default =
  match Sys.getenv_opt "SANCTORUM_QCHECK_COUNT" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> default)
  | None -> default

let prop_differential =
  QCheck2.Test.make
    ~name:
      "differential: fast path on/off — identical instret, cycles, regs, \
       TLB/cache stats, traps"
    ~count:(qcount 60) case_gen
    (compare_pair ~drive:Stepwise)

(* Same property through [Machine.run]: covers the block executor,
   with events injected at random fuel-chunk boundaries. *)
let prop_differential_run =
  QCheck2.Test.make
    ~name:"differential: fast path on/off under block execution (run-driven)"
    ~count:(qcount 40)
    QCheck2.Gen.(
      pair case_gen (list_size (int_range 1 8) (int_bound 62)))
    (fun (case, chunks) -> compare_pair ~drive:(Chunked chunks) case)

(* The superblock differential: all three tiers pairwise on the same
   random program, driven through [Machine.run] (the only entry point
   where the superblock engine engages), with loads, stores,
   page-crossing accesses, self-modifying stores, DMA overwrites,
   ECC flips and interrupts landing at chunk boundaries. *)
let prop_differential_superblock =
  QCheck2.Test.make
    ~name:
      "differential: superblock vs block vs stepped tiers — bit-identical \
       state (run-driven)"
    ~count:(qcount 40)
    QCheck2.Gen.(
      pair case_gen (list_size (int_range 1 8) (int_bound 62)))
    (fun (case, chunks) -> compare_tiers ~drive:(Chunked chunks) case)

(* ------------------------------------------------------------------ *)
(* Pinned regressions for the ISA/MMU edge cases. *)

(* JALR clears only bit 0 of its target (RISC-V spec), so bit 1
   survives into the PC — the fetch must raise the precise
   instruction-address trap, identically with the fast path on and
   off. Before the fix, both fetch paths rounded the address down and
   silently executed the containing aligned word. *)
let test_fetch_misaligned_jalr () =
  let open Hw.Isa in
  let jump_to fast target =
    let m, last = bare_machine () in
    Hw.Machine.set_fast_path m fast;
    ignore (run_at m 0x1000 (li t0 target @ [ Jalr (zero, t0, 0) ]));
    !last
  in
  List.iter
    (fun fast ->
      (match jump_to fast 0x2002 with
      | Some
          (Hw.Trap.Exception (Hw.Trap.Instruction_address_misaligned 0x2002L))
        -> ()
      | _ ->
          Alcotest.failf "fast=%b: expected instr-misaligned at 0x2002" fast);
      (* an odd target: the hardware clears bit 0, bit 1 survives *)
      match jump_to fast 0x2003 with
      | Some
          (Hw.Trap.Exception (Hw.Trap.Instruction_address_misaligned 0x2002L))
        -> ()
      | _ ->
          Alcotest.failf "fast=%b: odd target must trap at 0x2002" fast)
    [ true; false ]

(* Sv39 fixture for the page-crossing tests: identity-mapped code at
   0x10000, data at 0x20000 -> frame 0x20 and 0x21000 -> frame 0x60
   (deliberately non-adjacent), 0x22000 unmapped. *)
let paged_machine () =
  let m, last = bare_machine () in
  let mem = Hw.Machine.mem m in
  let next = ref 0x40 in
  let alloc () =
    let p = !next in
    incr next;
    p
  in
  let root = alloc () in
  let map vaddr ppn perms =
    Hw.Page_table.map mem ~root_ppn:root ~vaddr ~ppn ~perms ~alloc_table:alloc
  in
  map 0x10000 0x10 { Hw.Page_table.r = true; w = true; x = true; u = true };
  map 0x20000 0x20 { Hw.Page_table.r = true; w = true; x = false; u = true };
  map 0x21000 0x60 { Hw.Page_table.r = true; w = true; x = false; u = true };
  (m, last, root)

let run_paged m root prog =
  Hw.Phys_mem.write_string (Hw.Machine.mem m) ~pos:0x10000
    (Hw.Isa.encode_program prog);
  let c = Hw.Machine.core m 0 in
  Hw.Machine.reset_core_state c;
  c.Hw.Machine.satp_root <- Some root;
  c.Hw.Machine.pc <- 0x10000L;
  c.Hw.Machine.halted <- false;
  ignore (Hw.Machine.run m ~core:0 ~fuel:1_000);
  c

(* A Ld straddling two pages mapped to non-adjacent frames must
   translate both pages and stitch the bytes — before the fix, the
   second half was read through the first page's translation, i.e.
   from a frame the enclave may not even own. *)
let test_split_load_nonadjacent () =
  List.iter
    (fun fast ->
      let m, last, root = paged_machine () in
      Hw.Machine.set_fast_path m fast;
      let mem = Hw.Machine.mem m in
      Hw.Phys_mem.write_u32 mem 0x20ffc 0x44332211l;
      Hw.Phys_mem.write_u32 mem 0x60000 0x88776655l;
      let open Hw.Isa in
      let c =
        run_paged m root (li t1 0x21000 @ [ Load (Ld, a0, t1, -4); Ecall ])
      in
      check_bool "clean exit" true
        (!last = Some (Hw.Trap.Exception Hw.Trap.Ecall_user));
      check_i64
        (Printf.sprintf "fast=%b: stitched across non-adjacent frames" fast)
        0x8877665544332211L
        (Hw.Machine.read_reg c Hw.Isa.a0))
    [ true; false ]

(* A store straddling into an unmapped page must fault on the second
   page *before any byte is written* — a partial store through the
   first page's translation would be exactly the leak the fix closes. *)
let test_split_store_unmapped () =
  let m, last, root = paged_machine () in
  let mem = Hw.Machine.mem m in
  Hw.Phys_mem.write_u32 mem 0x60ffc 0x5a5a5a5al;
  let open Hw.Isa in
  ignore
    (run_paged m root
       (li t1 0x22000 @ li t2 0x1234 @ [ Store (Sd, t2, t1, -4); Ecall ]));
  (match !last with
  | Some (Hw.Trap.Exception (Hw.Trap.Page_fault (Hw.Trap.Write, 0x22000L))) ->
      ()
  | Some c ->
      Alcotest.failf "unexpected trap: %s"
        (Format.asprintf "%a" Hw.Trap.pp_cause c)
  | None -> Alcotest.fail "expected a write page fault at 0x22000");
  check_bool "no partial store leaked into the mapped page" true
    (Hw.Phys_mem.read_u32 mem 0x60ffc = 0x5a5a5a5al)

(* Same property through the whole stack: boot, install an enclave,
   run the fig2-style compute loop under the monitor — fast path on
   and off must agree on every cycle and counter. *)
let test_differential_full_stack () =
  let open Hw.Isa in
  let program =
    li t0 330
    @ [
        Op_imm (Add, t1, zero, 0);
        Op_imm (Add, t1, t1, 1);
        Branch (Bne, t1, t0, -4);
        Op_imm (Add, a7, zero, 1);
        Ecall;
      ]
  in
  let run fast =
    let tb = Testbed.create ~seed:"fastpath-differential" () in
    Hw.Machine.set_fast_path tb.Testbed.machine fast;
    let image = Img.of_program ~evbase:0x10000 program in
    let inst = Result.get_ok (Os.install_enclave tb.Testbed.os image) in
    let eid = inst.Os.eid and tid = List.hd inst.Os.tids in
    let outcome =
      Os.run_enclave tb.Testbed.os ~eid ~tid ~core:0 ~fuel:10_000 ()
    in
    let c = Hw.Machine.core tb.Testbed.machine 0 in
    ( (match outcome with Ok o -> Some o | Error _ -> None),
      c.Hw.Machine.instret,
      c.Hw.Machine.cycles,
      Hw.Tlb.stats c.Hw.Machine.tlb,
      Hw.Cache.stats c.Hw.Machine.l1,
      Hw.Cache.stats (Hw.Machine.l2 tb.Testbed.machine) )
  in
  let (o_a, i_a, c_a, t_a, l1_a, l2_a) = run true
  and (o_b, i_b, c_b, t_b, l1_b, l2_b) = run false in
  check_bool "outcome agrees (and is a clean exit)" true
    (o_a = o_b && o_a = Some Os.Exited);
  check_int "instret agrees" i_b i_a;
  check_int "cycles agree" c_b c_a;
  check_bool "TLB stats agree" true (t_a = t_b);
  check_bool "L1 stats agree" true (l1_a = l1_b);
  check_bool "L2 stats agree" true (l2_a = l2_b)

(* ------------------------------------------------------------------ *)
(* Superblock-tier pinned regressions. *)

let is_sb_counter name =
  String.length name >= 6 && String.sub name 0 6 = "hw.sb."

(* Every registered counter except the host-side hw.sb.* diagnostics,
   which are the one family allowed to differ across tiers. *)
let counter_snapshot metrics =
  List.filter_map
    (fun (name, item) ->
      match item with
      | Tel.Metrics.Counter c when not (is_sb_counter name) ->
          Some (name, Tel.Metrics.value c)
      | _ -> None)
    (Tel.Metrics.to_list metrics)

let sb_instret_of metrics =
  match Tel.Metrics.find metrics "hw.sb.instret" with
  | Some (Tel.Metrics.Counter c) -> Tel.Metrics.value c
  | _ -> 0

(* The differential harness never arms a telemetry sink, so counter
   parity across tiers was unobserved: a tier could batch a TLB or
   cache counter wrong and still pass every qcheck property. Run one
   memory-heavy paged loop under all three tiers with a live metrics
   registry and demand the whole counter table — and the raw
   TLB/cache/cycles/instret state — agree bit-for-bit; hw.sb.instret
   must be live under the superblock tier, proving it engaged. *)
let test_tier_metrics_exact () =
  let run_with tier =
    let metrics = Tel.Metrics.create () in
    let sink = Tel.Sink.create ~metrics () in
    let m, _last, root = paged_machine () in
    Hw.Machine.set_sink m sink;
    set_tier m tier;
    let open Hw.Isa in
    let prog =
      li t0 40 @ li t1 0x20000
      @ [
          Op_imm (Add, t2, zero, 0);
          Store (Sd, t2, t1, 8);
          Load (Ld, a0, t1, 8);
          Load (Lw, a1, t1, 0x7f8);
          Op_imm (Add, t2, t2, 1);
          Branch (Bne, t2, t0, -16);
          Ecall;
        ]
    in
    let c = run_paged m root prog in
    ( counter_snapshot metrics,
      sb_instret_of metrics,
      c.Hw.Machine.instret,
      c.Hw.Machine.cycles,
      Hw.Tlb.stats c.Hw.Machine.tlb,
      Hw.Cache.stats c.Hw.Machine.l1,
      Hw.Cache.stats (Hw.Machine.l2 m) )
  in
  let m_s, sb_s, i_s, c_s, t_s, l1_s, l2_s = run_with Super in
  let m_f, sb_f, i_f, c_f, t_f, l1_f, l2_f = run_with Fast in
  let m_l, sb_l, i_l, c_l, t_l, l1_l, l2_l = run_with Slow in
  check_bool "superblock tier engaged" true (sb_s > 0);
  check_int "fast tier ran no superblocks" 0 sb_f;
  check_int "slow tier ran no superblocks" 0 sb_l;
  check_bool "metrics table agrees (super vs fast)" true (m_s = m_f);
  check_bool "metrics table agrees (super vs slow)" true (m_s = m_l);
  check_int "instret agrees (fast)" i_s i_f;
  check_int "instret agrees (slow)" i_s i_l;
  check_int "cycles agree (fast)" c_s c_f;
  check_int "cycles agree (slow)" c_s c_l;
  check_bool "TLB stats agree" true (t_s = t_f && t_s = t_l);
  check_bool "L1 stats agree" true (l1_s = l1_f && l1_s = l1_l);
  check_bool "L2 stats agree" true (l2_s = l2_f && l2_s = l2_l)

(* A store that straddles a page boundary mid-superblock must
   side-exit *before any byte moves*. Two cases in one program: a
   straddle across two mapped, non-adjacent frames (the stepped path
   stitches it) and a straddle whose second page is unmapped (faults
   whole). Every tier must leave both frames, the registers and the
   trap bit-identical. *)
let test_superblock_split_store () =
  let run_with tier =
    let m, last, root = paged_machine () in
    set_tier m tier;
    let mem = Hw.Machine.mem m in
    Hw.Phys_mem.write_u32 mem 0x20ff8 0xaaaa5555l;
    Hw.Phys_mem.write_u32 mem 0x60000 0x77777777l;
    Hw.Phys_mem.write_u32 mem 0x60ff8 0x5a5a5a5al;
    Hw.Phys_mem.write_u32 mem 0x60ffc 0xa5a5a5a5l;
    let open Hw.Isa in
    let prog =
      li t1 0x21000 @ li s0 0x22000 @ li t2 0x11223344
      @ [
          Op_imm (Add, a0, zero, 7);
          Op_imm (Add, a0, a0, 8);
          Store (Sd, t2, t1, -4) (* 0x20ffc: frames 0x20 / 0x60 *);
          Op_imm (Add, a0, a0, 16);
          Store (Sd, t2, s0, -4) (* 0x21ffc: second half unmapped *);
          Ecall;
        ]
    in
    let c = run_paged m root prog in
    ( Hw.Machine.read_reg c Hw.Isa.a0,
      Hw.Phys_mem.read_u32 mem 0x20ff8,
      Hw.Phys_mem.read_u32 mem 0x20ffc,
      Hw.Phys_mem.read_u32 mem 0x60000,
      Hw.Phys_mem.read_u32 mem 0x60ff8,
      Hw.Phys_mem.read_u32 mem 0x60ffc,
      !last )
  in
  let sup = run_with Super
  and fast = run_with Fast
  and slow = run_with Slow in
  check_bool "tiers agree (super vs fast)" true (sup = fast);
  check_bool "tiers agree (super vs slow)" true (sup = slow);
  let a0, before, lo, hi, keep, partial, trap = sup in
  check_i64 "ALU state at the fault" 31L a0;
  check_bool "mapped straddle stitched across frames" true
    (lo = 0x11223344l && hi = 0l);
  check_bool "neighbour words untouched" true
    (before = 0xaaaa5555l && keep = 0x5a5a5a5al);
  check_bool "no partial byte written by the faulting straddle" true
    (partial = 0xa5a5a5a5l);
  match trap with
  | Some (Hw.Trap.Exception (Hw.Trap.Page_fault (Hw.Trap.Write, 0x22000L))) ->
      ()
  | Some c ->
      Alcotest.failf "unexpected trap: %s"
        (Format.asprintf "%a" Hw.Trap.pp_cause c)
  | None -> Alcotest.fail "expected a write page fault at 0x22000"

(* Full-stack SMC: an enclave whose store dirties its *own* code page
   while a superblock on that page is running. The patched instruction
   (a jal) is the only exit from the loop, so a clean [Exited] outcome
   proves the fresh bytes ran — a stale compiled closure would spin
   until the fuel budget dies. On both platform backends, all tiers
   bit-identical. *)
let smc_own_page_image () =
  let open Hw.Isa in
  let evbase = 0x10000 in
  let page = Hw.Phys_mem.page_size in
  let enc_jal = Int32.to_int (encode (Jal (zero, 12))) in
  let prefix = li t1 enc_jal @ li t0 evbase in
  let p = List.length prefix in
  let program =
    prefix
    @ [
        Op_imm (Add, a0, a0, 1) (* slot p: patched to jal +12 below *);
        Store (Sw, t1, t0, 4 * p) (* dirty own page, mid-superblock *);
        Jal (zero, -8) (* back to the (now patched) slot *);
        Op_imm (Add, a7, zero, 1);
        Ecall;
      ]
  in
  Img.make ~evbase ~evsize:(2 * page)
    ~threads:
      [ (Int64.of_int evbase, Int64.of_int (evbase + (2 * page) - 16)) ]
    [
      {
        Img.vaddr = evbase;
        r = true;
        w = true;
        x = true;
        contents = encode_program program;
      };
      { Img.vaddr = evbase + page; r = true; w = true; x = false; contents = "" };
    ]

let test_superblock_smc_own_page backend () =
  let run_with tier =
    let tb = Testbed.create ~backend ~seed:"sb-smc" () in
    set_tier tb.Testbed.machine tier;
    let inst =
      Result.get_ok (Os.install_enclave tb.Testbed.os (smc_own_page_image ()))
    in
    let outcome =
      Os.run_enclave tb.Testbed.os ~eid:inst.Os.eid
        ~tid:(List.hd inst.Os.tids) ~core:0 ~fuel:10_000 ()
    in
    let c = Hw.Machine.core tb.Testbed.machine 0 in
    ( (match outcome with Ok o -> Some o | Error _ -> None),
      c.Hw.Machine.instret,
      c.Hw.Machine.cycles,
      Hw.Tlb.stats c.Hw.Machine.tlb,
      Hw.Cache.stats c.Hw.Machine.l1,
      Hw.Cache.stats (Hw.Machine.l2 tb.Testbed.machine) )
  in
  let sup = run_with Super
  and fast = run_with Fast
  and slow = run_with Slow in
  let o, _, _, _, _, _ = sup in
  check_bool "patched instruction executed (clean exit)" true
    (o = Some Os.Exited);
  check_bool "tiers agree (super vs fast)" true (sup = fast);
  check_bool "tiers agree (super vs slow)" true (sup = slow)

(* The DMA variant: a device overwrites an instruction of a code page
   whose superblock is already compiled (a previous run executed it).
   The next run must execute the new bytes under every tier. Runs bare
   in the untrusted domain on both backends, so the write crosses the
   backend's dma_check and the invalidation hook. *)
let test_superblock_dma_overwrite backend () =
  let code_paddr = 0x300000 in
  let run_with tier =
    let tb = Testbed.create ~backend ~seed:"sb-dma" () in
    let m = tb.Testbed.machine in
    set_tier m tier;
    let c = Hw.Machine.core m 0 in
    (* Program PMP / flush for bare untrusted execution (Keystone cores
       boot with no background allow entry). *)
    tb.Testbed.platform.Pf.Platform.enter_domain ~core:c
      Hw.Trap.domain_untrusted;
    let open Hw.Isa in
    let write_prog v =
      match
        Hw.Machine.dma_write m ~paddr:code_paddr
          (encode_program [ Op_imm (Add, a0, zero, v); Jal (zero, 0) ])
      with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "dma_write into untrusted memory refused"
    in
    let spin () =
      c.Hw.Machine.pc <- Int64.of_int code_paddr;
      Hw.Machine.write_reg c Hw.Isa.a0 0L;
      ignore (Hw.Machine.run m ~core:0 ~fuel:50);
      Hw.Machine.read_reg c Hw.Isa.a0
    in
    write_prog 5;
    let first = spin () in
    (* overwrite the already-compiled instruction behind the core's back *)
    write_prog 55;
    let second = spin () in
    (first, second, c.Hw.Machine.instret, c.Hw.Machine.cycles)
  in
  let sup = run_with Super
  and fast = run_with Fast
  and slow = run_with Slow in
  let first, second, _, _ = sup in
  check_i64 "original bytes executed" 5L first;
  check_i64 "DMA-overwritten bytes executed (no stale closure)" 55L second;
  check_bool "tiers agree (super vs fast)" true (sup = fast);
  check_bool "tiers agree (super vs slow)" true (sup = slow)

let suite =
  ( "fastpath",
    [
      Alcotest.test_case "smc: store patches next instruction" `Quick
        test_smc_inline_store;
      Alcotest.test_case "smc: store drops cached decode" `Quick
        test_smc_store_after_decode;
      Alcotest.test_case "smc: DMA write drops cached decode" `Quick
        test_smc_dma;
      Alcotest.test_case "smc: bit flip drops cached decode, ECC corrects"
        `Quick test_flip_invalidates_decode;
      Alcotest.test_case "interrupts: FIFO delivery order" `Quick
        test_interrupt_fifo_order;
      Alcotest.test_case "tlb: hit/miss counters exact under early exit"
        `Quick test_tlb_stats_exact;
      Alcotest.test_case "tlb: generation counts mutations only" `Quick
        test_tlb_generation;
      Alcotest.test_case "cache: access_hit stats and LRU exact" `Quick
        test_cache_access_hit_stats;
      Alcotest.test_case "ecc: corrected counter adds by n" `Quick
        test_ecc_corrected_batch;
      Alcotest.test_case "fetch: misaligned JALR target traps precisely"
        `Quick test_fetch_misaligned_jalr;
      Alcotest.test_case "mmu: page-crossing load splits the translation"
        `Quick test_split_load_nonadjacent;
      Alcotest.test_case "mmu: page-crossing store into unmapped faults whole"
        `Quick test_split_store_unmapped;
      Alcotest.test_case "differential: full stack enclave run" `Quick
        test_differential_full_stack;
      Alcotest.test_case "superblock: counters exact across tiers (armed sink)"
        `Quick test_tier_metrics_exact;
      Alcotest.test_case "superblock: page-crossing store side-exits whole"
        `Quick test_superblock_split_store;
      Alcotest.test_case "superblock: smc store dirties own page (sanctum)"
        `Quick
        (test_superblock_smc_own_page Testbed.Sanctum_backend);
      Alcotest.test_case "superblock: smc store dirties own page (keystone)"
        `Quick
        (test_superblock_smc_own_page Testbed.Keystone_backend);
      Alcotest.test_case "superblock: DMA overwrite drops compiled page \
                          (sanctum)" `Quick
        (test_superblock_dma_overwrite Testbed.Sanctum_backend);
      Alcotest.test_case "superblock: DMA overwrite drops compiled page \
                          (keystone)" `Quick
        (test_superblock_dma_overwrite Testbed.Keystone_backend);
      QCheck_alcotest.to_alcotest prop_differential;
      QCheck_alcotest.to_alcotest prop_differential_run;
      QCheck_alcotest.to_alcotest prop_differential_superblock;
    ] )
