(* Every public API entry point must turn an out-of-range argument —
   a bad eid, tid, rid, core or level — into a documented [Error], not
   an exception: the monitor fields calls from an untrusted OS, so a
   raise here is a denial-of-service primitive. One table row per
   entry point, run against both platform backends. *)
module S = Sanctorum.Sm
module E = Sanctorum.Api_error

let os = S.Os

(* Addresses that can never name a live metadata slot. *)
let bad_eid sm = S.metadata_limit sm + S.enclave_slot_bytes
let bad_tid sm = S.metadata_limit sm + S.thread_slot_bytes
let bad_rid sm = S.memory_units sm + 7

(* Each row is [(name, call)]; the call must return [Error _]. *)
let table sm =
  let beid = bad_eid sm and btid = bad_tid sm and brid = bad_rid sm in
  let u = fun (r : unit E.result) -> r in
  [
    ("block_resource/neg-rid",
     fun () -> u (S.block_resource sm ~caller:os Memory_resource ~rid:(-1)));
    ("block_resource/rid-too-big",
     fun () -> u (S.block_resource sm ~caller:os Memory_resource ~rid:brid));
    ("clean_resource/rid-too-big",
     fun () -> u (S.clean_resource sm ~caller:os Memory_resource ~rid:brid));
    ("grant_resource/rid-too-big",
     fun () ->
       u (S.grant_resource sm ~caller:os Memory_resource ~rid:brid ~to_:To_os));
    ("grant_resource/bad-target-eid",
     fun () ->
       u
         (S.grant_resource sm ~caller:os Memory_resource ~rid:0
            ~to_:(To_enclave beid)));
    ("accept_resource/rid-too-big",
     fun () ->
       u
         (S.accept_resource sm ~caller:(Enclave_caller beid) Memory_resource
            ~rid:brid));
    ("resource_state/neg-rid",
     fun () ->
       u (Result.map ignore (S.resource_state sm Memory_resource ~rid:(-1))));
    ("create_enclave/unaligned-eid",
     fun () ->
       u
         (S.create_enclave sm ~caller:os ~eid:(S.metadata_base sm + 3)
            ~evbase:0x40000 ~evsize:0x4000 ()));
    ("create_enclave/eid-outside-metadata",
     fun () ->
       u
         (S.create_enclave sm ~caller:os ~eid:beid ~evbase:0x40000
            ~evsize:0x4000 ()));
    ("allocate_page_table/bad-eid",
     fun () ->
       u (S.allocate_page_table sm ~caller:os ~eid:beid ~vaddr:0x40000 ~level:2));
    ("load_page/bad-eid",
     fun () ->
       u
         (S.load_page sm ~caller:os ~eid:beid ~vaddr:0x40000 ~src_paddr:0 ~r:true
            ~w:true ~x:false));
    ("map_shared/bad-eid",
     fun () ->
       u
         (S.map_shared sm ~caller:os ~eid:beid ~vaddr:0x20000 ~src_paddr:0
            ~len:4096));
    ("load_thread/bad-eid",
     fun () ->
       u
         (S.load_thread sm ~caller:os ~eid:beid ~tid:btid ~entry_pc:0L
            ~entry_sp:0L));
    ("init_enclave/bad-eid", fun () -> u (S.init_enclave sm ~caller:os ~eid:beid));
    ("delete_enclave/bad-eid",
     fun () -> u (S.delete_enclave sm ~caller:os ~eid:beid));
    ("enclave_state/bad-eid",
     fun () -> u (Result.map ignore (S.enclave_state sm ~eid:beid)));
    ("enclave_measurement/bad-eid",
     fun () -> u (Result.map ignore (S.enclave_measurement sm ~eid:beid)));
    ("enclave_domain/bad-eid",
     fun () -> u (Result.map ignore (S.enclave_domain sm ~eid:beid)));
    ("mailbox_stats/bad-eid",
     fun () -> u (Result.map ignore (S.mailbox_stats sm ~eid:beid)));
    ("assign_thread/bad-eid",
     fun () -> u (S.assign_thread sm ~caller:os ~eid:beid ~tid:btid));
    ("accept_thread/bad-tid",
     fun () -> u (S.accept_thread sm ~caller:(Enclave_caller beid) ~tid:btid ()));
    ("release_thread/bad-tid",
     fun () -> u (S.release_thread sm ~caller:(Enclave_caller beid) ~tid:btid));
    ("unassign_thread/bad-tid",
     fun () -> u (S.unassign_thread sm ~caller:os ~tid:btid));
    ("delete_thread/bad-tid",
     fun () -> u (S.delete_thread sm ~caller:os ~tid:btid));
    ("thread_state/neg-tid",
     fun () -> u (Result.map ignore (S.thread_state sm ~tid:(-1))));
    ("thread_has_aex_state/bad-tid",
     fun () -> u (Result.map ignore (S.thread_has_aex_state sm ~tid:btid)));
    ("enter_enclave/bad-core",
     fun () -> u (S.enter_enclave sm ~caller:os ~eid:beid ~tid:btid ~core:99));
    ("enter_enclave/neg-core",
     fun () -> u (S.enter_enclave sm ~caller:os ~eid:beid ~tid:btid ~core:(-1)));
    ("exit_enclave/bad-core",
     fun () -> u (S.exit_enclave sm ~caller:(Enclave_caller beid) ~core:99));
    ("set_fault_handler/bad-eid",
     fun () ->
       u (S.set_fault_handler sm ~caller:(Enclave_caller beid) ~handler:0L));
    ("read_aex_state/bad-tid",
     fun () ->
       u
         (Result.map ignore
            (S.read_aex_state sm ~caller:(Enclave_caller beid) ~tid:btid)));
    ("accept_mail/bad-caller-eid",
     fun () ->
       u
         (S.accept_mail sm ~caller:(Enclave_caller beid)
            ~sender:Sanctorum.Mailbox.From_os));
    ("accept_mail/bad-sender-eid",
     fun () ->
       u
         (S.accept_mail sm ~caller:os
            ~sender:(Sanctorum.Mailbox.From_enclave beid)));
    ("send_mail/bad-recipient",
     fun () -> u (S.send_mail sm ~caller:os ~recipient:beid ~msg:"hello"));
    ("get_mail/bad-caller-eid",
     fun () ->
       u
         (Result.map ignore
            (S.get_mail sm ~caller:(Enclave_caller beid)
               ~sender:Sanctorum.Mailbox.From_os)));
    ("get_signing_key/bad-caller-eid",
     fun () ->
       u (Result.map ignore (S.get_signing_key sm ~caller:(Enclave_caller beid))));
  ]

let run_table backend () =
  let tb = Sanctorum_os.Testbed.create ~backend () in
  List.iter
    (fun (name, call) ->
      match call () with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "%s: accepted an out-of-range argument" name
      | exception exn ->
          Alcotest.failf "%s: raised %s instead of returning Error" name
            (Printexc.to_string exn))
    (table tb.Sanctorum_os.Testbed.sm)

let suite =
  ( "api-errors",
    [
      Alcotest.test_case "out-of-range args return Error (sanctum)" `Quick
        (run_table Sanctorum_os.Testbed.Sanctum_backend);
      Alcotest.test_case "out-of-range args return Error (keystone)" `Quick
        (run_table Sanctorum_os.Testbed.Keystone_backend);
    ] )
