let () =
  Alcotest.run "sanctorum"
    [
      Test_util.suite;
      Test_crypto.suite;
      Test_hw.suite;
      Test_platform.suite;
      Test_resource.suite;
      Test_enclave.suite;
      Test_thread.suite;
      Test_mailbox.suite;
      Test_exec.suite;
      Test_concurrency.suite;
      Test_attestation.suite;
      Test_isolation.suite;
      Test_os.suite;
      Test_robustness.suite;
      Test_dynamic.suite;
      Test_fuzz.suite;
      Test_telemetry.suite;
      Test_analysis.suite;
      Test_faults.suite;
      Test_fastpath.suite;
      Test_workload.suite;
      Test_fleet.suite;
    ]
