(* The fault-injection engine and the monitor's fail-closed recovery:
   every fault class has a deterministic reproduction, a negative test
   proving the recovery path actually fires, and a post-recovery
   invariant sweep that must come back empty. Failure messages always
   carry the seed that reproduces the run. *)

module Hw = Sanctorum_hw
module S = Sanctorum.Sm
module F = Sanctorum_faults
module An = Sanctorum_analysis
module Tel = Sanctorum_telemetry
open Sanctorum_os

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A small preemptible workload: count to [target] in the data page. *)
let evbase = 0x10000
let target = 400

let counting_image =
  let counter = evbase + 4096 in
  Sanctorum.Image.of_program ~evbase ~data_pages:1
    Hw.Isa.(
      li t0 counter
      @ [ Load (Ld, t1, t0, 0) ]
      @ li t2 target
      @ [
          Branch (Bge, t1, t2, 16);
          Op_imm (Add, t1, t1, 1);
          Store (Sd, t1, t0, 0);
          Jal (zero, -12);
        ]
      @ [ Op_imm (Add, a7, zero, S.Ecall.exit_enclave); Ecall ])

let install tb =
  match Os.install_enclave tb.Testbed.os counting_image with
  | Ok i -> i
  | Error e ->
      Alcotest.failf "install (testbed seed %S): %s" tb.Testbed.seed
        (Sanctorum.Api_error.to_string e)

(* Physical address of the frame backing [vaddr] in the enclave. *)
let frame_of tb ~eid ~vaddr =
  match S.enclave_info tb.Testbed.sm ~eid with
  | None -> Alcotest.failf "enclave 0x%x has no info" eid
  | Some info -> (
      match List.assoc_opt (vaddr / 4096) info.S.i_mappings with
      | Some ppn -> Hw.Phys_mem.page_base ppn
      | None -> Alcotest.failf "vaddr 0x%x not mapped" vaddr)

let findings_clean ~ctx tb =
  match An.Checker.run_all tb.Testbed.sm with
  | [] -> ()
  | vs ->
      Alcotest.failf "%s (testbed seed %S): %s" ctx tb.Testbed.seed
        (String.concat "; " (List.map (fun v -> v.An.Report.id) vs))

(* ------------------------------------------------------------------ *)
(* ECC: detect-and-correct semantics of the DRAM fault model. *)

let test_ecc_single_corrected () =
  let tb = Testbed.create () in
  let mem = Hw.Machine.mem tb.Testbed.machine in
  let paddr = Hw.Phys_mem.size mem - 4096 in
  Hw.Phys_mem.write_u64 mem paddr 0xDEAD_BEEFL;
  Hw.Phys_mem.inject_bit_flip mem ~paddr ~bit:13;
  check_int "one word pending" 1 (Hw.Phys_mem.pending_faults mem);
  check_bool "stored bytes are corrupted" true
    (Hw.Phys_mem.read_u64 mem paddr <> 0xDEAD_BEEFL);
  (* an architectural access (device DMA into untrusted memory) runs
     through the controller's ECC and sees the pristine value *)
  (match Hw.Machine.dma_read tb.Testbed.machine ~paddr ~len:8 with
  | Error c ->
      Alcotest.failf "dma_read faulted: %s"
        (Hw.Trap.cause_label (Hw.Trap.Exception c))
  | Ok s ->
      check_bool "corrected value" true (String.get_int64_le s 0 = 0xDEAD_BEEFL));
  check_int "corrected counter" 1 (Hw.Phys_mem.corrected_count mem);
  check_int "nothing pending" 0 (Hw.Phys_mem.pending_faults mem)

let test_ecc_double_machine_check () =
  let tb = Testbed.create () in
  let mem = Hw.Machine.mem tb.Testbed.machine in
  let paddr = Hw.Phys_mem.size mem - 4096 in
  Hw.Phys_mem.inject_bit_flip mem ~paddr ~bit:3;
  Hw.Phys_mem.inject_bit_flip mem ~paddr ~bit:44;
  (* contained: the access returns a typed machine check, no exception
     escapes, and the device never sees the poisoned data *)
  (match Hw.Machine.dma_read tb.Testbed.machine ~paddr ~len:8 with
  | Ok _ -> Alcotest.fail "uncorrectable word served to a device"
  | Error (Hw.Trap.Machine_check at) -> check_int "faulting word" paddr at
  | Error c ->
      Alcotest.failf "expected machine check, got %s"
        (Hw.Trap.cause_label (Hw.Trap.Exception c)));
  check_int "uncorrectable counter" 1 (Hw.Phys_mem.uncorrectable_count mem);
  (* a full-word store rewrites the check bits and absorbs the fault *)
  Hw.Phys_mem.write_u64 mem paddr 7L;
  check_int "store cleared the fault" 0 (Hw.Phys_mem.pending_faults mem);
  check_bool "stored value readable" true (Hw.Phys_mem.read_u64 mem paddr = 7L)

let test_ecc_patrol_scrub () =
  let tb = Testbed.create () in
  let mem = Hw.Machine.mem tb.Testbed.machine in
  let inst = install tb in
  let eid = inst.Os.eid in
  let code = frame_of tb ~eid ~vaddr:evbase in
  (* one correctable fault in untrusted memory, one uncorrectable in
     the enclave's own code page *)
  Hw.Phys_mem.inject_bit_flip mem ~paddr:(Hw.Phys_mem.size mem - 64) ~bit:5;
  Hw.Phys_mem.inject_bit_flip mem ~paddr:code ~bit:1;
  Hw.Phys_mem.inject_bit_flip mem ~paddr:code ~bit:2;
  let corrected, retired = S.patrol_scrub tb.Testbed.sm in
  check_int "patrol corrected the single-bit word" 1 corrected;
  check_int "patrol retired the double-bit word" 1 retired;
  check_bool "poisoned enclave reclaimed" false
    (List.mem eid (S.enclaves tb.Testbed.sm));
  check_int "memory clean" 0 (Hw.Phys_mem.pending_faults mem);
  findings_clean ~ctx:"after patrol scrub" tb

(* ------------------------------------------------------------------ *)
(* One negative test per fault class: the fault fires, the workload
   fails closed, and the monitor's recovery leaves zero findings. *)

let outcome_or_error = function
  | Ok o -> (
      match (o : Os.run_outcome) with
      | Os.Exited -> "Exited"
      | Os.Preempted -> "Preempted"
      | Os.Faulted _ -> "Faulted"
      | Os.Fuel_exhausted -> "Fuel_exhausted"
      | Os.Killed -> "Killed")
  | Error e -> Sanctorum.Api_error.to_string e

let test_bitflip2_kills_enclave () =
  let tb = Testbed.create () in
  let mem = Hw.Machine.mem tb.Testbed.machine in
  let inst = install tb in
  let eid = inst.Os.eid and tid = List.hd inst.Os.tids in
  let code = frame_of tb ~eid ~vaddr:evbase in
  Hw.Phys_mem.inject_bit_flip mem ~paddr:code ~bit:7;
  Hw.Phys_mem.inject_bit_flip mem ~paddr:code ~bit:8;
  (match Os.run_enclave tb.Testbed.os ~eid ~tid ~core:0 ~fuel:10000 () with
  | Ok Os.Killed -> ()
  | r -> Alcotest.failf "expected Killed, got %s" (outcome_or_error r));
  check_bool "core 0 quarantined" true
    (Hw.Machine.core tb.Testbed.machine 0).Hw.Machine.quarantined;
  check_bool "enclave emergency-reclaimed" false
    (List.mem eid (S.enclaves tb.Testbed.sm));
  check_bool "poisoned word retired" true (Hw.Phys_mem.pending_faults mem = 0);
  findings_clean ~ctx:"after uncorrectable fetch" tb

let test_mce_mid_run () =
  let tb = Testbed.create () in
  let inst = install tb in
  let eid = inst.Os.eid and tid = List.hd inst.Os.tids in
  let inj =
    F.Injector.create ~horizon:1 ~machine:tb.Testbed.machine ~seed:11L
      ~spec:[ { F.Spec.cls = F.Spec.Core_check; count = 1 } ]
      ()
  in
  F.Injector.arm inj;
  let r = Os.run_enclave tb.Testbed.os ~eid ~tid ~core:0 ~fuel:10000 () in
  F.Injector.disarm inj;
  (match r with
  | Ok Os.Killed -> ()
  | r -> Alcotest.failf "expected Killed, got %s" (outcome_or_error r));
  check_int "one fault injected" 1 (F.Injector.stats inj).F.Injector.injected;
  check_bool "enclave reclaimed with its core" false
    (List.mem eid (S.enclaves tb.Testbed.sm));
  findings_clean ~ctx:"after mid-run machine check" tb

let test_irq_drop_recovery () =
  let tb = Testbed.create () in
  let inst = install tb in
  let eid = inst.Os.eid and tid = List.hd inst.Os.tids in
  let inj =
    F.Injector.create ~horizon:1 ~machine:tb.Testbed.machine ~seed:12L
      ~spec:[ { F.Spec.cls = F.Spec.Irq_drop; count = 1 } ]
      ()
  in
  F.Injector.arm inj;
  (* quantum 500 with fuel 800: the dropped tick means no AEX, so the
     fuel budget expires with the thread still running *)
  (match
     Os.run_enclave tb.Testbed.os ~eid ~tid ~core:0 ~fuel:800 ~quantum:500 ()
   with
  | Ok Os.Fuel_exhausted -> ()
  | r ->
      Alcotest.failf "expected Fuel_exhausted after lost tick, got %s"
        (outcome_or_error r));
  check_int "the tick was dropped" 1
    (F.Injector.stats inj).F.Injector.irqs_dropped;
  (* recovery: re-arm the quantum without re-entering; the next tick is
     delivered and the workload completes *)
  let rec settle budget =
    if budget = 0 then Alcotest.fail "did not settle after recovery"
    else
      match
        Os.continue_running tb.Testbed.os ~tid ~core:0 ~fuel:20000 ~quantum:500
          ()
      with
      | Ok Os.Exited -> ()
      | Ok Os.Preempted -> resume budget
      | r -> Alcotest.failf "recovery run: %s" (outcome_or_error r)
  and resume budget =
    match
      Os.resume_enclave tb.Testbed.os ~eid ~tid ~core:0 ~fuel:20000
        ~quantum:500 ()
    with
    | Ok Os.Exited -> ()
    | Ok Os.Preempted -> resume (budget - 1)
    | r -> Alcotest.failf "resume: %s" (outcome_or_error r)
  in
  settle 50;
  F.Injector.disarm inj;
  let counter = frame_of tb ~eid ~vaddr:(evbase + 4096) in
  check_bool "counted to target despite the lost tick" true
    (Hw.Phys_mem.read_u64 (Hw.Machine.mem tb.Testbed.machine) counter
    = Int64.of_int target);
  findings_clean ~ctx:"after lost-tick recovery" tb

let test_spurious_irq_only_preempts () =
  let tb = Testbed.create () in
  let inst = install tb in
  let eid = inst.Os.eid and tid = List.hd inst.Os.tids in
  let inj =
    F.Injector.create ~horizon:1 ~machine:tb.Testbed.machine ~seed:13L
      ~spec:[ { F.Spec.cls = F.Spec.Spurious_irq; count = 1 } ]
      ()
  in
  F.Injector.arm inj;
  (* no quantum armed, so the only interrupt is the spurious one: the
     enclave takes an AEX it never asked for — and nothing worse *)
  (match Os.run_enclave tb.Testbed.os ~eid ~tid ~core:0 ~fuel:20000 () with
  | Ok Os.Preempted -> ()
  | r ->
      Alcotest.failf "expected Preempted by spurious irq, got %s"
        (outcome_or_error r));
  F.Injector.disarm inj;
  (match Os.resume_enclave tb.Testbed.os ~eid ~tid ~core:0 ~fuel:20000 () with
  | Ok Os.Exited -> ()
  | r -> Alcotest.failf "resume after spurious AEX: %s" (outcome_or_error r));
  let counter = frame_of tb ~eid ~vaddr:(evbase + 4096) in
  check_bool "result survives the spurious AEX" true
    (Hw.Phys_mem.read_u64 (Hw.Machine.mem tb.Testbed.machine) counter
    = Int64.of_int target);
  findings_clean ~ctx:"after spurious interrupt" tb

let test_ipi_drop_retry_then_quarantine () =
  let sink = Tel.Sink.create () in
  let tb = Testbed.create ~sink () in
  let machine = tb.Testbed.machine in
  (* core 1 never acknowledges; core 2 loses only the first attempt *)
  Hw.Machine.set_fault_hooks machine
    (Some
       {
         Hw.Machine.tick = (fun ~core:_ ~cycles:_ -> ());
         irq_gate = (fun ~core:_ ~irq:_ -> true);
         drop_shootdown_ipi =
           (fun ~target_core ~attempt ->
             target_core = 1 || (target_core = 2 && attempt = 1));
       });
  Hw.Machine.tlb_shootdown machine ~reason:"test-shootdown";
  Hw.Machine.set_fault_hooks machine None;
  check_bool "silent core quarantined" true
    (Hw.Machine.core machine 1).Hw.Machine.quarantined;
  check_bool "retried core survived" false
    (Hw.Machine.core machine 2).Hw.Machine.quarantined;
  check_bool "other cores untouched" false
    (Hw.Machine.core machine 0).Hw.Machine.quarantined;
  let retries =
    List.length
      (List.filter
         (fun e ->
           match e.Tel.Event.payload with
           | Tel.Event.Shootdown_retry _ -> true
           | _ -> false)
         (Tel.Sink.events sink))
  in
  check_int "retries recorded" (Hw.Machine.shootdown_max_attempts + 1) retries;
  (* the quarantined core satisfies the fencing invariant and is exempt
     from the residue checks it can no longer violate *)
  findings_clean ~ctx:"after shootdown timeout" tb

let test_dma_misfire_denied () =
  let tb = Testbed.create () in
  let inst = install tb in
  let enclave_page = frame_of tb ~eid:inst.Os.eid ~vaddr:evbase in
  (match Hw.Machine.dma_write tb.Testbed.machine ~paddr:enclave_page "devi" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "misfired DMA wrote into enclave memory");
  let untrusted = Hw.Phys_mem.size (Hw.Machine.mem tb.Testbed.machine) - 4096 in
  (match Hw.Machine.dma_write tb.Testbed.machine ~paddr:untrusted "devi" with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "DMA into plain untrusted memory denied");
  findings_clean ~ctx:"after DMA misfire" tb

(* ------------------------------------------------------------------ *)
(* Determinism: the schedule and the whole chaos outcome are pure
   functions of (seed, spec, geometry). *)

let all_spec = List.map (fun cls -> { F.Spec.cls; count = 2 }) F.Spec.all_classes

let test_schedule_deterministic () =
  let mk seed =
    let tb = Testbed.create () in
    F.Injector.schedule
      (F.Injector.create ~machine:tb.Testbed.machine ~seed ~spec:all_spec ())
  in
  check_bool "same seed, same schedule" true (mk 42L = mk 42L);
  check_bool "different seed, different schedule" false (mk 42L = mk 43L)

let test_chaos_deterministic () =
  let run () =
    let r = F.Chaos.run ~rounds:3 ~seed:42L ~spec:all_spec () in
    ( r.F.Chaos.completed,
      r.F.Chaos.failed_closed,
      r.F.Chaos.incidents,
      r.F.Chaos.stats,
      r.F.Chaos.fail_open,
      List.map (fun v -> v.An.Report.id) r.F.Chaos.findings )
  in
  check_bool "same seed, same chaos outcome" true (run () = run ())

let test_spec_roundtrip () =
  (match F.Spec.parse "bitflip:3,mce,ipi-drop:2" with
  | Error m -> Alcotest.fail m
  | Ok s ->
      Alcotest.(check string) "round-trips" "bitflip:3,mce,ipi-drop:2"
        (F.Spec.to_string s);
      check_int "total" 6 (F.Spec.total s));
  (match F.Spec.parse "all" with
  | Error m -> Alcotest.fail m
  | Ok s -> check_int "all = one per class" (List.length F.Spec.all_classes)
              (F.Spec.total s));
  check_bool "junk rejected" true (Result.is_error (F.Spec.parse "warp-core"))

let test_testbed_seed_exposed () =
  let tb = Testbed.create () in
  Alcotest.(check string) "default seed" "testbed" tb.Testbed.seed;
  let tb2 = Testbed.create ~seed:"repro-417" () in
  Alcotest.(check string) "custom seed stored" "repro-417" tb2.Testbed.seed

(* ------------------------------------------------------------------ *)
(* The adversarial property: random API storms interleaved with
   injected hardware faults never raise — every failure surfaces as a
   typed Api_error (or a typed hardware fault), and after one patrol
   pass the invariant catalog is silent again. *)

type fault_op =
  | Flip of int * int (* word selector, bit *)
  | Flip2 of int * int
  | Mce of int (* core *)
  | Shootdown
  | Spurious of int (* core *)
  | Dma of int (* word selector *)
  | Patrol

type storm_op = Api of Test_fuzz.op | Hw_fault of fault_op

let storm_gen =
  let open QCheck2.Gen in
  let fault =
    oneof
      [
        map2 (fun w b -> Flip (w, b)) (int_range 0 511) (int_range 0 63);
        map2 (fun w b -> Flip2 (w, b)) (int_range 0 511) (int_range 0 62);
        map (fun c -> Mce c) (int_range 0 3);
        return Shootdown;
        map (fun c -> Spurious c) (int_range 0 3);
        map (fun w -> Dma w) (int_range 0 511);
        return Patrol;
      ]
  in
  frequency
    [ (4, map (fun o -> Api o) Test_fuzz.op_gen); (1, map (fun f -> Hw_fault f) fault) ]

let apply_fault tb op =
  let machine = tb.Testbed.machine in
  let mem = Hw.Machine.mem machine in
  (* spread the flips over the whole address space deterministically *)
  let word_at w = w * (Hw.Phys_mem.size mem / 512) / 8 * 8 in
  match op with
  | Flip (w, bit) -> Hw.Phys_mem.inject_bit_flip mem ~paddr:(word_at w) ~bit
  | Flip2 (w, bit) ->
      Hw.Phys_mem.inject_bit_flip mem ~paddr:(word_at w) ~bit;
      Hw.Phys_mem.inject_bit_flip mem ~paddr:(word_at w) ~bit:(bit + 1)
  | Mce core -> Hw.Machine.raise_machine_check machine ~core ~paddr:(-1)
  | Shootdown -> Hw.Machine.tlb_shootdown machine ~reason:"storm"
  | Spurious core -> Hw.Machine.post_interrupt machine ~core Hw.Trap.Software
  | Dma w -> (
      match Hw.Machine.dma_write machine ~paddr:(word_at w) "storm!!!" with
      | Ok () | Error _ -> ())
  | Patrol -> ignore (S.patrol_scrub tb.Testbed.sm)

let storm_property backend =
  QCheck2.Test.make
    ~name:
      ("storm: API calls under faults never raise ("
      ^ Testbed.backend_name backend ^ ")")
    ~count:40
    QCheck2.Gen.(list_size (int_range 1 60) storm_gen)
    (fun ops ->
      let tb = Testbed.create ~backend () in
      List.iter
        (fun op ->
          match op with
          | Api o -> (
              (* every outcome of an API call is a typed result; an
                 escaping exception fails the property *)
              match Test_fuzz.apply tb o with
              | () -> ()
              | exception exn ->
                  failwith
                    (Printf.sprintf "API raised %s (testbed seed %S)"
                       (Printexc.to_string exn) tb.Testbed.seed))
          | Hw_fault f -> (
              match apply_fault tb f with
              | () -> ()
              | exception exn ->
                  failwith
                    (Printf.sprintf "fault delivery raised %s (testbed seed %S)"
                       (Printexc.to_string exn) tb.Testbed.seed)))
        ops;
      (* recovery converges: one patrol pass, then a silent catalog *)
      ignore (S.patrol_scrub tb.Testbed.sm);
      match An.Checker.snapshot tb.Testbed.sm with
      | [] -> true
      | vs ->
          failwith
            (String.concat "; " (List.map (fun v -> v.An.Report.id) vs)))

(* ------------------------------------------------------------------ *)
(* End-to-end chaos: each fault class alone, then the full storm, on
   both backends, with fixed seeds. *)

let chaos_case backend cls =
  let seed = Int64.of_int (1000 + Hashtbl.hash (F.Spec.class_name cls) mod 97) in
  Alcotest.test_case
    (Printf.sprintf "chaos: %s (%s)" (F.Spec.class_name cls)
       (Testbed.backend_name backend))
    `Quick
    (fun () ->
      let r =
        F.Chaos.run ~backend ~rounds:3 ~seed ~spec:[ { F.Spec.cls; count = 2 } ] ()
      in
      if not (F.Chaos.ok r) then
        Alcotest.failf "chaos failed open:@.%a" F.Chaos.pp r)

let chaos_storm backend =
  Alcotest.test_case
    (Printf.sprintf "chaos: full storm (%s)" (Testbed.backend_name backend))
    `Quick
    (fun () ->
      let r = F.Chaos.run ~backend ~rounds:5 ~seed:7L ~spec:all_spec () in
      if not (F.Chaos.ok r) then
        Alcotest.failf "chaos failed open:@.%a" F.Chaos.pp r;
      check_bool "faults actually fired" true
        (r.F.Chaos.stats.F.Injector.injected > 0))

let suite =
  ( "faults",
    [
      Alcotest.test_case "ecc: single-bit corrected and counted" `Quick
        test_ecc_single_corrected;
      Alcotest.test_case "ecc: double-bit is a contained machine check" `Quick
        test_ecc_double_machine_check;
      Alcotest.test_case "ecc: patrol scrub corrects and retires" `Quick
        test_ecc_patrol_scrub;
      Alcotest.test_case "bitflip2: uncorrectable fetch fails closed" `Quick
        test_bitflip2_kills_enclave;
      Alcotest.test_case "mce: core death mid-run is contained" `Quick
        test_mce_mid_run;
      Alcotest.test_case "irq-drop: lost tick recovered by continue_running"
        `Quick test_irq_drop_recovery;
      Alcotest.test_case "spurious-irq: unsolicited AEX, nothing worse" `Quick
        test_spurious_irq_only_preempts;
      Alcotest.test_case "ipi-drop: retry then quarantine" `Quick
        test_ipi_drop_retry_then_quarantine;
      Alcotest.test_case "dma: misfire into enclave memory denied" `Quick
        test_dma_misfire_denied;
      Alcotest.test_case "determinism: schedule is seed-pure" `Quick
        test_schedule_deterministic;
      Alcotest.test_case "determinism: chaos outcome is seed-pure" `Quick
        test_chaos_deterministic;
      Alcotest.test_case "spec: parse/print round-trip" `Quick
        test_spec_roundtrip;
      Alcotest.test_case "testbed: rng seed exposed for repro" `Quick
        test_testbed_seed_exposed;
      QCheck_alcotest.to_alcotest (storm_property Testbed.Sanctum_backend);
      QCheck_alcotest.to_alcotest (storm_property Testbed.Keystone_backend);
    ]
    @ List.concat_map
        (fun backend ->
          List.map (chaos_case backend) F.Spec.all_classes
          @ [ chaos_storm backend ])
        [ Testbed.Sanctum_backend; Testbed.Keystone_backend ] )
